# Empty dependencies file for bench_fig6_geometry.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig9_intra_area.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_position_sweep.dir/bench_position_sweep.cpp.o"
  "CMakeFiles/bench_position_sweep.dir/bench_position_sweep.cpp.o.d"
  "bench_position_sweep"
  "bench_position_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_position_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

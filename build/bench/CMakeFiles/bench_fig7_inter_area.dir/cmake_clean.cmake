file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_inter_area.dir/bench_fig7_inter_area.cpp.o"
  "CMakeFiles/bench_fig7_inter_area.dir/bench_fig7_inter_area.cpp.o.d"
  "bench_fig7_inter_area"
  "bench_fig7_inter_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_inter_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

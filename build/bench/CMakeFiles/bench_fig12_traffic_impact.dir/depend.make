# Empty dependencies file for bench_fig12_traffic_impact.
# This may be replaced when dependencies are built.

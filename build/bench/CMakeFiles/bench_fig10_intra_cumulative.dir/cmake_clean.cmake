file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_intra_cumulative.dir/bench_fig10_intra_cumulative.cpp.o"
  "CMakeFiles/bench_fig10_intra_cumulative.dir/bench_fig10_intra_cumulative.cpp.o.d"
  "bench_fig10_intra_cumulative"
  "bench_fig10_intra_cumulative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_intra_cumulative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig10_intra_cumulative.
# This may be replaced when dependencies are built.

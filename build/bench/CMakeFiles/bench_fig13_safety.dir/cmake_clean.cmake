file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_safety.dir/bench_fig13_safety.cpp.o"
  "CMakeFiles/bench_fig13_safety.dir/bench_fig13_safety.cpp.o.d"
  "bench_fig13_safety"
  "bench_fig13_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_mitigation.dir/bench_fig14_mitigation.cpp.o"
  "CMakeFiles/bench_fig14_mitigation.dir/bench_fig14_mitigation.cpp.o.d"
  "bench_fig14_mitigation"
  "bench_fig14_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

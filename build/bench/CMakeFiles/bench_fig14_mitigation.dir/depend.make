# Empty dependencies file for bench_fig14_mitigation.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/attack_sniffer_test[1]_include.cmake")
include("/root/repo/build/tests/attack_test[1]_include.cmake")
include("/root/repo/build/tests/facilities_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/gn_anycast_test[1]_include.cmake")
include("/root/repo/build/tests/gn_cbf_test[1]_include.cmake")
include("/root/repo/build/tests/gn_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/gn_gf_test[1]_include.cmake")
include("/root/repo/build/tests/gn_location_table_test[1]_include.cmake")
include("/root/repo/build/tests/gn_router_edge_test[1]_include.cmake")
include("/root/repo/build/tests/gn_router_test[1]_include.cmake")
include("/root/repo/build/tests/mitigation_test[1]_include.cmake")
include("/root/repo/build/tests/net_codec_test[1]_include.cmake")
include("/root/repo/build/tests/net_misc_test[1]_include.cmake")
include("/root/repo/build/tests/phy_medium_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_curve_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
include("/root/repo/build/tests/security_test[1]_include.cmake")
include("/root/repo/build/tests/sim_event_queue_test[1]_include.cmake")
include("/root/repo/build/tests/sim_log_config_test[1]_include.cmake")
include("/root/repo/build/tests/sim_random_test[1]_include.cmake")
include("/root/repo/build/tests/sim_time_test[1]_include.cmake")
include("/root/repo/build/tests/sim_timeline_test[1]_include.cmake")
include("/root/repo/build/tests/traffic_lane_change_test[1]_include.cmake")
include("/root/repo/build/tests/traffic_test[1]_include.cmake")

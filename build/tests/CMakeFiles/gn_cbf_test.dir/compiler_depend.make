# Empty compiler generated dependencies file for gn_cbf_test.
# This may be replaced when dependencies are built.

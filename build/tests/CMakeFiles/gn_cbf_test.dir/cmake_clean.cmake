file(REMOVE_RECURSE
  "CMakeFiles/gn_cbf_test.dir/gn_cbf_test.cpp.o"
  "CMakeFiles/gn_cbf_test.dir/gn_cbf_test.cpp.o.d"
  "gn_cbf_test"
  "gn_cbf_test.pdb"
  "gn_cbf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gn_cbf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

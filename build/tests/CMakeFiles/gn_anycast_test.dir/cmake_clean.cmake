file(REMOVE_RECURSE
  "CMakeFiles/gn_anycast_test.dir/gn_anycast_test.cpp.o"
  "CMakeFiles/gn_anycast_test.dir/gn_anycast_test.cpp.o.d"
  "gn_anycast_test"
  "gn_anycast_test.pdb"
  "gn_anycast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gn_anycast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

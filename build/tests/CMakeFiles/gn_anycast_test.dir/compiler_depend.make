# Empty compiler generated dependencies file for gn_anycast_test.
# This may be replaced when dependencies are built.

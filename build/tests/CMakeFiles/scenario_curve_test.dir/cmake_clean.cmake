file(REMOVE_RECURSE
  "CMakeFiles/scenario_curve_test.dir/scenario_curve_test.cpp.o"
  "CMakeFiles/scenario_curve_test.dir/scenario_curve_test.cpp.o.d"
  "scenario_curve_test"
  "scenario_curve_test.pdb"
  "scenario_curve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_curve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

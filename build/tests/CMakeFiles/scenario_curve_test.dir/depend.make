# Empty dependencies file for scenario_curve_test.
# This may be replaced when dependencies are built.

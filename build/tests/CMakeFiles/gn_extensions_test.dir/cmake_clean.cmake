file(REMOVE_RECURSE
  "CMakeFiles/gn_extensions_test.dir/gn_extensions_test.cpp.o"
  "CMakeFiles/gn_extensions_test.dir/gn_extensions_test.cpp.o.d"
  "gn_extensions_test"
  "gn_extensions_test.pdb"
  "gn_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gn_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for gn_extensions_test.
# This may be replaced when dependencies are built.

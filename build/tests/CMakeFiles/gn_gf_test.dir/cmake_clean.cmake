file(REMOVE_RECURSE
  "CMakeFiles/gn_gf_test.dir/gn_gf_test.cpp.o"
  "CMakeFiles/gn_gf_test.dir/gn_gf_test.cpp.o.d"
  "gn_gf_test"
  "gn_gf_test.pdb"
  "gn_gf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gn_gf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for gn_gf_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for traffic_lane_change_test.
# This may be replaced when dependencies are built.

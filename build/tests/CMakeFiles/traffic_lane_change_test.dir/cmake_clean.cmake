file(REMOVE_RECURSE
  "CMakeFiles/traffic_lane_change_test.dir/traffic_lane_change_test.cpp.o"
  "CMakeFiles/traffic_lane_change_test.dir/traffic_lane_change_test.cpp.o.d"
  "traffic_lane_change_test"
  "traffic_lane_change_test.pdb"
  "traffic_lane_change_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_lane_change_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

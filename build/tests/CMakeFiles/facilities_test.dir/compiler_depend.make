# Empty compiler generated dependencies file for facilities_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/attack_sniffer_test.dir/attack_sniffer_test.cpp.o"
  "CMakeFiles/attack_sniffer_test.dir/attack_sniffer_test.cpp.o.d"
  "attack_sniffer_test"
  "attack_sniffer_test.pdb"
  "attack_sniffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_sniffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

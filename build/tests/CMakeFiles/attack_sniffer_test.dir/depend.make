# Empty dependencies file for attack_sniffer_test.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net_misc_test.cpp" "tests/CMakeFiles/net_misc_test.dir/net_misc_test.cpp.o" "gcc" "tests/CMakeFiles/net_misc_test.dir/net_misc_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vgr_facilities.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vgr_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vgr_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vgr_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vgr_mitigation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vgr_gn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vgr_security.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vgr_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vgr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vgr_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vgr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

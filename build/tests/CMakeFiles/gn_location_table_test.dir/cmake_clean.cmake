file(REMOVE_RECURSE
  "CMakeFiles/gn_location_table_test.dir/gn_location_table_test.cpp.o"
  "CMakeFiles/gn_location_table_test.dir/gn_location_table_test.cpp.o.d"
  "gn_location_table_test"
  "gn_location_table_test.pdb"
  "gn_location_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gn_location_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for gn_location_table_test.
# This may be replaced when dependencies are built.

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for gn_location_table_test.

file(REMOVE_RECURSE
  "CMakeFiles/gn_router_test.dir/gn_router_test.cpp.o"
  "CMakeFiles/gn_router_test.dir/gn_router_test.cpp.o.d"
  "gn_router_test"
  "gn_router_test.pdb"
  "gn_router_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gn_router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for gn_router_test.
# This may be replaced when dependencies are built.

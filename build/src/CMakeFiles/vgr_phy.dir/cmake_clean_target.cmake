file(REMOVE_RECURSE
  "libvgr_phy.a"
)

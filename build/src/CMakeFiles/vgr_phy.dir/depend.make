# Empty dependencies file for vgr_phy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vgr_phy.dir/vgr/phy/medium.cpp.o"
  "CMakeFiles/vgr_phy.dir/vgr/phy/medium.cpp.o.d"
  "CMakeFiles/vgr_phy.dir/vgr/phy/technology.cpp.o"
  "CMakeFiles/vgr_phy.dir/vgr/phy/technology.cpp.o.d"
  "libvgr_phy.a"
  "libvgr_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgr_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vgr/phy/medium.cpp" "src/CMakeFiles/vgr_phy.dir/vgr/phy/medium.cpp.o" "gcc" "src/CMakeFiles/vgr_phy.dir/vgr/phy/medium.cpp.o.d"
  "/root/repo/src/vgr/phy/technology.cpp" "src/CMakeFiles/vgr_phy.dir/vgr/phy/technology.cpp.o" "gcc" "src/CMakeFiles/vgr_phy.dir/vgr/phy/technology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vgr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vgr_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vgr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

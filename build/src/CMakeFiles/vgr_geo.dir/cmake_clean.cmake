file(REMOVE_RECURSE
  "CMakeFiles/vgr_geo.dir/vgr/geo/area.cpp.o"
  "CMakeFiles/vgr_geo.dir/vgr/geo/area.cpp.o.d"
  "CMakeFiles/vgr_geo.dir/vgr/geo/vec2.cpp.o"
  "CMakeFiles/vgr_geo.dir/vgr/geo/vec2.cpp.o.d"
  "libvgr_geo.a"
  "libvgr_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgr_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

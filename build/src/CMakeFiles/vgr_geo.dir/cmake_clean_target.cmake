file(REMOVE_RECURSE
  "libvgr_geo.a"
)

# Empty compiler generated dependencies file for vgr_geo.
# This may be replaced when dependencies are built.

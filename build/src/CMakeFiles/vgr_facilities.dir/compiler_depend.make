# Empty compiler generated dependencies file for vgr_facilities.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libvgr_facilities.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/vgr_facilities.dir/vgr/facilities/cam.cpp.o"
  "CMakeFiles/vgr_facilities.dir/vgr/facilities/cam.cpp.o.d"
  "CMakeFiles/vgr_facilities.dir/vgr/facilities/denm.cpp.o"
  "CMakeFiles/vgr_facilities.dir/vgr/facilities/denm.cpp.o.d"
  "libvgr_facilities.a"
  "libvgr_facilities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgr_facilities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

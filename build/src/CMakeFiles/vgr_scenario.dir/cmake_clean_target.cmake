file(REMOVE_RECURSE
  "libvgr_scenario.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/vgr_scenario.dir/vgr/scenario/ab_runner.cpp.o"
  "CMakeFiles/vgr_scenario.dir/vgr/scenario/ab_runner.cpp.o.d"
  "CMakeFiles/vgr_scenario.dir/vgr/scenario/csv.cpp.o"
  "CMakeFiles/vgr_scenario.dir/vgr/scenario/csv.cpp.o.d"
  "CMakeFiles/vgr_scenario.dir/vgr/scenario/curve.cpp.o"
  "CMakeFiles/vgr_scenario.dir/vgr/scenario/curve.cpp.o.d"
  "CMakeFiles/vgr_scenario.dir/vgr/scenario/hazard.cpp.o"
  "CMakeFiles/vgr_scenario.dir/vgr/scenario/hazard.cpp.o.d"
  "CMakeFiles/vgr_scenario.dir/vgr/scenario/highway.cpp.o"
  "CMakeFiles/vgr_scenario.dir/vgr/scenario/highway.cpp.o.d"
  "libvgr_scenario.a"
  "libvgr_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgr_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

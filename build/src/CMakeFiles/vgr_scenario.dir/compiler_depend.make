# Empty compiler generated dependencies file for vgr_scenario.
# This may be replaced when dependencies are built.

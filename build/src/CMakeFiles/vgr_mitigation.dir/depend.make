# Empty dependencies file for vgr_mitigation.
# This may be replaced when dependencies are built.

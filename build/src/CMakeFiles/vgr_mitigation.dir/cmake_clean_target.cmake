file(REMOVE_RECURSE
  "libvgr_mitigation.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/vgr_mitigation.dir/vgr/mitigation/profiles.cpp.o"
  "CMakeFiles/vgr_mitigation.dir/vgr/mitigation/profiles.cpp.o.d"
  "libvgr_mitigation.a"
  "libvgr_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgr_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

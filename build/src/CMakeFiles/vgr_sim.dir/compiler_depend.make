# Empty compiler generated dependencies file for vgr_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libvgr_sim.a"
)

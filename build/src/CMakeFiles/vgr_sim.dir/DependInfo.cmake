
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vgr/sim/event_queue.cpp" "src/CMakeFiles/vgr_sim.dir/vgr/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/vgr_sim.dir/vgr/sim/event_queue.cpp.o.d"
  "/root/repo/src/vgr/sim/histogram.cpp" "src/CMakeFiles/vgr_sim.dir/vgr/sim/histogram.cpp.o" "gcc" "src/CMakeFiles/vgr_sim.dir/vgr/sim/histogram.cpp.o.d"
  "/root/repo/src/vgr/sim/log.cpp" "src/CMakeFiles/vgr_sim.dir/vgr/sim/log.cpp.o" "gcc" "src/CMakeFiles/vgr_sim.dir/vgr/sim/log.cpp.o.d"
  "/root/repo/src/vgr/sim/random.cpp" "src/CMakeFiles/vgr_sim.dir/vgr/sim/random.cpp.o" "gcc" "src/CMakeFiles/vgr_sim.dir/vgr/sim/random.cpp.o.d"
  "/root/repo/src/vgr/sim/time.cpp" "src/CMakeFiles/vgr_sim.dir/vgr/sim/time.cpp.o" "gcc" "src/CMakeFiles/vgr_sim.dir/vgr/sim/time.cpp.o.d"
  "/root/repo/src/vgr/sim/timeline.cpp" "src/CMakeFiles/vgr_sim.dir/vgr/sim/timeline.cpp.o" "gcc" "src/CMakeFiles/vgr_sim.dir/vgr/sim/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

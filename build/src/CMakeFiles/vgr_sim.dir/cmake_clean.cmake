file(REMOVE_RECURSE
  "CMakeFiles/vgr_sim.dir/vgr/sim/event_queue.cpp.o"
  "CMakeFiles/vgr_sim.dir/vgr/sim/event_queue.cpp.o.d"
  "CMakeFiles/vgr_sim.dir/vgr/sim/histogram.cpp.o"
  "CMakeFiles/vgr_sim.dir/vgr/sim/histogram.cpp.o.d"
  "CMakeFiles/vgr_sim.dir/vgr/sim/log.cpp.o"
  "CMakeFiles/vgr_sim.dir/vgr/sim/log.cpp.o.d"
  "CMakeFiles/vgr_sim.dir/vgr/sim/random.cpp.o"
  "CMakeFiles/vgr_sim.dir/vgr/sim/random.cpp.o.d"
  "CMakeFiles/vgr_sim.dir/vgr/sim/time.cpp.o"
  "CMakeFiles/vgr_sim.dir/vgr/sim/time.cpp.o.d"
  "CMakeFiles/vgr_sim.dir/vgr/sim/timeline.cpp.o"
  "CMakeFiles/vgr_sim.dir/vgr/sim/timeline.cpp.o.d"
  "libvgr_sim.a"
  "libvgr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libvgr_security.a"
)

# Empty compiler generated dependencies file for vgr_security.
# This may be replaced when dependencies are built.

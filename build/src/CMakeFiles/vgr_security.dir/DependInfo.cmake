
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vgr/security/authority.cpp" "src/CMakeFiles/vgr_security.dir/vgr/security/authority.cpp.o" "gcc" "src/CMakeFiles/vgr_security.dir/vgr/security/authority.cpp.o.d"
  "/root/repo/src/vgr/security/crypto.cpp" "src/CMakeFiles/vgr_security.dir/vgr/security/crypto.cpp.o" "gcc" "src/CMakeFiles/vgr_security.dir/vgr/security/crypto.cpp.o.d"
  "/root/repo/src/vgr/security/pseudonym.cpp" "src/CMakeFiles/vgr_security.dir/vgr/security/pseudonym.cpp.o" "gcc" "src/CMakeFiles/vgr_security.dir/vgr/security/pseudonym.cpp.o.d"
  "/root/repo/src/vgr/security/secured_message.cpp" "src/CMakeFiles/vgr_security.dir/vgr/security/secured_message.cpp.o" "gcc" "src/CMakeFiles/vgr_security.dir/vgr/security/secured_message.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vgr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vgr_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vgr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

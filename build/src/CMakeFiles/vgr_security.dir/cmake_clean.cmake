file(REMOVE_RECURSE
  "CMakeFiles/vgr_security.dir/vgr/security/authority.cpp.o"
  "CMakeFiles/vgr_security.dir/vgr/security/authority.cpp.o.d"
  "CMakeFiles/vgr_security.dir/vgr/security/crypto.cpp.o"
  "CMakeFiles/vgr_security.dir/vgr/security/crypto.cpp.o.d"
  "CMakeFiles/vgr_security.dir/vgr/security/pseudonym.cpp.o"
  "CMakeFiles/vgr_security.dir/vgr/security/pseudonym.cpp.o.d"
  "CMakeFiles/vgr_security.dir/vgr/security/secured_message.cpp.o"
  "CMakeFiles/vgr_security.dir/vgr/security/secured_message.cpp.o.d"
  "libvgr_security.a"
  "libvgr_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgr_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

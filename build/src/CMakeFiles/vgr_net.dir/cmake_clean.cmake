file(REMOVE_RECURSE
  "CMakeFiles/vgr_net.dir/vgr/net/address.cpp.o"
  "CMakeFiles/vgr_net.dir/vgr/net/address.cpp.o.d"
  "CMakeFiles/vgr_net.dir/vgr/net/codec.cpp.o"
  "CMakeFiles/vgr_net.dir/vgr/net/codec.cpp.o.d"
  "CMakeFiles/vgr_net.dir/vgr/net/duplicate_detector.cpp.o"
  "CMakeFiles/vgr_net.dir/vgr/net/duplicate_detector.cpp.o.d"
  "CMakeFiles/vgr_net.dir/vgr/net/packet.cpp.o"
  "CMakeFiles/vgr_net.dir/vgr/net/packet.cpp.o.d"
  "libvgr_net.a"
  "libvgr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libvgr_net.a"
)

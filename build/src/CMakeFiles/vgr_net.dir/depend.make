# Empty dependencies file for vgr_net.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vgr/net/address.cpp" "src/CMakeFiles/vgr_net.dir/vgr/net/address.cpp.o" "gcc" "src/CMakeFiles/vgr_net.dir/vgr/net/address.cpp.o.d"
  "/root/repo/src/vgr/net/codec.cpp" "src/CMakeFiles/vgr_net.dir/vgr/net/codec.cpp.o" "gcc" "src/CMakeFiles/vgr_net.dir/vgr/net/codec.cpp.o.d"
  "/root/repo/src/vgr/net/duplicate_detector.cpp" "src/CMakeFiles/vgr_net.dir/vgr/net/duplicate_detector.cpp.o" "gcc" "src/CMakeFiles/vgr_net.dir/vgr/net/duplicate_detector.cpp.o.d"
  "/root/repo/src/vgr/net/packet.cpp" "src/CMakeFiles/vgr_net.dir/vgr/net/packet.cpp.o" "gcc" "src/CMakeFiles/vgr_net.dir/vgr/net/packet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vgr_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vgr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

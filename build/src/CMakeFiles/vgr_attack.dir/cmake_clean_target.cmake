file(REMOVE_RECURSE
  "libvgr_attack.a"
)

# Empty dependencies file for vgr_attack.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vgr_attack.dir/vgr/attack/blackhole.cpp.o"
  "CMakeFiles/vgr_attack.dir/vgr/attack/blackhole.cpp.o.d"
  "CMakeFiles/vgr_attack.dir/vgr/attack/inter_area.cpp.o"
  "CMakeFiles/vgr_attack.dir/vgr/attack/inter_area.cpp.o.d"
  "CMakeFiles/vgr_attack.dir/vgr/attack/intra_area.cpp.o"
  "CMakeFiles/vgr_attack.dir/vgr/attack/intra_area.cpp.o.d"
  "CMakeFiles/vgr_attack.dir/vgr/attack/sniffer.cpp.o"
  "CMakeFiles/vgr_attack.dir/vgr/attack/sniffer.cpp.o.d"
  "libvgr_attack.a"
  "libvgr_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgr_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/vgr_traffic.dir/vgr/traffic/idm.cpp.o"
  "CMakeFiles/vgr_traffic.dir/vgr/traffic/idm.cpp.o.d"
  "CMakeFiles/vgr_traffic.dir/vgr/traffic/traffic_sim.cpp.o"
  "CMakeFiles/vgr_traffic.dir/vgr/traffic/traffic_sim.cpp.o.d"
  "libvgr_traffic.a"
  "libvgr_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgr_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

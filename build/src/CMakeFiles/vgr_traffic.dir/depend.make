# Empty dependencies file for vgr_traffic.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libvgr_traffic.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/vgr_gn.dir/vgr/gn/cbf.cpp.o"
  "CMakeFiles/vgr_gn.dir/vgr/gn/cbf.cpp.o.d"
  "CMakeFiles/vgr_gn.dir/vgr/gn/greedy_forwarder.cpp.o"
  "CMakeFiles/vgr_gn.dir/vgr/gn/greedy_forwarder.cpp.o.d"
  "CMakeFiles/vgr_gn.dir/vgr/gn/location_table.cpp.o"
  "CMakeFiles/vgr_gn.dir/vgr/gn/location_table.cpp.o.d"
  "CMakeFiles/vgr_gn.dir/vgr/gn/router.cpp.o"
  "CMakeFiles/vgr_gn.dir/vgr/gn/router.cpp.o.d"
  "libvgr_gn.a"
  "libvgr_gn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgr_gn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for vgr_gn.
# This may be replaced when dependencies are built.

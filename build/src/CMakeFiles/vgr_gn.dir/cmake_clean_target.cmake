file(REMOVE_RECURSE
  "libvgr_gn.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vgr/gn/cbf.cpp" "src/CMakeFiles/vgr_gn.dir/vgr/gn/cbf.cpp.o" "gcc" "src/CMakeFiles/vgr_gn.dir/vgr/gn/cbf.cpp.o.d"
  "/root/repo/src/vgr/gn/greedy_forwarder.cpp" "src/CMakeFiles/vgr_gn.dir/vgr/gn/greedy_forwarder.cpp.o" "gcc" "src/CMakeFiles/vgr_gn.dir/vgr/gn/greedy_forwarder.cpp.o.d"
  "/root/repo/src/vgr/gn/location_table.cpp" "src/CMakeFiles/vgr_gn.dir/vgr/gn/location_table.cpp.o" "gcc" "src/CMakeFiles/vgr_gn.dir/vgr/gn/location_table.cpp.o.d"
  "/root/repo/src/vgr/gn/router.cpp" "src/CMakeFiles/vgr_gn.dir/vgr/gn/router.cpp.o" "gcc" "src/CMakeFiles/vgr_gn.dir/vgr/gn/router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vgr_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vgr_security.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vgr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vgr_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vgr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for example_location_service_privacy.
# This may be replaced when dependencies are built.

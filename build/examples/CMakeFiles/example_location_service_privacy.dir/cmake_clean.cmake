file(REMOVE_RECURSE
  "CMakeFiles/example_location_service_privacy.dir/location_service_privacy.cpp.o"
  "CMakeFiles/example_location_service_privacy.dir/location_service_privacy.cpp.o.d"
  "example_location_service_privacy"
  "example_location_service_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_location_service_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

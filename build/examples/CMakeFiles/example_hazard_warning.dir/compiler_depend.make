# Empty compiler generated dependencies file for example_hazard_warning.
# This may be replaced when dependencies are built.

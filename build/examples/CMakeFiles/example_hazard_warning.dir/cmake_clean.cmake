file(REMOVE_RECURSE
  "CMakeFiles/example_hazard_warning.dir/hazard_warning.cpp.o"
  "CMakeFiles/example_hazard_warning.dir/hazard_warning.cpp.o.d"
  "example_hazard_warning"
  "example_hazard_warning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hazard_warning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/example_curve_collision.dir/curve_collision.cpp.o"
  "CMakeFiles/example_curve_collision.dir/curve_collision.cpp.o.d"
  "example_curve_collision"
  "example_curve_collision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_curve_collision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

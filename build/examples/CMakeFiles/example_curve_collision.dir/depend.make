# Empty dependencies file for example_curve_collision.
# This may be replaced when dependencies are built.

# Empty dependencies file for example_cam_denm_facilities.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_cam_denm_facilities.dir/cam_denm_facilities.cpp.o"
  "CMakeFiles/example_cam_denm_facilities.dir/cam_denm_facilities.cpp.o.d"
  "example_cam_denm_facilities"
  "example_cam_denm_facilities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cam_denm_facilities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Parameterised studies of the blind-curve scenario: how sight distance and
// speeds trade off against the suppressed warning, plus hazard-scenario
// configuration coverage.

#include <gtest/gtest.h>

#include "vgr/scenario/curve.hpp"
#include "vgr/scenario/hazard.hpp"

namespace vgr::scenario {
namespace {

class SightDistanceSweep : public ::testing::TestWithParam<double> {};

TEST_P(SightDistanceSweep, CollisionOnlyBelowCriticalSightline) {
  CurveConfig cfg;
  cfg.attacked = true;
  cfg.sight_distance_m = GetParam();
  const CurveResult r = run_curve_scenario(cfg);
  EXPECT_FALSE(r.warning_delivered);
  // With the default kinematics, stopping from a 20 m/s closing speed needs
  // roughly v*t_react + v^2/(2b) ~ 16 + 33 m of shared sight line.
  if (cfg.sight_distance_m <= 30.0) {
    EXPECT_TRUE(r.collision) << "sight " << cfg.sight_distance_m;
  } else if (cfg.sight_distance_m >= 80.0) {
    EXPECT_FALSE(r.collision) << "sight " << cfg.sight_distance_m;
  }
}

INSTANTIATE_TEST_SUITE_P(Sightlines, SightDistanceSweep,
                         ::testing::Values(15.0, 25.0, 30.0, 80.0, 120.0));

TEST(CurveScenarioConfig, BenignIsRobustToSightline) {
  // With the relayed warning, the outcome must not depend on the sight
  // line at all — V2 stops long before the passing zone.
  for (const double sight : {15.0, 25.0, 60.0}) {
    CurveConfig cfg;
    cfg.sight_distance_m = sight;
    const CurveResult r = run_curve_scenario(cfg);
    EXPECT_TRUE(r.warning_delivered);
    EXPECT_FALSE(r.collision) << "sight " << sight;
  }
}

TEST(CurveScenarioConfig, ProfileIsSampledRegularly) {
  const CurveResult r = run_curve_scenario(CurveConfig{});
  ASSERT_GT(r.profile.size(), 50u);
  for (std::size_t i = 1; i < r.profile.size(); ++i) {
    EXPECT_NEAR(r.profile[i].t - r.profile[i - 1].t, 0.1, 0.02);
  }
}

TEST(CurveScenarioConfig, SlowerV1AvoidsCollisionEvenAttacked) {
  CurveConfig cfg;
  cfg.attacked = true;
  cfg.v1_cruise_floor = 4.0;  // creeping past the hazard
  cfg.v2_cruise_floor = 3.0;
  const CurveResult r = run_curve_scenario(cfg);
  // Low closing speed: the short sight line suffices to stop in time.
  EXPECT_FALSE(r.collision);
}

TEST(HazardScenarioConfig, CustomAttackRangeIsHonored) {
  HazardConfig cfg;
  cfg.mode = HazardConfig::Case::kCbfFlood;
  cfg.road_length_m = 2000.0;
  cfg.hazard_x_m = 1800.0;
  cfg.sim_duration = sim::Duration::seconds(20.0);
  cfg.attacked = true;
  cfg.attack_range_m = 50.0;  // token attacker: too weak to block the flood
  const HazardResult r = HazardScenario{cfg}.run();
  EXPECT_TRUE(r.entrance_notified);
}

TEST(HazardScenarioConfig, SamplesCoverTheWholeRun) {
  HazardConfig cfg;
  cfg.mode = HazardConfig::Case::kCbfFlood;
  cfg.road_length_m = 1500.0;
  cfg.hazard_x_m = 1300.0;
  cfg.sim_duration = sim::Duration::seconds(15.0);
  const HazardResult r = HazardScenario{cfg}.run();
  ASSERT_GE(r.vehicles_over_time.size(), 15u);
  EXPECT_DOUBLE_EQ(r.vehicles_over_time.front().first, 0.0);
  EXPECT_GE(r.peak_vehicle_count, r.final_vehicle_count);
}

}  // namespace
}  // namespace vgr::scenario

// Reactive DCC state machine (ETSI TS 102 687 style, docs/robustness.md):
// CBR band ladder, sliding-window smoothing, per-state Toff, and the
// VGR_DCC_* environment knobs.

#include <gtest/gtest.h>

#include <cstdlib>

#include "vgr/phy/dcc.hpp"

namespace vgr::phy {
namespace {

using namespace vgr::sim::literals;

Dcc make_dcc(std::size_t window = 1) {
  DccConfig cfg;
  cfg.enabled = true;
  cfg.window_samples = window;
  return Dcc{cfg};
}

TEST(Dcc, StateLadderFollowsThresholdBands) {
  // window = 1 makes each sample the window average, so the ladder reacts
  // instantly and every band edge can be probed directly.
  Dcc dcc = make_dcc(1);
  EXPECT_EQ(dcc.state(), Dcc::State::kRelaxed);

  dcc.on_sample(0.29);
  EXPECT_EQ(dcc.state(), Dcc::State::kRelaxed);
  dcc.on_sample(0.30);
  EXPECT_EQ(dcc.state(), Dcc::State::kActive1);
  dcc.on_sample(0.40);
  EXPECT_EQ(dcc.state(), Dcc::State::kActive2);
  dcc.on_sample(0.50);
  EXPECT_EQ(dcc.state(), Dcc::State::kActive3);
  dcc.on_sample(0.62);
  EXPECT_EQ(dcc.state(), Dcc::State::kRestrictive);
  dcc.on_sample(0.05);
  EXPECT_EQ(dcc.state(), Dcc::State::kRelaxed);
  EXPECT_EQ(dcc.state_changes(), 5u);
  EXPECT_EQ(dcc.samples(), 6u);
}

TEST(Dcc, ToffGrowsWithState) {
  Dcc dcc = make_dcc(1);
  EXPECT_EQ(dcc.toff(), 60_ms);
  dcc.on_sample(0.35);
  EXPECT_EQ(dcc.toff(), 100_ms);
  dcc.on_sample(0.45);
  EXPECT_EQ(dcc.toff(), 180_ms);
  dcc.on_sample(0.55);
  EXPECT_EQ(dcc.toff(), 260_ms);
  dcc.on_sample(0.90);
  EXPECT_EQ(dcc.toff(), 460_ms);
}

TEST(Dcc, WindowAverageSmoothsBursts) {
  // One attacker burst inside a 4-sample window must not flip the ladder:
  // avg(0.9, 0, 0, 0) = 0.225 < 0.30 stays Relaxed once the window fills.
  Dcc dcc = make_dcc(4);
  dcc.on_sample(0.9);
  // A part-filled window averages over what it has — a single high sample
  // IS the average right after startup.
  EXPECT_EQ(dcc.state(), Dcc::State::kRestrictive);
  dcc.on_sample(0.0);
  dcc.on_sample(0.0);
  dcc.on_sample(0.0);
  EXPECT_DOUBLE_EQ(dcc.cbr(), 0.225);
  EXPECT_EQ(dcc.state(), Dcc::State::kRelaxed);
  // The burst leaves the window entirely after 4 fresh samples.
  dcc.on_sample(0.0);
  EXPECT_DOUBLE_EQ(dcc.cbr(), 0.0);
}

TEST(Dcc, PeakTracksRawSamplesNotTheAverage) {
  Dcc dcc = make_dcc(10);
  dcc.on_sample(0.8);
  for (int i = 0; i < 9; ++i) dcc.on_sample(0.1);
  EXPECT_DOUBLE_EQ(dcc.peak_cbr(), 0.8);
  EXPECT_LT(dcc.cbr(), 0.30);
}

TEST(Dcc, SamplesAreClampedToUnitInterval) {
  // Busy time accounted at transmit can spill past a sample edge, producing
  // a ratio slightly above 1; the ladder input must stay a true ratio.
  Dcc dcc = make_dcc(1);
  dcc.on_sample(1.7);
  EXPECT_DOUBLE_EQ(dcc.cbr(), 1.0);
  EXPECT_DOUBLE_EQ(dcc.peak_cbr(), 1.0);
  dcc.on_sample(-0.5);
  EXPECT_DOUBLE_EQ(dcc.cbr(), 0.0);
}

TEST(Dcc, WindowIsClampedToRingCapacity) {
  DccConfig cfg;
  cfg.window_samples = 1000;  // silently clamped to the 64-entry ring
  Dcc dcc{cfg};
  for (int i = 0; i < 200; ++i) dcc.on_sample(0.5);
  EXPECT_DOUBLE_EQ(dcc.cbr(), 0.5);
  EXPECT_EQ(dcc.config().window_samples, 64u);
}

TEST(Dcc, StateNamesAreStable) {
  EXPECT_STREQ(name(Dcc::State::kRelaxed), "relaxed");
  EXPECT_STREQ(name(Dcc::State::kRestrictive), "restrictive");
}

TEST(DccConfig, EnvOverridesApplyWholeToken) {
  ::setenv("VGR_DCC", "1", 1);
  ::setenv("VGR_DCC_SAMPLE_MS", "50", 1);
  ::setenv("VGR_DCC_WINDOW", "5", 1);
  DccConfig cfg = DccConfig{}.with_env_overrides();
  EXPECT_TRUE(cfg.enabled);
  EXPECT_EQ(cfg.sample_interval, 50_ms);
  EXPECT_EQ(cfg.window_samples, 5u);

  ::setenv("VGR_DCC", "0", 1);
  ::setenv("VGR_DCC_SAMPLE_MS", "abc", 1);  // malformed: rejected whole-token
  ::setenv("VGR_DCC_WINDOW", "100000", 1);  // clamped to ring capacity
  cfg = DccConfig{}.with_env_overrides();
  EXPECT_FALSE(cfg.enabled);
  EXPECT_EQ(cfg.sample_interval, 100_ms);
  EXPECT_EQ(cfg.window_samples, 64u);

  ::unsetenv("VGR_DCC");
  ::unsetenv("VGR_DCC_SAMPLE_MS");
  ::unsetenv("VGR_DCC_WINDOW");
  cfg = DccConfig{}.with_env_overrides();
  EXPECT_FALSE(cfg.enabled);
}

}  // namespace
}  // namespace vgr::phy

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "vgr/attack/inter_area.hpp"
#include "vgr/attack/intra_area.hpp"
#include "vgr/gn/router.hpp"
#include "vgr/mitigation/profiles.hpp"
#include "vgr/security/authority.hpp"

namespace vgr::mitigation {
namespace {

using namespace vgr::sim::literals;

constexpr double kRange = 486.0;

TEST(Profiles, NoneClearsBothChecks) {
  gn::RouterConfig cfg;
  cfg.plausibility_check = true;
  cfg.rhl_drop_check = true;
  apply(Profile::kNone, cfg);
  EXPECT_FALSE(cfg.plausibility_check);
  EXPECT_FALSE(cfg.rhl_drop_check);
}

TEST(Profiles, PlausibilityOnly) {
  gn::RouterConfig cfg;
  Parameters params;
  params.plausibility_threshold_m = 486.0;
  params.extrapolate = false;
  apply(Profile::kPlausibilityCheck, cfg, params);
  EXPECT_TRUE(cfg.plausibility_check);
  EXPECT_FALSE(cfg.rhl_drop_check);
  EXPECT_DOUBLE_EQ(cfg.plausibility_threshold_m, 486.0);
  EXPECT_FALSE(cfg.plausibility_extrapolate);
}

TEST(Profiles, RhlOnly) {
  gn::RouterConfig cfg;
  Parameters params;
  params.rhl_drop_threshold = 2;
  apply(Profile::kRhlDropCheck, cfg, params);
  EXPECT_FALSE(cfg.plausibility_check);
  EXPECT_TRUE(cfg.rhl_drop_check);
  EXPECT_EQ(cfg.rhl_drop_threshold, 2);
}

TEST(Profiles, FullEnablesBoth) {
  gn::RouterConfig cfg;
  apply(Profile::kFull, cfg);
  EXPECT_TRUE(cfg.plausibility_check);
  EXPECT_TRUE(cfg.rhl_drop_check);
}

TEST(Profiles, NonPositiveThresholdKeepsExisting) {
  gn::RouterConfig cfg;
  cfg.plausibility_threshold_m = 593.0;
  Parameters params;
  params.plausibility_threshold_m = -1.0;
  apply(Profile::kPlausibilityCheck, cfg, params);
  EXPECT_DOUBLE_EQ(cfg.plausibility_threshold_m, 593.0);
}

TEST(Profiles, Names) {
  EXPECT_EQ(to_string(Profile::kNone), "none");
  EXPECT_EQ(to_string(Profile::kFull), "full");
}

// --- End-to-end: mitigations defeat the attacks ---------------------------

struct Node {
  std::unique_ptr<gn::StaticMobility> mobility;
  std::unique_ptr<gn::Router> router;
  std::vector<gn::Router::Delivery> deliveries;
};

class MitigationE2E : public ::testing::Test {
 protected:
  MitigationE2E() : medium_{events_, phy::AccessTechnology::kDsrc} {}

  Node& add_node(double x, Profile profile) {
    nodes_.push_back(std::make_unique<Node>());
    Node& n = *nodes_.back();
    n.mobility = std::make_unique<gn::StaticMobility>(geo::Position{x, 0.0});
    const net::GnAddress addr{net::GnAddress::StationType::kPassengerCar,
                              net::MacAddress{0x200 + nodes_.size()}};
    gn::RouterConfig cfg = gn::RouterConfig::for_technology(phy::AccessTechnology::kDsrc);
    cfg.cbf_dist_max_m = kRange;
    apply(profile, cfg);
    n.router = std::make_unique<gn::Router>(events_, medium_, security::Signer{ca_.enroll(addr)},
                                            ca_.trust_store(), *n.mobility, cfg, kRange,
                                            rng_.fork());
    n.router->set_delivery_handler(
        [&n](const gn::Router::Delivery& d) { n.deliveries.push_back(d); });
    return n;
  }

  void beacons() {
    for (auto& n : nodes_) n->router->send_beacon_now();
    events_.run_until(events_.now() + 100_ms);
  }
  void run_for(sim::Duration d) { events_.run_until(events_.now() + d); }

  sim::EventQueue events_;
  phy::Medium medium_;
  security::CertificateAuthority ca_;
  sim::Rng rng_{777};
  std::vector<std::unique_ptr<Node>> nodes_;
};

TEST_F(MitigationE2E, PlausibilityCheckDefeatsInterAreaInterception) {
  // Same geometry as the attack test, but V1 runs the plausibility check:
  // the replayed 900 m neighbour is rejected and V2 carries the packet.
  Node& v1 = add_node(0.0, Profile::kPlausibilityCheck);
  Node& v2 = add_node(400.0, Profile::kPlausibilityCheck);
  Node& v3 = add_node(850.0, Profile::kPlausibilityCheck);
  Node& relay = add_node(1300.0, Profile::kPlausibilityCheck);
  Node& dest = add_node(1700.0, Profile::kPlausibilityCheck);
  attack::InterAreaInterceptor atk{events_, medium_, {450.0, 10.0}, 900.0};
  beacons();
  run_for(10_ms);

  v1.router->send_geo_broadcast(geo::GeoArea::circle({1700.0, 0.0}, 60.0), {1});
  run_for(3_s);

  EXPECT_EQ(dest.deliveries.size(), 1u);
  EXPECT_GE(v1.router->stats().gf_unicast_forwards, 1u);
  EXPECT_GE(atk.beacons_replayed(), 1u);
  (void)v2;
  (void)v3;
  (void)relay;
}

TEST_F(MitigationE2E, WithoutPlausibilityCheckSameRunIsIntercepted) {
  Node& v1 = add_node(0.0, Profile::kNone);
  add_node(400.0, Profile::kNone);
  add_node(850.0, Profile::kNone);
  add_node(1300.0, Profile::kNone);
  Node& dest = add_node(1700.0, Profile::kNone);
  attack::InterAreaInterceptor atk{events_, medium_, {450.0, 10.0}, 900.0};
  beacons();
  run_for(10_ms);
  v1.router->send_geo_broadcast(geo::GeoArea::circle({1700.0, 0.0}, 60.0), {1});
  run_for(3_s);
  EXPECT_TRUE(dest.deliveries.empty());
  (void)atk;
}

TEST_F(MitigationE2E, RhlDropCheckDefeatsIntraAreaBlockage) {
  Node& v1 = add_node(0.0, Profile::kRhlDropCheck);
  Node& v2 = add_node(400.0, Profile::kRhlDropCheck);
  Node& v3 = add_node(800.0, Profile::kRhlDropCheck);
  Node& v4 = add_node(1200.0, Profile::kRhlDropCheck);
  attack::IntraAreaBlocker atk{events_, medium_, {200.0, 10.0}, 550.0};
  beacons();

  v1.router->send_geo_broadcast(geo::GeoArea::rectangle({600.0, 0.0}, 700.0, 50.0), {1});
  run_for(3_s);

  // V2 sees the RHL collapse (10 -> 1), refuses the duplicate, and the
  // flood continues to the end of the area.
  EXPECT_GE(v2.router->stats().cbf_mitigation_keeps, 1u);
  EXPECT_EQ(v2.router->stats().cbf_rebroadcasts, 1u);
  EXPECT_EQ(v3.deliveries.size(), 1u);
  EXPECT_EQ(v4.deliveries.size(), 1u);
  EXPECT_EQ(atk.packets_replayed(), 1u);
}

TEST_F(MitigationE2E, WithoutRhlCheckSameRunIsBlocked) {
  Node& v1 = add_node(0.0, Profile::kNone);
  add_node(400.0, Profile::kNone);
  add_node(800.0, Profile::kNone);
  Node& v4 = add_node(1200.0, Profile::kNone);
  attack::IntraAreaBlocker atk{events_, medium_, {200.0, 10.0}, 550.0};
  beacons();
  v1.router->send_geo_broadcast(geo::GeoArea::rectangle({600.0, 0.0}, 700.0, 50.0), {1});
  run_for(3_s);
  EXPECT_TRUE(v4.deliveries.empty());
  (void)atk;
}

TEST_F(MitigationE2E, RhlCheckStillSuppressesLegitimateDuplicates) {
  // No attacker: the check must not break normal CBF suppression.
  Node& v1 = add_node(0.0, Profile::kRhlDropCheck);
  Node& near = add_node(100.0, Profile::kRhlDropCheck);
  Node& far = add_node(450.0, Profile::kRhlDropCheck);
  beacons();
  v1.router->send_geo_broadcast(geo::GeoArea::rectangle({250.0, 0.0}, 500.0, 50.0), {1});
  run_for(2_s);
  EXPECT_EQ(far.router->stats().cbf_rebroadcasts, 1u);
  EXPECT_EQ(near.router->stats().cbf_suppressed, 1u);
  EXPECT_EQ(near.router->stats().cbf_mitigation_keeps, 0u);
}

TEST_F(MitigationE2E, PlausibilityCheckDoesNotBreakNormalForwarding) {
  Node& v1 = add_node(0.0, Profile::kFull);
  add_node(400.0, Profile::kFull);
  add_node(800.0, Profile::kFull);
  Node& dest = add_node(1200.0, Profile::kFull);
  beacons();
  v1.router->send_geo_broadcast(geo::GeoArea::circle({1200.0, 0.0}, 60.0), {1});
  run_for(3_s);
  EXPECT_EQ(dest.deliveries.size(), 1u);
}

}  // namespace
}  // namespace vgr::mitigation

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <thread>
#include <vector>

#include "vgr/sim/env.hpp"
#include "vgr/sim/thread_pool.hpp"

namespace vgr::sim {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadDegradesToSerialLoop) {
  ThreadPool pool{1};
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<std::size_t> order;
  pool.parallel_for(16, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // strictly in order: no worker involved
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool{2};
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, MoreTasksThanThreadsAndViceVersa) {
  ThreadPool pool{8};
  std::atomic<int> sum{0};
  pool.parallel_for(3, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i) + 1); });
  EXPECT_EQ(sum.load(), 6);
  sum = 0;
  pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, SubmitRunsDetachedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool{2};
    for (int i = 0; i < 10; ++i) pool.submit([&ran] { ran.fetch_add(1); });
    // Destructor note: tasks may or may not all run before stop; drain by
    // spinning here while the pool is alive.
    while (ran.load() < 10) std::this_thread::yield();
  }
  EXPECT_EQ(ran.load(), 10);
}

TEST(EnvParsing, WholeTokenValidation) {
  ::setenv("VGR_TEST_INT", "42", 1);
  EXPECT_EQ(env_int("VGR_TEST_INT"), 42);
  ::setenv("VGR_TEST_INT", "  7", 1);  // leading blanks fine (strtol skips)
  EXPECT_EQ(env_int("VGR_TEST_INT"), 7);
  ::setenv("VGR_TEST_INT", "5x", 1);  // trailing garbage: reject whole token
  EXPECT_FALSE(env_int("VGR_TEST_INT").has_value());
  ::setenv("VGR_TEST_INT", "abc", 1);
  EXPECT_FALSE(env_int("VGR_TEST_INT").has_value());
  ::setenv("VGR_TEST_INT", "", 1);
  EXPECT_FALSE(env_int("VGR_TEST_INT").has_value());
  ::unsetenv("VGR_TEST_INT");
  EXPECT_FALSE(env_int("VGR_TEST_INT").has_value());

  ::setenv("VGR_TEST_DBL", "2.5", 1);
  EXPECT_EQ(env_double("VGR_TEST_DBL"), 2.5);
  ::setenv("VGR_TEST_DBL", "2.5s", 1);
  EXPECT_FALSE(env_double("VGR_TEST_DBL").has_value());
  ::unsetenv("VGR_TEST_DBL");
}

TEST(EnvParsing, DefaultThreadCountHonoursEnv) {
  ::setenv("VGR_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_thread_count(), 3u);
  ::setenv("VGR_THREADS", "abc", 1);  // rejected -> hardware fallback >= 1
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
  ::unsetenv("VGR_THREADS");
}

}  // namespace
}  // namespace vgr::sim

#include <gtest/gtest.h>

#include "vgr/gn/cbf.hpp"
#include "vgr/security/authority.hpp"

namespace vgr::gn {
namespace {

using namespace vgr::sim::literals;

constexpr auto kToMin = sim::Duration::millis(1);
constexpr auto kToMax = sim::Duration::millis(100);
constexpr double kDistMax = 486.0;

TEST(CbfTimeout, ZeroDistanceGivesToMax) {
  EXPECT_EQ(cbf_timeout(0.0, kToMin, kToMax, kDistMax), kToMax);
}

TEST(CbfTimeout, DistMaxGivesToMin) {
  EXPECT_EQ(cbf_timeout(kDistMax, kToMin, kToMax, kDistMax), kToMin);
}

TEST(CbfTimeout, BeyondDistMaxGivesToMin) {
  EXPECT_EQ(cbf_timeout(2000.0, kToMin, kToMax, kDistMax), kToMin);
}

TEST(CbfTimeout, NegativeDistanceClampsToZero) {
  EXPECT_EQ(cbf_timeout(-5.0, kToMin, kToMax, kDistMax), kToMax);
}

TEST(CbfTimeout, MidpointIsLinear) {
  const auto to = cbf_timeout(kDistMax / 2.0, kToMin, kToMax, kDistMax);
  EXPECT_NEAR(to.to_millis(), 50.5, 0.01);  // (100 + 1) / 2
}

// Property: TO is monotonically non-increasing in distance and bounded by
// [TO_MIN, TO_MAX] — farther receivers always fire first.
class CbfTimeoutSweep : public ::testing::TestWithParam<double> {};

TEST_P(CbfTimeoutSweep, MonotoneAndBounded) {
  const double dist_max = GetParam();
  sim::Duration prev = sim::Duration::max();
  for (double d = 0.0; d <= dist_max * 1.5; d += dist_max / 37.0) {
    const auto to = cbf_timeout(d, kToMin, kToMax, dist_max);
    EXPECT_GE(to, kToMin);
    EXPECT_LE(to, kToMax);
    EXPECT_LE(to, prev) << "TO must not increase with distance (d=" << d << ")";
    prev = to;
  }
}

INSTANTIATE_TEST_SUITE_P(DistMaxValues, CbfTimeoutSweep,
                         ::testing::Values(327.0, 486.0, 593.0, 1283.0, 1703.0));

// --- CbfBuffer ------------------------------------------------------------

class CbfBufferTest : public ::testing::Test {
 protected:
  CbfBufferTest() : buffer_{events_} {}

  security::SecuredMessagePtr make_msg(std::uint8_t rhl) {
    net::Packet p;
    p.basic.remaining_hop_limit = rhl;
    p.common.type = net::CommonHeader::HeaderType::kGeoBroadcast;
    p.extended = net::GbcHeader{1, {}, geo::GeoArea::circle({0, 0}, 10.0)};
    return security::share(security::SecuredMessage::from_parts(std::move(p), {}, 0));
  }

  CbfKey key(std::uint64_t src = 1, net::SequenceNumber sn = 1) {
    return {net::GnAddress::from_bits(src), sn};
  }

  sim::EventQueue events_;
  CbfBuffer buffer_;
  int rebroadcasts_ = 0;
};

TEST_F(CbfBufferTest, TimerFiresAndHandsBackMessage) {
  std::uint8_t fired_rhl = 0;
  buffer_.insert(key(), make_msg(9), 10, 10_ms, [&](const security::SecuredMessagePtr& m) {
    ++rebroadcasts_;
    fired_rhl = m->packet().basic.remaining_hop_limit;
  });
  EXPECT_TRUE(buffer_.contains(key()));
  events_.run_until(sim::TimePoint::at(20_ms));
  EXPECT_EQ(rebroadcasts_, 1);
  EXPECT_EQ(fired_rhl, 9);
  EXPECT_FALSE(buffer_.contains(key()));
}

TEST_F(CbfBufferTest, TimerDoesNotFireEarly) {
  buffer_.insert(key(), make_msg(9), 10, 50_ms,
                 [&](const security::SecuredMessagePtr&) { ++rebroadcasts_; });
  events_.run_until(sim::TimePoint::at(49_ms));
  EXPECT_EQ(rebroadcasts_, 0);
}

TEST_F(CbfBufferTest, DuplicateCancelsContention) {
  buffer_.insert(key(), make_msg(9), 10, 50_ms,
                 [&](const security::SecuredMessagePtr&) { ++rebroadcasts_; });
  const auto outcome = buffer_.on_duplicate(key(), 9, /*rhl_check=*/false, 3);
  EXPECT_EQ(outcome, CbfDuplicateOutcome::kDiscarded);
  events_.run_until(sim::TimePoint::at(100_ms));
  EXPECT_EQ(rebroadcasts_, 0);
  EXPECT_FALSE(buffer_.contains(key()));
}

TEST_F(CbfBufferTest, DuplicateWithoutEntryIsNoEntry) {
  EXPECT_EQ(buffer_.on_duplicate(key(), 9, false, 3), CbfDuplicateOutcome::kNoEntry);
}

TEST_F(CbfBufferTest, ReinsertionOfSameKeyIsIgnored) {
  buffer_.insert(key(), make_msg(9), 10, 10_ms,
                 [&](const security::SecuredMessagePtr&) { ++rebroadcasts_; });
  buffer_.insert(key(), make_msg(8), 9, 10_ms,
                 [&](const security::SecuredMessagePtr&) { ++rebroadcasts_; });
  EXPECT_EQ(buffer_.size(), 1u);
  events_.run_until(sim::TimePoint::at(50_ms));
  EXPECT_EQ(rebroadcasts_, 1);
}

TEST_F(CbfBufferTest, DistinctKeysContendIndependently) {
  buffer_.insert(key(1, 1), make_msg(9), 10, 10_ms,
                 [&](const security::SecuredMessagePtr&) { ++rebroadcasts_; });
  buffer_.insert(key(1, 2), make_msg(9), 10, 20_ms,
                 [&](const security::SecuredMessagePtr&) { ++rebroadcasts_; });
  buffer_.on_duplicate(key(1, 1), 9, false, 3);
  events_.run_until(sim::TimePoint::at(100_ms));
  EXPECT_EQ(rebroadcasts_, 1);  // only (1,2) survived to its timeout
}

TEST_F(CbfBufferTest, ClearCancelsAllTimers) {
  buffer_.insert(key(1, 1), make_msg(9), 10, 10_ms,
                 [&](const security::SecuredMessagePtr&) { ++rebroadcasts_; });
  buffer_.insert(key(1, 2), make_msg(9), 10, 10_ms,
                 [&](const security::SecuredMessagePtr&) { ++rebroadcasts_; });
  buffer_.clear();
  EXPECT_EQ(buffer_.size(), 0u);
  events_.run_until(sim::TimePoint::at(100_ms));
  EXPECT_EQ(rebroadcasts_, 0);
}

// --- RHL-drop mitigation (paper §V-B) -------------------------------------

TEST_F(CbfBufferTest, MitigationKeepsContentionOnSteepRhlDrop) {
  // Buffered with RHL 10; the attacker's replay carries RHL 1: drop of 9
  // exceeds the threshold of 3 -> duplicate rejected, timer keeps running.
  buffer_.insert(key(), make_msg(9), 10, 10_ms,
                 [&](const security::SecuredMessagePtr&) { ++rebroadcasts_; });
  const auto outcome = buffer_.on_duplicate(key(), 1, /*rhl_check=*/true, 3);
  EXPECT_EQ(outcome, CbfDuplicateOutcome::kKeptByMitigation);
  EXPECT_TRUE(buffer_.contains(key()));
  events_.run_until(sim::TimePoint::at(50_ms));
  EXPECT_EQ(rebroadcasts_, 1);  // the flood continues
}

TEST_F(CbfBufferTest, MitigationAcceptsLegitimatePeerRebroadcast) {
  // A peer that received the same RHL-10 copy rebroadcasts with RHL 9:
  // drop of 1 is within the threshold -> normal suppression.
  buffer_.insert(key(), make_msg(9), 10, 10_ms,
                 [&](const security::SecuredMessagePtr&) { ++rebroadcasts_; });
  const auto outcome = buffer_.on_duplicate(key(), 9, true, 3);
  EXPECT_EQ(outcome, CbfDuplicateOutcome::kDiscarded);
  events_.run_until(sim::TimePoint::at(50_ms));
  EXPECT_EQ(rebroadcasts_, 0);
}

TEST_F(CbfBufferTest, MitigationBoundaryDropExactlyThresholdAccepted) {
  buffer_.insert(key(), make_msg(9), 10, 10_ms,
                 [&](const security::SecuredMessagePtr&) { ++rebroadcasts_; });
  EXPECT_EQ(buffer_.on_duplicate(key(), 7, true, 3), CbfDuplicateOutcome::kDiscarded);
}

TEST_F(CbfBufferTest, MitigationBoundaryDropJustOverThresholdRejected) {
  buffer_.insert(key(), make_msg(9), 10, 10_ms,
                 [&](const security::SecuredMessagePtr&) { ++rebroadcasts_; });
  EXPECT_EQ(buffer_.on_duplicate(key(), 6, true, 3), CbfDuplicateOutcome::kKeptByMitigation);
}

TEST_F(CbfBufferTest, MitigationHandlesRhlIncreaseGracefully) {
  // A duplicate with *higher* RHL than we received (negative drop) is not
  // suspicious under the drop rule.
  buffer_.insert(key(), make_msg(4), 5, 10_ms,
                 [&](const security::SecuredMessagePtr&) { ++rebroadcasts_; });
  EXPECT_EQ(buffer_.on_duplicate(key(), 10, true, 3), CbfDuplicateOutcome::kDiscarded);
}

}  // namespace
}  // namespace vgr::gn

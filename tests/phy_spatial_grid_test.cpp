#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "vgr/phy/medium.hpp"
#include "vgr/phy/spatial_grid.hpp"
#include "vgr/sim/random.hpp"

namespace vgr::phy {
namespace {

std::vector<SpatialGrid::Entry> random_layout(sim::Rng& rng, std::size_t n, double length,
                                              double width) {
  std::vector<SpatialGrid::Entry> entries;
  entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    entries.push_back({static_cast<std::uint32_t>(i) + 1,
                       {rng.uniform(0.0, length), rng.uniform(-width, width)}});
  }
  return entries;
}

TEST(SpatialGrid, QueryMatchesBruteForceOnRandomLayouts) {
  sim::Rng rng{0xC0FFEE};
  SpatialGrid grid;
  for (int layout = 0; layout < 20; ++layout) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 400));
    const auto entries = random_layout(rng, n, 4000.0, 10.0);
    const double cell = rng.uniform(20.0, 600.0);
    grid.rebuild(entries, cell);
    for (int q = 0; q < 25; ++q) {
      const geo::Position center{rng.uniform(-200.0, 4200.0), rng.uniform(-30.0, 30.0)};
      const double radius = rng.uniform(0.0, 800.0);
      EXPECT_EQ(grid.query(center, radius), grid.query_brute_force(center, radius))
          << "layout " << layout << " n=" << n << " cell=" << cell << " r=" << radius;
    }
  }
}

TEST(SpatialGrid, ResultIsSortedById) {
  sim::Rng rng{7};
  SpatialGrid grid;
  const auto entries = random_layout(rng, 200, 1000.0, 10.0);
  grid.rebuild(entries, 100.0);
  const auto ids = grid.query({500.0, 0.0}, 400.0);
  EXPECT_FALSE(ids.empty());
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
}

TEST(SpatialGrid, EmptyAndDegenerateQueries) {
  SpatialGrid grid;
  EXPECT_TRUE(grid.query({0.0, 0.0}, 100.0).empty());  // nothing indexed
  grid.rebuild({{1, {0.0, 0.0}}, {2, {10.0, 0.0}}}, 50.0);
  EXPECT_TRUE(grid.query({0.0, 0.0}, -1.0).empty());  // negative radius
  // Zero radius still returns a node exactly at the centre.
  EXPECT_EQ(grid.query({0.0, 0.0}, 0.0), (std::vector<std::uint32_t>{1}));
}

TEST(SpatialGrid, BoundaryIsInclusive) {
  SpatialGrid grid;
  grid.rebuild({{1, {100.0, 0.0}}}, 50.0);
  EXPECT_EQ(grid.query({0.0, 0.0}, 100.0).size(), 1u);
  EXPECT_TRUE(grid.query({0.0, 0.0}, 99.999).empty());
}

TEST(SpatialGrid, NegativeCoordinatesAreIndexed) {
  SpatialGrid grid;
  grid.rebuild({{1, {-250.0, -40.0}}, {2, {250.0, 40.0}}}, 100.0);
  EXPECT_EQ(grid.query({-250.0, -40.0}, 10.0), (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(grid.query({0.0, 0.0}, 1000.0).size(), 2u);
}

// Medium-level equivalence: with the index on or off, the same frames reach
// the same receivers (the index only prunes, never filters).
TEST(MediumIndex, DeliverySetMatchesScanPath) {
  std::vector<int> reference;
  for (const bool index_on : {false, true}) {
    sim::EventQueue events;
    Medium medium{events, AccessTechnology::kDsrc};
    medium.set_spatial_index(index_on);
    sim::Rng rng{42};
    struct NodeState {
      geo::Position pos;
      int received{0};
    };
    std::vector<std::unique_ptr<NodeState>> nodes;
    std::vector<RadioId> ids;
    for (int i = 0; i < 120; ++i) {
      nodes.push_back(std::make_unique<NodeState>());
      NodeState& n = *nodes.back();
      n.pos = {rng.uniform(0.0, 3000.0), rng.uniform(-10.0, 10.0)};
      Medium::NodeConfig cfg;
      cfg.mac = net::MacAddress{static_cast<std::uint64_t>(i) + 1};
      cfg.position = [&n] { return n.pos; };
      cfg.tx_range_m = 486.0;
      ids.push_back(medium.add_node(std::move(cfg), [&n](const Frame&, RadioId) {
        ++n.received;
      }));
    }
    Frame f;
    f.src = net::MacAddress{1};
    f.msg = security::share(security::SecuredMessage{});
    for (const RadioId sender : ids) {
      medium.transmit(sender, f);
      events.run_until(events.now() + sim::Duration::seconds(1.0));
    }
    // Record the delivery pattern of this mode, compare across modes.
    std::vector<int> pattern;
    for (const auto& n : nodes) pattern.push_back(n->received);
    if (!index_on) {
      reference = pattern;
    } else {
      EXPECT_EQ(pattern, reference);
    }
  }
}

}  // namespace
}  // namespace vgr::phy

#include <gtest/gtest.h>

#include "vgr/net/codec.hpp"
#include "vgr/security/authority.hpp"
#include "vgr/security/crypto.hpp"
#include "vgr/security/pseudonym.hpp"
#include "vgr/security/secured_message.hpp"

namespace vgr::security {
namespace {

net::GnAddress addr(std::uint64_t mac) {
  return net::GnAddress{net::GnAddress::StationType::kPassengerCar, net::MacAddress{mac}};
}

net::Packet sample_gbc(std::uint64_t src_mac) {
  net::Packet p;
  p.basic.remaining_hop_limit = 10;
  p.common.type = net::CommonHeader::HeaderType::kGeoBroadcast;
  net::LongPositionVector pv;
  pv.address = addr(src_mac);
  pv.position = {100.0, 2.5};
  p.extended = net::GbcHeader{1, pv, geo::GeoArea::circle({4020.0, 2.5}, 30.0)};
  p.payload = {9, 9, 9};
  return p;
}

TEST(KeyedDigest, DeterministicAndKeyed) {
  const net::Bytes msg{1, 2, 3};
  EXPECT_EQ(keyed_digest(42, msg), keyed_digest(42, msg));
  EXPECT_NE(keyed_digest(42, msg), keyed_digest(43, msg));
}

TEST(KeyedDigest, SensitiveToEveryByte) {
  net::Bytes msg(64, 0xAA);
  const std::uint64_t base = keyed_digest(7, msg);
  for (std::size_t i = 0; i < msg.size(); ++i) {
    net::Bytes mutated = msg;
    mutated[i] ^= 0x01;
    EXPECT_NE(keyed_digest(7, mutated), base) << "byte " << i;
  }
}

TEST(KeyedDigest, EmptyMessageStillKeyed) {
  EXPECT_NE(keyed_digest(1, {}), keyed_digest(2, {}));
}

TEST(PrivateKey, DefaultIsInvalid) {
  EXPECT_FALSE(PrivateKey{}.valid());
}

TEST(CertificateAuthority, EnrollmentYieldsValidCertificate) {
  CertificateAuthority ca;
  const auto id = ca.enroll(addr(1));
  EXPECT_TRUE(id.key.valid());
  EXPECT_EQ(id.certificate.subject, addr(1));
  EXPECT_FALSE(id.certificate.is_pseudonym);
  EXPECT_TRUE(ca.trust_store()->certificate_valid(id.certificate));
}

TEST(CertificateAuthority, SerialsAreUnique) {
  CertificateAuthority ca;
  const auto a = ca.enroll(addr(1));
  const auto b = ca.enroll(addr(2));
  EXPECT_NE(a.certificate.serial, b.certificate.serial);
  EXPECT_EQ(ca.issued_count(), 2u);
}

TEST(CertificateAuthority, TamperedSubjectFailsValidation) {
  CertificateAuthority ca;
  auto id = ca.enroll(addr(1));
  Certificate forged = id.certificate;
  forged.subject = addr(99);  // claim another identity
  EXPECT_FALSE(ca.trust_store()->certificate_valid(forged));
}

TEST(CertificateAuthority, UnknownSerialFailsValidation) {
  CertificateAuthority ca;
  Certificate ghost;
  ghost.serial = 12345;
  ghost.subject = addr(1);
  EXPECT_FALSE(ca.trust_store()->certificate_valid(ghost));
}

TEST(CertificateAuthority, RevocationTakesEffect) {
  CertificateAuthority ca;
  const auto id = ca.enroll(addr(1));
  ca.revoke(id.certificate.serial);
  EXPECT_FALSE(ca.trust_store()->certificate_valid(id.certificate));
}

TEST(CertificateAuthority, DistinctCAsDoNotCrossValidate) {
  CertificateAuthority ca1{111}, ca2{222};
  const auto id = ca1.enroll(addr(1));
  EXPECT_FALSE(ca2.trust_store()->certificate_valid(id.certificate));
}

TEST(SecuredMessage, SignVerifyRoundTrip) {
  CertificateAuthority ca;
  const Signer signer{ca.enroll(addr(1))};
  const auto msg = SecuredMessage::sign(sample_gbc(1), signer);
  EXPECT_TRUE(msg.verify(*ca.trust_store()));
}

TEST(SecuredMessage, ReplayedMessageStillVerifies) {
  // The heart of attack #1: a byte-for-byte replay is indistinguishable
  // from the original to the verifier.
  CertificateAuthority ca;
  const Signer signer{ca.enroll(addr(1))};
  const auto original = SecuredMessage::sign(sample_gbc(1), signer);
  const SecuredMessage replayed = original;  // captured & re-injected
  EXPECT_TRUE(replayed.verify(*ca.trust_store()));
}

TEST(SecuredMessage, RhlRewriteIsUndetectable) {
  // The heart of attack #2: RHL is outside the signature scope.
  CertificateAuthority ca;
  const Signer signer{ca.enroll(addr(1))};
  auto msg = SecuredMessage::sign(sample_gbc(1), signer);
  msg.mutable_packet().basic.remaining_hop_limit = 1;
  EXPECT_TRUE(msg.verify(*ca.trust_store()));
}

TEST(SecuredMessage, PayloadTamperingIsDetected) {
  CertificateAuthority ca;
  const Signer signer{ca.enroll(addr(1))};
  auto msg = SecuredMessage::sign(sample_gbc(1), signer);
  msg.mutable_packet().payload[0] ^= 0xFF;
  EXPECT_FALSE(msg.verify(*ca.trust_store()));
}

TEST(SecuredMessage, PositionTamperingIsDetected) {
  // A false-position-advertisement attack (the paper's related work [14])
  // cannot alter a legitimate PV without breaking the signature.
  CertificateAuthority ca;
  const Signer signer{ca.enroll(addr(1))};
  auto msg = SecuredMessage::sign(sample_gbc(1), signer);
  msg.mutable_packet().gbc()->source_pv.position.x += 500.0;
  EXPECT_FALSE(msg.verify(*ca.trust_store()));
}

TEST(SecuredMessage, AreaTamperingIsDetected) {
  CertificateAuthority ca;
  const Signer signer{ca.enroll(addr(1))};
  auto msg = SecuredMessage::sign(sample_gbc(1), signer);
  msg.mutable_packet().gbc()->area = geo::GeoArea::circle({0.0, 0.0}, 5.0);
  EXPECT_FALSE(msg.verify(*ca.trust_store()));
}

TEST(SecuredMessage, WrongSignerCertificateFails) {
  CertificateAuthority ca;
  const Signer alice{ca.enroll(addr(1))};
  const auto bob = ca.enroll(addr(2));
  auto msg = SecuredMessage::sign(sample_gbc(1), alice);
  msg.set_signer(bob.certificate);  // present someone else's certificate
  EXPECT_FALSE(msg.verify(*ca.trust_store()));
}

TEST(SecuredMessage, OutsiderForgeryFails) {
  // An attacker without any enrolled key cannot mint a valid envelope.
  CertificateAuthority ca;
  Certificate fake;
  fake.serial = 77;
  fake.subject = addr(1);
  const SecuredMessage forged =
      SecuredMessage::from_parts(sample_gbc(1), fake, 0x1234'5678'9ABC'DEF0ULL);
  EXPECT_FALSE(forged.verify(*ca.trust_store()));
}

TEST(SecuredMessage, RevokedSignerFailsVerification) {
  CertificateAuthority ca;
  const auto id = ca.enroll(addr(1));
  const auto msg = SecuredMessage::sign(sample_gbc(1), Signer{id});
  ca.revoke(id.certificate.serial);
  EXPECT_FALSE(msg.verify(*ca.trust_store()));
}

TEST(Pseudonym, PoolIssuesAndRotates) {
  CertificateAuthority ca;
  sim::Rng rng{5};
  PseudonymManager mgr{ca, net::MacAddress{0xAA}, 4, sim::Duration::seconds(10.0), rng};
  EXPECT_EQ(mgr.pool_size(), 4u);

  const auto t0 = sim::TimePoint::origin();
  const auto alias0 = mgr.current_alias(t0);
  const auto alias1 = mgr.current_alias(t0 + sim::Duration::seconds(11.0));
  EXPECT_NE(alias0, alias1);
  EXPECT_EQ(mgr.rotations(), 1u);
}

TEST(Pseudonym, PseudonymCertificatesVerify) {
  CertificateAuthority ca;
  sim::Rng rng{6};
  PseudonymManager mgr{ca, net::MacAddress{0xBB}, 2, sim::Duration::seconds(60.0), rng};
  const auto& id = mgr.active(sim::TimePoint::origin());
  EXPECT_TRUE(id.certificate.is_pseudonym);
  const auto msg = SecuredMessage::sign(sample_gbc(id.certificate.subject.mac().bits()),
                                        Signer{id});
  EXPECT_TRUE(msg.verify(*ca.trust_store()));
}

// --- Wire-image cache -----------------------------------------------------

TEST(SecuredMessage, WireMatchesCodecEncode) {
  CertificateAuthority ca;
  const auto msg = SecuredMessage::sign(sample_gbc(1), Signer{ca.enroll(addr(1))});
  EXPECT_EQ(msg.wire(), net::Codec::encode(msg.packet()));
  EXPECT_EQ(msg.wire_size(), msg.wire().size());
}

TEST(SecuredMessage, WireRebuiltAfterRhlRewrite) {
  CertificateAuthority ca;
  const auto msg = SecuredMessage::sign(sample_gbc(1), Signer{ca.enroll(addr(1))});
  const net::Bytes before = msg.wire();  // warm the cache
  const SecuredMessage hop = msg.with_remaining_hop_limit(3);
  // The copy's wire image reflects the new RHL, not the cached original's.
  EXPECT_EQ(hop.wire(), net::Codec::encode(hop.packet()));
  EXPECT_NE(hop.wire(), before);
  EXPECT_EQ(msg.wire(), before);  // the original is untouched
}

TEST(SecuredMessage, RhlRewriteSharesSignedPortion) {
  CertificateAuthority ca;
  const auto msg = SecuredMessage::sign(sample_gbc(1), Signer{ca.enroll(addr(1))});
  const SecuredMessage hop = msg.with_remaining_hop_limit(3);
  // Same object, not merely equal bytes: the forwarding path re-uses the
  // encoding built at sign() time, which is what keeps the verify memo warm
  // across hops.
  EXPECT_EQ(msg.signed_portion().get(), hop.signed_portion().get());
}

TEST(SecuredMessage, MutablePacketDropsCaches) {
  CertificateAuthority ca;
  auto msg = SecuredMessage::sign(sample_gbc(1), Signer{ca.enroll(addr(1))});
  const net::Bytes stale = msg.wire();
  msg.mutable_packet().payload.push_back(0xEE);
  EXPECT_EQ(msg.wire(), net::Codec::encode(msg.packet()));
  EXPECT_NE(msg.wire(), stale);
}

// --- Verification memo: negative paths after a warm hit --------------------

TEST(SecuredMessage, TamperAfterWarmVerifyStillFails) {
  // A warm memo entry must never vouch for bytes it was not computed over.
  // Every mutation shape the codec fuzzer can produce on the signed portion
  // — payload bytes, position, area, sequence number, header fields — has to
  // fall out of the memo and fail a full verification.
  CertificateAuthority ca;
  const Signer signer{ca.enroll(addr(1))};
  const auto original = SecuredMessage::sign(sample_gbc(1), signer);
  ASSERT_TRUE(original.verify(*ca.trust_store()));  // warm the memo
  ASSERT_TRUE(original.verify(*ca.trust_store()));

  const auto tampered_fails = [&](auto&& mutate) {
    SecuredMessage copy = original;  // shares the warm caches
    mutate(copy.mutable_packet());   // drops them; memo keyed on new bytes
    return !copy.verify(*ca.trust_store());
  };
  EXPECT_TRUE(tampered_fails([](net::Packet& p) { p.payload[0] ^= 0x01; }));
  EXPECT_TRUE(tampered_fails([](net::Packet& p) { p.payload.clear(); }));
  EXPECT_TRUE(tampered_fails([](net::Packet& p) { p.payload.resize(64, 0xFF); }));
  EXPECT_TRUE(tampered_fails([](net::Packet& p) { p.gbc()->source_pv.position.x += 1.0; }));
  EXPECT_TRUE(tampered_fails(
      [](net::Packet& p) { p.gbc()->area = geo::GeoArea::circle({0.0, 0.0}, 1.0); }));
  EXPECT_TRUE(tampered_fails([](net::Packet& p) { ++p.gbc()->sequence_number; }));
  EXPECT_TRUE(tampered_fails([](net::Packet& p) { p.common.traffic_class ^= 1; }));
  // And the envelope fields outside the packet:
  {
    SecuredMessage copy = original;
    copy.set_signature(original.signature() ^ 1);
    EXPECT_FALSE(copy.verify(*ca.trust_store()));
  }
  {
    SecuredMessage copy = original;
    copy.set_signer(ca.enroll(addr(2)).certificate);
    EXPECT_FALSE(copy.verify(*ca.trust_store()));
  }
  // Basic-header mutations stay verifiable — they are outside the signature
  // scope by design (the paper's attack #2), warm memo or not.
  SecuredMessage rhl = original.with_remaining_hop_limit(1);
  EXPECT_TRUE(rhl.verify(*ca.trust_store()));
  // The untouched original still verifies after all of the above.
  EXPECT_TRUE(original.verify(*ca.trust_store()));
}

TEST(SecuredMessage, WireTamperThenReingestFailsVerification) {
  // The over-the-air shape of the same property: flip bits in the wire
  // image (the fault injector / fuzzer mutation), decode, reassemble via
  // from_parts — exactly the router's raw-ingest path — and verify. Any
  // decodable mutant that changed signed bytes must fail; mutants that only
  // touched the basic header must still pass.
  CertificateAuthority ca;
  const Signer signer{ca.enroll(addr(1))};
  const auto original = SecuredMessage::sign(sample_gbc(1), signer);
  ASSERT_TRUE(original.verify(*ca.trust_store()));  // warm the memo
  const net::Bytes wire = original.wire();
  const net::Bytes signed_bytes = net::Codec::encode_signed_portion(original.packet());
  int decodable = 0, signed_mutants = 0, benign_mutants = 0;
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    net::Bytes mutant = wire;
    mutant[byte] ^= 0x04;
    const auto decoded = net::Codec::decode(mutant);
    if (!decoded.has_value()) continue;  // ingest rejects it before verify
    ++decodable;
    const auto reassembled =
        SecuredMessage::from_parts(*decoded, original.signer(), original.signature());
    // The oracle is the signed portion of what actually decoded: flips in
    // the basic header (RHL, lifetime) or in wire fields the decoder
    // normalizes away (a circle's unused half-axis/azimuth doubles) leave
    // it untouched and must keep verifying; anything else must fail.
    if (net::Codec::encode_signed_portion(*decoded) == signed_bytes) {
      ++benign_mutants;
      EXPECT_TRUE(reassembled.verify(*ca.trust_store())) << "byte " << byte;
    } else {
      ++signed_mutants;
      EXPECT_FALSE(reassembled.verify(*ca.trust_store())) << "byte " << byte;
    }
  }
  EXPECT_GT(decodable, 0);
  EXPECT_GT(signed_mutants, 0);
  EXPECT_GT(benign_mutants, 0);
}

// --- TrustStore cache behaviour --------------------------------------------

TEST(TrustStore, VerifyMemoHitsOnRepeatAndRhlRewrite) {
  CertificateAuthority ca;
  const auto msg = SecuredMessage::sign(sample_gbc(1), Signer{ca.enroll(addr(1))});
  const TrustStore& trust = *ca.trust_store();

  const auto first = msg.verify_detailed(trust);
  EXPECT_TRUE(first.ok);
  EXPECT_FALSE(first.from_memo);

  const auto second = msg.verify_detailed(trust);
  EXPECT_TRUE(second.ok);
  EXPECT_TRUE(second.from_memo);

  // An RHL-rewritten forward hits the same memo entry: identical signed
  // portion, signer and signature.
  const auto hop = msg.with_remaining_hop_limit(2).verify_detailed(trust);
  EXPECT_TRUE(hop.ok);
  EXPECT_TRUE(hop.from_memo);

  const auto& stats = trust.cache_stats();
  EXPECT_EQ(stats.memo_misses, 1u);
  EXPECT_EQ(stats.memo_hits, 2u);
}

TEST(TrustStore, MemoDistinguishesEqualDigestBuckets) {
  // Two different messages never share a verdict even if their structural
  // digests collided: the hit condition re-checks the full bytes.
  CertificateAuthority ca;
  const Signer signer{ca.enroll(addr(1))};
  const auto a = SecuredMessage::sign(sample_gbc(1), signer);
  const auto b = SecuredMessage::sign(sample_gbc(2), signer);
  EXPECT_TRUE(a.verify(*ca.trust_store()));
  EXPECT_TRUE(b.verify(*ca.trust_store()));
  EXPECT_TRUE(a.verify(*ca.trust_store()));
  EXPECT_GE(ca.trust_store()->cache_stats().memo_misses, 2u);
}

TEST(TrustStore, RevocationInvalidatesWarmMemo) {
  // Revocation bumps the store generation, so a memo entry minted before
  // the revocation can never answer for the revoked signer.
  CertificateAuthority ca;
  const auto id = ca.enroll(addr(1));
  const auto msg = SecuredMessage::sign(sample_gbc(1), Signer{id});
  ASSERT_TRUE(msg.verify(*ca.trust_store()));
  ASSERT_TRUE(msg.verify(*ca.trust_store()));  // warm
  const std::uint64_t gen_before = ca.trust_store()->generation();
  ca.revoke(id.certificate.serial);
  EXPECT_GT(ca.trust_store()->generation(), gen_before);
  EXPECT_FALSE(msg.verify(*ca.trust_store()));
}

TEST(TrustStore, EnrollmentAfterNegativeCacheIsVisible) {
  // The dual hazard: a *negative* verdict cached before the signer enrolled
  // (node churn re-enrollment) must not outlive the enrollment.
  CertificateAuthority ca;
  const auto id = ca.enroll(addr(1));
  const auto msg = SecuredMessage::sign(sample_gbc(1), Signer{id});
  CertificateAuthority other;  // different trust domain: verification fails
  ASSERT_FALSE(msg.verify(*other.trust_store()));
  ASSERT_FALSE(msg.verify(*other.trust_store()));  // negative memo is warm
  other.enroll(addr(9));  // any issue bumps the generation
  // Still fails (wrong CA), but through a fresh computation, not the memo.
  const auto v = msg.verify_detailed(*other.trust_store());
  EXPECT_FALSE(v.ok);
  EXPECT_FALSE(v.from_memo);
}

TEST(TrustStore, CertificateValidityCacheCountsHits) {
  CertificateAuthority ca;
  const auto id = ca.enroll(addr(1));
  const TrustStore& trust = *ca.trust_store();
  const auto misses_before = trust.cache_stats().cert_misses;
  ASSERT_TRUE(trust.certificate_valid(id.certificate));
  const auto hits_before = trust.cache_stats().cert_hits;
  ASSERT_TRUE(trust.certificate_valid(id.certificate));
  ASSERT_TRUE(trust.certificate_valid(id.certificate));
  EXPECT_EQ(trust.cache_stats().cert_hits, hits_before + 2);
  EXPECT_EQ(trust.cache_stats().cert_misses, misses_before + 1);
}

TEST(Pseudonym, RotationWrapsAroundPool) {
  CertificateAuthority ca;
  sim::Rng rng{8};
  PseudonymManager mgr{ca, net::MacAddress{0xCC}, 2, sim::Duration::seconds(1.0), rng};
  const auto t = sim::TimePoint::origin();
  const auto a0 = mgr.current_alias(t);
  const auto a2 = mgr.current_alias(t + sim::Duration::seconds(2.1));
  EXPECT_EQ(a0, a2);  // pool of 2 wraps after two rotations
}

}  // namespace
}  // namespace vgr::security

#include <gtest/gtest.h>

#include "vgr/net/codec.hpp"
#include "vgr/security/authority.hpp"
#include "vgr/security/crypto.hpp"
#include "vgr/security/pseudonym.hpp"
#include "vgr/security/secured_message.hpp"

namespace vgr::security {
namespace {

net::GnAddress addr(std::uint64_t mac) {
  return net::GnAddress{net::GnAddress::StationType::kPassengerCar, net::MacAddress{mac}};
}

net::Packet sample_gbc(std::uint64_t src_mac) {
  net::Packet p;
  p.basic.remaining_hop_limit = 10;
  p.common.type = net::CommonHeader::HeaderType::kGeoBroadcast;
  net::LongPositionVector pv;
  pv.address = addr(src_mac);
  pv.position = {100.0, 2.5};
  p.extended = net::GbcHeader{1, pv, geo::GeoArea::circle({4020.0, 2.5}, 30.0)};
  p.payload = {9, 9, 9};
  return p;
}

TEST(KeyedDigest, DeterministicAndKeyed) {
  const net::Bytes msg{1, 2, 3};
  EXPECT_EQ(keyed_digest(42, msg), keyed_digest(42, msg));
  EXPECT_NE(keyed_digest(42, msg), keyed_digest(43, msg));
}

TEST(KeyedDigest, SensitiveToEveryByte) {
  net::Bytes msg(64, 0xAA);
  const std::uint64_t base = keyed_digest(7, msg);
  for (std::size_t i = 0; i < msg.size(); ++i) {
    net::Bytes mutated = msg;
    mutated[i] ^= 0x01;
    EXPECT_NE(keyed_digest(7, mutated), base) << "byte " << i;
  }
}

TEST(KeyedDigest, EmptyMessageStillKeyed) {
  EXPECT_NE(keyed_digest(1, {}), keyed_digest(2, {}));
}

TEST(PrivateKey, DefaultIsInvalid) {
  EXPECT_FALSE(PrivateKey{}.valid());
}

TEST(CertificateAuthority, EnrollmentYieldsValidCertificate) {
  CertificateAuthority ca;
  const auto id = ca.enroll(addr(1));
  EXPECT_TRUE(id.key.valid());
  EXPECT_EQ(id.certificate.subject, addr(1));
  EXPECT_FALSE(id.certificate.is_pseudonym);
  EXPECT_TRUE(ca.trust_store()->certificate_valid(id.certificate));
}

TEST(CertificateAuthority, SerialsAreUnique) {
  CertificateAuthority ca;
  const auto a = ca.enroll(addr(1));
  const auto b = ca.enroll(addr(2));
  EXPECT_NE(a.certificate.serial, b.certificate.serial);
  EXPECT_EQ(ca.issued_count(), 2u);
}

TEST(CertificateAuthority, TamperedSubjectFailsValidation) {
  CertificateAuthority ca;
  auto id = ca.enroll(addr(1));
  Certificate forged = id.certificate;
  forged.subject = addr(99);  // claim another identity
  EXPECT_FALSE(ca.trust_store()->certificate_valid(forged));
}

TEST(CertificateAuthority, UnknownSerialFailsValidation) {
  CertificateAuthority ca;
  Certificate ghost;
  ghost.serial = 12345;
  ghost.subject = addr(1);
  EXPECT_FALSE(ca.trust_store()->certificate_valid(ghost));
}

TEST(CertificateAuthority, RevocationTakesEffect) {
  CertificateAuthority ca;
  const auto id = ca.enroll(addr(1));
  ca.revoke(id.certificate.serial);
  EXPECT_FALSE(ca.trust_store()->certificate_valid(id.certificate));
}

TEST(CertificateAuthority, DistinctCAsDoNotCrossValidate) {
  CertificateAuthority ca1{111}, ca2{222};
  const auto id = ca1.enroll(addr(1));
  EXPECT_FALSE(ca2.trust_store()->certificate_valid(id.certificate));
}

TEST(SecuredMessage, SignVerifyRoundTrip) {
  CertificateAuthority ca;
  const Signer signer{ca.enroll(addr(1))};
  const auto msg = SecuredMessage::sign(sample_gbc(1), signer);
  EXPECT_TRUE(msg.verify(*ca.trust_store()));
}

TEST(SecuredMessage, ReplayedMessageStillVerifies) {
  // The heart of attack #1: a byte-for-byte replay is indistinguishable
  // from the original to the verifier.
  CertificateAuthority ca;
  const Signer signer{ca.enroll(addr(1))};
  const auto original = SecuredMessage::sign(sample_gbc(1), signer);
  const SecuredMessage replayed = original;  // captured & re-injected
  EXPECT_TRUE(replayed.verify(*ca.trust_store()));
}

TEST(SecuredMessage, RhlRewriteIsUndetectable) {
  // The heart of attack #2: RHL is outside the signature scope.
  CertificateAuthority ca;
  const Signer signer{ca.enroll(addr(1))};
  auto msg = SecuredMessage::sign(sample_gbc(1), signer);
  msg.packet.basic.remaining_hop_limit = 1;
  EXPECT_TRUE(msg.verify(*ca.trust_store()));
}

TEST(SecuredMessage, PayloadTamperingIsDetected) {
  CertificateAuthority ca;
  const Signer signer{ca.enroll(addr(1))};
  auto msg = SecuredMessage::sign(sample_gbc(1), signer);
  msg.packet.payload[0] ^= 0xFF;
  EXPECT_FALSE(msg.verify(*ca.trust_store()));
}

TEST(SecuredMessage, PositionTamperingIsDetected) {
  // A false-position-advertisement attack (the paper's related work [14])
  // cannot alter a legitimate PV without breaking the signature.
  CertificateAuthority ca;
  const Signer signer{ca.enroll(addr(1))};
  auto msg = SecuredMessage::sign(sample_gbc(1), signer);
  msg.packet.gbc()->source_pv.position.x += 500.0;
  EXPECT_FALSE(msg.verify(*ca.trust_store()));
}

TEST(SecuredMessage, AreaTamperingIsDetected) {
  CertificateAuthority ca;
  const Signer signer{ca.enroll(addr(1))};
  auto msg = SecuredMessage::sign(sample_gbc(1), signer);
  msg.packet.gbc()->area = geo::GeoArea::circle({0.0, 0.0}, 5.0);
  EXPECT_FALSE(msg.verify(*ca.trust_store()));
}

TEST(SecuredMessage, WrongSignerCertificateFails) {
  CertificateAuthority ca;
  const Signer alice{ca.enroll(addr(1))};
  const auto bob = ca.enroll(addr(2));
  auto msg = SecuredMessage::sign(sample_gbc(1), alice);
  msg.signer = bob.certificate;  // present someone else's certificate
  EXPECT_FALSE(msg.verify(*ca.trust_store()));
}

TEST(SecuredMessage, OutsiderForgeryFails) {
  // An attacker without any enrolled key cannot mint a valid envelope.
  CertificateAuthority ca;
  SecuredMessage forged;
  forged.packet = sample_gbc(1);
  forged.signer.serial = 77;
  forged.signer.subject = addr(1);
  forged.signature = 0x1234'5678'9ABC'DEF0ULL;
  EXPECT_FALSE(forged.verify(*ca.trust_store()));
}

TEST(SecuredMessage, RevokedSignerFailsVerification) {
  CertificateAuthority ca;
  const auto id = ca.enroll(addr(1));
  const auto msg = SecuredMessage::sign(sample_gbc(1), Signer{id});
  ca.revoke(id.certificate.serial);
  EXPECT_FALSE(msg.verify(*ca.trust_store()));
}

TEST(Pseudonym, PoolIssuesAndRotates) {
  CertificateAuthority ca;
  sim::Rng rng{5};
  PseudonymManager mgr{ca, net::MacAddress{0xAA}, 4, sim::Duration::seconds(10.0), rng};
  EXPECT_EQ(mgr.pool_size(), 4u);

  const auto t0 = sim::TimePoint::origin();
  const auto alias0 = mgr.current_alias(t0);
  const auto alias1 = mgr.current_alias(t0 + sim::Duration::seconds(11.0));
  EXPECT_NE(alias0, alias1);
  EXPECT_EQ(mgr.rotations(), 1u);
}

TEST(Pseudonym, PseudonymCertificatesVerify) {
  CertificateAuthority ca;
  sim::Rng rng{6};
  PseudonymManager mgr{ca, net::MacAddress{0xBB}, 2, sim::Duration::seconds(60.0), rng};
  const auto& id = mgr.active(sim::TimePoint::origin());
  EXPECT_TRUE(id.certificate.is_pseudonym);
  const auto msg = SecuredMessage::sign(sample_gbc(id.certificate.subject.mac().bits()),
                                        Signer{id});
  EXPECT_TRUE(msg.verify(*ca.trust_store()));
}

TEST(Pseudonym, RotationWrapsAroundPool) {
  CertificateAuthority ca;
  sim::Rng rng{8};
  PseudonymManager mgr{ca, net::MacAddress{0xCC}, 2, sim::Duration::seconds(1.0), rng};
  const auto t = sim::TimePoint::origin();
  const auto a0 = mgr.current_alias(t);
  const auto a2 = mgr.current_alias(t + sim::Duration::seconds(2.1));
  EXPECT_EQ(a0, a2);  // pool of 2 wraps after two rotations
}

}  // namespace
}  // namespace vgr::security

#include "vgr/sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace vgr::sim {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a{42}, b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng{11};
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

class RngIntRange : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {};

TEST_P(RngIntRange, StaysInClosedRangeAndHitsEndpoints) {
  const auto [lo, hi] = GetParam();
  Rng rng{31};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 20000; ++i) {
    const std::int64_t v = rng.uniform_int(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
    seen.insert(v);
  }
  // Small ranges should be fully covered, endpoints included.
  if (hi - lo < 20) {
    EXPECT_TRUE(seen.contains(lo));
    EXPECT_TRUE(seen.contains(hi));
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, RngIntRange,
                         ::testing::Values(std::pair<std::int64_t, std::int64_t>{0, 0},
                                           std::pair<std::int64_t, std::int64_t>{0, 1},
                                           std::pair<std::int64_t, std::int64_t>{-5, 5},
                                           std::pair<std::int64_t, std::int64_t>{0, 255},
                                           std::pair<std::int64_t, std::int64_t>{-100, -90}));

TEST(Rng, NormalMomentsMatch) {
  Rng rng{13};
  constexpr int kN = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng{17};
  constexpr int kN = 200000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.exponential(4.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 0.25, 0.01);
}

TEST(Rng, BernoulliFrequencyTracksP) {
  Rng rng{19};
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerateProbabilities) {
  Rng rng{21};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent{23};
  Rng child = parent.fork();
  // Child and parent produce different streams.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkingIsDeterministic) {
  Rng a{29}, b{29};
  Rng ca = a.fork();
  Rng cb = b.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

}  // namespace
}  // namespace vgr::sim

// Node-churn tests: deterministic crash/reboot scheduling at the scenario
// layer, inert-when-disabled semantics, env knob parsing, and the duplicate-
// detector black-hole a rebooted station avoids by randomizing its initial
// sequence number (docs/robustness.md).

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "vgr/scenario/highway.hpp"
#include "vgr/security/authority.hpp"

namespace vgr::scenario {
namespace {

HighwayConfig churn_config() {
  HighwayConfig cfg;
  cfg.sim_duration = sim::Duration::seconds(20.0);
  cfg.seed = 5;
  cfg.churn.crash_rate_hz = 0.5;
  cfg.churn.downtime_s = 1.0;
  return cfg;
}

TEST(ChurnConfig, DisabledByDefault) {
  EXPECT_FALSE(ChurnConfig{}.enabled());
  ChurnConfig c;
  c.crash_rate_hz = 0.1;
  EXPECT_TRUE(c.enabled());
}

TEST(ChurnConfig, EnvOverridesParseAndValidate) {
  ::setenv("VGR_CHURN_RATE", "0.75", 1);
  ::setenv("VGR_CHURN_DOWNTIME_MS", "1500", 1);
  ::setenv("VGR_CHURN_REBOOT_P", "1.25", 1);  // out of range: ignored
  const ChurnConfig c = ChurnConfig{}.with_env_overrides();
  EXPECT_DOUBLE_EQ(c.crash_rate_hz, 0.75);
  EXPECT_DOUBLE_EQ(c.downtime_s, 1.5);
  EXPECT_DOUBLE_EQ(c.reboot_probability, 1.0);
  ::unsetenv("VGR_CHURN_RATE");
  ::unsetenv("VGR_CHURN_DOWNTIME_MS");
  ::unsetenv("VGR_CHURN_REBOOT_P");
}

TEST(ScenarioChurn, CrashesAndRebootsHappenAndNetworkSurvives) {
  HighwayScenario scenario{churn_config()};
  const IntraAreaResult r = scenario.run_intra_area();
  EXPECT_GT(r.churn_crashes, 0u);
  EXPECT_GT(r.churn_reboots, 0u);
  EXPECT_LE(r.churn_reboots, r.churn_crashes);
  // The network keeps working through the churn.
  EXPECT_GT(r.overall_reception(), 0.0);
}

TEST(ScenarioChurn, ChurnRunsReplayBitIdentically) {
  HighwayScenario a{churn_config()};
  const IntraAreaResult ra = a.run_intra_area();
  HighwayScenario b{churn_config()};
  const IntraAreaResult rb = b.run_intra_area();
  EXPECT_EQ(ra.overall_reception(), rb.overall_reception());
  EXPECT_EQ(ra.churn_crashes, rb.churn_crashes);
  EXPECT_EQ(ra.churn_reboots, rb.churn_reboots);
  EXPECT_EQ(ra.floods.size(), rb.floods.size());
}

TEST(ScenarioChurn, DisabledChurnReportsNothing) {
  HighwayConfig cfg = churn_config();
  cfg.churn = ChurnConfig{};
  HighwayScenario scenario{cfg};
  const IntraAreaResult r = scenario.run_intra_area();
  EXPECT_EQ(r.churn_crashes, 0u);
  EXPECT_EQ(r.churn_reboots, 0u);
}

TEST(ScenarioChurn, NoRebootWhenRebootProbabilityZero) {
  HighwayConfig cfg = churn_config();
  cfg.churn.reboot_probability = 0.0;
  HighwayScenario scenario{cfg};
  const IntraAreaResult r = scenario.run_intra_area();
  EXPECT_GT(r.churn_crashes, 0u);
  EXPECT_EQ(r.churn_reboots, 0u);
}

// --- The reboot black-hole (and its fix) --------------------------------
//
// Peers remember (source address, sequence number) pairs. A station that
// reboots with the same address and a sequence counter restarting at 0
// replays numbers its peers have already recorded: its first packets are
// silently swallowed as duplicates. Randomizing the post-reboot starting
// sequence (as HighwayScenario::reboot_station does) avoids the overlap.

class RebootSequenceTest : public ::testing::Test {
 protected:
  RebootSequenceTest() : medium_{events_, phy::AccessTechnology::kDsrc} {
    addr_a_ = net::GnAddress{net::GnAddress::StationType::kPassengerCar, net::MacAddress{0xAA}};
    const net::GnAddress addr_b{net::GnAddress::StationType::kPassengerCar,
                                net::MacAddress{0xBB}};
    b_router_ = std::make_unique<gn::Router>(
        events_, medium_, security::Signer{ca_.enroll(addr_b)}, ca_.trust_store(), b_mobility_,
        cfg(), 500.0, sim::Rng{2});
    b_router_->set_delivery_handler([this](const gn::Router::Delivery&) { ++b_delivered_; });
    a_router_ = make_a();
  }

  static gn::RouterConfig cfg() {
    return gn::RouterConfig::for_technology(phy::AccessTechnology::kDsrc);
  }

  std::unique_ptr<gn::Router> make_a() {
    return std::make_unique<gn::Router>(events_, medium_,
                                        security::Signer{ca_.enroll(addr_a_)},
                                        ca_.trust_store(), a_mobility_, cfg(), 500.0,
                                        sim::Rng{3});
  }

  void send_from_a() {
    // Both stations sit inside the target area, so A broadcasts immediately
    // and B delivers on reception.
    a_router_->send_geo_broadcast(geo::GeoArea::circle({50.0, 0.0}, 200.0), {0x42});
    events_.run_until(events_.now() + sim::Duration::seconds(0.5));
  }

  sim::EventQueue events_;
  phy::Medium medium_;
  security::CertificateAuthority ca_;
  gn::StaticMobility a_mobility_{geo::Position{0.0, 0.0}};
  gn::StaticMobility b_mobility_{geo::Position{100.0, 0.0}};
  net::GnAddress addr_a_{};
  std::unique_ptr<gn::Router> a_router_;
  std::unique_ptr<gn::Router> b_router_;
  int b_delivered_{0};
};

TEST_F(RebootSequenceTest, RebootAtSequenceZeroIsBlackholed) {
  send_from_a();  // sequence 0
  ASSERT_EQ(b_delivered_, 1);

  // Crash and reboot A without sequence randomization: it reuses sequence 0,
  // which B has already recorded for A's address.
  a_router_->shutdown();
  a_router_ = make_a();
  send_from_a();
  EXPECT_EQ(b_delivered_, 1) << "expected the rebooted station's packet to be black-holed";
  EXPECT_GE(b_router_->stats().duplicates, 1u);
}

TEST_F(RebootSequenceTest, RandomizedSequenceSurvivesReboot) {
  send_from_a();  // sequence 0
  ASSERT_EQ(b_delivered_, 1);

  a_router_->shutdown();
  a_router_ = make_a();
  a_router_->seed_sequence_number(1000);  // what reboot_station() does
  send_from_a();
  EXPECT_EQ(b_delivered_, 2) << "randomized post-reboot sequence must not be black-holed";
}

// --- Neighbour staleness under churn (docs/robustness.md) ----------------
//
// The 20 s LocTE TTL keeps a crashed neighbour attractive to greedy
// forwarding long after it went silent. With the soft-state monitor on, two
// missed beacon periods quarantine the hop (greedy skips it while the table
// entry is still live) and four evict it outright; the station's first
// beacon after reboot re-learns it immediately.

class StaleNeighborTest : public ::testing::Test {
 protected:
  StaleNeighborTest() : medium_{events_, phy::AccessTechnology::kDsrc} {
    addr_b_ = net::GnAddress{net::GnAddress::StationType::kPassengerCar, net::MacAddress{0xB0}};
    const net::GnAddress addr_a{net::GnAddress::StationType::kPassengerCar,
                                net::MacAddress{0xA0}};
    gn::RouterConfig cfg = gn::RouterConfig::for_technology(phy::AccessTechnology::kDsrc);
    cfg.nbr_monitor = true;  // quarantine after 2 misses, evict after 4
    a_router_ = std::make_unique<gn::Router>(events_, medium_,
                                             security::Signer{ca_.enroll(addr_a)},
                                             ca_.trust_store(), a_mobility_, cfg, 500.0,
                                             sim::Rng{7});
    b_router_ = make_b();
  }

  std::unique_ptr<gn::Router> make_b() {
    return std::make_unique<gn::Router>(
        events_, medium_, security::Signer{ca_.enroll(addr_b_)}, ca_.trust_store(),
        b_mobility_, gn::RouterConfig::for_technology(phy::AccessTechnology::kDsrc), 500.0,
        sim::Rng{8});
  }

  void run_for(sim::Duration d) { events_.run_until(events_.now() + d); }

  sim::EventQueue events_;
  phy::Medium medium_;
  security::CertificateAuthority ca_;
  gn::StaticMobility a_mobility_{geo::Position{0.0, 0.0}};
  gn::StaticMobility b_mobility_{geo::Position{400.0, 0.0}};
  net::GnAddress addr_b_{};
  std::unique_ptr<gn::Router> a_router_;
  std::unique_ptr<gn::Router> b_router_;
};

TEST_F(StaleNeighborTest, CrashedNeighborIsQuarantinedLongBeforeTtl) {
  b_router_->send_beacon_now();
  run_for(sim::Duration::millis(10));
  ASSERT_TRUE(a_router_->next_hop_toward({1000.0, 0.0}).has_value());

  b_router_->shutdown();  // crash: the radio goes silent mid-protocol
  // Two beacon periods (2 x 3.75 s) later the hop is quarantined: the
  // location-table entry is still live (TTL 20 s), greedy skips it anyway.
  run_for(sim::Duration::seconds(8.0));
  EXPECT_TRUE(a_router_->location_table().find(addr_b_, events_.now()).has_value());
  EXPECT_FALSE(a_router_->next_hop_toward({1000.0, 0.0}).has_value());
  EXPECT_EQ(a_router_->neighbor_monitor().quarantined(events_.now()), 1u);
}

TEST_F(StaleNeighborTest, CrashedNeighborIsEvictedByTheMonitorSweep) {
  a_router_->start();  // schedules the periodic monitor sweep
  b_router_->send_beacon_now();
  run_for(sim::Duration::millis(10));
  b_router_->shutdown();

  // Four missed periods (4 x 3.75 s = 15 s) + one sweep tick, still well
  // inside the 20 s TTL: the entry is gone from the table entirely.
  run_for(sim::Duration::seconds(19.0));
  EXPECT_FALSE(a_router_->location_table().find(addr_b_, events_.now()).has_value());
  EXPECT_GE(a_router_->stats().neighbor_evictions, 1u);
  EXPECT_EQ(a_router_->neighbor_monitor().tracked(), 0u);
}

TEST_F(StaleNeighborTest, RebootedStationIsRelearnedFromItsFirstBeacon) {
  b_router_->send_beacon_now();
  run_for(sim::Duration::millis(10));
  b_router_->shutdown();
  run_for(sim::Duration::seconds(8.0));
  ASSERT_FALSE(a_router_->next_hop_toward({1000.0, 0.0}).has_value());

  b_router_ = make_b();  // reboot with the same address
  b_router_->send_beacon_now();
  run_for(sim::Duration::millis(10));
  const auto hop = a_router_->next_hop_toward({1000.0, 0.0});
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(hop->next_hop.address, addr_b_);
  EXPECT_GE(a_router_->neighbor_monitor().stats().revivals, 1u);
}

TEST(ScenarioChurnRecovery, RecoveryUnderChurnReplaysBitIdentically) {
  HighwayConfig cfg = churn_config();
  cfg.recovery.scf = true;
  cfg.recovery.retx = true;
  cfg.recovery.nbr_monitor = true;
  HighwayScenario a{cfg};
  const IntraAreaResult ra = a.run_intra_area();
  HighwayScenario b{cfg};
  const IntraAreaResult rb = b.run_intra_area();
  EXPECT_EQ(ra.overall_reception(), rb.overall_reception());
  EXPECT_EQ(ra.churn_crashes, rb.churn_crashes);
  EXPECT_EQ(ra.churn_reboots, rb.churn_reboots);
  // The network still works with the recovery layer on under churn.
  EXPECT_GT(ra.overall_reception(), 0.0);
}

}  // namespace
}  // namespace vgr::scenario

// Tests for the transport extensions: SHB, TSB, the Location Service,
// ACK'd forwarding, and pseudonym rotation.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "vgr/attack/inter_area.hpp"
#include "vgr/gn/router.hpp"
#include "vgr/net/codec.hpp"
#include "vgr/security/authority.hpp"
#include "vgr/security/pseudonym.hpp"

namespace vgr::gn {
namespace {

using namespace vgr::sim::literals;

constexpr double kRange = 486.0;

struct Node {
  std::unique_ptr<StaticMobility> mobility;
  std::unique_ptr<Router> router;
  std::vector<Router::Delivery> deliveries;
};

class ExtensionsTest : public ::testing::Test {
 protected:
  ExtensionsTest() : medium_{events_, phy::AccessTechnology::kDsrc} {}

  Node& add_node(double x, RouterConfig cfg = RouterConfig{}, double range = kRange) {
    nodes_.push_back(std::make_unique<Node>());
    Node& n = *nodes_.back();
    n.mobility = std::make_unique<StaticMobility>(geo::Position{x, 0.0});
    const net::GnAddress addr{net::GnAddress::StationType::kPassengerCar,
                              net::MacAddress{0x300 + nodes_.size()}};
    cfg.cbf_dist_max_m = kRange;
    n.router = std::make_unique<Router>(events_, medium_, security::Signer{ca_.enroll(addr)},
                                        ca_.trust_store(), *n.mobility, cfg, range,
                                        rng_.fork());
    n.router->set_delivery_handler(
        [&n](const Router::Delivery& d) { n.deliveries.push_back(d); });
    return n;
  }

  void beacons() {
    for (auto& n : nodes_) n->router->send_beacon_now();
    run_for(100_ms);
  }
  void run_for(sim::Duration d) { events_.run_until(events_.now() + d); }

  sim::EventQueue events_;
  phy::Medium medium_;
  security::CertificateAuthority ca_;
  sim::Rng rng_{515};
  std::vector<std::unique_ptr<Node>> nodes_;
};

// --- Codec round trips for the new packet kinds ---------------------------

TEST(ExtensionCodec, NewHeaderTypesRoundTrip) {
  net::LongPositionVector pv;
  pv.address = net::GnAddress{net::GnAddress::StationType::kPassengerCar, net::MacAddress{9}};
  pv.position = {10.0, 20.0};

  std::vector<net::Packet> packets;
  {
    net::Packet p;
    p.common.type = net::CommonHeader::HeaderType::kTopoBroadcast;
    p.extended = net::TsbHeader{3, pv};
    p.payload = {1, 2};
    packets.push_back(p);
  }
  {
    net::Packet p;
    p.common.type = net::CommonHeader::HeaderType::kSingleHopBroadcast;
    p.extended = net::ShbHeader{pv};
    packets.push_back(p);
  }
  {
    net::Packet p;
    p.common.type = net::CommonHeader::HeaderType::kLsRequest;
    p.extended = net::LsRequestHeader{4, pv, net::GnAddress::from_bits(77)};
    packets.push_back(p);
  }
  {
    net::Packet p;
    p.common.type = net::CommonHeader::HeaderType::kLsReply;
    net::ShortPositionVector dest;
    dest.address = net::GnAddress::from_bits(88);
    dest.position = {5.0, 6.0};
    p.extended = net::LsReplyHeader{5, pv, dest};
    packets.push_back(p);
  }
  {
    net::Packet p;
    p.common.type = net::CommonHeader::HeaderType::kAck;
    p.extended = net::AckHeader{pv, net::GnAddress::from_bits(99), 42};
    packets.push_back(p);
  }
  for (const auto& p : packets) {
    const auto decoded = net::Codec::decode(net::Codec::encode(p));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, p);
  }
}

TEST(ExtensionCodec, DuplicateKeysForFloodedKinds) {
  net::Packet tsb;
  tsb.common.type = net::CommonHeader::HeaderType::kTopoBroadcast;
  tsb.extended = net::TsbHeader{3, {}};
  EXPECT_TRUE(tsb.duplicate_key().has_value());

  net::Packet shb;
  shb.common.type = net::CommonHeader::HeaderType::kSingleHopBroadcast;
  shb.extended = net::ShbHeader{};
  EXPECT_FALSE(shb.duplicate_key().has_value());

  net::Packet ack;
  ack.common.type = net::CommonHeader::HeaderType::kAck;
  ack.extended = net::AckHeader{};
  EXPECT_FALSE(ack.duplicate_key().has_value());
}

// --- SHB ---------------------------------------------------------------------

TEST_F(ExtensionsTest, ShbReachesOnlyDirectNeighbors) {
  Node& a = add_node(0.0);
  Node& b = add_node(400.0);
  Node& c = add_node(850.0);  // out of a's range
  beacons();
  a.router->send_single_hop_broadcast({'c', 'a', 'm'});
  run_for(100_ms);
  EXPECT_EQ(b.deliveries.size(), 1u);
  EXPECT_TRUE(c.deliveries.empty());
  EXPECT_EQ(a.router->stats().shb_sent, 1u);
  // b must not have re-broadcast it (single hop by definition).
  EXPECT_EQ(b.router->stats().tsb_forwards, 0u);
}

TEST_F(ExtensionsTest, ShbUpdatesLocationTableLikeACam) {
  Node& a = add_node(0.0);
  Node& b = add_node(400.0);
  a.router->send_single_hop_broadcast({'x'});
  run_for(100_ms);
  const auto entry = b.router->location_table().find(a.router->address(), events_.now());
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(entry->is_neighbor);
}

// --- TSB ---------------------------------------------------------------------

TEST_F(ExtensionsTest, TsbFloodsAcrossHops) {
  Node& a = add_node(0.0);
  Node& b = add_node(400.0);
  Node& c = add_node(800.0);
  Node& d = add_node(1200.0);
  beacons();
  a.router->send_topo_broadcast({'t'}, 5);
  run_for(1_s);
  EXPECT_EQ(b.deliveries.size(), 1u);
  EXPECT_EQ(c.deliveries.size(), 1u);
  EXPECT_EQ(d.deliveries.size(), 1u);
}

TEST_F(ExtensionsTest, TsbHonorsHopLimit) {
  Node& a = add_node(0.0);
  Node& b = add_node(400.0);
  Node& c = add_node(800.0);
  Node& d = add_node(1200.0);
  beacons();
  a.router->send_topo_broadcast({'t'}, 2);  // a -> b -> c, no further
  run_for(1_s);
  EXPECT_EQ(b.deliveries.size(), 1u);
  EXPECT_EQ(c.deliveries.size(), 1u);
  EXPECT_TRUE(d.deliveries.empty());
}

TEST_F(ExtensionsTest, TsbDuplicatesAreSuppressed) {
  Node& a = add_node(0.0);
  Node& b = add_node(100.0);
  Node& c = add_node(200.0);
  beacons();
  a.router->send_topo_broadcast({'t'}, 5);
  run_for(1_s);
  // b and c each deliver once despite hearing multiple rebroadcasts.
  EXPECT_EQ(b.deliveries.size(), 1u);
  EXPECT_EQ(c.deliveries.size(), 1u);
}

// --- Location service ---------------------------------------------------------

TEST_F(ExtensionsTest, LocationServiceResolvesUnknownDestination) {
  Node& a = add_node(0.0);
  Node& b = add_node(400.0);
  Node& c = add_node(800.0);  // unknown to a (out of range)
  beacons();
  ASSERT_FALSE(a.router->location_table().find(c.router->address(), events_.now()).has_value());

  a.router->send_geo_unicast_resolving(c.router->address(), {'l', 's'});
  run_for(2_s);

  EXPECT_EQ(a.router->stats().ls_requests_sent, 1u);
  EXPECT_EQ(c.router->stats().ls_replies_sent, 1u);
  EXPECT_EQ(a.router->stats().ls_resolved, 1u);
  ASSERT_EQ(c.deliveries.size(), 1u);
  EXPECT_EQ(c.deliveries[0].packet().payload, (net::Bytes{'l', 's'}));
  (void)b;
}

TEST_F(ExtensionsTest, LocationServiceSkipsLookupForKnownDestination) {
  Node& a = add_node(0.0);
  Node& b = add_node(400.0);
  beacons();
  a.router->send_geo_unicast_resolving(b.router->address(), {'k'});
  run_for(1_s);
  EXPECT_EQ(a.router->stats().ls_requests_sent, 0u);
  EXPECT_EQ(b.deliveries.size(), 1u);
}

TEST_F(ExtensionsTest, LocationServiceSharesOneLookupAcrossQueuedPackets) {
  Node& a = add_node(0.0);
  add_node(400.0);
  Node& c = add_node(800.0);
  beacons();
  a.router->send_geo_unicast_resolving(c.router->address(), {1});
  a.router->send_geo_unicast_resolving(c.router->address(), {2});
  run_for(2_s);
  EXPECT_EQ(a.router->stats().ls_requests_sent, 1u);
  EXPECT_EQ(c.deliveries.size(), 2u);
}

TEST_F(ExtensionsTest, LocationServiceGivesUpAfterRetries) {
  RouterConfig cfg;
  cfg.ls_retry_interval = 200_ms;
  cfg.ls_max_retries = 2;
  Node& a = add_node(0.0, cfg);
  beacons();
  const auto ghost =
      net::GnAddress{net::GnAddress::StationType::kPassengerCar, net::MacAddress{0xDEAD}};
  a.router->send_geo_unicast_resolving(ghost, {9});
  run_for(2_s);
  EXPECT_EQ(a.router->stats().ls_requests_sent, 2u);  // initial + one retry
  EXPECT_EQ(a.router->stats().ls_failures, 1u);
}

// --- ACK'd forwarding -----------------------------------------------------------

TEST_F(ExtensionsTest, AckConfirmsSuccessfulForward) {
  RouterConfig cfg;
  cfg.gf_ack = true;
  Node& a = add_node(0.0, cfg);
  Node& b = add_node(400.0, cfg);
  beacons();
  a.router->send_geo_unicast(b.router->address(), {400.0, 0.0}, {'a'});
  run_for(1_s);
  EXPECT_EQ(b.router->stats().acks_sent, 1u);
  EXPECT_EQ(a.router->stats().acks_received, 1u);
  EXPECT_EQ(a.router->stats().ack_retries, 0u);
  EXPECT_EQ(b.deliveries.size(), 1u);
}

TEST_F(ExtensionsTest, AckRetriesPastGhostNeighbor) {
  RouterConfig cfg;
  cfg.gf_ack = true;
  Node& a = add_node(0.0, cfg);
  Node& b = add_node(300.0, cfg);
  Node& ghost = add_node(450.0, cfg);
  Node& dest = add_node(700.0, cfg);
  beacons();
  // The "ghost" leaves the channel after beaconing (drove out of range /
  // powered off) but stays in a's location table as the best next hop.
  ghost.router->shutdown();

  a.router->send_geo_unicast(dest.router->address(), {700.0, 0.0}, {'r'});
  run_for(1_s);

  EXPECT_GE(a.router->stats().ack_retries, 1u);  // silent ghost, retried via b
  EXPECT_EQ(dest.deliveries.size(), 1u);
  EXPECT_GE(b.router->stats().gf_unicast_forwards, 1u);
}

TEST_F(ExtensionsTest, AckGivesUpWhenNobodyResponds) {
  RouterConfig cfg;
  cfg.gf_ack = true;
  cfg.gf_ack_max_retries = 1;
  Node& a = add_node(0.0, cfg);
  Node& ghost = add_node(400.0, cfg);
  beacons();
  ghost.router->shutdown();
  a.router->send_geo_unicast(ghost.router->address(), {400.0, 0.0}, {'x'});
  run_for(1_s);
  EXPECT_EQ(a.router->stats().ack_failures, 1u);
}

TEST_F(ExtensionsTest, AckDisabledMeansNoAckTraffic) {
  Node& a = add_node(0.0);
  Node& b = add_node(400.0);
  beacons();
  a.router->send_geo_unicast(b.router->address(), {400.0, 0.0}, {'n'});
  run_for(1_s);
  EXPECT_EQ(b.router->stats().acks_sent, 0u);
  EXPECT_EQ(a.router->stats().acks_received, 0u);
}

// --- Pseudonym rotation -----------------------------------------------------------

TEST_F(ExtensionsTest, RotationChangesAddressAndKeepsVerifying) {
  Node& a = add_node(0.0);
  Node& b = add_node(400.0);
  const net::GnAddress before = a.router->address();

  sim::Rng prng{99};
  security::PseudonymManager pool{ca_, before.mac(), 3, sim::Duration::seconds(10.0), prng};
  a.router->rotate_identity(pool.active(events_.now()));

  EXPECT_NE(a.router->address(), before);
  EXPECT_EQ(a.router->stats().identity_rotations, 1u);

  a.router->send_beacon_now();
  run_for(100_ms);
  // The peer accepts the pseudonymous beacon and lists the new alias.
  EXPECT_TRUE(b.router->location_table().find(a.router->address(), events_.now()).has_value());
  EXPECT_EQ(b.router->stats().auth_failures, 0u);
}

TEST_F(ExtensionsTest, RotationRebindsLinkLayerAddress) {
  RouterConfig cfg;
  Node& a = add_node(0.0, cfg);
  Node& b = add_node(400.0, cfg);
  beacons();

  sim::Rng prng{100};
  security::PseudonymManager pool{ca_, a.router->mac(), 2, sim::Duration::seconds(10.0), prng};
  a.router->rotate_identity(pool.active(events_.now()));
  a.router->send_beacon_now();
  run_for(100_ms);

  // b can unicast to the *new* alias; the frame is accepted under the new
  // MAC binding.
  b.router->send_geo_unicast(a.router->address(), {0.0, 0.0}, {'p'});
  run_for(1_s);
  EXPECT_EQ(a.deliveries.size(), 1u);
}

// --- Duplicate address detection ---------------------------------------------

TEST_F(ExtensionsTest, ReplayedOwnBeaconCountsAsAddressConflict) {
  Node& victim = add_node(0.0);
  attack::InterAreaInterceptor atk{events_, medium_, {100.0, 10.0}, 600.0};
  victim.router->send_beacon_now();
  run_for(100_ms);
  // The attacker replays the victim's own beacon back at it.
  EXPECT_GE(atk.beacons_replayed(), 1u);
  EXPECT_GE(victim.router->stats().dad_conflicts, 1u);
}

TEST_F(ExtensionsTest, DadHandlerFiresOnlyWhenEnabled) {
  RouterConfig cfg;
  Node& quiet = add_node(0.0, cfg);
  cfg.dad_enabled = true;
  Node& reactive = add_node(50.0, cfg);
  attack::InterAreaInterceptor atk{events_, medium_, {25.0, 10.0}, 600.0};
  int quiet_fires = 0, reactive_fires = 0;
  quiet.router->set_address_conflict_handler([&] { ++quiet_fires; });
  reactive.router->set_address_conflict_handler([&] { ++reactive_fires; });
  quiet.router->send_beacon_now();
  reactive.router->send_beacon_now();
  run_for(100_ms);
  EXPECT_EQ(quiet_fires, 0);       // disabled: counted but not acted on
  EXPECT_GE(reactive_fires, 1);    // enabled: handler invoked
  EXPECT_GE(quiet.router->stats().dad_conflicts, 1u);
  (void)atk;
}

TEST_F(ExtensionsTest, DadReAddressingAmplifiesTheAttack) {
  // A DAD-enabled victim that rotates identities on every conflict loses
  // its neighbours' location-table continuity — the replay attacker gains
  // a second denial vector for free.
  RouterConfig cfg;
  cfg.dad_enabled = true;
  Node& victim = add_node(0.0, cfg);
  Node& peer = add_node(300.0, cfg);
  attack::InterAreaInterceptor atk{events_, medium_, {150.0, 10.0}, 600.0};
  victim.router->set_address_conflict_handler([&] {
    const net::MacAddress alias{0x0200'0000'AAAAULL + victim.router->stats().dad_conflicts};
    victim.router->rotate_identity(ca_.issue_pseudonym(
        net::GnAddress{net::GnAddress::StationType::kPassengerCar, alias}));
  });
  for (int i = 0; i < 5; ++i) {
    victim.router->send_beacon_now();
    run_for(1_s);
  }
  EXPECT_GE(victim.router->stats().identity_rotations, 2u);
  (void)peer;
  (void)atk;
}

// --- Interference model ------------------------------------------------------------

TEST(Interference, OverlappingFramesDestroyEachOther) {
  sim::EventQueue events;
  phy::Medium medium{events, phy::AccessTechnology::kDsrc};
  medium.set_interference(true);

  int received = 0;
  auto add = [&](double x, std::uint64_t mac) {
    phy::Medium::NodeConfig cfg;
    cfg.mac = net::MacAddress{mac};
    cfg.position = [x] { return geo::Position{x, 0.0}; };
    cfg.tx_range_m = 400.0;
    return medium.add_node(std::move(cfg),
                           [&received](const phy::Frame&, phy::RadioId) { ++received; });
  };
  const auto tx1 = add(0.0, 1);
  const auto tx2 = add(200.0, 2);
  add(100.0, 3);  // receiver in range of both

  phy::Frame f1, f2;
  f1.src = net::MacAddress{1};
  f2.src = net::MacAddress{2};
  f1.msg = security::share(security::SecuredMessage{});
  f2.msg = security::share(security::SecuredMessage{});
  medium.transmit(tx1, f1);
  medium.transmit(tx2, f2);  // same instant: guaranteed overlap
  events.run_until(events.now() + sim::Duration::seconds(1.0));
  // Node 3 loses both colliding frames; the half-duplex transmitters are
  // deaf to each other while sending.
  EXPECT_EQ(received, 0);
  EXPECT_GE(medium.frames_collided(), 2u);
}

TEST(Interference, SequentialFramesBothArrive) {
  sim::EventQueue events;
  phy::Medium medium{events, phy::AccessTechnology::kDsrc};
  medium.set_interference(true);

  int received = 0;
  auto add = [&](double x, std::uint64_t mac) {
    phy::Medium::NodeConfig cfg;
    cfg.mac = net::MacAddress{mac};
    cfg.position = [x] { return geo::Position{x, 0.0}; };
    cfg.tx_range_m = 400.0;
    return medium.add_node(std::move(cfg),
                           [&received](const phy::Frame&, phy::RadioId) { ++received; });
  };
  const auto tx1 = add(0.0, 1);
  const auto tx2 = add(200.0, 2);
  add(100.0, 3);

  phy::Frame f1, f2;
  f1.src = net::MacAddress{1};
  f2.src = net::MacAddress{2};
  f1.msg = security::share(security::SecuredMessage{});
  f2.msg = security::share(security::SecuredMessage{});
  medium.transmit(tx1, f1);
  events.run_until(events.now() + sim::Duration::millis(5));  // frame airtime passed
  medium.transmit(tx2, f2);
  events.run_until(events.now() + sim::Duration::seconds(1.0));
  // Receiver 3 hears both; senders 1 and 2 each hear the other's frame.
  EXPECT_EQ(received, 4);
  EXPECT_EQ(medium.frames_collided(), 0u);
}

TEST(Interference, OffByDefault) {
  sim::EventQueue events;
  phy::Medium medium{events, phy::AccessTechnology::kDsrc};
  int received = 0;
  auto add = [&](double x, std::uint64_t mac) {
    phy::Medium::NodeConfig cfg;
    cfg.mac = net::MacAddress{mac};
    cfg.position = [x] { return geo::Position{x, 0.0}; };
    cfg.tx_range_m = 400.0;
    return medium.add_node(std::move(cfg),
                           [&received](const phy::Frame&, phy::RadioId) { ++received; });
  };
  const auto tx1 = add(0.0, 1);
  const auto tx2 = add(200.0, 2);
  add(100.0, 3);
  phy::Frame f1, f2;
  f1.src = net::MacAddress{1};
  f2.src = net::MacAddress{2};
  f1.msg = security::share(security::SecuredMessage{});
  f2.msg = security::share(security::SecuredMessage{});
  medium.transmit(tx1, f1);
  medium.transmit(tx2, f2);
  events.run_until(events.now() + sim::Duration::seconds(1.0));
  EXPECT_EQ(received, 4);  // no interference: everything lands
}

}  // namespace
}  // namespace vgr::gn

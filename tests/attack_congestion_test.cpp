// Congestion-flood attack (attack #3, docs/robustness.md): a replay-only
// outsider occupying airtime, the CSMA collapse it causes, and the DCC
// graceful-degradation contrast measured by bench_resilience's sweep 3.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "vgr/attack/congestion_flood.hpp"
#include "vgr/scenario/highway.hpp"
#include "vgr/security/authority.hpp"

namespace vgr {
namespace {

using namespace vgr::sim::literals;

// --- Unit level: the flooder itself ---------------------------------------

struct FloodRig {
  sim::EventQueue events;
  phy::Medium medium{events, phy::AccessTechnology::kDsrc};
  std::vector<phy::Frame> heard;
  phy::RadioId honest{};
  phy::RadioId listener{};

  FloodRig() {
    phy::Medium::NodeConfig a;
    a.mac = net::MacAddress{1};
    a.position = [] { return geo::Position{0, 0}; };
    a.tx_range_m = 500.0;
    honest = medium.add_node(std::move(a), [](const phy::Frame&, phy::RadioId) {});
    phy::Medium::NodeConfig b;
    b.mac = net::MacAddress{2};
    b.position = [] { return geo::Position{100, 0}; };
    b.tx_range_m = 500.0;
    listener = medium.add_node(std::move(b), [this](const phy::Frame& f, phy::RadioId) {
      heard.push_back(f);
    });
  }

  phy::Frame data_frame() {
    phy::Frame f;
    f.src = net::MacAddress{1};
    f.dst = net::MacAddress::broadcast();
    f.msg = security::share(security::SecuredMessage{});
    return f;
  }
};

TEST(CongestionFlooder, SilentUntilSomethingIsCaptured) {
  // No signing capability, nothing overheard: there is literally nothing
  // the attacker could put on the air.
  FloodRig rig;
  attack::CongestionFlooder flooder{rig.events, rig.medium, geo::Position{50, 0}, 500.0,
                                    attack::CongestionFlooder::Config{1000.0, 16, true}};
  rig.events.run_until(rig.events.now() + 1_s);
  EXPECT_EQ(flooder.frames_flooded(), 0u);
  EXPECT_TRUE(rig.heard.empty());
}

TEST(CongestionFlooder, ReplaysCapturedFramesAtTheConfiguredRate) {
  FloodRig rig;
  attack::CongestionFlooder flooder{rig.events, rig.medium, geo::Position{50, 0}, 500.0,
                                    attack::CongestionFlooder::Config{1000.0, 16, true}};
  rig.medium.transmit(rig.honest, rig.data_frame());
  rig.events.run_until(rig.events.now() + 1_s);
  // ~1000 replays over the second following the capture.
  EXPECT_GT(flooder.frames_flooded(), 800u);
  EXPECT_LE(flooder.frames_flooded(), 1001u);
  // Replays carry the attacker's own link-layer source (the basic header is
  // unauthenticated), not the victim's.
  ASSERT_GT(rig.heard.size(), 800u);
  EXPECT_NE(rig.heard.back().src, net::MacAddress{1});
}

TEST(CongestionFlooder, ZeroRateIsAPassiveSniffer) {
  FloodRig rig;
  attack::CongestionFlooder flooder{rig.events, rig.medium, geo::Position{50, 0}, 500.0,
                                    attack::CongestionFlooder::Config{0.0, 16, true}};
  rig.medium.transmit(rig.honest, rig.data_frame());
  rig.events.run_until(rig.events.now() + 1_s);
  EXPECT_EQ(flooder.frames_flooded(), 0u);
  EXPECT_GT(flooder.frames_captured(), 0u);
}

// --- Scenario level: the DCC-off collapse vs DCC-on degradation -----------

scenario::HighwayConfig congested_config(double flood_hz, bool dcc) {
  scenario::HighwayConfig cfg;
  cfg.attack = scenario::AttackKind::kCongestionFlood;
  cfg.flood_rate_hz = flood_hz;
  cfg.sim_duration = sim::Duration::seconds(10.0);
  // The bench_resilience sweep-3 load model: CAM-rate beacons, 10 Hz data,
  // hardware-short MAC queue.
  cfg.beacon_interval = sim::Duration::seconds(0.1);
  cfg.packet_interval = sim::Duration::seconds(0.1);
  cfg.mac.enabled = true;
  cfg.mac.queue_limit = 2;
  cfg.dcc.enabled = dcc;
  return cfg;
}

TEST(CongestionScenario, FloodCollapsesCsmaButDccDegradesGracefully) {
  // 4500 Hz sits just under channel saturation now that airtime counts the
  // link-layer envelope (mac.airtime_overhead_bytes): the flood leaves tiny
  // idle gaps that short backoffs can still win but escalated CWs cannot.
  // Past ~4700 Hz the channel is busy wall-to-wall and both arms die alike.
  const scenario::InterAreaResult off =
      scenario::HighwayScenario{congested_config(4500.0, false)}.run_inter_area();
  const scenario::InterAreaResult on =
      scenario::HighwayScenario{congested_config(4500.0, true)}.run_inter_area();

  // The attacker flooded and the channel was genuinely loaded.
  EXPECT_GT(off.frames_flooded, 10000u);
  EXPECT_GT(off.peak_cbr, 0.5);
  EXPECT_GT(on.peak_cbr, 0.5);

  // DCC off: CW escalation overshoots the flood gaps until the retry
  // budget dies. DCC on: beacons are shed at admission instead, and the
  // scaled retry budget keeps data alive — strictly better delivery.
  EXPECT_GT(off.mac.retry_exhausted_drops, 0u);
  EXPECT_GT(on.mac.dcc_gated_drops, 0u);
  EXPECT_GT(on.overall_reception(), off.overall_reception());
}

TEST(CongestionScenario, UnfloodedMacFleetStillDelivers) {
  // Sanity for the sweep's zero point: MAC + DCC on an unloaded channel is
  // not itself the bottleneck.
  const scenario::InterAreaResult quiet =
      scenario::HighwayScenario{congested_config(0.0, true)}.run_inter_area();
  EXPECT_EQ(quiet.frames_flooded, 0u);
  EXPECT_GT(quiet.overall_reception(), 0.5);
  EXPECT_LT(quiet.peak_cbr, 0.3);
}

}  // namespace
}  // namespace vgr

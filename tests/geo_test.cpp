#include "vgr/geo/area.hpp"
#include "vgr/geo/vec2.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace vgr::geo {
namespace {

TEST(Vec2, BasicArithmetic) {
  const Vec2 a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(b / 2.0, (Vec2{1.5, -0.5}));
}

TEST(Vec2, DotCrossNorm) {
  const Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm_sq(), 25.0);
  EXPECT_DOUBLE_EQ(a.dot({1.0, 0.0}), 3.0);
  EXPECT_DOUBLE_EQ(a.cross({1.0, 0.0}), -4.0);
}

TEST(Vec2, NormalizedHandlesZero) {
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});
  const Vec2 n = Vec2{0.0, 5.0}.normalized();
  EXPECT_NEAR(n.x, 0.0, 1e-12);
  EXPECT_NEAR(n.y, 1.0, 1e-12);
}

TEST(Vec2, RotationQuarterTurn) {
  const Vec2 r = Vec2{1.0, 0.0}.rotated(M_PI / 2.0);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
}

TEST(Vec2, RotationPreservesNorm) {
  const Vec2 v{3.0, 4.0};
  for (double angle : {0.1, 1.0, 2.5, -0.7}) {
    EXPECT_NEAR(v.rotated(angle).norm(), 5.0, 1e-9);
  }
}

TEST(Vec2, DistanceIsSymmetric) {
  const Position a{10.0, 0.0}, b{0.0, 10.0};
  EXPECT_DOUBLE_EQ(distance(a, b), distance(b, a));
  EXPECT_NEAR(distance(a, b), std::sqrt(200.0), 1e-12);
  EXPECT_DOUBLE_EQ(distance_sq(a, b), 200.0);
}

TEST(Vec2, HeadingVector) {
  EXPECT_NEAR(heading_vector(0.0).x, 1.0, 1e-12);
  EXPECT_NEAR(heading_vector(M_PI).x, -1.0, 1e-12);
  EXPECT_NEAR(heading_vector(M_PI / 2.0).y, 1.0, 1e-12);
}

// --- GeoArea -------------------------------------------------------------

TEST(GeoArea, CircleContainment) {
  const GeoArea c = GeoArea::circle({100.0, 50.0}, 10.0);
  EXPECT_TRUE(c.contains({100.0, 50.0}));
  EXPECT_TRUE(c.contains({109.9, 50.0}));
  EXPECT_TRUE(c.contains({110.0, 50.0}));  // border counts as inside
  EXPECT_FALSE(c.contains({110.1, 50.0}));
  EXPECT_FALSE(c.contains({100.0, 61.0}));
}

TEST(GeoArea, CharacteristicSigns) {
  const GeoArea c = GeoArea::circle({0.0, 0.0}, 10.0);
  EXPECT_GT(c.characteristic({0.0, 0.0}), 0.0);
  EXPECT_NEAR(c.characteristic({10.0, 0.0}), 0.0, 1e-12);
  EXPECT_LT(c.characteristic({20.0, 0.0}), 0.0);
}

TEST(GeoArea, RectangleContainment) {
  const GeoArea r = GeoArea::rectangle({0.0, 0.0}, 100.0, 10.0);
  EXPECT_TRUE(r.contains({99.0, 9.0}));
  EXPECT_TRUE(r.contains({-100.0, 10.0}));  // corner is border
  EXPECT_FALSE(r.contains({101.0, 0.0}));
  EXPECT_FALSE(r.contains({0.0, 10.5}));
}

TEST(GeoArea, RotatedRectangle) {
  // Half-extents 100 x 10, rotated 90 degrees: long axis now along y.
  const GeoArea r = GeoArea::rectangle({0.0, 0.0}, 100.0, 10.0, M_PI / 2.0);
  EXPECT_TRUE(r.contains({0.0, 99.0}));
  EXPECT_FALSE(r.contains({99.0, 0.0}));
  EXPECT_TRUE(r.contains({9.0, 0.0}));
}

TEST(GeoArea, EllipseContainment) {
  const GeoArea e = GeoArea::ellipse({0.0, 0.0}, 100.0, 10.0);
  EXPECT_TRUE(e.contains({99.0, 0.0}));
  EXPECT_FALSE(e.contains({99.0, 9.0}));  // outside the ellipse, inside its bbox
  EXPECT_TRUE(e.contains({0.0, 9.9}));
}

TEST(GeoArea, DistanceToCenter) {
  const GeoArea c = GeoArea::circle({10.0, 0.0}, 5.0);
  EXPECT_DOUBLE_EQ(c.distance_to_center({0.0, 0.0}), 10.0);
}

TEST(GeoArea, EqualityComparesAllFields) {
  EXPECT_EQ(GeoArea::circle({1.0, 2.0}, 3.0), GeoArea::circle({1.0, 2.0}, 3.0));
  EXPECT_NE(GeoArea::circle({1.0, 2.0}, 3.0), GeoArea::circle({1.0, 2.0}, 4.0));
  EXPECT_NE(GeoArea::circle({1.0, 2.0}, 3.0), GeoArea::ellipse({1.0, 2.0}, 3.0, 3.0));
}

TEST(GeoArea, ToStringNames) {
  EXPECT_NE(to_string(GeoArea::circle({0, 0}, 1.0)).find("circle"), std::string::npos);
  EXPECT_NE(to_string(GeoArea::rectangle({0, 0}, 1.0, 1.0)).find("rect"), std::string::npos);
}

// Parameterised sweep: a circle's containment must agree with the distance
// predicate everywhere.
class CircleSweep : public ::testing::TestWithParam<double> {};

TEST_P(CircleSweep, ContainmentMatchesDistance) {
  const double radius = GetParam();
  const GeoArea c = GeoArea::circle({500.0, -20.0}, radius);
  for (double x = 400.0; x <= 600.0; x += 7.0) {
    for (double y = -60.0; y <= 20.0; y += 7.0) {
      const bool inside = distance({x, y}, {500.0, -20.0}) <= radius + 1e-9;
      EXPECT_EQ(c.contains({x, y}), inside) << "x=" << x << " y=" << y << " r=" << radius;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, CircleSweep, ::testing::Values(5.0, 25.0, 60.0, 120.0));

// The whole-road rectangle used by the intra-area experiment must contain
// every lane of the two-way segment and exclude points far off the road.
TEST(GeoArea, WholeRoadRectangleCoversAllLanes) {
  const GeoArea road = GeoArea::rectangle({2000.0, 0.0}, 2060.0, 60.0);
  for (double x = 0.0; x <= 4000.0; x += 250.0) {
    for (double y : {-7.5, -2.5, 2.5, 7.5}) {
      EXPECT_TRUE(road.contains({x, y}));
    }
  }
  EXPECT_FALSE(road.contains({2000.0, 100.0}));
  EXPECT_FALSE(road.contains({4500.0, 0.0}));
}

}  // namespace
}  // namespace vgr::geo

// Determinism of the parallel experiment harness: dispatching independent
// runs across a thread pool and merging in seed order must reproduce the
// serial path bit for bit — attack rate, every timeline bin, and the
// overall reception figures. This is the contract that lets VGR_THREADS be
// a pure performance knob.

#include <gtest/gtest.h>

#include <cstdlib>

#include "vgr/scenario/ab_runner.hpp"

namespace vgr::scenario {
namespace {

HighwayConfig quick_config(AttackKind attack) {
  HighwayConfig cfg;
  cfg.attack = attack;
  cfg.sim_duration = sim::Duration::seconds(15.0);
  // Thinner traffic keeps the 4-runs-x-2-arms suite fast while still
  // exercising spawns, exits, forwarding, and the attacker.
  cfg.prefill_spacing_m = 90.0;
  cfg.entry_spacing_m = 90.0;
  return cfg;
}

Fidelity with_threads(std::size_t threads) {
  Fidelity f;
  f.runs = 4;
  f.threads = threads;
  return f;
}

void expect_bit_identical(const AbResult& serial, const AbResult& parallel) {
  // Exact equality on purpose: merging in seed order preserves the
  // floating-point accumulation order, so these are the same bits.
  EXPECT_EQ(serial.attack_rate, parallel.attack_rate);
  EXPECT_EQ(serial.baseline_reception, parallel.baseline_reception);
  EXPECT_EQ(serial.attacked_reception, parallel.attacked_reception);
  EXPECT_EQ(serial.runs, parallel.runs);
  ASSERT_EQ(serial.baseline.bin_count(), parallel.baseline.bin_count());
  for (std::size_t i = 0; i < serial.baseline.bin_count(); ++i) {
    EXPECT_EQ(serial.baseline.has_data(i), parallel.baseline.has_data(i)) << "bin " << i;
    EXPECT_EQ(serial.baseline.rate(i), parallel.baseline.rate(i)) << "bin " << i;
    EXPECT_EQ(serial.attacked.rate(i), parallel.attacked.rate(i)) << "bin " << i;
  }
}

TEST(ParallelHarness, InterAreaSerialAndParallelAreBitIdentical) {
  const HighwayConfig cfg = quick_config(AttackKind::kInterArea);
  const AbResult serial = run_inter_area_ab(cfg, with_threads(1));
  const AbResult parallel = run_inter_area_ab(cfg, with_threads(4));
  expect_bit_identical(serial, parallel);
  // Sanity: the attack actually bites, so we are not comparing zeros.
  EXPECT_GT(serial.baseline_reception, 0.0);
}

TEST(ParallelHarness, IntraAreaSerialAndParallelAreBitIdentical) {
  const HighwayConfig cfg = quick_config(AttackKind::kIntraArea);
  const AbResult serial = run_intra_area_ab(cfg, with_threads(1));
  const AbResult parallel = run_intra_area_ab(cfg, with_threads(4));
  expect_bit_identical(serial, parallel);
  EXPECT_GT(serial.baseline_reception, 0.0);
}

TEST(ParallelHarness, SingleArmHelpersAreBitIdentical) {
  HighwayConfig cfg = quick_config(AttackKind::kInterArea);
  const sim::BinnedRate serial = run_inter_area_arm(cfg, with_threads(1));
  const sim::BinnedRate parallel = run_inter_area_arm(cfg, with_threads(4));
  ASSERT_EQ(serial.bin_count(), parallel.bin_count());
  for (std::size_t i = 0; i < serial.bin_count(); ++i) {
    EXPECT_EQ(serial.rate(i), parallel.rate(i)) << "bin " << i;
  }
  EXPECT_EQ(serial.overall(), parallel.overall());
}

TEST(ParallelHarness, MacDccCongestionArmIsBitIdentical) {
  // The contention layer runs entirely inside each run's event loop with a
  // private RNG stream, so a MAC+DCC fleet under the congestion flooder is
  // as thread-count-invariant as the classic experiments — including every
  // MAC drop counter and the peak CBR in the merged arm totals.
  HighwayConfig cfg = quick_config(AttackKind::kCongestionFlood);
  cfg.sim_duration = sim::Duration::seconds(10.0);
  cfg.flood_rate_hz = 2500.0;
  cfg.beacon_interval = sim::Duration::seconds(0.1);
  cfg.packet_interval = sim::Duration::seconds(0.1);
  cfg.mac.enabled = true;
  cfg.dcc.enabled = true;
  Fidelity f1 = with_threads(1);
  Fidelity f4 = with_threads(4);
  f1.runs = f4.runs = 2;
  const AbResult serial = run_inter_area_ab(cfg, f1);
  const AbResult parallel = run_inter_area_ab(cfg, f4);
  expect_bit_identical(serial, parallel);

  EXPECT_EQ(serial.attacked_totals.mac_transmitted, parallel.attacked_totals.mac_transmitted);
  EXPECT_EQ(serial.attacked_totals.mac_queue_overflow,
            parallel.attacked_totals.mac_queue_overflow);
  EXPECT_EQ(serial.attacked_totals.mac_retry_exhausted,
            parallel.attacked_totals.mac_retry_exhausted);
  EXPECT_EQ(serial.attacked_totals.mac_dcc_gated, parallel.attacked_totals.mac_dcc_gated);
  EXPECT_EQ(serial.attacked_totals.mac_backoff_retries,
            parallel.attacked_totals.mac_backoff_retries);
  EXPECT_EQ(serial.attacked_totals.peak_cbr, parallel.attacked_totals.peak_cbr);
  EXPECT_EQ(serial.attacked_totals.frames_flooded, parallel.attacked_totals.frames_flooded);

  // The attack plumbing engaged: frames were flooded and beacons gated.
  EXPECT_GT(serial.attacked_totals.frames_flooded, 0u);
  EXPECT_GT(serial.attacked_totals.mac_dcc_gated, 0u);
  EXPECT_GT(serial.attacked_totals.peak_cbr, 0.3);
  // The A-arm is attacker-free: nothing flooded there.
  EXPECT_EQ(serial.baseline_totals.frames_flooded, 0u);
}

TEST(ParallelHarness, SpatialIndexDoesNotChangeResults) {
  // The medium's spatial index must be a pure accelerator: a full A/B
  // experiment with the index disabled reproduces the indexed results.
  HighwayConfig cfg = quick_config(AttackKind::kInterArea);
  const AbResult indexed = run_inter_area_ab(cfg, with_threads(2));
  cfg.spatial_index = false;
  const AbResult scanned = run_inter_area_ab(cfg, with_threads(2));
  expect_bit_identical(indexed, scanned);
}

TEST(Fidelity, FromEnvRejectsMalformedTokensWhole) {
  ::setenv("VGR_RUNS", "5", 1);
  ::setenv("VGR_SIM_SECONDS", "12.5", 1);
  ::setenv("VGR_THREADS", "2", 1);
  Fidelity f = Fidelity::from_env(3);
  EXPECT_EQ(f.runs, 5u);
  EXPECT_DOUBLE_EQ(f.sim_seconds, 12.5);
  EXPECT_EQ(f.threads, 2u);

  // "5x" used to be accepted as 5 (strtol prefix parse) and "abc" silently
  // became the default; both are now rejected whole-token with a warning.
  ::setenv("VGR_RUNS", "5x", 1);
  ::setenv("VGR_SIM_SECONDS", "abc", 1);
  ::setenv("VGR_THREADS", "-2", 1);  // parses, but non-positive: ignored
  f = Fidelity::from_env(3);
  EXPECT_EQ(f.runs, 3u);
  EXPECT_DOUBLE_EQ(f.sim_seconds, -1.0);
  EXPECT_EQ(f.threads, 0u);

  ::unsetenv("VGR_RUNS");
  ::unsetenv("VGR_SIM_SECONDS");
  ::unsetenv("VGR_THREADS");
  f = Fidelity::from_env(7);
  EXPECT_EQ(f.runs, 7u);
}

// --- Per-run watchdog (docs/robustness.md) --------------------------------

TEST(Fidelity, WatchdogKnobsParseFromEnv) {
  ::setenv("VGR_RUN_TIMEOUT_S", "2.5", 1);
  ::setenv("VGR_RUN_MAX_EVENTS", "5000", 1);
  Fidelity f = Fidelity::from_env(3);
  EXPECT_DOUBLE_EQ(f.run_wall_budget_s, 2.5);
  EXPECT_EQ(f.run_max_events, 5000u);

  ::setenv("VGR_RUN_TIMEOUT_S", "-1", 1);   // non-positive: ignored
  ::setenv("VGR_RUN_MAX_EVENTS", "12x", 1); // malformed: rejected whole-token
  f = Fidelity::from_env(3);
  EXPECT_DOUBLE_EQ(f.run_wall_budget_s, 0.0);
  EXPECT_EQ(f.run_max_events, 0u);

  ::unsetenv("VGR_RUN_TIMEOUT_S");
  ::unsetenv("VGR_RUN_MAX_EVENTS");
}

TEST(ParallelHarness, TinyEventBudgetReportsRunsAsTimedOut) {
  // An event budget far below what a run needs trips the circuit breaker in
  // every run; all of them are reported as timed out in the merged result
  // instead of hanging or silently passing truncated data off as complete.
  const HighwayConfig cfg = quick_config(AttackKind::kInterArea);
  Fidelity f = with_threads(2);
  f.runs = 2;
  f.run_max_events = 50;
  const AbResult r = run_inter_area_ab(cfg, f);
  EXPECT_EQ(r.timed_out_runs, r.runs);
}

TEST(ParallelHarness, NoWatchdogMeansNoTimedOutRuns) {
  const HighwayConfig cfg = quick_config(AttackKind::kInterArea);
  Fidelity f = with_threads(2);
  f.runs = 2;
  const AbResult r = run_inter_area_ab(cfg, f);
  EXPECT_EQ(r.timed_out_runs, 0u);
}

}  // namespace
}  // namespace vgr::scenario

// Unit tests for the space-partitioned conservative executor
// (sim/strip_executor): window/mailbox determinism across worker counts,
// cross-strip post merge order, handle migration, and the plane-wide run
// budget. Scenario-level byte-identity lives in scenario_parallel_test.cpp.

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "vgr/sim/event_queue.hpp"
#include "vgr/sim/strip_executor.hpp"
#include "vgr/sim/time.hpp"

namespace {

using vgr::sim::BudgetTrip;
using vgr::sim::CohortId;
using vgr::sim::Duration;
using vgr::sim::EventId;
using vgr::sim::EventQueue;
using vgr::sim::StripPlane;
using vgr::sim::TimePoint;

struct TraceEntry {
  std::int64_t at_ns;
  std::uint32_t handle;
  std::uint32_t seq;
  friend bool operator==(const TraceEntry&, const TraceEntry&) = default;
};

/// One strip-resident "node": a self-rescheduling event chain that records
/// every firing and occasionally posts work to the next strip over. The
/// deltas are a fixed pseudo-random sequence, so the chain is a pure
/// function of (handle index, seq) — any divergence across worker counts
/// is an executor bug.
struct ChainNode {
  EventQueue* handle{nullptr};
  StripPlane* plane{nullptr};
  ChainNode* peer{nullptr};  ///< node on another strip, poked cross-strip
  std::uint32_t index{0};
  std::uint32_t hops{0};
  std::vector<TraceEntry> trace;  // appended only by this node's wheel

  void start(TimePoint at) {
    handle->schedule_at(at, [this] { fire(); });
  }

  void fire() {
    const TimePoint now = handle->now();
    trace.push_back({now.count(), index, hops});
    if (hops % 8 == 4 && peer != nullptr) {
      // Cross-strip interaction beyond the lookahead horizon, like a radio
      // frame: lands on the peer's wheel through the mailbox merge.
      ChainNode* p = peer;
      const std::uint32_t stamp = 1000 + hops;
      plane->post(*p->handle, now + Duration::micros(120), [p, stamp] {
        p->trace.push_back({p->handle->now().count(), p->index, stamp});
      });
    }
    if (++hops >= 64) return;
    const std::int64_t jitter = (static_cast<std::int64_t>(index) * 7919 +
                                 static_cast<std::int64_t>(hops) * 104729) % 97;
    handle->schedule_in(Duration::micros(20 + jitter), [this] { fire(); });
  }
};

struct World {
  StripPlane plane;
  std::vector<ChainNode*> nodes;

  World(std::uint32_t strips, std::size_t threads, std::uint32_t nodes_per_strip)
      : plane{StripPlane::Config{strips, threads, Duration::micros(50)}} {
    for (std::uint32_t s = 1; s <= strips; ++s) {
      for (std::uint32_t n = 0; n < nodes_per_strip; ++n) {
        auto* node = new ChainNode;
        node->handle = &plane.make_handle(s);
        node->plane = &plane;
        node->index = static_cast<std::uint32_t>(nodes.size());
        nodes.push_back(node);
      }
    }
    // Ring of peers across strip boundaries (node i pokes node i+1).
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      nodes[i]->peer = nodes[(i + 1) % nodes.size()];
    }
  }
  ~World() {
    for (ChainNode* n : nodes) delete n;
  }

  void start_all() {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      nodes[i]->start(TimePoint::at(Duration::micros(10 + 3 * static_cast<std::int64_t>(i))));
    }
  }

  [[nodiscard]] std::vector<std::vector<TraceEntry>> traces() const {
    std::vector<std::vector<TraceEntry>> out;
    out.reserve(nodes.size());
    for (const ChainNode* n : nodes) out.push_back(n->trace);
    return out;
  }
};

std::vector<std::vector<TraceEntry>> run_world(std::uint32_t strips, std::size_t threads) {
  World w{strips, threads, /*nodes_per_strip=*/3};
  w.start_all();
  w.plane.global().run_until(TimePoint::at(Duration::millis(40)));
  EXPECT_EQ(w.plane.late_posts(), 0U);
  return w.traces();
}

TEST(StripExecutor, TraceIsIdenticalAcrossWorkerCounts) {
  const auto baseline = run_world(8, 1);
  std::size_t fired = 0;
  for (const auto& t : baseline) fired += t.size();
  EXPECT_GT(fired, 8U * 3U * 32U);  // the chains actually ran
  for (const std::size_t threads : {2UL, 4UL, 8UL}) {
    EXPECT_EQ(run_world(8, threads), baseline) << "threads=" << threads;
  }
}

TEST(StripExecutor, StripCountIsAModelParameterNotAThreadKnob) {
  // Different strip counts may legally differ (strips are part of the
  // model); the same strip count must not differ across thread counts even
  // when threads > strips.
  const auto two_strips = run_world(2, 1);
  EXPECT_EQ(run_world(2, 8), two_strips);
}

TEST(StripExecutor, CrossStripPostsMergeInTimestampSourceOrder) {
  StripPlane plane{StripPlane::Config{4, 2, Duration::micros(50)}};
  EventQueue& h1 = plane.make_handle(1);
  EventQueue& h2 = plane.make_handle(2);
  EventQueue& h3 = plane.make_handle(3);
  EventQueue& dst = plane.make_handle(4);
  std::vector<int> order;  // appended only on strip 4's wheel

  // Three source strips post to the same destination instant; the merge
  // must come out (timestamp, source strip) no matter which worker ran
  // which source first.
  const TimePoint t0 = TimePoint::at(Duration::micros(100));
  const TimePoint when = TimePoint::at(Duration::micros(500));
  h3.schedule_at(t0, [&] { plane.post(dst, when, [&order] { order.push_back(3); }); });
  h1.schedule_at(t0, [&] { plane.post(dst, when, [&order] { order.push_back(1); }); });
  h2.schedule_at(t0, [&] {
    plane.post(dst, when, [&order] { order.push_back(2); });
    plane.post(dst, when, [&order] { order.push_back(4); });  // same src: seq order
  });
  plane.global().run_until(TimePoint::at(Duration::millis(1)));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 4, 3}));
  EXPECT_EQ(plane.late_posts(), 0U);
}

TEST(StripExecutor, GlobalEventsRunSeriallyBetweenWindows) {
  StripPlane plane{StripPlane::Config{2, 2, Duration::micros(50)}};
  EventQueue& h = plane.make_handle(1);
  std::vector<int> order;
  // A strip event and a global event at the same instant: the global one
  // runs first (globals take precedence at equal timestamps).
  const TimePoint t = TimePoint::at(Duration::micros(200));
  h.schedule_at(t, [&] { order.push_back(2); });
  plane.global().schedule_at(t, [&] { order.push_back(1); });
  plane.global().run_until(TimePoint::at(Duration::millis(1)));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(StripExecutor, RehomeMigratesPendingEventsVerbatim) {
  StripPlane plane{StripPlane::Config{4, 2, Duration::micros(50)}};
  EventQueue& h = plane.make_handle(1);
  std::vector<std::int64_t> fired_at;
  for (int i = 0; i < 5; ++i) {
    h.schedule_at(TimePoint::at(Duration::micros(300 + 10 * i)),
                  [&fired_at, &h] { fired_at.push_back(h.now().count()); });
  }
  ASSERT_EQ(h.strip(), 1U);
  plane.rehome(h, 3);
  plane.global().run_until(TimePoint::at(Duration::millis(1)));
  EXPECT_EQ(h.strip(), 3U);
  ASSERT_EQ(fired_at.size(), 5U);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(fired_at[static_cast<std::size_t>(i)],
              Duration::micros(300 + 10 * i).count());
  }
}

TEST(StripExecutor, CancelAndCohortsSurviveMigration) {
  StripPlane plane{StripPlane::Config{4, 1, Duration::micros(50)}};
  EventQueue& h = plane.make_handle(2);
  const CohortId cohort = h.make_cohort();
  int cohort_fired = 0;
  for (int i = 0; i < 7; ++i) {
    h.schedule_at(TimePoint::at(Duration::micros(400 + i)), cohort,
                  [&cohort_fired] { ++cohort_fired; });
  }
  bool lone_fired = false;
  const EventId lone =
      h.schedule_at(TimePoint::at(Duration::micros(450)), [&lone_fired] { lone_fired = true; });

  // Migrate mid-flight: the slot slabs stay with strip 2's wheel, the
  // records move to strip 4's — cancellation must keep working across that
  // region boundary.
  plane.rehome(h, 4);
  plane.global().run_until(TimePoint::at(Duration::micros(10)));  // applies the re-home
  EXPECT_EQ(h.strip(), 4U);
  EXPECT_TRUE(h.pending(lone));
  EXPECT_TRUE(h.cancel(lone));
  EXPECT_FALSE(h.pending(lone));
  EXPECT_EQ(h.cancel_cohort(cohort), 7U);

  plane.global().run_until(TimePoint::at(Duration::millis(1)));
  EXPECT_EQ(cohort_fired, 0);
  EXPECT_FALSE(lone_fired);
  EXPECT_EQ(plane.pending_total(), 0U);
}

TEST(StripExecutor, LatePostsAreCountedAndClamped) {
  StripPlane plane{StripPlane::Config{2, 1, Duration::micros(50)}};
  EventQueue& h = plane.make_handle(1);
  plane.global().run_until(TimePoint::at(Duration::millis(2)));
  bool ran = false;
  // The wheel clock is now at 2 ms; a post targeting 1 ms is a lookahead
  // violation — it must be counted and clamped, not reordered or dropped.
  plane.post(h, TimePoint::at(Duration::millis(1)), [&ran] { ran = true; });
  plane.global().run_until(TimePoint::at(Duration::millis(3)));
  EXPECT_TRUE(ran);
  EXPECT_EQ(plane.late_posts(), 1U);
}

TEST(StripExecutor, EventBudgetAggregatesAcrossStripsDeterministically) {
  auto run_with = [](std::size_t threads) {
    World w{8, threads, /*nodes_per_strip=*/2};
    w.start_all();
    w.plane.global().set_run_budget(200, 0.0);
    w.plane.global().run_until(TimePoint::at(Duration::millis(40)));
    EXPECT_TRUE(w.plane.global().budget_exceeded());
    EXPECT_EQ(w.plane.global().budget_trip(), BudgetTrip::kEvents);
    return w.plane.global().fired_count();
  };
  const std::uint64_t fired1 = run_with(1);
  EXPECT_GE(fired1, 200U);
  EXPECT_EQ(run_with(4), fired1);  // per-window caps make the trip exact
}

TEST(StripExecutor, WallBudgetTripsOnRunawayStrip) {
  StripPlane plane{StripPlane::Config{2, 2, Duration::micros(50)}};
  EventQueue& h = plane.make_handle(1);
  std::function<void()> spin = [&] { h.schedule_in(Duration::nanos(200), spin); };
  h.schedule_at(TimePoint::at(Duration::micros(1)), spin);
  plane.global().set_run_budget(0, 0.05);
  plane.global().run_until(TimePoint::at(Duration::seconds(3600.0)));
  EXPECT_TRUE(plane.global().budget_exceeded());
  EXPECT_EQ(plane.global().budget_trip(), BudgetTrip::kWall);
}

TEST(StripExecutor, SingleStripPlaneMatchesStandaloneQueueOrder) {
  // A 1-strip plane is the executor's degenerate case; the events it runs
  // must interleave exactly like a plain standalone queue fed the same
  // schedule (ids differ — wheels tag them — but order must not).
  std::vector<std::uint32_t> plain_order;
  {
    EventQueue q;
    for (std::uint32_t i = 0; i < 16; ++i) {
      q.schedule_at(TimePoint::at(Duration::micros(100 + (i % 4))),
                    [&plain_order, i] { plain_order.push_back(i); });
    }
    q.run_until(TimePoint::at(Duration::millis(1)));
  }
  std::vector<std::uint32_t> strip_order;
  {
    StripPlane plane{StripPlane::Config{1, 1, Duration::micros(50)}};
    EventQueue& h = plane.make_handle(1);
    for (std::uint32_t i = 0; i < 16; ++i) {
      h.schedule_at(TimePoint::at(Duration::micros(100 + (i % 4))),
                    [&strip_order, i] { strip_order.push_back(i); });
    }
    plane.global().run_until(TimePoint::at(Duration::millis(1)));
  }
  EXPECT_EQ(strip_order, plain_order);
}

}  // namespace

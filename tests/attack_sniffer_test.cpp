// Focused tests for the passive sniffer capabilities (paper §III-A steps 1
// and 2: build the position map, infer coverage relationships).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "vgr/attack/sniffer.hpp"
#include "vgr/gn/router.hpp"
#include "vgr/security/authority.hpp"

namespace vgr::attack {
namespace {

using namespace vgr::sim::literals;

class SnifferTest : public ::testing::Test {
 protected:
  SnifferTest() : medium_{events_, phy::AccessTechnology::kDsrc} {}

  struct Node {
    std::unique_ptr<gn::StaticMobility> mobility;
    std::unique_ptr<gn::Router> router;
  };

  Node& add_node(double x) {
    nodes_.push_back(std::make_unique<Node>());
    Node& n = *nodes_.back();
    n.mobility = std::make_unique<gn::StaticMobility>(geo::Position{x, 0.0});
    const net::GnAddress addr{net::GnAddress::StationType::kPassengerCar,
                              net::MacAddress{0x900 + nodes_.size()}};
    gn::RouterConfig cfg = gn::RouterConfig::for_technology(phy::AccessTechnology::kDsrc);
    n.router = std::make_unique<gn::Router>(events_, medium_, security::Signer{ca_.enroll(addr)},
                                            ca_.trust_store(), *n.mobility, cfg, 486.0,
                                            rng_.fork());
    return n;
  }

  void run_for(sim::Duration d) { events_.run_until(events_.now() + d); }

  sim::EventQueue events_;
  phy::Medium medium_;
  security::CertificateAuthority ca_;
  sim::Rng rng_{1212};
  std::vector<std::unique_ptr<Node>> nodes_;
};

TEST_F(SnifferTest, ObservationsTrackFreshestPv) {
  Node& a = add_node(0.0);
  Sniffer sniffer{events_, medium_, {100.0, 10.0}, 600.0};
  a.router->send_beacon_now();
  run_for(1_s);
  auto* mob = static_cast<gn::StaticMobility*>(a.mobility.get());
  mob->move_to({50.0, 0.0});
  a.router->send_beacon_now();
  run_for(1_s);

  const auto& obs = sniffer.observations();
  ASSERT_TRUE(obs.contains(a.router->address()));
  EXPECT_DOUBLE_EQ(obs.at(a.router->address()).pv.position.x, 50.0);
}

TEST_F(SnifferTest, CaptureCountIncludesAllFrameKinds) {
  Node& a = add_node(0.0);
  Node& b = add_node(300.0);
  Sniffer sniffer{events_, medium_, {150.0, 10.0}, 600.0};
  a.router->send_beacon_now();
  b.router->send_beacon_now();
  run_for(100_ms);
  a.router->send_geo_broadcast(geo::GeoArea::rectangle({150.0, 0.0}, 400.0, 50.0), {1});
  run_for(1_s);
  // 2 beacons + the GBC + b's CBF rebroadcast.
  EXPECT_GE(sniffer.frames_captured(), 4u);
  EXPECT_EQ(sniffer.frames_injected(), 0u);  // purely passive
}

TEST_F(SnifferTest, CoverageInferenceNeedsBothStations) {
  Node& a = add_node(0.0);
  Sniffer sniffer{events_, medium_, {100.0, 10.0}, 600.0};
  a.router->send_beacon_now();
  run_for(100_ms);
  const auto ghost =
      net::GnAddress{net::GnAddress::StationType::kPassengerCar, net::MacAddress{0xFE}};
  EXPECT_FALSE(sniffer.inferred_out_of_coverage(a.router->address(), ghost, 486.0));
}

TEST_F(SnifferTest, CoverageInferenceUsesAdvertisedPositions) {
  Node& a = add_node(0.0);
  Node& b = add_node(450.0);
  Node& c = add_node(1000.0);
  Sniffer sniffer{events_, medium_, {500.0, 10.0}, 600.0};
  for (auto& n : nodes_) n->router->send_beacon_now();
  run_for(100_ms);

  EXPECT_FALSE(
      sniffer.inferred_out_of_coverage(a.router->address(), b.router->address(), 486.0));
  EXPECT_TRUE(
      sniffer.inferred_out_of_coverage(a.router->address(), c.router->address(), 486.0));
  // The relation is symmetric.
  EXPECT_TRUE(
      sniffer.inferred_out_of_coverage(c.router->address(), a.router->address(), 486.0));
}

TEST_F(SnifferTest, AttackRangeAdjustsBothDirections) {
  Node& a = add_node(0.0);
  Sniffer sniffer{events_, medium_, {700.0, 10.0}, 400.0};
  a.router->send_beacon_now();
  run_for(100_ms);
  // 700 m away with a 400 m attacker radio: hears nothing.
  EXPECT_EQ(sniffer.frames_captured(), 0u);

  sniffer.set_attack_range(900.0);
  EXPECT_DOUBLE_EQ(sniffer.attack_range(), 900.0);
  a.router->send_beacon_now();
  run_for(100_ms);
  EXPECT_EQ(sniffer.frames_captured(), 1u);  // elevated antenna now hears it
}

}  // namespace
}  // namespace vgr::attack

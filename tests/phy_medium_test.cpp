#include <gtest/gtest.h>

#include <vector>

#include "vgr/phy/medium.hpp"
#include "vgr/security/authority.hpp"

namespace vgr::phy {
namespace {

using namespace vgr::sim::literals;

struct TestNode {
  geo::Position pos;
  std::vector<Frame> received;
  RadioId id{};
};

class MediumTest : public ::testing::Test {
 protected:
  MediumTest() : medium_{events_, AccessTechnology::kDsrc} {}

  TestNode& add(geo::Position pos, double range, std::uint64_t mac, bool promiscuous = false) {
    nodes_.push_back(std::make_unique<TestNode>());
    TestNode& n = *nodes_.back();
    n.pos = pos;
    Medium::NodeConfig cfg;
    cfg.mac = net::MacAddress{mac};
    cfg.position = [&n] { return n.pos; };
    cfg.tx_range_m = range;
    cfg.promiscuous = promiscuous;
    n.id = medium_.add_node(std::move(cfg), [&n](const Frame& f, RadioId) {
      n.received.push_back(f);
    });
    return n;
  }

  Frame broadcast_frame(std::uint64_t src) {
    Frame f;
    f.src = net::MacAddress{src};
    f.dst = net::MacAddress::broadcast();
    f.msg = security::share(security::SecuredMessage{});
    return f;
  }

  void settle() { events_.run_until(events_.now() + 1_s); }

  sim::EventQueue events_;
  Medium medium_;
  std::vector<std::unique_ptr<TestNode>> nodes_;
};

TEST_F(MediumTest, DeliversWithinRange) {
  TestNode& a = add({0, 0}, 100.0, 1);
  TestNode& b = add({50, 0}, 100.0, 2);
  medium_.transmit(a.id, broadcast_frame(1));
  settle();
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(a.received.size(), 0u);  // no self-delivery
}

TEST_F(MediumTest, DropsBeyondRange) {
  TestNode& a = add({0, 0}, 100.0, 1);
  TestNode& b = add({150, 0}, 100.0, 2);
  medium_.transmit(a.id, broadcast_frame(1));
  settle();
  EXPECT_TRUE(b.received.empty());
}

TEST_F(MediumTest, RangeIsSenderDetermined) {
  // b has a tiny range but still hears a, whose range covers it.
  TestNode& a = add({0, 0}, 500.0, 1);
  TestNode& b = add({400, 0}, 10.0, 2);
  medium_.transmit(a.id, broadcast_frame(1));
  settle();
  EXPECT_EQ(b.received.size(), 1u);
  // The reverse direction fails: b's 10 m range cannot reach a.
  medium_.transmit(b.id, broadcast_frame(2));
  settle();
  EXPECT_TRUE(a.received.empty());
}

TEST_F(MediumTest, UnicastFilteredByMac) {
  TestNode& a = add({0, 0}, 100.0, 1);
  TestNode& b = add({10, 0}, 100.0, 2);
  TestNode& c = add({20, 0}, 100.0, 3);
  Frame f = broadcast_frame(1);
  f.dst = net::MacAddress{3};
  medium_.transmit(a.id, f);
  settle();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(c.received.size(), 1u);
}

TEST_F(MediumTest, PromiscuousNodeOverhearsUnicast) {
  TestNode& a = add({0, 0}, 100.0, 1);
  add({10, 0}, 100.0, 2);
  TestNode& sniffer = add({30, 0}, 100.0, 0xBAD, /*promiscuous=*/true);
  Frame f = broadcast_frame(1);
  f.dst = net::MacAddress{2};
  medium_.transmit(a.id, f);
  settle();
  EXPECT_EQ(sniffer.received.size(), 1u);
}

TEST_F(MediumTest, RangeOverrideAppliesToSingleFrame) {
  TestNode& a = add({0, 0}, 1000.0, 1);
  TestNode& b = add({500, 0}, 100.0, 2);
  medium_.transmit(a.id, broadcast_frame(1), /*range_override_m=*/100.0);
  settle();
  EXPECT_TRUE(b.received.empty());
  medium_.transmit(a.id, broadcast_frame(1));  // back to full power
  settle();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST_F(MediumTest, SetTxRangeTakesEffect) {
  TestNode& a = add({0, 0}, 10.0, 1);
  TestNode& b = add({500, 0}, 100.0, 2);
  medium_.set_tx_range(a.id, 600.0);
  EXPECT_DOUBLE_EQ(medium_.tx_range(a.id), 600.0);
  medium_.transmit(a.id, broadcast_frame(1));
  settle();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST_F(MediumTest, RemovedNodeReceivesNothing) {
  TestNode& a = add({0, 0}, 100.0, 1);
  TestNode& b = add({10, 0}, 100.0, 2);
  medium_.remove_node(b.id);
  medium_.transmit(a.id, broadcast_frame(1));
  settle();
  EXPECT_TRUE(b.received.empty());
}

TEST_F(MediumTest, RemovalDuringFlightIsSafe) {
  TestNode& a = add({0, 0}, 100.0, 1);
  TestNode& b = add({10, 0}, 100.0, 2);
  medium_.transmit(a.id, broadcast_frame(1));
  medium_.remove_node(b.id);  // frame already in flight
  settle();
  EXPECT_TRUE(b.received.empty());
}

TEST_F(MediumTest, ObstructionBlocksPath) {
  TestNode& a = add({-50, 0}, 200.0, 1);
  TestNode& b = add({50, 0}, 200.0, 2);
  medium_.set_obstruction([](geo::Position p, geo::Position q) {
    return (p.x < 0.0) != (q.x < 0.0);
  });
  medium_.transmit(a.id, broadcast_frame(1));
  settle();
  EXPECT_TRUE(b.received.empty());
}

TEST_F(MediumTest, DeliveryIsDelayedNotInstant) {
  TestNode& a = add({0, 0}, 100.0, 1);
  TestNode& b = add({50, 0}, 100.0, 2);
  medium_.transmit(a.id, broadcast_frame(1));
  EXPECT_TRUE(b.received.empty());  // nothing until events run
  settle();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST_F(MediumTest, CountersTrackTraffic) {
  TestNode& a = add({0, 0}, 100.0, 1);
  add({10, 0}, 100.0, 2);
  add({20, 0}, 100.0, 3);
  medium_.transmit(a.id, broadcast_frame(1));
  settle();
  EXPECT_EQ(medium_.frames_sent(), 1u);
  EXPECT_EQ(medium_.frames_delivered(), 2u);
}

TEST_F(MediumTest, FadingModelDropsNearRangeEdge) {
  medium_.set_reception_model(ReceptionModel::kLogDistanceFading);
  medium_.set_fading_onset_fraction(0.5);
  TestNode& a = add({0, 0}, 100.0, 1);
  TestNode& near = add({20, 0}, 100.0, 2);   // inside onset: always received
  TestNode& edge = add({95, 0}, 100.0, 3);   // deep in the fade zone
  for (int i = 0; i < 200; ++i) medium_.transmit(a.id, broadcast_frame(1));
  settle();
  EXPECT_EQ(near.received.size(), 200u);
  EXPECT_GT(edge.received.size(), 0u);
  EXPECT_LT(edge.received.size(), 100u);  // ~10% expected at 95/100
}

TEST_F(MediumTest, AirtimeOverheadExtendsTheBusyWindow) {
  // The airtime of a frame derives from its exact encoded GN wire size plus
  // the configured link-layer overhead. Default overhead is 0 — MAC-off
  // runs keep the historical GN-only airtime byte for byte.
  EXPECT_EQ(medium_.airtime_overhead_bytes(), 0u);
  TestNode& a = add({0, 0}, 100.0, 1);
  add({50, 0}, 100.0, 2);

  Frame f = broadcast_frame(1);
  const std::size_t wire = f.msg->wire_size();
  medium_.transmit(a.id, std::move(f));
  settle();
  // The transmitter occupies its own channel for exactly the airtime.
  EXPECT_EQ(medium_.busy_time(a.id), airtime(AccessTechnology::kDsrc, wire));

  medium_.set_airtime_overhead_bytes(38);
  medium_.transmit(a.id, broadcast_frame(1));
  settle();
  EXPECT_EQ(medium_.busy_time(a.id),
            airtime(AccessTechnology::kDsrc, wire) +
                airtime(AccessTechnology::kDsrc, wire + 38));
}

TEST(Technology, TableIIRanges) {
  const RangeTable dsrc = range_table(AccessTechnology::kDsrc);
  EXPECT_DOUBLE_EQ(dsrc.los_median_m, 1283.0);
  EXPECT_DOUBLE_EQ(dsrc.nlos_median_m, 486.0);
  EXPECT_DOUBLE_EQ(dsrc.nlos_worst_m, 327.0);
  const RangeTable cv2x = range_table(AccessTechnology::kCv2x);
  EXPECT_DOUBLE_EQ(cv2x.los_median_m, 1703.0);
  EXPECT_DOUBLE_EQ(cv2x.nlos_median_m, 593.0);
  EXPECT_DOUBLE_EQ(cv2x.nlos_worst_m, 359.0);
}

TEST(Technology, AirtimeScalesWithSize) {
  const auto t1 = airtime(AccessTechnology::kDsrc, 100);
  const auto t2 = airtime(AccessTechnology::kDsrc, 200);
  EXPECT_GT(t2, t1);
  // 100 bytes at 6 Mbps = 133.3 us.
  EXPECT_NEAR(t1.to_seconds() * 1e6, 133.3, 0.5);
}

TEST(Technology, PropagationDelayIsLightSpeed) {
  EXPECT_NEAR(propagation_delay(300.0).to_seconds() * 1e6, 1.0, 0.01);
}

TEST(Technology, Names) {
  EXPECT_STREQ(name(AccessTechnology::kDsrc), "DSRC");
  EXPECT_STREQ(name(AccessTechnology::kCv2x), "C-V2X");
}

}  // namespace
}  // namespace vgr::phy

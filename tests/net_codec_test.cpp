#include "vgr/net/codec.hpp"

#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <limits>

namespace vgr::net {
namespace {

LongPositionVector sample_lpv() {
  LongPositionVector pv;
  pv.address = GnAddress{GnAddress::StationType::kPassengerCar, MacAddress{0xA1B2C3D4E5ULL}};
  pv.timestamp = sim::TimePoint::at(sim::Duration::seconds(12.5));
  pv.position = {1234.5, -7.25};
  pv.speed_mps = 29.7;
  pv.heading_rad = 3.14159;
  return pv;
}

Packet sample_beacon() {
  Packet p;
  p.basic.remaining_hop_limit = 1;
  p.basic.lifetime = sim::Duration::seconds(3.0);
  p.common.type = CommonHeader::HeaderType::kBeacon;
  p.common.max_hop_limit = 1;
  p.extended = BeaconHeader{sample_lpv()};
  return p;
}

Packet sample_gbc() {
  Packet p;
  p.basic.remaining_hop_limit = 10;
  p.common.type = CommonHeader::HeaderType::kGeoBroadcast;
  p.common.max_hop_limit = 10;
  p.extended = GbcHeader{42, sample_lpv(), geo::GeoArea::circle({4020.0, 2.5}, 30.0)};
  p.payload = {1, 2, 3, 4, 5, 6, 7, 8};
  return p;
}

Packet sample_guc() {
  Packet p;
  p.common.type = CommonHeader::HeaderType::kGeoUnicast;
  ShortPositionVector dest;
  dest.address = GnAddress{GnAddress::StationType::kRoadSideUnit, MacAddress{0xF00DULL}};
  dest.timestamp = sim::TimePoint::at(sim::Duration::seconds(1.0));
  dest.position = {-20.0, 2.5};
  p.extended = GucHeader{7, sample_lpv(), dest};
  p.payload = {0xDE, 0xAD};
  return p;
}

TEST(ByteWriterReader, ScalarsRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.f64(-12345.6789);
  ByteReader r{w.data()};
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.f64(), -12345.6789);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteWriterReader, BytesLengthPrefixed) {
  ByteWriter w;
  w.bytes({1, 2, 3});
  w.bytes({});
  ByteReader r{w.data()};
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.bytes(), Bytes{});
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteWriterReader, TruncationReturnsNullopt) {
  ByteWriter w;
  w.u32(1);
  Bytes data = w.data();
  data.pop_back();
  ByteReader r{data};
  EXPECT_EQ(r.u32(), std::nullopt);
}

TEST(ByteWriterReader, BytesWithLyingLengthFails) {
  ByteWriter w;
  w.u32(1000);  // claims 1000 bytes, provides none
  ByteReader r{w.data()};
  EXPECT_EQ(r.bytes(), std::nullopt);
}

TEST(ByteWriterReader, HostileLengthPrefixRejectedBeforeAllocation) {
  // A 4-byte frame claiming 4 GiB - 1 of content must fail cleanly; the
  // length check happens before any buffer is sized from the prefix.
  ByteWriter w;
  w.u32(0xFFFFFFFFu);
  ByteReader r{w.data()};
  EXPECT_EQ(r.bytes(), std::nullopt);
}

TEST(ByteWriterReader, ChunkAboveWireMaximumRejected) {
  // Even when the bytes are genuinely present, a chunk larger than the
  // documented wire maximum is rejected — no standards-conformant frame is
  // that big, so it can only be hostile or corrupt.
  ByteWriter w;
  w.bytes(Bytes(kMaxChunkBytes + 1, 0x55));
  ByteReader r{w.data()};
  EXPECT_EQ(r.bytes(), std::nullopt);

  ByteWriter ok;
  ok.bytes(Bytes(kMaxChunkBytes, 0x55));
  ByteReader r2{ok.data()};
  const auto chunk = r2.bytes();
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(chunk->size(), kMaxChunkBytes);
}

Packet sample_gac() {
  Packet p;
  p.common.type = CommonHeader::HeaderType::kGeoAnycast;
  p.extended = GacHeader{9, sample_lpv(), geo::GeoArea::rectangle({100.0, 0.0}, 250.0, 40.0)};
  p.payload = Bytes(37, 0xC3);  // odd size: exercises the length prefix
  return p;
}

Packet sample_tsb() {
  Packet p;
  p.common.type = CommonHeader::HeaderType::kTopoBroadcast;
  p.extended = TsbHeader{3, sample_lpv()};
  p.payload = {0x01};
  return p;
}

Packet sample_shb() {
  Packet p;
  p.common.type = CommonHeader::HeaderType::kSingleHopBroadcast;
  p.extended = ShbHeader{sample_lpv()};
  p.payload = Bytes(300, 0x77);  // CAM-sized payload
  return p;
}

Packet sample_ls_request() {
  Packet p;
  p.common.type = CommonHeader::HeaderType::kLsRequest;
  p.extended = LsRequestHeader{
      5, sample_lpv(),
      GnAddress{GnAddress::StationType::kPassengerCar, MacAddress{0xBEEFULL}}};
  return p;  // empty payload: the 4-byte length prefix still counts
}

Packet sample_ls_reply() {
  Packet p;
  p.common.type = CommonHeader::HeaderType::kLsReply;
  ShortPositionVector dest;
  dest.address = GnAddress{GnAddress::StationType::kPassengerCar, MacAddress{0xCAFEULL}};
  dest.timestamp = sim::TimePoint::at(sim::Duration::seconds(2.0));
  dest.position = {5.0, -5.0};
  p.extended = LsReplyHeader{6, sample_lpv(), dest};
  return p;
}

Packet sample_ack() {
  Packet p;
  p.common.type = CommonHeader::HeaderType::kAck;
  p.extended = AckHeader{
      sample_lpv(),
      GnAddress{GnAddress::StationType::kRoadSideUnit, MacAddress{0x1234ULL}}, 42};
  return p;
}

/// One sample per wire header type — the parameterized suites below must
/// stay exhaustive so the arithmetic `wire_size`/`signed_portion_size` can
/// never drift from the real encoder for any packet kind.
constexpr int kPacketKindCount = 9;

Packet sample_kind(int kind) {
  switch (kind) {
    case 0: return sample_beacon();
    case 1: return sample_gbc();
    case 2: return sample_guc();
    case 3: return sample_gac();
    case 4: return sample_tsb();
    case 5: return sample_shb();
    case 6: return sample_ls_request();
    case 7: return sample_ls_reply();
    default: return sample_ack();
  }
}

class CodecRoundTrip : public ::testing::TestWithParam<int> {
 protected:
  Packet make() const { return sample_kind(GetParam()); }
};

TEST_P(CodecRoundTrip, EncodeDecodeIsIdentity) {
  const Packet p = make();
  const auto decoded = Codec::decode(Codec::encode(p));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, p);
}

TEST_P(CodecRoundTrip, WireSizeMatchesEncoding) {
  // Pins the arithmetic size against the real encoder, including at payload
  // sizes other than the sample's (empty and large) — the hot path trusts
  // wire_size() for airtime without ever serializing.
  Packet p = make();
  EXPECT_EQ(Codec::wire_size(p), Codec::encode(p).size());
  p.payload.clear();
  EXPECT_EQ(Codec::wire_size(p), Codec::encode(p).size());
  p.payload.assign(1021, 0x5C);
  EXPECT_EQ(Codec::wire_size(p), Codec::encode(p).size());
}

TEST_P(CodecRoundTrip, SignedPortionSizeMatchesEncoding) {
  Packet p = make();
  EXPECT_EQ(Codec::signed_portion_size(p), Codec::encode_signed_portion(p).size());
  p.payload.assign(509, 0x11);
  EXPECT_EQ(Codec::signed_portion_size(p), Codec::encode_signed_portion(p).size());
}

TEST_P(CodecRoundTrip, TruncatedWireNeverDecodes) {
  const Packet p = make();
  Bytes wire = Codec::encode(p);
  // Every strict prefix must fail to decode (no partial packets).
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const Bytes prefix(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_EQ(Codec::decode(prefix), std::nullopt) << "prefix length " << len;
  }
}

TEST_P(CodecRoundTrip, TrailingGarbageRejected) {
  Bytes wire = Codec::encode(make());
  wire.push_back(0x00);
  EXPECT_EQ(Codec::decode(wire), std::nullopt);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, CodecRoundTrip,
                         ::testing::Range(0, kPacketKindCount));

TEST(Codec, SignedPortionExcludesBasicHeader) {
  Packet p = sample_gbc();
  const Bytes before = Codec::encode_signed_portion(p);
  // Mutating any basic-header field must not change the signed bytes —
  // this is the integrity gap the paper's attack #2 exploits.
  p.basic.remaining_hop_limit = 1;
  p.basic.lifetime = sim::Duration::seconds(1.0);
  p.basic.version = 2;
  EXPECT_EQ(Codec::encode_signed_portion(p), before);
}

TEST(Codec, SignedPortionCoversCommonHeader) {
  Packet p = sample_gbc();
  const Bytes before = Codec::encode_signed_portion(p);
  p.common.traffic_class = 3;
  EXPECT_NE(Codec::encode_signed_portion(p), before);
}

TEST(Codec, SignedPortionCoversPayload) {
  Packet p = sample_gbc();
  const Bytes before = Codec::encode_signed_portion(p);
  p.payload[0] ^= 0xFF;
  EXPECT_NE(Codec::encode_signed_portion(p), before);
}

TEST(Codec, SignedPortionCoversSourcePv) {
  Packet p = sample_gbc();
  const Bytes before = Codec::encode_signed_portion(p);
  p.gbc()->source_pv.position.x += 1.0;
  EXPECT_NE(Codec::encode_signed_portion(p), before);
}

TEST(Codec, SignedPortionCoversArea) {
  Packet p = sample_gbc();
  const Bytes before = Codec::encode_signed_portion(p);
  p.gbc()->area = geo::GeoArea::circle({0.0, 0.0}, 10.0);
  EXPECT_NE(Codec::encode_signed_portion(p), before);
}

TEST(Codec, DecodeRejectsUnknownHeaderType) {
  Bytes wire = Codec::encode(sample_beacon());
  // The header type byte is the first byte of the length-prefixed body:
  // basic header is 1 (version) + 1 (rhl) + 8 (lifetime) + 4 (length).
  wire[14] = 0x7F;
  EXPECT_EQ(Codec::decode(wire), std::nullopt);
}

TEST(Codec, DecodeRejectsNonPositiveAreaExtent) {
  Bytes wire = Codec::encode(sample_gbc());
  // Wire layout: basic header (10B) + body length (4B) + type/tclass/mhl
  // (3B) + sn (2B) + LPV (48B) + area shape (1B) + center (16B) + `a` (8B).
  constexpr std::size_t kAreaAOffset = 10 + 4 + 3 + 2 + 48 + 1 + 16;
  for (std::size_t i = 0; i < 8; ++i) wire[kAreaAOffset + i] = 0;  // a = +0.0
  EXPECT_EQ(Codec::decode(wire), std::nullopt);
}

TEST(Codec, DecodeRejectsNonFinitePositionVectorFields) {
  // Each LPV double (x, y, speed, heading) poisoned with NaN or inf must
  // fail decode so it can never reach a LocationTable.
  for (const double bad : {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()}) {
    for (int field = 0; field < 4; ++field) {
      Packet p = sample_beacon();
      LongPositionVector pv = sample_lpv();
      switch (field) {
        case 0: pv.position.x = bad; break;
        case 1: pv.position.y = bad; break;
        case 2: pv.speed_mps = bad; break;
        default: pv.heading_rad = bad; break;
      }
      p.extended = BeaconHeader{pv};
      EXPECT_EQ(Codec::decode(Codec::encode(p)), std::nullopt)
          << "field " << field << " value " << bad;
    }
  }
}

TEST(Codec, DecodeRejectsNonFiniteAreaFields) {
  Packet p = sample_gbc();
  GbcHeader gbc = *p.gbc();
  gbc.area = geo::GeoArea::circle({std::numeric_limits<double>::quiet_NaN(), 0.0}, 30.0);
  p.extended = gbc;
  EXPECT_EQ(Codec::decode(Codec::encode(p)), std::nullopt);
}

TEST(Codec, DecodeRejectsNaNAreaExtent) {
  // NaN compares false with everything, so a bare `a <= 0` check would have
  // accepted a NaN radius; the finiteness check must catch it.
  Bytes wire = Codec::encode(sample_gbc());
  constexpr std::size_t kAreaAOffset = 10 + 4 + 3 + 2 + 48 + 1 + 16;
  const auto nan_bits = std::bit_cast<std::array<std::uint8_t, 8>>(
      std::numeric_limits<double>::quiet_NaN());
  for (std::size_t i = 0; i < 8; ++i) wire[kAreaAOffset + i] = nan_bits[i];
  EXPECT_EQ(Codec::decode(wire), std::nullopt);
}

TEST(Codec, DecodeRejectsOversizedPayload) {
  Packet p = sample_gbc();
  p.payload = Bytes(kMaxPayloadBytes + 1, 0xAA);
  EXPECT_EQ(Codec::decode(Codec::encode(p)), std::nullopt);
  p.payload = Bytes(kMaxPayloadBytes, 0xAA);
  const auto decoded = Codec::decode(Codec::encode(p));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload.size(), kMaxPayloadBytes);
}

TEST(Packet, DuplicateKeyPresence) {
  EXPECT_FALSE(sample_beacon().duplicate_key().has_value());
  const auto gbc_key = sample_gbc().duplicate_key();
  ASSERT_TRUE(gbc_key.has_value());
  EXPECT_EQ(gbc_key->second, 42);
  const auto guc_key = sample_guc().duplicate_key();
  ASSERT_TRUE(guc_key.has_value());
  EXPECT_EQ(guc_key->second, 7);
}

TEST(Packet, SourcePvUniformAccessor) {
  EXPECT_EQ(sample_beacon().source_pv().address, sample_lpv().address);
  EXPECT_EQ(sample_gbc().source_pv().position, sample_lpv().position);
  EXPECT_EQ(sample_guc().source_pv().speed_mps, sample_lpv().speed_mps);
}

TEST(Packet, ToStringMentionsKindAndRhl) {
  const std::string s = to_string(sample_gbc());
  EXPECT_NE(s.find("gbc"), std::string::npos);
  EXPECT_NE(s.find("rhl=10"), std::string::npos);
}

}  // namespace
}  // namespace vgr::net

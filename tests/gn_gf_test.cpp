#include <gtest/gtest.h>

#include <cmath>

#include "vgr/gn/greedy_forwarder.hpp"

namespace vgr::gn {
namespace {

using namespace vgr::sim::literals;

net::GnAddress addr(std::uint64_t mac) {
  return net::GnAddress{net::GnAddress::StationType::kPassengerCar, net::MacAddress{mac}};
}

net::LongPositionVector pv(std::uint64_t mac, double x, double speed = 0.0,
                           double heading = 0.0, sim::TimePoint ts = {}) {
  net::LongPositionVector v;
  v.address = addr(mac);
  v.timestamp = ts;
  v.position = {x, 0.0};
  v.speed_mps = speed;
  v.heading_rad = heading;
  return v;
}

class GfTest : public ::testing::Test {
 protected:
  GfTest() : table_{20_s} {}

  void neighbor(std::uint64_t mac, double x, double speed = 0.0, double heading = 0.0) {
    table_.update(pv(mac, x, speed, heading, now_), now_, /*direct=*/true);
  }
  void indirect(std::uint64_t mac, double x) {
    table_.update(pv(mac, x, 0.0, 0.0, now_), now_, /*direct=*/false);
  }

  std::optional<GfSelection> select(double self_x, double dest_x, GfPolicy policy = {}) {
    return select_next_hop(table_, addr(0xFF), {self_x, 0.0}, {dest_x, 0.0}, now_, policy);
  }

  LocationTable table_;
  sim::TimePoint now_{sim::TimePoint::at(10_s)};
};

TEST_F(GfTest, PicksNeighborClosestToDestination) {
  neighbor(1, 100.0);
  neighbor(2, 300.0);
  neighbor(3, 200.0);
  const auto sel = select(0.0, 1000.0);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->next_hop.address, addr(2));
  EXPECT_DOUBLE_EQ(sel->distance_to_destination_m, 700.0);
}

TEST_F(GfTest, RequiresProgressOverSelf) {
  neighbor(1, 100.0);  // behind us w.r.t. the destination
  EXPECT_FALSE(select(200.0, 1000.0).has_value());
}

TEST_F(GfTest, EqualDistanceIsNotProgress) {
  neighbor(1, 200.0);
  // Neighbor is exactly as far from the destination as we are.
  EXPECT_FALSE(select(200.0, 1000.0).has_value());
}

TEST_F(GfTest, EmptyTableYieldsNothing) {
  EXPECT_FALSE(select(0.0, 1000.0).has_value());
}

TEST_F(GfTest, IgnoresNonNeighborEntries) {
  indirect(1, 500.0);  // known only via a forwarded packet's source PV
  EXPECT_FALSE(select(0.0, 1000.0).has_value());
}

TEST_F(GfTest, IgnoresSelfEntry) {
  table_.update(pv(0xFF, 500.0, 0.0, 0.0, now_), now_, true);
  EXPECT_FALSE(select(0.0, 1000.0).has_value());
}

TEST_F(GfTest, IgnoresExpiredEntries) {
  neighbor(1, 500.0);
  now_ = now_ + 25_s;  // past the 20 s TTL
  EXPECT_FALSE(select(0.0, 1000.0).has_value());
}

TEST_F(GfTest, BackwardDestinationWorks) {
  neighbor(1, 900.0);
  neighbor(2, 400.0);
  const auto sel = select(800.0, 0.0);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->next_hop.address, addr(2));
}

// --- Plausibility check (mitigation #1) ----------------------------------

TEST_F(GfTest, PlausibilityRejectsFarNeighbor) {
  // A replayed beacon placed a node 800 m away into our table; without the
  // check GF picks it, with the check it is skipped.
  neighbor(1, 800.0);
  neighbor(2, 300.0);
  EXPECT_EQ(select(0.0, 1000.0)->next_hop.address, addr(1));

  GfPolicy policy;
  policy.plausibility_check = true;
  policy.threshold_m = 486.0;
  const auto sel = select(0.0, 1000.0, policy);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->next_hop.address, addr(2));
}

TEST_F(GfTest, PlausibilityAcceptsExactThreshold) {
  neighbor(1, 486.0);
  GfPolicy policy;
  policy.plausibility_check = true;
  policy.threshold_m = 486.0;
  EXPECT_TRUE(select(0.0, 1000.0, policy).has_value());
}

TEST_F(GfTest, PlausibilityWithNoSurvivorYieldsNothing) {
  neighbor(1, 800.0);
  GfPolicy policy;
  policy.plausibility_check = true;
  policy.threshold_m = 486.0;
  EXPECT_FALSE(select(0.0, 1000.0, policy).has_value());
}

TEST_F(GfTest, ExtrapolationFiltersStaleFastMover) {
  // Beacon said x=400 (in range), but it was 5 s ago and the vehicle drives
  // east at 30 m/s: dead-reckoned position is 550 m away -> filtered.
  table_.update(pv(1, 400.0, 30.0, 0.0, now_ - 5_s), now_ - 5_s, true);
  GfPolicy policy;
  policy.plausibility_check = true;
  policy.threshold_m = 486.0;
  policy.extrapolate = true;
  EXPECT_FALSE(select(0.0, 1000.0, policy).has_value());

  policy.extrapolate = false;  // raw beacon position passes
  EXPECT_TRUE(select(0.0, 1000.0, policy).has_value());
}

TEST_F(GfTest, ExtrapolationKeepsApproachingVehicle) {
  // Vehicle advertised at 600 m (out of range) but drives toward us; the
  // extrapolated position is back in range.
  table_.update(pv(1, 600.0, 30.0, M_PI, now_ - 5_s), now_ - 5_s, true);
  GfPolicy policy;
  policy.plausibility_check = true;
  policy.threshold_m = 486.0;
  policy.extrapolate = true;
  const auto sel = select(0.0, 1000.0, policy);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->next_hop.address, addr(1));
}

// Property sweep: the selected hop always strictly beats the forwarder's
// own distance, for any destination.
class GfProgressSweep : public ::testing::TestWithParam<double> {};

TEST_P(GfProgressSweep, SelectionAlwaysMakesProgress) {
  const double dest_x = GetParam();
  LocationTable table{20_s};
  const auto now = sim::TimePoint::at(1_s);
  for (std::uint64_t m = 1; m <= 20; ++m) {
    table.update(pv(m, static_cast<double>(m) * 97.0 - 400.0, 0, 0, now), now, true);
  }
  const geo::Position self{300.0, 0.0};
  const auto sel = select_next_hop(table, addr(0xFF), self, {dest_x, 0.0}, now, {});
  if (sel) {
    EXPECT_LT(sel->distance_to_destination_m, geo::distance(self, {dest_x, 0.0}));
  }
}

INSTANTIATE_TEST_SUITE_P(Destinations, GfProgressSweep,
                         ::testing::Values(-500.0, 0.0, 400.0, 1200.0, 4020.0));

}  // namespace
}  // namespace vgr::gn

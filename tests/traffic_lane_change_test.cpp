// Tests for MOBIL-style lane changing and the histogram/CSV utilities that
// support the experiment harness.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "vgr/scenario/csv.hpp"
#include "vgr/sim/histogram.hpp"
#include "vgr/traffic/traffic_sim.hpp"

namespace vgr {
namespace {

// --- Lane changing -----------------------------------------------------------

traffic::TrafficSimulation::Config lc_config() {
  traffic::TrafficSimulation::Config cfg;
  cfg.prefill_spacing_m = 0.0;
  cfg.lane_changing = true;
  return cfg;
}

TEST(LaneChange, OvertakesSlowLeaderViaFreeLane) {
  traffic::TrafficSimulation sim{traffic::RoadSegment{5000.0, 2, false}, lc_config()};
  sim.set_entry_enabled(traffic::Direction::kEastbound, false);
  traffic::Vehicle& slow = sim.add_vehicle(traffic::Direction::kEastbound, 0, 300.0, 5.0);
  slow.set_forced_acceleration(0.0);  // crawls at 5 m/s forever
  traffic::Vehicle& fast = sim.add_vehicle(traffic::Direction::kEastbound, 0, 100.0, 30.0);

  for (int i = 0; i < 600; ++i) sim.tick();  // 60 s
  EXPECT_EQ(fast.lane(), 1);                 // moved over...
  EXPECT_GT(fast.x(), slow.x());             // ...and passed
  EXPECT_GE(sim.lane_changes(), 1u);
  EXPECT_EQ(sim.collisions(), 0u);
}

TEST(LaneChange, DisabledByDefault) {
  traffic::TrafficSimulation::Config cfg;
  cfg.prefill_spacing_m = 0.0;
  traffic::TrafficSimulation sim{traffic::RoadSegment{5000.0, 2, false}, cfg};
  sim.set_entry_enabled(traffic::Direction::kEastbound, false);
  traffic::Vehicle& slow = sim.add_vehicle(traffic::Direction::kEastbound, 0, 300.0, 5.0);
  slow.set_forced_acceleration(0.0);
  traffic::Vehicle& fast = sim.add_vehicle(traffic::Direction::kEastbound, 0, 100.0, 30.0);
  for (int i = 0; i < 600; ++i) sim.tick();
  EXPECT_EQ(fast.lane(), 0);
  EXPECT_LT(fast.x(), slow.x());  // stuck behind
  EXPECT_EQ(sim.lane_changes(), 0u);
}

TEST(LaneChange, RefusesUnsafeGapToNewFollower) {
  traffic::TrafficSimulation sim{traffic::RoadSegment{5000.0, 2, false}, lc_config()};
  sim.set_entry_enabled(traffic::Direction::kEastbound, false);
  // Lane 0: crawler ahead of the candidate. Lane 1: a fast vehicle right
  // next to the candidate — cutting in would force it into harsh braking.
  traffic::Vehicle& slow = sim.add_vehicle(traffic::Direction::kEastbound, 0, 140.0, 5.0);
  slow.set_forced_acceleration(0.0);
  traffic::Vehicle& candidate = sim.add_vehicle(traffic::Direction::kEastbound, 0, 120.0, 6.0);
  traffic::Vehicle& rear = sim.add_vehicle(traffic::Direction::kEastbound, 1, 110.0, 30.0);
  rear.set_forced_acceleration(0.0);

  sim.tick();  // one lane-change evaluation at t=0
  EXPECT_EQ(candidate.lane(), 0);
}

TEST(LaneChange, NoIncentiveMeansNoChange) {
  traffic::TrafficSimulation sim{traffic::RoadSegment{5000.0, 2, false}, lc_config()};
  sim.set_entry_enabled(traffic::Direction::kEastbound, false);
  // Free road in the current lane: nothing to gain by moving over.
  traffic::Vehicle& v = sim.add_vehicle(traffic::Direction::kEastbound, 0, 100.0, 30.0);
  for (int i = 0; i < 300; ++i) sim.tick();
  EXPECT_EQ(v.lane(), 0);
  EXPECT_EQ(sim.lane_changes(), 0u);
}

TEST(LaneChange, StaysCollisionFreeInDenseTraffic) {
  traffic::TrafficSimulation::Config cfg = lc_config();
  cfg.prefill_spacing_m = 40.0;
  traffic::TrafficSimulation sim{traffic::RoadSegment{3000.0, 2, true}, cfg};
  sim.prefill();
  sim.set_hazard(traffic::Direction::kEastbound, 2500.0);
  for (int i = 0; i < 1000; ++i) sim.tick();  // 100 s with a queue forming
  EXPECT_EQ(sim.collisions(), 0u);
}

// --- Histogram -----------------------------------------------------------------

TEST(Histogram, BasicStatistics) {
  sim::Histogram h;
  for (const double v : {5.0, 1.0, 3.0, 2.0, 4.0}) h.add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.median(), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
}

TEST(Histogram, QuantileInterpolates) {
  sim::Histogram h;
  h.add(0.0);
  h.add(10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
}

TEST(Histogram, QuantileClampsRange) {
  sim::Histogram h;
  h.add(7.0);
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), 7.0);
  EXPECT_DOUBLE_EQ(h.quantile(2.0), 7.0);
}

TEST(Histogram, MergeAndClear) {
  sim::Histogram a, b;
  a.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  a.clear();
  EXPECT_TRUE(a.empty());
}

TEST(Histogram, AddAfterQuantileStillCorrect) {
  sim::Histogram h;
  h.add(2.0);
  h.add(1.0);
  EXPECT_DOUBLE_EQ(h.median(), 1.5);
  h.add(10.0);  // must re-sort lazily
  EXPECT_DOUBLE_EQ(h.median(), 2.0);
}

// --- CSV writer ------------------------------------------------------------------

TEST(Csv, WritesHeaderAndRows) {
  const std::string dir = ::testing::TempDir();
  {
    scenario::CsvWriter w{dir, "vgr_csv_test"};
    ASSERT_TRUE(w.ok());
    w.header({"t", "value"});
    w.row({1.0, 0.5});
    w.row({2.0, 0.25});
  }
  std::FILE* f = std::fopen((dir + "/vgr_csv_test.csv").c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256];
  std::string content;
  while (std::fgets(buf, sizeof buf, f) != nullptr) content += buf;
  std::fclose(f);
  EXPECT_NE(content.find("t,value"), std::string::npos);
  EXPECT_NE(content.find("1.000000,0.500000"), std::string::npos);
}

TEST(Csv, EmptyDirIsNoop) {
  scenario::CsvWriter w{"", "nothing"};
  EXPECT_FALSE(w.ok());
  w.header({"a"});  // must not crash
  w.row({1.0});
}

TEST(Csv, WriteTimelinesDumpsAlignedSeries) {
  using namespace sim::literals;
  sim::BinnedRate a{5_s, 10_s}, b{5_s, 10_s};
  a.record(sim::TimePoint::at(1_s), 1.0, 1.0);
  b.record(sim::TimePoint::at(1_s), 0.0, 1.0);
  const std::string dir = ::testing::TempDir();
  scenario::CsvWriter::write_timelines(dir, "vgr_csv_series", {"af", "atk"}, {&a, &b});
  std::FILE* f = std::fopen((dir + "/vgr_csv_series.csv").c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
}

}  // namespace
}  // namespace vgr

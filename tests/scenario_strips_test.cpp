// Determinism of intra-run strip parallelism at the scenario level: with a
// fixed strip count, the full fig7/fig9-shaped outputs must be
// byte-identical for every worker-thread count — the strip count is a model
// parameter, the thread count a pure performance knob. Also exercises the
// boundary-migration path: vehicles crossing strip edges mid-run with SCF
// buffers and pending CBF timers in flight.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "vgr/scenario/highway.hpp"
#include "vgr/sim/strip_executor.hpp"

namespace vgr::scenario {
namespace {

HighwayConfig quick_config(AttackKind attack, int strips) {
  HighwayConfig cfg;
  cfg.attack = attack;
  cfg.sim_duration = sim::Duration::seconds(15.0);
  cfg.prefill_spacing_m = 90.0;
  cfg.entry_spacing_m = 90.0;
  cfg.strips = strips;
  return cfg;
}

/// Every field of every packet record, plus the run-wide counters: if any
/// bit of the fig7-shaped output depends on the worker count, this differs.
std::string fingerprint(const InterAreaResult& r, const HighwayScenario& scenario) {
  std::ostringstream os;
  for (const auto& p : r.packets) {
    os << p.sent_at.count() << ',' << p.source_x << ','
       << (p.target == traffic::Direction::kEastbound ? 'E' : 'W') << ',' << p.received << ','
       << (p.received ? p.received_at.count() : 0) << '\n';
  }
  os << "beacons_replayed=" << r.beacons_replayed << '\n';
  os << "frames_sent=" << scenario.medium().frames_sent() << '\n';
  os << "frames_delivered=" << scenario.medium().frames_delivered() << '\n';
  os << "stations=" << scenario.stations_created() << '\n';
  return os.str();
}

/// Fig9 analogue: every flood record plus the medium counters.
std::string fingerprint(const IntraAreaResult& r, const HighwayScenario& scenario) {
  std::ostringstream os;
  for (const auto& f : r.floods) {
    os << f.sent_at.count() << ',' << f.source_x << ',' << f.source_fully_covered << ','
       << f.reached << '/' << f.total << ',' << f.last_reach_at.count() << '\n';
  }
  os << "packets_replayed=" << r.packets_replayed << '\n';
  os << "frames_sent=" << scenario.medium().frames_sent() << '\n';
  os << "frames_delivered=" << scenario.medium().frames_delivered() << '\n';
  return os.str();
}

TEST(ScenarioStrips, InterAreaIdenticalAcrossWorkerCounts) {
  std::string reference;
  for (const std::size_t threads : {1UL, 2UL, 4UL, 8UL}) {
    HighwayConfig cfg = quick_config(AttackKind::kInterArea, /*strips=*/4);
    cfg.strip_threads = threads;
    HighwayScenario scenario{cfg};
    const InterAreaResult result = scenario.run_inter_area();
    ASSERT_NE(scenario.plane(), nullptr);
    // The lookahead bound held: no cross-strip post ever had to be clamped.
    EXPECT_EQ(scenario.plane()->late_posts(), 0u) << threads << " threads";
    const std::string fp = fingerprint(result, scenario);
    if (reference.empty()) {
      reference = fp;
      // The run is not vacuous: packets flowed and the attacker bit.
      EXPECT_GT(result.packets.size(), 0u);
      EXPECT_GT(result.overall_reception(), 0.0);
      EXPECT_GT(result.beacons_replayed, 0u);
    } else {
      EXPECT_EQ(fp, reference) << "diverged at " << threads << " threads";
    }
  }
}

TEST(ScenarioStrips, IntraAreaIdenticalAcrossWorkerCounts) {
  std::string reference;
  for (const std::size_t threads : {1UL, 4UL}) {
    HighwayConfig cfg = quick_config(AttackKind::kIntraArea, /*strips=*/4);
    cfg.strip_threads = threads;
    HighwayScenario scenario{cfg};
    const IntraAreaResult result = scenario.run_intra_area();
    ASSERT_NE(scenario.plane(), nullptr);
    EXPECT_EQ(scenario.plane()->late_posts(), 0u) << threads << " threads";
    const std::string fp = fingerprint(result, scenario);
    if (reference.empty()) {
      reference = fp;
      EXPECT_GT(result.floods.size(), 0u);
      EXPECT_GT(result.overall_reception(), 0.0);
      EXPECT_GT(result.packets_replayed, 0u);
    } else {
      EXPECT_EQ(fp, reference) << "diverged at " << threads << " threads";
    }
  }
}

TEST(ScenarioStrips, StripCountIsAModelParameterNotAThreadKnob) {
  // Two strips at one thread vs eight threads: the executor may only use
  // min(threads, strips) workers and the output may not move at all.
  std::string reference;
  for (const std::size_t threads : {1UL, 8UL}) {
    HighwayConfig cfg = quick_config(AttackKind::kNone, /*strips=*/2);
    cfg.strip_threads = threads;
    HighwayScenario scenario{cfg};
    const InterAreaResult result = scenario.run_inter_area();
    const std::string fp = fingerprint(result, scenario);
    if (reference.empty()) {
      reference = fp;
    } else {
      EXPECT_EQ(fp, reference);
    }
  }
}

TEST(ScenarioStrips, BoundaryMigrationWithScfAndCbfInFlight) {
  // Eight 500 m strips over 20 s: highway vehicles (~30 m/s) cross strip
  // edges mid-run while CBF contention timers tick and SCF buffers hold
  // undeliverable packets. The migrations must actually happen, and the
  // output must still be byte-identical across worker counts.
  std::string reference;
  std::uint64_t reference_rehomes = 0;
  for (const std::size_t threads : {1UL, 4UL}) {
    HighwayConfig cfg = quick_config(AttackKind::kNone, /*strips=*/8);
    cfg.sim_duration = sim::Duration::seconds(20.0);
    cfg.recovery.scf = true;
    cfg.recovery.retx = true;
    cfg.strip_threads = threads;
    HighwayScenario scenario{cfg};
    const IntraAreaResult result = scenario.run_intra_area();
    ASSERT_NE(scenario.plane(), nullptr);
    EXPECT_EQ(scenario.plane()->late_posts(), 0u);
    // Vehicles really crossed boundaries with live routers aboard.
    EXPECT_GT(scenario.plane()->rehomes_applied(), 0u);
    const std::string fp = fingerprint(result, scenario);
    if (reference.empty()) {
      reference = fp;
      reference_rehomes = scenario.plane()->rehomes_applied();
      EXPECT_GT(result.overall_reception(), 0.0);
    } else {
      EXPECT_EQ(fp, reference) << "diverged at " << threads << " threads";
      // Migration schedule is part of the model, not the execution.
      EXPECT_EQ(scenario.plane()->rehomes_applied(), reference_rehomes);
    }
  }
}

TEST(ScenarioStrips, ChurnAndRebootStayOnTheSerialPath) {
  // Crash/reboot churn mutates shared structure (router teardown, cohort
  // cancellation across regions, handle reuse) and must stay deterministic
  // under strip workers because it runs in global events.
  std::string reference;
  for (const std::size_t threads : {1UL, 4UL}) {
    HighwayConfig cfg = quick_config(AttackKind::kNone, /*strips=*/4);
    cfg.churn.crash_rate_hz = 0.5;
    cfg.churn.downtime_s = 1.0;
    cfg.strip_threads = threads;
    HighwayScenario scenario{cfg};
    const InterAreaResult result = scenario.run_inter_area();
    const std::string fp = fingerprint(result, scenario) + "crashes=" +
                           std::to_string(result.churn_crashes) + ",reboots=" +
                           std::to_string(result.churn_reboots);
    if (reference.empty()) {
      reference = fp;
      EXPECT_GT(result.churn_crashes, 0u);
    } else {
      EXPECT_EQ(fp, reference) << "diverged at " << threads << " threads";
    }
  }
}

TEST(ScenarioStrips, StripsOffIsTheClassicSerialLoop) {
  // strips == 0 must not even allocate a plane: the run uses the standalone
  // queue and stays byte-identical to every pre-strip build (the full
  // pre-existing scenario suite pins those outputs).
  HighwayConfig cfg = quick_config(AttackKind::kInterArea, /*strips=*/0);
  HighwayScenario scenario{cfg};
  EXPECT_EQ(scenario.plane(), nullptr);
  const InterAreaResult result = scenario.run_inter_area();
  EXPECT_GT(result.packets.size(), 0u);
}

}  // namespace
}  // namespace vgr::scenario

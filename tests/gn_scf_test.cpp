// Recovery-layer tests (docs/robustness.md): the store-carry-forward
// buffer, the neighbour soft-state monitor, and the router-level wiring —
// flush-on-new-neighbour delivery and the bounded retransmission state
// machine, including the duplicate-detector fix that keeps a same-hop
// retransmission from being black-holed.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "vgr/gn/neighbor_monitor.hpp"
#include "vgr/gn/router.hpp"
#include "vgr/gn/scf_buffer.hpp"
#include "vgr/security/authority.hpp"

namespace vgr::gn {
namespace {

using namespace vgr::sim::literals;

// --- ScfBuffer unit -------------------------------------------------------

security::SecuredMessagePtr msg_with_payload(std::size_t payload_bytes) {
  net::Packet p;
  p.common.type = net::CommonHeader::HeaderType::kGeoUnicast;
  p.payload.assign(payload_bytes, 0x5A);
  return security::share(security::SecuredMessage::from_parts(std::move(p), {}, 0));
}

TEST(ScfBuffer, SweepOffersEntriesOldestFirst) {
  ScfBuffer buf;
  for (std::size_t i = 1; i <= 3; ++i) {
    buf.push(msg_with_payload(i), {static_cast<double>(i), 0.0}, sim::TimePoint::at(10_s));
  }
  std::vector<std::size_t> order;
  buf.sweep(sim::TimePoint::origin(), [&](const ScfBuffer::Entry& e) {
    order.push_back(e.msg->packet().payload.size());
    return true;
  });
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 3u);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.stats().flushed, 3u);
  EXPECT_EQ(buf.bytes(), 0u);
}

TEST(ScfBuffer, PacketCapHeadDropsOldest) {
  ScfBuffer buf{ScfConfig{/*max_packets=*/2, /*max_bytes=*/0}};
  for (std::size_t i = 1; i <= 3; ++i) {
    buf.push(msg_with_payload(i), {0.0, 0.0}, sim::TimePoint::at(10_s));
  }
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.stats().head_drops, 1u);
  std::vector<std::size_t> kept;
  buf.sweep(sim::TimePoint::origin(), [&](const ScfBuffer::Entry& e) {
    kept.push_back(e.msg->packet().payload.size());
    return true;
  });
  // The oldest entry (payload 1) was the one evicted.
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0], 2u);
  EXPECT_EQ(kept[1], 3u);
}

TEST(ScfBuffer, ByteCapEvictsUntilNewEntryFits) {
  // Each entry costs payload + fixed overhead; a 300-byte cap holds only
  // one of these ~164-byte entries at a time.
  ScfBuffer buf{ScfConfig{/*max_packets=*/0, /*max_bytes=*/300}};
  buf.push(msg_with_payload(100), {0.0, 0.0}, sim::TimePoint::at(10_s));
  buf.push(msg_with_payload(100), {0.0, 0.0}, sim::TimePoint::at(10_s));
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf.stats().head_drops, 1u);
  EXPECT_LE(buf.bytes(), 300u);
}

TEST(ScfBuffer, JustPushedEntrySurvivesEvenWhenOverCap) {
  // A packet larger than the whole byte budget is still queued (dropping it
  // on push would make the buffer silently lossy for big payloads); only
  // *older* entries are ever head-dropped.
  ScfBuffer buf{ScfConfig{/*max_packets=*/1, /*max_bytes=*/8}};
  buf.push(msg_with_payload(500), {0.0, 0.0}, sim::TimePoint::at(10_s));
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf.stats().head_drops, 0u);
}

TEST(ScfBuffer, SweepExpiresLapsedEntriesWithoutOfferingThem) {
  ScfBuffer buf;
  buf.push(msg_with_payload(1), {0.0, 0.0}, sim::TimePoint::at(1_s));
  buf.push(msg_with_payload(2), {0.0, 0.0}, sim::TimePoint::at(10_s));
  int offered = 0;
  buf.sweep(sim::TimePoint::at(5_s), [&](const ScfBuffer::Entry&) {
    ++offered;
    return false;
  });
  EXPECT_EQ(offered, 1);  // only the live entry was offered
  EXPECT_EQ(buf.stats().expired, 1u);
  EXPECT_EQ(buf.size(), 1u);  // unsendable live entry is kept
  EXPECT_EQ(buf.stats().flushed, 0u);
}

TEST(ScfBuffer, ClearDropsEntriesButKeepsStats) {
  ScfBuffer buf;
  buf.push(msg_with_payload(4), {0.0, 0.0}, sim::TimePoint::at(10_s));
  buf.clear();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.bytes(), 0u);
  EXPECT_EQ(buf.stats().inserted, 1u);
}

// --- NeighborMonitor unit -------------------------------------------------

net::GnAddress nbr_addr(std::uint64_t mac) {
  return net::GnAddress{net::GnAddress::StationType::kPassengerCar, net::MacAddress{mac}};
}

NeighborMonitorConfig fast_monitor() {
  NeighborMonitorConfig cfg;
  cfg.miss_period = 1_s;
  cfg.quarantine_after = 2;
  cfg.evict_after = 4;
  return cfg;
}

TEST(NeighborMonitor, FirstSightIsARevival) {
  NeighborMonitor m{fast_monitor()};
  const auto t0 = sim::TimePoint::origin();
  EXPECT_TRUE(m.heard(nbr_addr(1), t0));
  EXPECT_FALSE(m.heard(nbr_addr(1), t0 + 100_ms));
  EXPECT_EQ(m.tracked(), 1u);
}

TEST(NeighborMonitor, QuarantinesAfterMissedPeriods) {
  NeighborMonitor m{fast_monitor()};
  const auto t0 = sim::TimePoint::origin();
  m.heard(nbr_addr(1), t0);
  EXPECT_TRUE(m.alive(nbr_addr(1), t0 + 1900_ms));   // one full miss: still alive
  EXPECT_FALSE(m.alive(nbr_addr(1), t0 + 2_s));      // two misses: quarantined
  EXPECT_EQ(m.missed(nbr_addr(1), t0 + 2_s), 2);
  EXPECT_EQ(m.quarantined(t0 + 2_s), 1u);
}

TEST(NeighborMonitor, HearingAQuarantinedNeighborRevivesIt) {
  NeighborMonitor m{fast_monitor()};
  const auto t0 = sim::TimePoint::origin();
  m.heard(nbr_addr(1), t0);
  ASSERT_FALSE(m.alive(nbr_addr(1), t0 + 3_s));
  EXPECT_TRUE(m.heard(nbr_addr(1), t0 + 3_s));  // the SCF-flush edge
  EXPECT_TRUE(m.alive(nbr_addr(1), t0 + 3_s));
}

TEST(NeighborMonitor, UnknownAddressesAreAlive) {
  // Entries learned only indirectly (no beacon heard) must fall back to the
  // plain location-table TTL, i.e. the monitor never quarantines them.
  NeighborMonitor m{fast_monitor()};
  EXPECT_TRUE(m.alive(nbr_addr(9), sim::TimePoint::at(100_s)));
  EXPECT_EQ(m.missed(nbr_addr(9), sim::TimePoint::at(100_s)), 0);
}

TEST(NeighborMonitor, EvictableIsThresholdedAndSorted) {
  NeighborMonitor m{fast_monitor()};
  const auto t0 = sim::TimePoint::origin();
  m.heard(nbr_addr(7), t0);
  m.heard(nbr_addr(3), t0);
  m.heard(nbr_addr(5), t0 + 3_s);  // fresh enough to survive
  const auto evict = m.evictable(t0 + 4_s);
  ASSERT_EQ(evict.size(), 2u);
  EXPECT_EQ(evict[0], nbr_addr(3));  // sorted by address bits: deterministic
  EXPECT_EQ(evict[1], nbr_addr(7));
  m.forget(nbr_addr(3));
  m.forget(nbr_addr(7));
  EXPECT_EQ(m.tracked(), 1u);
  EXPECT_TRUE(m.evictable(t0 + 4_s).empty());
}

// --- Router-level recovery ------------------------------------------------

constexpr double kRange = 486.0;

struct Node {
  std::unique_ptr<StaticMobility> mobility;
  std::unique_ptr<Router> router;
  std::vector<Router::Delivery> deliveries;
};

class ScfRouterTest : public ::testing::Test {
 protected:
  ScfRouterTest() : medium_{events_, phy::AccessTechnology::kDsrc} {}

  Node& add_node(double x, RouterConfig cfg, double range = kRange) {
    nodes_.push_back(std::make_unique<Node>());
    Node& n = *nodes_.back();
    n.mobility = std::make_unique<StaticMobility>(geo::Position{x, 0.0});
    const net::GnAddress addr{net::GnAddress::StationType::kPassengerCar,
                              net::MacAddress{0x200 + nodes_.size()}};
    n.router = std::make_unique<Router>(events_, medium_, security::Signer{ca_.enroll(addr)},
                                        ca_.trust_store(), *n.mobility, cfg, range,
                                        rng_.fork());
    n.router->set_delivery_handler(
        [&n](const Router::Delivery& d) { n.deliveries.push_back(d); });
    return n;
  }

  static RouterConfig recovery_config() {
    RouterConfig cfg = RouterConfig::for_technology(phy::AccessTechnology::kDsrc);
    cfg.cbf_dist_max_m = kRange;
    cfg.scf_enabled = true;
    cfg.retx_enabled = true;
    cfg.nbr_monitor = true;
    return cfg;
  }

  void run_for(sim::Duration d) { events_.run_until(events_.now() + d); }

  sim::EventQueue events_;
  phy::Medium medium_;
  security::CertificateAuthority ca_;
  sim::Rng rng_{4242};
  std::vector<std::unique_ptr<Node>> nodes_;
};

TEST_F(ScfRouterTest, NewNeighborBeaconFlushesBufferedUnicast) {
  // A has no neighbours when it originates a unicast toward C: the packet
  // parks in the SCF buffer. The moment relay B's beacon arrives, the buffer
  // flushes from beacon ingest — well before the 500 ms periodic retry — and
  // the packet reaches C through B.
  Node& a = add_node(0.0, recovery_config());
  Node& b = add_node(400.0, recovery_config());
  Node& c = add_node(800.0, recovery_config());

  c.router->send_beacon_now();  // B learns C; A is out of range
  run_for(10_ms);

  a.router->send_geo_unicast(c.router->address(), {800.0, 0.0}, {0xAB},
                             /*hop_limit=*/std::nullopt, /*lifetime=*/10_s);
  run_for(10_ms);
  EXPECT_EQ(a.router->scf().size(), 1u);
  EXPECT_EQ(a.router->stats().gf_buffered, 1u);

  b.router->send_beacon_now();
  run_for(100_ms);  // < gf_retry_interval: only the flush path can deliver
  EXPECT_EQ(a.router->stats().scf_flush_triggers, 1u);
  EXPECT_EQ(a.router->scf().stats().flushed, 1u);
  ASSERT_EQ(c.deliveries.size(), 1u);
  EXPECT_EQ(c.deliveries[0].packet().payload, net::Bytes{0xAB});
}

TEST_F(ScfRouterTest, BufferedPacketExpiresWithItsLifetime) {
  Node& a = add_node(0.0, recovery_config());
  a.router->send_geo_unicast(nbr_addr(0xC0FFEE), {1000.0, 0.0}, {0x01},
                             /*hop_limit=*/std::nullopt, /*lifetime=*/1_s);
  run_for(10_ms);
  ASSERT_EQ(a.router->scf().size(), 1u);
  run_for(3_s);  // periodic retry sweeps find it expired
  EXPECT_EQ(a.router->scf().size(), 0u);
  EXPECT_EQ(a.router->scf().stats().expired, 1u);
  EXPECT_GE(a.router->stats().gf_drops, 1u);
}

TEST_F(ScfRouterTest, SilentHopIsRetransmittedThenParkedInScf) {
  // B never acknowledges (its recovery layer is off), so A retries the same
  // hop retx_max_attempts times with backoff, has no alternative neighbour,
  // and finally parks the packet in its SCF buffer instead of dropping it.
  RouterConfig a_cfg = recovery_config();
  a_cfg.retx_max_attempts = 2;
  Node& a = add_node(0.0, a_cfg);
  RouterConfig plain = RouterConfig::for_technology(phy::AccessTechnology::kDsrc);
  plain.cbf_dist_max_m = kRange;
  Node& b = add_node(400.0, plain);

  b.router->send_beacon_now();
  run_for(10_ms);

  a.router->send_geo_unicast(nbr_addr(0xDEAD), {2000.0, 0.0}, {0x7E},
                             /*hop_limit=*/std::nullopt, /*lifetime=*/30_s);
  // Stay below gf_retry_interval: the periodic SCF tick would re-offer the
  // parked packet to the same silent hop and start a second retx cycle.
  run_for(400_ms);
  EXPECT_EQ(a.router->stats().retx_attempts, 2u);
  EXPECT_EQ(a.router->stats().retx_exhausted, 1u);
  EXPECT_EQ(a.router->stats().ack_failures, 0u);  // parked, not dropped
  EXPECT_GE(a.router->scf().size(), 1u);
  (void)b;
}

TEST_F(ScfRouterTest, SameHopRetransmissionIsReAckedNotBlackholed) {
  // Regression for the retransmission black hole: hop P forwards a unicast
  // to R, R's ACK is lost, P retransmits the identical frame. R's duplicate
  // detector knows the key — pre-fix it silently swallowed the frame, P kept
  // retrying and eventually declared the hop dead. With bounded
  // retransmission on, R re-ACKs the same-hop copy (and still delivers the
  // payload exactly once).
  RouterConfig cfg = recovery_config();
  Node& r = add_node(0.0, cfg);

  const net::GnAddress peer{net::GnAddress::StationType::kPassengerCar,
                            net::MacAddress{0xF00ULL}};
  security::Signer peer_signer{ca_.enroll(peer)};
  net::LongPositionVector so;
  so.address = peer;
  so.timestamp = events_.now();
  so.position = {300.0, 0.0};
  so.speed_mps = 0.0;
  net::ShortPositionVector de;
  de.address = r.router->address();
  de.timestamp = events_.now();
  de.position = {0.0, 0.0};

  net::Packet p;
  p.basic.remaining_hop_limit = 5;
  p.basic.lifetime = 10_s;
  p.common.type = net::CommonHeader::HeaderType::kGeoUnicast;
  p.common.max_hop_limit = 5;
  p.extended = net::GucHeader{77, so, de};
  p.payload = {0x11, 0x22};

  phy::Frame frame;
  frame.src = peer.mac();
  frame.dst = r.router->address().mac();
  frame.msg = security::share(security::SecuredMessage::sign(p, peer_signer));

  r.router->ingest(frame);
  r.router->ingest(frame);  // the lost-ACK retransmission
  EXPECT_EQ(r.router->stats().acks_sent, 2u);
  EXPECT_EQ(r.router->stats().retx_duplicate_reacks, 1u);
  EXPECT_EQ(r.deliveries.size(), 1u);

  // A copy of the same key from a *different* hop is still confirmed (the
  // hop that chose us deserves its ACK — legacy behaviour) but it is an
  // ordinary duplicate: not a same-hop retransmission, nothing delivered.
  phy::Frame other = frame;
  other.src = net::MacAddress{0xBEEFULL};
  r.router->ingest(other);
  EXPECT_EQ(r.router->stats().acks_sent, 3u);
  EXPECT_EQ(r.router->stats().retx_duplicate_reacks, 1u);
  EXPECT_EQ(r.deliveries.size(), 1u);
}

TEST_F(ScfRouterTest, DisabledRecoveryKeepsLegacyGfBufferSemantics) {
  // With every recovery knob off the SCF object degrades to the legacy
  // unbounded GF retry buffer: packets are retried on the periodic tick and
  // survive far past their lifetime (the fixed 20-retry-interval budget).
  RouterConfig cfg = RouterConfig::for_technology(phy::AccessTechnology::kDsrc);
  cfg.cbf_dist_max_m = kRange;
  Node& a = add_node(0.0, cfg);
  a.router->send_geo_unicast(nbr_addr(0xDEAD), {1000.0, 0.0}, {0x01},
                             /*hop_limit=*/std::nullopt, /*lifetime=*/1_s);
  run_for(5_s);  // lifetime long gone, legacy budget (10 s) is not
  EXPECT_EQ(a.router->scf().size(), 1u);
  EXPECT_EQ(a.router->scf().stats().expired, 0u);
  EXPECT_EQ(a.router->stats().scf_flush_triggers, 0u);
  EXPECT_EQ(a.router->stats().retx_attempts, 0u);
}

}  // namespace
}  // namespace vgr::gn

#include "vgr/sim/timeline.hpp"

#include <gtest/gtest.h>

namespace vgr::sim {
namespace {

using namespace vgr::sim::literals;

TEST(BinnedRate, GeometryFromWidthAndHorizon) {
  const BinnedRate r{5_s, 200_s};
  EXPECT_EQ(r.bin_count(), 40u);
  EXPECT_EQ(r.bin_width(), 5_s);
}

TEST(BinnedRate, HorizonRoundsUp) {
  const BinnedRate r{5_s, 201_s};
  EXPECT_EQ(r.bin_count(), 41u);
}

TEST(BinnedRate, RecordLandsInCorrectBin) {
  BinnedRate r{5_s, 20_s};
  r.record(TimePoint::at(7_s), 1.0, 1.0);
  EXPECT_FALSE(r.has_data(0));
  EXPECT_TRUE(r.has_data(1));
  EXPECT_DOUBLE_EQ(r.rate(1), 1.0);
}

TEST(BinnedRate, BinBoundaryBelongsToNextBin) {
  BinnedRate r{5_s, 20_s};
  r.record(TimePoint::at(5_s), 1.0, 1.0);
  EXPECT_FALSE(r.has_data(0));
  EXPECT_TRUE(r.has_data(1));
}

TEST(BinnedRate, LateRecordsClampToLastBin) {
  BinnedRate r{5_s, 20_s};
  r.record(TimePoint::at(25_s), 1.0, 2.0);
  EXPECT_TRUE(r.has_data(3));
  EXPECT_DOUBLE_EQ(r.rate(3), 0.5);
}

TEST(BinnedRate, EmptyBinUsesFallback) {
  const BinnedRate r{5_s, 20_s};
  EXPECT_DOUBLE_EQ(r.rate(0), 0.0);
  EXPECT_DOUBLE_EQ(r.rate(0, 0.7), 0.7);
}

TEST(BinnedRate, OverallAggregatesAcrossBins) {
  BinnedRate r{5_s, 20_s};
  r.record(TimePoint::at(1_s), 1.0, 1.0);
  r.record(TimePoint::at(6_s), 0.0, 1.0);
  r.record(TimePoint::at(11_s), 1.0, 2.0);
  EXPECT_DOUBLE_EQ(r.overall(), 0.5);
}

TEST(BinnedRate, CumulativeGrowsMonotonicallyWithHits) {
  BinnedRate r{5_s, 20_s};
  r.record(TimePoint::at(1_s), 0.0, 1.0);
  r.record(TimePoint::at(6_s), 1.0, 1.0);
  EXPECT_DOUBLE_EQ(r.cumulative(0), 0.0);
  EXPECT_DOUBLE_EQ(r.cumulative(1), 0.5);
  EXPECT_DOUBLE_EQ(r.cumulative(3), 0.5);
}

TEST(BinnedRate, MergeAddsCounts) {
  BinnedRate a{5_s, 10_s};
  BinnedRate b{5_s, 10_s};
  a.record(TimePoint::at(1_s), 1.0, 1.0);
  b.record(TimePoint::at(1_s), 0.0, 1.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.rate(0), 0.5);
}

TEST(BinnedRate, AverageDropBasics) {
  BinnedRate base{5_s, 10_s};
  BinnedRate atk{5_s, 10_s};
  base.record(TimePoint::at(1_s), 10.0, 10.0);  // rate 1.0
  atk.record(TimePoint::at(1_s), 5.0, 10.0);    // rate 0.5
  base.record(TimePoint::at(6_s), 10.0, 10.0);
  atk.record(TimePoint::at(6_s), 10.0, 10.0);
  EXPECT_DOUBLE_EQ(BinnedRate::average_drop(base, atk), 0.25);  // (0.5 + 0.0) / 2
}

TEST(BinnedRate, AverageDropIgnoresEmptyBaselineBins) {
  BinnedRate base{5_s, 10_s};
  BinnedRate atk{5_s, 10_s};
  base.record(TimePoint::at(1_s), 10.0, 10.0);
  atk.record(TimePoint::at(1_s), 0.0, 10.0);
  // Bin 1 empty in baseline -> excluded.
  EXPECT_DOUBLE_EQ(BinnedRate::average_drop(base, atk), 1.0);
}

TEST(BinnedRate, AverageDropClampsNegativeDrops) {
  BinnedRate base{5_s, 5_s};
  BinnedRate atk{5_s, 5_s};
  base.record(TimePoint::at(1_s), 5.0, 10.0);
  atk.record(TimePoint::at(1_s), 10.0, 10.0);  // attacked better than baseline
  EXPECT_DOUBLE_EQ(BinnedRate::average_drop(base, atk), 0.0);
}

TEST(BinnedRate, FullInterceptionYieldsDropOne) {
  BinnedRate base{5_s, 200_s};
  BinnedRate atk{5_s, 200_s};
  for (int t = 0; t < 200; t += 5) {
    base.record(TimePoint::at(Duration::seconds(t + 1.0)), 9.0, 10.0);
    atk.record(TimePoint::at(Duration::seconds(t + 1.0)), 0.0, 10.0);
  }
  EXPECT_DOUBLE_EQ(BinnedRate::average_drop(base, atk), 1.0);
}

}  // namespace
}  // namespace vgr::sim

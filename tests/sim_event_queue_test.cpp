#include "vgr/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace vgr::sim {
namespace {

using namespace vgr::sim::literals;

TEST(EventQueue, StartsAtOrigin) {
  EventQueue q;
  EXPECT_EQ(q.now(), TimePoint::origin());
  EXPECT_EQ(q.pending_count(), 0u);
}

TEST(EventQueue, FiresInTimestampOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_in(3_s, [&] { order.push_back(3); });
  q.schedule_in(1_s, [&] { order.push_back(1); });
  q.schedule_in(2_s, [&] { order.push_back(2); });
  q.run_until(TimePoint::at(10_s));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), TimePoint::at(10_s));
}

TEST(EventQueue, EqualTimestampsAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(TimePoint::at(1_s), [&order, i] { order.push_back(i); });
  }
  q.run_until(TimePoint::at(1_s));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NowAdvancesToEventTime) {
  EventQueue q;
  TimePoint seen;
  q.schedule_in(5_s, [&] { seen = q.now(); });
  q.run_until(TimePoint::at(30_s));
  EXPECT_EQ(seen, TimePoint::at(5_s));
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive) {
  EventQueue q;
  int fired = 0;
  q.schedule_in(5_s, [&] { ++fired; });
  q.schedule_in(5_s + Duration::nanos(1), [&] { ++fired; });
  q.run_until(TimePoint::at(5_s));
  EXPECT_EQ(fired, 1);
  q.run_until(TimePoint::at(6_s));
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule_in(1_s, [&] { ++fired; });
  EXPECT_TRUE(q.pending(id));
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.pending(id));
  q.run_until(TimePoint::at(2_s));
  EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CancelTwiceIsFalse) {
  EventQueue q;
  const EventId id = q.schedule_in(1_s, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireIsFalse) {
  EventQueue q;
  const EventId id = q.schedule_in(1_s, [] {});
  q.run_until(TimePoint::at(2_s));
  EXPECT_FALSE(q.pending(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelDefaultIdIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
  EXPECT_FALSE(q.pending(EventId{}));
}

TEST(EventQueue, CallbackMaySchedule) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_in(1_s, [&] {
    order.push_back(1);
    q.schedule_in(1_s, [&] { order.push_back(2); });
  });
  q.run_until(TimePoint::at(3_s));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, CallbackMayScheduleAtCurrentInstant) {
  EventQueue q;
  int fired = 0;
  q.schedule_in(1_s, [&] { q.schedule_in(Duration::zero(), [&] { ++fired; }); });
  q.run_until(TimePoint::at(1_s));
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CallbackMayCancelLaterEvent) {
  EventQueue q;
  int fired = 0;
  EventId victim = q.schedule_in(2_s, [&] { ++fired; });
  q.schedule_in(1_s, [&] { q.cancel(victim); });
  q.run_until(TimePoint::at(3_s));
  EXPECT_EQ(fired, 0);
}

TEST(EventQueue, StepExecutesExactlyOne) {
  EventQueue q;
  int fired = 0;
  q.schedule_in(1_s, [&] { ++fired; });
  q.schedule_in(2_s, [&] { ++fired; });
  EXPECT_TRUE(q.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, PendingCountExcludesCancelled) {
  EventQueue q;
  const EventId a = q.schedule_in(1_s, [] {});
  q.schedule_in(2_s, [] {});
  EXPECT_EQ(q.pending_count(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pending_count(), 1u);
}

TEST(EventQueue, FiredCountAccumulates) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule_in(Duration::millis(i + 1), [] {});
  q.run_until(TimePoint::at(1_s));
  EXPECT_EQ(q.fired_count(), 5u);
}

TEST(EventQueue, CancelledBoundaryEventDoesNotAdmitLaterOnes) {
  // Regression: a cancelled event at the run_until boundary must not let
  // the next live event (scheduled far later) fire and jump the clock.
  EventQueue q;
  int fired = 0;
  const EventId boundary = q.schedule_in(1_s, [&] { ++fired; });
  q.schedule_in(10_s, [&] { ++fired; });
  q.cancel(boundary);
  q.run_until(TimePoint::at(1_s));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(q.now(), TimePoint::at(1_s));  // clock does not leap to 10 s
  q.run_until(TimePoint::at(20_s));
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, RescheduleChainStaysBounded) {
  // Cancel + reschedule in a fine-grained run loop (the beacon-suppression
  // pattern): time advances in the requested increments only.
  EventQueue q;
  EventId beacon = q.schedule_in(3_s, [] {});
  double prev = 0.0;
  for (int i = 0; i < 500; ++i) {
    if (i % 10 == 0) {
      q.cancel(beacon);
      beacon = q.schedule_in(3_s, [] {});
    }
    q.run_until(q.now() + 10_ms);
    const double t = q.now().to_seconds();
    EXPECT_NEAR(t - prev, 0.01, 1e-9);
    prev = t;
  }
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  std::vector<std::int64_t> seen;
  for (int i = 999; i >= 0; --i) {
    q.schedule_at(TimePoint::at(Duration::millis(i % 100)),
                  [&seen, &q] { seen.push_back(q.now().count()); });
  }
  q.run_until(TimePoint::at(1_s));
  ASSERT_EQ(seen.size(), 1000u);
  for (std::size_t i = 1; i < seen.size(); ++i) EXPECT_LE(seen[i - 1], seen[i]);
}

// --- Per-run watchdog (the parallel harness's circuit breaker) ------------

TEST(EventQueue, RunBudgetStopsAfterExactEventCount) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 50; ++i) q.schedule_in(Duration::millis(i + 1), [&] { ++fired; });
  q.set_run_budget(/*max_events=*/10, /*wall_seconds=*/0.0);
  q.run_until(TimePoint::at(1_s));
  EXPECT_TRUE(q.budget_exceeded());
  EXPECT_EQ(fired, 10);  // deterministic: exactly the budget, no more
  // Time still advances to the horizon even on an early stop.
  EXPECT_EQ(q.now(), TimePoint::at(1_s));
}

TEST(EventQueue, ZeroBudgetsDisableTheWatchdog) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 20; ++i) q.schedule_in(Duration::millis(i + 1), [&] { ++fired; });
  q.set_run_budget(0, 0.0);
  q.run_until(TimePoint::at(1_s));
  EXPECT_FALSE(q.budget_exceeded());
  EXPECT_EQ(fired, 20);
}

TEST(EventQueue, BudgetCountsOnlyEventsAfterItWasSet) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 20; ++i) q.schedule_in(Duration::millis(i + 1), [&] { ++fired; });
  q.run_until(TimePoint::at(Duration::millis(5)));  // 5 events, no budget
  q.set_run_budget(10, 0.0);
  q.run_until(TimePoint::at(1_s));
  EXPECT_TRUE(q.budget_exceeded());
  EXPECT_EQ(fired, 15);  // 5 unbudgeted + 10 budgeted
}

TEST(EventQueue, SettingANewBudgetResetsExceeded) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule_in(Duration::millis(i + 1), [] {});
  q.set_run_budget(2, 0.0);
  q.run_until(TimePoint::at(1_s));
  ASSERT_TRUE(q.budget_exceeded());
  q.set_run_budget(0, 0.0);
  EXPECT_FALSE(q.budget_exceeded());
  q.run_until(TimePoint::at(2_s));
  EXPECT_FALSE(q.budget_exceeded());
}

TEST(EventQueue, WallClockBudgetTripsAHungRun) {
  // A self-rescheduling event chain never drains; a tiny wall budget must
  // break the loop. (Host-dependent by nature — assert only that it stops.)
  EventQueue q;
  std::function<void()> loop = [&] { q.schedule_in(Duration::millis(1), loop); };
  q.schedule_in(Duration::millis(1), loop);
  q.set_run_budget(0, 0.05);
  q.run_until(TimePoint::at(Duration::seconds(1e9)));
  EXPECT_TRUE(q.budget_exceeded());
}

TEST(EventQueue, EventBudgetTripReportsEventsCause) {
  EventQueue q;
  for (int i = 0; i < 20; ++i) q.schedule_in(Duration::millis(i + 1), [] {});
  EXPECT_EQ(q.budget_trip(), BudgetTrip::kNone);
  q.set_run_budget(5, 0.0);
  q.run_until(TimePoint::at(1_s));
  ASSERT_TRUE(q.budget_exceeded());
  EXPECT_EQ(q.budget_trip(), BudgetTrip::kEvents);
}

TEST(EventQueue, WallBudgetTripReportsWallCause) {
  EventQueue q;
  std::function<void()> loop = [&] { q.schedule_in(Duration::millis(1), loop); };
  q.schedule_in(Duration::millis(1), loop);
  q.set_run_budget(0, 0.05);
  q.run_until(TimePoint::at(Duration::seconds(1e9)));
  ASSERT_TRUE(q.budget_exceeded());
  EXPECT_EQ(q.budget_trip(), BudgetTrip::kWall);
}

TEST(EventQueue, SettingANewBudgetResetsTripCause) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule_in(Duration::millis(i + 1), [] {});
  q.set_run_budget(2, 0.0);
  q.run_until(TimePoint::at(1_s));
  ASSERT_EQ(q.budget_trip(), BudgetTrip::kEvents);
  q.set_run_budget(0, 0.0);
  EXPECT_EQ(q.budget_trip(), BudgetTrip::kNone);
  q.run_until(TimePoint::at(2_s));
  EXPECT_EQ(q.budget_trip(), BudgetTrip::kNone);
}

}  // namespace
}  // namespace vgr::sim

// Tests for the facilities layer: CAM generation rules and DENM
// trigger/repeat/cancel semantics, including their interplay with the
// GeoNetworking beacon service.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "vgr/facilities/cam.hpp"
#include "vgr/attack/intra_area.hpp"
#include "vgr/facilities/denm.hpp"
#include "vgr/security/authority.hpp"

namespace vgr::facilities {
namespace {

using namespace vgr::sim::literals;

constexpr double kRange = 486.0;

struct Node {
  std::unique_ptr<gn::StaticMobility> mobility;
  std::unique_ptr<gn::Router> router;
};

class FacilitiesTest : public ::testing::Test {
 protected:
  FacilitiesTest() : medium_{events_, phy::AccessTechnology::kDsrc} {}

  Node& add_node(double x) {
    nodes_.push_back(std::make_unique<Node>());
    Node& n = *nodes_.back();
    n.mobility = std::make_unique<gn::StaticMobility>(geo::Position{x, 0.0});
    const net::GnAddress addr{net::GnAddress::StationType::kPassengerCar,
                              net::MacAddress{0x700 + nodes_.size()}};
    gn::RouterConfig cfg = gn::RouterConfig::for_technology(phy::AccessTechnology::kDsrc);
    n.router = std::make_unique<gn::Router>(events_, medium_, security::Signer{ca_.enroll(addr)},
                                            ca_.trust_store(), *n.mobility, cfg, kRange,
                                            rng_.fork());
    return n;
  }

  void run_for(sim::Duration d) { events_.run_until(events_.now() + d); }

  sim::EventQueue events_;
  phy::Medium medium_;
  security::CertificateAuthority ca_;
  sim::Rng rng_{606};
  std::vector<std::unique_ptr<Node>> nodes_;
};

// --- CAM codec ----------------------------------------------------------------

TEST(CamCodec, RoundTrip) {
  CamData cam;
  cam.vehicle_length_m = 12.0;
  cam.vehicle_width_m = 2.5;
  cam.generation = 7;
  net::LongPositionVector pv;
  pv.address = net::GnAddress::from_bits(42);
  pv.position = {10.0, 20.0};
  pv.speed_mps = 25.0;
  const auto decoded = CamData::decode(cam.encode(), pv);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->generation, 7u);
  EXPECT_DOUBLE_EQ(decoded->vehicle_length_m, 12.0);
  EXPECT_EQ(decoded->station, pv.address);
  EXPECT_DOUBLE_EQ(decoded->speed_mps, 25.0);
}

TEST(CamCodec, RejectsForeignPayload) {
  EXPECT_FALSE(CamData::decode({1, 2, 3}, {}).has_value());
  EXPECT_FALSE(CamData::decode({}, {}).has_value());
}

// --- CAM service ------------------------------------------------------------------

TEST_F(FacilitiesTest, StationaryVehicleSendsAtMaxInterval) {
  Node& a = add_node(0.0);
  Node& b = add_node(100.0);
  CamService cam_a{events_, *a.router};
  CamService cam_b{events_, *b.router};
  run_for(10_s);
  // Stationary: only the 1 s max-interval rule fires -> ~10 CAMs.
  EXPECT_GE(cam_a.cams_sent(), 9u);
  EXPECT_LE(cam_a.cams_sent(), 12u);
  EXPECT_GE(cam_b.cams_received(), 9u);
}

TEST_F(FacilitiesTest, MovingVehicleSendsFaster) {
  Node& a = add_node(0.0);
  add_node(100.0);
  CamService cam{events_, *a.router};
  // Advance the mobility 5 m every 100 ms (50 m/s): the 4 m position rule
  // triggers a CAM at every check -> ~10 Hz.
  auto* mob = static_cast<gn::StaticMobility*>(a.mobility.get());
  for (int i = 0; i < 100; ++i) {
    run_for(100_ms);
    mob->move_to({i * 5.0, 0.0});
  }
  EXPECT_GE(cam.cams_sent(), 80u);  // ~10 s of ~10 Hz
}

TEST_F(FacilitiesTest, CamsSuppressGnBeacons) {
  Node& a = add_node(0.0);
  add_node(100.0);
  a.router->start();  // beacon service armed
  CamService cam{events_, *a.router};
  run_for(30_s);
  // Every CAM restarts the beacon timer (ETSI beacon suppression): with
  // 1 Hz CAMs and a 3 s beacon period, no bare beacon should ever fire.
  EXPECT_EQ(a.router->stats().beacons_sent, 0u);
  EXPECT_GE(cam.cams_sent(), 25u);
}

TEST_F(FacilitiesTest, CamsPopulateLocationTables) {
  Node& a = add_node(0.0);
  Node& b = add_node(100.0);
  CamService cam{events_, *a.router};
  run_for(2_s);
  EXPECT_TRUE(b.router->location_table().find(a.router->address(), events_.now()).has_value());
}

TEST_F(FacilitiesTest, CamHandlerSeesPeerData) {
  Node& a = add_node(0.0);
  Node& b = add_node(100.0);
  CamService cam_a{events_, *a.router};
  CamService cam_b{events_, *b.router};
  std::vector<CamData> seen;
  cam_b.set_cam_handler([&](const CamData& cam, sim::TimePoint) { seen.push_back(cam); });
  run_for(3_s);
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.front().station, a.router->address());
  EXPECT_DOUBLE_EQ(seen.front().position.x, 0.0);
}

TEST_F(FacilitiesTest, StoppedServiceGoesQuiet) {
  Node& a = add_node(0.0);
  add_node(100.0);
  CamService cam{events_, *a.router};
  run_for(3_s);
  const auto sent = cam.cams_sent();
  cam.stop();
  run_for(5_s);
  EXPECT_EQ(cam.cams_sent(), sent);
}

// --- DENM service --------------------------------------------------------------------

TEST(DenmCodec, RoundTripAndRejection) {
  DenmData d;
  d.originator = net::GnAddress::from_bits(99);
  d.event_id = 5;
  d.cause = DenmCause::kAccident;
  d.event_position = {3600.0, 2.5};
  d.cancellation = true;
  const auto decoded = DenmData::decode(d.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->event_id, 5u);
  EXPECT_EQ(decoded->cause, DenmCause::kAccident);
  EXPECT_TRUE(decoded->cancellation);
  EXPECT_FALSE(DenmData::decode({0xDE, 0xAD}).has_value());
}

TEST_F(FacilitiesTest, DenmReachesAreaAndDeduplicatesRepetitions) {
  Node& a = add_node(0.0);
  Node& b = add_node(400.0);
  for (auto& n : nodes_) n->router->send_beacon_now();
  run_for(100_ms);

  DenmService denm_a{events_, *a.router};
  DenmService denm_b{events_, *b.router};
  int events_seen = 0;
  denm_b.set_event_handler([&](const DenmData& d, sim::TimePoint) {
    EXPECT_EQ(d.cause, DenmCause::kStationaryVehicle);
    ++events_seen;
  });

  denm_a.trigger(DenmCause::kStationaryVehicle, {50.0, 0.0},
                 geo::GeoArea::rectangle({200.0, 0.0}, 500.0, 50.0), 10_s);
  run_for(5_s);
  // ~5 repetitions on the air, surfaced exactly once.
  EXPECT_GE(denm_a.denms_sent(), 4u);
  EXPECT_EQ(events_seen, 1);
  EXPECT_EQ(denm_b.events_received(), 1u);
}

TEST_F(FacilitiesTest, DenmStopsAtValidityExpiry) {
  Node& a = add_node(0.0);
  add_node(400.0);
  DenmService denm{events_, *a.router};
  denm.trigger(DenmCause::kRoadworks, {0.0, 0.0},
               geo::GeoArea::rectangle({200.0, 0.0}, 500.0, 50.0), 3_s);
  run_for(10_s);
  EXPECT_EQ(denm.active_events(), 0u);
  EXPECT_LE(denm.denms_sent(), 4u);  // t=0,1,2,3 at most
}

TEST_F(FacilitiesTest, DenmCancellationSurfacesOnce) {
  Node& a = add_node(0.0);
  Node& b = add_node(400.0);
  for (auto& n : nodes_) n->router->send_beacon_now();
  run_for(100_ms);

  DenmService denm_a{events_, *a.router};
  DenmService denm_b{events_, *b.router};
  int cancels = 0;
  denm_b.set_cancel_handler([&](const DenmData& d, sim::TimePoint) {
    EXPECT_TRUE(d.cancellation);
    ++cancels;
  });
  const auto id = denm_a.trigger(DenmCause::kAccident, {10.0, 0.0},
                                 geo::GeoArea::rectangle({200.0, 0.0}, 500.0, 50.0), 60_s);
  run_for(2_s);
  denm_a.cancel(id);
  run_for(2_s);
  EXPECT_EQ(cancels, 1);
  EXPECT_EQ(denm_a.active_events(), 0u);
}

TEST_F(FacilitiesTest, DenmSuppressedByBlockageAttack) {
  // The paper's use cases ride on DENMs; the intra-area blocker silences
  // them just like any other GeoBroadcast, repetition or not.
  Node& a = add_node(0.0);
  Node& b = add_node(400.0);
  Node& c = add_node(800.0);
  for (auto& n : nodes_) n->router->send_beacon_now();
  run_for(100_ms);
  attack::IntraAreaBlocker blocker{events_, medium_, {200.0, 10.0}, 550.0};

  DenmService denm_a{events_, *a.router};
  DenmService denm_c{events_, *c.router};
  int events_seen = 0;
  denm_c.set_event_handler([&](const DenmData&, sim::TimePoint) { ++events_seen; });
  denm_a.trigger(DenmCause::kAccident, {0.0, 0.0},
                 geo::GeoArea::rectangle({400.0, 0.0}, 900.0, 50.0), 10_s);
  run_for(5_s);
  EXPECT_GE(blocker.packets_replayed(), 4u);  // every repetition replayed
  EXPECT_EQ(events_seen, 0);                  // c never learns of the hazard
  EXPECT_GE(b.router->stats().cbf_suppressed, 4u);
}

TEST_F(FacilitiesTest, RhlCheckProtectsDenms) {
  Node& a = add_node(0.0);
  add_node(400.0);
  Node& c = add_node(800.0);
  for (auto& n : nodes_) {
    n->router->config().rhl_drop_check = true;  // mitigation #2 on
    n->router->send_beacon_now();
  }
  run_for(100_ms);
  attack::IntraAreaBlocker blocker{events_, medium_, {200.0, 10.0}, 550.0};

  DenmService denm_a{events_, *a.router};
  DenmService denm_c{events_, *c.router};
  int events_seen = 0;
  denm_c.set_event_handler([&](const DenmData&, sim::TimePoint) { ++events_seen; });
  denm_a.trigger(DenmCause::kAccident, {0.0, 0.0},
                 geo::GeoArea::rectangle({400.0, 0.0}, 900.0, 50.0), 10_s);
  run_for(5_s);
  EXPECT_GE(blocker.packets_replayed(), 4u);
  EXPECT_EQ(events_seen, 1);  // the defended flood gets through
}

TEST_F(FacilitiesTest, CancellationForUnknownEventIsIgnored) {
  Node& a = add_node(0.0);
  Node& b = add_node(400.0);
  DenmService denm_a{events_, *a.router};
  DenmService denm_b{events_, *b.router};
  int cancels = 0;
  denm_b.set_cancel_handler([&](const DenmData&, sim::TimePoint) { ++cancels; });
  // Cancel before b ever saw the event (b is out of single-hop range of
  // nothing here, so instead: cancel an id that was never triggered).
  denm_a.cancel(12345);
  run_for(1_s);
  EXPECT_EQ(cancels, 0);
}

}  // namespace
}  // namespace vgr::facilities

// Edge-case router tests: fallback modes, buffered-packet expiry, CBF with
// unknown senders, beacon cadence statistics, and configuration plumbing.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "vgr/gn/router.hpp"
#include "vgr/security/authority.hpp"

namespace vgr::gn {
namespace {

using namespace vgr::sim::literals;

constexpr double kRange = 486.0;

struct Node {
  std::unique_ptr<StaticMobility> mobility;
  std::unique_ptr<Router> router;
  std::vector<Router::Delivery> deliveries;
};

class RouterEdgeTest : public ::testing::Test {
 protected:
  RouterEdgeTest() : medium_{events_, phy::AccessTechnology::kDsrc} {}

  Node& add_node(double x, RouterConfig cfg = default_config(), double range = kRange) {
    nodes_.push_back(std::make_unique<Node>());
    Node& n = *nodes_.back();
    n.mobility = std::make_unique<StaticMobility>(geo::Position{x, 0.0});
    const net::GnAddress addr{net::GnAddress::StationType::kPassengerCar,
                              net::MacAddress{0x600 + nodes_.size()}};
    n.router = std::make_unique<Router>(events_, medium_, security::Signer{ca_.enroll(addr)},
                                        ca_.trust_store(), *n.mobility, cfg, range,
                                        rng_.fork());
    n.router->set_delivery_handler(
        [&n](const Router::Delivery& d) { n.deliveries.push_back(d); });
    return n;
  }

  static RouterConfig default_config() {
    RouterConfig cfg = RouterConfig::for_technology(phy::AccessTechnology::kDsrc);
    cfg.cbf_dist_max_m = kRange;
    return cfg;
  }

  void beacons() {
    for (auto& n : nodes_) n->router->send_beacon_now();
    run_for(100_ms);
  }
  void run_for(sim::Duration d) { events_.run_until(events_.now() + d); }

  sim::EventQueue events_;
  phy::Medium medium_;
  security::CertificateAuthority ca_;
  sim::Rng rng_{8888};
  std::vector<std::unique_ptr<Node>> nodes_;
};

TEST_F(RouterEdgeTest, GfDropFallbackDiscardsImmediately) {
  RouterConfig cfg = default_config();
  cfg.gf_fallback = GfFallback::kDrop;
  Node& a = add_node(0.0, cfg);
  a.router->send_geo_broadcast(geo::GeoArea::circle({2000.0, 0.0}, 50.0), {1});
  run_for(100_ms);
  EXPECT_EQ(a.router->stats().gf_drops, 1u);
  EXPECT_EQ(a.router->stats().gf_buffered, 0u);
}

TEST_F(RouterEdgeTest, BufferedPacketExpiresWithoutNeighbors) {
  RouterConfig cfg = default_config();
  cfg.gf_retry_interval = 100_ms;  // expiry = 20 * retry interval = 2 s
  Node& a = add_node(0.0, cfg);
  a.router->send_geo_broadcast(geo::GeoArea::circle({2000.0, 0.0}, 50.0), {1});
  run_for(100_ms);
  EXPECT_EQ(a.router->stats().gf_buffered, 1u);
  run_for(5_s);
  EXPECT_EQ(a.router->stats().gf_drops, 1u);
  EXPECT_EQ(a.router->stats().gf_unicast_forwards, 0u);
}

TEST_F(RouterEdgeTest, CbfUnknownForwarderUsesMaxContention) {
  // A GBC's source PV makes the *source* known to its direct receivers,
  // but a receiver of a *forwarded* copy only knows the forwarder from its
  // beacons. Node b never beacons, so when c receives b's rebroadcast it
  // cannot place b and must contend with TO_MAX (100 ms).
  Node& a = add_node(0.0);
  Node& b = add_node(400.0);
  Node& c = add_node(800.0);
  (void)b;

  const auto area = geo::GeoArea::rectangle({400.0, 0.0}, 900.0, 50.0);
  a.router->send_geo_broadcast(area, {1});
  // b (400 m from a) fires at TO ~= 18-20 ms; c receives that copy and,
  // lacking b's position, waits the full TO_MAX before its own rebroadcast.
  run_for(110_ms);
  EXPECT_EQ(b.router->stats().cbf_rebroadcasts, 1u);
  EXPECT_EQ(c.router->stats().cbf_rebroadcasts, 0u);
  run_for(40_ms);  // past 20 ms + TO_MAX + jitter
  EXPECT_EQ(c.router->stats().cbf_rebroadcasts, 1u);
  EXPECT_EQ(c.deliveries.size(), 1u);
}

TEST_F(RouterEdgeTest, BeaconCadenceWithinConfiguredBounds) {
  Node& a = add_node(0.0);
  Node& b = add_node(100.0);
  a.router->start();
  run_for(60_s);
  // Period 3 s + up to 0.75 s jitter: 60 s fits 16-20 beacons.
  EXPECT_GE(a.router->stats().beacons_sent, 16u);
  EXPECT_LE(a.router->stats().beacons_sent, 21u);
  EXPECT_EQ(b.router->stats().beacons_received, a.router->stats().beacons_sent);
}

TEST_F(RouterEdgeTest, PvMaxAgeIsConfigurable) {
  RouterConfig cfg = default_config();
  cfg.pv_max_age = 10_s;  // lenient freshness window
  Node& a = add_node(0.0, cfg);
  Node& b = add_node(100.0, cfg);
  run_for(8_s);

  // A beacon carrying an 8 s old PV passes the widened freshness check.
  net::Packet p;
  p.common.type = net::CommonHeader::HeaderType::kBeacon;
  auto pv = b.router->self_pv();
  pv.timestamp = events_.now() - 8_s;
  p.extended = net::BeaconHeader{pv};
  phy::Medium::NodeConfig inj;
  inj.mac = net::MacAddress{0x777};
  inj.position = [] { return geo::Position{50.0, 0.0}; };
  inj.tx_range_m = 200.0;
  const auto injector = medium_.add_node(std::move(inj), [](const phy::Frame&, phy::RadioId) {});
  phy::Frame frame;
  frame.src = b.router->mac();
  frame.msg =
      security::share(security::SecuredMessage::sign(p, security::Signer{ca_.enroll(pv.address)}));
  medium_.transmit(injector, frame);
  run_for(100_ms);

  EXPECT_EQ(a.router->stats().stale_pv_drops, 0u);
  EXPECT_TRUE(a.router->location_table().find(pv.address, events_.now()).has_value());
}

TEST_F(RouterEdgeTest, GbcToAreaContainingOnlySelfDeliversNowhere) {
  Node& a = add_node(0.0);
  Node& b = add_node(400.0);
  beacons();
  // Area covers only the source; the source broadcasts, b is outside and
  // must forward-only (GF toward the area), never deliver.
  a.router->send_geo_broadcast(geo::GeoArea::circle({0.0, 0.0}, 50.0), {1});
  run_for(1_s);
  EXPECT_TRUE(b.deliveries.empty());
}

TEST_F(RouterEdgeTest, OutOfAreaReceiverForwardsBackIntoArea) {
  // Source outside the area forwards via GF; the receiver inside delivers
  // and floods. A receiver *past* the area must route the packet back.
  Node& src = add_node(900.0);
  Node& inside = add_node(450.0);
  Node& beyond = add_node(0.0);
  beacons();
  src.router->send_geo_broadcast(geo::GeoArea::circle({450.0, 0.0}, 60.0), {1});
  run_for(1_s);
  EXPECT_EQ(inside.deliveries.size(), 1u);
  EXPECT_TRUE(beyond.deliveries.empty());
}

TEST_F(RouterEdgeTest, LifetimeFieldRoundTripsThroughForwarding) {
  Node& a = add_node(0.0);
  Node& b = add_node(400.0);
  beacons();
  a.router->send_geo_broadcast(geo::GeoArea::rectangle({200.0, 0.0}, 500.0, 50.0), {1},
                               std::nullopt, sim::Duration::seconds(42.0));
  run_for(1_s);
  ASSERT_EQ(b.deliveries.size(), 1u);
  EXPECT_EQ(b.deliveries[0].packet().basic.lifetime, sim::Duration::seconds(42.0));
}

TEST_F(RouterEdgeTest, StatsStartAtZero) {
  Node& a = add_node(0.0);
  const RouterStats& s = a.router->stats();
  EXPECT_EQ(s.beacons_sent + s.beacons_received + s.gbc_originated + s.delivered +
                s.gf_unicast_forwards + s.cbf_rebroadcasts + s.auth_failures + s.duplicates,
            0u);
}

TEST_F(RouterEdgeTest, RunningFlagTracksLifecycle) {
  Node& a = add_node(0.0);
  EXPECT_TRUE(a.router->running());
  a.router->shutdown();
  EXPECT_FALSE(a.router->running());
  a.router->shutdown();  // idempotent
  EXPECT_FALSE(a.router->running());
}

}  // namespace
}  // namespace vgr::gn

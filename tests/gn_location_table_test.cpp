#include <gtest/gtest.h>

#include "vgr/gn/location_table.hpp"

namespace vgr::gn {
namespace {

using namespace vgr::sim::literals;

net::LongPositionVector pv(std::uint64_t mac, double x, sim::TimePoint ts = {}) {
  net::LongPositionVector v;
  v.address = net::GnAddress{net::GnAddress::StationType::kPassengerCar, net::MacAddress{mac}};
  v.timestamp = ts;
  v.position = {x, 0.0};
  v.speed_mps = 30.0;
  return v;
}

TEST(LocationTable, InsertAndFind) {
  LocationTable t{20_s};
  const auto now = sim::TimePoint::at(1_s);
  t.update(pv(1, 100.0, now), now, /*direct=*/true);
  const auto entry = t.find(pv(1, 0).address, now);
  ASSERT_TRUE(entry.has_value());
  EXPECT_DOUBLE_EQ(entry->pv.position.x, 100.0);
  EXPECT_TRUE(entry->is_neighbor);
}

TEST(LocationTable, MissingAddressIsNullopt) {
  LocationTable t{20_s};
  EXPECT_FALSE(t.find(pv(9, 0).address, sim::TimePoint::origin()).has_value());
}

TEST(LocationTable, EntriesExpireAfterTtl) {
  LocationTable t{20_s};
  const auto t0 = sim::TimePoint::origin();
  t.update(pv(1, 100.0, t0), t0, true);
  EXPECT_TRUE(t.find(pv(1, 0).address, t0 + 19_s).has_value());
  EXPECT_FALSE(t.find(pv(1, 0).address, t0 + 20_s).has_value());
}

TEST(LocationTable, UpdateRefreshesTtl) {
  LocationTable t{20_s};
  const auto t0 = sim::TimePoint::origin();
  t.update(pv(1, 100.0, t0), t0, true);
  t.update(pv(1, 130.0, t0 + 10_s), t0 + 10_s, true);
  const auto entry = t.find(pv(1, 0).address, t0 + 25_s);
  ASSERT_TRUE(entry.has_value());
  EXPECT_DOUBLE_EQ(entry->pv.position.x, 130.0);
}

TEST(LocationTable, OlderTimestampIgnored) {
  LocationTable t{20_s};
  const auto t0 = sim::TimePoint::origin();
  t.update(pv(1, 100.0, t0 + 5_s), t0 + 5_s, true);
  // A replayed *older* PV must not roll the entry back.
  t.update(pv(1, 50.0, t0 + 1_s), t0 + 6_s, true);
  EXPECT_DOUBLE_EQ(t.find(pv(1, 0).address, t0 + 6_s)->pv.position.x, 100.0);
}

TEST(LocationTable, EqualTimestampAccepted) {
  LocationTable t{20_s};
  const auto t0 = sim::TimePoint::origin();
  t.update(pv(1, 100.0, t0), t0, false);
  t.update(pv(1, 100.0, t0), t0 + 1_s, true);  // replayed copy, same ts
  const auto entry = t.find(pv(1, 0).address, t0 + 1_s);
  EXPECT_TRUE(entry->is_neighbor);  // direct observation upgraded the flag
}

TEST(LocationTable, NeighborFlagIsSticky) {
  LocationTable t{20_s};
  const auto t0 = sim::TimePoint::origin();
  t.update(pv(1, 100.0, t0), t0, true);
  t.update(pv(1, 120.0, t0 + 1_s), t0 + 1_s, /*direct=*/false);
  EXPECT_TRUE(t.find(pv(1, 0).address, t0 + 1_s)->is_neighbor);
}

TEST(LocationTable, IndirectEntryIsNotNeighbor) {
  LocationTable t{20_s};
  const auto t0 = sim::TimePoint::origin();
  t.update(pv(1, 100.0, t0), t0, /*direct=*/false);
  EXPECT_FALSE(t.find(pv(1, 0).address, t0)->is_neighbor);
}

TEST(LocationTable, ExpiredEntryReplacedFresh) {
  LocationTable t{10_s};
  const auto t0 = sim::TimePoint::origin();
  t.update(pv(1, 100.0, t0), t0, true);
  // After expiry, even an older-timestamp PV creates a fresh entry and the
  // neighbour flag resets to the new observation kind.
  t.update(pv(1, 200.0, t0 + 30_s), t0 + 30_s, false);
  const auto entry = t.find(pv(1, 0).address, t0 + 30_s);
  ASSERT_TRUE(entry.has_value());
  EXPECT_DOUBLE_EQ(entry->pv.position.x, 200.0);
  EXPECT_FALSE(entry->is_neighbor);
}

TEST(LocationTable, FindByMac) {
  LocationTable t{20_s};
  const auto t0 = sim::TimePoint::origin();
  t.update(pv(0xAB, 77.0, t0), t0, true);
  const auto entry = t.find_by_mac(net::MacAddress{0xAB}, t0);
  ASSERT_TRUE(entry.has_value());
  EXPECT_DOUBLE_EQ(entry->pv.position.x, 77.0);
  EXPECT_FALSE(t.find_by_mac(net::MacAddress{0xCD}, t0).has_value());
}

TEST(LocationTable, FindByMacIgnoresExpired) {
  LocationTable t{5_s};
  const auto t0 = sim::TimePoint::origin();
  t.update(pv(0xAB, 77.0, t0), t0, true);
  EXPECT_FALSE(t.find_by_mac(net::MacAddress{0xAB}, t0 + 6_s).has_value());
}

TEST(LocationTable, SizeCountsLiveOnly) {
  LocationTable t{10_s};
  const auto t0 = sim::TimePoint::origin();
  t.update(pv(1, 1.0, t0), t0, true);
  t.update(pv(2, 2.0, t0 + 8_s), t0 + 8_s, true);
  EXPECT_EQ(t.size(t0 + 9_s), 2u);
  EXPECT_EQ(t.size(t0 + 11_s), 1u);
  EXPECT_EQ(t.raw_size(), 2u);
}

TEST(LocationTable, PurgeDropsExpired) {
  LocationTable t{10_s};
  const auto t0 = sim::TimePoint::origin();
  t.update(pv(1, 1.0, t0), t0, true);
  t.update(pv(2, 2.0, t0 + 8_s), t0 + 8_s, true);
  t.purge(t0 + 11_s);
  EXPECT_EQ(t.raw_size(), 1u);
}

TEST(LocationTable, ForEachVisitsLiveEntries) {
  LocationTable t{10_s};
  const auto t0 = sim::TimePoint::origin();
  t.update(pv(1, 1.0, t0), t0, true);
  t.update(pv(2, 2.0, t0), t0, true);
  t.update(pv(3, 3.0, t0 + 20_s), t0 + 20_s, true);
  int visited = 0;
  t.for_each(t0 + 20_s, [&](const LocTableEntry&) { ++visited; });
  EXPECT_EQ(visited, 1);  // entries 1 & 2 expired by t0+20
}

// --- New-neighbour edge & erase (recovery layer, docs/robustness.md) ------
//
// `update` reports whether the observation produced a *new live neighbour* —
// the edge the router uses to flush its store-carry-forward buffer.

TEST(LocationTable, UpdateReportsNewDirectNeighborOnce) {
  LocationTable t{20_s};
  const auto t0 = sim::TimePoint::origin();
  EXPECT_TRUE(t.update(pv(1, 100.0, t0), t0, /*direct=*/true));
  // Refreshing a known neighbour is not a new-neighbour edge.
  EXPECT_FALSE(t.update(pv(1, 130.0, t0 + 1_s), t0 + 1_s, /*direct=*/true));
}

TEST(LocationTable, IndirectObservationsAreNeverNewNeighbors) {
  LocationTable t{20_s};
  const auto t0 = sim::TimePoint::origin();
  EXPECT_FALSE(t.update(pv(1, 100.0, t0), t0, /*direct=*/false));
  EXPECT_FALSE(t.update(pv(1, 120.0, t0 + 1_s), t0 + 1_s, /*direct=*/false));
}

TEST(LocationTable, IndirectToDirectUpgradeIsANewNeighbor) {
  LocationTable t{20_s};
  const auto t0 = sim::TimePoint::origin();
  t.update(pv(1, 100.0, t0), t0, /*direct=*/false);
  EXPECT_TRUE(t.update(pv(1, 110.0, t0 + 1_s), t0 + 1_s, /*direct=*/true));
  EXPECT_FALSE(t.update(pv(1, 120.0, t0 + 2_s), t0 + 2_s, /*direct=*/true));
}

TEST(LocationTable, ExpiredEntryReplacedDirectlyIsANewNeighbor) {
  LocationTable t{10_s};
  const auto t0 = sim::TimePoint::origin();
  t.update(pv(1, 100.0, t0), t0, true);
  // The station went silent past the TTL; its next beacon re-learns it.
  EXPECT_TRUE(t.update(pv(1, 200.0, t0 + 15_s), t0 + 15_s, /*direct=*/true));
}

TEST(LocationTable, StaleTimestampIsNotANewNeighbor) {
  LocationTable t{20_s};
  const auto t0 = sim::TimePoint::origin();
  t.update(pv(1, 100.0, t0 + 5_s), t0 + 5_s, true);
  EXPECT_FALSE(t.update(pv(1, 50.0, t0 + 1_s), t0 + 6_s, true));
}

TEST(LocationTable, EraseRemovesEntry) {
  LocationTable t{20_s};
  const auto t0 = sim::TimePoint::origin();
  t.update(pv(1, 100.0, t0), t0, true);
  EXPECT_TRUE(t.erase(pv(1, 0).address));
  EXPECT_FALSE(t.find(pv(1, 0).address, t0).has_value());
  EXPECT_EQ(t.raw_size(), 0u);
  EXPECT_FALSE(t.erase(pv(1, 0).address));  // already gone
}

TEST(LocationTable, ErasedNeighborRelearnedAsNew) {
  // Monitor eviction followed by the station's next beacon: the table must
  // report the re-learn as a new-neighbour edge so buffered packets flush.
  LocationTable t{20_s};
  const auto t0 = sim::TimePoint::origin();
  t.update(pv(1, 100.0, t0), t0, true);
  t.erase(pv(1, 0).address);
  EXPECT_TRUE(t.update(pv(1, 140.0, t0 + 1_s), t0 + 1_s, true));
}

class TtlSweep : public ::testing::TestWithParam<int> {};

TEST_P(TtlSweep, ExpiryHonorsConfiguredTtl) {
  const int ttl_s = GetParam();
  LocationTable t{sim::Duration::seconds(static_cast<double>(ttl_s))};
  const auto t0 = sim::TimePoint::origin();
  t.update(pv(1, 1.0, t0), t0, true);
  const auto just_before = t0 + sim::Duration::seconds(ttl_s - 0.001);
  const auto just_after = t0 + sim::Duration::seconds(ttl_s + 0.001);
  EXPECT_TRUE(t.find(pv(1, 0).address, just_before).has_value());
  EXPECT_FALSE(t.find(pv(1, 0).address, just_after).has_value());
}

// The paper sweeps LocTE TTL over {5, 10, 20} seconds (Fig 7c / 9c).
INSTANTIATE_TEST_SUITE_P(PaperTtls, TtlSweep, ::testing::Values(5, 10, 20));

}  // namespace
}  // namespace vgr::gn

#include "vgr/sweep/journal.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "vgr/sweep/json.hpp"

namespace vgr::sweep {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string{"vgr_journal_"} + name + "_" + std::to_string(::getpid())))
      .string();
}

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  return std::string{std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
}

JournalRecord sample(const std::string& shard, const std::string& payload = "{\"x\":1}") {
  JournalRecord rec;
  rec.shard = shard;
  rec.status = "done";
  rec.fidelity = "full";
  rec.attempts = 1;
  rec.cause = "none";
  rec.payload = payload;
  return rec;
}

TEST(Crc32, MatchesTheIeeeCheckValue) {
  // The canonical CRC-32 check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
}

TEST(JournalRecordCodec, RoundTripsEveryField) {
  JournalRecord rec;
  rec.shard = "loss-0.050-plain#s4+4@0123456789abcdef";
  rec.status = "quarantined";
  rec.fidelity = "degraded";
  rec.attempts = 4;
  rec.cause = "events";
  rec.payload = "{\"bins\":[1,2.5,-3e-4],\"nested\":{\"k\":\"v\"}}";

  const std::string line = encode_record(rec);
  EXPECT_EQ(line.back(), '\n');
  const auto decoded = decode_record(line);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->shard, rec.shard);
  EXPECT_EQ(decoded->status, rec.status);
  EXPECT_EQ(decoded->fidelity, rec.fidelity);
  EXPECT_EQ(decoded->attempts, rec.attempts);
  EXPECT_EQ(decoded->cause, rec.cause);
  EXPECT_EQ(decoded->payload, rec.payload);
}

TEST(JournalRecordCodec, RejectsBitFlipsAnywhereInTheLine) {
  const std::string line = encode_record(sample("shard-a"));
  for (std::size_t i = 0; i + 1 < line.size(); i += 7) {
    std::string corrupted = line;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0x20);
    if (corrupted == line) continue;
    EXPECT_FALSE(decode_record(corrupted).has_value()) << "flip at " << i;
  }
}

TEST(JournalRecordCodec, RejectsTruncationAndFraming) {
  const std::string line = encode_record(sample("shard-a"));
  EXPECT_FALSE(decode_record(line.substr(0, line.size() / 2)).has_value());
  EXPECT_FALSE(decode_record("").has_value());
  EXPECT_FALSE(decode_record("{\"crc\":\"zzzzzzzz\",\"shard\":\"x\"}").has_value());
  EXPECT_FALSE(decode_record("not a journal line at all").has_value());
}

TEST(Journal, AppendsPersistAcrossReopen) {
  const std::string path = temp_path("reopen");
  std::filesystem::remove(path);
  {
    auto j = Journal::open(path);
    ASSERT_TRUE(j.has_value());
    j->append(sample("shard-a"));
    j->append(sample("shard-b", "null"));
  }
  auto j = Journal::open(path);
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->truncated_bytes(), 0u);
  ASSERT_EQ(j->records().size(), 2u);
  EXPECT_EQ(j->records()[0].shard, "shard-a");
  EXPECT_EQ(j->records()[1].payload, "null");
  EXPECT_NE(j->find("shard-b"), nullptr);
  EXPECT_EQ(j->find("shard-c"), nullptr);
  std::filesystem::remove(path);
}

TEST(Journal, TornTailIsTruncatedOnReopen) {
  const std::string path = temp_path("torn");
  std::filesystem::remove(path);
  {
    auto j = Journal::open(path);
    ASSERT_TRUE(j.has_value());
    j->append(sample("shard-a"));
    j->append(sample("shard-b"));
  }
  const std::string intact = slurp(path);
  // Simulate a crash mid-append: half a record, no trailing newline.
  const std::string torn_line = encode_record(sample("shard-c"));
  {
    std::ofstream out{path, std::ios::binary | std::ios::app};
    out << torn_line.substr(0, torn_line.size() / 2);
  }
  auto j = Journal::open(path);
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->truncated_bytes(), torn_line.size() / 2);
  ASSERT_EQ(j->records().size(), 2u);
  // The file itself was repaired, and the journal still appends cleanly.
  EXPECT_EQ(slurp(path), intact);
  j->append(sample("shard-c"));
  EXPECT_EQ(j->records().size(), 3u);
  std::filesystem::remove(path);
}

TEST(Journal, CorruptMiddleRecordCutsTheSuffix) {
  const std::string path = temp_path("midcorrupt");
  std::filesystem::remove(path);
  {
    auto j = Journal::open(path);
    ASSERT_TRUE(j.has_value());
    j->append(sample("shard-a"));
    j->append(sample("shard-b"));
    j->append(sample("shard-c"));
  }
  // Flip one payload byte of the second record. Order is a correctness
  // guarantee (append-only), so everything from the corruption on is cut.
  std::string content = slurp(path);
  const std::size_t second = content.find('\n') + 24;
  content[second] = static_cast<char>(content[second] ^ 0x01);
  {
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    out << content;
  }
  auto j = Journal::open(path);
  ASSERT_TRUE(j.has_value());
  ASSERT_EQ(j->records().size(), 1u);
  EXPECT_EQ(j->records()[0].shard, "shard-a");
  EXPECT_GT(j->truncated_bytes(), 0u);
  std::filesystem::remove(path);
}

TEST(Journal, ScanIsReadOnly) {
  const std::string path = temp_path("scan");
  std::filesystem::remove(path);
  {
    auto j = Journal::open(path);
    ASSERT_TRUE(j.has_value());
    j->append(sample("shard-a"));
  }
  {
    std::ofstream out{path, std::ios::binary | std::ios::app};
    out << "torn";
  }
  const auto before = std::filesystem::file_size(path);
  std::size_t torn = 0;
  const auto records = Journal::scan(path, &torn);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(torn, 4u);
  EXPECT_EQ(std::filesystem::file_size(path), before);  // untouched
  EXPECT_TRUE(Journal::scan("/nonexistent/definitely-missing.journal").empty());
  std::filesystem::remove(path);
}

TEST(Json, NumbersRoundTripExactly) {
  std::string out;
  json_append_double(out, 0.1);
  out += ",";
  json_append_double(out, 1.0 / 3.0);
  const auto parsed = json_parse("[" + out + "]");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->array.size(), 2u);
  EXPECT_EQ(parsed->array[0].as_double(), 0.1);
  EXPECT_EQ(parsed->array[1].as_double(), 1.0 / 3.0);
}

TEST(Json, ParsesObjectsInOrderAndRejectsJunk) {
  const auto v = json_parse("{\"b\":1,\"a\":{\"nested\":[true,false,null]},\"s\":\"x\\\"y\"}");
  ASSERT_TRUE(v.has_value());
  ASSERT_EQ(v->object.size(), 3u);
  EXPECT_EQ(v->object[0].first, "b");  // insertion order preserved
  EXPECT_EQ(v->object[1].first, "a");
  EXPECT_EQ(v->text("s"), "x\"y");
  EXPECT_EQ(v->u64("b"), 1u);
  EXPECT_FALSE(json_parse("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(json_parse("{broken").has_value());
  EXPECT_FALSE(json_parse("").has_value());
}

}  // namespace
}  // namespace vgr::sweep

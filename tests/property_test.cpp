// Property-style and fuzz-style tests across module boundaries: codec
// robustness against arbitrary and mutated bytes, event-queue ordering under
// random interleavings, geometric invariances, hop-limit properties of the
// router, and traffic-safety invariants under randomized conditions.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "vgr/geo/area.hpp"
#include "vgr/gn/router.hpp"
#include "vgr/net/codec.hpp"
#include "vgr/security/authority.hpp"
#include "vgr/sim/event_queue.hpp"
#include "vgr/sim/random.hpp"
#include "vgr/traffic/traffic_sim.hpp"

namespace vgr {
namespace {

using namespace vgr::sim::literals;

// --- Codec fuzz -------------------------------------------------------------

TEST(CodecFuzz, RandomBytesNeverCrashAndRarelyDecode) {
  sim::Rng rng{0xF0DD};
  int decoded = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 300));
    net::Bytes junk(len);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    if (net::Codec::decode(junk).has_value()) ++decoded;
  }
  // A random blob must essentially never parse as a full packet.
  EXPECT_LE(decoded, 1);
}

TEST(CodecFuzz, SingleByteMutationsNeverCrash) {
  net::Packet p;
  p.common.type = net::CommonHeader::HeaderType::kGeoBroadcast;
  net::LongPositionVector pv;
  pv.address = net::GnAddress{net::GnAddress::StationType::kPassengerCar, net::MacAddress{7}};
  pv.position = {123.0, 4.5};
  p.extended = net::GbcHeader{11, pv, geo::GeoArea::circle({50.0, 0.0}, 25.0)};
  p.payload = {1, 2, 3, 4};
  const net::Bytes wire = net::Codec::encode(p);

  for (std::size_t i = 0; i < wire.size(); ++i) {
    for (const std::uint8_t flip : {0x01, 0x80, 0xFF}) {
      net::Bytes mutated = wire;
      mutated[i] ^= flip;
      // Must either fail cleanly or produce *some* packet; re-encoding a
      // successfully decoded packet must round-trip.
      const auto result = net::Codec::decode(mutated);
      if (result.has_value()) {
        const auto again = net::Codec::decode(net::Codec::encode(*result));
        ASSERT_TRUE(again.has_value());
        EXPECT_EQ(*again, *result);
      }
    }
  }
}

TEST(CodecFuzz, TamperedSignedBytesAlwaysBreakSignature) {
  security::CertificateAuthority ca;
  const auto addr =
      net::GnAddress{net::GnAddress::StationType::kPassengerCar, net::MacAddress{3}};
  const security::Signer signer{ca.enroll(addr)};

  net::Packet p;
  p.common.type = net::CommonHeader::HeaderType::kGeoBroadcast;
  net::LongPositionVector pv;
  pv.address = addr;
  p.extended = net::GbcHeader{1, pv, geo::GeoArea::circle({0.0, 0.0}, 10.0)};
  p.payload = {42};
  const auto msg = security::SecuredMessage::sign(p, signer);
  const net::Bytes signed_bytes = net::Codec::encode_signed_portion(p);

  // Whatever single byte of the signed portion an attacker flips, if the
  // mutated bytes decode back to a packet at all, that packet must fail
  // verification under the original signature.
  for (std::size_t i = 0; i < signed_bytes.size(); ++i) {
    net::Bytes mutated = signed_bytes;
    mutated[i] ^= 0x5A;
    EXPECT_NE(security::keyed_digest(1, mutated), security::keyed_digest(1, signed_bytes));
  }
  EXPECT_TRUE(msg.verify(*ca.trust_store()));
}

// --- Event queue under random interleavings ----------------------------------

TEST(EventQueueProperty, RandomScheduleCancelKeepsMonotonicTime) {
  sim::Rng rng{31337};
  sim::EventQueue q;
  std::vector<sim::EventId> ids;
  std::int64_t last_seen = -1;
  int fired = 0;

  for (int i = 0; i < 2000; ++i) {
    const double action = rng.uniform();
    if (action < 0.6) {
      ids.push_back(q.schedule_in(sim::Duration::millis(rng.uniform_int(0, 50)), [&] {
        const std::int64_t now = q.now().count();
        EXPECT_GE(now, last_seen);
        last_seen = now;
        ++fired;
      }));
    } else if (action < 0.8 && !ids.empty()) {
      q.cancel(ids[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1))]);
    } else {
      q.step();
    }
  }
  q.run_until(q.now() + 1_s);
  EXPECT_GT(fired, 0);
  EXPECT_EQ(q.pending_count(), 0u);
}

// --- Geometry invariances -----------------------------------------------------

TEST(GeoProperty, ContainmentIsRotationInvariant) {
  sim::Rng rng{77};
  for (int trial = 0; trial < 200; ++trial) {
    const geo::Position center{rng.uniform(-100.0, 100.0), rng.uniform(-100.0, 100.0)};
    const double a = rng.uniform(5.0, 200.0);
    const double b = rng.uniform(5.0, 200.0);
    const double az = rng.uniform(0.0, 2.0 * M_PI);
    const geo::Position probe{rng.uniform(-300.0, 300.0), rng.uniform(-300.0, 300.0)};

    const auto base = geo::GeoArea::ellipse(center, a, b, 0.0);
    const auto rotated = geo::GeoArea::ellipse(center, a, b, az);
    // Rotating the probe by -az around the center wrt the rotated area is
    // the same as testing the unrotated area with the original probe.
    const geo::Position unrotated_probe = center + (probe - center).rotated(-az);
    EXPECT_EQ(rotated.contains(probe), base.contains(unrotated_probe)) << "trial " << trial;
  }
}

TEST(GeoProperty, CharacteristicSignMatchesContainsEverywhere) {
  sim::Rng rng{78};
  const auto rect = geo::GeoArea::rectangle({10.0, -5.0}, 40.0, 15.0, 0.3);
  for (int trial = 0; trial < 500; ++trial) {
    const geo::Position p{rng.uniform(-80.0, 100.0), rng.uniform(-60.0, 50.0)};
    EXPECT_EQ(rect.contains(p), rect.characteristic(p) >= 0.0);
  }
}

// --- Router hop-limit property --------------------------------------------------

class HopLimitProperty : public ::testing::TestWithParam<int> {};

TEST_P(HopLimitProperty, GbcDeliveredIffBudgetCoversChain) {
  // Chain of 6 nodes, 400 m apart; destination area around the last one.
  // Reaching node k requires k hops. GBC with hop limit H reaches exactly
  // the nodes with k <= H.
  const int hop_limit = GetParam();
  sim::EventQueue events;
  phy::Medium medium{events, phy::AccessTechnology::kDsrc};
  security::CertificateAuthority ca;
  sim::Rng rng{42};

  struct Node {
    std::unique_ptr<gn::StaticMobility> mobility;
    std::unique_ptr<gn::Router> router;
    int deliveries{0};
  };
  std::vector<std::unique_ptr<Node>> nodes;
  for (int i = 0; i < 6; ++i) {
    auto n = std::make_unique<Node>();
    n->mobility = std::make_unique<gn::StaticMobility>(geo::Position{i * 400.0, 0.0});
    const net::GnAddress addr{net::GnAddress::StationType::kPassengerCar,
                              net::MacAddress{0x400u + static_cast<unsigned>(i)}};
    gn::RouterConfig cfg = gn::RouterConfig::for_technology(phy::AccessTechnology::kDsrc);
    n->router = std::make_unique<gn::Router>(events, medium, security::Signer{ca.enroll(addr)},
                                             ca.trust_store(), *n->mobility, cfg, 486.0,
                                             rng.fork());
    Node* raw = n.get();
    n->router->set_delivery_handler([raw](const gn::Router::Delivery&) { ++raw->deliveries; });
    nodes.push_back(std::move(n));
  }
  for (auto& n : nodes) n->router->send_beacon_now();
  events.run_until(events.now() + 100_ms);

  nodes[0]->router->send_geo_broadcast(geo::GeoArea::circle({2000.0, 0.0}, 60.0), {1},
                                       static_cast<std::uint8_t>(hop_limit));
  events.run_until(events.now() + 5_s);

  // The only node inside the area is the last one (x=2000), 5 hops away.
  EXPECT_EQ(nodes[5]->deliveries, hop_limit >= 5 ? 1 : 0) << "hop_limit=" << hop_limit;
}

INSTANTIATE_TEST_SUITE_P(Budgets, HopLimitProperty, ::testing::Values(1, 2, 3, 4, 5, 7, 10));

// --- Traffic safety invariants ----------------------------------------------------

class TrafficSafety : public ::testing::TestWithParam<int> {};

TEST_P(TrafficSafety, NoCollisionsUnderRandomizedFlow) {
  // Randomized pre-fill density and a mid-run hazard: IDM must stay
  // collision-free throughout.
  sim::Rng rng{static_cast<std::uint64_t>(GetParam())};
  traffic::TrafficSimulation::Config cfg;
  cfg.prefill_spacing_m = rng.uniform(25.0, 120.0);
  cfg.entry_spacing_m = rng.uniform(25.0, 60.0);
  traffic::TrafficSimulation sim{traffic::RoadSegment{3000.0, 2, true}, cfg};
  sim.prefill();
  for (int tick = 0; tick < 1500; ++tick) {  // 150 s
    if (tick == 300) sim.set_hazard(traffic::Direction::kEastbound, 2500.0);
    if (tick == 900) sim.set_hazard(traffic::Direction::kEastbound, std::nullopt);
    sim.tick();
    ASSERT_EQ(sim.collisions(), 0u) << "tick " << tick;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrafficSafety, ::testing::Values(1, 2, 3, 4, 5));

class EntrySpacingSweep : public ::testing::TestWithParam<double> {};

TEST_P(EntrySpacingSweep, SteadyStateDensityTracksSpacing) {
  const double spacing = GetParam();
  traffic::TrafficSimulation::Config cfg;
  cfg.prefill_spacing_m = spacing;
  cfg.entry_spacing_m = spacing;
  traffic::TrafficSimulation sim{traffic::RoadSegment{4000.0, 2, false}, cfg};
  sim.prefill();
  for (int tick = 0; tick < 600; ++tick) sim.tick();  // 60 s
  const double expected = (4000.0 / spacing + 1.0) * 2.0;
  const double actual = static_cast<double>(sim.vehicle_count());
  // Entries/exits churn the exact count; density must stay in the right
  // ballpark (traffic compresses below desired speed at tight spacings).
  EXPECT_GT(actual, expected * 0.8);
  EXPECT_LT(actual, expected * 1.6);
}

INSTANTIATE_TEST_SUITE_P(Spacings, EntrySpacingSweep, ::testing::Values(30.0, 100.0, 300.0));

// --- Paired A/B determinism across the whole stack ---------------------------------

TEST(StackProperty, IdenticalSeedsGiveIdenticalChannelActivity) {
  auto run_once = [](std::uint64_t seed) {
    sim::EventQueue events;
    phy::Medium medium{events, phy::AccessTechnology::kDsrc};
    security::CertificateAuthority ca;
    sim::Rng rng{seed};
    std::vector<std::unique_ptr<gn::StaticMobility>> mobs;
    std::vector<std::unique_ptr<gn::Router>> routers;
    for (int i = 0; i < 8; ++i) {
      mobs.push_back(std::make_unique<gn::StaticMobility>(geo::Position{i * 300.0, 0.0}));
      const net::GnAddress addr{net::GnAddress::StationType::kPassengerCar,
                                net::MacAddress{0x500u + static_cast<unsigned>(i)}};
      gn::RouterConfig cfg = gn::RouterConfig::for_technology(phy::AccessTechnology::kDsrc);
      routers.push_back(std::make_unique<gn::Router>(
          events, medium, security::Signer{ca.enroll(addr)}, ca.trust_store(), *mobs.back(),
          cfg, 486.0, rng.fork()));
      routers.back()->start();
    }
    routers[0]->send_geo_broadcast(geo::GeoArea::circle({2100.0, 0.0}, 80.0), {9});
    // Fingerprint the run with an order-sensitive hash of delivery counts
    // over time, not just totals.
    std::uint64_t fingerprint = 0;
    for (int step = 0; step < 30; ++step) {
      events.run_until(sim::TimePoint::at(sim::Duration::seconds(step + 1.0)));
      fingerprint = fingerprint * 1099511628211ULL + medium.frames_delivered();
    }
    return std::make_pair(medium.frames_sent(), fingerprint);
  };
  EXPECT_EQ(run_once(11), run_once(11));
  EXPECT_NE(run_once(11).second, run_once(12).second);  // and seeds actually matter
}

}  // namespace
}  // namespace vgr

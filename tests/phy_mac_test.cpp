// CSMA/CA + DCC contention layer (docs/robustness.md): disabled passthrough,
// bounded-queue tail drop, carrier sense + retry exhaustion, DCC beacon
// gating, the medium's exact busy-time accumulator, and the fault-ordering
// contract (injected delay applies at dequeue, after MAC queueing).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "vgr/phy/fault_injector.hpp"
#include "vgr/phy/mac.hpp"
#include "vgr/phy/medium.hpp"
#include "vgr/security/authority.hpp"

namespace vgr::phy {
namespace {

using namespace vgr::sim::literals;

struct TestNode {
  geo::Position pos;
  std::vector<std::pair<Frame, sim::TimePoint>> received;
  RadioId id{};
};

class MacTest : public ::testing::Test {
 protected:
  MacTest() : medium_{events_, AccessTechnology::kDsrc} {}

  TestNode& add(geo::Position pos, double range, std::uint64_t mac) {
    nodes_.push_back(std::make_unique<TestNode>());
    TestNode& n = *nodes_.back();
    n.pos = pos;
    Medium::NodeConfig cfg;
    cfg.mac = net::MacAddress{mac};
    cfg.position = [&n] { return n.pos; };
    cfg.tx_range_m = range;
    n.id = medium_.add_node(std::move(cfg), [this, &n](const Frame& f, RadioId) {
      n.received.emplace_back(f, events_.now());
    });
    return n;
  }

  Frame frame_from(std::uint64_t src) {
    Frame f;
    f.src = net::MacAddress{src};
    f.dst = net::MacAddress::broadcast();
    f.msg = security::share(security::SecuredMessage{});
    return f;
  }

  /// A MAC on `node`'s radio with carrier sensing enabled and a fixed seed.
  std::unique_ptr<Mac> make_mac(const TestNode& node, MacConfig cfg,
                                DccConfig dcc = DccConfig{}) {
    return std::make_unique<Mac>(events_, medium_, node.id, events_.make_cohort(), cfg,
                                 dcc, sim::Rng{42});
  }

  /// Airtime of one test frame on this medium, measured empirically from the
  /// busy-time accumulator so the tests never hardcode the wire image size.
  sim::Duration frame_airtime(const TestNode& tx, const TestNode& rx) {
    const sim::Duration before = medium_.busy_time(rx.id);
    const sim::TimePoint start = events_.now();
    medium_.transmit(tx.id, frame_from(99));
    events_.run_until(start + 1_s);
    return medium_.busy_time(rx.id) - before;
  }

  void settle() { events_.run_until(events_.now() + 2_s); }

  /// Frames `node` received from link-layer source `src` (the jam-based
  /// tests share the air with a jammer whose frames everyone hears).
  std::vector<std::pair<Frame, sim::TimePoint>> received_from(const TestNode& node,
                                                              std::uint64_t src) {
    std::vector<std::pair<Frame, sim::TimePoint>> out;
    for (const auto& [f, at] : node.received) {
      if (f.src == net::MacAddress{src}) out.emplace_back(f, at);
    }
    return out;
  }

  /// Keeps the channel continuously busy with back-to-back jammer frames
  /// for at least `span`, starting immediately. Returns when the jam ends.
  sim::TimePoint jam(const TestNode& jammer, sim::Duration airtime, sim::Duration span) {
    const sim::TimePoint start = events_.now();
    const int frames = static_cast<int>(span / airtime) + 1;
    medium_.transmit(jammer.id, frame_from(7));
    for (int i = 1; i < frames; ++i) {
      events_.schedule_at(start + airtime * static_cast<double>(i),
                          [this, &jammer] { medium_.transmit(jammer.id, frame_from(7)); });
    }
    return start + airtime * static_cast<double>(frames);
  }

  sim::EventQueue events_;
  Medium medium_;
  std::vector<std::unique_ptr<TestNode>> nodes_;
};

TEST_F(MacTest, DisabledMacIsASynchronousPassthrough) {
  TestNode& a = add({0, 0}, 100.0, 1);
  TestNode& b = add({50, 0}, 100.0, 2);
  auto mac = make_mac(a, MacConfig{});  // enabled defaults to false
  mac->enqueue(frame_from(1), MacAccessClass::kData);
  settle();
  ASSERT_EQ(b.received.size(), 1u);
  // Nothing is counted, queued, or scheduled: off is free.
  EXPECT_EQ(mac->stats().enqueued, 0u);
  EXPECT_EQ(mac->stats().transmitted, 0u);
  EXPECT_EQ(mac->stats().cbr_samples, 0u);
  EXPECT_EQ(mac->queue_depth(), 0u);
}

TEST_F(MacTest, IdleChannelTransmitsWithoutBackoff) {
  TestNode& a = add({0, 0}, 100.0, 1);
  TestNode& b = add({50, 0}, 100.0, 2);
  MacConfig cfg;
  cfg.enabled = true;
  auto mac = make_mac(a, cfg);
  mac->enqueue(frame_from(1), MacAccessClass::kData);
  settle();
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(mac->stats().transmitted, 1u);
  EXPECT_EQ(mac->stats().backoff_retries, 0u);
}

TEST_F(MacTest, QueueOverflowTailDropsWithCounter) {
  TestNode& a = add({0, 0}, 100.0, 1);
  TestNode& jammer = add({30, 0}, 100.0, 7);
  MacConfig cfg;
  cfg.enabled = true;
  cfg.queue_limit = 3;
  auto mac = make_mac(a, cfg);
  // Busy channel holds the head in contention while arrivals pile up.
  medium_.transmit(jammer.id, frame_from(7));
  for (int i = 0; i < 5; ++i) mac->enqueue(frame_from(1), MacAccessClass::kData);
  EXPECT_EQ(mac->queue_depth(), 3u);
  EXPECT_EQ(mac->stats().queue_overflow_drops, 2u);
  settle();
  // Once the jammer's airtime ends, the queued 3 frames all get out.
  EXPECT_EQ(mac->stats().transmitted, 3u);
}

TEST_F(MacTest, ContinuousBusyChannelExhaustsRetries) {
  TestNode& a = add({0, 0}, 100.0, 1);
  TestNode& jammer = add({30, 0}, 100.0, 7);
  TestNode& rx = add({50, 0}, 100.0, 2);
  MacConfig cfg;
  cfg.enabled = true;
  cfg.max_retries = 3;
  auto mac = make_mac(a, cfg);
  // Back-to-back jammer transmissions for ~200 ms: every re-sense lands on
  // a busy channel, so the head burns its whole contention budget.
  const sim::Duration airtime = frame_airtime(jammer, a);
  ASSERT_GT(airtime, 0_us);
  jam(jammer, airtime, 200_ms);
  mac->enqueue(frame_from(1), MacAccessClass::kData);
  settle();
  EXPECT_EQ(mac->stats().retry_exhausted_drops, 1u);
  EXPECT_EQ(mac->stats().transmitted, 0u);
  EXPECT_GE(mac->stats().backoff_retries, 3u);
  // The frame died in contention, not on the air: rx never saw it.
  EXPECT_TRUE(received_from(rx, 1).empty());
}

TEST_F(MacTest, DccGatesBeaconsWhileClosedAndPacesData) {
  TestNode& a = add({0, 0}, 100.0, 1);
  TestNode& b = add({50, 0}, 100.0, 2);
  MacConfig cfg;
  cfg.enabled = true;
  DccConfig dcc;
  dcc.enabled = true;
  auto mac = make_mac(a, cfg, dcc);
  // First transmission closes the gate for Toff(Relaxed) = 60 ms.
  mac->enqueue(frame_from(1), MacAccessClass::kData);
  events_.run_until(events_.now() + 1_ms);
  ASSERT_EQ(mac->stats().transmitted, 1u);
  EXPECT_GT(mac->gate_open_at(), events_.now());

  // A beacon inside the gate is shed at admission; data queues and waits.
  mac->enqueue(frame_from(1), MacAccessClass::kBeacon);
  EXPECT_EQ(mac->stats().dcc_gated_drops, 1u);
  mac->enqueue(frame_from(1), MacAccessClass::kData);
  EXPECT_EQ(mac->queue_depth(), 1u);
  events_.run_until(events_.now() + 10_ms);
  EXPECT_EQ(mac->stats().transmitted, 1u);  // still gated

  settle();  // well past Toff: the paced data frame goes out
  EXPECT_EQ(mac->stats().transmitted, 2u);
  EXPECT_EQ(b.received.size(), 2u);

  // A beacon offered once the gate reopened passes.
  mac->enqueue(frame_from(1), MacAccessClass::kBeacon);
  settle();
  EXPECT_EQ(mac->stats().dcc_gated_drops, 1u);
  EXPECT_EQ(mac->stats().transmitted, 3u);
}

TEST_F(MacTest, BusyTimeAccumulatesTheExactIntervalUnion) {
  TestNode& a = add({0, 0}, 100.0, 1);
  TestNode& b = add({50, 0}, 100.0, 2);
  TestNode& c = add({25, 0}, 100.0, 3);  // hears both a and b

  const sim::Duration airtime = frame_airtime(a, c);
  ASSERT_GT(airtime, 0_us);
  const sim::Duration base = medium_.busy_time(c.id);

  // Two overlapping transmissions, the second starting at half the first's
  // airtime: the union is 1.5 airtimes, not 2.
  const sim::TimePoint start = events_.now();
  medium_.transmit(a.id, frame_from(1));
  events_.schedule_at(start + airtime * 0.5,
                      [this, &b] { medium_.transmit(b.id, frame_from(2)); });
  events_.run_until(start + 1_s);
  EXPECT_EQ(medium_.busy_time(c.id) - base, airtime * 1.5);

  // Two disjoint transmissions accumulate both airtimes in full.
  const sim::Duration mid = medium_.busy_time(c.id);
  medium_.transmit(a.id, frame_from(1));
  events_.run_until(events_.now() + 1_s);
  medium_.transmit(b.id, frame_from(2));
  events_.run_until(events_.now() + 1_s);
  EXPECT_EQ(medium_.busy_time(c.id) - mid, airtime * 2.0);
}

TEST_F(MacTest, CbrSamplingTracksChannelLoad) {
  TestNode& a = add({0, 0}, 100.0, 1);
  TestNode& jammer = add({30, 0}, 100.0, 7);
  MacConfig cfg;
  cfg.enabled = true;
  auto mac = make_mac(a, cfg);  // DCC off: sampling still runs (observation)
  const sim::Duration airtime = frame_airtime(jammer, a);
  // Half-duty jamming for one second: every other airtime slot busy.
  const int frames = static_cast<int>((1_s / airtime) / 2);
  for (int i = 0; i < frames; ++i) {
    events_.schedule_at(events_.now() + airtime * static_cast<double>(2 * i),
                        [this, &jammer] { medium_.transmit(jammer.id, frame_from(7)); });
  }
  events_.run_until(events_.now() + 1_s);
  EXPECT_GT(mac->stats().cbr_samples, 0u);
  EXPECT_NEAR(mac->dcc().peak_cbr(), 0.5, 0.15);
  EXPECT_FALSE(mac->dcc().enabled());  // observation only, no pacing
}

TEST_F(MacTest, InjectedDelayAppliesAfterMacQueueing) {
  // The fault-ordering contract from mac.hpp: FaultInjector decisions are
  // drawn inside Medium::transmit at *dequeue* time. A frame stuck behind a
  // busy channel must therefore arrive no earlier than the channel clears —
  // the injected delay stacks on top of the queueing delay instead of
  // running concurrently with it.
  TestNode& a = add({0, 0}, 100.0, 1);
  TestNode& jammer = add({30, 0}, 100.0, 7);
  TestNode& rx = add({50, 0}, 100.0, 2);

  FaultConfig fc;
  fc.max_extra_delay_s = 0.005;  // uniform [0, 5 ms) per frame, always drawn
  medium_.set_fault_injector(std::make_unique<FaultInjector>(fc, sim::Rng{7}));

  MacConfig cfg;
  cfg.enabled = true;
  cfg.max_retries = 1000;  // survive the whole jam in contention
  auto mac = make_mac(a, cfg);

  // Jam continuously for 100 ms, then enqueue: the MAC cannot dequeue
  // before the jam ends.
  const sim::Duration airtime = frame_airtime(jammer, a);
  const sim::TimePoint jam_end = jam(jammer, airtime, 100_ms);
  mac->enqueue(frame_from(1), MacAccessClass::kData);
  settle();

  ASSERT_EQ(mac->stats().transmitted, 1u);
  const auto from_a = received_from(rx, 1);
  ASSERT_EQ(from_a.size(), 1u);
  // Delivery strictly after the jam: had the injector's delay been drawn at
  // enqueue time (t=0), the 5 ms bound would have landed the frame inside
  // the jam window instead.
  EXPECT_GT(from_a.back().second, jam_end);
}

TEST(MacConfigEnv, AirtimeOverheadDefaultsTo80211Envelope) {
  // 24 B MAC header + 2 B QoS + 8 B LLC/SNAP + 4 B FCS.
  EXPECT_EQ(MacConfig{}.airtime_overhead_bytes, 38u);
}

TEST(MacConfigEnv, AirtimeOverheadEnvOverride) {
  ::setenv("VGR_MAC_OVERHEAD_BYTES", "52", 1);
  EXPECT_EQ(MacConfig{}.with_env_overrides().airtime_overhead_bytes, 52u);
  ::setenv("VGR_MAC_OVERHEAD_BYTES", "0", 1);
  EXPECT_EQ(MacConfig{}.with_env_overrides().airtime_overhead_bytes, 0u);
  ::setenv("VGR_MAC_OVERHEAD_BYTES", "38x", 1);  // malformed: whole-token reject
  EXPECT_EQ(MacConfig{}.with_env_overrides().airtime_overhead_bytes, 38u);
  ::unsetenv("VGR_MAC_OVERHEAD_BYTES");
  EXPECT_EQ(MacConfig{}.with_env_overrides().airtime_overhead_bytes, 38u);
}

}  // namespace
}  // namespace vgr::phy

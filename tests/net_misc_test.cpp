#include <gtest/gtest.h>

#include <cmath>

#include "vgr/net/address.hpp"
#include "vgr/net/duplicate_detector.hpp"
#include "vgr/net/position_vector.hpp"

namespace vgr::net {
namespace {

TEST(MacAddress, MasksTo48Bits) {
  const MacAddress a{0xFFFF'1234'5678'9ABCULL};
  EXPECT_EQ(a.bits(), 0x1234'5678'9ABCULL);
}

TEST(MacAddress, Broadcast) {
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_FALSE(MacAddress{0x1}.is_broadcast());
}

TEST(MacAddress, ToStringFormat) {
  EXPECT_EQ(to_string(MacAddress{0x0A0B0C0D0E0FULL}), "0a:0b:0c:0d:0e:0f");
}

TEST(GnAddress, EmbedsStationTypeAndMac) {
  const MacAddress mac{0xCAFEBABEULL};
  const GnAddress a{GnAddress::StationType::kRoadSideUnit, mac};
  EXPECT_EQ(a.station_type(), GnAddress::StationType::kRoadSideUnit);
  EXPECT_EQ(a.mac(), mac);
  EXPECT_FALSE(a.is_unset());
  EXPECT_TRUE(GnAddress{}.is_unset());
}

TEST(GnAddress, RoundTripThroughBits) {
  const GnAddress a{GnAddress::StationType::kPassengerCar, MacAddress{0x42}};
  EXPECT_EQ(GnAddress::from_bits(a.bits()), a);
}

TEST(GnAddress, HashUsableInMaps) {
  std::hash<GnAddress> h;
  const GnAddress a{GnAddress::StationType::kPassengerCar, MacAddress{1}};
  const GnAddress b{GnAddress::StationType::kPassengerCar, MacAddress{2}};
  EXPECT_NE(h(a), h(b));
}

// --- Long position vector extrapolation ---------------------------------

TEST(LongPositionVector, ExtrapolatesAlongHeading) {
  LongPositionVector pv;
  pv.timestamp = sim::TimePoint::at(sim::Duration::seconds(10.0));
  pv.position = {100.0, 0.0};
  pv.speed_mps = 30.0;
  pv.heading_rad = 0.0;  // east
  const geo::Position later = pv.position_at(sim::TimePoint::at(sim::Duration::seconds(13.0)));
  EXPECT_NEAR(later.x, 190.0, 1e-9);
  EXPECT_NEAR(later.y, 0.0, 1e-9);
}

TEST(LongPositionVector, ExtrapolationAtSameInstantIsIdentity) {
  LongPositionVector pv;
  pv.timestamp = sim::TimePoint::at(sim::Duration::seconds(5.0));
  pv.position = {50.0, -2.5};
  pv.speed_mps = 25.0;
  const geo::Position same = pv.position_at(pv.timestamp);
  EXPECT_NEAR(same.x, 50.0, 1e-9);
  EXPECT_NEAR(same.y, -2.5, 1e-9);
}

TEST(LongPositionVector, WestboundExtrapolationMovesNegativeX) {
  LongPositionVector pv;
  pv.position = {1000.0, 2.5};
  pv.speed_mps = 30.0;
  pv.heading_rad = M_PI;
  const geo::Position later = pv.position_at(sim::TimePoint::at(sim::Duration::seconds(2.0)));
  EXPECT_NEAR(later.x, 940.0, 1e-9);
}

TEST(LongPositionVector, VelocityVector) {
  LongPositionVector pv;
  pv.speed_mps = 10.0;
  pv.heading_rad = M_PI / 2.0;
  EXPECT_NEAR(pv.velocity().y, 10.0, 1e-12);
  EXPECT_NEAR(pv.velocity().x, 0.0, 1e-12);
}

// --- Duplicate detector ---------------------------------------------------

Packet make_gbc(std::uint64_t src, SequenceNumber sn) {
  Packet p;
  p.common.type = CommonHeader::HeaderType::kGeoBroadcast;
  LongPositionVector pv;
  pv.address = GnAddress{GnAddress::StationType::kPassengerCar, MacAddress{src}};
  p.extended = GbcHeader{sn, pv, geo::GeoArea::circle({0, 0}, 1.0)};
  return p;
}

TEST(DuplicateDetector, FirstSightIsNotDuplicate) {
  DuplicateDetector d;
  EXPECT_FALSE(d.check_and_record(make_gbc(1, 0)));
  EXPECT_TRUE(d.check_and_record(make_gbc(1, 0)));
}

TEST(DuplicateDetector, DistinctSequenceNumbersAreDistinct) {
  DuplicateDetector d;
  EXPECT_FALSE(d.check_and_record(make_gbc(1, 0)));
  EXPECT_FALSE(d.check_and_record(make_gbc(1, 1)));
}

TEST(DuplicateDetector, SourcesAreIndependent) {
  DuplicateDetector d;
  EXPECT_FALSE(d.check_and_record(make_gbc(1, 5)));
  EXPECT_FALSE(d.check_and_record(make_gbc(2, 5)));
  EXPECT_TRUE(d.is_duplicate(make_gbc(1, 5)));
  EXPECT_TRUE(d.is_duplicate(make_gbc(2, 5)));
}

TEST(DuplicateDetector, QueryDoesNotRecord) {
  DuplicateDetector d;
  EXPECT_FALSE(d.is_duplicate(make_gbc(1, 1)));
  EXPECT_FALSE(d.check_and_record(make_gbc(1, 1)));
}

TEST(DuplicateDetector, BeaconsNeverDuplicate) {
  DuplicateDetector d;
  Packet beacon;
  beacon.common.type = CommonHeader::HeaderType::kBeacon;
  beacon.extended = BeaconHeader{};
  EXPECT_FALSE(d.check_and_record(beacon));
  EXPECT_FALSE(d.check_and_record(beacon));
}

TEST(DuplicateDetector, WindowEvictsOldest) {
  DuplicateDetector d{4};
  for (SequenceNumber sn = 0; sn < 5; ++sn) d.check_and_record(make_gbc(1, sn));
  // sn 0 was evicted by sn 4; the rest are retained.
  EXPECT_FALSE(d.is_duplicate(make_gbc(1, 0)));
  for (SequenceNumber sn = 1; sn < 5; ++sn) {
    EXPECT_TRUE(d.is_duplicate(make_gbc(1, sn))) << sn;
  }
}

TEST(DuplicateDetector, ClearForgetsEverything) {
  DuplicateDetector d;
  d.check_and_record(make_gbc(1, 0));
  d.clear();
  EXPECT_FALSE(d.is_duplicate(make_gbc(1, 0)));
  EXPECT_EQ(d.source_count(), 0u);
}

TEST(DuplicateDetector, RhlChangeDoesNotAffectKey) {
  // The attacker rewrites RHL; the duplicate key must still match — that
  // is precisely how the blockage attack cancels contention timers.
  DuplicateDetector d;
  Packet original = make_gbc(1, 9);
  original.basic.remaining_hop_limit = 10;
  d.check_and_record(original);
  Packet replayed = original;
  replayed.basic.remaining_hop_limit = 1;
  EXPECT_TRUE(d.is_duplicate(replayed));
}

// --- Same-hop retransmission attribution (docs/robustness.md) -------------
//
// The black hole this pins down: a forwarder retries a unicast because the
// receiver's ACK was lost. The receiver's duplicate detector knows the key,
// so without hop attribution the retransmission is indistinguishable from a
// multi-path duplicate — it gets swallowed, the forwarder keeps retrying a
// hop that already has the packet, and finally declares it dead.

TEST(DuplicateDetector, RemembersFirstDeliveryHop) {
  DuplicateDetector d;
  const MacAddress hop{0x42};
  EXPECT_FALSE(d.check_and_record(make_gbc(1, 3), hop));
  // The identical frame from the same link-layer sender is a same-hop
  // retransmission; from anyone else it is an ordinary duplicate.
  EXPECT_TRUE(d.is_same_hop_retransmit(make_gbc(1, 3), hop));
  EXPECT_FALSE(d.is_same_hop_retransmit(make_gbc(1, 3), MacAddress{0x43}));
  // Either way it still *is* a duplicate — the attack semantics are intact.
  EXPECT_TRUE(d.is_duplicate(make_gbc(1, 3)));
}

TEST(DuplicateDetector, HoplessRecordingNeverMatchesSameHop) {
  // Keys recorded through the legacy hop-less overload (and unknown keys)
  // must never be mistaken for a same-hop retransmission.
  DuplicateDetector d;
  d.check_and_record(make_gbc(1, 4));
  EXPECT_TRUE(d.is_duplicate(make_gbc(1, 4)));
  EXPECT_FALSE(d.is_same_hop_retransmit(make_gbc(1, 4), MacAddress{}));
  EXPECT_FALSE(d.is_same_hop_retransmit(make_gbc(1, 4), MacAddress{0x42}));
  EXPECT_FALSE(d.is_same_hop_retransmit(make_gbc(2, 4), MacAddress{0x42}));  // unknown key
}

TEST(DuplicateDetector, SecondHopDoesNotOverwriteAttribution) {
  DuplicateDetector d;
  const MacAddress first{0x11};
  const MacAddress second{0x22};
  d.check_and_record(make_gbc(1, 5), first);
  EXPECT_TRUE(d.check_and_record(make_gbc(1, 5), second));  // duplicate
  EXPECT_TRUE(d.is_same_hop_retransmit(make_gbc(1, 5), first));
  EXPECT_FALSE(d.is_same_hop_retransmit(make_gbc(1, 5), second));
}

TEST(DuplicateDetector, BeaconsAreNeverSameHopRetransmits) {
  DuplicateDetector d;
  Packet beacon;
  beacon.common.type = CommonHeader::HeaderType::kBeacon;
  beacon.extended = BeaconHeader{};
  d.check_and_record(beacon, MacAddress{0x7});
  EXPECT_FALSE(d.is_same_hop_retransmit(beacon, MacAddress{0x7}));
}

}  // namespace
}  // namespace vgr::net

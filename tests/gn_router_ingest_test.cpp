// Hardened-ingest tests: the router must survive arbitrarily damaged wire
// images (every truncation, every single-byte corruption) and semantically
// absurd but well-formed packets, counting each rejection under exactly one
// cause and touching no router state on the way out.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>

#include "vgr/gn/router.hpp"
#include "vgr/net/codec.hpp"
#include "vgr/security/authority.hpp"

namespace vgr::gn {
namespace {

class RouterIngestTest : public ::testing::Test {
 protected:
  RouterIngestTest() : medium_{events_, phy::AccessTechnology::kDsrc} {
    const net::GnAddress self{net::GnAddress::StationType::kPassengerCar, net::MacAddress{0x10}};
    router_ = std::make_unique<Router>(events_, medium_, security::Signer{ca_.enroll(self)},
                                       ca_.trust_store(), mobility_, RouterConfig::for_technology(
                                       phy::AccessTechnology::kDsrc),
                                       486.0, sim::Rng{123});
    router_->set_delivery_handler([this](const Router::Delivery&) { ++deliveries_; });
    peer_ = net::GnAddress{net::GnAddress::StationType::kPassengerCar, net::MacAddress{0x20}};
    peer_signer_ = std::make_unique<security::Signer>(ca_.enroll(peer_));
  }

  net::LongPositionVector peer_pv() const {
    net::LongPositionVector pv;
    pv.address = peer_;
    pv.timestamp = events_.now();
    pv.position = {50.0, 0.0};
    pv.speed_mps = 20.0;
    pv.heading_rad = 0.0;
    return pv;
  }

  net::Packet valid_gbc(net::SequenceNumber sn = 1) const {
    net::Packet p;
    p.basic.remaining_hop_limit = 5;
    p.basic.lifetime = sim::Duration::seconds(3.0);
    p.common.type = net::CommonHeader::HeaderType::kGeoBroadcast;
    p.common.max_hop_limit = 10;
    p.extended = net::GbcHeader{sn, peer_pv(), geo::GeoArea::circle({3000.0, 0.0}, 50.0)};
    p.payload = {1, 2, 3, 4, 5, 6, 7, 8};
    return p;
  }

  /// Signed frame whose wire image (`raw`) the tests damage at will.
  phy::Frame frame_for(const net::Packet& p) const {
    phy::Frame f;
    f.src = peer_.mac();
    f.msg = security::share(security::SecuredMessage::sign(p, *peer_signer_));
    return f;
  }

  /// Sum of the per-cause ingest drop counters.
  std::uint64_t ingest_drops() const {
    const RouterStats& s = router_->stats();
    return s.ingest_decode_failures + s.ingest_invalid_pv + s.ingest_invalid_rhl +
           s.ingest_invalid_lifetime + s.ingest_oversized_payload;
  }

  sim::EventQueue events_;
  phy::Medium medium_;
  security::CertificateAuthority ca_;
  StaticMobility mobility_{geo::Position{0.0, 0.0}};
  std::unique_ptr<Router> router_;
  net::GnAddress peer_{};
  std::unique_ptr<security::Signer> peer_signer_;
  int deliveries_{0};
};

TEST_F(RouterIngestTest, ValidFrameUpdatesLocationTable) {
  router_->ingest(frame_for(valid_gbc()));
  EXPECT_EQ(router_->location_table().raw_size(), 1u);
  EXPECT_EQ(ingest_drops(), 0u);
  EXPECT_EQ(router_->stats().auth_failures, 0u);
}

TEST_F(RouterIngestTest, EveryTruncatedPrefixIsCountedAndDropped) {
  const net::Packet p = valid_gbc();
  const net::Bytes wire = net::Codec::encode(p);
  phy::Frame f = frame_for(p);
  // Length 0 is excluded: an empty `raw` means "clean delivery" by the
  // Frame contract, not a zero-length wire image.
  for (std::size_t len = 1; len < wire.size(); ++len) {
    f.raw.assign(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(len));
    const std::uint64_t before = router_->stats().ingest_decode_failures;
    router_->ingest(f);
    ASSERT_EQ(router_->stats().ingest_decode_failures, before + 1)
        << "prefix of length " << len << " was not rejected at decode";
    ASSERT_EQ(router_->location_table().raw_size(), 0u)
        << "truncated frame of length " << len << " mutated the location table";
  }
  EXPECT_EQ(deliveries_, 0);
}

TEST_F(RouterIngestTest, EverySingleByteCorruptionIsSafe) {
  const net::Packet p = valid_gbc();
  const net::Bytes wire = net::Codec::encode(p);
  phy::Frame f = frame_for(p);

  std::uint64_t rejected = 0, accepted = 0;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    f.raw = wire;
    f.raw[i] ^= 0xFF;
    const std::uint64_t drops_before = ingest_drops();
    const std::uint64_t auth_before = router_->stats().auth_failures;
    const std::size_t table_before = router_->location_table().raw_size();
    router_->ingest(f);
    const std::uint64_t drop_delta = ingest_drops() - drops_before;
    const std::uint64_t auth_delta = router_->stats().auth_failures - auth_before;
    // Partition: at most one rejection cause fires per frame.
    ASSERT_LE(drop_delta + auth_delta, 1u) << "byte " << i << " tripped multiple counters";
    if (drop_delta == 1) {
      // Rejected before any state was touched.
      ASSERT_EQ(router_->location_table().raw_size(), table_before)
          << "rejected frame (byte " << i << ") mutated the location table";
      ++rejected;
    } else if (auth_delta == 1) {
      ++rejected;
    } else {
      // Decoded, validated and verified despite the flip: only possible for
      // bytes outside the signed portion (the mutable basic header — the
      // very gap the paper's RHL attack exploits).
      ++accepted;
    }
  }
  // The sweep must exercise all three outcomes: undecodable damage, signed-
  // portion damage (auth), and survivable basic-header damage.
  EXPECT_GT(router_->stats().ingest_decode_failures, 0u);
  EXPECT_GT(router_->stats().auth_failures, 0u);
  EXPECT_GT(accepted, 0u);
  EXPECT_EQ(rejected + accepted, wire.size());
}

TEST_F(RouterIngestTest, CorruptedRhlIsRejectedBySemanticCheck) {
  // RHL > MHL cannot happen on an honest channel; the basic header is
  // outside the signature, so this must be caught semantically.
  net::Packet p = valid_gbc();
  phy::Frame f = frame_for(p);
  p.basic.remaining_hop_limit = 200;  // > max_hop_limit (10)
  f.raw = net::Codec::encode(p);
  router_->ingest(f);
  EXPECT_EQ(router_->stats().ingest_invalid_rhl, 1u);
  EXPECT_EQ(router_->location_table().raw_size(), 0u);

  p.basic.remaining_hop_limit = 0;  // should have died a hop earlier
  f.raw = net::Codec::encode(p);
  router_->ingest(f);
  EXPECT_EQ(router_->stats().ingest_invalid_rhl, 2u);
}

TEST_F(RouterIngestTest, NonPositiveLifetimeIsRejected) {
  net::Packet p = valid_gbc();
  phy::Frame f = frame_for(p);
  p.basic.lifetime = sim::Duration::zero();
  f.raw = net::Codec::encode(p);
  router_->ingest(f);
  EXPECT_EQ(router_->stats().ingest_invalid_lifetime, 1u);
  EXPECT_EQ(router_->location_table().raw_size(), 0u);
  EXPECT_EQ(deliveries_, 0);
}

TEST_F(RouterIngestTest, StructuredNonFinitePvIsRejected) {
  // The structured path (no raw image) runs the same semantic validation:
  // an in-process attacker handing the router a NaN position must not
  // poison the location table or the forwarding geometry.
  net::Packet p = valid_gbc();
  net::LongPositionVector pv = peer_pv();
  pv.position.x = std::numeric_limits<double>::quiet_NaN();
  p.extended = net::GbcHeader{1, pv, geo::GeoArea::circle({3000.0, 0.0}, 50.0)};
  router_->ingest(frame_for(p));
  EXPECT_EQ(router_->stats().ingest_invalid_pv, 1u);
  EXPECT_EQ(router_->location_table().raw_size(), 0u);
}

TEST_F(RouterIngestTest, StructuredOversizedPayloadIsRejected) {
  net::Packet p = valid_gbc();
  p.payload = net::Bytes(net::kMaxPayloadBytes + 1, 0xAA);
  router_->ingest(frame_for(p));
  EXPECT_EQ(router_->stats().ingest_oversized_payload, 1u);
  EXPECT_EQ(router_->location_table().raw_size(), 0u);
}

TEST_F(RouterIngestTest, UndecodableGarbageNeverReachesHandlers) {
  phy::Frame f = frame_for(valid_gbc());
  f.raw = net::Bytes{0xDE, 0xAD, 0xBE, 0xEF};
  for (int i = 0; i < 10; ++i) router_->ingest(f);
  EXPECT_EQ(router_->stats().ingest_decode_failures, 10u);
  EXPECT_EQ(router_->location_table().raw_size(), 0u);
  EXPECT_EQ(deliveries_, 0);
}

}  // namespace
}  // namespace vgr::gn

#include <gtest/gtest.h>

#include <cmath>

#include "vgr/traffic/idm.hpp"
#include "vgr/traffic/road.hpp"
#include "vgr/traffic/traffic_sim.hpp"
#include "vgr/traffic/vehicle.hpp"

namespace vgr::traffic {
namespace {

using namespace vgr::sim::literals;

// --- IDM -------------------------------------------------------------------

TEST(Idm, FreeRoadAcceleratesFromRest) {
  const IdmParameters p;
  EXPECT_DOUBLE_EQ(idm_acceleration(p, 0.0, std::nullopt), p.max_acceleration_mps2);
}

TEST(Idm, FreeRoadZeroAccelAtDesiredSpeed) {
  const IdmParameters p;
  EXPECT_NEAR(idm_acceleration(p, p.desired_velocity_mps, std::nullopt), 0.0, 1e-12);
}

TEST(Idm, FreeRoadDeceleratesAboveDesiredSpeed) {
  const IdmParameters p;
  EXPECT_LT(idm_acceleration(p, 40.0, std::nullopt), 0.0);
}

TEST(Idm, TightGapForcesBraking) {
  const IdmParameters p;
  EXPECT_LT(idm_acceleration(p, 30.0, Leader{5.0, 0.0}), -3.0);
}

TEST(Idm, LargeGapApproachesFreeAcceleration) {
  const IdmParameters p;
  const double free = idm_acceleration(p, 20.0, std::nullopt);
  const double follow = idm_acceleration(p, 20.0, Leader{2000.0, 20.0});
  EXPECT_NEAR(follow, free, 0.01);
}

TEST(Idm, ClosingSpeedIncreasesBraking) {
  const IdmParameters p;
  const double same_speed = idm_acceleration(p, 25.0, Leader{50.0, 25.0});
  const double closing = idm_acceleration(p, 25.0, Leader{50.0, 10.0});
  EXPECT_LT(closing, same_speed);
}

TEST(Idm, AccelerationMonotoneInGap) {
  const IdmParameters p;
  double prev = -1e9;
  for (double gap = 3.0; gap < 300.0; gap += 5.0) {
    const double a = idm_acceleration(p, 25.0, Leader{gap, 25.0});
    EXPECT_GE(a, prev);
    prev = a;
  }
}

// Equilibrium property: following at the IDM equilibrium gap produces ~zero
// acceleration, for several speeds.
class IdmEquilibrium : public ::testing::TestWithParam<double> {};

TEST_P(IdmEquilibrium, EquilibriumGapGivesZeroAcceleration) {
  const IdmParameters p;
  const double v = GetParam();
  // Equilibrium spacing for same-speed follower: s* = s0 + v*T, and
  // a = a_max [1 - (v/v0)^4 - (s*/s)^2] = 0 => s = s*/sqrt(1-(v/v0)^4).
  const double s_star = p.minimum_distance_m + v * p.safe_time_headway_s;
  const double s = s_star / std::sqrt(1.0 - std::pow(v / p.desired_velocity_mps, 4.0));
  EXPECT_NEAR(idm_acceleration(p, v, Leader{s, v}), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Speeds, IdmEquilibrium, ::testing::Values(5.0, 10.0, 20.0, 25.0));

// --- Vehicle ----------------------------------------------------------------

TEST(Vehicle, AdvanceIntegratesBallistically) {
  Vehicle v{1, Direction::kEastbound, 0, 0.0, 10.0};
  v.advance(2.0, 1.0);  // accelerate 2 m/s^2 for 1 s
  EXPECT_DOUBLE_EQ(v.speed(), 12.0);
  EXPECT_DOUBLE_EQ(v.x(), 11.0);  // average speed 11
}

TEST(Vehicle, SpeedClampsAtZero) {
  Vehicle v{1, Direction::kEastbound, 0, 0.0, 1.0};
  v.advance(-10.0, 1.0);
  EXPECT_DOUBLE_EQ(v.speed(), 0.0);
  EXPECT_GT(v.x(), 0.0);  // rolled a little before stopping
}

TEST(Vehicle, WestboundMovesNegativeX) {
  Vehicle v{1, Direction::kWestbound, 0, 1000.0, 20.0};
  v.advance(0.0, 1.0);
  EXPECT_DOUBLE_EQ(v.x(), 980.0);
}

TEST(Vehicle, ProgressMeasuresFromEntrance) {
  const RoadSegment road{4000.0, 2, true};
  Vehicle east{1, Direction::kEastbound, 0, 1000.0, 0.0};
  Vehicle west{2, Direction::kWestbound, 0, 1000.0, 0.0};
  EXPECT_DOUBLE_EQ(east.progress(road), 1000.0);
  EXPECT_DOUBLE_EQ(west.progress(road), 3000.0);
}

TEST(Vehicle, ForcedAccelerationOverride) {
  Vehicle v{1, Direction::kEastbound, 0, 0.0, 10.0};
  v.set_forced_acceleration(-2.0);
  EXPECT_EQ(v.forced_acceleration(), -2.0);
  v.set_forced_acceleration(std::nullopt);
  EXPECT_FALSE(v.forced_acceleration().has_value());
}

// --- RoadSegment -------------------------------------------------------------

TEST(RoadSegment, LaneGeometry) {
  const RoadSegment road{4000.0, 2, true, 5.0};
  EXPECT_DOUBLE_EQ(road.lane_center_y(Direction::kEastbound, 0), 2.5);
  EXPECT_DOUBLE_EQ(road.lane_center_y(Direction::kEastbound, 1), 7.5);
  EXPECT_DOUBLE_EQ(road.lane_center_y(Direction::kWestbound, 0), -2.5);
  EXPECT_DOUBLE_EQ(road.lane_center_y(Direction::kWestbound, 1), -7.5);
}

TEST(RoadSegment, EntrancesAndExits) {
  const RoadSegment road{4000.0, 2, true};
  EXPECT_DOUBLE_EQ(road.entrance_x(Direction::kEastbound), 0.0);
  EXPECT_DOUBLE_EQ(road.entrance_x(Direction::kWestbound), 4000.0);
  EXPECT_TRUE(road.past_exit(Direction::kEastbound, 4001.0));
  EXPECT_FALSE(road.past_exit(Direction::kEastbound, 3999.0));
  EXPECT_TRUE(road.past_exit(Direction::kWestbound, -1.0));
}

TEST(RoadSegment, PositionOf) {
  const RoadSegment road{4000.0, 2, true};
  const geo::Position p = road.position_of(Direction::kWestbound, 1, 1234.0);
  EXPECT_DOUBLE_EQ(p.x, 1234.0);
  EXPECT_DOUBLE_EQ(p.y, -7.5);
}

// --- TrafficSimulation --------------------------------------------------------

TrafficSimulation::Config sim_config(double prefill = 30.0) {
  TrafficSimulation::Config cfg;
  cfg.prefill_spacing_m = prefill;
  return cfg;
}

TEST(TrafficSim, PrefillPopulatesAllLanes) {
  TrafficSimulation sim{RoadSegment{4000.0, 2, false}, sim_config(30.0)};
  sim.prefill();
  // 4000/30 + 1 = 134 per lane, 2 lanes, one direction.
  EXPECT_EQ(sim.vehicle_count(), 268u);
  EXPECT_EQ(sim.count(Direction::kEastbound), 268u);
  EXPECT_EQ(sim.count(Direction::kWestbound), 0u);
}

TEST(TrafficSim, PrefillTwoWayDoubles) {
  TrafficSimulation sim{RoadSegment{4000.0, 2, true}, sim_config(30.0)};
  sim.prefill();
  EXPECT_EQ(sim.count(Direction::kEastbound), sim.count(Direction::kWestbound));
  EXPECT_EQ(sim.vehicle_count(), 536u);
}

TEST(TrafficSim, EmptyPrefillStartsEmpty) {
  TrafficSimulation sim{RoadSegment{4000.0, 2, false}, sim_config(0.0)};
  sim.prefill();
  EXPECT_EQ(sim.vehicle_count(), 0u);
}

TEST(TrafficSim, EntriesFillAnEmptyRoad) {
  TrafficSimulation sim{RoadSegment{4000.0, 2, false}, sim_config(0.0)};
  for (int i = 0; i < 100; ++i) sim.tick();  // 10 s
  // Entry once the previous vehicle clears 30 m at 30 m/s: ~1/s per lane.
  EXPECT_GE(sim.vehicle_count(), 16u);
  EXPECT_LE(sim.vehicle_count(), 24u);
}

TEST(TrafficSim, EntryDisableStopsInflow) {
  TrafficSimulation sim{RoadSegment{4000.0, 2, false}, sim_config(0.0)};
  sim.set_entry_enabled(Direction::kEastbound, false);
  for (int i = 0; i < 100; ++i) sim.tick();
  EXPECT_EQ(sim.vehicle_count(), 0u);
}

TEST(TrafficSim, VehiclesExitAtSegmentEnd) {
  TrafficSimulation sim{RoadSegment{300.0, 1, false}, sim_config(100.0)};
  sim.set_entry_enabled(Direction::kEastbound, false);
  sim.prefill();
  const auto initial = sim.vehicle_count();
  int exits = 0;
  sim.set_on_exit([&](Vehicle&) { ++exits; });
  for (int i = 0; i < 200; ++i) sim.tick();  // 20 s at 30 m/s clears 300 m
  EXPECT_EQ(sim.vehicle_count(), 0u);
  EXPECT_EQ(exits, static_cast<int>(initial));
}

TEST(TrafficSim, SteadyFlowIsCollisionFree) {
  TrafficSimulation sim{RoadSegment{2000.0, 2, true}, sim_config(30.0)};
  sim.prefill();
  for (int i = 0; i < 600; ++i) sim.tick();  // 60 s
  EXPECT_EQ(sim.collisions(), 0u);
}

TEST(TrafficSim, HazardQueuesTrafficWithoutCollisions) {
  TrafficSimulation sim{RoadSegment{2000.0, 1, false}, sim_config(60.0)};
  sim.prefill();
  sim.set_hazard(Direction::kEastbound, 1500.0);
  for (int i = 0; i < 1200; ++i) sim.tick();  // 120 s
  EXPECT_EQ(sim.collisions(), 0u);
  // Everything behind the hazard is stopped or crawling; nobody passed it.
  for (const Vehicle* v : const_cast<const TrafficSimulation&>(sim).vehicles()) {
    EXPECT_LE(v->x(), 1500.0 + 1.0);
  }
  EXPECT_GT(sim.vehicle_count(), 10u);  // the queue holds vehicles on road
}

TEST(TrafficSim, HazardClearRestoresFlow) {
  TrafficSimulation sim{RoadSegment{2000.0, 1, false}, sim_config(100.0)};
  sim.prefill();
  sim.set_hazard(Direction::kEastbound, 1000.0);
  for (int i = 0; i < 300; ++i) sim.tick();
  sim.set_hazard(Direction::kEastbound, std::nullopt);
  for (int i = 0; i < 300; ++i) sim.tick();
  // The front vehicle moves again past the cleared hazard point.
  double max_x = 0.0;
  for (const Vehicle* v : const_cast<const TrafficSimulation&>(sim).vehicles()) {
    max_x = std::max(max_x, v->x());
  }
  EXPECT_GT(max_x, 1000.0);
}

TEST(TrafficSim, SpawnHookSeesEveryVehicle) {
  TrafficSimulation sim{RoadSegment{1000.0, 2, false}, sim_config(0.0)};
  int spawned = 0;
  sim.set_on_spawn([&](Vehicle&) { ++spawned; });
  for (int i = 0; i < 50; ++i) sim.tick();
  EXPECT_EQ(static_cast<std::size_t>(spawned), sim.vehicle_count());
}

TEST(TrafficSim, FindLocatesVehicleById) {
  TrafficSimulation sim{RoadSegment{1000.0, 1, false}, sim_config(0.0)};
  Vehicle& v = sim.add_vehicle(Direction::kEastbound, 0, 123.0, 10.0);
  EXPECT_EQ(sim.find(v.id()), &v);
  EXPECT_EQ(sim.find(9999), nullptr);
}

TEST(TrafficSim, RunOnAdvancesWithEventQueue) {
  TrafficSimulation sim{RoadSegment{1000.0, 1, false}, sim_config(0.0)};
  sim::EventQueue events;
  sim.run_on(events, sim::TimePoint::at(5_s));
  events.run_until(sim::TimePoint::at(5_s));
  EXPECT_EQ(sim.ticks(), 50u);
}

TEST(TrafficSim, FollowerNeverOvertakesLeaderInLane) {
  TrafficSimulation sim{RoadSegment{3000.0, 1, false}, sim_config(0.0)};
  Vehicle& lead = sim.add_vehicle(Direction::kEastbound, 0, 200.0, 5.0);   // slow leader
  Vehicle& tail = sim.add_vehicle(Direction::kEastbound, 0, 100.0, 30.0);  // fast follower
  sim.set_entry_enabled(Direction::kEastbound, false);
  for (int i = 0; i < 500; ++i) {
    sim.tick();
    EXPECT_LT(tail.x(), lead.x()) << "tick " << i;
  }
  EXPECT_EQ(sim.collisions(), 0u);
}

}  // namespace
}  // namespace vgr::traffic

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "vgr/gn/router.hpp"
#include "vgr/security/authority.hpp"

namespace vgr::gn {
namespace {

using namespace vgr::sim::literals;

constexpr double kRange = 486.0;

/// A static station with a router and a delivery log, on a shared medium.
struct Node {
  std::unique_ptr<StaticMobility> mobility;
  std::unique_ptr<Router> router;
  std::vector<Router::Delivery> deliveries;
};

class RouterTest : public ::testing::Test {
 protected:
  RouterTest() : medium_{events_, phy::AccessTechnology::kDsrc} {}

  Node& add_node(double x, double range = kRange, RouterConfig cfg = default_config()) {
    nodes_.push_back(std::make_unique<Node>());
    Node& n = *nodes_.back();
    n.mobility = std::make_unique<StaticMobility>(geo::Position{x, 0.0});
    const net::GnAddress addr{net::GnAddress::StationType::kPassengerCar,
                              net::MacAddress{0x100 + nodes_.size()}};
    n.router = std::make_unique<Router>(events_, medium_, security::Signer{ca_.enroll(addr)},
                                        ca_.trust_store(), *n.mobility, cfg, range,
                                        rng_.fork());
    n.router->set_delivery_handler(
        [&n](const Router::Delivery& d) { n.deliveries.push_back(d); });
    return n;
  }

  static RouterConfig default_config() {
    RouterConfig cfg = RouterConfig::for_technology(phy::AccessTechnology::kDsrc);
    cfg.cbf_dist_max_m = kRange;
    return cfg;
  }

  void start_all() {
    for (auto& n : nodes_) n->router->start();
  }

  void exchange_beacons() {
    for (auto& n : nodes_) n->router->send_beacon_now();
    run_for(100_ms);
  }

  void run_for(sim::Duration d) { events_.run_until(events_.now() + d); }

  /// Raw injector for hand-crafted (possibly invalid) frames.
  phy::RadioId add_injector(double x, double range) {
    phy::Medium::NodeConfig cfg;
    cfg.mac = net::MacAddress{0xBADBAD};
    cfg.position = [x] { return geo::Position{x, 0.0}; };
    cfg.tx_range_m = range;
    cfg.promiscuous = true;
    return medium_.add_node(std::move(cfg), [](const phy::Frame&, phy::RadioId) {});
  }

  sim::EventQueue events_;
  phy::Medium medium_;
  security::CertificateAuthority ca_;
  sim::Rng rng_{99};
  std::vector<std::unique_ptr<Node>> nodes_;
};

TEST_F(RouterTest, BeaconsPopulateNeighborTables) {
  Node& a = add_node(0.0);
  Node& b = add_node(400.0);
  Node& c = add_node(850.0);  // out of a's range, in b's range
  exchange_beacons();

  const auto now = events_.now();
  EXPECT_TRUE(a.router->location_table().find(b.router->address(), now).has_value());
  EXPECT_FALSE(a.router->location_table().find(c.router->address(), now).has_value());
  EXPECT_TRUE(b.router->location_table().find(a.router->address(), now).has_value());
  EXPECT_TRUE(b.router->location_table().find(c.router->address(), now).has_value());
  EXPECT_TRUE(c.router->location_table().find(b.router->address(), now).has_value());
  EXPECT_TRUE(a.router->location_table()
                  .find(b.router->address(), now)
                  ->is_neighbor);
}

TEST_F(RouterTest, PeriodicBeaconingRunsAfterStart) {
  Node& a = add_node(0.0);
  Node& b = add_node(100.0);
  start_all();
  run_for(10_s);
  // ~3 s period + jitter: expect 2-4 beacons in 10 s, received by the peer.
  EXPECT_GE(a.router->stats().beacons_sent, 2u);
  EXPECT_LE(a.router->stats().beacons_sent, 5u);
  EXPECT_GE(b.router->stats().beacons_received, 2u);
}

TEST_F(RouterTest, GeoBroadcastFloodsDestinationArea) {
  // Chain of five nodes inside the area; each hop ~400 m.
  for (int i = 0; i < 5; ++i) add_node(i * 400.0);
  exchange_beacons();

  const auto area = geo::GeoArea::rectangle({800.0, 0.0}, 900.0, 50.0);
  nodes_[0]->router->send_geo_broadcast(area, {1, 2, 3});
  run_for(2_s);

  for (int i = 1; i < 5; ++i) {
    EXPECT_EQ(nodes_[static_cast<std::size_t>(i)]->deliveries.size(), 1u) << "node " << i;
  }
}

TEST_F(RouterTest, CbfSuppressesRedundantRebroadcasts) {
  // Dense cluster: 10 nodes all in mutual range. One broadcast + a single
  // contention winner should cover everyone; most buffers are suppressed.
  for (int i = 0; i < 10; ++i) add_node(i * 20.0);
  exchange_beacons();
  const auto area = geo::GeoArea::rectangle({100.0, 0.0}, 300.0, 50.0);
  nodes_[0]->router->send_geo_broadcast(area, {7});
  run_for(2_s);

  std::uint64_t rebroadcasts = 0, suppressed = 0;
  for (auto& n : nodes_) {
    rebroadcasts += n->router->stats().cbf_rebroadcasts;
    suppressed += n->router->stats().cbf_suppressed;
  }
  EXPECT_GE(rebroadcasts, 1u);
  EXPECT_LE(rebroadcasts, 3u);
  EXPECT_GE(suppressed, 6u);
  for (int i = 1; i < 10; ++i) {
    EXPECT_EQ(nodes_[static_cast<std::size_t>(i)]->deliveries.size(), 1u);
  }
}

TEST_F(RouterTest, FarthestReceiverWinsContention) {
  Node& src = add_node(0.0);
  Node& near = add_node(100.0);
  Node& far = add_node(450.0);
  exchange_beacons();
  src.router->send_geo_broadcast(geo::GeoArea::rectangle({250.0, 0.0}, 500.0, 50.0), {1});
  run_for(2_s);
  EXPECT_EQ(far.router->stats().cbf_rebroadcasts, 1u);
  EXPECT_EQ(near.router->stats().cbf_rebroadcasts, 0u);
  EXPECT_EQ(near.router->stats().cbf_suppressed, 1u);
}

TEST_F(RouterTest, GreedyForwardingReachesRemoteArea) {
  // Relay chain toward a destination area around x = 2000; hops ~400 m.
  for (int i = 0; i <= 5; ++i) add_node(i * 400.0);
  exchange_beacons();

  const auto area = geo::GeoArea::circle({2000.0, 0.0}, 60.0);
  nodes_[0]->router->send_geo_broadcast(area, {'h', 'i'});
  run_for(2_s);

  EXPECT_EQ(nodes_[5]->deliveries.size(), 1u);  // node at 2000, inside area
  EXPECT_TRUE(nodes_[2]->deliveries.empty());   // relay outside the area
  std::uint64_t unicasts = 0;
  for (auto& n : nodes_) unicasts += n->router->stats().gf_unicast_forwards;
  EXPECT_GE(unicasts, 4u);  // source + relays each picked a next hop
}

TEST_F(RouterTest, GfBuffersWhenNoNeighborOffersProgress) {
  Node& a = add_node(0.0);
  exchange_beacons();
  a.router->send_geo_broadcast(geo::GeoArea::circle({2000.0, 0.0}, 60.0), {1});
  run_for(100_ms);
  EXPECT_EQ(a.router->stats().gf_buffered, 1u);

  // A neighbour appearing later triggers the buffered retry.
  Node& b = add_node(400.0);
  b.router->send_beacon_now();
  run_for(2_s);
  EXPECT_EQ(a.router->stats().gf_unicast_forwards, 1u);
}

TEST_F(RouterTest, GfBroadcastFallbackWhenConfigured) {
  RouterConfig cfg = default_config();
  cfg.gf_fallback = GfFallback::kBroadcast;
  Node& a = add_node(0.0, kRange, cfg);
  exchange_beacons();
  a.router->send_geo_broadcast(geo::GeoArea::circle({2000.0, 0.0}, 60.0), {1});
  run_for(100_ms);
  EXPECT_EQ(a.router->stats().gf_broadcast_fallbacks, 1u);
}

TEST_F(RouterTest, GeoUnicastDeliversOnlyToDestination) {
  Node& a = add_node(0.0);
  Node& b = add_node(400.0);
  Node& c = add_node(800.0);
  exchange_beacons();
  a.router->send_geo_unicast(c.router->address(), {800.0, 0.0}, {'u'});
  run_for(2_s);
  EXPECT_EQ(c.deliveries.size(), 1u);
  EXPECT_TRUE(b.deliveries.empty());  // b only relayed
  EXPECT_GE(b.router->stats().gf_unicast_forwards, 1u);
}

TEST_F(RouterTest, HopLimitExhaustionStopsForwarding) {
  for (int i = 0; i <= 5; ++i) add_node(i * 400.0);
  exchange_beacons();
  // Two hops of budget cannot cross five 400 m hops.
  nodes_[0]->router->send_geo_broadcast(geo::GeoArea::circle({2000.0, 0.0}, 60.0), {1},
                                        /*hop_limit=*/2);
  run_for(2_s);
  EXPECT_TRUE(nodes_[5]->deliveries.empty());
  std::uint64_t exhausted = 0;
  for (auto& n : nodes_) exhausted += n->router->stats().rhl_exhausted;
  EXPECT_GE(exhausted, 1u);
}

TEST_F(RouterTest, DuplicateGbcIsNotDeliveredTwice) {
  Node& a = add_node(0.0);
  Node& b = add_node(100.0);
  Node& c = add_node(200.0);
  exchange_beacons();
  a.router->send_geo_broadcast(geo::GeoArea::rectangle({100.0, 0.0}, 300.0, 50.0), {1});
  run_for(2_s);
  // b hears the packet from a and again from c's rebroadcast (or vice
  // versa) but delivers exactly once.
  EXPECT_EQ(b.deliveries.size(), 1u);
  EXPECT_EQ(c.deliveries.size(), 1u);
}

TEST_F(RouterTest, ForgedFrameFailsAuthentication) {
  Node& a = add_node(0.0);
  const auto injector = add_injector(50.0, 200.0);

  net::Packet p;
  p.common.type = net::CommonHeader::HeaderType::kBeacon;
  net::LongPositionVector pv;
  pv.address = net::GnAddress{net::GnAddress::StationType::kPassengerCar, net::MacAddress{0x666}};
  pv.timestamp = events_.now();
  pv.position = {60.0, 0.0};
  p.extended = net::BeaconHeader{pv};

  phy::Frame frame;
  frame.src = net::MacAddress{0x666};
  frame.msg = security::share(security::SecuredMessage::from_parts(p, {}, 0xFFFF));  // garbage tag, no cert
  medium_.transmit(injector, frame);
  run_for(100_ms);

  EXPECT_EQ(a.router->stats().auth_failures, 1u);
  EXPECT_FALSE(a.router->location_table().find(pv.address, events_.now()).has_value());
}

TEST_F(RouterTest, StaleBeaconIsRejected) {
  Node& a = add_node(0.0);
  Node& b = add_node(100.0);
  run_for(10_s);  // advance time, no beacons yet

  // Capture-and-delay: a beacon whose PV timestamp is 5 s old fails the
  // freshness check even though its signature is valid.
  net::Packet p;
  p.common.type = net::CommonHeader::HeaderType::kBeacon;
  auto pv = b.router->self_pv();
  pv.timestamp = events_.now() - 5_s;
  p.extended = net::BeaconHeader{pv};
  const auto injector = add_injector(50.0, 200.0);
  phy::Frame frame;
  frame.src = b.router->mac();
  const auto identity_signed =
      security::SecuredMessage::sign(p, security::Signer{ca_.enroll(pv.address)});
  frame.msg = security::share(identity_signed);
  medium_.transmit(injector, frame);
  run_for(100_ms);

  EXPECT_EQ(a.router->stats().stale_pv_drops, 1u);
}

TEST_F(RouterTest, ShutdownStopsAllActivity) {
  Node& a = add_node(0.0);
  Node& b = add_node(100.0);
  start_all();
  run_for(5_s);
  const auto sent_before = a.router->stats().beacons_sent;
  a.router->shutdown();
  run_for(10_s);
  EXPECT_EQ(a.router->stats().beacons_sent, sent_before);
  (void)b;
}

TEST_F(RouterTest, SelfPvReflectsMobility) {
  Node& a = add_node(123.0);
  const auto pv = a.router->self_pv();
  EXPECT_DOUBLE_EQ(pv.position.x, 123.0);
  EXPECT_EQ(pv.address, a.router->address());
}

TEST_F(RouterTest, OwnReplayedPacketIsIgnored) {
  Node& a = add_node(0.0);
  Node& b = add_node(100.0);
  exchange_beacons();
  a.router->send_geo_broadcast(geo::GeoArea::rectangle({50.0, 0.0}, 200.0, 50.0), {1});
  run_for(2_s);
  // b's CBF rebroadcast reached a; a must not re-deliver or re-forward.
  EXPECT_EQ(a.deliveries.size(), 0u);  // originator does not self-deliver
  EXPECT_EQ(b.deliveries.size(), 1u);
}

TEST_F(RouterTest, ForwardingDoesNotMutateSharedFrame) {
  // Aliasing regression: the medium delivers ONE shared frame object to
  // every receiver. The forwarder's per-hop RHL rewrite must happen on a
  // private copy — a later delivery of the same transmission (the watcher,
  // placed farther from the source than the forwarder) has to observe the
  // original hop count and the original, still-valid signature.
  Node& a = add_node(0.0);
  Node& b = add_node(400.0);
  add_node(850.0);  // inside the destination area, reachable only via b
  exchange_beacons();

  struct Seen {
    net::MacAddress src;
    std::uint8_t rhl;
    std::uint64_t sig;
    bool verified;
  };
  std::vector<Seen> seen;
  phy::Medium::NodeConfig wcfg;
  wcfg.mac = net::MacAddress{0xEEE};
  wcfg.position = [] { return geo::Position{480.0, 0.0}; };
  wcfg.tx_range_m = 1.0;
  wcfg.promiscuous = true;
  medium_.add_node(std::move(wcfg), [&](const phy::Frame& f, phy::RadioId) {
    if (f.msg->packet().gbc() != nullptr) {
      seen.push_back({f.src, f.msg->packet().basic.remaining_hop_limit, f.msg->signature(),
                      f.msg->verify(*ca_.trust_store())});
    }
  });

  a.router->send_geo_broadcast(geo::GeoArea::circle({850.0, 0.0}, 100.0), {7});
  run_for(2_s);

  const net::MacAddress a_mac = a.router->address().mac();
  const net::MacAddress b_mac = b.router->address().mac();
  std::uint8_t origin_rhl = 0;
  std::uint64_t origin_sig = 0;
  bool saw_forward = false;
  for (const Seen& s : seen) {
    if (s.src == a_mac) {
      if (origin_sig == 0) {
        origin_rhl = s.rhl;
        origin_sig = s.sig;
      }
      // Every sighting of the origin's transmission carries the pristine
      // hop count — b's rewrite never leaked into the shared object.
      EXPECT_EQ(s.rhl, origin_rhl);
    }
    if (s.src == b_mac) {
      saw_forward = true;
      EXPECT_EQ(s.rhl, origin_rhl - 1);   // decremented on b's private copy
      EXPECT_EQ(s.sig, origin_sig);       // envelope otherwise untouched
    }
    EXPECT_TRUE(s.verified);
  }
  ASSERT_NE(origin_sig, 0u);
  EXPECT_TRUE(saw_forward);
}

TEST_F(RouterTest, VerifyMemoCountersSurfaceInStats) {
  // The same signed envelope crosses each router's ingest once per hop or
  // retransmission; repeats land in the trust store's verification memo and
  // the split is visible per router.
  Node& a = add_node(0.0);
  Node& b = add_node(100.0);
  exchange_beacons();
  a.router->send_geo_broadcast(geo::GeoArea::rectangle({50.0, 0.0}, 200.0, 50.0), {1});
  run_for(2_s);
  const RouterStats& sa = a.router->stats();
  const RouterStats& sb = b.router->stats();
  // Every verified ingest is classified exactly once as hit or miss.
  EXPECT_GT(sa.verify_memo_misses + sa.verify_memo_hits, 0u);
  EXPECT_GT(sb.verify_memo_misses, 0u);
  // b hears a's GBC, then a's copy of b's CBF rebroadcast of the *same*
  // signed portion lands in the shared store's memo: a's re-verification
  // of its own flooded packet is a hit.
  EXPECT_GT(sa.verify_memo_hits, 0u);
}

TEST_F(RouterTest, SequenceNumbersIncrease) {
  Node& a = add_node(0.0);
  exchange_beacons();
  const auto area = geo::GeoArea::rectangle({0.0, 0.0}, 100.0, 50.0);
  const auto s1 = a.router->send_geo_broadcast(area, {1});
  const auto s2 = a.router->send_geo_broadcast(area, {2});
  EXPECT_EQ(s2, s1 + 1);
}

}  // namespace
}  // namespace vgr::gn

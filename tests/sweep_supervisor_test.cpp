#include "vgr/sweep/supervisor.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "vgr/sweep/ab_codec.hpp"
#include "vgr/sweep/ab_sweep.hpp"

namespace vgr::sweep {
namespace {

using scenario::AbResult;
using scenario::Fidelity;
using scenario::HighwayConfig;

std::string temp_journal(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string{"vgr_sup_"} + name + "_" + std::to_string(::getpid()) + ".journal"))
      .string();
}

SupervisorConfig test_config(const std::string& journal) {
  SupervisorConfig c;
  c.enabled = true;
  c.journal_path = journal;
  c.backoff_ms = 0.0;  // no sleeping in tests
  return c;
}

void cleanup(const std::string& journal) {
  std::filesystem::remove(journal);
  std::filesystem::remove(journal + ".manifest");
}

ShardSpec spec_named(const std::string& key, std::uint64_t runs = 2) {
  ShardSpec s;
  s.key = key;
  s.runs = runs;
  return s;
}

/// Tiny inter-area config: enough traffic to produce non-trivial bins
/// while keeping each A/B pair well under a second.
Fidelity small_fidelity(std::uint64_t runs = 3) {
  Fidelity f;
  f.runs = runs;
  f.sim_seconds = 2.0;
  f.threads = 1;
  return f;
}

TEST(Supervisor, DisabledModeRunsOnceAndKeepsDirtyResults) {
  Supervisor sup{SupervisorConfig{}};  // enabled = false
  ASSERT_TRUE(sup.ok());
  int calls = 0;
  auto payload = sup.run_shard(spec_named("s"), [&](const ShardSpec&, const ShardEffort& e) {
    ++calls;
    EXPECT_FALSE(e.degraded);
    ShardOutcome o;
    o.payload = "{\"v\":1}";
    o.timed_out_events = 2;  // dirty — but transparent mode never retries
    return o;
  });
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "{\"v\":1}");
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(sup.counters().completed, 1u);
  EXPECT_EQ(sup.counters().retries, 0u);
  EXPECT_EQ(sup.counters().timed_out_events, 2u);
}

TEST(Supervisor, CleanShardJournalsOnFirstAttempt) {
  const std::string journal = temp_journal("clean");
  cleanup(journal);
  {
    Supervisor sup{test_config(journal)};
    ASSERT_TRUE(sup.ok());
    auto payload = sup.run_shard(spec_named("shard-a"), [](const ShardSpec&, const ShardEffort&) {
      ShardOutcome o;
      o.payload = "{\"v\":42}";
      return o;
    });
    ASSERT_TRUE(payload.has_value());
    EXPECT_EQ(sup.counters().completed, 1u);
  }
  const auto records = Journal::scan(journal);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].status, "done");
  EXPECT_EQ(records[0].fidelity, "full");
  EXPECT_EQ(records[0].attempts, 1u);
  EXPECT_EQ(records[0].cause, "none");
  EXPECT_EQ(records[0].payload, "{\"v\":42}");
  cleanup(journal);
}

TEST(Supervisor, LadderRetriesDegradesThenQuarantines) {
  const std::string journal = temp_journal("ladder");
  cleanup(journal);
  {
    Supervisor sup{test_config(journal)};
    ASSERT_TRUE(sup.ok());
    int calls = 0;
    bool saw_degraded = false;
    auto payload =
        sup.run_shard(spec_named("poisoned", /*runs=*/4),
                      [&](const ShardSpec&, const ShardEffort& e) {
                        ++calls;
                        if (e.degraded) {
                          saw_degraded = true;
                          EXPECT_EQ(e.runs, 2u);  // halved
                        } else {
                          EXPECT_EQ(e.runs, 4u);
                        }
                        ShardOutcome o;
                        o.timed_out_events = 1;  // events-budget trip, every time
                        return o;
                      });
    EXPECT_FALSE(payload.has_value());
    // 1 initial + 2 retries (default) + 1 degraded.
    EXPECT_EQ(calls, 4);
    EXPECT_TRUE(saw_degraded);
    EXPECT_EQ(sup.counters().retries, 2u);
    EXPECT_EQ(sup.counters().degraded, 1u);
    EXPECT_EQ(sup.counters().quarantined_events, 1u);
    EXPECT_EQ(sup.counters().completed, 0u);
    EXPECT_EQ(sup.counters().timed_out_events, 4u);
  }
  const auto records = Journal::scan(journal);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].status, "quarantined");
  EXPECT_EQ(records[0].cause, "events");
  EXPECT_EQ(records[0].attempts, 4u);
  EXPECT_EQ(records[0].payload, "null");
  cleanup(journal);
}

TEST(Supervisor, DegradedRungCanRescueAShard) {
  const std::string journal = temp_journal("rescue");
  cleanup(journal);
  Supervisor sup{test_config(journal)};
  ASSERT_TRUE(sup.ok());
  auto payload = sup.run_shard(spec_named("wobbly"), [](const ShardSpec&, const ShardEffort& e) {
    ShardOutcome o;
    if (e.degraded) {
      o.payload = "{\"rescued\":true}";
    } else {
      o.timed_out_wall = 1;
    }
    return o;
  });
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "{\"rescued\":true}");
  EXPECT_EQ(sup.counters().degraded, 1u);
  EXPECT_EQ(sup.counters().completed, 1u);
  EXPECT_EQ(sup.counters().quarantined(), 0u);
  const JournalRecord* rec = sup.journal()->find("wobbly");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->status, "done");
  EXPECT_EQ(rec->fidelity, "degraded");
  EXPECT_EQ(rec->cause, "wall");  // what drove the degradation
  cleanup(journal);
}

TEST(Supervisor, ThrowingShardIsQuarantinedAsError) {
  const std::string journal = temp_journal("throws");
  cleanup(journal);
  Supervisor sup{test_config(journal)};
  ASSERT_TRUE(sup.ok());
  auto payload = sup.run_shard(spec_named("buggy"), [](const ShardSpec&, const ShardEffort&)
                                   -> ShardOutcome {
    throw std::runtime_error{"boom"};
  });
  EXPECT_FALSE(payload.has_value());
  EXPECT_EQ(sup.counters().quarantined_error, 1u);
  cleanup(journal);
}

TEST(Supervisor, ResumeReturnsJournaledPayloadWithoutRerunning) {
  const std::string journal = temp_journal("resume");
  cleanup(journal);
  {
    Supervisor sup{test_config(journal)};
    ASSERT_TRUE(sup.ok());
    sup.run_shard(spec_named("done-shard"), [](const ShardSpec&, const ShardEffort&) {
      ShardOutcome o;
      o.payload = "{\"v\":7}";
      return o;
    });
    sup.run_shard(spec_named("dead-shard"), [](const ShardSpec&, const ShardEffort&) {
      ShardOutcome o;
      o.timed_out_events = 1;
      return o;
    });
  }
  SupervisorConfig config = test_config(journal);
  config.resume = true;
  Supervisor sup{config};
  ASSERT_TRUE(sup.ok());
  auto must_not_run = [](const ShardSpec&, const ShardEffort&) -> ShardOutcome {
    ADD_FAILURE() << "journaled shard re-executed";
    return {};
  };
  auto payload = sup.run_shard(spec_named("done-shard"), must_not_run);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "{\"v\":7}");
  // Quarantine is sticky on resume: the shard is not retried, so resumed
  // output does not depend on how many times the sweep crashed.
  EXPECT_FALSE(sup.run_shard(spec_named("dead-shard"), must_not_run).has_value());
  EXPECT_EQ(sup.counters().resumed, 2u);
  EXPECT_EQ(sup.counters().quarantined_events, 1u);
  cleanup(journal);
}

TEST(Supervisor, RefusesANonEmptyJournalWithoutResume) {
  const std::string journal = temp_journal("refuse");
  cleanup(journal);
  {
    Supervisor sup{test_config(journal)};
    ASSERT_TRUE(sup.ok());
    sup.run_shard(spec_named("s"), [](const ShardSpec&, const ShardEffort&) {
      ShardOutcome o;
      o.payload = "null";
      return o;
    });
  }
  Supervisor sup{test_config(journal)};  // resume not set
  EXPECT_FALSE(sup.ok());
  cleanup(journal);
}

TEST(Supervisor, DrainSkipsShardsWithoutJournaling) {
  const std::string journal = temp_journal("drain");
  cleanup(journal);
  {
    Supervisor sup{test_config(journal)};
    ASSERT_TRUE(sup.ok());
    Supervisor::request_drain();
    int calls = 0;
    auto payload = sup.run_shard(spec_named("skipped"), [&](const ShardSpec&, const ShardEffort&) {
      ++calls;
      return ShardOutcome{};
    });
    EXPECT_FALSE(payload.has_value());
    EXPECT_EQ(calls, 0);
    EXPECT_EQ(sup.counters().drained, 1u);
    Supervisor::reset_drain();
  }
  EXPECT_TRUE(Journal::scan(journal).empty());  // nothing recorded: resume re-runs it
  cleanup(journal);
}

TEST(Supervisor, ManifestRecordsTheCounters) {
  const std::string journal = temp_journal("manifest");
  cleanup(journal);
  {
    Supervisor sup{test_config(journal)};
    ASSERT_TRUE(sup.ok());
    sup.run_shard(spec_named("s"), [](const ShardSpec&, const ShardEffort&) {
      ShardOutcome o;
      o.payload = "null";
      return o;
    });
    sup.finish();
  }
  std::ifstream in{journal + ".manifest"};
  std::string manifest{std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
  EXPECT_NE(manifest.find("\"status\":\"complete\""), std::string::npos);
  EXPECT_NE(manifest.find("\"completed\":1"), std::string::npos);
  cleanup(journal);
}

// --- The A/B sweep layer on real experiments ------------------------------

bool ab_equal(const AbResult& a, const AbResult& b) {
  if (a.baseline.bin_count() != b.baseline.bin_count()) return false;
  for (std::size_t i = 0; i < a.baseline.bin_count(); ++i) {
    if (a.baseline.bin_hits(i) != b.baseline.bin_hits(i)) return false;
    if (a.baseline.bin_trials(i) != b.baseline.bin_trials(i)) return false;
    if (a.attacked.bin_hits(i) != b.attacked.bin_hits(i)) return false;
    if (a.attacked.bin_trials(i) != b.attacked.bin_trials(i)) return false;
  }
  return a.attack_rate == b.attack_rate && a.baseline_reception == b.baseline_reception &&
         a.attacked_reception == b.attacked_reception && a.runs == b.runs &&
         a.timed_out_runs == b.timed_out_runs && a.timed_out_events == b.timed_out_events &&
         a.timed_out_wall == b.timed_out_wall &&
         a.baseline_totals.ingest_drops == b.baseline_totals.ingest_drops &&
         a.attacked_totals.peak_cbr == b.attacked_totals.peak_cbr;
}

TEST(AbCodec, EncodeDecodeIsExact) {
  HighwayConfig cfg;
  cfg.attack = scenario::AttackKind::kInterArea;
  const AbResult r = scenario::run_inter_area_ab(cfg, small_fidelity());
  const auto decoded = decode_ab(encode_ab(r));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(ab_equal(r, *decoded));
  EXPECT_EQ(decoded->reception_base_hits, r.reception_base_hits);
  EXPECT_EQ(decoded->reception_base_trials, r.reception_base_trials);
  EXPECT_FALSE(decode_ab("{\"bin_ns\":0}").has_value());
  EXPECT_FALSE(decode_ab("not json").has_value());
}

TEST(AbSweep, SupervisedSingleChunkMatchesDirectRunExactly) {
  const std::string journal = temp_journal("onechunk");
  cleanup(journal);
  HighwayConfig cfg;
  cfg.attack = scenario::AttackKind::kInterArea;
  const Fidelity f = small_fidelity();
  const AbResult direct = scenario::run_inter_area_ab(cfg, f);

  Supervisor sup{test_config(journal)};
  ASSERT_TRUE(sup.ok());
  const SupervisedAb supervised =
      run_ab_supervised(sup, Experiment::kInterArea, "pt", cfg, f);
  EXPECT_TRUE(supervised.complete());
  EXPECT_EQ(supervised.shards, 1u);
  EXPECT_TRUE(ab_equal(direct, supervised.result));
  cleanup(journal);
}

TEST(AbSweep, SeedChunkedShardsMergeToTheMonolithicResult) {
  const std::string journal = temp_journal("chunked");
  cleanup(journal);
  HighwayConfig cfg;
  cfg.attack = scenario::AttackKind::kInterArea;
  const Fidelity f = small_fidelity(/*runs=*/4);
  const AbResult direct = scenario::run_inter_area_ab(cfg, f);

  SupervisorConfig config = test_config(journal);
  config.seed_chunk = 1;  // one seed per shard
  Supervisor sup{config};
  ASSERT_TRUE(sup.ok());
  const SupervisedAb supervised =
      run_ab_supervised(sup, Experiment::kInterArea, "pt", cfg, f);
  EXPECT_EQ(supervised.shards, 4u);
  EXPECT_TRUE(supervised.complete());
  // Bin accumulators are sums of per-run integer counts, so the chunked
  // merge is exact, not merely close.
  EXPECT_TRUE(ab_equal(direct, supervised.result));
  cleanup(journal);
}

TEST(AbSweep, PoisonedPointIsQuarantinedWhileOthersComplete) {
  const std::string journal = temp_journal("poison");
  cleanup(journal);
  SupervisorConfig config = test_config(journal);
  config.max_retries = 1;
  config.run_max_events = 50;  // unsatisfiable: every run trips the breaker
  Supervisor sup{config};
  ASSERT_TRUE(sup.ok());

  HighwayConfig cfg;
  cfg.attack = scenario::AttackKind::kInterArea;
  const Fidelity f = small_fidelity(/*runs=*/2);
  const SupervisedAb poisoned =
      run_ab_supervised(sup, Experiment::kInterArea, "poisoned-pt", cfg, f);
  EXPECT_FALSE(poisoned.complete());
  EXPECT_EQ(sup.counters().quarantined_events, 1u);
  EXPECT_GT(sup.counters().timed_out_events, 0u);

  // A second supervisor call on the same sweep continues past the poison.
  SupervisorConfig healthy = test_config(journal);
  healthy.resume = true;
  Supervisor sup2{healthy};
  ASSERT_TRUE(sup2.ok());
  const SupervisedAb good =
      run_ab_supervised(sup2, Experiment::kInterArea, "good-pt", cfg, f);
  EXPECT_TRUE(good.complete());
  EXPECT_GT(good.result.baseline_reception, 0.0);
  const auto records = Journal::scan(journal);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].status, "quarantined");
  EXPECT_EQ(records[1].status, "done");
  cleanup(journal);
}

TEST(AbSweep, ShardKeyPinsLabelSeedsAndFidelity) {
  const Fidelity f = small_fidelity();
  const std::string a = shard_key("pt", Experiment::kInterArea, f, 0, 4);
  EXPECT_EQ(a, shard_key("pt", Experiment::kInterArea, f, 0, 4));  // stable
  EXPECT_NE(a, shard_key("pt", Experiment::kInterArea, f, 4, 4));  // seed range
  EXPECT_NE(a, shard_key("pt2", Experiment::kInterArea, f, 0, 4)); // label
  EXPECT_NE(a, shard_key("pt", Experiment::kIntraArea, f, 0, 4));  // experiment
  Fidelity g = f;
  g.sim_seconds = 4.0;
  EXPECT_NE(a, shard_key("pt", Experiment::kInterArea, g, 0, 4));  // fidelity
}

}  // namespace
}  // namespace vgr::sweep

// Fault-injector tests: determinism, the Gilbert–Elliott burst model,
// corruption mechanics, env-knob parsing, and the medium-level delivery
// contract (dropped / duplicated / corrupted frames as receivers see them).

#include "vgr/phy/fault_injector.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "vgr/net/codec.hpp"
#include "vgr/phy/medium.hpp"

namespace vgr::phy {
namespace {

TEST(FaultConfig, DefaultIsDisabled) {
  EXPECT_FALSE(FaultConfig{}.enabled());
  FaultConfig c;
  c.drop_probability = 0.1;
  EXPECT_TRUE(c.enabled());
  c = FaultConfig{};
  c.max_extra_delay_s = 0.001;
  EXPECT_TRUE(c.enabled());
}

TEST(FaultInjector, DisabledInjectorIsInert) {
  FaultInjector inj{FaultConfig{}, sim::Rng{1}};
  for (int i = 0; i < 1000; ++i) {
    const auto d = inj.on_frame();
    EXPECT_FALSE(d.drop);
    EXPECT_FALSE(d.duplicate);
    EXPECT_EQ(d.extra_delay, sim::Duration::zero());
    EXPECT_FALSE(inj.drop_delivery());
    EXPECT_FALSE(inj.corrupt_delivery());
  }
  EXPECT_EQ(inj.stats().frames_dropped, 0u);
  EXPECT_EQ(inj.stats().deliveries_dropped, 0u);
}

TEST(FaultInjector, SameSeedSameDecisionSequence) {
  FaultConfig c;
  c.drop_probability = 0.3;
  c.duplicate_probability = 0.2;
  c.max_extra_delay_s = 0.005;
  c.link_loss_probability = 0.25;
  FaultInjector a{c, sim::Rng{42}};
  FaultInjector b{c, sim::Rng{42}};
  for (int i = 0; i < 2000; ++i) {
    const auto da = a.on_frame();
    const auto db = b.on_frame();
    ASSERT_EQ(da.drop, db.drop);
    ASSERT_EQ(da.duplicate, db.duplicate);
    ASSERT_EQ(da.extra_delay, db.extra_delay);
    ASSERT_EQ(a.drop_delivery(), b.drop_delivery());
  }
  EXPECT_EQ(a.stats().frames_dropped, b.stats().frames_dropped);
}

TEST(FaultInjector, CertainDropDropsEveryFrame) {
  FaultConfig c;
  c.drop_probability = 1.0;
  FaultInjector inj{c, sim::Rng{7}};
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(inj.on_frame().drop);
  EXPECT_EQ(inj.stats().frames_dropped, 100u);
  EXPECT_EQ(inj.stats().frames_dropped_burst, 0u);  // i.i.d., not burst
}

TEST(FaultInjector, GilbertElliottEntersAndLeavesBurstState) {
  FaultConfig c;
  c.ge_p_good_to_bad = 1.0;  // enter the bad state on the first frame
  c.ge_p_bad_to_good = 0.0;  // and never leave
  c.ge_loss_bad = 1.0;
  FaultInjector inj{c, sim::Rng{7}};
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(inj.on_frame().drop);
  EXPECT_TRUE(inj.burst_state_bad());
  EXPECT_EQ(inj.stats().frames_dropped, 50u);
  EXPECT_EQ(inj.stats().frames_dropped_burst, 50u);
}

TEST(FaultInjector, GilbertElliottGoodStateIsLossFreeByDefault) {
  FaultConfig c;
  c.ge_p_good_to_bad = 1e-12;  // chain active but (almost) never flips
  FaultInjector inj{c, sim::Rng{7}};
  std::uint64_t drops = 0;
  for (int i = 0; i < 500; ++i) drops += inj.on_frame().drop ? 1u : 0u;
  EXPECT_EQ(drops, 0u);
}

TEST(FaultInjector, CorruptBytesFlipsBetweenOneAndFourBits) {
  FaultConfig c;
  c.corrupt_probability = 1.0;
  FaultInjector inj{c, sim::Rng{9}};
  for (int rep = 0; rep < 200; ++rep) {
    const net::Bytes original(32, 0x00);
    net::Bytes wire = original;
    inj.corrupt_bytes(wire);
    int flipped = 0;
    for (std::size_t i = 0; i < wire.size(); ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        flipped += ((wire[i] ^ original[i]) >> bit) & 1;
      }
    }
    ASSERT_GE(flipped, 1);
    ASSERT_LE(flipped, 4);
  }
  EXPECT_EQ(inj.stats().deliveries_corrupted, 200u);
}

TEST(FaultInjector, ExtraDelayIsBounded) {
  FaultConfig c;
  c.max_extra_delay_s = 0.003;
  FaultInjector inj{c, sim::Rng{11}};
  for (int i = 0; i < 500; ++i) {
    const auto d = inj.on_frame();
    EXPECT_GE(d.extra_delay, sim::Duration::zero());
    EXPECT_LE(d.extra_delay, sim::Duration::seconds(0.003));
  }
}

TEST(FaultConfig, EnvOverridesParseAndValidate) {
  ::setenv("VGR_FAULT_DROP", "0.25", 1);
  ::setenv("VGR_FAULT_LINK_LOSS", "1.5", 1);  // out of range: ignored
  ::setenv("VGR_FAULT_DELAY_MS", "4", 1);
  FaultConfig base;
  base.link_loss_probability = 0.125;
  const FaultConfig c = base.with_env_overrides();
  EXPECT_DOUBLE_EQ(c.drop_probability, 0.25);
  EXPECT_DOUBLE_EQ(c.link_loss_probability, 0.125);
  EXPECT_DOUBLE_EQ(c.max_extra_delay_s, 0.004);
  ::unsetenv("VGR_FAULT_DROP");
  ::unsetenv("VGR_FAULT_LINK_LOSS");
  ::unsetenv("VGR_FAULT_DELAY_MS");
}

// --- Medium-level delivery contract ------------------------------------

class FaultMediumTest : public ::testing::Test {
 protected:
  FaultMediumTest() : medium_{events_, AccessTechnology::kDsrc} {
    tx_ = add(0.0);
    rx_ = add(100.0);
  }

  RadioId add(double x) {
    Medium::NodeConfig cfg;
    cfg.mac = net::MacAddress{0xA0 + static_cast<std::uint64_t>(x)};
    cfg.position = [x] { return geo::Position{x, 0.0}; };
    cfg.tx_range_m = 500.0;
    return medium_.add_node(std::move(cfg), [this](const Frame& f, RadioId) {
      received_.push_back(f);
    });
  }

  void install(FaultConfig cfg) {
    medium_.set_fault_injector(std::make_unique<FaultInjector>(cfg, sim::Rng{77}));
  }

  void send(int frames) {
    for (int i = 0; i < frames; ++i) {
      Frame f;
      f.msg = security::share(security::SecuredMessage{});
      medium_.transmit(tx_, std::move(f));
      events_.run_until(events_.now() + sim::Duration::seconds(0.1));
    }
  }

  sim::EventQueue events_;
  Medium medium_;
  RadioId tx_{}, rx_{};
  std::vector<Frame> received_;
};

TEST_F(FaultMediumTest, CertainFrameDropReachesNobody) {
  FaultConfig c;
  c.drop_probability = 1.0;
  install(c);
  send(20);
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(medium_.fault_injector()->stats().frames_dropped, 20u);
  // The frames still count as sent: the transmitter's radio was busy.
  EXPECT_EQ(medium_.frames_sent(), 20u);
}

TEST_F(FaultMediumTest, CertainLinkLossDropsEveryDelivery) {
  FaultConfig c;
  c.link_loss_probability = 1.0;
  install(c);
  send(20);
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(medium_.fault_injector()->stats().deliveries_dropped, 20u);
}

TEST_F(FaultMediumTest, CorruptedDeliveryCarriesDamagedWireImage) {
  FaultConfig c;
  c.corrupt_probability = 1.0;
  install(c);
  send(10);
  ASSERT_EQ(received_.size(), 10u);
  for (const Frame& f : received_) {
    ASSERT_FALSE(f.raw.empty());
    // Damaged, not identical: at least one bit differs from the clean wire.
    EXPECT_NE(f.raw, net::Codec::encode(f.msg->packet()));
  }
}

TEST_F(FaultMediumTest, CleanPathLeavesRawEmpty) {
  send(5);
  ASSERT_EQ(received_.size(), 5u);
  for (const Frame& f : received_) EXPECT_TRUE(f.raw.empty());
}

TEST_F(FaultMediumTest, DuplicationDeliversTheFrameTwice) {
  FaultConfig c;
  c.duplicate_probability = 1.0;
  install(c);
  send(5);
  // Every original plus one duplicate (duplicates are exempt from further
  // duplication draws, so exactly 2x).
  EXPECT_EQ(received_.size(), 10u);
  EXPECT_EQ(medium_.fault_injector()->stats().frames_duplicated, 5u);
  EXPECT_EQ(medium_.frames_sent(), 10u);
}

}  // namespace
}  // namespace vgr::phy

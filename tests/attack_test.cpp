#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "vgr/attack/blackhole.hpp"
#include "vgr/attack/inter_area.hpp"
#include "vgr/attack/intra_area.hpp"
#include "vgr/gn/router.hpp"
#include "vgr/security/authority.hpp"

namespace vgr::attack {
namespace {

using namespace vgr::sim::literals;

constexpr double kRange = 486.0;

struct Node {
  std::unique_ptr<gn::StaticMobility> mobility;
  std::unique_ptr<gn::Router> router;
  std::vector<gn::Router::Delivery> deliveries;
};

class AttackTest : public ::testing::Test {
 protected:
  AttackTest() : medium_{events_, phy::AccessTechnology::kDsrc} {}

  Node& add_node(double x, double range = kRange) {
    nodes_.push_back(std::make_unique<Node>());
    Node& n = *nodes_.back();
    n.mobility = std::make_unique<gn::StaticMobility>(geo::Position{x, 0.0});
    const net::GnAddress addr{net::GnAddress::StationType::kPassengerCar,
                              net::MacAddress{0x100 + nodes_.size()}};
    gn::RouterConfig cfg = gn::RouterConfig::for_technology(phy::AccessTechnology::kDsrc);
    cfg.cbf_dist_max_m = kRange;
    n.router = std::make_unique<gn::Router>(events_, medium_, security::Signer{ca_.enroll(addr)},
                                            ca_.trust_store(), *n.mobility, cfg, range,
                                            rng_.fork());
    n.router->set_delivery_handler(
        [&n](const gn::Router::Delivery& d) { n.deliveries.push_back(d); });
    return n;
  }

  void beacons() {
    for (auto& n : nodes_) n->router->send_beacon_now();
    run_for(100_ms);
  }

  void run_for(sim::Duration d) { events_.run_until(events_.now() + d); }

  sim::EventQueue events_;
  phy::Medium medium_;
  security::CertificateAuthority ca_;
  sim::Rng rng_{4242};
  std::vector<std::unique_ptr<Node>> nodes_;
};

// --- Sniffer ----------------------------------------------------------------

TEST_F(AttackTest, SnifferObservesPlaintextPositions) {
  Node& a = add_node(0.0);
  Node& b = add_node(400.0);
  Sniffer sniffer{events_, medium_, {200.0, 10.0}, 486.0};
  beacons();

  EXPECT_EQ(sniffer.frames_captured(), 2u);
  const auto& obs = sniffer.observations();
  ASSERT_TRUE(obs.contains(a.router->address()));
  ASSERT_TRUE(obs.contains(b.router->address()));
  EXPECT_DOUBLE_EQ(obs.at(b.router->address()).pv.position.x, 400.0);
}

TEST_F(AttackTest, SnifferOverhearsUnicastForwards) {
  Node& a = add_node(0.0);
  Node& b = add_node(400.0);
  Sniffer sniffer{events_, medium_, {200.0, 10.0}, 486.0};
  beacons();
  const auto captured_before = sniffer.frames_captured();
  a.router->send_geo_unicast(b.router->address(), {400.0, 0.0}, {1});
  run_for(100_ms);
  EXPECT_GT(sniffer.frames_captured(), captured_before);
}

TEST_F(AttackTest, SnifferInfersCoverageGeometry) {
  Node& a = add_node(0.0);
  Node& b = add_node(400.0);
  Node& c = add_node(800.0);
  Sniffer sniffer{events_, medium_, {400.0, 10.0}, 600.0};
  beacons();
  EXPECT_TRUE(sniffer.inferred_out_of_coverage(a.router->address(), c.router->address(), 486.0));
  EXPECT_FALSE(sniffer.inferred_out_of_coverage(a.router->address(), b.router->address(), 486.0));
}

// --- Attack #1: inter-area interception (the Fig 4 scenario) ----------------

TEST_F(AttackTest, InterceptorPoisonsVictimLocationTable) {
  Node& v1 = add_node(0.0);
  Node& v3 = add_node(900.0);  // out of V1's 486 m range
  InterAreaInterceptor atk{events_, medium_, {450.0, 10.0}, 600.0};
  beacons();
  run_for(10_ms);

  // V1 now "knows" V3 as a neighbour although it is unreachable.
  const auto entry = v1.router->location_table().find(v3.router->address(), events_.now());
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(entry->is_neighbor);
  EXPECT_GE(atk.beacons_replayed(), 1u);
}

TEST_F(AttackTest, InterceptionDivertsPacketToUnreachableHop) {
  // Fig 4: V2 is the correct next hop; the replayed beacon makes V1 pick
  // V3, which never receives the unicast. The packet is silently lost.
  Node& v1 = add_node(0.0);
  Node& v2 = add_node(400.0);
  Node& v3 = add_node(900.0);
  Node& dest = add_node(2000.0);
  InterAreaInterceptor atk{events_, medium_, {450.0, 10.0}, 600.0};
  beacons();
  run_for(10_ms);

  v1.router->send_geo_broadcast(geo::GeoArea::circle({2000.0, 0.0}, 60.0), {1});
  run_for(3_s);

  EXPECT_TRUE(dest.deliveries.empty());
  EXPECT_EQ(v2.router->stats().gf_unicast_forwards, 0u);  // V2 never got it
  EXPECT_EQ(v1.router->stats().gf_unicast_forwards, 1u);  // V1 sent... to V3
  (void)v3;
  (void)atk;
}

TEST_F(AttackTest, WithoutAttackerSamePacketIsDelivered) {
  Node& v1 = add_node(0.0);
  Node& v2 = add_node(400.0);
  Node& v3 = add_node(850.0);
  Node& relay = add_node(1300.0);
  Node& dest = add_node(1700.0);
  beacons();
  v1.router->send_geo_broadcast(geo::GeoArea::circle({1700.0, 0.0}, 60.0), {1});
  run_for(3_s);
  EXPECT_EQ(dest.deliveries.size(), 1u);
  (void)v2;
  (void)v3;
  (void)relay;
}

TEST_F(AttackTest, ReplayedBeaconPassesAuthentication) {
  Node& v1 = add_node(0.0);
  Node& v3 = add_node(900.0);
  InterAreaInterceptor atk{events_, medium_, {450.0, 10.0}, 600.0};
  beacons();
  run_for(10_ms);
  // No authentication failures anywhere: the replay is validly signed.
  EXPECT_EQ(v1.router->stats().auth_failures, 0u);
  EXPECT_EQ(v3.router->stats().auth_failures, 0u);
  (void)atk;
}

TEST_F(AttackTest, InterceptorReplaysEachBeaconOnce) {
  add_node(0.0);
  InterAreaInterceptor atk{events_, medium_, {100.0, 10.0}, 600.0};
  nodes_[0]->router->send_beacon_now();
  run_for(1_s);
  EXPECT_EQ(atk.beacons_replayed(), 1u);
  nodes_[0]->router->send_beacon_now();  // fresh timestamp -> new replay
  run_for(1_s);
  EXPECT_EQ(atk.beacons_replayed(), 2u);
}

// --- Attack #2: intra-area blockage (the Fig 5 scenario) --------------------

TEST_F(AttackTest, BlockageStopsFloodBeyondAttacker) {
  // Chain V1(0) - V2(400) - V3(800) - V4(1200), all inside the area.
  // Attacker near V1 captures the source broadcast and replays with RHL 1:
  // V2's contention is cancelled, V3 receives the replay with exhausted
  // hops, V4 gets nothing.
  Node& v1 = add_node(0.0);
  Node& v2 = add_node(400.0);
  Node& v3 = add_node(800.0);
  Node& v4 = add_node(1200.0);
  IntraAreaBlocker atk{events_, medium_, {200.0, 10.0}, 900.0};
  beacons();

  v1.router->send_geo_broadcast(geo::GeoArea::rectangle({600.0, 0.0}, 700.0, 50.0), {1});
  run_for(3_s);

  EXPECT_EQ(atk.packets_replayed(), 1u);
  EXPECT_EQ(v2.deliveries.size(), 1u);          // got it from V1 directly
  EXPECT_EQ(v2.router->stats().cbf_suppressed, 1u);  // ...but discarded its buffer
  EXPECT_EQ(v2.router->stats().cbf_rebroadcasts, 0u);
  EXPECT_EQ(v3.deliveries.size(), 1u);          // first-time receiver of replay
  EXPECT_EQ(v3.router->stats().rhl_exhausted, 1u);   // RHL 1 -> cannot forward
  EXPECT_TRUE(v4.deliveries.empty());           // flood is dead
}

TEST_F(AttackTest, WithoutBlockerFloodCoversArea) {
  Node& v1 = add_node(0.0);
  add_node(400.0);
  add_node(800.0);
  Node& v4 = add_node(1200.0);
  beacons();
  v1.router->send_geo_broadcast(geo::GeoArea::rectangle({600.0, 0.0}, 700.0, 50.0), {1});
  run_for(3_s);
  EXPECT_EQ(v4.deliveries.size(), 1u);
}

TEST_F(AttackTest, BlockerReplayBeatsEveryContentionTimer) {
  Node& v1 = add_node(0.0);
  Node& v2 = add_node(50.0);  // very close -> TO near TO_MAX (100 ms)
  IntraAreaBlocker atk{events_, medium_, {25.0, 10.0}, 600.0};
  beacons();
  v1.router->send_geo_broadcast(geo::GeoArea::rectangle({100.0, 0.0}, 300.0, 50.0), {1});
  run_for(2_ms);  // replay latency is 0.5 ms < TO_MIN
  EXPECT_EQ(atk.packets_replayed(), 1u);
  EXPECT_EQ(v2.router->stats().cbf_suppressed, 1u);
}

TEST_F(AttackTest, TargetedVariantReachesOnlyIntendedVictim) {
  Node& v1 = add_node(0.0);
  Node& v2 = add_node(400.0);
  Node& v3 = add_node(800.0);
  IntraAreaBlocker::Config cfg;
  cfg.mode = IntraAreaBlocker::Mode::kTargetedReplay;
  cfg.targeted_range_m = 250.0;  // reaches V2 (50 m away), not V3 (450 m)
  IntraAreaBlocker atk{events_, medium_, {350.0, 10.0}, 600.0, cfg};
  beacons();

  v1.router->send_geo_broadcast(geo::GeoArea::rectangle({600.0, 0.0}, 700.0, 50.0), {1});
  run_for(3_s);

  EXPECT_EQ(v2.router->stats().cbf_suppressed, 1u);  // heard the targeted replay
  // V3 did NOT hear the replay; since the flood died at V2 it never
  // received the packet at all.
  EXPECT_TRUE(v3.deliveries.empty());
  EXPECT_EQ(atk.packets_replayed(), 1u);
}

TEST_F(AttackTest, TargetedVariantKeepsRhlIntact) {
  Node& v1 = add_node(0.0);
  Node& v2 = add_node(100.0);
  IntraAreaBlocker::Config cfg;
  cfg.mode = IntraAreaBlocker::Mode::kTargetedReplay;
  cfg.targeted_range_m = 600.0;
  IntraAreaBlocker atk{events_, medium_, {50.0, 10.0}, 600.0, cfg};
  beacons();
  bool saw_full_rhl = false;
  // Watch the channel for the replayed frame and check its RHL.
  phy::Medium::NodeConfig watcher_cfg;
  watcher_cfg.mac = net::MacAddress{0xEEE};
  watcher_cfg.position = [] { return geo::Position{50.0, -10.0}; };
  watcher_cfg.tx_range_m = 1.0;
  watcher_cfg.promiscuous = true;
  medium_.add_node(std::move(watcher_cfg), [&](const phy::Frame& f, phy::RadioId) {
    if (f.msg->packet().gbc() != nullptr && f.src == net::MacAddress{0x0200'4A77'ACCEULL}) {
      saw_full_rhl = f.msg->packet().basic.remaining_hop_limit == 10;
    }
  });
  v1.router->send_geo_broadcast(geo::GeoArea::rectangle({100.0, 0.0}, 300.0, 50.0), {1});
  run_for(1_s);
  EXPECT_TRUE(saw_full_rhl);
  (void)v2;
  (void)atk;
}

TEST_F(AttackTest, BlockerReplaysEachFloodOnce) {
  Node& v1 = add_node(0.0);
  add_node(300.0);
  IntraAreaBlocker atk{events_, medium_, {150.0, 10.0}, 600.0};
  beacons();
  const auto area = geo::GeoArea::rectangle({150.0, 0.0}, 400.0, 50.0);
  v1.router->send_geo_broadcast(area, {1});
  v1.router->send_geo_broadcast(area, {2});
  run_for(3_s);
  EXPECT_EQ(atk.packets_replayed(), 2u);  // two sequence numbers, one replay each
}

TEST_F(AttackTest, MovingAttackerStillIntercepts) {
  // §III-A: the attacks conceptually extend to moving attackers. Mount the
  // interceptor on a mobility source that drifts along the roadside.
  Node& v1 = add_node(0.0);
  Node& v3 = add_node(900.0);
  gn::StaticMobility rider{{400.0, 10.0}};
  InterAreaInterceptor atk{events_, medium_, rider, 600.0, {}};
  beacons();
  run_for(10_ms);
  EXPECT_GE(atk.beacons_replayed(), 1u);
  EXPECT_TRUE(v1.router->location_table().find(v3.router->address(), events_.now()).has_value());

  // Drive the attacker away: out of everyone's range, capture stops.
  rider.move_to({5000.0, 10.0});
  const auto replayed_before = atk.beacons_replayed();
  for (auto& n : nodes_) n->router->send_beacon_now();
  run_for(100_ms);
  EXPECT_EQ(atk.beacons_replayed(), replayed_before);
  EXPECT_DOUBLE_EQ(atk.position().x, 5000.0);
}

// --- Baseline: blackhole (paper §VI) ----------------------------------------

TEST_F(AttackTest, OutsiderBlackholeIsRejectedByAuthentication) {
  Node& v1 = add_node(0.0);
  BlackholeAttacker::Config cfg;
  cfg.advertised_position = {2000.0, 0.0};
  BlackholeAttacker atk{events_, medium_, {100.0, 10.0}, 600.0, cfg};
  atk.start();
  run_for(1_s);

  EXPECT_GE(atk.beacons_forged(), 1u);
  EXPECT_GE(v1.router->stats().auth_failures, 1u);
  EXPECT_FALSE(
      v1.router->location_table().find(atk.fake_address(), events_.now()).has_value());
}

TEST_F(AttackTest, OutsiderBlackholeInterceptsNothing) {
  Node& v1 = add_node(0.0);
  Node& v2 = add_node(400.0);
  Node& dest = add_node(800.0);
  BlackholeAttacker::Config cfg;
  cfg.advertised_position = {790.0, 0.0};
  BlackholeAttacker atk{events_, medium_, {100.0, 10.0}, 600.0, cfg};
  atk.start();
  beacons();
  v1.router->send_geo_broadcast(geo::GeoArea::circle({800.0, 0.0}, 60.0), {1});
  run_for(3_s);
  EXPECT_EQ(atk.packets_swallowed(), 0u);
  EXPECT_EQ(dest.deliveries.size(), 1u);  // traffic flows normally
  (void)v2;
}

TEST_F(AttackTest, InsiderBlackholeSwallowsPackets) {
  // With a valid (insider) certificate the classic attack works — this is
  // the contrast the paper draws: GeoNetworking's PKI stops forgery-based
  // attacks but not replay-based ones.
  Node& v1 = add_node(0.0);
  Node& dest = add_node(800.0);
  const auto insider = ca_.enroll(net::GnAddress{net::GnAddress::StationType::kPassengerCar,
                                                 net::MacAddress{0x0200'B1AC'C4A7ULL}});
  BlackholeAttacker::Config cfg;
  cfg.advertised_position = {790.0, 0.0};  // "I am right next to the destination"
  BlackholeAttacker atk{events_, medium_, {100.0, 10.0}, 600.0, cfg, insider};
  atk.start();
  beacons();
  run_for(100_ms);
  v1.router->send_geo_broadcast(geo::GeoArea::circle({800.0, 0.0}, 60.0), {1});
  run_for(3_s);
  EXPECT_EQ(atk.packets_swallowed(), 1u);
  EXPECT_TRUE(dest.deliveries.empty());
}

}  // namespace
}  // namespace vgr::attack

// Golden tests for tools/vgr_lint: every rule class must fire on a minimal
// bad translation unit with the exact rule ID, waivers must silence exactly
// what they claim, whitelisted files must stay exempt, and run_lint's exit
// codes must match its contract (0 clean / 1 findings / 2 usage error).
// These tests are what "the lint demonstrably fails on each rule class"
// means in CI: if a rule regresses into silence, this file goes red.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "project_index.hpp"
#include "vgr/sweep/json.hpp"
#include "vgr_lint.hpp"

namespace {

using vgr::lint::build_project_index;
using vgr::lint::Finding;
using vgr::lint::included_module;
using vgr::lint::lint_source;
using vgr::lint::module_of;
using vgr::lint::parse_layers;
using vgr::lint::run_lint;
using vgr::lint::write_sarif;

std::vector<std::string> rules_of(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.push_back(f.rule);
  return out;
}

// --- VGR001 wall-clock ------------------------------------------------------

TEST(LintWallClock, FlagsChronoClocksWithExactLines) {
  const auto f = lint_source("src/vgr/gn/foo.cpp",
                             "#include <chrono>\n"
                             "auto t() { return std::chrono::steady_clock::now(); }\n"
                             "auto u() { return std::chrono::system_clock::now(); }\n");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].rule, "VGR001");
  EXPECT_EQ(f[0].line, 2);
  EXPECT_EQ(f[1].rule, "VGR001");
  EXPECT_EQ(f[1].line, 3);
}

TEST(LintWallClock, FlagsCLibraryTime) {
  const auto f = lint_source("src/vgr/net/x.cpp", "long n() { return time(nullptr); }\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "VGR001");
  EXPECT_EQ(f[0].tag, "wall-clock-ok");
}

TEST(LintWallClock, IgnoresMemberAndForeignNamespaceCalls) {
  // x.time(), x->time() and sim::time() are not the C library function.
  const auto f = lint_source("src/vgr/net/x.cpp",
                             "double a(T x) { return x.time(); }\n"
                             "double b(T* x) { return x->time(); }\n"
                             "double c() { return sim::time(); }\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintWallClock, EventQueueWatchdogIsWhitelisted) {
  const std::string src = "auto d = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(lint_source("src/vgr/sim/event_queue.cpp", src).empty());
  EXPECT_TRUE(lint_source("src/vgr/sim/event_queue.hpp", src).empty());
  EXPECT_EQ(lint_source("src/vgr/sim/timeline.cpp", src).size(), 1u);
}

// --- VGR002 ambient RNG -----------------------------------------------------

TEST(LintRng, FlagsEnginesAndCLibrary) {
  const auto f = lint_source("src/vgr/phy/x.cpp",
                             "#include <random>\n"
                             "int a() { std::random_device rd; return rd(); }\n"
                             "int b() { std::mt19937 g{1}; return g(); }\n"
                             "int c() { return rand(); }\n"
                             "void d() { srand(7); }\n");
  EXPECT_EQ(rules_of(f), (std::vector<std::string>{"VGR002", "VGR002", "VGR002", "VGR002"}));
}

TEST(LintRng, SimRandomIsWhitelistedAndMembersIgnored) {
  EXPECT_TRUE(lint_source("src/vgr/sim/random.cpp", "std::mt19937 g{1};\n").empty());
  // A member named rand() is not the C library.
  EXPECT_TRUE(lint_source("src/vgr/gn/x.cpp", "int f(R& r) { return r.rand(); }\n").empty());
}

// --- VGR003 unordered iteration ---------------------------------------------

TEST(LintUnordered, FlagsRangeForOverLocalAndMember) {
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "void a() {\n"
                             "  std::unordered_map<int, int> m;\n"
                             "  for (const auto& [k, v] : m) { (void)k; (void)v; }\n"
                             "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "VGR003");
  EXPECT_EQ(f[0].line, 3);
  EXPECT_EQ(f[0].tag, "ordered-ok");
}

TEST(LintUnordered, FlagsIteratorWalk) {
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "void a(std::unordered_set<int>& s) {\n"
                             "  for (auto it = s.begin(); it != s.end(); ++it) { }\n"
                             "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "VGR003");
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintUnordered, HarvestsDeclarationsFromSiblingHeader) {
  // The member lives in the header; the iteration in the .cpp must still be
  // caught (this is the LocationTable::entries_ shape from the audit).
  const auto f = lint_source("src/vgr/gn/table.cpp",
                             "void Table::walk() { for (auto& [k, v] : entries_) { } }\n",
                             "struct Table { std::unordered_map<long, E> entries_; };\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "VGR003");
}

TEST(LintUnordered, LookupAndOrderedContainersAreFine) {
  // Note the distinct names: the analyzer tracks declared names per file, so
  // an ordered container that *shares a name* with an unordered one would be
  // flagged too (a documented, conservative false positive).
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "int a(std::unordered_map<int, int>& um) { return um.find(3)->second; }\n"
                             "void b(std::map<int, int>& om) { for (auto& [k, v] : om) { } }\n"
                             "void c(std::vector<int>& v) { for (int x : v) { } }\n");
  EXPECT_TRUE(f.empty());
}

// --- VGR004 pointer-keyed ordered containers --------------------------------

TEST(LintPointerKey, FlagsPointerKeyedMapAndSet) {
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "std::map<Node*, int> by_node;\n"
                             "std::set<const Entry*> seen;\n");
  EXPECT_EQ(rules_of(f), (std::vector<std::string>{"VGR004", "VGR004"}));
}

TEST(LintPointerKey, ValueKeysAndPointerValuesAreFine) {
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "std::map<int, Node*> by_id;\n"
                             "std::set<std::uint64_t> ids;\n");
  EXPECT_TRUE(f.empty());
}

// --- VGR005 float accumulation in parallel/merge paths ----------------------

TEST(LintFloatAccum, FlagsAccumulationOnlyInParallelFiles) {
  const std::string body =
      "void merge(Pool& p) {\n"
      "  double hits = 0.0, total = 0.0;\n"
      "  p.parallel_for(8, [&](std::size_t i) { run(i); });\n"
      "  hits += 1.0;\n"
      "  total += 2.0;\n"
      "}\n";
  const auto f = lint_source("src/vgr/scenario/x.cpp", body);
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].rule, "VGR005");
  EXPECT_EQ(f[0].line, 4);
  EXPECT_EQ(f[1].line, 5);

  // The same accumulation in a file with no parallel_for is not a finding.
  const std::string serial = "void f() { double hits = 0.0; hits += 1.0; }\n";
  EXPECT_TRUE(lint_source("src/vgr/scenario/y.cpp", serial).empty());
}

// --- VGR006 threading includes ----------------------------------------------

TEST(LintThreadInclude, FlagsOutsideThreadPool) {
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "#include <thread>\n"
                             "#include <mutex>\n"
                             "#include <atomic>\n"
                             "#include <vector>\n");
  EXPECT_EQ(rules_of(f), (std::vector<std::string>{"VGR006", "VGR006", "VGR006"}));
}

TEST(LintThreadInclude, ThreadPoolIsWhitelisted) {
  const std::string src = "#include <thread>\n#include <mutex>\n#include <atomic>\n";
  EXPECT_TRUE(lint_source("src/vgr/sim/thread_pool.hpp", src).empty());
  EXPECT_TRUE(lint_source("src/vgr/sim/thread_pool.cpp", src).empty());
}

// --- VGR008 signal-handler safety -------------------------------------------

TEST(LintSignalSafety, FlagsAllocationLockingAndStdioInHandlers) {
  const auto f = lint_source("src/vgr/sweep/x.cpp",
                             "void on_int(int) {\n"
                             "  std::printf(\"caught\\n\");\n"
                             "  std::string why = describe();\n"
                             "  g_mu.lock();\n"
                             "}\n"
                             "void install() { std::signal(SIGINT, on_int); }\n");
  EXPECT_EQ(rules_of(f), (std::vector<std::string>{"VGR008", "VGR008", "VGR008"}));
  EXPECT_EQ(f[0].line, 2);
  EXPECT_EQ(f[0].tag, "signal-safe-ok");
  EXPECT_NE(f[0].message.find("on_int"), std::string::npos);
}

TEST(LintSignalSafety, HarvestsSigactionAssignments) {
  const auto f = lint_source("src/vgr/sweep/x.cpp",
                             "void on_term(int) { delete g_state; }\n"
                             "void install() {\n"
                             "  struct sigaction sa {};\n"
                             "  sa.sa_handler = &on_term;\n"
                             "  sigaction(SIGTERM, &sa, nullptr);\n"
                             "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "VGR008");
  EXPECT_EQ(f[0].line, 1);
}

TEST(LintSignalSafety, FlagOnlyHandlersAreClean) {
  // The sanctioned shape: assign a volatile sig_atomic_t flag, nothing else.
  const auto f = lint_source("src/vgr/sweep/x.cpp",
                             "volatile std::sig_atomic_t g_drain = 0;\n"
                             "void drain_handler(int) { g_drain = 1; }\n"
                             "void install() { std::signal(SIGINT, drain_handler); }\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintSignalSafety, NonHandlersAndDispositionsAreIgnored) {
  // printf in an ordinary function, SIG_IGN/SIG_DFL dispositions, and
  // restoring a *saved* handler variable must not create findings.
  const auto f = lint_source("src/vgr/sweep/x.cpp",
                             "void report() { std::printf(\"fine here\\n\"); }\n"
                             "void install(void (*saved)(int)) {\n"
                             "  std::signal(SIGINT, SIG_IGN);\n"
                             "  std::signal(SIGTERM, SIG_DFL);\n"
                             "  std::signal(SIGINT, saved != SIG_ERR ? saved : SIG_DFL);\n"
                             "}\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintSignalSafety, WaiverSilencesWithTheRightTagOnly) {
  // write()/_exit() are genuinely async-signal-safe and never flagged; the
  // waived fprintf is silenced, the same call under a wrong tag is not.
  const auto waived = lint_source(
      "src/vgr/sweep/x.cpp",
      "void on_int(int) {\n"
      "  write(2, \"x\", 1);\n"
      "  std::fprintf(stderr, \"x\");  // vgr-lint: signal-safe-ok (crash path)\n"
      "  _exit(1);\n"
      "}\n"
      "void install() { std::signal(SIGINT, on_int); }\n");
  EXPECT_TRUE(waived.empty());

  // A wrong tag leaves the VGR008 finding live and is itself dead (VGR011).
  const auto wrong_tag = lint_source("src/vgr/sweep/x.cpp",
                                     "void on_int(int) {\n"
                                     "  std::fprintf(stderr, \"x\");  // vgr-lint: rng-ok\n"
                                     "}\n"
                                     "void install() { std::signal(SIGINT, on_int); }\n");
  ASSERT_EQ(wrong_tag.size(), 2u);
  EXPECT_EQ(wrong_tag[0].rule, "VGR008");
  EXPECT_EQ(wrong_tag[1].rule, "VGR011");
  EXPECT_EQ(wrong_tag[1].line, 2);
}

// --- Waivers ----------------------------------------------------------------

TEST(LintWaiver, SameLineAndLineAboveSilence) {
  const auto f = lint_source(
      "src/vgr/gn/x.cpp",
      "void a(std::unordered_map<int, int>& m) {\n"
      "  for (auto& [k, v] : m) { }  // vgr-lint: ordered-ok (commutative)\n"
      "  // vgr-lint: ordered-ok (commutative)\n"
      "  for (auto& [k, v] : m) { }\n"
      "}\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintWaiver, WrongTagDoesNotSilence) {
  // The mismatched tag leaves the VGR003 finding live — and because the
  // waiver then suppresses nothing, it is itself dead (VGR011).
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "void a(std::unordered_map<int, int>& m) {\n"
                             "  // vgr-lint: wall-clock-ok\n"
                             "  for (auto& [k, v] : m) { }\n"
                             "}\n");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].rule, "VGR011");
  EXPECT_EQ(f[0].line, 2);
  EXPECT_EQ(f[1].rule, "VGR003");
  EXPECT_EQ(f[1].line, 3);
}

TEST(LintWaiver, BeginEndRegionCoversOnlyItsSpan) {
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "void a(std::unordered_map<int, int>& m) {\n"
                             "  // vgr-lint: begin ordered-ok (audited)\n"
                             "  for (auto& [k, v] : m) { }\n"
                             "  for (auto& [k, v] : m) { }\n"
                             "  // vgr-lint: end\n"
                             "  for (auto& [k, v] : m) { }\n"
                             "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "VGR003");
  EXPECT_EQ(f[0].line, 6);
}

TEST(LintWaiver, UnknownTagAndDanglingEndAreVGR007) {
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "// vgr-lint: orderd-ok\n"
                             "// vgr-lint: end\n"
                             "// vgr-lint: begin\n"
                             "int x;\n");
  EXPECT_EQ(rules_of(f), (std::vector<std::string>{"VGR007", "VGR007", "VGR007"}));
}

TEST(LintWaiver, ProseMentionIsNotADirective) {
  // A comment that merely talks about "the vgr-lint: ordered-ok waiver"
  // mid-sentence must neither waive anything nor report VGR007.
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "// This documents the vgr-lint: nonsense-tag mention.\n"
                             "void a(std::unordered_map<int, int>& m) {\n"
                             "  for (auto& [k, v] : m) { }\n"
                             "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "VGR003");
}

// --- Tokenizer robustness ---------------------------------------------------

TEST(LintTokenizer, StringsCommentsAndRawStringsAreInert) {
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "const char* a = \"std::steady_clock::now() rand()\";\n"
                             "/* std::random_device in a block comment */\n"
                             "const char* b = R\"(for (auto& x : entries_) time(0))\";\n");
  EXPECT_TRUE(f.empty());
}

// --- run_lint CLI contract --------------------------------------------------

class LintCli : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::path{::testing::TempDir()} /
            ("vgr_lint_" + std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(root_ / "src");
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  void write(const std::string& rel, const std::string& content) {
    const std::filesystem::path p = root_ / rel;
    std::filesystem::create_directories(p.parent_path());
    std::ofstream out{p};
    out << content;
  }

  std::filesystem::path root_;
};

TEST_F(LintCli, CleanTreeExitsZero) {
  write("src/ok.cpp", "int main() { return 0; }\n");
  std::ostringstream out, err;
  EXPECT_EQ(run_lint({"--root", root_.string()}, out, err), 0);
  EXPECT_NE(out.str().find("clean"), std::string::npos);
}

TEST_F(LintCli, ViolationExitsOneAndPrintsFileLineRule) {
  write("src/bad.cpp", "#include <thread>\nint main() { return 0; }\n");
  std::ostringstream out, err;
  EXPECT_EQ(run_lint({"--root", root_.string()}, out, err), 1);
  EXPECT_NE(out.str().find("src/bad.cpp:1: VGR006"), std::string::npos);
}

TEST_F(LintCli, BadRootAndUnknownOptionExitTwo) {
  std::ostringstream out, err;
  EXPECT_EQ(run_lint({"--root", (root_ / "nope").string()}, out, err), 2);
  EXPECT_EQ(run_lint({"--frobnicate"}, out, err), 2);
}

TEST_F(LintCli, SiblingHeaderDeclarationsReachTheCpp) {
  write("src/t.hpp", "struct T { std::unordered_map<int, int> m_; void f(); };\n");
  write("src/t.cpp", "void T::f() { for (auto& [k, v] : m_) { } }\n");
  std::ostringstream out, err;
  EXPECT_EQ(run_lint({"--root", root_.string()}, out, err), 1);
  EXPECT_NE(out.str().find("src/t.cpp:1: VGR003"), std::string::npos);
}

TEST_F(LintCli, CrossModuleHeaderDeclarationsReachTheCppThroughIncludes) {
  // The header is neither a sibling nor name-matched: only the include graph
  // of the ProjectIndex can carry its declarations into the .cpp.
  write("src/defs.hpp", "struct D { std::unordered_map<int, int> m_; };\n");
  write("src/use.cpp", "#include \"defs.hpp\"\nvoid f(D& d) { for (auto& [k, v] : d.m_) { } }\n");
  std::ostringstream out, err;
  EXPECT_EQ(run_lint({"--root", root_.string()}, out, err), 1);
  EXPECT_NE(out.str().find("src/use.cpp:2: VGR003"), std::string::npos);
}

// --- ProjectIndex -----------------------------------------------------------

class LintProject : public LintCli {};

TEST_F(LintProject, IncludeGraphEdgesOfATwoModuleTree) {
  write("src/vgr/geo/vec.hpp", "struct Vec { double x; };\n");
  write("src/vgr/gn/table.hpp", "#include \"vgr/geo/vec.hpp\"\nstruct Table { Vec v; };\n");
  write("src/vgr/gn/table.cpp", "#include \"vgr/gn/table.hpp\"\nvoid f() { }\n");
  const auto index = build_project_index(root_, {"src"});
  ASSERT_EQ(index.files.size(), 3u);

  const auto* cpp = index.find("src/vgr/gn/table.cpp");
  ASSERT_NE(cpp, nullptr);
  EXPECT_EQ(cpp->module, "gn");
  ASSERT_EQ(cpp->scan.includes.size(), 1u);
  EXPECT_EQ(cpp->scan.includes[0].spelled, "vgr/gn/table.hpp");
  EXPECT_EQ(cpp->scan.includes[0].resolved, "src/vgr/gn/table.hpp");
  EXPECT_EQ(cpp->scan.includes[0].line, 1);

  // The transitive closure pins the exact edge set of the synthetic tree.
  EXPECT_EQ(index.reachable_includes("src/vgr/gn/table.cpp"),
            (std::vector<std::string>{"src/vgr/geo/vec.hpp", "src/vgr/gn/table.hpp"}));
  EXPECT_EQ(index.reachable_includes("src/vgr/gn/table.hpp"),
            (std::vector<std::string>{"src/vgr/geo/vec.hpp"}));
  EXPECT_TRUE(index.reachable_includes("src/vgr/geo/vec.hpp").empty());
}

TEST_F(LintProject, IncluderRelativeResolutionWinsOverSrcRoot) {
  write("src/vgr/gn/local.hpp", "struct L { };\n");
  write("src/vgr/gn/user.cpp", "#include \"local.hpp\"\nvoid g() { }\n");
  const auto index = build_project_index(root_, {"src"});
  const auto* cpp = index.find("src/vgr/gn/user.cpp");
  ASSERT_NE(cpp, nullptr);
  ASSERT_EQ(cpp->scan.includes.size(), 1u);
  EXPECT_EQ(cpp->scan.includes[0].resolved, "src/vgr/gn/local.hpp");
}

TEST_F(LintProject, UnorderedNamesFlowThroughTheIncludeGraph) {
  write("src/vgr/geo/store.hpp", "struct Store { std::unordered_map<int, int> cells_; };\n");
  write("src/vgr/gn/walk.cpp",
        "#include \"vgr/geo/store.hpp\"\n"
        "void walk(Store& s) { for (auto& [k, v] : s.cells_) { } }\n");
  const auto index = build_project_index(root_, {"src"});
  EXPECT_TRUE(index.own_unordered_names("src/vgr/gn/walk.cpp").empty());
  EXPECT_TRUE(index.reachable_unordered_names("src/vgr/gn/walk.cpp").contains("cells_"));
}

TEST(LintModules, PathAndIncludeSpellingMapToModules) {
  EXPECT_EQ(module_of("src/vgr/gn/router.cpp"), "gn");
  EXPECT_EQ(module_of("src/vgr/sim/random.hpp"), "sim");
  EXPECT_EQ(module_of("src/other.cpp"), "");
  EXPECT_EQ(module_of("tools/vgr_lint/cli.cpp"), "");
  EXPECT_EQ(included_module("vgr/phy/mac.hpp"), "phy");
  EXPECT_EQ(included_module("phy/mac.hpp"), "");
  EXPECT_EQ(included_module("vgr/nested"), "");
}

// --- layers.txt manifest ----------------------------------------------------

TEST(LintLayers, ParsesAValidManifest) {
  const auto m = parse_layers("# reviewed DAG\nsim:\ngeo: sim\ngn: geo sim\n", "layers.txt");
  EXPECT_TRUE(m.loaded);
  EXPECT_TRUE(m.errors.empty());
  ASSERT_TRUE(m.allowed.contains("gn"));
  EXPECT_TRUE(m.allowed.at("gn").contains("geo"));
  EXPECT_TRUE(m.allowed.at("gn").contains("sim"));
  EXPECT_TRUE(m.allowed.at("sim").empty());
}

TEST(LintLayers, MalformedLinesAreFindingsAgainstTheManifest) {
  const auto m = parse_layers("sim\nsim:\nsim:\ngeo: geo\n", "layers.txt");
  ASSERT_EQ(m.errors.size(), 3u);
  EXPECT_EQ(m.errors[0].line, 1);  // missing colon
  EXPECT_EQ(m.errors[1].line, 3);  // duplicate module
  EXPECT_EQ(m.errors[2].line, 4);  // self-dependency
  for (const Finding& f : m.errors) EXPECT_EQ(f.rule, "VGR009");
}

TEST(LintLayers, CycleInTheAllowedGraphIsAFinding) {
  const auto m = parse_layers("a: b\nb: c\nc: a\n", "layers.txt");
  ASSERT_EQ(m.errors.size(), 1u);
  EXPECT_EQ(m.errors[0].rule, "VGR009");
  EXPECT_NE(m.errors[0].message.find("cycle"), std::string::npos);
}

// --- VGR009 module layering -------------------------------------------------

TEST_F(LintCli, LayeringRejectsAnUpwardInclude) {
  // The acceptance shape: a lower-layer module reaching up the DAG.
  write("layers.txt", "sim:\ngeo: sim\ngn: geo sim\n");
  write("src/vgr/geo/bad.cpp", "#include \"vgr/gn/router.hpp\"\nvoid f() { }\n");
  std::ostringstream out, err;
  EXPECT_EQ(
      run_lint({"--root", root_.string(), "--layers", (root_ / "layers.txt").string()}, out, err),
      1);
  EXPECT_NE(out.str().find("src/vgr/geo/bad.cpp:1: VGR009"), std::string::npos);
  EXPECT_NE(out.str().find("may not depend on 'gn'"), std::string::npos);
}

TEST_F(LintCli, LayeringAllowsManifestEdgesAndIntraModuleIncludes) {
  write("layers.txt", "sim:\ngeo: sim\ngn: geo sim\n");
  write("src/vgr/geo/vec.hpp", "struct Vec { };\n");
  write("src/vgr/gn/ok.cpp",
        "#include \"vgr/geo/vec.hpp\"\n"
        "#include \"vgr/gn/table.hpp\"\n"
        "void f() { }\n");
  std::ostringstream out, err;
  EXPECT_EQ(
      run_lint({"--root", root_.string(), "--layers", (root_ / "layers.txt").string()}, out, err),
      0);
}

TEST_F(LintCli, LayeringWaiverSilencesWithRationale) {
  write("layers.txt", "sim:\ngeo: sim\ngn: geo sim\n");
  write("src/vgr/geo/grandfathered.cpp",
        "// vgr-lint: layering-ok (migration tracked in ROADMAP)\n"
        "#include \"vgr/gn/router.hpp\"\n"
        "void f() { }\n");
  std::ostringstream out, err;
  EXPECT_EQ(
      run_lint({"--root", root_.string(), "--layers", (root_ / "layers.txt").string()}, out, err),
      0);
}

TEST_F(LintCli, ModuleAbsentFromTheManifestIsAFinding) {
  write("layers.txt", "sim:\ngeo: sim\n");
  write("src/vgr/attack/a.cpp", "#include \"vgr/sim/clock.hpp\"\nvoid f() { }\n");
  std::ostringstream out, err;
  EXPECT_EQ(
      run_lint({"--root", root_.string(), "--layers", (root_ / "layers.txt").string()}, out, err),
      1);
  EXPECT_NE(out.str().find("src/vgr/attack/a.cpp:1: VGR009"), std::string::npos);
  EXPECT_NE(out.str().find("not declared"), std::string::npos);
}

TEST_F(LintCli, MissingManifestWithVgrModulesIsAFinding) {
  // Deleting layers.txt must not silently switch the layering rule off.
  write("src/vgr/gn/a.cpp", "void f() { }\n");
  std::ostringstream out, err;
  EXPECT_EQ(run_lint({"--root", root_.string()}, out, err), 1);
  EXPECT_NE(out.str().find("VGR009"), std::string::npos);
  EXPECT_NE(out.str().find("layers.txt"), std::string::npos);
}

TEST_F(LintCli, ExplicitLayersPathMustExist) {
  write("src/ok.cpp", "int main() { return 0; }\n");
  std::ostringstream out, err;
  EXPECT_EQ(
      run_lint({"--root", root_.string(), "--layers", (root_ / "nope.txt").string()}, out, err),
      2);
}

// --- VGR010 RNG stream discipline -------------------------------------------

TEST(LintRngStream, MixedRoleEngineIsFlaggedAtTheForkSite) {
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "void f() {\n"
                             "  auto child = rng_.fork();\n"
                             "  double u = rng_.uniform(0.0, 1.0);\n"
                             "  (void)child; (void)u;\n"
                             "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "VGR010");
  EXPECT_EQ(f[0].line, 2);
  EXPECT_EQ(f[0].tag, "rng-stream-ok");
  EXPECT_NE(f[0].message.find("line 3"), std::string::npos);
}

TEST(LintRngStream, StoredNonConstReferenceMemberIsFlagged) {
  const auto f = lint_source("src/vgr/phy/x.hpp", "struct Mac {\n  sim::Rng& rng_;\n};\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "VGR010");
  EXPECT_EQ(f[0].line, 2);
  EXPECT_NE(f[0].message.find("stored member"), std::string::npos);

  // A const reference cannot draw, so observing a stream is fine.
  EXPECT_TRUE(
      lint_source("src/vgr/phy/y.hpp", "struct Probe {\n  const sim::Rng& rng_;\n};\n").empty());
}

TEST(LintRngStream, DrawsOnASharedStreamAreFlaggedForkIsNot) {
  const auto f = lint_source(
      "src/vgr/gn/x.cpp",
      "std::uint64_t bad(sim::Rng& shared) { return shared.next_u64(); }\n"
      "sim::Rng good(sim::Rng& parent) { return parent.fork(); }\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "VGR010");
  EXPECT_EQ(f[0].line, 1);
  EXPECT_NE(f[0].message.find("non-const reference"), std::string::npos);
}

TEST(LintRngStream, OwnedByValueStreamsAreClean) {
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "void f(sim::Rng rng) {\n"
                             "  double u = rng.uniform(0.0, 1.0);\n"
                             "  (void)u;\n"
                             "}\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintRngStream, WaiverAndSimRandomWhitelistSilence) {
  const std::string mixed =
      "void f() {\n"
      "  // vgr-lint: rng-stream-ok (audited fork point)\n"
      "  auto child = rng_.fork();\n"
      "  double u = rng_.uniform(0.0, 1.0);\n"
      "  (void)child; (void)u;\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/vgr/gn/x.cpp", mixed).empty());

  const std::string unwaived =
      "void f() {\n"
      "  auto child = rng_.fork();\n"
      "  double u = rng_.uniform(0.0, 1.0);\n"
      "  (void)child; (void)u;\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/vgr/sim/random.hpp", unwaived).empty());
  EXPECT_EQ(lint_source("src/vgr/gn/x.cpp", unwaived).size(), 1u);
}

// --- VGR011 dead waivers ----------------------------------------------------

TEST(LintDeadWaiver, DeadLineWaiverIsAFinding) {
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "// vgr-lint: ordered-ok (stale)\n"
                             "int x = 0;\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "VGR011");
  EXPECT_EQ(f[0].line, 1);
  EXPECT_EQ(f[0].tag, "dead-waiver-ok");
  EXPECT_NE(f[0].message.find("ordered-ok"), std::string::npos);
}

TEST(LintDeadWaiver, DeadRegionWaiverIsAFinding) {
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "// vgr-lint: begin wall-clock-ok (stale span)\n"
                             "int x = 0;\n"
                             "// vgr-lint: end\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "VGR011");
  EXPECT_EQ(f[0].line, 1);
}

TEST(LintDeadWaiver, LiveWaiverIsNotDead) {
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "void a(std::unordered_map<int, int>& m) {\n"
                             "  // vgr-lint: ordered-ok (commutative fold)\n"
                             "  for (auto& [k, v] : m) { }\n"
                             "}\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintDeadWaiver, DeadWaiverOkKeepsAProphylacticWaiver) {
  // dead-waiver-ok waives VGR011 itself, so a deliberately prophylactic
  // waiver (e.g. above generated code) does not oscillate.
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "// vgr-lint: ordered-ok dead-waiver-ok (generated table below)\n"
                             "int x = 0;\n");
  EXPECT_TRUE(f.empty());
}

// --- SARIF output -----------------------------------------------------------

TEST(LintSarif, EmitsSchemaFieldsRulesAndEscapedResults) {
  const std::vector<Finding> findings{{"src/vgr/gn/x.cpp", 7, "VGR003", "ordered-ok",
                                       "iteration \"quoted\" over\nhash \\ order"}};
  std::ostringstream out;
  write_sarif(out, findings);

  const auto doc = vgr::sweep::json_parse(out.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->text("version"), "2.1.0");
  EXPECT_NE(doc->text("$schema").find("sarif-schema-2.1.0"), std::string::npos);

  const auto* runs = doc->find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->array.size(), 1u);
  const auto* tool = runs->array[0].find("tool");
  ASSERT_NE(tool, nullptr);
  const auto* driver = tool->find("driver");
  ASSERT_NE(driver, nullptr);
  EXPECT_EQ(driver->text("name"), "vgr_lint");
  const auto* rules = driver->find("rules");
  ASSERT_NE(rules, nullptr);
  ASSERT_EQ(rules->array.size(), 11u);
  EXPECT_EQ(rules->array.front().text("id"), "VGR001");
  EXPECT_EQ(rules->array.back().text("id"), "VGR011");

  const auto* results = runs->array[0].find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->array.size(), 1u);
  const auto& r = results->array[0];
  EXPECT_EQ(r.text("ruleId"), "VGR003");
  EXPECT_EQ(r.u64("ruleIndex"), 2u);
  const auto* message = r.find("message");
  ASSERT_NE(message, nullptr);
  EXPECT_EQ(message->text("text"), "iteration \"quoted\" over\nhash \\ order");
  const auto* locations = r.find("locations");
  ASSERT_NE(locations, nullptr);
  ASSERT_EQ(locations->array.size(), 1u);
  const auto* phys = locations->array[0].find("physicalLocation");
  ASSERT_NE(phys, nullptr);
  const auto* artifact = phys->find("artifactLocation");
  ASSERT_NE(artifact, nullptr);
  EXPECT_EQ(artifact->text("uri"), "src/vgr/gn/x.cpp");
  const auto* region = phys->find("region");
  ASSERT_NE(region, nullptr);
  EXPECT_EQ(region->u64("startLine"), 7u);
}

TEST_F(LintCli, SarifRoundTripsTheTextReporterFindings) {
  write("src/bad.cpp", "#include <thread>\nint main() { return 0; }\n");
  const std::string sarif_path = (root_ / "out.sarif").string();
  std::ostringstream out, err;
  EXPECT_EQ(run_lint({"--root", root_.string(), "--sarif", sarif_path}, out, err), 1);
  EXPECT_NE(out.str().find("src/bad.cpp:1: VGR006"), std::string::npos);

  std::ifstream in{sarif_path};
  std::ostringstream raw;
  raw << in.rdbuf();
  const auto doc = vgr::sweep::json_parse(raw.str());
  ASSERT_TRUE(doc.has_value());
  const auto* results = doc->find("runs")->array[0].find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->array.size(), 1u);
  const auto& r = results->array[0];
  EXPECT_EQ(r.text("ruleId"), "VGR006");
  const auto* phys = r.find("locations")->array[0].find("physicalLocation");
  EXPECT_EQ(phys->find("artifactLocation")->text("uri"), "src/bad.cpp");
  EXPECT_EQ(phys->find("region")->u64("startLine"), 1u);
}

TEST_F(LintCli, SarifWithoutPathExitsTwo) {
  std::ostringstream out, err;
  EXPECT_EQ(run_lint({"--sarif"}, out, err), 2);
}

// --- --list-rules / --explain -----------------------------------------------

TEST(LintCliRules, ListRulesCoversTheWholeCatalogue) {
  std::ostringstream out, err;
  EXPECT_EQ(run_lint({"--list-rules"}, out, err), 0);
  for (const char* id : {"VGR001", "VGR002", "VGR003", "VGR004", "VGR005", "VGR006", "VGR007",
                         "VGR008", "VGR009", "VGR010", "VGR011"}) {
    EXPECT_NE(out.str().find(id), std::string::npos) << id;
  }
  EXPECT_NE(out.str().find("layering-ok"), std::string::npos);
  EXPECT_NE(out.str().find("rng-stream-ok"), std::string::npos);
  EXPECT_NE(out.str().find("not waivable"), std::string::npos);  // VGR007
}

TEST(LintCliRules, ExplainPrintsDetailAndRejectsUnknownRules) {
  std::ostringstream out, err;
  EXPECT_EQ(run_lint({"--explain", "VGR009"}, out, err), 0);
  EXPECT_NE(out.str().find("VGR009"), std::string::npos);
  EXPECT_NE(out.str().find("layering-ok"), std::string::npos);

  std::ostringstream out2, err2;
  EXPECT_EQ(run_lint({"--explain", "VGR999"}, out2, err2), 2);
  EXPECT_NE(err2.str().find("unknown rule"), std::string::npos);

  std::ostringstream out3, err3;
  EXPECT_EQ(run_lint({"--explain"}, out3, err3), 2);
}

}  // namespace

// Golden tests for tools/vgr_lint: every rule class must fire on a minimal
// bad translation unit with the exact rule ID, waivers must silence exactly
// what they claim, whitelisted files must stay exempt, and run_lint's exit
// codes must match its contract (0 clean / 1 findings / 2 usage error).
// These tests are what "the lint demonstrably fails on each rule class"
// means in CI: if a rule regresses into silence, this file goes red.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "vgr_lint.hpp"

namespace {

using vgr::lint::Finding;
using vgr::lint::lint_source;
using vgr::lint::run_lint;

std::vector<std::string> rules_of(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.push_back(f.rule);
  return out;
}

// --- VGR001 wall-clock ------------------------------------------------------

TEST(LintWallClock, FlagsChronoClocksWithExactLines) {
  const auto f = lint_source("src/vgr/gn/foo.cpp",
                             "#include <chrono>\n"
                             "auto t() { return std::chrono::steady_clock::now(); }\n"
                             "auto u() { return std::chrono::system_clock::now(); }\n");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].rule, "VGR001");
  EXPECT_EQ(f[0].line, 2);
  EXPECT_EQ(f[1].rule, "VGR001");
  EXPECT_EQ(f[1].line, 3);
}

TEST(LintWallClock, FlagsCLibraryTime) {
  const auto f = lint_source("src/vgr/net/x.cpp", "long n() { return time(nullptr); }\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "VGR001");
  EXPECT_EQ(f[0].tag, "wall-clock-ok");
}

TEST(LintWallClock, IgnoresMemberAndForeignNamespaceCalls) {
  // x.time(), x->time() and sim::time() are not the C library function.
  const auto f = lint_source("src/vgr/net/x.cpp",
                             "double a(T x) { return x.time(); }\n"
                             "double b(T* x) { return x->time(); }\n"
                             "double c() { return sim::time(); }\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintWallClock, EventQueueWatchdogIsWhitelisted) {
  const std::string src = "auto d = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(lint_source("src/vgr/sim/event_queue.cpp", src).empty());
  EXPECT_TRUE(lint_source("src/vgr/sim/event_queue.hpp", src).empty());
  EXPECT_EQ(lint_source("src/vgr/sim/timeline.cpp", src).size(), 1u);
}

// --- VGR002 ambient RNG -----------------------------------------------------

TEST(LintRng, FlagsEnginesAndCLibrary) {
  const auto f = lint_source("src/vgr/phy/x.cpp",
                             "#include <random>\n"
                             "int a() { std::random_device rd; return rd(); }\n"
                             "int b() { std::mt19937 g{1}; return g(); }\n"
                             "int c() { return rand(); }\n"
                             "void d() { srand(7); }\n");
  EXPECT_EQ(rules_of(f), (std::vector<std::string>{"VGR002", "VGR002", "VGR002", "VGR002"}));
}

TEST(LintRng, SimRandomIsWhitelistedAndMembersIgnored) {
  EXPECT_TRUE(lint_source("src/vgr/sim/random.cpp", "std::mt19937 g{1};\n").empty());
  // A member named rand() is not the C library.
  EXPECT_TRUE(lint_source("src/vgr/gn/x.cpp", "int f(R& r) { return r.rand(); }\n").empty());
}

// --- VGR003 unordered iteration ---------------------------------------------

TEST(LintUnordered, FlagsRangeForOverLocalAndMember) {
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "void a() {\n"
                             "  std::unordered_map<int, int> m;\n"
                             "  for (const auto& [k, v] : m) { (void)k; (void)v; }\n"
                             "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "VGR003");
  EXPECT_EQ(f[0].line, 3);
  EXPECT_EQ(f[0].tag, "ordered-ok");
}

TEST(LintUnordered, FlagsIteratorWalk) {
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "void a(std::unordered_set<int>& s) {\n"
                             "  for (auto it = s.begin(); it != s.end(); ++it) { }\n"
                             "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "VGR003");
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintUnordered, HarvestsDeclarationsFromSiblingHeader) {
  // The member lives in the header; the iteration in the .cpp must still be
  // caught (this is the LocationTable::entries_ shape from the audit).
  const auto f = lint_source("src/vgr/gn/table.cpp",
                             "void Table::walk() { for (auto& [k, v] : entries_) { } }\n",
                             "struct Table { std::unordered_map<long, E> entries_; };\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "VGR003");
}

TEST(LintUnordered, LookupAndOrderedContainersAreFine) {
  // Note the distinct names: the analyzer tracks declared names per file, so
  // an ordered container that *shares a name* with an unordered one would be
  // flagged too (a documented, conservative false positive).
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "int a(std::unordered_map<int, int>& um) { return um.find(3)->second; }\n"
                             "void b(std::map<int, int>& om) { for (auto& [k, v] : om) { } }\n"
                             "void c(std::vector<int>& v) { for (int x : v) { } }\n");
  EXPECT_TRUE(f.empty());
}

// --- VGR004 pointer-keyed ordered containers --------------------------------

TEST(LintPointerKey, FlagsPointerKeyedMapAndSet) {
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "std::map<Node*, int> by_node;\n"
                             "std::set<const Entry*> seen;\n");
  EXPECT_EQ(rules_of(f), (std::vector<std::string>{"VGR004", "VGR004"}));
}

TEST(LintPointerKey, ValueKeysAndPointerValuesAreFine) {
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "std::map<int, Node*> by_id;\n"
                             "std::set<std::uint64_t> ids;\n");
  EXPECT_TRUE(f.empty());
}

// --- VGR005 float accumulation in parallel/merge paths ----------------------

TEST(LintFloatAccum, FlagsAccumulationOnlyInParallelFiles) {
  const std::string body =
      "void merge(Pool& p) {\n"
      "  double hits = 0.0, total = 0.0;\n"
      "  p.parallel_for(8, [&](std::size_t i) { run(i); });\n"
      "  hits += 1.0;\n"
      "  total += 2.0;\n"
      "}\n";
  const auto f = lint_source("src/vgr/scenario/x.cpp", body);
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].rule, "VGR005");
  EXPECT_EQ(f[0].line, 4);
  EXPECT_EQ(f[1].line, 5);

  // The same accumulation in a file with no parallel_for is not a finding.
  const std::string serial = "void f() { double hits = 0.0; hits += 1.0; }\n";
  EXPECT_TRUE(lint_source("src/vgr/scenario/y.cpp", serial).empty());
}

// --- VGR006 threading includes ----------------------------------------------

TEST(LintThreadInclude, FlagsOutsideThreadPool) {
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "#include <thread>\n"
                             "#include <mutex>\n"
                             "#include <atomic>\n"
                             "#include <vector>\n");
  EXPECT_EQ(rules_of(f), (std::vector<std::string>{"VGR006", "VGR006", "VGR006"}));
}

TEST(LintThreadInclude, ThreadPoolIsWhitelisted) {
  const std::string src = "#include <thread>\n#include <mutex>\n#include <atomic>\n";
  EXPECT_TRUE(lint_source("src/vgr/sim/thread_pool.hpp", src).empty());
  EXPECT_TRUE(lint_source("src/vgr/sim/thread_pool.cpp", src).empty());
}

// --- VGR008 signal-handler safety -------------------------------------------

TEST(LintSignalSafety, FlagsAllocationLockingAndStdioInHandlers) {
  const auto f = lint_source("src/vgr/sweep/x.cpp",
                             "void on_int(int) {\n"
                             "  std::printf(\"caught\\n\");\n"
                             "  std::string why = describe();\n"
                             "  g_mu.lock();\n"
                             "}\n"
                             "void install() { std::signal(SIGINT, on_int); }\n");
  EXPECT_EQ(rules_of(f), (std::vector<std::string>{"VGR008", "VGR008", "VGR008"}));
  EXPECT_EQ(f[0].line, 2);
  EXPECT_EQ(f[0].tag, "signal-safe-ok");
  EXPECT_NE(f[0].message.find("on_int"), std::string::npos);
}

TEST(LintSignalSafety, HarvestsSigactionAssignments) {
  const auto f = lint_source("src/vgr/sweep/x.cpp",
                             "void on_term(int) { delete g_state; }\n"
                             "void install() {\n"
                             "  struct sigaction sa {};\n"
                             "  sa.sa_handler = &on_term;\n"
                             "  sigaction(SIGTERM, &sa, nullptr);\n"
                             "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "VGR008");
  EXPECT_EQ(f[0].line, 1);
}

TEST(LintSignalSafety, FlagOnlyHandlersAreClean) {
  // The sanctioned shape: assign a volatile sig_atomic_t flag, nothing else.
  const auto f = lint_source("src/vgr/sweep/x.cpp",
                             "volatile std::sig_atomic_t g_drain = 0;\n"
                             "void drain_handler(int) { g_drain = 1; }\n"
                             "void install() { std::signal(SIGINT, drain_handler); }\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintSignalSafety, NonHandlersAndDispositionsAreIgnored) {
  // printf in an ordinary function, SIG_IGN/SIG_DFL dispositions, and
  // restoring a *saved* handler variable must not create findings.
  const auto f = lint_source("src/vgr/sweep/x.cpp",
                             "void report() { std::printf(\"fine here\\n\"); }\n"
                             "void install(void (*saved)(int)) {\n"
                             "  std::signal(SIGINT, SIG_IGN);\n"
                             "  std::signal(SIGTERM, SIG_DFL);\n"
                             "  std::signal(SIGINT, saved != SIG_ERR ? saved : SIG_DFL);\n"
                             "}\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintSignalSafety, WaiverSilencesWithTheRightTagOnly) {
  // write()/_exit() are genuinely async-signal-safe and never flagged; the
  // waived fprintf is silenced, the same call under a wrong tag is not.
  const auto waived = lint_source(
      "src/vgr/sweep/x.cpp",
      "void on_int(int) {\n"
      "  write(2, \"x\", 1);\n"
      "  std::fprintf(stderr, \"x\");  // vgr-lint: signal-safe-ok (crash path)\n"
      "  _exit(1);\n"
      "}\n"
      "void install() { std::signal(SIGINT, on_int); }\n");
  EXPECT_TRUE(waived.empty());

  const auto wrong_tag = lint_source("src/vgr/sweep/x.cpp",
                                     "void on_int(int) {\n"
                                     "  std::fprintf(stderr, \"x\");  // vgr-lint: rng-ok\n"
                                     "}\n"
                                     "void install() { std::signal(SIGINT, on_int); }\n");
  ASSERT_EQ(wrong_tag.size(), 1u);
  EXPECT_EQ(wrong_tag[0].rule, "VGR008");
}

// --- Waivers ----------------------------------------------------------------

TEST(LintWaiver, SameLineAndLineAboveSilence) {
  const auto f = lint_source(
      "src/vgr/gn/x.cpp",
      "void a(std::unordered_map<int, int>& m) {\n"
      "  for (auto& [k, v] : m) { }  // vgr-lint: ordered-ok (commutative)\n"
      "  // vgr-lint: ordered-ok (commutative)\n"
      "  for (auto& [k, v] : m) { }\n"
      "}\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintWaiver, WrongTagDoesNotSilence) {
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "void a(std::unordered_map<int, int>& m) {\n"
                             "  // vgr-lint: wall-clock-ok\n"
                             "  for (auto& [k, v] : m) { }\n"
                             "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "VGR003");
}

TEST(LintWaiver, BeginEndRegionCoversOnlyItsSpan) {
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "void a(std::unordered_map<int, int>& m) {\n"
                             "  // vgr-lint: begin ordered-ok (audited)\n"
                             "  for (auto& [k, v] : m) { }\n"
                             "  for (auto& [k, v] : m) { }\n"
                             "  // vgr-lint: end\n"
                             "  for (auto& [k, v] : m) { }\n"
                             "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "VGR003");
  EXPECT_EQ(f[0].line, 6);
}

TEST(LintWaiver, UnknownTagAndDanglingEndAreVGR007) {
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "// vgr-lint: orderd-ok\n"
                             "// vgr-lint: end\n"
                             "// vgr-lint: begin\n"
                             "int x;\n");
  EXPECT_EQ(rules_of(f), (std::vector<std::string>{"VGR007", "VGR007", "VGR007"}));
}

TEST(LintWaiver, ProseMentionIsNotADirective) {
  // A comment that merely talks about "the vgr-lint: ordered-ok waiver"
  // mid-sentence must neither waive anything nor report VGR007.
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "// This documents the vgr-lint: nonsense-tag mention.\n"
                             "void a(std::unordered_map<int, int>& m) {\n"
                             "  for (auto& [k, v] : m) { }\n"
                             "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "VGR003");
}

// --- Tokenizer robustness ---------------------------------------------------

TEST(LintTokenizer, StringsCommentsAndRawStringsAreInert) {
  const auto f = lint_source("src/vgr/gn/x.cpp",
                             "const char* a = \"std::steady_clock::now() rand()\";\n"
                             "/* std::random_device in a block comment */\n"
                             "const char* b = R\"(for (auto& x : entries_) time(0))\";\n");
  EXPECT_TRUE(f.empty());
}

// --- run_lint CLI contract --------------------------------------------------

class LintCli : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::path{::testing::TempDir()} /
            ("vgr_lint_" + std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(root_ / "src");
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  void write(const std::string& rel, const std::string& content) {
    std::ofstream out{root_ / rel};
    out << content;
  }

  std::filesystem::path root_;
};

TEST_F(LintCli, CleanTreeExitsZero) {
  write("src/ok.cpp", "int main() { return 0; }\n");
  std::ostringstream out, err;
  EXPECT_EQ(run_lint({"--root", root_.string()}, out, err), 0);
  EXPECT_NE(out.str().find("clean"), std::string::npos);
}

TEST_F(LintCli, ViolationExitsOneAndPrintsFileLineRule) {
  write("src/bad.cpp", "#include <thread>\nint main() { return 0; }\n");
  std::ostringstream out, err;
  EXPECT_EQ(run_lint({"--root", root_.string()}, out, err), 1);
  EXPECT_NE(out.str().find("src/bad.cpp:1: VGR006"), std::string::npos);
}

TEST_F(LintCli, BadRootAndUnknownOptionExitTwo) {
  std::ostringstream out, err;
  EXPECT_EQ(run_lint({"--root", (root_ / "nope").string()}, out, err), 2);
  EXPECT_EQ(run_lint({"--frobnicate"}, out, err), 2);
}

TEST_F(LintCli, SiblingHeaderDeclarationsReachTheCpp) {
  write("src/t.hpp", "struct T { std::unordered_map<int, int> m_; void f(); };\n");
  write("src/t.cpp", "void T::f() { for (auto& [k, v] : m_) { } }\n");
  std::ostringstream out, err;
  EXPECT_EQ(run_lint({"--root", root_.string()}, out, err), 1);
  EXPECT_NE(out.str().find("src/t.cpp:1: VGR003"), std::string::npos);
}

}  // namespace

#include "vgr/sim/time.hpp"

#include <gtest/gtest.h>

namespace vgr::sim {
namespace {

using namespace vgr::sim::literals;

TEST(Duration, FactoryUnitsAgree) {
  EXPECT_EQ(Duration::millis(1).count(), 1'000'000);
  EXPECT_EQ(Duration::micros(1).count(), 1'000);
  EXPECT_EQ(Duration::nanos(1).count(), 1);
  EXPECT_EQ(Duration::seconds(1.0).count(), 1'000'000'000);
  EXPECT_EQ(Duration::seconds(0.5), Duration::millis(500));
}

TEST(Duration, Literals) {
  EXPECT_EQ(3_s, Duration::seconds(3.0));
  EXPECT_EQ(100_ms, Duration::millis(100));
  EXPECT_EQ(500_us, Duration::micros(500));
  EXPECT_EQ(0.75_s, Duration::millis(750));
}

TEST(Duration, Arithmetic) {
  EXPECT_EQ(1_s + 500_ms, Duration::millis(1500));
  EXPECT_EQ(1_s - 400_ms, Duration::millis(600));
  EXPECT_EQ(3 * 100_ms, Duration::millis(300));
  EXPECT_EQ(100_ms * 3, Duration::millis(300));
  EXPECT_DOUBLE_EQ(1_s / 250_ms, 4.0);
  EXPECT_EQ((100_ms) * 0.5, Duration::millis(50));
}

TEST(Duration, CompoundAssignment) {
  Duration d = 1_s;
  d += 500_ms;
  EXPECT_EQ(d, Duration::millis(1500));
  d -= 1_s;
  EXPECT_EQ(d, 500_ms);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(1_ms, 2_ms);
  EXPECT_GT(1_s, 999_ms);
  EXPECT_LE(Duration::zero(), 0_ms);
  EXPECT_EQ(Duration::zero().count(), 0);
  EXPECT_LT(Duration::zero(), Duration::max());
}

TEST(Duration, Conversions) {
  EXPECT_DOUBLE_EQ((1500_ms).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ((1500_us).to_millis(), 1.5);
}

TEST(TimePoint, OriginAndArithmetic) {
  const TimePoint t0 = TimePoint::origin();
  EXPECT_EQ(t0.count(), 0);
  const TimePoint t1 = t0 + 5_s;
  EXPECT_DOUBLE_EQ(t1.to_seconds(), 5.0);
  EXPECT_EQ(t1 - t0, 5_s);
  EXPECT_EQ(t1 - 2_s, t0 + 3_s);
  EXPECT_EQ(TimePoint::at(7_s), t0 + 7_s);
}

TEST(TimePoint, Ordering) {
  EXPECT_LT(TimePoint::at(1_s), TimePoint::at(2_s));
  EXPECT_LT(TimePoint::at(1_s), TimePoint::max());
  EXPECT_EQ(TimePoint::at(1_s).since_origin(), 1_s);
}

TEST(TimeToString, Renders) {
  EXPECT_EQ(to_string(1500_ms), "1.500000s");
  EXPECT_EQ(to_string(TimePoint::at(2_s)), "2.000000s");
}

TEST(Duration, NegativeDurationsBehave) {
  const Duration d = 1_s - 3_s;
  EXPECT_EQ(d.count(), -2'000'000'000);
  EXPECT_LT(d, Duration::zero());
  EXPECT_EQ(d + 3_s, 1_s);
}

}  // namespace
}  // namespace vgr::sim

#include <gtest/gtest.h>

#include "vgr/scenario/ab_runner.hpp"
#include "vgr/scenario/curve.hpp"
#include "vgr/scenario/hazard.hpp"
#include "vgr/scenario/highway.hpp"
#include "vgr/scenario/vulnerability.hpp"

namespace vgr::scenario {
namespace {

using namespace vgr::sim::literals;

// --- Fig 6 geometry ---------------------------------------------------------

TEST(AttackGeometry, FullyCoveredWidthMatchesPaper) {
  // Paper §IV-A: 500 m attacker vs 486 m DSRC vehicles ->
  // (500 - 486) * 2 = 28 m fully covered area.
  const AttackGeometry g{2000.0, 500.0, 486.0};
  const auto iv = g.fully_covered();
  ASSERT_TRUE(iv.has_value());
  EXPECT_NEAR(iv->second - iv->first, 28.0, 1e-9);
  EXPECT_TRUE(g.in_fully_covered(2000.0));
  EXPECT_FALSE(g.in_fully_covered(2020.0));
}

TEST(AttackGeometry, WorstNlosHasNoFullyCoveredArea) {
  const AttackGeometry g{2000.0, 327.0, 486.0};
  EXPECT_FALSE(g.fully_covered().has_value());
}

TEST(AttackGeometry, DirectionalVulnerability) {
  const AttackGeometry g{2000.0, 327.0, 486.0};
  // Eastbound vulnerable up to 2000 + 327 - 486 = 1841.
  EXPECT_TRUE(g.eastbound_vulnerable(1841.0));
  EXPECT_FALSE(g.eastbound_vulnerable(1842.0));
  // Westbound mirrored: from 2159 up.
  EXPECT_TRUE(g.westbound_vulnerable(2159.0));
  EXPECT_FALSE(g.westbound_vulnerable(2158.0));
  // The middle band is safe in both directions.
  EXPECT_FALSE(g.vulnerable(2000.0));
  EXPECT_TRUE(g.vulnerable(100.0));
  EXPECT_TRUE(g.vulnerable(3900.0));
}

TEST(AttackGeometry, LargeAttackRangeCoversEverySource) {
  const AttackGeometry g{2000.0, 1283.0, 486.0};
  for (double x = 0.0; x <= 4000.0; x += 100.0) {
    EXPECT_TRUE(g.vulnerable(x)) << x;
  }
  const auto iv = g.fully_covered();
  ASSERT_TRUE(iv.has_value());
  EXPECT_NEAR(iv->second - iv->first, 2.0 * (1283.0 - 486.0), 1e-9);
}

// --- Highway config resolution ----------------------------------------------

TEST(HighwayConfig, ResolvesTechnologyDefaults) {
  HighwayConfig cfg;
  cfg.tech = phy::AccessTechnology::kCv2x;
  EXPECT_DOUBLE_EQ(cfg.resolved_vehicle_range(), 593.0);
  cfg.vehicle_range_m = 450.0;
  EXPECT_DOUBLE_EQ(cfg.resolved_vehicle_range(), 450.0);
  EXPECT_DOUBLE_EQ(cfg.resolved_attacker_x(), 2000.0);
  cfg.attacker_x_m = 1200.0;
  EXPECT_DOUBLE_EQ(cfg.resolved_attacker_x(), 1200.0);
}

// --- Small smoke runs (reduced road so they finish in seconds) --------------

HighwayConfig small_config() {
  HighwayConfig cfg;
  cfg.road_length_m = 1500.0;
  cfg.lanes_per_direction = 1;
  cfg.prefill_spacing_m = 100.0;
  cfg.entry_spacing_m = 100.0;
  cfg.sim_duration = 30_s;
  cfg.attack_range_m = 327.0;
  return cfg;
}

TEST(HighwayScenario, AttackerFreeInterAreaDeliversMostPackets) {
  HighwayConfig cfg = small_config();
  cfg.attack = AttackKind::kNone;
  HighwayScenario scenario{cfg};
  const InterAreaResult r = scenario.run_inter_area();
  ASSERT_GT(r.packets.size(), 10u);
  // Attacker-free GF is imperfect even in the paper (~67% at full scale):
  // ghost entries of exited vehicles linger in location tables for a TTL.
  EXPECT_GT(r.overall_reception(), 0.45);
  EXPECT_EQ(r.beacons_replayed, 0u);
}

TEST(HighwayScenario, InterAreaAttackReducesReception) {
  HighwayConfig cfg = small_config();
  cfg.attack_range_m = 600.0;  // > vehicle range: strong attacker
  cfg.attacker_x_m = 750.0;

  cfg.attack = AttackKind::kNone;
  const double baseline = HighwayScenario{cfg}.run_inter_area().overall_reception();
  cfg.attack = AttackKind::kInterArea;
  const InterAreaResult attacked = HighwayScenario{cfg}.run_inter_area();

  EXPECT_GT(attacked.beacons_replayed, 0u);
  EXPECT_LT(attacked.overall_reception(), baseline * 0.5);
}

TEST(HighwayScenario, AttackerFreeIntraAreaReachesAlmostEveryone) {
  HighwayConfig cfg = small_config();
  HighwayScenario scenario{cfg};
  const IntraAreaResult r = scenario.run_intra_area();
  ASSERT_GT(r.floods.size(), 10u);
  EXPECT_GT(r.overall_reception(), 0.95);
}

TEST(HighwayScenario, IntraAreaAttackBlocksPartOfTheRoad) {
  HighwayConfig cfg = small_config();
  cfg.attack_range_m = 500.0;
  cfg.attacker_x_m = 750.0;

  cfg.attack = AttackKind::kNone;
  const double baseline = HighwayScenario{cfg}.run_intra_area().overall_reception();
  cfg.attack = AttackKind::kIntraArea;
  const IntraAreaResult attacked = HighwayScenario{cfg}.run_intra_area();

  EXPECT_GT(attacked.packets_replayed, 0u);
  EXPECT_LT(attacked.overall_reception(), baseline - 0.1);
}

TEST(HighwayScenario, SameSeedIsDeterministic) {
  HighwayConfig cfg = small_config();
  cfg.sim_duration = 15_s;
  const InterAreaResult a = HighwayScenario{cfg}.run_inter_area();
  const InterAreaResult b = HighwayScenario{cfg}.run_inter_area();
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t i = 0; i < a.packets.size(); ++i) {
    EXPECT_EQ(a.packets[i].received, b.packets[i].received);
    EXPECT_DOUBLE_EQ(a.packets[i].source_x, b.packets[i].source_x);
  }
}

TEST(HighwayScenario, PairedWorkloadsMatchAcrossArms) {
  // The A/B pair must generate identical (time, source, direction)
  // workloads so gamma compares like with like.
  HighwayConfig cfg = small_config();
  cfg.sim_duration = 15_s;
  cfg.attack = AttackKind::kNone;
  const InterAreaResult a = HighwayScenario{cfg}.run_inter_area();
  cfg.attack = AttackKind::kInterArea;
  const InterAreaResult b = HighwayScenario{cfg}.run_inter_area();
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t i = 0; i < a.packets.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.packets[i].source_x, b.packets[i].source_x);
    EXPECT_EQ(a.packets[i].target, b.packets[i].target);
  }
}

TEST(AbRunner, ProducesConsistentAggregates) {
  HighwayConfig cfg = small_config();
  cfg.sim_duration = 15_s;
  cfg.attack_range_m = 600.0;
  cfg.attacker_x_m = 750.0;
  Fidelity f;
  f.runs = 1;
  const AbResult r = run_inter_area_ab(cfg, f);
  EXPECT_EQ(r.runs, 1u);
  EXPECT_GE(r.attack_rate, 0.0);
  EXPECT_LE(r.attack_rate, 1.0);
  EXPECT_GE(r.baseline_reception, r.attacked_reception);
}

TEST(Fidelity, EnvOverridesAreParsed) {
  setenv("VGR_RUNS", "7", 1);
  setenv("VGR_SIM_SECONDS", "42.5", 1);
  const Fidelity f = Fidelity::from_env(3);
  EXPECT_EQ(f.runs, 7u);
  EXPECT_DOUBLE_EQ(f.sim_seconds, 42.5);
  unsetenv("VGR_RUNS");
  unsetenv("VGR_SIM_SECONDS");
  const Fidelity d = Fidelity::from_env(3);
  EXPECT_EQ(d.runs, 3u);
  EXPECT_LT(d.sim_seconds, 0.0);
}

TEST(HighwayScenario, AblationKnobsPlumbThrough) {
  // interference / ACK / pseudonym switches must reach the stack without
  // breaking a short run.
  HighwayConfig cfg = small_config();
  cfg.sim_duration = 10_s;
  cfg.interference = true;
  cfg.gf_ack = true;
  cfg.pseudonym_period_s = 3.0;
  const InterAreaResult r = HighwayScenario{cfg}.run_inter_area();
  EXPECT_GT(r.packets.size(), 3u);
}

TEST(HighwayScenario, LatencyHistogramTracksDeliveries) {
  HighwayConfig cfg = small_config();
  cfg.sim_duration = 20_s;
  const InterAreaResult r = HighwayScenario{cfg}.run_inter_area();
  const auto lat = r.latency();
  std::size_t received = 0;
  for (const auto& p : r.packets) received += p.received ? 1 : 0;
  EXPECT_EQ(lat.count(), received);
  if (!lat.empty()) {
    EXPECT_GE(lat.min(), 0.0);
    EXPECT_LE(lat.median(), lat.quantile(0.95));
  }
}

// --- Hazard scenario (Fig 12) ------------------------------------------------

TEST(HazardScenario, CbfNotificationClosesEntranceQuickly) {
  HazardConfig cfg;
  cfg.mode = HazardConfig::Case::kCbfFlood;
  cfg.road_length_m = 2000.0;
  cfg.hazard_x_m = 1800.0;
  cfg.sim_duration = 30_s;
  const HazardResult r = HazardScenario{cfg}.run();
  EXPECT_TRUE(r.entrance_notified);
  EXPECT_LT(r.notified_at_s, 8.0);  // flood crosses 2 km in milliseconds
}

TEST(HazardScenario, BlockedCbfNotificationKeepsEntranceOpen) {
  HazardConfig cfg;
  cfg.mode = HazardConfig::Case::kCbfFlood;
  cfg.road_length_m = 2000.0;
  cfg.hazard_x_m = 1800.0;
  cfg.sim_duration = 30_s;
  cfg.attacked = true;
  const HazardResult r = HazardScenario{cfg}.run();
  EXPECT_FALSE(r.entrance_notified);
}

TEST(HazardScenario, AttackCausesMoreVehiclesOnRoad) {
  HazardConfig base;
  base.mode = HazardConfig::Case::kCbfFlood;
  base.road_length_m = 2000.0;
  base.hazard_x_m = 1800.0;
  base.sim_duration = 60_s;
  const HazardResult benign = HazardScenario{base}.run();
  HazardConfig atk = base;
  atk.attacked = true;
  const HazardResult attacked = HazardScenario{atk}.run();
  EXPECT_GT(attacked.final_vehicle_count, benign.final_vehicle_count);
}

// --- Curve scenario (Fig 13) ---------------------------------------------------

TEST(CurveScenario, BenignRunDeliversWarningAndAvoidsCollision) {
  CurveConfig cfg;
  const CurveResult r = run_curve_scenario(cfg);
  EXPECT_TRUE(r.warning_delivered);
  EXPECT_FALSE(r.collision);
  EXPECT_GT(r.min_gap_m, 4.5);
  ASSERT_FALSE(r.profile.empty());
}

TEST(CurveScenario, WarningArrivesViaRelayWithinContentionBound) {
  CurveConfig cfg;
  const CurveResult r = run_curve_scenario(cfg);
  ASSERT_TRUE(r.warning_delivered);
  // Warning sent at t=2; R1's CBF contention adds at most TO_MAX = 100 ms.
  EXPECT_LT(r.warning_delivered_at_s, cfg.warn_time_s + 0.15);
}

TEST(CurveScenario, AttackedRunSuppressesWarningAndCollides) {
  CurveConfig cfg;
  cfg.attacked = true;
  const CurveResult r = run_curve_scenario(cfg);
  EXPECT_FALSE(r.warning_delivered);
  EXPECT_TRUE(r.collision);
  EXPECT_GT(r.collision_time_s, 0.0);
}

TEST(CurveScenario, SpeedProfilesDivergeAfterWarning) {
  CurveConfig cfg;
  const CurveResult benign = run_curve_scenario(cfg);
  cfg.attacked = true;
  const CurveResult attacked = run_curve_scenario(cfg);
  // Shortly after the warning, the warned V2 is slower than the unwarned.
  auto speed_at = [](const CurveResult& r, double t) {
    for (const auto& s : r.profile) {
      if (s.t >= t) return s.v2_speed;
    }
    return r.profile.back().v2_speed;
  };
  EXPECT_LT(speed_at(benign, 4.0), speed_at(attacked, 4.0));
}

}  // namespace
}  // namespace vgr::scenario

// GeoAnycast: the packet is consumed by the first station inside the
// destination area, never flooded.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "vgr/attack/inter_area.hpp"
#include "vgr/gn/router.hpp"
#include "vgr/net/codec.hpp"
#include "vgr/security/authority.hpp"

namespace vgr::gn {
namespace {

using namespace vgr::sim::literals;

constexpr double kRange = 486.0;

struct Node {
  std::unique_ptr<StaticMobility> mobility;
  std::unique_ptr<Router> router;
  int deliveries{0};
};

class AnycastTest : public ::testing::Test {
 protected:
  AnycastTest() : medium_{events_, phy::AccessTechnology::kDsrc} {}

  Node& add_node(double x) {
    nodes_.push_back(std::make_unique<Node>());
    Node& n = *nodes_.back();
    n.mobility = std::make_unique<StaticMobility>(geo::Position{x, 0.0});
    const net::GnAddress addr{net::GnAddress::StationType::kPassengerCar,
                              net::MacAddress{0x800 + nodes_.size()}};
    RouterConfig cfg = RouterConfig::for_technology(phy::AccessTechnology::kDsrc);
    n.router = std::make_unique<Router>(events_, medium_, security::Signer{ca_.enroll(addr)},
                                        ca_.trust_store(), *n.mobility, cfg, kRange,
                                        rng_.fork());
    n.router->set_delivery_handler([&n](const Router::Delivery&) { ++n.deliveries; });
    return n;
  }

  void beacons() {
    for (auto& n : nodes_) n->router->send_beacon_now();
    events_.run_until(events_.now() + 100_ms);
  }
  void run_for(sim::Duration d) { events_.run_until(events_.now() + d); }

  sim::EventQueue events_;
  phy::Medium medium_;
  security::CertificateAuthority ca_;
  sim::Rng rng_{2468};
  std::vector<std::unique_ptr<Node>> nodes_;
};

TEST(GacCodec, RoundTrip) {
  net::Packet p;
  p.common.type = net::CommonHeader::HeaderType::kGeoAnycast;
  net::LongPositionVector pv;
  pv.address = net::GnAddress::from_bits(5);
  p.extended = net::GacHeader{9, pv, geo::GeoArea::circle({100.0, 0.0}, 50.0)};
  p.payload = {1, 2};
  const auto decoded = net::Codec::decode(net::Codec::encode(p));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, p);
  EXPECT_EQ(decoded->duplicate_key()->second, 9);
}

TEST_F(AnycastTest, ExactlyOneStationInAreaDelivers) {
  Node& src = add_node(0.0);
  Node& relay = add_node(400.0);
  Node& in1 = add_node(800.0);
  Node& in2 = add_node(900.0);
  Node& in3 = add_node(1000.0);
  beacons();

  src.router->send_geo_anycast(geo::GeoArea::circle({900.0, 0.0}, 150.0), {'a'});
  run_for(3_s);

  EXPECT_EQ(in1.deliveries + in2.deliveries + in3.deliveries, 1);
  EXPECT_EQ(relay.deliveries, 0);
  // No CBF contention happened anywhere: anycast never floods.
  std::uint64_t contentions = 0;
  for (auto& n : nodes_) contentions += n->router->stats().cbf_contentions;
  EXPECT_EQ(contentions, 0u);
}

TEST_F(AnycastTest, ForwardsAcrossMultipleHops) {
  Node& src = add_node(0.0);
  add_node(400.0);
  add_node(800.0);
  Node& target = add_node(1200.0);
  beacons();
  src.router->send_geo_anycast(geo::GeoArea::circle({1200.0, 0.0}, 60.0), {'m'});
  run_for(3_s);
  EXPECT_EQ(target.deliveries, 1);
}

TEST_F(AnycastTest, SourceInsideAreaConsumesLocally) {
  Node& src = add_node(500.0);
  Node& peer = add_node(520.0);
  beacons();
  src.router->send_geo_anycast(geo::GeoArea::circle({500.0, 0.0}, 100.0), {'s'});
  run_for(1_s);
  // The source itself satisfies the anycast; nothing goes on the air.
  EXPECT_EQ(peer.deliveries, 0);
}

TEST_F(AnycastTest, InterceptionAttackAlsoBreaksAnycast) {
  // GeoAnycast rides Greedy Forwarding outside the area, so the paper's
  // inter-area interception applies unchanged.
  Node& src = add_node(0.0);
  add_node(400.0);
  add_node(850.0);
  Node& target = add_node(1300.0);
  attack::InterAreaInterceptor atk{events_, medium_, {450.0, 10.0}, 900.0};
  beacons();
  run_for(10_ms);
  src.router->send_geo_anycast(geo::GeoArea::circle({1300.0, 0.0}, 60.0), {'x'});
  run_for(3_s);
  EXPECT_EQ(target.deliveries, 0);
  EXPECT_GE(atk.beacons_replayed(), 1u);
}

}  // namespace
}  // namespace vgr::gn

// Coverage for the small supporting pieces: the trace logger and the
// technology-derived router configuration defaults.

#include <gtest/gtest.h>

#include "vgr/gn/config.hpp"
#include "vgr/sim/log.hpp"

namespace vgr {
namespace {

TEST(Log, LevelRoundTrip) {
  const sim::LogLevel original = sim::Log::level();
  sim::Log::set_level(sim::LogLevel::kInfo);
  EXPECT_EQ(sim::Log::level(), sim::LogLevel::kInfo);
  EXPECT_TRUE(sim::Log::enabled(sim::LogLevel::kWarn));
  EXPECT_TRUE(sim::Log::enabled(sim::LogLevel::kInfo));
  EXPECT_FALSE(sim::Log::enabled(sim::LogLevel::kDebug));
  sim::Log::set_level(original);
}

TEST(Log, OffDisablesEverything) {
  const sim::LogLevel original = sim::Log::level();
  sim::Log::set_level(sim::LogLevel::kOff);
  EXPECT_FALSE(sim::Log::enabled(sim::LogLevel::kWarn));
  EXPECT_FALSE(sim::Log::enabled(sim::LogLevel::kTrace));
  // write() must be a safe no-op when disabled.
  sim::Log::write(sim::LogLevel::kWarn, sim::TimePoint::origin(), "tag", "msg");
  sim::Log::set_level(original);
}

TEST(Log, WriteEmitsWhenEnabled) {
  const sim::LogLevel original = sim::Log::level();
  sim::Log::set_level(sim::LogLevel::kTrace);
  // No crash and no way to capture stderr portably here; exercise the path.
  sim::Log::write(sim::LogLevel::kTrace, sim::TimePoint::at(sim::Duration::seconds(1.5)),
                  "test", "hello");
  sim::Log::set_level(original);
}

TEST(RouterConfig, DefaultsMatchStandardAndPaper) {
  const gn::RouterConfig cfg;
  EXPECT_EQ(cfg.beacon_interval, sim::Duration::seconds(3.0));
  EXPECT_EQ(cfg.beacon_jitter, sim::Duration::millis(750));
  EXPECT_EQ(cfg.locte_ttl, sim::Duration::seconds(20.0));
  EXPECT_EQ(cfg.cbf_to_min, sim::Duration::millis(1));
  EXPECT_EQ(cfg.cbf_to_max, sim::Duration::millis(100));
  EXPECT_EQ(cfg.default_hop_limit, 10);
  EXPECT_FALSE(cfg.plausibility_check);
  EXPECT_FALSE(cfg.rhl_drop_check);
  EXPECT_FALSE(cfg.gf_ack);
  EXPECT_FALSE(cfg.dad_enabled);
  EXPECT_EQ(cfg.rhl_drop_threshold, 3);
}

TEST(RouterConfig, ForTechnologyPicksNlosMedian) {
  const auto dsrc = gn::RouterConfig::for_technology(phy::AccessTechnology::kDsrc);
  EXPECT_DOUBLE_EQ(dsrc.cbf_dist_max_m, 486.0);
  EXPECT_DOUBLE_EQ(dsrc.plausibility_threshold_m, 486.0);
  const auto cv2x = gn::RouterConfig::for_technology(phy::AccessTechnology::kCv2x);
  EXPECT_DOUBLE_EQ(cv2x.cbf_dist_max_m, 593.0);
  EXPECT_DOUBLE_EQ(cv2x.plausibility_threshold_m, 593.0);
}

}  // namespace
}  // namespace vgr

// End-to-end crash test for the sweep supervisor: run the real vgr_sweep
// binary, SIGKILL it mid-study via the VGR_SWEEP_FAULT_AFTER fault hook,
// resume, and require the resumed JSON artifact to be byte-identical to an
// uninterrupted run of the same study (everything before the `"supervisor"`
// health block, which legitimately differs). Covered at VGR_THREADS=1 and 4
// because the determinism contract must hold under run-level parallelism.
//
// The binary path is injected at configure time (VGR_SWEEP_BIN, see
// tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace {

struct SweepFiles {
  std::string journal;
  std::string out;
};

std::string temp_file(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("vgr_killres_" + name + "_" + std::to_string(::getpid())))
      .string();
}

void cleanup(const SweepFiles& f) {
  std::filesystem::remove(f.journal);
  std::filesystem::remove(f.journal + ".manifest");
  std::filesystem::remove(f.out);
}

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  return std::string{std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
}

/// The comparison prefix: everything before the `"supervisor"` key. The
/// sweep writes results first and health counters strictly last for exactly
/// this cut.
std::string result_prefix(const std::string& json) {
  const std::size_t pos = json.find("\"supervisor\"");
  EXPECT_NE(pos, std::string::npos) << "artifact has no supervisor block:\n" << json;
  return json.substr(0, pos);
}

/// Forks and execs vgr_sweep <mode> on a tiny loss-only study. `threads`
/// becomes VGR_THREADS; `fault_after` (>= 0) arms the SIGKILL fault hook.
/// Returns the raw waitpid status.
int run_sweep(const char* mode, const SweepFiles& files, int threads, int fault_after) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    ADD_FAILURE() << "fork failed";
    return -1;
  }
  if (pid == 0) {
    // Child: tiny but non-trivial fidelity — 2 runs x 2 simulated seconds,
    // one seed per shard so the kill lands between journal appends.
    ::setenv("VGR_RUNS", "2", 1);
    ::setenv("VGR_SIM_SECONDS", "2", 1);
    ::setenv("VGR_THREADS", std::to_string(threads).c_str(), 1);
    ::setenv("VGR_SWEEP_SEED_CHUNK", "1", 1);
    ::setenv("VGR_SWEEP_BACKOFF_MS", "0", 1);
    if (fault_after >= 0) {
      ::setenv("VGR_SWEEP_FAULT_AFTER", std::to_string(fault_after).c_str(), 1);
    } else {
      ::unsetenv("VGR_SWEEP_FAULT_AFTER");
    }
    ::unsetenv("VGR_BENCH_JSON");
    // The bench narrates progress on stdout; keep the test log readable.
    std::freopen("/dev/null", "w", stdout);
    const char* const argv[] = {"vgr_sweep", mode,
                                "--journal", files.journal.c_str(),
                                "--out", files.out.c_str(),
                                "--loss", "0,0.4",
                                "--churn", "none",
                                "--flood", "none",
                                nullptr};
    ::execv(VGR_SWEEP_BIN, const_cast<char* const*>(argv));
    std::_Exit(127);  // exec failed
  }
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  return status;
}

/// One full kill-and-resume cycle at the given thread count; returns the
/// golden (uninterrupted) artifact so callers can compare across settings.
std::string kill_resume_cycle(int threads) {
  SweepFiles golden{temp_file("golden_j" + std::to_string(threads)),
                    temp_file("golden_o" + std::to_string(threads))};
  SweepFiles crashed{temp_file("crash_j" + std::to_string(threads)),
                     temp_file("crash_o" + std::to_string(threads))};
  cleanup(golden);
  cleanup(crashed);

  // Uninterrupted reference run.
  int status = run_sweep("run", golden, threads, /*fault_after=*/-1);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "golden run failed, status " << status;
  const std::string golden_json = slurp(golden.out);

  // Same study, SIGKILL'd after 5 journaled shards. The study has 12
  // shards (2 loss points x 3 arms x 2 seed chunks), so the kill lands
  // mid-sweep with real work both behind and ahead of it.
  status = run_sweep("run", crashed, threads, /*fault_after=*/5);
  EXPECT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "fault hook did not SIGKILL, status " << status;
  EXPECT_FALSE(std::filesystem::exists(crashed.out)) << "killed run wrote an artifact";

  // Resume from the journal: journaled shards replay, the rest execute.
  status = run_sweep("resume", crashed, threads, /*fault_after=*/-1);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "resume failed, status " << status;
  const std::string resumed_json = slurp(crashed.out);

  EXPECT_EQ(result_prefix(golden_json), result_prefix(resumed_json))
      << "resumed sweep diverged from the uninterrupted run (threads=" << threads << ")";

  cleanup(golden);
  cleanup(crashed);
  return golden_json;
}

TEST(SweepKillResume, ResumedSweepMatchesUninterruptedRun) {
  const std::string serial = kill_resume_cycle(/*threads=*/1);
  const std::string parallel = kill_resume_cycle(/*threads=*/4);
  // The determinism contract also holds across thread counts: the full
  // artifacts (supervisor block included — nothing was killed) agree.
  EXPECT_EQ(serial, parallel);
}

}  // namespace

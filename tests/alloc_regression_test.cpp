// Allocation-count regression harness (ROADMAP item 4).
//
// This binary overrides global operator new/delete with counting wrappers
// and runs a small intra-area flood, then asserts an upper bound on heap
// allocations per delivered packet. The bound pins the arena/SoA memory
// plane: EventQueue's slab-backed callback slots, the calendar queue,
// LocationTable's flat tables and the shared SecuredMessage envelope all
// show up here the moment one of them regresses to per-event heap churn.
//
// The test lives in its own test binary on purpose — the operator new
// override is global to the executable, and keeping it out of the other
// test binaries means their timings and ASan interposition are unaffected.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <numeric>

#include "vgr/scenario/highway.hpp"

namespace {

// Relaxed is fine: the counter is only read while the simulation is
// single-threaded (the scenario harness parallelises across runs, not
// within one, and this test performs exactly one run).
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_counting{false};

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(size ? size : 1);
}

void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

#if defined(__cpp_aligned_new)
void* operator new(std::size_t size, std::align_val_t align) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) != 0) {
    throw std::bad_alloc{};
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
#endif

namespace vgr::scenario {
namespace {

// A short dense flood: 1 km road at 15 m prefill spacing (~130 vehicles),
// 10 floods over 10 s. Small enough for a debug/sanitizer build, dense
// enough that CBF contention, duplicate suppression and the location-table
// steady state all exercise their hot paths.
HighwayConfig small_flood_config() {
  HighwayConfig cfg;
  cfg.road_length_m = 1000.0;
  cfg.entry_spacing_m = 15.0;
  cfg.prefill_spacing_m = 15.0;
  cfg.sim_duration = sim::Duration::seconds(10.0);
  cfg.packet_interval = sim::Duration::seconds(1.0);
  cfg.seed = 7;
  return cfg;
}

TEST(AllocRegression, AllocationsPerDeliveredPacketStayBounded) {
  HighwayScenario scenario(small_flood_config());

  g_alloc_count.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  const IntraAreaResult result = scenario.run_intra_area();
  g_counting.store(false, std::memory_order_relaxed);
  const std::uint64_t allocs = g_alloc_count.load(std::memory_order_relaxed);

  const std::uint64_t delivered = std::accumulate(
      result.floods.begin(), result.floods.end(), std::uint64_t{0},
      [](std::uint64_t acc, const IntraAreaFloodRecord& f) { return acc + f.reached; });
  ASSERT_GT(delivered, 100u) << "flood too small to be meaningful";
  ASSERT_FALSE(result.timed_out);

  const double per_packet = static_cast<double>(allocs) / static_cast<double>(delivered);
  std::fprintf(stderr,
               "[alloc-regression] %llu allocations / %llu delivered = %.1f per packet\n",
               static_cast<unsigned long long>(allocs),
               static_cast<unsigned long long>(delivered), per_packet);

  // Pre-refactor (PR 5 seed, std::function EventQueue + node-based
  // LocationTable + by-value SecuredMessage buffers) this measured 124.5
  // allocations per delivered packet. The arena/SoA memory plane has to
  // keep it >5x below that (<= 24.9); the bound leaves headroom over the
  // post-change steady state so toolchain jitter does not flake the gate.
  EXPECT_LT(per_packet, 20.0);
}

}  // namespace
}  // namespace vgr::scenario

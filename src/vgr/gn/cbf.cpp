#include "vgr/gn/cbf.hpp"

namespace vgr::gn {

sim::Duration cbf_timeout(double dist_m, sim::Duration to_min, sim::Duration to_max,
                          double dist_max_m) {
  if (dist_m > dist_max_m) return to_min;
  if (dist_m < 0.0) dist_m = 0.0;
  const double to_min_ns = static_cast<double>(to_min.count());
  const double to_max_ns = static_cast<double>(to_max.count());
  const double to_ns = to_max_ns + (to_min_ns - to_max_ns) / dist_max_m * dist_m;
  return sim::Duration::nanos(static_cast<std::int64_t>(to_ns));
}

void CbfBuffer::insert(const CbfKey& key, security::SecuredMessagePtr msg,
                       std::uint8_t received_rhl, sim::Duration timeout, RebroadcastFn on_timeout,
                       DeferFn defer, std::optional<sim::TimePoint> expiry) {
  if (entries_.contains(key)) return;
  entries_.emplace(key, Entry{std::move(msg), received_rhl, sim::EventId{},
                              std::move(on_timeout), std::move(defer), expiry});
  arm_timer(key, timeout);
}

void CbfBuffer::arm_timer(const CbfKey& key, sim::Duration timeout) {
  auto& entry = entries_.at(key);
  entry.timer = events_.schedule_in(timeout, cohort_, [this, key] {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return;
    if (it->second.expiry && events_.now() >= *it->second.expiry) {
      ++lifetime_expired_;
      entries_.erase(it);
      return;
    }
    if (it->second.defer) {
      if (const auto wait = it->second.defer()) {
        // Channel busy: stay buffered (a duplicate can still cancel us) and
        // retry once the channel frees up.
        arm_timer(key, *wait);
        return;
      }
    }
    security::SecuredMessagePtr msg = std::move(it->second.msg);
    RebroadcastFn cb = std::move(it->second.on_timeout);
    entries_.erase(it);
    cb(msg);
  });
}

CbfDuplicateOutcome CbfBuffer::on_duplicate(const CbfKey& key, std::uint8_t duplicate_rhl,
                                            bool rhl_check, std::uint8_t rhl_threshold) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return CbfDuplicateOutcome::kNoEntry;
  if (rhl_check) {
    const int drop = static_cast<int>(it->second.received_rhl) - static_cast<int>(duplicate_rhl);
    if (drop > static_cast<int>(rhl_threshold)) {
      // Too steep an RHL collapse: treat as a suspected forwarder
      // impersonation and keep contending (paper §V-B).
      return CbfDuplicateOutcome::kKeptByMitigation;
    }
  }
  events_.cancel(it->second.timer);
  entries_.erase(it);
  return CbfDuplicateOutcome::kDiscarded;
}

void CbfBuffer::clear() {
  // One generation bump retires every contention timer at once; the event
  // queue collects the retired slots lazily as they surface.
  events_.cancel_cohort(cohort_);
  entries_.clear();
}

}  // namespace vgr::gn

#include "vgr/gn/location_table.hpp"

#include <cassert>

namespace vgr::gn {

// --- FlatIndex ----------------------------------------------------------

std::uint64_t LocationTable::FlatIndex::mix(std::uint64_t key) {
  // splitmix64 finalizer: GN addresses differ mostly in their low MAC bits,
  // and linear probing wants those differences spread across the word.
  key += 0x9E3779B97F4A7C15ULL;
  key = (key ^ (key >> 30U)) * 0xBF58476D1CE4E5B9ULL;
  key = (key ^ (key >> 27U)) * 0x94D049BB133111EBULL;
  return key ^ (key >> 31U);
}

std::uint32_t LocationTable::FlatIndex::find(std::uint64_t key) const {
  if (slots_.empty()) return kNpos;
  const std::size_t mask = slots_.size() - 1;
  for (std::size_t s = static_cast<std::size_t>(mix(key)) & mask;; s = (s + 1) & mask) {
    const Slot& slot = slots_[s];
    if (slot.ctrl == Ctrl::kEmpty) return kNpos;
    if (slot.ctrl == Ctrl::kFull && slot.key == key) return slot.value;
  }
}

void LocationTable::FlatIndex::rehash(std::size_t capacity) {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(capacity, Slot{0, kNpos, Ctrl::kEmpty});
  used_ = full_;  // tombstones die here
  const std::size_t mask = capacity - 1;
  for (const Slot& slot : old) {
    if (slot.ctrl != Ctrl::kFull) continue;
    std::size_t s = static_cast<std::size_t>(mix(slot.key)) & mask;
    while (slots_[s].ctrl == Ctrl::kFull) s = (s + 1) & mask;
    slots_[s] = slot;
  }
}

void LocationTable::FlatIndex::reserve(std::size_t keys) {
  // Smallest power of two keeping `keys` entries under 3/4 occupancy.
  std::size_t capacity = 16;
  while (keys * 4 > capacity * 3) capacity *= 2;
  if (capacity > slots_.size()) rehash(capacity);
}

void LocationTable::FlatIndex::insert(std::uint64_t key, std::uint32_t value) {
  // Keep the probe-relevant occupancy (full + tombstones) under 3/4.
  if (slots_.empty() || (used_ + 1) * 4 > slots_.size() * 3) {
    rehash(slots_.empty() ? 16 : slots_.size() * 2);
  }
  const std::size_t mask = slots_.size() - 1;
  std::size_t s = static_cast<std::size_t>(mix(key)) & mask;
  while (slots_[s].ctrl == Ctrl::kFull) {
    assert(slots_[s].key != key && "insert of a present key");
    s = (s + 1) & mask;
  }
  if (slots_[s].ctrl == Ctrl::kEmpty) ++used_;  // reusing a tombstone keeps `used_`
  slots_[s] = Slot{key, value, Ctrl::kFull};
  ++full_;
}

void LocationTable::FlatIndex::assign(std::uint64_t key, std::uint32_t value) {
  assert(!slots_.empty());
  const std::size_t mask = slots_.size() - 1;
  for (std::size_t s = static_cast<std::size_t>(mix(key)) & mask;; s = (s + 1) & mask) {
    assert(slots_[s].ctrl != Ctrl::kEmpty && "assign of an absent key");
    if (slots_[s].ctrl == Ctrl::kFull && slots_[s].key == key) {
      slots_[s].value = value;
      return;
    }
  }
}

void LocationTable::FlatIndex::erase(std::uint64_t key) {
  if (slots_.empty()) return;
  const std::size_t mask = slots_.size() - 1;
  for (std::size_t s = static_cast<std::size_t>(mix(key)) & mask;; s = (s + 1) & mask) {
    if (slots_[s].ctrl == Ctrl::kEmpty) return;
    if (slots_[s].ctrl == Ctrl::kFull && slots_[s].key == key) {
      slots_[s].ctrl = Ctrl::kTombstone;
      --full_;
      return;
    }
  }
}

// --- LocationTable ------------------------------------------------------

std::uint32_t LocationTable::append_row(const net::LongPositionVector& pv, sim::TimePoint now,
                                        bool direct) {
  const auto row = static_cast<std::uint32_t>(addr_.size());
  addr_.push_back(pv.address);
  pv_.push_back(PvRow{pv.position, pv.timestamp, pv.speed_mps, pv.heading_rad, now + ttl_});
  neighbor_.push_back(direct ? 1 : 0);
  // New rows become the head of their MAC chain.
  const std::uint64_t mac = pv.address.mac().bits();
  const std::uint32_t head = by_mac_.find(mac);
  mac_next_.push_back(head);
  if (head == kNpos) {
    by_mac_.insert(mac, row);
  } else {
    by_mac_.assign(mac, row);
  }
  by_addr_.insert(pv.address.bits(), row);
  return row;
}

void LocationTable::reserve(std::size_t rows) {
  addr_.reserve(rows);
  pv_.reserve(rows);
  neighbor_.reserve(rows);
  mac_next_.reserve(rows);
  by_addr_.reserve(rows);
  by_mac_.reserve(rows);
}

bool LocationTable::update(const net::LongPositionVector& pv, sim::TimePoint now, bool direct) {
  const std::uint32_t row = by_addr_.find(pv.address.bits());
  if (row == kNpos) {
    append_row(pv, now, direct);
    return direct;
  }
  if (now < pv_[row].expiry) {  // live entry: refresh
    if (pv.timestamp < pv_[row].timestamp) return false;  // stale update
    const bool was_neighbor = neighbor_[row] != 0;
    pv_[row] = PvRow{pv.position, pv.timestamp, pv.speed_mps, pv.heading_rad, now + ttl_};
    neighbor_[row] = (was_neighbor || direct) ? 1 : 0;
    return direct && !was_neighbor;
  }
  // Expired entry re-learned: overwrite in place (indexes are unchanged).
  pv_[row] = PvRow{pv.position, pv.timestamp, pv.speed_mps, pv.heading_rad, now + ttl_};
  neighbor_[row] = direct ? 1 : 0;
  return direct;
}

void LocationTable::mac_unlink(std::uint32_t i) {
  const std::uint64_t mac = addr_[i].mac().bits();
  const std::uint32_t head = by_mac_.find(mac);
  assert(head != kNpos);
  if (head == i) {
    if (mac_next_[i] == kNpos) {
      by_mac_.erase(mac);
    } else {
      by_mac_.assign(mac, mac_next_[i]);
    }
    return;
  }
  std::uint32_t j = head;
  while (mac_next_[j] != i) j = mac_next_[j];
  mac_next_[j] = mac_next_[i];
}

void LocationTable::mac_relink(std::uint32_t from, std::uint32_t to) {
  const std::uint64_t mac = addr_[to].mac().bits();
  const std::uint32_t head = by_mac_.find(mac);
  assert(head != kNpos);
  if (head == from) {
    by_mac_.assign(mac, to);
    return;
  }
  std::uint32_t j = head;
  while (mac_next_[j] != from) j = mac_next_[j];
  mac_next_[j] = to;
}

void LocationTable::remove_row(std::uint32_t i) {
  mac_unlink(i);
  by_addr_.erase(addr_[i].bits());
  const auto last = static_cast<std::uint32_t>(addr_.size() - 1);
  if (i != last) {
    addr_[i] = addr_[last];
    pv_[i] = pv_[last];
    neighbor_[i] = neighbor_[last];
    mac_next_[i] = mac_next_[last];
    by_addr_.assign(addr_[i].bits(), i);
    mac_relink(last, i);
  }
  addr_.pop_back();
  pv_.pop_back();
  neighbor_.pop_back();
  mac_next_.pop_back();
}

bool LocationTable::erase(net::GnAddress addr) {
  const std::uint32_t row = by_addr_.find(addr.bits());
  if (row == kNpos) return false;
  remove_row(row);
  return true;
}

std::optional<LocTableEntry> LocationTable::find(net::GnAddress addr, sim::TimePoint now) const {
  const std::uint32_t row = by_addr_.find(addr.bits());
  if (row == kNpos || now >= pv_[row].expiry) return std::nullopt;
  return entry_at(row);
}

std::optional<LocTableEntry> LocationTable::find_by_mac(net::MacAddress mac,
                                                        sim::TimePoint now) const {
  // GN addresses embed the link-layer address; the MAC chain narrows the
  // candidates to the (usually single) address bound to `mac`. Two live
  // entries share a MAC across a pseudonym rotation (old and new alias),
  // and chain order must not pick between them: the newest binding wins —
  // that is the alias the peer is actually using — with the lowest GN
  // address as a deterministic tie-break.
  std::uint32_t best = kNpos;
  for (std::uint32_t row = by_mac_.find(mac.bits()); row != kNpos; row = mac_next_[row]) {
    if (now >= pv_[row].expiry) continue;
    const bool newer = best == kNpos || pv_[row].timestamp > pv_[best].timestamp ||
                       (pv_[row].timestamp == pv_[best].timestamp &&
                        addr_[row].bits() < addr_[best].bits());
    if (newer) best = row;
  }
  if (best == kNpos) return std::nullopt;
  return entry_at(best);
}

void LocationTable::for_each(sim::TimePoint now,
                             const std::function<void(const LocTableEntry&)>& visit) const {
  for (std::size_t row = 0; row < addr_.size(); ++row) {
    if (now < pv_[row].expiry) visit(entry_at(row));
  }
}

void LocationTable::purge(sim::TimePoint now) {
  // Backwards so a swap-remove only ever moves an already-visited row.
  for (std::size_t row = addr_.size(); row-- > 0;) {
    if (now >= pv_[row].expiry) remove_row(static_cast<std::uint32_t>(row));
  }
}

std::size_t LocationTable::size(sim::TimePoint now) const {
  std::size_t n = 0;
  for (std::size_t row = 0; row < addr_.size(); ++row) {
    if (now < pv_[row].expiry) ++n;
  }
  return n;
}

}  // namespace vgr::gn

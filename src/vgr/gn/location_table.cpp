#include "vgr/gn/location_table.hpp"

#include <algorithm>

namespace vgr::gn {

bool LocationTable::update(const net::LongPositionVector& pv, sim::TimePoint now, bool direct) {
  auto [it, inserted] = entries_.try_emplace(pv.address);
  LocTableEntry& entry = it->second;
  if (inserted) {
    mac_index_[pv.address.mac().bits()].push_back(pv.address);
  }
  if (!inserted && !entry.expired(now)) {
    if (pv.timestamp < entry.pv.timestamp) return false;  // stale update
    const bool was_neighbor = entry.is_neighbor;
    entry.pv = pv;
    entry.expiry = now + ttl_;
    entry.is_neighbor = was_neighbor || direct;
    return direct && !was_neighbor;
  }
  entry = LocTableEntry{pv, now + ttl_, direct};
  return direct;
}

void LocationTable::unindex(net::GnAddress addr) {
  const auto bucket = mac_index_.find(addr.mac().bits());
  if (bucket == mac_index_.end()) return;
  auto& addrs = bucket->second;
  addrs.erase(std::remove(addrs.begin(), addrs.end(), addr), addrs.end());
  if (addrs.empty()) mac_index_.erase(bucket);
}

bool LocationTable::erase(net::GnAddress addr) {
  if (entries_.erase(addr) == 0) return false;
  unindex(addr);
  return true;
}

std::optional<LocTableEntry> LocationTable::find(net::GnAddress addr, sim::TimePoint now) const {
  const auto it = entries_.find(addr);
  if (it == entries_.end() || it->second.expired(now)) return std::nullopt;
  return it->second;
}

std::optional<LocTableEntry> LocationTable::find_by_mac(net::MacAddress mac,
                                                        sim::TimePoint now) const {
  // GN addresses embed the link-layer address; the MAC index narrows the
  // candidates to the (usually single) address bound to `mac`. Two live
  // entries share a MAC across a pseudonym rotation (old and new alias),
  // and hash order must not pick between them: the newest binding wins —
  // that is the alias the peer is actually using — with the lowest GN
  // address as a deterministic tie-break.
  const auto bucket = mac_index_.find(mac.bits());
  if (bucket == mac_index_.end()) return std::nullopt;
  std::optional<LocTableEntry> best;
  // vgr-lint: ordered-ok (order-insensitive selection: newest binding, then lowest address)
  for (const net::GnAddress addr : bucket->second) {
    const auto it = entries_.find(addr);
    if (it == entries_.end() || it->second.expired(now)) continue;
    const LocTableEntry& entry = it->second;
    const bool newer = !best || entry.pv.timestamp > best->pv.timestamp ||
                       (entry.pv.timestamp == best->pv.timestamp &&
                        addr.bits() < best->pv.address.bits());
    if (newer) best = entry;
  }
  return best;
}

void LocationTable::for_each(sim::TimePoint now,
                             const std::function<void(const LocTableEntry&)>& visit) const {
  // Visitation is in hash order by contract: callers that derive a decision
  // from the walk must be order-insensitive (counting, min/max with an
  // explicit address tie-break — see select_next_hop) or sort what they
  // collect before acting on it.
  // vgr-lint: ordered-ok (contract documented above; consumers audited)
  for (const auto& [addr, entry] : entries_) {
    if (!entry.expired(now)) visit(entry);
  }
}

void LocationTable::purge(sim::TimePoint now) {
  // vgr-lint: ordered-ok (erasing expired entries commutes across orders)
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expired(now)) {
      unindex(it->first);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t LocationTable::size(sim::TimePoint now) const {
  std::size_t n = 0;
  // vgr-lint: ordered-ok (pure count, order-insensitive)
  for (const auto& [addr, entry] : entries_) {
    if (!entry.expired(now)) ++n;
  }
  return n;
}

}  // namespace vgr::gn

#include "vgr/gn/location_table.hpp"

namespace vgr::gn {

bool LocationTable::update(const net::LongPositionVector& pv, sim::TimePoint now, bool direct) {
  auto [it, inserted] = entries_.try_emplace(pv.address);
  LocTableEntry& entry = it->second;
  if (!inserted && !entry.expired(now)) {
    if (pv.timestamp < entry.pv.timestamp) return false;  // stale update
    const bool was_neighbor = entry.is_neighbor;
    entry.pv = pv;
    entry.expiry = now + ttl_;
    entry.is_neighbor = was_neighbor || direct;
    return direct && !was_neighbor;
  }
  entry = LocTableEntry{pv, now + ttl_, direct};
  return direct;
}

bool LocationTable::erase(net::GnAddress addr) { return entries_.erase(addr) > 0; }

std::optional<LocTableEntry> LocationTable::find(net::GnAddress addr, sim::TimePoint now) const {
  const auto it = entries_.find(addr);
  if (it == entries_.end() || it->second.expired(now)) return std::nullopt;
  return it->second;
}

std::optional<LocTableEntry> LocationTable::find_by_mac(net::MacAddress mac,
                                                        sim::TimePoint now) const {
  // GN addresses embed the link-layer address, so the lookup is a scan over
  // live entries; tables hold at most a few hundred entries in our scenarios.
  for (const auto& [addr, entry] : entries_) {
    if (addr.mac() == mac && !entry.expired(now)) return entry;
  }
  return std::nullopt;
}

void LocationTable::for_each(sim::TimePoint now,
                             const std::function<void(const LocTableEntry&)>& visit) const {
  for (const auto& [addr, entry] : entries_) {
    if (!entry.expired(now)) visit(entry);
  }
}

void LocationTable::purge(sim::TimePoint now) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expired(now)) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t LocationTable::size(sim::TimePoint now) const {
  std::size_t n = 0;
  for (const auto& [addr, entry] : entries_) {
    if (!entry.expired(now)) ++n;
  }
  return n;
}

}  // namespace vgr::gn

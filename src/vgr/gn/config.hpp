#pragma once

#include <cstddef>
#include <cstdint>

#include "vgr/phy/dcc.hpp"
#include "vgr/phy/mac.hpp"
#include "vgr/phy/technology.hpp"
#include "vgr/sim/time.hpp"

namespace vgr::gn {

/// What Greedy Forwarding does when no neighbour offers progress toward the
/// destination (ETSI EN 302 636-4-1 §E.2: buffer when store-carry-forward is
/// enabled, otherwise fall back to a broadcast).
enum class GfFallback { kBuffer, kBroadcast, kDrop };

/// Protocol constants and mitigation switches for one router instance.
/// Defaults follow ETSI EN 302 636-4-1 and the paper's simulation settings.
struct RouterConfig {
  // --- Beaconing (§III-B: every 3 s with a random jitter within 0.75 s).
  sim::Duration beacon_interval{sim::Duration::seconds(3.0)};
  sim::Duration beacon_jitter{sim::Duration::seconds(0.75)};
  /// ETSI §8.3: any transmitted GN packet restarts the beacon timer — a
  /// station whose CAMs/forwards already advertise its PV sends no extra
  /// beacons. Disable to force fixed-cadence beaconing regardless of
  /// traffic.
  bool beacon_suppression_on_activity{true};

  // --- Duplicate address detection (ETSI §10.2.1.5): hearing one's own GN
  //     address from another station signals an address conflict. Note the
  //     paper's beacon-replay attacker trips this constantly (it replays
  //     the victim's own beacons back at it), so DAD-triggered
  //     re-addressing would hand the attacker a *second* denial vector —
  //     see docs/attacks.md. Off by default, conflicts are always counted.
  bool dad_enabled{false};

  // --- Location table.
  sim::Duration locte_ttl{sim::Duration::seconds(20.0)};
  /// Freshness window for accepted position vectors: PVs with an older
  /// timestamp are discarded (the paper notes the timestamp *is* checked —
  /// it just doesn't stop an immediate replay).
  sim::Duration pv_max_age{sim::Duration::seconds(2.0)};

  // --- Contention-based forwarding (paper §III-C).
  sim::Duration cbf_to_min{sim::Duration::millis(1)};
  sim::Duration cbf_to_max{sim::Duration::millis(100)};
  /// Random addition to the contention timer, modelling access-layer (CSMA)
  /// backoff randomness. Without it, equidistant candidates rebroadcast in
  /// perfect sync and their mutual duplicates silence the whole next hop —
  /// an artifact a real radio never exhibits.
  sim::Duration cbf_jitter{sim::Duration::millis(2)};
  /// DIST_MAX: theoretical maximum communication range of the access
  /// technology in use.
  double cbf_dist_max_m{486.0};

  // --- Packet defaults.
  std::uint8_t default_hop_limit{10};
  sim::Duration default_lifetime{sim::Duration::seconds(60.0)};

  // --- Greedy forwarding.
  GfFallback gf_fallback{GfFallback::kBuffer};
  sim::Duration gf_retry_interval{sim::Duration::millis(500)};

  // --- Location service (ETSI §10.2.2), used by GeoUnicast when the
  //     destination's position is unknown.
  std::uint8_t ls_hop_limit{10};
  sim::Duration ls_retry_interval{sim::Duration::seconds(1.0)};
  int ls_max_retries{3};

  // --- ACK'd forwarding (extension). The paper's §V-A dismisses per-hop
  //     acknowledgements as costly; enabling this quantifies that claim:
  //     every GF unicast expects an ACK and retries past silent hops.
  bool gf_ack{false};
  sim::Duration gf_ack_timeout{sim::Duration::millis(10)};
  int gf_ack_max_retries{2};

  // --- Recovery layer (docs/robustness.md): store-carry-forward, neighbour
  //     soft-state and bounded retransmission. Everything below is off by
  //     default, and off means *free*: no RNG draws, no scheduled events,
  //     so pre-recovery results stay bit-identical.

  /// Store-carry-forward (ETSI §E.2 done properly): the GF buffer becomes
  /// capacity-bounded with head-drop, entries expire with their packet's
  /// lifetime instead of a fixed retry budget, and a newly learned (or
  /// revived) neighbour flushes the buffer immediately from beacon ingest.
  bool scf_enabled{false};
  std::size_t scf_max_packets{64};
  std::size_t scf_max_bytes{64 * 1024};

  /// Bounded per-hop retransmission: a GF unicast hop that stays silent is
  /// retransmitted to the *same* hop up to `retx_max_attempts` times with
  /// exponential backoff before the next-best neighbour is tried (contrast
  /// gf_ack, which reroutes on the first silence). Backoff for attempt k is
  /// `retx_backoff_base * 2^k` plus a uniform draw from
  /// `retx_backoff_jitter`, taken from the router's deterministic stream.
  bool retx_enabled{false};
  int retx_max_attempts{3};
  sim::Duration retx_backoff_base{sim::Duration::millis(10)};
  sim::Duration retx_backoff_jitter{sim::Duration::millis(2)};

  /// Neighbour soft-state monitor: beacon-miss counting quarantines stale
  /// hops long before the 20 s LocTE TTL and evicts dead ones, so greedy
  /// forwarding stops selecting crashed/departed nodes.
  bool nbr_monitor{false};
  int nbr_quarantine_after{2};
  int nbr_evict_after{4};

  /// Bound CBF contention entries by their packet's lifetime: a deferred
  /// entry on a persistently busy channel can otherwise outlive the packet
  /// it carries. Enabled alongside SCF by the scenario harness.
  bool cbf_lifetime_expiry{false};

  // --- MAC contention layer (docs/robustness.md): CSMA/CA channel access
  //     with a bounded transmit queue, plus reactive DCC gating beacon and
  //     forward rates from the measured channel busy ratio. Both default
  //     off; off is free (no queueing, no events, no RNG draws), so
  //     pre-MAC outputs stay bit-identical.
  phy::MacConfig mac{};
  phy::DccConfig dcc{};

  // --- Mitigation #1 (paper §V-A): plausibility check at forwarding time.
  bool plausibility_check{false};
  double plausibility_threshold_m{486.0};
  /// Extrapolate the neighbour's PV to "now" using its speed/heading before
  /// measuring the distance. This is what lets the check also filter stale
  /// entries of departed vehicles in attacker-free traffic.
  bool plausibility_extrapolate{true};

  // --- Mitigation #2 (paper §V-B): RHL-drop check on CBF duplicates.
  bool rhl_drop_check{false};
  std::uint8_t rhl_drop_threshold{3};

  /// Convenience: populate technology-dependent fields from Table II.
  static RouterConfig for_technology(phy::AccessTechnology tech) {
    RouterConfig cfg;
    cfg.cbf_dist_max_m = phy::range_table(tech).nlos_median_m;
    cfg.plausibility_threshold_m = phy::range_table(tech).nlos_median_m;
    return cfg;
  }
};

}  // namespace vgr::gn

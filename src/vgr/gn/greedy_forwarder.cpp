#include "vgr/gn/greedy_forwarder.hpp"

namespace vgr::gn {

std::optional<GfSelection> select_next_hop(const LocationTable& table, net::GnAddress self,
                                           geo::Position self_position, geo::Position destination,
                                           sim::TimePoint now, const GfPolicy& policy,
                                           const std::unordered_set<net::GnAddress>* exclude) {
  const double own_distance = geo::distance(self_position, destination);
  std::optional<GfSelection> best;
  double best_distance = own_distance;

  table.for_each(now, [&](const LocTableEntry& entry) {
    if (!entry.is_neighbor) return;           // GF only considers one-hop peers
    if (entry.pv.address == self) return;     // never forward to ourselves
    if (exclude != nullptr && exclude->contains(entry.pv.address)) return;
    if (policy.monitor != nullptr && !policy.monitor->alive(entry.pv.address, now)) return;
    const double d = geo::distance(entry.pv.position, destination);
    if (d > best_distance) return;            // no (better) progress
    if (d == best_distance) {
      // Exact-tie progress. for_each visits in hash order, which must not
      // pick the winner. The freshest position vector wins — two aliases of
      // one vehicle (pseudonym rotation) tie at the same position, and only
      // the newest binding's MAC is still live — then the lowest GN address
      // as a total order over distinct same-distance vehicles. A tie with
      // our own distance is still "no progress" (best is empty then).
      if (!best) return;
      const bool fresher = entry.pv.timestamp > best->next_hop.timestamp ||
                           (entry.pv.timestamp == best->next_hop.timestamp &&
                            entry.pv.address.bits() < best->next_hop.address.bits());
      if (!fresher) return;
    }
    if (policy.plausibility_check) {
      const geo::Position at_now =
          policy.extrapolate ? entry.pv.position_at(now) : entry.pv.position;
      if (geo::distance(self_position, at_now) > policy.threshold_m) return;
    }
    best_distance = d;
    best = GfSelection{entry.pv, d};
  });

  return best;
}

}  // namespace vgr::gn

#include "vgr/gn/greedy_forwarder.hpp"

namespace vgr::gn {

std::optional<GfSelection> select_next_hop(const LocationTable& table, net::GnAddress self,
                                           geo::Position self_position, geo::Position destination,
                                           sim::TimePoint now, const GfPolicy& policy,
                                           const std::unordered_set<net::GnAddress>* exclude) {
  const double own_distance = geo::distance(self_position, destination);
  const LocationTable::Columns cols = table.columns();
  std::size_t best = cols.size;  // sentinel: none
  double best_distance = own_distance;

  // Streams the table's SoA columns directly: the candidate filter tests
  // one dense byte (neighbour flag) per row, and only surviving rows pull
  // in the packed PV row — no node pointers, no per-entry callback.
  // Selection is a total order (distance, then freshest PV, then lowest
  // address), so row order cannot pick the winner.
  for (std::size_t i = 0; i < cols.size; ++i) {
    if (cols.is_neighbor[i] == 0) continue;      // GF only considers one-hop peers
    if (now >= cols.pv[i].expiry) continue;      // expired, awaiting purge
    if (cols.addr[i] == self) continue;          // never forward to ourselves
    if (exclude != nullptr && exclude->contains(cols.addr[i])) continue;
    if (policy.monitor != nullptr && !policy.monitor->alive(cols.addr[i], now)) continue;
    const double d = geo::distance(cols.pv[i].position, destination);
    if (d > best_distance) continue;             // no (better) progress
    if (d == best_distance) {
      // Exact-tie progress. The freshest position vector wins — two aliases
      // of one vehicle (pseudonym rotation) tie at the same position, and
      // only the newest binding's MAC is still live — then the lowest GN
      // address as a total order over distinct same-distance vehicles. A
      // tie with our own distance is still "no progress" (best empty then).
      if (best == cols.size) continue;
      const bool fresher = cols.pv[i].timestamp > cols.pv[best].timestamp ||
                           (cols.pv[i].timestamp == cols.pv[best].timestamp &&
                            cols.addr[i].bits() < cols.addr[best].bits());
      if (!fresher) continue;
    }
    if (policy.plausibility_check) {
      geo::Position at_now = cols.pv[i].position;
      if (policy.extrapolate) {
        const double dt = (now - cols.pv[i].timestamp).to_seconds();
        at_now = at_now +
                 geo::heading_vector(cols.pv[i].heading_rad) * (cols.pv[i].speed_mps * dt);
      }
      if (geo::distance(self_position, at_now) > policy.threshold_m) continue;
    }
    best_distance = d;
    best = i;
  }

  if (best == cols.size) return std::nullopt;
  return GfSelection{table.entry_at(best).pv, best_distance};
}

}  // namespace vgr::gn

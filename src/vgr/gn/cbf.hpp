#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>

#include "vgr/net/address.hpp"
#include "vgr/net/packet.hpp"
#include "vgr/security/secured_message.hpp"
#include "vgr/sim/event_queue.hpp"

namespace vgr::gn {

/// Contention timeout of the CBF algorithm (paper §III-C):
///
///   TO = TO_MIN                                        if DIST > DIST_MAX
///   TO = TO_MAX + (TO_MIN - TO_MAX)/DIST_MAX * DIST    if DIST <= DIST_MAX
///
/// i.e. linearly decreasing from TO_MAX at zero distance to TO_MIN at the
/// theoretical maximum range, so the farthest receiver rebroadcasts first.
[[nodiscard]] sim::Duration cbf_timeout(double dist_m, sim::Duration to_min,
                                        sim::Duration to_max, double dist_max_m);

/// Key identifying a contended packet: (source GN address, sequence number).
using CbfKey = std::pair<net::GnAddress, net::SequenceNumber>;

struct CbfKeyHash {
  std::size_t operator()(const CbfKey& k) const noexcept {
    std::uint64_t h = k.first.bits() * 0x9e3779b97f4a7c15ULL;
    h ^= static_cast<std::uint64_t>(k.second) + 0x517cc1b727220a95ULL + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

/// Outcome of presenting a duplicate packet to the contention buffer.
enum class CbfDuplicateOutcome {
  kNoEntry,           ///< nothing buffered under this key
  kDiscarded,         ///< timer stopped, buffered copy dropped (standard CBF)
  kKeptByMitigation,  ///< RHL-drop check rejected the duplicate; timer keeps running
};

/// The CBF packet buffer: one pending rebroadcast per contended packet.
///
/// A candidate forwarder inserts the packet with its computed timeout; if
/// the timer fires, the stored message is handed back for rebroadcast. If a
/// duplicate arrives first, standard CBF cancels the timer and discards —
/// *without* verifying who retransmitted or from where, which is the
/// loophole the intra-area blockage attack drives through. The optional
/// RHL-drop mitigation refuses duplicates whose RHL collapsed by more than
/// the configured threshold relative to the buffered copy.
class CbfBuffer {
 public:
  explicit CbfBuffer(sim::EventQueue& events)
      : events_{events}, cohort_{events.make_cohort()} {}
  ~CbfBuffer() { clear(); }

  CbfBuffer(const CbfBuffer&) = delete;
  CbfBuffer& operator=(const CbfBuffer&) = delete;

  using RebroadcastFn = std::function<void(const security::SecuredMessagePtr&)>;
  /// Polled when a contention timer fires: a returned duration defers the
  /// rebroadcast (carrier-sense busy channel); nullopt lets it proceed.
  using DeferFn = std::function<std::optional<sim::Duration>()>;

  /// Buffers `msg` (whose basic header already carries the decremented RHL
  /// it will be rebroadcast with) for `timeout`; `received_rhl` is the RHL
  /// the packet arrived with, kept for the mitigation comparison. No-op if
  /// the key is already buffered. A deferred entry stays buffered, so a
  /// duplicate arriving during the deferral still cancels it — this is how
  /// two equidistant candidates resolve to a single forwarder, as CSMA does
  /// on a real channel. `expiry`, when given, bounds the whole contention
  /// by the packet's lifetime: a deferral loop on a persistently busy
  /// channel can otherwise re-arm past the point where rebroadcasting the
  /// packet is useful (recovery layer, `RouterConfig::cbf_lifetime_expiry`).
  void insert(const CbfKey& key, security::SecuredMessagePtr msg, std::uint8_t received_rhl,
              sim::Duration timeout, RebroadcastFn on_timeout, DeferFn defer = {},
              std::optional<sim::TimePoint> expiry = std::nullopt);

  /// Handles a duplicate reception carrying `duplicate_rhl`. When
  /// `rhl_check` is enabled, the duplicate only cancels the contention if
  /// `received_rhl - duplicate_rhl <= rhl_threshold`.
  CbfDuplicateOutcome on_duplicate(const CbfKey& key, std::uint8_t duplicate_rhl, bool rhl_check,
                                   std::uint8_t rhl_threshold);

  [[nodiscard]] bool contains(const CbfKey& key) const { return entries_.contains(key); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Entries dropped because their packet lifetime ran out mid-contention.
  [[nodiscard]] std::uint64_t lifetime_expired() const { return lifetime_expired_; }

  /// Cancels all pending timers (used at router shutdown). The timers live
  /// in this buffer's cancellation cohort, so the whole population retires
  /// in O(1) regardless of how many contentions are in flight.
  void clear();

 private:
  struct Entry {
    security::SecuredMessagePtr msg;
    std::uint8_t received_rhl;
    sim::EventId timer;
    RebroadcastFn on_timeout;
    DeferFn defer;
    std::optional<sim::TimePoint> expiry;
  };

  void arm_timer(const CbfKey& key, sim::Duration timeout);

  sim::EventQueue& events_;
  sim::CohortId cohort_;  ///< every contention timer is scheduled into this
  std::unordered_map<CbfKey, Entry, CbfKeyHash> entries_;
  std::uint64_t lifetime_expired_{0};
};

}  // namespace vgr::gn

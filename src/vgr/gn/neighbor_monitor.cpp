#include "vgr/gn/neighbor_monitor.hpp"

#include <algorithm>

namespace vgr::gn {

bool NeighborMonitor::heard(net::GnAddress addr, sim::TimePoint now) {
  const auto it = last_heard_.find(addr);
  const bool revived = it == last_heard_.end() || !alive(addr, now);
  if (it == last_heard_.end()) {
    last_heard_.emplace(addr, now);
  } else {
    it->second = now;
  }
  if (revived) ++stats_.revivals;
  return revived;
}

void NeighborMonitor::forget(net::GnAddress addr) { last_heard_.erase(addr); }

int NeighborMonitor::missed(net::GnAddress addr, sim::TimePoint now) const {
  const auto it = last_heard_.find(addr);
  if (it == last_heard_.end()) return 0;
  const sim::Duration silence = now - it->second;
  if (silence <= sim::Duration::zero() || config_.miss_period <= sim::Duration::zero()) return 0;
  return static_cast<int>(silence.count() / config_.miss_period.count());
}

bool NeighborMonitor::alive(net::GnAddress addr, sim::TimePoint now) const {
  const auto it = last_heard_.find(addr);
  if (it == last_heard_.end()) return true;
  const sim::Duration silence = now - it->second;
  if (silence <= sim::Duration::zero() || config_.miss_period <= sim::Duration::zero()) return true;
  return silence.count() / config_.miss_period.count() < config_.quarantine_after;
}

std::vector<net::GnAddress> NeighborMonitor::evictable(sim::TimePoint now) const {
  std::vector<net::GnAddress> out;
  // vgr-lint: ordered-ok (collected set is sorted below before callers act on it)
  for (const auto& [addr, last] : last_heard_) {
    if (missed(addr, now) >= config_.evict_after) out.push_back(addr);
  }
  std::sort(out.begin(), out.end(),
            [](net::GnAddress a, net::GnAddress b) { return a.bits() < b.bits(); });
  return out;
}

std::size_t NeighborMonitor::quarantined(sim::TimePoint now) const {
  std::size_t n = 0;
  // vgr-lint: ordered-ok (pure count, order-insensitive)
  for (const auto& [addr, last] : last_heard_) {
    if (!alive(addr, now)) ++n;
  }
  return n;
}

void NeighborMonitor::clear() { last_heard_.clear(); }

}  // namespace vgr::gn

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>

#include "vgr/geo/vec2.hpp"
#include "vgr/security/secured_message.hpp"
#include "vgr/sim/time.hpp"

namespace vgr::gn {

/// Capacity bounds for the store-carry-forward buffer. Zero disables a
/// bound; the default-constructed config is fully unbounded, matching the
/// legacy GF retry buffer the router falls back to when the SCF recovery
/// layer is off.
struct ScfConfig {
  std::size_t max_packets{0};
  std::size_t max_bytes{0};
};

/// Lifetime counters of one SCF buffer.
struct ScfStats {
  std::uint64_t inserted{0};
  std::uint64_t flushed{0};     ///< handed back to the forwarder and sent
  std::uint64_t expired{0};     ///< lifetime ran out while buffered
  std::uint64_t head_drops{0};  ///< oldest entries evicted to fit a new one
};

/// Store-carry-forward packet buffer (ETSI EN 302 636-4-1 §7.4 / Annex E):
/// a GeoUnicast/GeoBroadcast with no eligible greedy next hop is queued
/// here instead of dropped, carried while the vehicle moves, and offered
/// back to the forwarder on the periodic retry tick or — with the recovery
/// layer on — the moment a new neighbour is learned from beacon ingest.
///
/// Strictly FIFO. When a capacity bound is exceeded the *oldest* entries
/// are dropped first (head-drop): under sustained overload the freshest
/// packet is the one whose delivery window is still open.
class ScfBuffer {
 public:
  struct Entry {
    security::SecuredMessagePtr msg;
    geo::Position destination;
    sim::TimePoint expiry;
    std::size_t bytes{0};
  };

  /// Send predicate used by `sweep`; returning true means the packet found
  /// a next hop and leaves the buffer.
  using TrySend = std::function<bool(const Entry&)>;

  explicit ScfBuffer(ScfConfig config = {}) : config_{config} {}

  /// Queues one packet (a shared envelope — buffering copies nothing),
  /// head-dropping older entries while a capacity bound is exceeded. The
  /// packet just queued is never the one evicted.
  void push(security::SecuredMessagePtr msg, geo::Position destination, sim::TimePoint expiry);

  /// Visits entries oldest-first: expired ones are removed and counted,
  /// live ones are offered to `try_send` and removed when it succeeds.
  void sweep(sim::TimePoint now, const TrySend& try_send);

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t bytes() const { return bytes_; }
  [[nodiscard]] const ScfStats& stats() const { return stats_; }
  [[nodiscard]] const ScfConfig& config() const { return config_; }

  void clear();

 private:
  void drop_front();

  ScfConfig config_;
  ScfStats stats_;
  std::deque<Entry> entries_;
  std::size_t bytes_{0};
};

}  // namespace vgr::gn

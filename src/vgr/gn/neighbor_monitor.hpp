#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "vgr/net/address.hpp"
#include "vgr/sim/time.hpp"

namespace vgr::gn {

struct NeighborMonitorConfig {
  /// One "miss" is one of these periods elapsed without hearing the
  /// neighbour directly. The router sets it to its beacon interval plus
  /// the full jitter, so an on-time beacon can never count as missed.
  sim::Duration miss_period{sim::Duration::seconds(3.75)};
  /// Misses before the neighbour is quarantined: still in the location
  /// table, but skipped by greedy next-hop selection.
  int quarantine_after{2};
  /// Misses before the entry should be evicted from the location table
  /// outright (well before the 20 s LocTE TTL would get there).
  int evict_after{4};
};

struct NeighborMonitorStats {
  std::uint64_t revivals{0};   ///< quarantined/unknown neighbour heard again
  std::uint64_t evictions{0};  ///< counted by the router when it evicts
};

/// Per-neighbour liveness soft state (ETSI EN 302 636-4-1 §8.1.2 keeps this
/// inside the LocTE; split out here so the location table stays a pure
/// position cache). Tracks when each direct neighbour was last heard and
/// derives beacon-miss counts from elapsed time — no per-beacon timers.
///
/// The point: the default 20 s LocTE TTL keeps a crashed or departed
/// neighbour attractive to greedy forwarding for up to 20 s, a black hole
/// under churn. With the monitor on, two missed beacon periods quarantine
/// the hop and four evict it.
class NeighborMonitor {
 public:
  explicit NeighborMonitor(NeighborMonitorConfig config = {}) : config_{config} {}

  /// Records a direct observation. Returns true when this *revived* the
  /// neighbour — first sight, or heard again after reaching quarantine —
  /// the edge the router uses to flush its SCF buffer.
  bool heard(net::GnAddress addr, sim::TimePoint now);

  /// Drops all soft state for `addr` (router eviction, identity rotation).
  void forget(net::GnAddress addr);

  /// Whole beacon-miss periods since `addr` was last heard; 0 for unknown
  /// addresses.
  [[nodiscard]] int missed(net::GnAddress addr, sim::TimePoint now) const;

  /// False once the neighbour has missed enough periods to be quarantined.
  /// Unknown addresses are alive: entries learned only indirectly fall back
  /// to the location-table TTL, exactly the pre-monitor behaviour.
  [[nodiscard]] bool alive(net::GnAddress addr, sim::TimePoint now) const;

  /// Addresses at or past the eviction threshold, sorted by address bits so
  /// the caller's eviction order is deterministic.
  [[nodiscard]] std::vector<net::GnAddress> evictable(sim::TimePoint now) const;

  [[nodiscard]] std::size_t tracked() const { return last_heard_.size(); }
  [[nodiscard]] std::size_t quarantined(sim::TimePoint now) const;
  [[nodiscard]] const NeighborMonitorConfig& config() const { return config_; }
  [[nodiscard]] const NeighborMonitorStats& stats() const { return stats_; }

  void clear();

 private:
  NeighborMonitorConfig config_;
  NeighborMonitorStats stats_;
  std::unordered_map<net::GnAddress, sim::TimePoint> last_heard_;
};

}  // namespace vgr::gn

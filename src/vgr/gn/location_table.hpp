#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "vgr/net/address.hpp"
#include "vgr/net/position_vector.hpp"
#include "vgr/sim/time.hpp"

namespace vgr::gn {

/// One location table entry: LocTE(addr, PV, TTL) in the paper's notation,
/// plus the ETSI IS_NEIGHBOUR flag that marks nodes heard *directly* (via a
/// beacon or as the link-layer sender). Greedy Forwarding only considers
/// neighbour entries.
struct LocTableEntry {
  net::LongPositionVector pv{};
  sim::TimePoint expiry{};
  bool is_neighbor{false};

  [[nodiscard]] bool expired(sim::TimePoint now) const { return now >= expiry; }
};

/// The per-router location table (ETSI EN 302 636-4-1 §8.1).
///
/// Entries are keyed by GN address and refreshed on every accepted position
/// vector; an entry lives `ttl` past its last update (paper default: 20 s).
/// There is intentionally *no* reachability validation here — the table
/// trusts any authenticated PV, which is vulnerability #2 of the paper.
///
/// Storage (ROADMAP item 4): dense SoA columns hold the position-vector
/// fields, indexed by an open-addressing flat table over the GN address
/// bits; a second flat table plus an intrusive per-row chain replaces the
/// old MAC -> vector-of-addresses index. The greedy forwarder streams the
/// columns directly (see columns()) instead of chasing unordered_map nodes,
/// and update()/find() are a hash, one linear probe and a handful of array
/// stores — no allocation once the table reaches its steady-state size.
class LocationTable {
 public:
  explicit LocationTable(sim::Duration ttl) : ttl_{ttl} {}

  /// Inserts or refreshes the entry for `pv.address`. Updates carrying a
  /// strictly older timestamp than the stored PV are ignored (out-of-order
  /// protection). `direct` marks a one-hop observation and sets the
  /// neighbour flag (sticky until the entry expires). Returns true when the
  /// observation produced a *new* live neighbour — first sight, re-learned
  /// after expiry or eviction, or an indirect entry upgraded by a direct
  /// one — the edge the router's SCF flush-on-new-neighbour keys on.
  bool update(const net::LongPositionVector& pv, sim::TimePoint now, bool direct);

  /// Pre-sizes the SoA columns and both flat indexes for `rows` entries.
  /// Purely a memory-plane hint: a router reserving its expected
  /// neighbourhood up front replaces the per-column doubling ladder (dozens
  /// of reallocations per router) with one batch of exact-size allocations.
  void reserve(std::size_t rows);

  /// Removes the entry outright (neighbour-monitor eviction, identity
  /// rotation). Returns whether anything was removed.
  bool erase(net::GnAddress addr);

  /// Live entry for `addr`, if any.
  [[nodiscard]] std::optional<LocTableEntry> find(net::GnAddress addr, sim::TimePoint now) const;

  /// Live entry whose GN address embeds `mac`, if any (used by CBF to locate
  /// the previous sender from the frame's link-layer source).
  [[nodiscard]] std::optional<LocTableEntry> find_by_mac(net::MacAddress mac,
                                                         sim::TimePoint now) const;

  /// Visits every live entry. Visitation is in dense-row order (insertion
  /// order perturbed by swap-removes): callers that derive a decision from
  /// the walk must be order-insensitive, exactly as under the old hash
  /// order.
  void for_each(sim::TimePoint now,
                const std::function<void(const LocTableEntry&)>& visit) const;

  /// The position-vector payload plus expiry of one row, packed so an
  /// update() refresh reads and writes one or two cache lines instead of
  /// four scattered columns (the dense flood refreshes millions of rows per
  /// run, each against a cold per-router table). The neighbour flag stays a
  /// separate 1-byte column: it is the greedy forwarder's *first* filter,
  /// and a dense byte stream rejects non-neighbour rows without pulling
  /// their 48-byte PV rows into cache.
  struct PvRow {
    geo::Position position;
    sim::TimePoint timestamp;
    double speed_mps;
    double heading_rad;
    sim::TimePoint expiry;
  };

  /// Raw column view over the dense rows for tight scans (the greedy
  /// forwarder's next-hop selection). Rows may be expired — callers must
  /// test `now < pv[i].expiry`. Pointers are invalidated by any mutation.
  struct Columns {
    const net::GnAddress* addr;
    const PvRow* pv;
    const std::uint8_t* is_neighbor;
    std::size_t size;
  };
  [[nodiscard]] Columns columns() const {
    return Columns{addr_.data(), pv_.data(), neighbor_.data(), addr_.size()};
  }

  /// Rebuilds one LocTableEntry from a dense row (e.g. a columns() hit).
  [[nodiscard]] LocTableEntry entry_at(std::size_t row) const {
    return LocTableEntry{
        net::LongPositionVector{addr_[row], pv_[row].timestamp, pv_[row].position,
                                pv_[row].speed_mps, pv_[row].heading_rad},
        pv_[row].expiry, neighbor_[row] != 0};
  }

  /// Drops expired entries (also done lazily by the accessors).
  void purge(sim::TimePoint now);

  /// Live entry count.
  [[nodiscard]] std::size_t size(sim::TimePoint now) const;

  /// Total entries including expired ones awaiting purge (for tests).
  [[nodiscard]] std::size_t raw_size() const { return addr_.size(); }

  [[nodiscard]] sim::Duration ttl() const { return ttl_; }
  void set_ttl(sim::Duration ttl) { ttl_ = ttl; }

 private:
  static constexpr std::uint32_t kNpos = 0xFFFF'FFFFU;

  /// Open-addressing u64 key -> u32 value map (linear probing, power-of-two
  /// capacity, tombstones reclaimed on rehash). Both indexes of the table —
  /// GN address -> dense row and MAC bits -> chain head — are instances.
  class FlatIndex {
   public:
    /// Pre-sizes the table for `keys` entries so the first inserts do not
    /// walk the 16 -> 32 -> ... doubling ladder.
    void reserve(std::size_t keys);
    /// Value for `key`, or kNpos.
    [[nodiscard]] std::uint32_t find(std::uint64_t key) const;
    /// Inserts `key` (must be absent) with `value`.
    void insert(std::uint64_t key, std::uint32_t value);
    /// Overwrites the value of `key` (must be present).
    void assign(std::uint64_t key, std::uint32_t value);
    /// Tombstones `key` if present.
    void erase(std::uint64_t key);

   private:
    enum class Ctrl : std::uint8_t { kEmpty = 0, kTombstone = 1, kFull = 2 };
    /// Key, value and control byte share one 16-byte slot so a probe step
    /// costs a single cache line, not one per parallel array — on the dense
    /// flood every router's index is cold and the probe misses dominate.
    struct Slot {
      std::uint64_t key;
      std::uint32_t value;
      Ctrl ctrl;
    };
    void rehash(std::size_t capacity);
    [[nodiscard]] static std::uint64_t mix(std::uint64_t key);

    std::vector<Slot> slots_;
    std::size_t used_{0};  ///< full + tombstone slots
    std::size_t full_{0};
  };

  /// Appends a fresh row for `pv`; returns its index.
  std::uint32_t append_row(const net::LongPositionVector& pv, sim::TimePoint now, bool direct);
  /// Swap-removes row `i`, fixing both indexes and the MAC chains.
  void remove_row(std::uint32_t i);
  /// Detaches row `i` from its MAC chain.
  void mac_unlink(std::uint32_t i);
  /// Rewrites chain references to `from` (just swap-moved) to point at `to`.
  void mac_relink(std::uint32_t from, std::uint32_t to);

  sim::Duration ttl_;

  // Dense SoA columns; row order is insertion order perturbed by
  // swap-removes (deterministic given the deterministic operation stream).
  std::vector<net::GnAddress> addr_;
  std::vector<PvRow> pv_;
  std::vector<std::uint8_t> neighbor_;
  /// Next row sharing the same MAC bits (kNpos terminates). Chains are
  /// almost always length one; length two across a pseudonym rotation.
  std::vector<std::uint32_t> mac_next_;

  FlatIndex by_addr_;  ///< GN address bits -> dense row
  FlatIndex by_mac_;   ///< MAC bits -> head row of the chain
};

}  // namespace vgr::gn

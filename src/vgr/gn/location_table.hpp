#pragma once

#include <functional>
#include <optional>
#include <unordered_map>

#include "vgr/net/address.hpp"
#include "vgr/net/position_vector.hpp"
#include "vgr/sim/time.hpp"

namespace vgr::gn {

/// One location table entry: LocTE(addr, PV, TTL) in the paper's notation,
/// plus the ETSI IS_NEIGHBOUR flag that marks nodes heard *directly* (via a
/// beacon or as the link-layer sender). Greedy Forwarding only considers
/// neighbour entries.
struct LocTableEntry {
  net::LongPositionVector pv{};
  sim::TimePoint expiry{};
  bool is_neighbor{false};

  [[nodiscard]] bool expired(sim::TimePoint now) const { return now >= expiry; }
};

/// The per-router location table (ETSI EN 302 636-4-1 §8.1).
///
/// Entries are keyed by GN address and refreshed on every accepted position
/// vector; an entry lives `ttl` past its last update (paper default: 20 s).
/// There is intentionally *no* reachability validation here — the table
/// trusts any authenticated PV, which is vulnerability #2 of the paper.
class LocationTable {
 public:
  explicit LocationTable(sim::Duration ttl) : ttl_{ttl} {}

  /// Inserts or refreshes the entry for `pv.address`. Updates carrying a
  /// strictly older timestamp than the stored PV are ignored (out-of-order
  /// protection). `direct` marks a one-hop observation and sets the
  /// neighbour flag (sticky until the entry expires). Returns true when the
  /// observation produced a *new* live neighbour — first sight, re-learned
  /// after expiry or eviction, or an indirect entry upgraded by a direct
  /// one — the edge the router's SCF flush-on-new-neighbour keys on.
  bool update(const net::LongPositionVector& pv, sim::TimePoint now, bool direct);

  /// Removes the entry outright (neighbour-monitor eviction, identity
  /// rotation). Returns whether anything was removed.
  bool erase(net::GnAddress addr);

  /// Live entry for `addr`, if any.
  [[nodiscard]] std::optional<LocTableEntry> find(net::GnAddress addr, sim::TimePoint now) const;

  /// Live entry whose GN address embeds `mac`, if any (used by CBF to locate
  /// the previous sender from the frame's link-layer source).
  [[nodiscard]] std::optional<LocTableEntry> find_by_mac(net::MacAddress mac,
                                                         sim::TimePoint now) const;

  /// Visits every live entry.
  void for_each(sim::TimePoint now,
                const std::function<void(const LocTableEntry&)>& visit) const;

  /// Drops expired entries (also done lazily by the accessors).
  void purge(sim::TimePoint now);

  /// Live entry count.
  [[nodiscard]] std::size_t size(sim::TimePoint now) const;

  /// Total entries including expired ones awaiting purge (for tests).
  [[nodiscard]] std::size_t raw_size() const { return entries_.size(); }

  [[nodiscard]] sim::Duration ttl() const { return ttl_; }
  void set_ttl(sim::Duration ttl) { ttl_ = ttl; }

 private:
  /// Drops `addr` from its MAC bucket (entry removal bookkeeping).
  void unindex(net::GnAddress addr);

  sim::Duration ttl_;
  std::unordered_map<net::GnAddress, LocTableEntry> entries_;
  /// Secondary index for `find_by_mac`: MAC bits -> GN addresses currently
  /// present in `entries_` that embed that MAC (usually one; two across a
  /// pseudonym rotation). Invariant: an address is listed here iff it is a
  /// key of `entries_` — expiry is still checked at lookup time, exactly as
  /// the full-table scan this index replaced did. CBF consults the previous
  /// sender's position once per contention, which made the O(N) scan the
  /// single hottest kernel of a dense flood.
  std::unordered_map<std::uint64_t, std::vector<net::GnAddress>> mac_index_;
};

}  // namespace vgr::gn

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "vgr/gn/cbf.hpp"
#include "vgr/gn/config.hpp"
#include "vgr/gn/greedy_forwarder.hpp"
#include "vgr/gn/location_table.hpp"
#include "vgr/gn/mobility.hpp"
#include "vgr/gn/neighbor_monitor.hpp"
#include "vgr/gn/scf_buffer.hpp"
#include "vgr/net/duplicate_detector.hpp"
#include "vgr/phy/medium.hpp"
#include "vgr/security/secured_message.hpp"
#include "vgr/sim/event_queue.hpp"
#include "vgr/sim/random.hpp"

namespace vgr::gn {

/// Counters exposed for tests and experiment metrics.
struct RouterStats {
  std::uint64_t beacons_sent{0};
  std::uint64_t beacons_received{0};
  std::uint64_t gbc_originated{0};
  std::uint64_t guc_originated{0};
  std::uint64_t delivered{0};
  std::uint64_t gf_unicast_forwards{0};
  std::uint64_t gf_broadcast_fallbacks{0};
  std::uint64_t gf_buffered{0};
  std::uint64_t gf_drops{0};
  std::uint64_t gf_plausibility_rejections{0};
  std::uint64_t cbf_contentions{0};
  std::uint64_t cbf_rebroadcasts{0};
  std::uint64_t cbf_suppressed{0};
  std::uint64_t cbf_mitigation_keeps{0};
  std::uint64_t auth_failures{0};
  // --- Verification-memo counters (TrustStore caches, docs/performance.md):
  //     one increment per ingest signature check. A hit replayed the verdict
  //     from the trust store's memo (same signer, signature and
  //     signed-portion bytes, re-checked in full); a miss recomputed it.
  std::uint64_t verify_memo_hits{0};
  std::uint64_t verify_memo_misses{0};
  // --- Hardened-ingest drop counters, one per cause (see Router::ingest):
  //     every malformed or semantically invalid frame increments exactly one
  //     of these and is dropped before any router state (location table,
  //     duplicate detector, CBF buffer) is touched.
  std::uint64_t ingest_decode_failures{0};   ///< corrupted wire failed decode
  std::uint64_t ingest_invalid_pv{0};        ///< NaN/inf position vector field
  std::uint64_t ingest_invalid_rhl{0};       ///< RHL 0 or above max hop limit
  std::uint64_t ingest_invalid_lifetime{0};  ///< non-positive packet lifetime
  std::uint64_t ingest_oversized_payload{0}; ///< payload above kMaxPayloadBytes
  std::uint64_t stale_pv_drops{0};
  std::uint64_t duplicates{0};
  std::uint64_t rhl_exhausted{0};
  std::uint64_t shb_sent{0};
  std::uint64_t tsb_originated{0};
  std::uint64_t tsb_forwards{0};
  std::uint64_t ls_requests_sent{0};
  std::uint64_t ls_replies_sent{0};
  std::uint64_t ls_resolved{0};
  std::uint64_t ls_failures{0};
  std::uint64_t acks_sent{0};
  std::uint64_t acks_received{0};
  std::uint64_t ack_retries{0};
  std::uint64_t ack_failures{0};
  std::uint64_t identity_rotations{0};
  std::uint64_t dad_conflicts{0};
  // --- Recovery layer (docs/robustness.md): SCF buffering, neighbour
  //     soft-state and bounded retransmission. All zero unless the matching
  //     RouterConfig knobs are on; the SCF buffer's own insert/flush/expiry
  //     counters live in Router::scf().stats().
  std::uint64_t scf_flush_triggers{0};    ///< new-neighbour edges that swept the buffer
  std::uint64_t retx_attempts{0};         ///< same-hop retransmissions sent
  std::uint64_t retx_exhausted{0};        ///< forwards that ran out of hops and attempts
  std::uint64_t retx_duplicate_reacks{0}; ///< same-hop retransmits re-ACKed, not dropped
  std::uint64_t neighbor_evictions{0};    ///< monitor-evicted location-table entries
  // --- MAC-plane drop mirrors (docs/robustness.md): snapshots of the
  //     contention layer's per-cause counters, refreshed on every stats()
  //     read. All zero unless RouterConfig::mac.enabled; the full counter
  //     set (retries, CBR samples, queue depth) lives in Router::mac().
  std::uint64_t mac_queue_overflow_drops{0};
  std::uint64_t mac_retry_exhausted_drops{0};
  std::uint64_t mac_dcc_gated_drops{0};
};

/// A complete GeoNetworking router for one station, per ETSI EN 302
/// 636-4-1: periodic beaconing feeding a location table, Greedy Forwarding
/// for packets outside their destination area, Contention-Based Forwarding
/// inside it, and a security envelope on every transmission.
///
/// The default configuration reproduces the standard's (vulnerable)
/// behaviour analysed by the paper; the two mitigations of §V are enabled
/// through `RouterConfig::plausibility_check` / `rhl_drop_check`.
class Router {
 public:
  /// Application-layer delivery of a packet whose destination includes us.
  /// Holds the shared envelope rather than a Packet copy: handlers that
  /// store the Delivery keep the message alive through `msg`, and handing
  /// one to a handler costs a refcount, not a payload duplication.
  struct Delivery {
    security::SecuredMessagePtr msg;
    sim::TimePoint at;
    net::MacAddress from_mac;

    [[nodiscard]] const net::Packet& packet() const { return msg->packet(); }
  };
  using DeliveryHandler = std::function<void(const Delivery&)>;

  Router(sim::EventQueue& events, phy::Medium& medium, security::Signer signer,
         std::shared_ptr<const security::TrustStore> trust, const MobilityProvider& mobility,
         RouterConfig config, double tx_range_m, sim::Rng rng);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Begins periodic beaconing (first beacon desynchronised uniformly over
  /// one interval). Idempotent.
  void start();

  /// Cancels all timers and detaches from the medium. Called automatically
  /// by the destructor; also used when a vehicle leaves the road.
  void shutdown();

  // --- Transmission API -----------------------------------------------

  /// GeoBroadcast `payload` into `area`. Returns the sequence number used.
  net::SequenceNumber send_geo_broadcast(const geo::GeoArea& area, net::Bytes payload,
                                         std::optional<std::uint8_t> hop_limit = std::nullopt,
                                         std::optional<sim::Duration> lifetime = std::nullopt);

  /// GeoAnycast: `payload` to *any one* station inside `area` — the first
  /// receiver inside the area consumes the packet instead of flooding it.
  net::SequenceNumber send_geo_anycast(const geo::GeoArea& area, net::Bytes payload,
                                       std::optional<std::uint8_t> hop_limit = std::nullopt,
                                       std::optional<sim::Duration> lifetime = std::nullopt);

  /// GeoUnicast `payload` to `destination`; `position_hint` seeds the
  /// destination position when we have no location-table entry for it.
  net::SequenceNumber send_geo_unicast(net::GnAddress destination, geo::Position position_hint,
                                       net::Bytes payload,
                                       std::optional<std::uint8_t> hop_limit = std::nullopt,
                                       std::optional<sim::Duration> lifetime = std::nullopt);

  /// GeoUnicast without a position hint: when the destination is not in the
  /// location table, the packet is held while the Location Service floods a
  /// request (ETSI §10.2.2) and sent once the reply arrives.
  void send_geo_unicast_resolving(net::GnAddress destination, net::Bytes payload,
                                  std::optional<std::uint8_t> hop_limit = std::nullopt,
                                  std::optional<sim::Duration> lifetime = std::nullopt);

  /// Single-hop broadcast (SHB): payload to direct neighbours, never
  /// forwarded — the transport cooperative-awareness messages use.
  void send_single_hop_broadcast(net::Bytes payload);

  /// Topologically-scoped broadcast (TSB): hop-limited flood with duplicate
  /// suppression, no geographic constraint.
  net::SequenceNumber send_topo_broadcast(net::Bytes payload,
                                          std::optional<std::uint8_t> hop_limit = std::nullopt);

  /// Sends one beacon immediately (also used by tests).
  void send_beacon_now();

  /// Injects `frame` exactly as if it had been received from the medium —
  /// the entry point the fuzz harness and the malformed-frame tests drive.
  /// Runs the full hardened ingest pipeline: wire decode (when `frame.raw`
  /// is set), semantic validation, signature verification, then routing.
  void ingest(const phy::Frame& frame) {
    if (running_) on_frame(frame);
  }

  /// Overrides the next originated sequence number. A rebooting station
  /// calls this with a random draw so its post-reboot packets do not reuse
  /// sequence numbers its peers' duplicate detectors already hold (which
  /// would black-hole the station until the window ages out) — see
  /// docs/robustness.md.
  void seed_sequence_number(net::SequenceNumber sn) { next_sequence_ = sn; }

  /// Swaps the signing identity (pseudonym rotation, ETSI TS 102 731
  /// privacy service): subsequent transmissions use the new certificate,
  /// GN address and link-layer address. Peers' stale entries for the old
  /// alias age out of their location tables naturally.
  void rotate_identity(security::EnrolledIdentity identity);

  // --- Introspection ----------------------------------------------------

  void set_delivery_handler(DeliveryHandler handler) { delivery_ = std::move(handler); }

  /// Additional delivery observers (facilities-layer services); invoked
  /// after the primary handler, in registration order.
  void add_delivery_listener(DeliveryHandler listener) {
    listeners_.push_back(std::move(listener));
  }

  /// Invoked when duplicate address detection fires (our own GN address
  /// heard from another station) and `RouterConfig::dad_enabled` is set.
  /// The handler typically rotates to a fresh identity. Conflicts are
  /// counted in stats regardless of the flag.
  void set_address_conflict_handler(std::function<void()> handler) {
    on_address_conflict_ = std::move(handler);
  }

  [[nodiscard]] net::GnAddress address() const { return address_; }
  [[nodiscard]] net::MacAddress mac() const { return address_.mac(); }
  [[nodiscard]] const RouterStats& stats() const {
    if (mac_layer_ != nullptr) {
      const phy::MacStats& m = mac_layer_->stats();
      stats_.mac_queue_overflow_drops = m.queue_overflow_drops;
      stats_.mac_retry_exhausted_drops = m.retry_exhausted_drops;
      stats_.mac_dcc_gated_drops = m.dcc_gated_drops;
    }
    return stats_;
  }
  /// The CSMA/CA contention layer, or nullptr when RouterConfig::mac is
  /// disabled (transmissions then hand off to the medium directly).
  [[nodiscard]] const phy::Mac* mac_layer() const { return mac_layer_.get(); }
  [[nodiscard]] const LocationTable& location_table() const { return loc_table_; }
  [[nodiscard]] LocationTable& location_table() { return loc_table_; }
  [[nodiscard]] const RouterConfig& config() const { return config_; }
  [[nodiscard]] RouterConfig& config() { return config_; }
  [[nodiscard]] bool running() const { return running_; }

  /// The greedy next hop the router would pick right now toward
  /// `destination` (before any fallback) — introspection for the
  /// staleness/quarantine tests and the churn experiments.
  [[nodiscard]] std::optional<GfSelection> next_hop_toward(geo::Position destination) const {
    return select_next_hop(loc_table_, address_, mobility_.position(), destination,
                           events_.now(), gf_policy());
  }
  [[nodiscard]] const NeighborMonitor& neighbor_monitor() const { return monitor_; }
  [[nodiscard]] const ScfBuffer& scf() const { return scf_; }
  /// CBF contention entries dropped by the packet-lifetime bound.
  [[nodiscard]] std::uint64_t cbf_lifetime_drops() const { return cbf_.lifetime_expired(); }

  /// The router's current long position vector (self PV).
  [[nodiscard]] net::LongPositionVector self_pv() const;

 private:
  void on_frame(const phy::Frame& frame);

  /// Routing pipeline behind `on_frame`, once the wire image (if any) has
  /// been decoded. `msg` is the *shared* immutable message — for a clean
  /// delivery it aliases `frame.msg`, which every co-receiver of the same
  /// transmission also sees, so nothing in here may mutate it; forwarding
  /// rewrites copy-on-mutate via `SecuredMessage::with_remaining_hop_limit`
  /// into a fresh shared envelope.
  void process_frame(const security::SecuredMessagePtr& msg, const phy::Frame& frame);

  /// Semantic ingest validation: rejects packets whose decoded fields could
  /// crash or poison the router (non-finite PV coordinates, impossible hop
  /// limits, non-positive lifetimes, oversized payloads), incrementing the
  /// matching per-cause drop counter. Runs before any state mutation.
  [[nodiscard]] bool validate_ingest(const net::Packet& p);

  // Handlers take the shared envelope by const reference to the pointer:
  // the per-receiver deep copy the old by-value signatures forced is
  // exactly what the encode-once/verify-once hot path removes. A handler
  // that forwards wraps its RHL rewrite in a fresh shared envelope and the
  // pointer is copied (never the message) from there on.
  void handle_beacon(const security::SecuredMessagePtr& msg);
  void handle_gbc(const security::SecuredMessagePtr& msg, const phy::Frame& frame);
  void handle_guc(const security::SecuredMessagePtr& msg, const phy::Frame& frame);
  void handle_gac(const security::SecuredMessagePtr& msg, const phy::Frame& frame);
  void handle_tsb(const security::SecuredMessagePtr& msg, const phy::Frame& frame);
  void handle_ls_request(const security::SecuredMessagePtr& msg, const phy::Frame& frame);
  void handle_ls_reply(const security::SecuredMessagePtr& msg, const phy::Frame& frame);
  void handle_ack(const security::SecuredMessagePtr& msg);
  void send_ls_request(net::GnAddress target);
  void ls_retry(net::GnAddress target);
  void send_ack_for(const net::Packet& packet, net::MacAddress to);
  void arm_ack_timer(const CbfKey& key);
  void ack_timeout(const CbfKey& key);

  /// Per-hop confirmation is armed for every GF unicast when either the
  /// legacy ACK extension or the recovery layer's bounded retransmission is
  /// on; they share the ACK wire format and pending-map machinery.
  [[nodiscard]] bool hop_confirm_enabled() const {
    return config_.gf_ack || config_.retx_enabled;
  }
  void arm_hop_confirm(security::SecuredMessagePtr msg, geo::Position destination,
                       net::GnAddress hop);
  /// Out of hops and attempts: park the packet in the SCF buffer when the
  /// recovery layer allows, otherwise count the failure.
  void hop_confirm_give_up(const CbfKey& key);

  /// Buffer deadline for a packet entering the SCF buffer: its remaining
  /// lifetime with the recovery layer on, the legacy fixed retry budget
  /// (20 retry intervals) otherwise.
  [[nodiscard]] sim::TimePoint scf_expiry(const net::Packet& p) const;

  void schedule_monitor_sweep();
  void run_monitor_sweep();

  /// Routes `msg` (a GBC/GUC whose RHL is already decremented) toward
  /// `destination` with Greedy Forwarding, applying the configured fallback.
  /// `exclude` removes unresponsive hops during ACK retries.
  void gf_route(security::SecuredMessagePtr msg, geo::Position destination, bool allow_buffer,
                const std::unordered_set<net::GnAddress>* exclude = nullptr);

  void cbf_contend(security::SecuredMessagePtr msg, std::uint8_t received_rhl,
                   const phy::Frame& frame);

  void deliver(const security::SecuredMessagePtr& msg, net::MacAddress from);
  void transmit(const security::SecuredMessagePtr& msg, net::MacAddress dst);
  void schedule_beacon();
  void schedule_gf_retry();
  void run_gf_retries();

  [[nodiscard]] GfPolicy gf_policy() const {
    return GfPolicy{config_.plausibility_check, config_.plausibility_threshold_m,
                    config_.plausibility_extrapolate,
                    config_.nbr_monitor ? &monitor_ : nullptr};
  }

  sim::EventQueue& events_;
  phy::Medium& medium_;
  security::Signer signer_;
  std::shared_ptr<const security::TrustStore> trust_;
  const MobilityProvider& mobility_;
  RouterConfig config_;
  sim::Rng rng_;

  net::GnAddress address_;
  phy::RadioId radio_{};
  /// CSMA/CA + DCC contention layer between transmit() and the medium.
  /// Only constructed when RouterConfig::mac.enabled — a null MAC keeps the
  /// synchronous router-to-medium handoff (and the RNG stream) of pre-MAC
  /// builds bit-identical. Its events live in the `timers_` cohort.
  std::unique_ptr<phy::Mac> mac_layer_;
  LocationTable loc_table_;
  net::DuplicateDetector duplicates_;
  CbfBuffer cbf_;
  /// Mutable only for the MAC-mirror refresh in stats().
  mutable RouterStats stats_;
  DeliveryHandler delivery_;
  std::vector<DeliveryHandler> listeners_;
  std::function<void()> on_address_conflict_;

  /// Store-carry-forward buffer. With `RouterConfig::scf_enabled` it runs
  /// capacity-bounded with per-packet lifetime expiry and is flushed the
  /// moment a new neighbour is learned; disabled, it is configured
  /// unbounded and reproduces the legacy GF retry buffer bit-for-bit.
  ScfBuffer scf_;
  NeighborMonitor monitor_;
  /// Cancellation cohort holding every router-owned timer (beacon, GF
  /// retry, monitor sweep, LS retries, ACK timers); shutdown retires the
  /// whole population with one generation bump instead of walking the
  /// pending maps. CBF contention timers live in the CbfBuffer's own cohort.
  sim::CohortId timers_{};
  sim::EventId gf_retry_event_{};
  sim::EventId monitor_event_{};
  sim::EventId beacon_event_{};
  net::SequenceNumber next_sequence_{0};
  bool running_{false};

  /// Location-service state: packets queued for an unresolved destination.
  struct LsPending {
    struct QueuedUnicast {
      net::Bytes payload;
      std::uint8_t hop_limit;
      sim::Duration lifetime;
    };
    std::vector<QueuedUnicast> queue;
    sim::EventId retry_timer{};
    int retries{0};
  };
  std::unordered_map<net::GnAddress, LsPending> ls_pending_;

  /// ACK'd-forwarding / retransmission state: unicast forwards awaiting
  /// confirmation. `retries` counts hop *reroutes* (legacy gf_ack
  /// semantics); with the recovery layer on, each hop additionally gets
  /// `retx_max_attempts` same-hop retransmissions with exponential backoff
  /// before being rerouted past.
  struct AckPending {
    security::SecuredMessagePtr msg;
    geo::Position destination;
    std::unordered_set<net::GnAddress> tried;
    sim::EventId timer{};
    int retries{0};
    net::GnAddress current_hop{};
    int attempts_this_hop{0};
  };
  std::unordered_map<CbfKey, AckPending, CbfKeyHash> ack_pending_;
};

}  // namespace vgr::gn

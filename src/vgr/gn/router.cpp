#include "vgr/gn/router.hpp"

#include <cassert>
#include <cmath>
#include <utility>

#include "vgr/net/codec.hpp"
#include "vgr/sim/log.hpp"

namespace vgr::gn {
namespace {

bool finite_lpv(const net::LongPositionVector& pv) {
  return std::isfinite(pv.position.x) && std::isfinite(pv.position.y) &&
         std::isfinite(pv.speed_mps) && std::isfinite(pv.heading_rad);
}

bool finite_spv(const net::ShortPositionVector& pv) {
  return std::isfinite(pv.position.x) && std::isfinite(pv.position.y);
}

bool finite_area(const geo::GeoArea& a) {
  return std::isfinite(a.center().x) && std::isfinite(a.center().y) &&
         std::isfinite(a.a()) && std::isfinite(a.b()) && std::isfinite(a.azimuth()) &&
         a.a() > 0.0 && a.b() > 0.0;
}

}  // namespace

using sim::Log;
using sim::LogLevel;

Router::Router(sim::EventQueue& events, phy::Medium& medium, security::Signer signer,
               std::shared_ptr<const security::TrustStore> trust,
               const MobilityProvider& mobility, RouterConfig config, double tx_range_m,
               sim::Rng rng)
    : events_{events},
      medium_{medium},
      signer_{std::move(signer)},
      trust_{std::move(trust)},
      mobility_{mobility},
      config_{config},
      rng_{rng},
      address_{signer_.certificate().subject},
      loc_table_{config.locte_ttl},
      cbf_{events} {
  assert(trust_ != nullptr);
  timers_ = events_.make_cohort();
  // Pre-size the location table for a dense neighbourhood so steady-state
  // beacon ingest never reallocates its columns or indexes (the SoA memory
  // plane's no-allocation invariant; ~10 KiB per router up front).
  loc_table_.reserve(128);
  if (config_.scf_enabled) {
    scf_ = ScfBuffer{ScfConfig{config_.scf_max_packets, config_.scf_max_bytes}};
  }
  if (config_.nbr_monitor) {
    NeighborMonitorConfig mc;
    // Beacon interval plus the full jitter: an on-time beacon never misses.
    mc.miss_period = config_.beacon_interval + config_.beacon_jitter;
    mc.quarantine_after = config_.nbr_quarantine_after;
    mc.evict_after = config_.nbr_evict_after;
    monitor_ = NeighborMonitor{mc};
  }
  phy::Medium::NodeConfig node;
  node.mac = address_.mac();
  node.position = [this] { return mobility_.position(); };
  node.tx_range_m = tx_range_m;
  node.promiscuous = false;
  // The router's own queue doubles as its strip-affinity handle: in a
  // strip-parallel run the scenario hands each station a per-strip handle,
  // and the medium uses it to keep same-strip deliveries on this wheel.
  node.home = &events_;
  radio_ = medium_.add_node(std::move(node), [this](const phy::Frame& f, phy::RadioId) {
    if (running_) on_frame(f);
  });
  if (config_.mac.enabled) {
    // The MAC's backoff stream is forked from the router's only when the
    // layer is on: a disabled MAC consumes nothing from any stream, which
    // keeps MAC-off runs bit-identical to pre-MAC builds. Its events join
    // the `timers_` cohort so shutdown retires them with everything else.
    // Audited mixed role: this is the only fork of rng_, it happens at
    // construction before any draw can run, and it is gated on mac.enabled —
    // so MAC-off draw sequences are untouched and the MAC-on stream layout is
    // frozen. Splitting a dedicated MAC seeder now would reseed every MAC
    // backoff and break byte-identity with pinned runs.
    mac_layer_ = std::make_unique<phy::Mac>(events_, medium_, radio_, timers_, config_.mac,
                                            // vgr-lint: rng-stream-ok (see audit note above)
                                            config_.dcc, rng_.fork());
  }
  running_ = true;
}

Router::~Router() { shutdown(); }

void Router::start() {
  if (beacon_event_.value != 0 && events_.pending(beacon_event_)) return;
  if (config_.nbr_monitor && !events_.pending(monitor_event_)) schedule_monitor_sweep();
  // Desynchronise stations: first beacon lands uniformly within one period.
  const auto delay =
      sim::Duration::nanos(static_cast<std::int64_t>(
          rng_.uniform() * static_cast<double>(config_.beacon_interval.count())));
  beacon_event_ = events_.schedule_in(delay, timers_, [this] {
    send_beacon_now();
    schedule_beacon();
  });
}

void Router::shutdown() {
  if (!running_) return;
  running_ = false;
  // Every router-owned timer (beacon, GF retry, monitor sweep, LS retries,
  // ACK/retransmission timers) lives in one cancellation cohort: a single
  // generation bump retires them all, instead of walking the pending maps
  // tombstoning timers one by one. cbf_.clear() does the same for the CBF
  // contention timers via the buffer's own cohort.
  events_.cancel_cohort(timers_);
  ls_pending_.clear();
  ack_pending_.clear();
  cbf_.clear();
  scf_.clear();
  monitor_.clear();
  medium_.remove_node(radio_);
}

void Router::rotate_identity(security::EnrolledIdentity identity) {
  signer_ = security::Signer{std::move(identity)};
  address_ = signer_.certificate().subject;
  medium_.set_mac(radio_, address_.mac());
  ++stats_.identity_rotations;
}

net::LongPositionVector Router::self_pv() const {
  net::LongPositionVector pv;
  pv.address = address_;
  pv.timestamp = events_.now();
  pv.position = mobility_.position();
  pv.speed_mps = mobility_.speed_mps();
  pv.heading_rad = mobility_.heading_rad();
  return pv;
}

void Router::schedule_beacon() {
  if (!running_) return;
  const auto jitter = sim::Duration::nanos(static_cast<std::int64_t>(
      rng_.uniform() * static_cast<double>(config_.beacon_jitter.count())));
  beacon_event_ = events_.schedule_in(config_.beacon_interval + jitter, timers_, [this] {
    send_beacon_now();
    schedule_beacon();
  });
}

void Router::send_beacon_now() {
  if (!running_) return;
  net::Packet p;
  p.basic.remaining_hop_limit = 1;  // beacons are single-hop
  p.basic.lifetime = config_.beacon_interval;
  p.common.type = net::CommonHeader::HeaderType::kBeacon;
  p.common.max_hop_limit = 1;
  p.extended = net::BeaconHeader{self_pv()};
  transmit(security::share(security::SecuredMessage::sign(p, signer_)),
           net::MacAddress::broadcast());
  ++stats_.beacons_sent;
}

net::SequenceNumber Router::send_geo_broadcast(const geo::GeoArea& area, net::Bytes payload,
                                               std::optional<std::uint8_t> hop_limit,
                                               std::optional<sim::Duration> lifetime) {
  assert(running_);
  const std::uint8_t hops = hop_limit.value_or(config_.default_hop_limit);
  net::Packet p;
  p.basic.remaining_hop_limit = hops;
  p.basic.lifetime = lifetime.value_or(config_.default_lifetime);
  p.common.type = net::CommonHeader::HeaderType::kGeoBroadcast;
  p.common.max_hop_limit = hops;
  p.extended = net::GbcHeader{next_sequence_, self_pv(), area};
  p.payload = std::move(payload);
  const net::SequenceNumber sn = next_sequence_++;

  // Remember our own packet so an echo from a forwarder is a duplicate.
  duplicates_.check_and_record(p);
  ++stats_.gbc_originated;

  auto msg = security::share(security::SecuredMessage::sign(p, signer_));
  if (area.contains(mobility_.position())) {
    // Source inside the destination area broadcasts immediately; receivers
    // contend via CBF (paper §II).
    transmit(msg, net::MacAddress::broadcast());
  } else {
    gf_route(std::move(msg), area.center(), /*allow_buffer=*/true);
  }
  return sn;
}

net::SequenceNumber Router::send_geo_unicast(net::GnAddress destination,
                                             geo::Position position_hint, net::Bytes payload,
                                             std::optional<std::uint8_t> hop_limit,
                                             std::optional<sim::Duration> lifetime) {
  assert(running_);
  const std::uint8_t hops = hop_limit.value_or(config_.default_hop_limit);
  geo::Position dest_pos = position_hint;
  if (const auto entry = loc_table_.find(destination, events_.now())) {
    dest_pos = entry->pv.position;
  }
  net::Packet p;
  p.basic.remaining_hop_limit = hops;
  p.basic.lifetime = lifetime.value_or(config_.default_lifetime);
  p.common.type = net::CommonHeader::HeaderType::kGeoUnicast;
  p.common.max_hop_limit = hops;
  net::ShortPositionVector dest;
  dest.address = destination;
  dest.timestamp = events_.now();
  dest.position = dest_pos;
  p.extended = net::GucHeader{next_sequence_, self_pv(), dest};
  p.payload = std::move(payload);
  const net::SequenceNumber sn = next_sequence_++;

  duplicates_.check_and_record(p);
  ++stats_.guc_originated;
  gf_route(security::share(security::SecuredMessage::sign(p, signer_)), dest_pos,
           /*allow_buffer=*/true);
  return sn;
}

net::SequenceNumber Router::send_geo_anycast(const geo::GeoArea& area, net::Bytes payload,
                                             std::optional<std::uint8_t> hop_limit,
                                             std::optional<sim::Duration> lifetime) {
  assert(running_);
  const std::uint8_t hops = hop_limit.value_or(config_.default_hop_limit);
  net::Packet p;
  p.basic.remaining_hop_limit = hops;
  p.basic.lifetime = lifetime.value_or(config_.default_lifetime);
  p.common.type = net::CommonHeader::HeaderType::kGeoAnycast;
  p.common.max_hop_limit = hops;
  p.extended = net::GacHeader{next_sequence_, self_pv(), area};
  p.payload = std::move(payload);
  const net::SequenceNumber sn = next_sequence_++;
  duplicates_.check_and_record(p);
  ++stats_.gbc_originated;  // anycast shares the geo-addressed counter
  // A source already inside the area trivially satisfies "any one station".
  if (!area.contains(mobility_.position())) {
    gf_route(security::share(security::SecuredMessage::sign(p, signer_)), area.center(),
             /*allow_buffer=*/true);
  }
  return sn;
}

void Router::handle_gac(const security::SecuredMessagePtr& msg, const phy::Frame& frame) {
  const net::Packet& p = msg->packet();
  if (duplicates_.check_and_record(p, frame.src)) {
    ++stats_.duplicates;
    return;
  }
  const net::GacHeader& gac = *p.gac();
  if (gac.area.contains(mobility_.position())) {
    // First station inside the area consumes the packet — no flooding.
    deliver(msg, frame.src);
    return;
  }
  const std::uint8_t received_rhl = p.basic.remaining_hop_limit;
  if (received_rhl <= 1) {
    ++stats_.rhl_exhausted;
    return;
  }
  gf_route(security::share(msg->with_remaining_hop_limit(received_rhl - 1)), gac.area.center(),
           /*allow_buffer=*/true);
}

void Router::send_geo_unicast_resolving(net::GnAddress destination, net::Bytes payload,
                                        std::optional<std::uint8_t> hop_limit,
                                        std::optional<sim::Duration> lifetime) {
  assert(running_);
  if (const auto entry = loc_table_.find(destination, events_.now())) {
    send_geo_unicast(destination, entry->pv.position, std::move(payload), hop_limit, lifetime);
    return;
  }
  // Unknown destination: queue the payload and kick off the location
  // service. Additional packets for the same destination share the lookup.
  auto [it, inserted] = ls_pending_.try_emplace(destination);
  it->second.queue.push_back(LsPending::QueuedUnicast{
      std::move(payload), hop_limit.value_or(config_.default_hop_limit),
      lifetime.value_or(config_.default_lifetime)});
  if (inserted) {
    send_ls_request(destination);
    it->second.retry_timer = events_.schedule_in(
        config_.ls_retry_interval, timers_, [this, destination] { ls_retry(destination); });
  }
}

void Router::send_ls_request(net::GnAddress target) {
  net::Packet p;
  p.basic.remaining_hop_limit = config_.ls_hop_limit;
  p.common.type = net::CommonHeader::HeaderType::kLsRequest;
  p.common.max_hop_limit = config_.ls_hop_limit;
  p.extended = net::LsRequestHeader{next_sequence_++, self_pv(), target};
  duplicates_.check_and_record(p);
  ++stats_.ls_requests_sent;
  transmit(security::share(security::SecuredMessage::sign(p, signer_)),
           net::MacAddress::broadcast());
}

void Router::ls_retry(net::GnAddress target) {
  if (!running_) return;
  const auto it = ls_pending_.find(target);
  if (it == ls_pending_.end()) return;  // resolved meanwhile
  if (++it->second.retries >= config_.ls_max_retries) {
    stats_.ls_failures += it->second.queue.size();
    ls_pending_.erase(it);
    return;
  }
  send_ls_request(target);
  it->second.retry_timer = events_.schedule_in(config_.ls_retry_interval, timers_,
                                               [this, target] { ls_retry(target); });
}

void Router::send_single_hop_broadcast(net::Bytes payload) {
  assert(running_);
  net::Packet p;
  p.basic.remaining_hop_limit = 1;
  p.common.type = net::CommonHeader::HeaderType::kSingleHopBroadcast;
  p.common.max_hop_limit = 1;
  p.extended = net::ShbHeader{self_pv()};
  p.payload = std::move(payload);
  ++stats_.shb_sent;
  transmit(security::share(security::SecuredMessage::sign(p, signer_)),
           net::MacAddress::broadcast());
}

net::SequenceNumber Router::send_topo_broadcast(net::Bytes payload,
                                                std::optional<std::uint8_t> hop_limit) {
  assert(running_);
  const std::uint8_t hops = hop_limit.value_or(config_.default_hop_limit);
  net::Packet p;
  p.basic.remaining_hop_limit = hops;
  p.common.type = net::CommonHeader::HeaderType::kTopoBroadcast;
  p.common.max_hop_limit = hops;
  p.extended = net::TsbHeader{next_sequence_, self_pv()};
  p.payload = std::move(payload);
  const net::SequenceNumber sn = next_sequence_++;
  duplicates_.check_and_record(p);
  ++stats_.tsb_originated;
  transmit(security::share(security::SecuredMessage::sign(p, signer_)),
           net::MacAddress::broadcast());
  return sn;
}

void Router::on_frame(const phy::Frame& frame) {
  // 0. Wire hardening. A fault-injected (or hostile) delivery carries its
  //    damaged wire image in `frame.raw`; decode it before trusting anything.
  //    An undecodable frame is counted and dropped here, exactly like a
  //    frame that failed the access layer's CRC. When decode succeeds the
  //    decoded packet replaces the structured one under the original
  //    security envelope: damage inside the signed portion then dies at the
  //    signature check below, while basic-header damage (RHL, lifetime —
  //    outside the signature scope, as EN 302 636-4-1 allows) slips past
  //    verification and must be caught by the semantic checks instead.
  //
  //    The clean fast path hands `frame.msg` onward by shared pointer: one
  //    transmission's frame is shared by every receiver, and nothing past
  //    this point mutates the message in place.
  if (!frame.raw.empty()) {
    auto decoded = net::Codec::decode(frame.raw);
    if (!decoded.has_value()) {
      ++stats_.ingest_decode_failures;
      return;
    }
    const security::SecuredMessagePtr reassembled =
        security::share(security::SecuredMessage::from_parts(
            std::move(*decoded), frame.msg->signer(), frame.msg->signature()));
    process_frame(reassembled, frame);
    return;
  }
  process_frame(frame.msg, frame);
}

void Router::process_frame(const security::SecuredMessagePtr& msg, const phy::Frame& frame) {
  // 1. Semantic validation, before any router state is touched: a malformed
  //    packet must never reach the location table, the duplicate detector or
  //    the greedy-forwarding geometry.
  if (!validate_ingest(msg->packet())) return;

  // 2. Security: every GeoNetworking message must verify against the trust
  //    store. Forged messages (e.g. a blackhole attacker's fake beacons) die
  //    here; *replayed* ones sail through — the paper's key observation.
  //    The first receiver of a transmission pays the full check; its
  //    co-receivers (and later hops) hit the trust store's memo.
  const security::VerifyResult verdict = msg->verify_detailed(*trust_);
  if (verdict.from_memo) {
    ++stats_.verify_memo_hits;
  } else {
    ++stats_.verify_memo_misses;
  }
  if (!verdict.ok) {
    ++stats_.auth_failures;
    return;
  }
  const net::Packet& p = msg->packet();
  const net::LongPositionVector& so = p.source_pv();
  if (so.address == address_) {
    // Our own GN address arriving from the air: either a genuine address
    // collision or — far more likely under attack — a replay of our own
    // packet (the interceptor replays every beacon it hears, including the
    // victim's). ETSI DAD would re-address here; see docs/attacks.md for
    // why that amplifies the attack.
    ++stats_.dad_conflicts;
    if (config_.dad_enabled && on_address_conflict_) on_address_conflict_();
    return;
  }

  const sim::TimePoint now = events_.now();

  // 3. Location table update. Beacon PVs must be fresh (timestamp check);
  //    multi-hop packets may legitimately carry an older source PV, which
  //    updates the table but never sets the neighbour flag unless the
  //    source itself is the link-layer sender.
  const bool direct = p.is_beacon() || frame.src == so.address.mac();
  if (p.is_beacon() && now - so.timestamp > config_.pv_max_age) {
    ++stats_.stale_pv_drops;
    return;
  }
  bool revived = false;
  if (config_.nbr_monitor && direct) revived = monitor_.heard(so.address, now);
  const bool new_neighbor = loc_table_.update(so, now, direct) || revived;
  if (config_.scf_enabled && new_neighbor && !scf_.empty()) {
    // Store-carry-forward flush: a just-learned (or revived) neighbour may
    // unblock buffered packets — try immediately instead of waiting for the
    // next retry tick.
    ++stats_.scf_flush_triggers;
    run_gf_retries();
  }
  if (p.is_beacon()) {
    handle_beacon(msg);
    return;
  }

  // ACK'd-forwarding / retransmission: confirm any unicast routed through us
  // back to the previous hop, before duplicate filtering (the retransmitter
  // may be retrying because our earlier ACK got lost).
  if (hop_confirm_enabled() && frame.dst == address_.mac() && p.duplicate_key().has_value()) {
    if (config_.retx_enabled && duplicates_.is_same_hop_retransmit(p, frame.src)) {
      ++stats_.retx_duplicate_reacks;
    }
    send_ack_for(p, frame.src);
  }

  switch (p.common.type) {
    case net::CommonHeader::HeaderType::kGeoBroadcast:
      handle_gbc(msg, frame);
      break;
    case net::CommonHeader::HeaderType::kGeoUnicast:
      handle_guc(msg, frame);
      break;
    case net::CommonHeader::HeaderType::kGeoAnycast:
      handle_gac(msg, frame);
      break;
    case net::CommonHeader::HeaderType::kTopoBroadcast:
      handle_tsb(msg, frame);
      break;
    case net::CommonHeader::HeaderType::kSingleHopBroadcast:
      deliver(msg, frame.src);
      break;
    case net::CommonHeader::HeaderType::kLsRequest:
      handle_ls_request(msg, frame);
      break;
    case net::CommonHeader::HeaderType::kLsReply:
      handle_ls_reply(msg, frame);
      break;
    case net::CommonHeader::HeaderType::kAck:
      handle_ack(msg);
      break;
    default:
      break;
  }
}

bool Router::validate_ingest(const net::Packet& p) {
  // Position vectors: a NaN/inf coordinate poisons every distance
  // comparison downstream (NaN compares false against everything, so a
  // greedy-forwarding argmin silently misroutes instead of crashing).
  bool geometry_ok = finite_lpv(p.source_pv());
  if (geometry_ok) {
    if (const auto* u = p.guc()) {
      geometry_ok = finite_spv(u->destination);
    } else if (const auto* lr = p.ls_reply()) {
      geometry_ok = finite_spv(lr->destination);
    } else if (const auto* g = p.gbc()) {
      geometry_ok = finite_area(g->area);
    } else if (const auto* a = p.gac()) {
      geometry_ok = finite_area(a->area);
    }
  }
  if (!geometry_ok) {
    ++stats_.ingest_invalid_pv;
    return false;
  }
  // Hop limits: an honest station sends RHL >= 1 and forwarders only ever
  // decrement it, so RHL == 0 (should have died a hop earlier), MHL == 0,
  // or RHL > MHL (an impossible history) cannot occur on a clean channel.
  if (p.basic.remaining_hop_limit == 0 || p.common.max_hop_limit == 0 ||
      p.basic.remaining_hop_limit > p.common.max_hop_limit) {
    ++stats_.ingest_invalid_rhl;
    return false;
  }
  // A non-positive lifetime means the packet is already dead; buffering or
  // forwarding it would only feed CBF/GF machinery with expired state.
  if (p.basic.lifetime <= sim::Duration::zero()) {
    ++stats_.ingest_invalid_lifetime;
    return false;
  }
  // Payload cap mirrors the codec's wire-format bound; the structured path
  // (in-process attacker handing the router an absurd packet) is checked
  // here so both ingest paths share one limit.
  if (p.payload.size() > net::kMaxPayloadBytes) {
    ++stats_.ingest_oversized_payload;
    return false;
  }
  return true;
}

void Router::handle_tsb(const security::SecuredMessagePtr& msg, const phy::Frame& frame) {
  const net::Packet& p = msg->packet();
  if (duplicates_.check_and_record(p, frame.src)) {
    ++stats_.duplicates;
    return;
  }
  deliver(msg, frame.src);
  const std::uint8_t received_rhl = p.basic.remaining_hop_limit;
  if (received_rhl <= 1) {
    ++stats_.rhl_exhausted;
    return;
  }
  ++stats_.tsb_forwards;
  transmit(security::share(msg->with_remaining_hop_limit(received_rhl - 1)),
           net::MacAddress::broadcast());
}

void Router::handle_ls_request(const security::SecuredMessagePtr& msg, const phy::Frame& frame) {
  const net::Packet& p = msg->packet();
  if (duplicates_.check_and_record(p, frame.src)) {
    ++stats_.duplicates;
    return;
  }
  const net::LsRequestHeader& request = *p.ls_request();
  if (request.target == address_) {
    // We are being looked for: answer with our PV, routed back to the
    // requester's advertised position.
    net::Packet reply;
    reply.basic.remaining_hop_limit = config_.ls_hop_limit;
    reply.common.type = net::CommonHeader::HeaderType::kLsReply;
    reply.common.max_hop_limit = config_.ls_hop_limit;
    net::ShortPositionVector dest;
    dest.address = request.source_pv.address;
    dest.timestamp = events_.now();
    dest.position = request.source_pv.position;
    reply.extended = net::LsReplyHeader{next_sequence_++, self_pv(), dest};
    duplicates_.check_and_record(reply);
    ++stats_.ls_replies_sent;
    gf_route(security::share(security::SecuredMessage::sign(reply, signer_)), dest.position,
             /*allow_buffer=*/true);
    return;
  }
  // Not for us: keep flooding within the hop budget.
  const std::uint8_t received_rhl = p.basic.remaining_hop_limit;
  if (received_rhl <= 1) {
    ++stats_.rhl_exhausted;
    return;
  }
  transmit(security::share(msg->with_remaining_hop_limit(received_rhl - 1)),
           net::MacAddress::broadcast());
}

void Router::handle_ls_reply(const security::SecuredMessagePtr& msg, const phy::Frame& frame) {
  const net::Packet& p = msg->packet();
  if (duplicates_.check_and_record(p, frame.src)) {
    ++stats_.duplicates;
    return;
  }
  const net::LsReplyHeader& reply = *p.ls_reply();
  if (reply.destination.address != address_) {
    const std::uint8_t received_rhl = p.basic.remaining_hop_limit;
    if (received_rhl <= 1) {
      ++stats_.rhl_exhausted;
      return;
    }
    geo::Position dest_pos = reply.destination.position;
    if (const auto entry = loc_table_.find(reply.destination.address, events_.now())) {
      dest_pos = entry->pv.position;
    }
    gf_route(security::share(msg->with_remaining_hop_limit(received_rhl - 1)), dest_pos,
             /*allow_buffer=*/true);
    return;
  }
  // Resolution arrived: the reply's source PV *is* the target's position
  // (already folded into our location table by on_frame). Flush the queue.
  const net::GnAddress target = reply.source_pv.address;
  const auto it = ls_pending_.find(target);
  if (it == ls_pending_.end()) return;  // duplicate resolution or timed out
  events_.cancel(it->second.retry_timer);
  LsPending pending = std::move(it->second);
  ls_pending_.erase(it);
  ++stats_.ls_resolved;
  for (auto& queued : pending.queue) {
    send_geo_unicast(target, reply.source_pv.position, std::move(queued.payload),
                     queued.hop_limit, queued.lifetime);
  }
}

void Router::send_ack_for(const net::Packet& packet, net::MacAddress to) {
  const auto key = packet.duplicate_key();
  assert(key.has_value());
  net::Packet ack;
  ack.basic.remaining_hop_limit = 1;
  ack.common.type = net::CommonHeader::HeaderType::kAck;
  ack.common.max_hop_limit = 1;
  ack.extended = net::AckHeader{self_pv(), key->first, key->second};
  ++stats_.acks_sent;
  transmit(security::share(security::SecuredMessage::sign(ack, signer_)), to);
}

void Router::handle_ack(const security::SecuredMessagePtr& msg) {
  const net::AckHeader& ack = *msg->packet().ack();
  const CbfKey key{ack.acked_source, ack.acked_sequence};
  const auto it = ack_pending_.find(key);
  if (it == ack_pending_.end()) return;  // late or duplicate ACK
  events_.cancel(it->second.timer);
  ack_pending_.erase(it);
  ++stats_.acks_received;
}

void Router::arm_ack_timer(const CbfKey& key) {
  auto& pending = ack_pending_.at(key);
  events_.cancel(pending.timer);
  sim::Duration timeout = config_.gf_ack_timeout;
  if (config_.retx_enabled) {
    // Exponential backoff: base * 2^attempt, plus a uniform jitter draw
    // from the router's deterministic stream so colliding retransmitters
    // desynchronise identically for every thread count.
    timeout = config_.retx_backoff_base;
    for (int i = 0; i < pending.attempts_this_hop; ++i) timeout += timeout;
    timeout += config_.retx_backoff_jitter * rng_.uniform();
  }
  pending.timer = events_.schedule_in(timeout, timers_, [this, key] { ack_timeout(key); });
}

void Router::arm_hop_confirm(security::SecuredMessagePtr msg, geo::Position destination,
                             net::GnAddress hop) {
  const auto key_opt = msg->packet().duplicate_key();
  if (!key_opt) return;
  const CbfKey key{key_opt->first, key_opt->second};
  auto& pending = ack_pending_[key];
  pending.msg = std::move(msg);
  pending.destination = destination;
  pending.tried.insert(hop);
  pending.current_hop = hop;
  pending.attempts_this_hop = 0;
  arm_ack_timer(key);
}

void Router::hop_confirm_give_up(const CbfKey& key) {
  const auto it = ack_pending_.find(key);
  AckPending& pending = it->second;
  events_.cancel(pending.timer);
  if (config_.retx_enabled) ++stats_.retx_exhausted;
  if (config_.retx_enabled && config_.scf_enabled &&
      config_.gf_fallback == GfFallback::kBuffer) {
    // Out of hops and attempts, but not out of lifetime: park the packet in
    // the SCF buffer — a new neighbour or the retry tick gives it another
    // chance.
    const sim::TimePoint expiry = scf_expiry(pending.msg->packet());
    scf_.push(std::move(pending.msg), pending.destination, expiry);
    ++stats_.gf_buffered;
    schedule_gf_retry();
  } else {
    ++stats_.ack_failures;
  }
  ack_pending_.erase(it);
}

void Router::ack_timeout(const CbfKey& key) {
  if (!running_) return;
  const auto it = ack_pending_.find(key);
  if (it == ack_pending_.end()) return;
  AckPending& pending = it->second;
  if (config_.retx_enabled && pending.attempts_this_hop < config_.retx_max_attempts) {
    // Same-hop retransmission: the frame (or our ACK) may have been lost
    // rather than the neighbour — retry it before rerouting around it.
    ++pending.attempts_this_hop;
    ++stats_.retx_attempts;
    transmit(pending.msg, pending.current_hop.mac());
    arm_ack_timer(key);
    return;
  }
  if (++pending.retries > config_.gf_ack_max_retries) {
    hop_confirm_give_up(key);
    return;
  }
  // Silent hop: pick the next-best neighbour we have not tried yet.
  const auto selection = select_next_hop(loc_table_, address_, mobility_.position(),
                                         pending.destination, events_.now(), gf_policy(),
                                         &pending.tried);
  if (!selection) {
    hop_confirm_give_up(key);
    return;
  }
  ++stats_.ack_retries;
  ++stats_.gf_unicast_forwards;
  pending.tried.insert(selection->next_hop.address);
  pending.current_hop = selection->next_hop.address;
  pending.attempts_this_hop = 0;
  transmit(pending.msg, selection->next_hop.address.mac());
  arm_ack_timer(key);
}

void Router::handle_beacon(const security::SecuredMessagePtr&) { ++stats_.beacons_received; }

void Router::handle_gbc(const security::SecuredMessagePtr& msg, const phy::Frame& frame) {
  const net::Packet& p = msg->packet();
  const auto key_opt = p.duplicate_key();
  assert(key_opt.has_value());
  const CbfKey key{key_opt->first, key_opt->second};
  const std::uint8_t received_rhl = p.basic.remaining_hop_limit;

  if (duplicates_.is_duplicate(p)) {
    ++stats_.duplicates;
    // A duplicate during contention means "another forwarder already
    // rebroadcast" — standard CBF discards the buffered copy. This is the
    // exact step the intra-area blockage attack hijacks.
    const auto outcome = cbf_.on_duplicate(key, received_rhl, config_.rhl_drop_check,
                                           config_.rhl_drop_threshold);
    if (outcome == CbfDuplicateOutcome::kDiscarded) ++stats_.cbf_suppressed;
    if (outcome == CbfDuplicateOutcome::kKeptByMitigation) ++stats_.cbf_mitigation_keeps;
    return;
  }
  duplicates_.check_and_record(p, frame.src);

  const bool inside = p.gbc()->area.contains(mobility_.position());
  if (inside) deliver(msg, frame.src);

  if (received_rhl <= 1) {
    // Hop budget exhausted: the packet is consumed, never forwarded. A
    // replayed packet with RHL rewritten to 1 dies here on every first-time
    // receiver (attack #2, step 5).
    ++stats_.rhl_exhausted;
    return;
  }
  // Copy-on-mutate: the RHL decrement is the protocol's only per-hop
  // rewrite, and it lives outside the signature scope — the copy shares the
  // original's signed-portion encoding, so the next hop's verify is a memo
  // hit too. From here the rewrite travels as one shared envelope through
  // CBF/GF, the phy frame and any ACK or SCF buffering.
  security::SecuredMessagePtr forward =
      security::share(msg->with_remaining_hop_limit(received_rhl - 1));
  if (inside) {
    cbf_contend(std::move(forward), received_rhl, frame);
  } else {
    gf_route(std::move(forward), p.gbc()->area.center(), /*allow_buffer=*/true);
  }
}

void Router::handle_guc(const security::SecuredMessagePtr& msg, const phy::Frame& frame) {
  const net::Packet& p = msg->packet();
  if (duplicates_.check_and_record(p, frame.src)) {
    ++stats_.duplicates;
    return;
  }
  const net::GucHeader& guc = *p.guc();
  if (guc.destination.address == address_) {
    deliver(msg, frame.src);
    return;
  }
  const std::uint8_t received_rhl = p.basic.remaining_hop_limit;
  if (received_rhl <= 1) {
    ++stats_.rhl_exhausted;
    return;
  }
  geo::Position dest_pos = guc.destination.position;
  if (const auto entry = loc_table_.find(guc.destination.address, events_.now())) {
    dest_pos = entry->pv.position;
  }
  gf_route(security::share(msg->with_remaining_hop_limit(received_rhl - 1)), dest_pos,
           /*allow_buffer=*/true);
}

void Router::cbf_contend(security::SecuredMessagePtr msg, std::uint8_t received_rhl,
                         const phy::Frame& frame) {
  const auto key_opt = msg->packet().duplicate_key();
  const CbfKey key{key_opt->first, key_opt->second};

  // TO is inversely proportional to the distance from the previous sender,
  // which we know from its beacons. Unknown sender -> maximum contention.
  sim::Duration timeout = config_.cbf_to_max;
  if (const auto sender = loc_table_.find_by_mac(frame.src, events_.now())) {
    const double dist = geo::distance(mobility_.position(), sender->pv.position);
    timeout = cbf_timeout(dist, config_.cbf_to_min, config_.cbf_to_max, config_.cbf_dist_max_m);
  }
  // CSMA-style desynchronisation; see RouterConfig::cbf_jitter.
  timeout += config_.cbf_jitter * rng_.uniform();
  ++stats_.cbf_contentions;
  // With the recovery layer on, bound the whole contention (including any
  // carrier-sense deferral loop) by the packet's lifetime.
  const std::optional<sim::TimePoint> expiry =
      config_.cbf_lifetime_expiry
          ? std::optional<sim::TimePoint>{events_.now() + msg->packet().basic.lifetime}
          : std::nullopt;
  cbf_.insert(
      key, std::move(msg), received_rhl, timeout,
      [this](const security::SecuredMessagePtr& buffered) {
        if (!running_) return;
        transmit(buffered, net::MacAddress::broadcast());
        ++stats_.cbf_rebroadcasts;
      },
      [this]() -> std::optional<sim::Duration> {
        // Listen-before-talk: while another station's frame is on the air,
        // hold the rebroadcast (a duplicate heard meanwhile cancels it).
        const sim::TimePoint busy = medium_.busy_until(radio_);
        if (busy <= events_.now()) return std::nullopt;
        const auto backoff = sim::Duration::micros(
            50 + static_cast<std::int64_t>(rng_.uniform() * 200.0));
        return busy - events_.now() + backoff;
      },
      expiry);
}

void Router::gf_route(security::SecuredMessagePtr msg, geo::Position destination,
                      bool allow_buffer, const std::unordered_set<net::GnAddress>* exclude) {
  const auto selection = select_next_hop(loc_table_, address_, mobility_.position(), destination,
                                         events_.now(), gf_policy(), exclude);
  if (selection) {
    transmit(msg, selection->next_hop.address.mac());
    ++stats_.gf_unicast_forwards;
    if (hop_confirm_enabled()) {
      arm_hop_confirm(std::move(msg), destination, selection->next_hop.address);
    }
    return;
  }
  // Track how often the plausibility check vetoed an otherwise-chosen hop.
  if (config_.plausibility_check) {
    GfPolicy no_check = gf_policy();
    no_check.plausibility_check = false;
    if (select_next_hop(loc_table_, address_, mobility_.position(), destination, events_.now(),
                        no_check)) {
      ++stats_.gf_plausibility_rejections;
    }
  }
  switch (config_.gf_fallback) {
    case GfFallback::kBroadcast:
      transmit(msg, net::MacAddress::broadcast());
      ++stats_.gf_broadcast_fallbacks;
      return;
    case GfFallback::kBuffer:
      if (allow_buffer) {
        const sim::TimePoint expiry = scf_expiry(msg->packet());
        scf_.push(std::move(msg), destination, expiry);
        ++stats_.gf_buffered;
        schedule_gf_retry();
        return;
      }
      [[fallthrough]];
    case GfFallback::kDrop:
      ++stats_.gf_drops;
      return;
  }
}

sim::TimePoint Router::scf_expiry(const net::Packet& p) const {
  if (config_.scf_enabled) {
    // Lifetimes are not decremented per hop in this simulator, so the field
    // still holds the packet's remaining time budget when it reaches us.
    return events_.now() + p.basic.lifetime;
  }
  return events_.now() + config_.gf_retry_interval * 20.0;
}

void Router::schedule_gf_retry() {
  if (scf_.empty() || events_.pending(gf_retry_event_)) return;
  gf_retry_event_ = events_.schedule_in(config_.gf_retry_interval, timers_, [this] {
    if (!running_) return;
    run_gf_retries();
    schedule_gf_retry();
  });
}

void Router::run_gf_retries() {
  const sim::TimePoint now = events_.now();
  const std::uint64_t expired_before = scf_.stats().expired;
  scf_.sweep(now, [this, now](const ScfBuffer::Entry& entry) {
    const auto selection = select_next_hop(loc_table_, address_, mobility_.position(),
                                           entry.destination, now, gf_policy());
    if (!selection) return false;
    transmit(entry.msg, selection->next_hop.address.mac());
    ++stats_.gf_unicast_forwards;
    if (config_.retx_enabled) {
      // A flushed packet re-enters hop confirmation with a fresh attempt
      // budget (its earlier `tried` set is stale by now anyway).
      arm_hop_confirm(entry.msg, entry.destination, selection->next_hop.address);
    }
    return true;
  });
  // Lifetime expiries surface under the legacy drop counter as well, so
  // gf_drops keeps meaning "packet abandoned by greedy forwarding".
  stats_.gf_drops += scf_.stats().expired - expired_before;
}

void Router::schedule_monitor_sweep() {
  monitor_event_ = events_.schedule_in(monitor_.config().miss_period, timers_, [this] {
    if (!running_) return;
    run_monitor_sweep();
    schedule_monitor_sweep();
  });
}

void Router::run_monitor_sweep() {
  const sim::TimePoint now = events_.now();
  for (const net::GnAddress addr : monitor_.evictable(now)) {
    loc_table_.erase(addr);
    monitor_.forget(addr);
    ++stats_.neighbor_evictions;
  }
}

void Router::deliver(const security::SecuredMessagePtr& msg, net::MacAddress from) {
  ++stats_.delivered;
  const Delivery delivery{msg, events_.now(), from};
  if (delivery_) delivery_(delivery);
  for (const auto& listener : listeners_) listener(delivery);
}

void Router::transmit(const security::SecuredMessagePtr& msg, net::MacAddress dst) {
  // Any outgoing GN packet proves our liveness/position to neighbours, so
  // the beacon timer restarts (ETSI beacon service). Beacons themselves are
  // rescheduled by their own send path.
  if (config_.beacon_suppression_on_activity && !msg->packet().is_beacon() &&
      events_.pending(beacon_event_)) {
    events_.cancel(beacon_event_);
    schedule_beacon();
  }
  phy::Frame frame;
  frame.src = address_.mac();
  frame.dst = dst;
  frame.msg = msg;  // shares the envelope — no packet copy per transmission
  if (Log::enabled(LogLevel::kTrace)) {
    Log::write(LogLevel::kTrace, events_.now(), "router",
               to_string(address_) + " @" + geo::to_string(mobility_.position()) + " tx " +
                   to_string(msg->packet()) + (dst.is_broadcast() ? "" : " -> " + to_string(dst)));
  }
  if (mac_layer_ != nullptr) {
    // Channel access via CSMA/CA (+ DCC pacing): the frame queues and
    // contends; the medium sees it at dequeue time. Beacons are classified
    // for DCC admission — everything else is paced data.
    mac_layer_->enqueue(std::move(frame), msg->packet().is_beacon()
                                              ? phy::MacAccessClass::kBeacon
                                              : phy::MacAccessClass::kData);
  } else {
    medium_.transmit(radio_, std::move(frame));
  }
}

}  // namespace vgr::gn

#include "vgr/gn/scf_buffer.hpp"

#include <utility>

namespace vgr::gn {
namespace {

/// Fixed per-packet accounting overhead (headers plus security envelope).
/// The byte bound is a memory budget, not a wire-accurate frame size.
constexpr std::size_t kEntryOverheadBytes = 64;

}  // namespace

void ScfBuffer::push(security::SecuredMessagePtr msg, geo::Position destination,
                     sim::TimePoint expiry) {
  Entry entry{std::move(msg), destination, expiry, 0};
  entry.bytes = entry.msg->packet().payload.size() + kEntryOverheadBytes;
  bytes_ += entry.bytes;
  entries_.push_back(std::move(entry));
  ++stats_.inserted;
  while (entries_.size() > 1 &&
         ((config_.max_packets != 0 && entries_.size() > config_.max_packets) ||
          (config_.max_bytes != 0 && bytes_ > config_.max_bytes))) {
    drop_front();
  }
}

void ScfBuffer::drop_front() {
  bytes_ -= entries_.front().bytes;
  entries_.pop_front();
  ++stats_.head_drops;
}

void ScfBuffer::sweep(sim::TimePoint now, const TrySend& try_send) {
  std::deque<Entry> keep;
  std::size_t keep_bytes = 0;
  while (!entries_.empty()) {
    Entry entry = std::move(entries_.front());
    entries_.pop_front();
    if (now >= entry.expiry) {
      ++stats_.expired;
      continue;
    }
    if (try_send(entry)) {
      ++stats_.flushed;
      continue;
    }
    keep_bytes += entry.bytes;
    keep.push_back(std::move(entry));
  }
  entries_ = std::move(keep);
  bytes_ = keep_bytes;
}

void ScfBuffer::clear() {
  entries_.clear();
  bytes_ = 0;
}

}  // namespace vgr::gn

#pragma once

#include <optional>
#include <unordered_set>

#include "vgr/geo/vec2.hpp"
#include "vgr/gn/location_table.hpp"
#include "vgr/gn/neighbor_monitor.hpp"

namespace vgr::gn {

/// Options applied during next-hop selection. The plausibility check is the
/// paper's mitigation #1: a candidate only qualifies if its (optionally
/// dead-reckoned) position lies within `threshold_m` of the forwarder.
struct GfPolicy {
  bool plausibility_check{false};
  double threshold_m{486.0};
  bool extrapolate{true};
  /// When set, neighbours the monitor has quarantined (too many missed
  /// beacon periods) are skipped — the recovery layer's liveness filter
  /// (docs/robustness.md).
  const NeighborMonitor* monitor{nullptr};
};

/// Result of a greedy next-hop selection.
struct GfSelection {
  net::LongPositionVector next_hop{};
  double distance_to_destination_m{0.0};
};

/// Greedy Forwarding next-hop selection (ETSI EN 302 636-4-1 §E.2, paper
/// §II): among neighbour entries of the location table, picks the one whose
/// advertised position is closest to `destination`, provided it beats the
/// forwarder's own distance (most-forward-within-radius progress rule).
///
/// Returns nullopt when no neighbour offers progress — the caller then
/// applies its configured fallback (buffer / broadcast / drop). `exclude`,
/// when given, removes specific neighbours from consideration (used by the
/// ACK'd-forwarding extension to retry past unresponsive hops).
[[nodiscard]] std::optional<GfSelection> select_next_hop(
    const LocationTable& table, net::GnAddress self, geo::Position self_position,
    geo::Position destination, sim::TimePoint now, const GfPolicy& policy,
    const std::unordered_set<net::GnAddress>* exclude = nullptr);

}  // namespace vgr::gn

#pragma once

#include "vgr/geo/vec2.hpp"

namespace vgr::gn {

/// Supplies a router's own kinematic state (position/speed/heading). Moving
/// vehicles implement this over their traffic-model state; roadside units
/// use `StaticMobility`.
class MobilityProvider {
 public:
  virtual ~MobilityProvider() = default;
  [[nodiscard]] virtual geo::Position position() const = 0;
  [[nodiscard]] virtual double speed_mps() const { return 0.0; }
  [[nodiscard]] virtual double heading_rad() const { return 0.0; }
};

/// Fixed-position mobility for roadside infrastructure and test nodes.
class StaticMobility final : public MobilityProvider {
 public:
  explicit StaticMobility(geo::Position p) : position_{p} {}
  [[nodiscard]] geo::Position position() const override { return position_; }
  void move_to(geo::Position p) { position_ = p; }

 private:
  geo::Position position_;
};

}  // namespace vgr::gn

#include "vgr/security/pseudonym.hpp"

#include <cassert>

namespace vgr::security {

PseudonymManager::PseudonymManager(CertificateAuthority& ca, net::MacAddress mac,
                                   std::size_t pool_size, sim::Duration rotation_period,
                                   sim::Rng rng)
    : rotation_period_{rotation_period} {
  assert(pool_size > 0);
  pool_.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    // Aliases keep the real MAC's low bits unlinkable by drawing a fresh
    // link-layer address per pseudonym.
    (void)mac;
    const auto alias_mac = net::MacAddress{rng.next_u64()};
    pool_.push_back(ca.issue_pseudonym(
        net::GnAddress{net::GnAddress::StationType::kPassengerCar, alias_mac}));
  }
  next_rotation_ = sim::TimePoint::origin() + rotation_period_;
}

const EnrolledIdentity& PseudonymManager::active(sim::TimePoint t) {
  while (t >= next_rotation_) {
    active_index_ = (active_index_ + 1) % pool_.size();
    next_rotation_ = next_rotation_ + rotation_period_;
    ++rotations_;
  }
  return pool_[active_index_];
}

net::GnAddress PseudonymManager::current_alias(sim::TimePoint t) {
  return active(t).certificate.subject;
}

}  // namespace vgr::security

#include "vgr/security/authority.hpp"

namespace vgr::security {
namespace {

net::Bytes certificate_tbs(CertificateSerial serial, net::GnAddress subject, bool pseudonym) {
  net::Bytes tbs;
  for (int i = 0; i < 4; ++i) tbs.push_back(static_cast<std::uint8_t>(serial >> (8 * i)));
  const std::uint64_t bits = subject.bits();
  for (int i = 0; i < 8; ++i) tbs.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  tbs.push_back(pseudonym ? 1 : 0);
  return tbs;
}

}  // namespace

bool TrustStore::certificate_valid(const Certificate& cert) const {
  const auto it = entries_.find(cert.serial);
  if (it == entries_.end() || it->second.revoked) return false;
  // The CA signature binds serial/subject/pseudonym-flag; a certificate
  // presenting a tampered subject fails here.
  return cert.ca_signature == it->second.ca_signature &&
         it->second.ca_signature ==
             keyed_digest(it->second.key,
                          certificate_tbs(cert.serial, cert.subject, cert.is_pseudonym));
}

bool TrustStore::verify(const Certificate& cert, const net::Bytes& message,
                        std::uint64_t signature) const {
  if (!certificate_valid(cert)) return false;
  const auto it = entries_.find(cert.serial);
  return signature == keyed_digest(it->second.key, message);
}

CertificateAuthority::CertificateAuthority(std::uint64_t root_secret)
    : root_secret_{root_secret}, store_{std::make_shared<TrustStore>()} {}

EnrolledIdentity CertificateAuthority::issue(net::GnAddress subject, bool pseudonym) {
  const CertificateSerial serial = next_serial_++;
  // Per-certificate key, derived from the root secret. Never leaves the CA
  // except inside the opaque PrivateKey capability.
  std::uint64_t key = root_secret_ ^ (static_cast<std::uint64_t>(serial) * 0x9e3779b97f4a7c15ULL);
  key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ULL;
  key |= 1;  // never zero: zero marks an invalid PrivateKey

  Certificate cert;
  cert.serial = serial;
  cert.subject = subject;
  cert.is_pseudonym = pseudonym;
  cert.ca_signature = keyed_digest(key, certificate_tbs(serial, subject, pseudonym));

  store_->entries_[serial] = TrustStore::Entry{key, cert.ca_signature, false};
  return EnrolledIdentity{cert, PrivateKey{key}};
}

EnrolledIdentity CertificateAuthority::enroll(net::GnAddress subject) {
  return issue(subject, /*pseudonym=*/false);
}

EnrolledIdentity CertificateAuthority::issue_pseudonym(net::GnAddress alias) {
  return issue(alias, /*pseudonym=*/true);
}

void CertificateAuthority::revoke(CertificateSerial serial) {
  const auto it = store_->entries_.find(serial);
  if (it != store_->entries_.end()) it->second.revoked = true;
}

}  // namespace vgr::security

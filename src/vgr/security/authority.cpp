#include "vgr/security/authority.hpp"

namespace vgr::security {
namespace {

net::Bytes certificate_tbs(CertificateSerial serial, net::GnAddress subject, bool pseudonym) {
  net::Bytes tbs;
  for (int i = 0; i < 4; ++i) tbs.push_back(static_cast<std::uint8_t>(serial >> (8 * i)));
  const std::uint64_t bits = subject.bits();
  for (int i = 0; i < 8; ++i) tbs.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  tbs.push_back(pseudonym ? 1 : 0);
  return tbs;
}

}  // namespace

bool TrustStore::certificate_valid_uncached(const Certificate& cert) const {
  const auto it = entries_.find(cert.serial);
  if (it == entries_.end() || it->second.revoked) return false;
  // The CA signature binds serial/subject/pseudonym-flag; a certificate
  // presenting a tampered subject fails here.
  return cert.ca_signature == it->second.ca_signature &&
         it->second.ca_signature ==
             keyed_digest(it->second.key,
                          certificate_tbs(cert.serial, cert.subject, cert.is_pseudonym));
}

bool TrustStore::certificate_valid(const Certificate& cert) const {
  std::unique_lock<std::mutex> lock{cache_mutex_, std::defer_lock};
  if (concurrent_) lock.lock();
  return certificate_valid_impl_(cert);
}

bool TrustStore::certificate_valid_impl_(const Certificate& cert) const {
  const auto it = cert_cache_.find(cert.serial);
  if (it != cert_cache_.end() && it->second.generation == generation_ &&
      it->second.cert == cert) {
    ++stats_.cert_hits;
    cert_lru_.splice(cert_lru_.begin(), cert_lru_, it->second.lru_it);
    return it->second.valid;
  }
  ++stats_.cert_misses;
  const bool valid = certificate_valid_uncached(cert);
  if (it != cert_cache_.end()) {
    // Same serial, stale generation or different certificate value: refresh
    // in place.
    it->second.cert = cert;
    it->second.generation = generation_;
    it->second.valid = valid;
    cert_lru_.splice(cert_lru_.begin(), cert_lru_, it->second.lru_it);
    return valid;
  }
  if (cert_cache_.size() >= kCertCacheCapacity) {
    cert_cache_.erase(cert_lru_.back());
    cert_lru_.pop_back();
  }
  cert_lru_.push_front(cert.serial);
  cert_cache_.emplace(cert.serial,
                      CertCacheEntry{cert, generation_, valid, cert_lru_.begin()});
  return valid;
}

bool TrustStore::verify(const Certificate& cert, const net::Bytes& message,
                        std::uint64_t signature) const {
  std::unique_lock<std::mutex> lock{cache_mutex_, std::defer_lock};
  if (concurrent_) lock.lock();
  return verify_impl_(cert, message, signature);
}

bool TrustStore::verify_impl_(const Certificate& cert, const net::Bytes& message,
                              std::uint64_t signature) const {
  if (!certificate_valid_impl_(cert)) return false;
  const auto it = entries_.find(cert.serial);
  return signature == keyed_digest(it->second.key, message);
}

VerifyResult TrustStore::verify_message(const Certificate& cert,
                                        const SignedPortionPtr& portion,
                                        std::uint64_t signature) const {
  std::unique_lock<std::mutex> lock{cache_mutex_, std::defer_lock};
  if (concurrent_) lock.lock();
  const std::uint64_t key = portion->digest;
  const auto it = memo_.find(key);
  if (it != memo_.end()) {
    const MemoEntry& e = it->second;
    // Exact-match hit condition: nothing about the memoized question may
    // differ from the current one. Pointer identity covers the common case
    // (all receivers of one frame, later hops of one forward share the
    // portion object); byte equality is the collision-proof fallback.
    if (e.generation == generation_ && e.signature == signature && e.cert == cert &&
        (e.portion == portion || e.portion->bytes == portion->bytes)) {
      ++stats_.memo_hits;
      memo_lru_.splice(memo_lru_.begin(), memo_lru_, e.lru_it);
      return VerifyResult{e.ok, true};
    }
  }
  ++stats_.memo_misses;
  const bool ok = verify_impl_(cert, portion->bytes, signature);
  if (it != memo_.end()) {
    it->second =
        MemoEntry{portion, cert, signature, generation_, ok, it->second.lru_it};
    memo_lru_.splice(memo_lru_.begin(), memo_lru_, it->second.lru_it);
    return VerifyResult{ok, false};
  }
  if (memo_.size() >= kMemoCapacity) {
    memo_.erase(memo_lru_.back());
    memo_lru_.pop_back();
  }
  memo_lru_.push_front(key);
  memo_.emplace(key, MemoEntry{portion, cert, signature, generation_, ok, memo_lru_.begin()});
  return VerifyResult{ok, false};
}

CertificateAuthority::CertificateAuthority(std::uint64_t root_secret)
    : root_secret_{root_secret}, store_{std::make_shared<TrustStore>()} {}

EnrolledIdentity CertificateAuthority::issue(net::GnAddress subject, bool pseudonym) {
  const CertificateSerial serial = next_serial_++;
  // Per-certificate key, derived from the root secret. Never leaves the CA
  // except inside the opaque PrivateKey capability.
  std::uint64_t key = root_secret_ ^ (static_cast<std::uint64_t>(serial) * 0x9e3779b97f4a7c15ULL);
  key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ULL;
  key |= 1;  // never zero: zero marks an invalid PrivateKey

  Certificate cert;
  cert.serial = serial;
  cert.subject = subject;
  cert.is_pseudonym = pseudonym;
  cert.ca_signature = keyed_digest(key, certificate_tbs(serial, subject, pseudonym));

  store_->entries_[serial] = TrustStore::Entry{key, cert.ca_signature, false};
  // Any cached negative verdict for this serial (e.g. "unknown certificate"
  // observed before a churned node re-enrolled) is now stale.
  ++store_->generation_;
  return EnrolledIdentity{cert, PrivateKey{key}};
}

EnrolledIdentity CertificateAuthority::enroll(net::GnAddress subject) {
  return issue(subject, /*pseudonym=*/false);
}

EnrolledIdentity CertificateAuthority::issue_pseudonym(net::GnAddress alias) {
  return issue(alias, /*pseudonym=*/true);
}

void CertificateAuthority::revoke(CertificateSerial serial) {
  const auto it = store_->entries_.find(serial);
  if (it != store_->entries_.end()) {
    it->second.revoked = true;
    // Cached positive verdicts for this certificate — validity entries and
    // verification memos alike — must not survive revocation.
    ++store_->generation_;
  }
}

}  // namespace vgr::security

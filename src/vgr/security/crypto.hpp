#pragma once

#include <cstdint>

#include "vgr/net/packet.hpp"

namespace vgr::security {

/// Keyed 64-bit message digest (FNV-1a core with a SplitMix64 finaliser).
///
/// This is a *structural* stand-in for ECDSA in the real stack: it is not
/// cryptographically strong, but within this codebase it provides the two
/// properties the paper's threat model needs — (1) a valid tag cannot be
/// produced without the signing key and (2) any modification of the covered
/// bytes invalidates the tag. See DESIGN.md §1 for the substitution note.
std::uint64_t keyed_digest(std::uint64_t key, const net::Bytes& message);

/// Unkeyed structural digest used as a cache bucket key (e.g. the
/// signed-portion digest of the TrustStore verification memo). NOT a
/// security boundary: every consumer re-checks the full bytes on a match,
/// so collisions cost a recomputation, never a false accept.
std::uint64_t structural_digest(const net::Bytes& message);

/// Private signing key. Only `CertificateAuthority::enroll` mints these, so
/// possession of a `PrivateKey` is the capability boundary between enrolled
/// nodes and the outsider attacker (which, per the threat model, has none).
class PrivateKey {
 public:
  PrivateKey() = default;

  [[nodiscard]] bool valid() const { return key_ != 0; }

 private:
  friend class CertificateAuthority;
  friend class Signer;
  explicit PrivateKey(std::uint64_t key) : key_{key} {}
  std::uint64_t key_{0};
};

}  // namespace vgr::security

#pragma once

#include <vector>

#include "vgr/security/authority.hpp"
#include "vgr/security/secured_message.hpp"
#include "vgr/sim/random.hpp"
#include "vgr/sim/time.hpp"

namespace vgr::security {

/// Manages a pool of pseudonym certificates for one station and rotates the
/// active one on a schedule (ETSI TS 102 731 privacy service). A station
/// signing under a pseudonym is unlinkable across rotations, but — key for
/// the paper's threat model — its *position* is still broadcast in clear.
class PseudonymManager {
 public:
  /// Pre-provisions `pool_size` pseudonyms for the station owning `mac`.
  PseudonymManager(CertificateAuthority& ca, net::MacAddress mac, std::size_t pool_size,
                   sim::Duration rotation_period, sim::Rng rng);

  /// Identity to sign with at time `t` (rotates automatically).
  const EnrolledIdentity& active(sim::TimePoint t);

  /// GN address the station currently presents.
  net::GnAddress current_alias(sim::TimePoint t);

  [[nodiscard]] std::size_t pool_size() const { return pool_.size(); }
  [[nodiscard]] std::size_t rotations() const { return rotations_; }

 private:
  std::vector<EnrolledIdentity> pool_;
  sim::Duration rotation_period_;
  sim::TimePoint next_rotation_{};
  std::size_t active_index_{0};
  std::size_t rotations_{0};
};

}  // namespace vgr::security

#include "vgr/security/crypto.hpp"

namespace vgr::security {

std::uint64_t keyed_digest(std::uint64_t key, const net::Bytes& message) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ key;
  for (const std::uint8_t byte : message) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  }
  h ^= key * 0x9e3779b97f4a7c15ULL;
  // SplitMix64 finaliser for avalanche.
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

std::uint64_t structural_digest(const net::Bytes& message) {
  // Fixed public salt so the structural digest is not the same function as
  // any keyed tag (a signature value never doubles as a memo bucket key).
  return keyed_digest(0x5eed'cafe'f00d'd1e5ULL, message);
}

}  // namespace vgr::security

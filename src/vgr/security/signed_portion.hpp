#pragma once

#include <cstdint>
#include <memory>

#include "vgr/net/packet.hpp"

namespace vgr::security {

/// One immutable encoding of a packet's signed portion (common header +
/// extended header + payload — the exact bytes a signature covers).
///
/// Built once per logical message — at `SecuredMessage::sign()` time or on
/// first use — and then shared by reference: every copy of the message, every
/// receiver of the same frame, and every downstream hop that only rewrites
/// the (unsigned) Basic Header reuses this object instead of re-serializing
/// the packet. `digest` is a structural 64-bit digest of `bytes`, used as
/// the bucket key of the TrustStore verification memo; memo hits always
/// re-check the full bytes (or pointer identity), so a digest collision can
/// never produce a false accept.
struct SignedPortion {
  net::Bytes bytes;
  std::uint64_t digest{0};
};

using SignedPortionPtr = std::shared_ptr<const SignedPortion>;

}  // namespace vgr::security

#pragma once

#include <cstdint>

#include "vgr/net/address.hpp"

namespace vgr::security {

using CertificateSerial = std::uint32_t;

/// Public certificate issued by the CA (IEEE 1609.2-style, structurally).
/// Binds a serial number to a subject GN address; `is_pseudonym` marks
/// short-lived privacy certificates whose subject is an unlinkable alias.
struct Certificate {
  CertificateSerial serial{0};
  net::GnAddress subject{};
  bool is_pseudonym{false};
  std::uint64_t ca_signature{0};

  friend bool operator==(const Certificate&, const Certificate&) = default;
};

}  // namespace vgr::security

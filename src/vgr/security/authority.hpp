#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "vgr/net/packet.hpp"
#include "vgr/security/certificate.hpp"
#include "vgr/security/crypto.hpp"
#include "vgr/security/signed_portion.hpp"

namespace vgr::security {

/// A node's enrolled identity: its public certificate plus the private key
/// that signs on its behalf. The key never appears in any message.
struct EnrolledIdentity {
  Certificate certificate{};
  PrivateKey key{};
};

/// Outcome of one memoized verification.
struct VerifyResult {
  bool ok{false};
  /// True when the verdict was replayed from the verification memo instead
  /// of recomputed. Purely observational (stats); `ok` is identical either
  /// way — the memo is a pure-function cache.
  bool from_memo{false};
};

/// Aggregate hit/miss counters for the two TrustStore caches.
struct TrustCacheStats {
  std::uint64_t cert_hits{0};
  std::uint64_t cert_misses{0};
  std::uint64_t memo_hits{0};
  std::uint64_t memo_misses{0};
};

/// Verification oracle shared by all nodes. In a real deployment this role
/// is played by public-key cryptography (anyone can verify, nobody can
/// forge); here the trust store holds the per-certificate verification keys
/// privately and only exposes a boolean verdict, preserving the same
/// capability split.
///
/// Two memoization layers make repeated verification cheap without changing
/// a single verdict:
///  - a certificate-validity LRU (the CA-signature check per pseudonym),
///  - a per-message verification memo keyed by the signed-portion digest,
///    with the full (certificate, signature, bytes) tuple re-checked on
///    every hit so neither a digest collision nor post-verify tampering can
///    produce a false accept.
/// Both caches carry the store's `generation`, which the owning CA bumps on
/// every issue and revoke — the structural analogue of a certificate expiry
/// boundary — so verdicts cached before a trust change are re-derived.
class TrustStore {
 public:
  /// True iff `cert` was issued by the CA behind this store and has not been
  /// revoked. Memoized per serial (LRU).
  [[nodiscard]] bool certificate_valid(const Certificate& cert) const;

  /// True iff `signature` is a valid tag over `message` under the key bound
  /// to `cert` (and the certificate itself is valid). Uncached byte-string
  /// entry point; the hot path is `verify_message`.
  [[nodiscard]] bool verify(const Certificate& cert, const net::Bytes& message,
                            std::uint64_t signature) const;

  /// Memoized verification of a shared signed-portion encoding. The memo
  /// hit condition is exact: same generation, same signature, same
  /// certificate (all fields), and the same portion — by pointer identity
  /// or, failing that, byte equality. Anything less is a miss and is
  /// recomputed in full.
  [[nodiscard]] VerifyResult verify_message(const Certificate& cert,
                                            const SignedPortionPtr& portion,
                                            std::uint64_t signature) const;

  [[nodiscard]] const TrustCacheStats& cache_stats() const { return stats_; }

  /// Monotone trust-state version; bumped by the CA on issue and revoke.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// Concurrent-verifier mode for strip-parallel runs: the verify entry
  /// points are logically const but mutate the LRU caches, so when several
  /// strip workers share one store those mutations must serialize. Off —
  /// the default — the paths take no lock at all and behave bit-identically
  /// to every prior build. Verdicts are pure functions of (certificate,
  /// bytes, signature, generation), so lock-induced cache-order differences
  /// can never change a result, only hit/miss counters.
  void set_concurrent(bool on) { concurrent_ = on; }

 private:
  friend class CertificateAuthority;
  struct Entry {
    std::uint64_t key;
    std::uint64_t ca_signature;
    bool revoked;
  };
  std::unordered_map<CertificateSerial, Entry> entries_;
  std::uint64_t generation_{0};

  [[nodiscard]] bool certificate_valid_uncached(const Certificate& cert) const;
  /// Cache-consulting bodies, called with cache_mutex_ held when
  /// `concurrent_` (the public entry points are the only lock sites, so the
  /// verify -> certificate_valid nesting never double-locks).
  [[nodiscard]] bool certificate_valid_impl_(const Certificate& cert) const;
  [[nodiscard]] bool verify_impl_(const Certificate& cert, const net::Bytes& message,
                                  std::uint64_t signature) const;

  // Certificate-validity LRU. Keyed by serial; an entry answers only for the
  // exact certificate value it was computed for (tampered subject bytes under
  // a cached serial still miss).
  struct CertCacheEntry {
    Certificate cert;
    std::uint64_t generation;
    bool valid;
    std::list<CertificateSerial>::iterator lru_it;
  };
  static constexpr std::size_t kCertCacheCapacity = 4096;
  mutable std::list<CertificateSerial> cert_lru_;  // front = most recent
  mutable std::unordered_map<CertificateSerial, CertCacheEntry> cert_cache_;

  // Per-message verification memo, bucketed by signed-portion digest. One
  // entry per bucket; collisions simply overwrite (LRU list keeps eviction
  // deterministic and bounded).
  struct MemoEntry {
    SignedPortionPtr portion;
    Certificate cert;
    std::uint64_t signature;
    std::uint64_t generation;
    bool ok;
    std::list<std::uint64_t>::iterator lru_it;
  };
  static constexpr std::size_t kMemoCapacity = 8192;
  mutable std::list<std::uint64_t> memo_lru_;  // front = most recent
  mutable std::unordered_map<std::uint64_t, MemoEntry> memo_;

  mutable TrustCacheStats stats_;

  /// Guards every mutable cache above; engaged only when `concurrent_`.
  mutable std::mutex cache_mutex_;
  bool concurrent_{false};
};

/// Certification authority (e.g. the US DOT SCMS root in the paper's
/// setting). Enrolls stations, issues pseudonym certificates, revokes
/// certificates, and owns the trust store every verifier consults.
class CertificateAuthority {
 public:
  explicit CertificateAuthority(std::uint64_t root_secret = 0xA5A5'DEAD'BEEF'0001ULL);

  /// Issues a long-term certificate for the station's canonical address.
  EnrolledIdentity enroll(net::GnAddress subject);

  /// Issues a pseudonym certificate: same signing rights, unlinkable
  /// subject. `alias` is the pseudonymous GN address the station will use.
  EnrolledIdentity issue_pseudonym(net::GnAddress alias);

  /// Marks a certificate invalid for all future verifications.
  void revoke(CertificateSerial serial);

  [[nodiscard]] std::shared_ptr<const TrustStore> trust_store() const { return store_; }
  [[nodiscard]] std::size_t issued_count() const { return next_serial_ - 1; }

  /// Flips the owned trust store's concurrent-verifier mode (see
  /// TrustStore::set_concurrent) — verifiers only ever hold const pointers,
  /// so the switch lives with the owner.
  void set_store_concurrent(bool on) { store_->set_concurrent(on); }

 private:
  EnrolledIdentity issue(net::GnAddress subject, bool pseudonym);

  std::uint64_t root_secret_;
  CertificateSerial next_serial_{1};
  std::shared_ptr<TrustStore> store_;
};

}  // namespace vgr::security

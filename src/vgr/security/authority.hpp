#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "vgr/net/packet.hpp"
#include "vgr/security/certificate.hpp"
#include "vgr/security/crypto.hpp"

namespace vgr::security {

/// A node's enrolled identity: its public certificate plus the private key
/// that signs on its behalf. The key never appears in any message.
struct EnrolledIdentity {
  Certificate certificate{};
  PrivateKey key{};
};

/// Verification oracle shared by all nodes. In a real deployment this role
/// is played by public-key cryptography (anyone can verify, nobody can
/// forge); here the trust store holds the per-certificate verification keys
/// privately and only exposes a boolean verdict, preserving the same
/// capability split.
class TrustStore {
 public:
  /// True iff `cert` was issued by the CA behind this store and has not been
  /// revoked.
  [[nodiscard]] bool certificate_valid(const Certificate& cert) const;

  /// True iff `signature` is a valid tag over `message` under the key bound
  /// to `cert` (and the certificate itself is valid).
  [[nodiscard]] bool verify(const Certificate& cert, const net::Bytes& message,
                            std::uint64_t signature) const;

 private:
  friend class CertificateAuthority;
  struct Entry {
    std::uint64_t key;
    std::uint64_t ca_signature;
    bool revoked;
  };
  std::unordered_map<CertificateSerial, Entry> entries_;
};

/// Certification authority (e.g. the US DOT SCMS root in the paper's
/// setting). Enrolls stations, issues pseudonym certificates, revokes
/// certificates, and owns the trust store every verifier consults.
class CertificateAuthority {
 public:
  explicit CertificateAuthority(std::uint64_t root_secret = 0xA5A5'DEAD'BEEF'0001ULL);

  /// Issues a long-term certificate for the station's canonical address.
  EnrolledIdentity enroll(net::GnAddress subject);

  /// Issues a pseudonym certificate: same signing rights, unlinkable
  /// subject. `alias` is the pseudonymous GN address the station will use.
  EnrolledIdentity issue_pseudonym(net::GnAddress alias);

  /// Marks a certificate invalid for all future verifications.
  void revoke(CertificateSerial serial);

  [[nodiscard]] std::shared_ptr<const TrustStore> trust_store() const { return store_; }
  [[nodiscard]] std::size_t issued_count() const { return next_serial_ - 1; }

 private:
  EnrolledIdentity issue(net::GnAddress subject, bool pseudonym);

  std::uint64_t root_secret_;
  CertificateSerial next_serial_{1};
  std::shared_ptr<TrustStore> store_;
};

}  // namespace vgr::security

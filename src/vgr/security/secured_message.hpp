#pragma once

#include <cstdint>

#include "vgr/net/codec.hpp"
#include "vgr/net/packet.hpp"
#include "vgr/security/authority.hpp"
#include "vgr/security/certificate.hpp"
#include "vgr/security/crypto.hpp"

namespace vgr::security {

/// Signs GeoNetworking packets on behalf of one enrolled identity.
class Signer {
 public:
  explicit Signer(EnrolledIdentity identity) : identity_{std::move(identity)} {}

  [[nodiscard]] const Certificate& certificate() const { return identity_.certificate; }

  /// Tag over an arbitrary byte string (used by the message envelope).
  [[nodiscard]] std::uint64_t sign(const net::Bytes& message) const {
    return keyed_digest(identity_.key.key_, message);
  }

 private:
  EnrolledIdentity identity_;
};

/// The secured envelope that actually crosses the air (ETSI TS 103 097 /
/// IEEE 1609.2 style, structurally).
///
/// Signature scope: `Codec::encode_signed_portion(packet)` — the common
/// header, extended header (position vectors, sequence number, destination
/// area) and payload. The Basic Header, including the Remaining Hop Limit,
/// is excluded so that forwarders can decrement RHL in flight. The paper's
/// attacks live exactly in this gap: a captured envelope replays as valid
/// (attack #1), and its RHL can be rewritten without detection (attack #2).
struct SecuredMessage {
  net::Packet packet{};
  Certificate signer{};
  std::uint64_t signature{0};

  /// Builds a signed envelope for `packet` under `signer`'s identity.
  static SecuredMessage sign(const net::Packet& packet, const Signer& signer);

  /// Verifies certificate validity and the signature over the signed
  /// portion of `packet` as currently carried (RHL excluded by scope).
  [[nodiscard]] bool verify(const TrustStore& trust) const;

  friend bool operator==(const SecuredMessage&, const SecuredMessage&) = default;
};

}  // namespace vgr::security

#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "vgr/net/codec.hpp"
#include "vgr/net/packet.hpp"
#include "vgr/security/authority.hpp"
#include "vgr/security/certificate.hpp"
#include "vgr/security/crypto.hpp"
#include "vgr/security/signed_portion.hpp"

namespace vgr::security {

/// Signs GeoNetworking packets on behalf of one enrolled identity.
class Signer {
 public:
  explicit Signer(EnrolledIdentity identity) : identity_{std::move(identity)} {}

  [[nodiscard]] const Certificate& certificate() const { return identity_.certificate; }

  /// Tag over an arbitrary byte string (used by the message envelope).
  [[nodiscard]] std::uint64_t sign(const net::Bytes& message) const {
    return keyed_digest(identity_.key.key_, message);
  }

 private:
  EnrolledIdentity identity_;
};

/// The secured envelope that actually crosses the air (ETSI TS 103 097 /
/// IEEE 1609.2 style, structurally).
///
/// Signature scope: the signed portion of the packet (common header,
/// extended header — position vectors, sequence number, destination area —
/// and payload). The Basic Header, including the Remaining Hop Limit, is
/// excluded so that forwarders can decrement RHL in flight. The paper's
/// attacks live exactly in this gap: a captured envelope replays as valid
/// (attack #1), and its RHL can be rewritten without detection (attack #2).
///
/// The envelope owns two lazily-built, shared caches:
///  - the signed-portion encoding (`signed_portion()`), built at `sign()`
///    time or first use and shared across copies, so verification and
///    re-broadcast never re-serialize the packet;
///  - the full wire image (`wire()`), assembled from the signed portion plus
///    the 10-byte Basic Header.
/// All mutation goes through the explicit mutators below, which drop exactly
/// the caches the mutation can invalidate — `with_remaining_hop_limit()`
/// keeps the signed-portion cache because the RHL lives outside the
/// signature scope. Copies share caches by `shared_ptr`, which is what makes
/// the per-receiver ingest path and multi-hop forwarding allocation-free.
class SecuredMessage {
 public:
  SecuredMessage() = default;

  /// Builds a signed envelope for `packet` under `signer`'s identity. The
  /// signed-portion cache is populated eagerly (it is the exact byte string
  /// being signed).
  static SecuredMessage sign(const net::Packet& packet, const Signer& signer);

  /// Assembles an envelope from received or forged parts — the raw-ingest
  /// decode path, attack code and tests use this. Caches start empty.
  static SecuredMessage from_parts(net::Packet packet, Certificate signer,
                                   std::uint64_t signature);

  [[nodiscard]] const net::Packet& packet() const { return packet_; }
  [[nodiscard]] const Certificate& signer() const { return signer_; }
  [[nodiscard]] std::uint64_t signature() const { return signature_; }

  /// Mutable access to the packet. Drops both caches: any field of the
  /// packet may change under the caller's hands, including signed ones.
  [[nodiscard]] net::Packet& mutable_packet() {
    sp_cache_.reset();
    wire_cache_.reset();
    return packet_;
  }

  void set_packet(net::Packet p) {
    packet_ = std::move(p);
    sp_cache_.reset();
    wire_cache_.reset();
  }

  /// The certificate and signature ride alongside the packet; neither feeds
  /// the cached encodings, so these mutators leave the caches alone. (The
  /// verification memo keys on certificate and signature *values*, so a
  /// tampered signer/signature can never ride a stale cache entry.)
  [[nodiscard]] Certificate& mutable_signer() { return signer_; }
  void set_signer(Certificate cert) { signer_ = cert; }
  void set_signature(std::uint64_t sig) { signature_ = sig; }

  /// Copy-on-mutate for the one per-hop rewrite the protocol performs:
  /// returns a copy with `remaining_hop_limit` replaced. The RHL lives in
  /// the Basic Header, outside the signature scope, so the copy *shares*
  /// this message's signed-portion cache (keeping the verification memo warm
  /// across hops) and only drops the full-wire cache.
  [[nodiscard]] SecuredMessage with_remaining_hop_limit(std::uint8_t rhl) const {
    SecuredMessage copy = *this;
    copy.packet_.basic.remaining_hop_limit = rhl;
    copy.wire_cache_.reset();
    return copy;
  }

  /// The signed-portion encoding, built on first use and shared by all
  /// copies of this message.
  [[nodiscard]] const SignedPortionPtr& signed_portion() const;

  /// True when the signed-portion cache is already built. Strip-parallel
  /// sanity probe: the lazy cache builds below are unsynchronized by
  /// design, so a message may only cross strips cache-warm (sign() builds
  /// eagerly and the forwarding rewrite preserves it — the medium asserts
  /// this before fanning a frame out to other strips).
  [[nodiscard]] bool signed_portion_cached() const { return sp_cache_ != nullptr; }

  /// The full wire image (Basic Header + length-prefixed signed portion),
  /// byte-identical to `Codec::encode(packet())`, built on first use.
  [[nodiscard]] const net::Bytes& wire() const;

  /// Size of the full wire image in bytes — arithmetic, no allocation.
  [[nodiscard]] std::size_t wire_size() const { return net::Codec::wire_size(packet_); }

  /// Verifies certificate validity and the signature over the signed
  /// portion of `packet` as currently carried (RHL excluded by scope).
  [[nodiscard]] bool verify(const TrustStore& trust) const;

  /// Like `verify`, but also reports whether the verdict came from the
  /// trust store's verification memo (for router stats).
  [[nodiscard]] VerifyResult verify_detailed(const TrustStore& trust) const;

  /// Structural equality of the carried parts; the caches are derived state
  /// and deliberately excluded.
  friend bool operator==(const SecuredMessage& a, const SecuredMessage& b) {
    return a.packet_ == b.packet_ && a.signer_ == b.signer_ && a.signature_ == b.signature_;
  }

 private:
  net::Packet packet_{};
  Certificate signer_{};
  std::uint64_t signature_{0};

  // Shared caches. `mutable` because they are pure memoization of
  // `packet_`: building them never changes observable state. Worlds are
  // single-threaded (the parallel harness runs independent worlds), so lazy
  // builds are unsynchronized by design.
  mutable SignedPortionPtr sp_cache_;
  mutable std::shared_ptr<const net::Bytes> wire_cache_;
};

/// Shared immutable envelope handle — the form the phy frame, the CBF/SCF
/// packet buffers and the retransmission state pass around. One signed
/// message is wrapped exactly once (at origination or at a forwarding
/// rewrite) and from there every receiver, buffer and pending-ACK entry
/// aliases the same object, so nothing on the hot path copies a packet.
using SecuredMessagePtr = std::shared_ptr<const SecuredMessage>;

/// Moves `msg` into a shared immutable envelope.
[[nodiscard]] inline SecuredMessagePtr share(SecuredMessage msg) {
  return std::make_shared<const SecuredMessage>(std::move(msg));
}

}  // namespace vgr::security

#include "vgr/security/secured_message.hpp"

namespace vgr::security {

SecuredMessage SecuredMessage::sign(const net::Packet& packet, const Signer& signer) {
  SecuredMessage msg;
  msg.packet_ = packet;
  msg.signer_ = signer.certificate();
  // The signed-portion cache *is* the byte string being signed — build it
  // eagerly so neither the sender's transmit nor any receiver's verify ever
  // serializes this packet again.
  msg.signature_ = signer.sign(msg.signed_portion()->bytes);
  return msg;
}

SecuredMessage SecuredMessage::from_parts(net::Packet packet, Certificate signer,
                                          std::uint64_t signature) {
  SecuredMessage msg;
  msg.packet_ = std::move(packet);
  msg.signer_ = signer;
  msg.signature_ = signature;
  return msg;
}

const SignedPortionPtr& SecuredMessage::signed_portion() const {
  if (!sp_cache_) {
    net::Bytes bytes = net::Codec::encode_signed_portion(packet_);
    const std::uint64_t digest = structural_digest(bytes);
    sp_cache_ = std::make_shared<const SignedPortion>(SignedPortion{std::move(bytes), digest});
  }
  return sp_cache_;
}

const net::Bytes& SecuredMessage::wire() const {
  if (!wire_cache_) {
    // Assemble Basic Header + length-prefixed signed portion from the cached
    // encoding — byte-identical to Codec::encode(packet_) without walking
    // the packet again.
    const SignedPortionPtr& sp = signed_portion();
    net::ByteWriter w;
    w.u8(packet_.basic.version);
    w.u8(packet_.basic.remaining_hop_limit);
    w.u64(static_cast<std::uint64_t>(packet_.basic.lifetime.count()));
    w.bytes(sp->bytes);
    wire_cache_ = std::make_shared<const net::Bytes>(w.take());
  }
  return *wire_cache_;
}

bool SecuredMessage::verify(const TrustStore& trust) const {
  return trust.verify_message(signer_, signed_portion(), signature_).ok;
}

VerifyResult SecuredMessage::verify_detailed(const TrustStore& trust) const {
  return trust.verify_message(signer_, signed_portion(), signature_);
}

}  // namespace vgr::security

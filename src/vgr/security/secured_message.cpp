#include "vgr/security/secured_message.hpp"

namespace vgr::security {

SecuredMessage SecuredMessage::sign(const net::Packet& packet, const Signer& signer) {
  SecuredMessage msg;
  msg.packet = packet;
  msg.signer = signer.certificate();
  msg.signature = signer.sign(net::Codec::encode_signed_portion(packet));
  return msg;
}

bool SecuredMessage::verify(const TrustStore& trust) const {
  return trust.verify(signer, net::Codec::encode_signed_portion(packet), signature);
}

}  // namespace vgr::security

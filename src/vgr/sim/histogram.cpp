#include "vgr/sim/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace vgr::sim {

void Histogram::add(double value) {
  samples_.push_back(value);
  sum_ += value;
  sorted_ = false;
}

double Histogram::min() const {
  assert(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
  assert(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::mean() const {
  assert(!samples_.empty());
  return sum_ / static_cast<double>(samples_.size());
}

double Histogram::quantile(double q) const {
  assert(!samples_.empty());
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - std::floor(pos);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void Histogram::merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sum_ += other.sum_;
  sorted_ = false;
}

void Histogram::clear() {
  samples_.clear();
  sum_ = 0.0;
  sorted_ = true;
}

}  // namespace vgr::sim

#pragma once

#include <cstddef>
#include <vector>

namespace vgr::sim {

/// Small exact-quantile accumulator for experiment statistics (delivery
/// latencies, hop counts, gaps). Stores samples; quantiles sort lazily.
/// Intended for per-run sample counts in the thousands, not streaming
/// telemetry.
class Histogram {
 public:
  void add(double value);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;

  /// q in [0, 1]; linear interpolation between order statistics.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

  void merge(const Histogram& other);
  void clear();

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_{true};
  double sum_{0.0};
};

}  // namespace vgr::sim

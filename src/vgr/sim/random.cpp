#include "vgr/sim/random.hpp"

#include <cassert>
#include <cmath>

namespace vgr::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller; draw u1 away from 0 to keep log() finite.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::fork() { return Rng{next_u64()}; }

}  // namespace vgr::sim

#include "vgr/sim/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <memory>

#include "vgr/sim/env.hpp"

namespace vgr::sim {

std::size_t ThreadPool::default_thread_count() {
  if (const auto v = env_int("VGR_THREADS"); v.has_value() && *v > 0) {
    return static_cast<std::size_t>(*v);
  }
  return hardware_threads();
}

std::size_t ThreadPool::hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) queues_.push_back(std::make_unique<Queue>());
  // With one thread the caller does all the work in parallel_for; spawning a
  // lone worker would only add wakeup latency.
  if (threads == 1) return;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock{wake_mutex_};
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target;
  {
    std::lock_guard lock{wake_mutex_};
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  {
    std::lock_guard lock{queues_[target]->mutex};
    queues_[target]->tasks.push_back(std::move(task));
  }
  wake_.notify_one();
}

std::function<void()> ThreadPool::take(std::size_t self) {
  // Own queue first (back: most recently pushed, cache-warm)...
  {
    Queue& q = *queues_[self];
    std::lock_guard lock{q.mutex};
    if (!q.tasks.empty()) {
      auto task = std::move(q.tasks.back());
      q.tasks.pop_back();
      return task;
    }
  }
  // ...then steal from the front of the other queues.
  for (std::size_t i = 1; i < queues_.size(); ++i) {
    Queue& q = *queues_[(self + i) % queues_.size()];
    std::lock_guard lock{q.mutex};
    if (!q.tasks.empty()) {
      auto task = std::move(q.tasks.front());
      q.tasks.pop_front();
      return task;
    }
  }
  return {};
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    if (auto task = take(self)) {
      task();
      continue;
    }
    std::unique_lock lock{wake_mutex_};
    if (stop_) return;
    wake_.wait_for(lock, std::chrono::milliseconds(10));
    if (stop_) return;
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (thread_count() == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Shared index counter: workers and the caller pull the next undone index
  // until exhausted. Tasks are coarse (a whole scenario run), so one atomic
  // per task is noise.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto done = std::make_shared<std::atomic<std::size_t>>(0);
  const auto body = [next, done, n, &fn] {
    for (;;) {
      const std::size_t i = next->fetch_add(1);
      if (i >= n) return;
      fn(i);
      done->fetch_add(1);
    }
  };
  // One pump task per worker; each drains the shared counter.
  const std::size_t pumps = std::min(n, thread_count());
  for (std::size_t i = 0; i < pumps; ++i) submit(body);
  body();  // the caller participates
  while (done->load() < n) std::this_thread::yield();
}

}  // namespace vgr::sim

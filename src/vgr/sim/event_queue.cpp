#include "vgr/sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

#include "vgr/sim/strip_executor.hpp"

namespace vgr::sim {

EventQueue::~EventQueue() {
  // A non-empty queue at teardown still owns callables (live or retired-
  // but-uncollected); destroy them so captured resources are released.
  // Only the local slab: records that migrated here with a foreign-region
  // slot are destroyed by the slot's owning wheel.
  const std::uint32_t hw = slot_high_water_.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < hw; ++i) {
    Slot& s = slot_local_(i);
    if (s.owner.load(std::memory_order_relaxed) != 0) s.destroy(s.storage);
  }
}

bool EventQueue::slot_index_valid_(std::uint32_t idx) const {
  if (plane_ == nullptr) return idx < slot_high_water_.load(std::memory_order_relaxed);
  if ((idx >> kRegionShift) != strip_) return plane_slot_valid_(idx);
  return (idx & kRegionLocalMask) < slot_high_water_.load(std::memory_order_relaxed);
}

std::uint32_t EventQueue::acquire_slot() {
  if (free_slots_.empty() && plane_ != nullptr) drain_remote_free_();
  if (!free_slots_.empty()) {
    const std::uint32_t idx = free_slots_.back();
    free_slots_.pop_back();
    return idx;
  }
  const std::uint32_t local = slot_high_water_.load(std::memory_order_relaxed);
  assert(local < (1U << kRegionShift) && "slot slab exhausted its region");
  if ((local & (kChunkSlots - 1U)) == 0) {
    // Wheels pre-reserve the whole chunk table (kWheelChunkCapacity) so the
    // pointer vector never reallocates while other wheels dereference it.
    assert((plane_ == nullptr || chunks_.size() < chunks_.capacity()) &&
           "wheel chunk table exceeded its reserved capacity");
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSlots));
  }
  slot_high_water_.store(local + 1U, std::memory_order_relaxed);
  return region_base_ | local;
}

void EventQueue::release_slot_(std::uint32_t idx) {
  if (plane_ == nullptr || (idx >> kRegionShift) == strip_) {
    free_slots_.push_back(idx);
    return;
  }
  plane_remote_release_(idx);
}

void EventQueue::drain_remote_free_() {
  const std::lock_guard<std::mutex> lock(remote_mutex_);
  free_slots_.insert(free_slots_.end(), remote_free_.begin(), remote_free_.end());
  remote_free_.clear();
}

void EventQueue::push_remote_free_(std::uint32_t idx) {
  const std::lock_guard<std::mutex> lock(remote_mutex_);
  remote_free_.push_back(idx);
}

CohortId EventQueue::make_cohort() {
  if (plane_ != nullptr) return plane_make_cohort_();
  const auto idx = static_cast<std::uint32_t>(cohorts_.size());
  cohorts_.push_back(Cohort{});
  return CohortId{idx};
}

std::size_t EventQueue::cancel_cohort(CohortId cohort) {
  if (plane_ != nullptr && !is_wheel_) return plane_wheel_().cancel_cohort(cohort);
  assert(cohort.value != 0 && "the default cohort cannot be retired");
  if (cohort.value == 0) return 0;
  if (plane_ == nullptr && cohort.value >= cohorts_.size()) return 0;
  Cohort& c = cohort_ref(cohort.value);
  const std::size_t retired = c.pending;
  live_count_ -= retired;
  c.pending = 0;
  ++c.gen;
  if (cache_valid_) {
    const Slot& s = slot_at(cache_.slot);
    if (s.owner.load(std::memory_order_relaxed) == cache_.id && s.cohort == cohort.value) {
      cache_valid_ = false;
    }
  }
  return retired;
}

bool EventQueue::cancel(EventId id) {
  if (plane_ != nullptr && !is_wheel_) return plane_wheel_().cancel(id);
  if (id.value == 0 || !slot_index_valid_(id.slot)) return false;
  Slot& s = slot_at(id.slot);
  if (s.owner.load(std::memory_order_relaxed) != id.value) {
    return false;  // already fired or cancelled
  }
  const bool was_live = s.gen == cohort_ref(s.cohort).gen;
  if (was_live) {
    --live_count_;
    --cohort_ref(s.cohort).pending;
  }
  // Either way the slot's callable is done for; collect it eagerly (the
  // calendar record is dropped lazily when it surfaces).
  s.destroy(s.storage);
  s.owner.store(0, std::memory_order_relaxed);
  release_slot_(id.slot);
  if (cache_valid_ && cache_.id == id.value) cache_valid_ = false;
  return was_live;
}

bool EventQueue::pending(EventId id) const {
  if (plane_ != nullptr && !is_wheel_) return plane_wheel_().pending(id);
  if (id.value == 0 || !slot_index_valid_(id.slot)) return false;
  const Slot& s = slot_at(id.slot);
  return s.owner.load(std::memory_order_relaxed) == id.value &&
         s.gen == cohort_ref(s.cohort).gen;
}

bool EventQueue::rec_dead(const Rec& r) const {
  const Slot& s = slot_at(r.slot);
  if (s.owner.load(std::memory_order_relaxed) != r.id) {
    return true;  // fired, cancelled, or slot reused
  }
  return s.gen != cohort_ref(s.cohort).gen;
}

void EventQueue::collect_dead(const Rec& r) {
  Slot& s = slot_at(r.slot);
  if (s.owner.load(std::memory_order_relaxed) == r.id) {
    // Cohort-retired: the callable is still in place.
    s.destroy(s.storage);
    s.owner.store(0, std::memory_order_relaxed);
    release_slot_(r.slot);
  }
}

void EventQueue::cleanup_top(std::vector<Rec>& bucket) {
  while (!bucket.empty() && rec_dead(bucket.front())) {
    collect_dead(bucket.front());
    std::pop_heap(bucket.begin(), bucket.end(), RecAfter{});
    bucket.pop_back();
    --recs_;
  }
}

void EventQueue::insert_rec(TimePoint when, std::uint64_t id, std::uint32_t slot,
                            std::uint32_t handle) {
  if (recs_ + 1 > 2 * buckets_.size() && buckets_.size() < kMaxBuckets) {
    rebuild_buckets(buckets_.size() * 2);
  }
  auto& bucket = buckets_[static_cast<std::size_t>(tick_of(when)) & bucket_mask_];
  bucket.push_back(Rec{when, id, slot, handle});
  std::push_heap(bucket.begin(), bucket.end(), RecAfter{});
  ++recs_;
  // A strictly earlier event displaces the cached minimum (ties cannot:
  // the fresh id is the largest issued, so FIFO keeps the cache in front).
  if (cache_valid_ && when < cache_.when) {
    cache_ = Rec{when, id, slot, handle};
    cache_bucket_ = static_cast<std::size_t>(tick_of(when)) & bucket_mask_;
  }
}

void EventQueue::rebuild_buckets(std::size_t new_count) {
  std::vector<std::vector<Rec>> fresh(new_count);
  const std::size_t mask = new_count - 1;
  for (auto& bucket : buckets_) {
    for (const Rec& r : bucket) {
      if (rec_dead(r)) {  // resize doubles as a purge of retired entries
        collect_dead(r);
        --recs_;
        continue;
      }
      fresh[static_cast<std::size_t>(tick_of(r.when)) & mask].push_back(r);
    }
  }
  for (auto& bucket : fresh) std::make_heap(bucket.begin(), bucket.end(), RecAfter{});
  buckets_ = std::move(fresh);
  bucket_mask_ = mask;
  cache_valid_ = false;
}

const EventQueue::Rec* EventQueue::peek() {
  if (cache_valid_) return &cache_;
  if (recs_ == 0) return nullptr;
  // Scan one year of buckets starting at the current instant's tick. Every
  // record satisfies when >= now_, so nothing can hide behind the start.
  const std::uint64_t start = tick_of(now_);
  const std::size_t nb = buckets_.size();
  for (std::size_t i = 0; i < nb; ++i) {
    const std::uint64_t t = start + i;
    auto& bucket = buckets_[static_cast<std::size_t>(t) & bucket_mask_];
    cleanup_top(bucket);
    if (recs_ == 0) return nullptr;
    if (!bucket.empty() && tick_of(bucket.front().when) == t) {
      cache_ = bucket.front();
      cache_bucket_ = static_cast<std::size_t>(t) & bucket_mask_;
      cache_valid_ = true;
      return &cache_;
    }
  }
  // Nothing within a year of now: fall back to the global minimum (rare —
  // an idle queue holding only far-horizon soft-state timers).
  const Rec* best = nullptr;
  std::size_t best_bucket = 0;
  for (std::size_t b = 0; b < nb; ++b) {
    cleanup_top(buckets_[b]);
    if (buckets_[b].empty()) continue;
    const Rec& top = buckets_[b].front();
    if (best == nullptr || RecAfter{}(*best, top)) {
      best = &top;
      best_bucket = b;
    }
  }
  if (best == nullptr) return nullptr;
  cache_ = *best;
  cache_bucket_ = best_bucket;
  cache_valid_ = true;
  return &cache_;
}

void EventQueue::pop_front() {
  assert(cache_valid_);
  auto& bucket = buckets_[cache_bucket_];
  std::pop_heap(bucket.begin(), bucket.end(), RecAfter{});
  bucket.pop_back();
  --recs_;
  cache_valid_ = false;
  if (recs_ < buckets_.size() / 8 && buckets_.size() > kMinBuckets) {
    rebuild_buckets(buckets_.size() / 2);
  }
}

bool EventQueue::step() {
  if (plane_ != nullptr && !is_wheel_) return plane_wheel_().step();
  const Rec* top = peek();
  if (top == nullptr) return false;
  const Rec r = *top;
  pop_front();
  Slot& s = slot_at(r.slot);
  assert(r.when >= now_);
  now_ = r.when;
  // Mark fired before invoking: a callback cancelling or re-querying its
  // own id must see "already fired", and the slot is only recycled after
  // the callable has been destroyed, so reentrant schedules cannot clobber
  // the running closure even though they may acquire fresh slots.
  s.owner.store(0, std::memory_order_relaxed);
  --live_count_;
  --cohort_ref(s.cohort).pending;
  ++fired_;
  s.invoke(s.storage);
  s.destroy(s.storage);
  release_slot_(r.slot);
  return true;
}

void EventQueue::run_until(TimePoint until) {
  if (plane_ != nullptr) {
    plane_run_until_(until);
    return;
  }
  const bool budgeted = budget_events_end_ != 0 || has_wall_deadline_;
  for (;;) {
    // peek() surfaces only live events, so a cancelled event sitting at
    // the boundary cannot admit a later one past `until`.
    const Rec* top = peek();
    if (top == nullptr || top->when > until) break;
    if (budgeted) {
      const BudgetTrip trip = budget_tripped();
      if (trip != BudgetTrip::kNone) {
        budget_exceeded_ = true;
        budget_trip_ = trip;
        break;
      }
    }
    step();
  }
  if (now_ < until) now_ = until;
}

std::uint64_t EventQueue::run_window_(TimePoint bound_incl, std::uint64_t max_fire,
                                      const std::atomic<bool>* abort) {
  assert(is_wheel_ || plane_ == nullptr);
  std::uint64_t n = 0;
  while (n < max_fire) {
    if (abort != nullptr && (n & 0xFFFU) == 0xFFFU &&
        abort->load(std::memory_order_relaxed)) {
      break;
    }
    const Rec* top = peek();
    if (top == nullptr || top->when > bound_incl) break;
    step();
    ++n;
  }
  if (now_ < bound_incl) now_ = bound_incl;
  return n;
}

bool EventQueue::next_when_(TimePoint& out) {
  const Rec* top = peek();
  if (top == nullptr) return false;
  out = top->when;
  return true;
}

EventId EventQueue::schedule_posted_(TimePoint when, std::uint32_t handle_tag,
                                     Callback fn) {
  assert(is_wheel_ || plane_ == nullptr);
  if (when < now_) when = now_;
  const std::uint32_t slot_idx = acquire_slot();
  Slot& s = slot_at(slot_idx);
  using Fn = Callback;
  static_assert(sizeof(Fn) <= kInlineCallbackBytes &&
                alignof(Fn) <= alignof(std::max_align_t));
  ::new (static_cast<void*>(s.storage)) Fn(std::move(fn));
  s.invoke = [](void* p) { (*static_cast<Fn*>(p))(); };
  s.destroy = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
  const EventId id{id_base_ + next_id_++, slot_idx};
  s.owner.store(id.value, std::memory_order_relaxed);
  s.cohort = 0;
  s.gen = cohorts_[0].gen;
  ++cohorts_[0].pending;
  ++live_count_;
  insert_rec(when, id.value, slot_idx, handle_tag);
  return id;
}

void EventQueue::set_run_budget(std::uint64_t max_events, double wall_seconds) {
  if (plane_ != nullptr) {
    plane_set_budget_(max_events, wall_seconds);
    return;
  }
  budget_exceeded_ = false;
  budget_trip_ = BudgetTrip::kNone;
  budget_events_end_ = max_events == 0 ? 0 : fired_ + max_events;
  has_wall_deadline_ = wall_seconds > 0.0;
  if (has_wall_deadline_) {
    wall_deadline_ = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(wall_seconds));
  }
}

BudgetTrip EventQueue::budget_tripped() {
  if (budget_events_end_ != 0 && fired_ >= budget_events_end_) return BudgetTrip::kEvents;
  // The wall clock is only consulted every 4096 events: a syscall per event
  // would dominate the hot loop, and watchdog precision of a few
  // milliseconds is ample for budgets measured in seconds.
  if (has_wall_deadline_ && (fired_ & 0xFFFU) == 0 &&
      std::chrono::steady_clock::now() >= wall_deadline_) {
    return BudgetTrip::kWall;
  }
  return BudgetTrip::kNone;
}

// --- Strip-plane forwarding -----------------------------------------------
// Out-of-line so event_queue.hpp does not depend on strip_executor.hpp (the
// plane holds EventQueues by value; the include edge must point this way).

void EventQueue::init_wheel_(StripPlane* plane, std::uint32_t strip) {
  plane_ = plane;
  strip_ = strip;
  is_wheel_ = true;
  region_base_ = strip << kRegionShift;
  id_base_ = static_cast<std::uint64_t>(strip) << 56U;
  chunks_.reserve(kWheelChunkCapacity);
}

void EventQueue::init_handle_(StripPlane* plane, std::uint32_t strip,
                              std::uint32_t handle_id) {
  plane_ = plane;
  strip_ = strip;
  handle_id_ = handle_id;
}

EventQueue& EventQueue::plane_wheel_() { return plane_->wheel_(strip_); }

const EventQueue& EventQueue::plane_wheel_() const { return plane_->wheel_(strip_); }

EventQueue::Slot& EventQueue::plane_slot_(std::uint32_t idx) {
  return plane_->wheel_(idx >> kRegionShift).slot_local_(idx & kRegionLocalMask);
}

const EventQueue::Slot& EventQueue::plane_slot_(std::uint32_t idx) const {
  return plane_->wheel_(idx >> kRegionShift).slot_local_(idx & kRegionLocalMask);
}

bool EventQueue::plane_slot_valid_(std::uint32_t idx) const {
  const EventQueue& owner = plane_->wheel_(idx >> kRegionShift);
  return (idx & kRegionLocalMask) <
         owner.slot_high_water_.load(std::memory_order_relaxed);
}

EventQueue::Cohort& EventQueue::plane_cohort_(std::uint32_t v) {
  return plane_->shared_cohort_(v);
}

const EventQueue::Cohort& EventQueue::plane_cohort_(std::uint32_t v) const {
  return plane_->shared_cohort_(v);
}

TimePoint EventQueue::plane_now_() const { return plane_->wheel_(strip_).now_; }

std::uint64_t EventQueue::plane_fired_() const {
  return is_wheel_ ? fired_ : plane_->fired_total();
}

std::size_t EventQueue::plane_pending_() const {
  return is_wheel_ ? live_count_ : plane_->pending_total();
}

bool EventQueue::plane_budget_exceeded_() const { return plane_->budget_exceeded(); }

BudgetTrip EventQueue::plane_budget_trip_() const { return plane_->budget_trip(); }

CohortId EventQueue::plane_make_cohort_() { return plane_->make_shared_cohort_(); }

void EventQueue::plane_remote_release_(std::uint32_t idx) {
  plane_->wheel_(idx >> kRegionShift).push_remote_free_(idx);
}

void EventQueue::plane_run_until_(TimePoint until) {
  assert(!is_wheel_ && handle_id_ == 0 &&
         "only the global plane handle drives the executor");
  plane_->run_until(until);
}

void EventQueue::plane_set_budget_(std::uint64_t max_events, double wall_seconds) {
  assert(!is_wheel_ && handle_id_ == 0);
  plane_->set_run_budget(max_events, wall_seconds);
}

}  // namespace vgr::sim

#include "vgr/sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace vgr::sim {

EventId EventQueue::schedule_at(TimePoint when, Callback cb) {
  assert(when >= now_ && "cannot schedule into the past");
  if (when < now_) when = now_;
  const EventId id{next_id_++};
  live_.set(id.value);
  heap_.push(Entry{when, next_seq_++, id, std::move(cb)});
  return id;
}

EventId EventQueue::schedule_in(Duration delay, Callback cb) {
  assert(delay >= Duration::zero());
  return schedule_at(now_ + delay, std::move(cb));
}

bool EventQueue::cancel(EventId id) {
  if (id.value == 0 || id.value >= next_id_) return false;
  if (!live_.test(id.value)) return false;       // already fired
  if (cancelled_.test(id.value)) return false;   // already cancelled
  // Lazy deletion: mark the id; the heap entry is dropped when popped.
  cancelled_.set(id.value);
  ++cancelled_pending_;
  return true;
}

bool EventQueue::pending(EventId id) const {
  if (id.value == 0) return false;
  if (cancelled_.test(id.value)) return false;
  return live_.test(id.value);
}

void EventQueue::run_until(TimePoint until) {
  const bool budgeted = budget_events_end_ != 0 || has_wall_deadline_;
  for (;;) {
    // Discard cancelled entries *before* inspecting the top's timestamp —
    // otherwise a cancelled event at the boundary would admit the next
    // live event even when it lies beyond `until`.
    purge_cancelled_top();
    if (heap_.empty() || heap_.top().when > until) break;
    if (budgeted && budget_tripped()) {
      budget_exceeded_ = true;
      break;
    }
    step();
  }
  if (now_ < until) now_ = until;
}

void EventQueue::set_run_budget(std::uint64_t max_events, double wall_seconds) {
  budget_exceeded_ = false;
  budget_events_end_ = max_events == 0 ? 0 : fired_ + max_events;
  has_wall_deadline_ = wall_seconds > 0.0;
  if (has_wall_deadline_) {
    wall_deadline_ = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(wall_seconds));
  }
}

bool EventQueue::budget_tripped() {
  if (budget_events_end_ != 0 && fired_ >= budget_events_end_) return true;
  // The wall clock is only consulted every 4096 events: a syscall per event
  // would dominate the hot loop, and watchdog precision of a few
  // milliseconds is ample for budgets measured in seconds.
  if (has_wall_deadline_ && (fired_ & 0xFFFU) == 0 &&
      std::chrono::steady_clock::now() >= wall_deadline_) {
    return true;
  }
  return false;
}

void EventQueue::purge_cancelled_top() {
  while (!heap_.empty()) {
    const std::uint64_t id = heap_.top().id.value;
    if (!cancelled_.test(id)) return;
    cancelled_.clear(id);
    live_.clear(id);
    --cancelled_pending_;
    heap_.pop();
  }
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    Entry top = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    if (cancelled_.test(top.id.value)) {
      cancelled_.clear(top.id.value);
      live_.clear(top.id.value);
      --cancelled_pending_;
      continue;
    }
    assert(top.when >= now_);
    now_ = top.when;
    live_.clear(top.id.value);
    ++fired_;
    top.cb();
    return true;
  }
  return false;
}

}  // namespace vgr::sim

#include "vgr/sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace vgr::sim {

EventQueue::~EventQueue() {
  // A non-empty queue at teardown still owns callables (live or retired-
  // but-uncollected); destroy them so captured resources are released.
  for (std::uint32_t i = 0; i < slot_high_water_; ++i) {
    Slot& s = slot_at(i);
    if (s.owner != 0) s.destroy(s.storage);
  }
}

std::uint32_t EventQueue::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t idx = free_slots_.back();
    free_slots_.pop_back();
    return idx;
  }
  if ((slot_high_water_ & (kChunkSlots - 1U)) == 0) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSlots));
  }
  return slot_high_water_++;
}

CohortId EventQueue::make_cohort() {
  const auto idx = static_cast<std::uint32_t>(cohorts_.size());
  cohorts_.push_back(Cohort{});
  return CohortId{idx};
}

std::size_t EventQueue::cancel_cohort(CohortId cohort) {
  assert(cohort.value != 0 && "the default cohort cannot be retired");
  if (cohort.value == 0 || cohort.value >= cohorts_.size()) return 0;
  Cohort& c = cohorts_[cohort.value];
  const std::size_t retired = c.pending;
  live_count_ -= retired;
  c.pending = 0;
  ++c.gen;
  if (cache_valid_) {
    const Slot& s = slot_at(cache_.slot);
    if (s.owner == cache_.id && s.cohort == cohort.value) cache_valid_ = false;
  }
  return retired;
}

bool EventQueue::cancel(EventId id) {
  if (id.value == 0 || id.slot >= slot_high_water_) return false;
  Slot& s = slot_at(id.slot);
  if (s.owner != id.value) return false;  // already fired or cancelled
  const bool was_live = s.gen == cohorts_[s.cohort].gen;
  if (was_live) {
    --live_count_;
    --cohorts_[s.cohort].pending;
  }
  // Either way the slot's callable is done for; collect it eagerly (the
  // calendar record is dropped lazily when it surfaces).
  s.destroy(s.storage);
  s.owner = 0;
  free_slots_.push_back(id.slot);
  if (cache_valid_ && cache_.id == id.value) cache_valid_ = false;
  return was_live;
}

bool EventQueue::pending(EventId id) const {
  if (id.value == 0 || id.slot >= slot_high_water_) return false;
  const Slot& s = slot_at(id.slot);
  return s.owner == id.value && s.gen == cohorts_[s.cohort].gen;
}

bool EventQueue::rec_dead(const Rec& r) const {
  const Slot& s = slot_at(r.slot);
  if (s.owner != r.id) return true;  // fired, cancelled, or slot reused
  return s.gen != cohorts_[s.cohort].gen;
}

void EventQueue::collect_dead(const Rec& r) {
  Slot& s = slot_at(r.slot);
  if (s.owner == r.id) {  // cohort-retired: the callable is still in place
    s.destroy(s.storage);
    s.owner = 0;
    free_slots_.push_back(r.slot);
  }
}

void EventQueue::cleanup_top(std::vector<Rec>& bucket) {
  while (!bucket.empty() && rec_dead(bucket.front())) {
    collect_dead(bucket.front());
    std::pop_heap(bucket.begin(), bucket.end(), RecAfter{});
    bucket.pop_back();
    --recs_;
  }
}

void EventQueue::insert_rec(TimePoint when, std::uint64_t id, std::uint32_t slot) {
  if (recs_ + 1 > 2 * buckets_.size() && buckets_.size() < kMaxBuckets) {
    rebuild_buckets(buckets_.size() * 2);
  }
  auto& bucket = buckets_[static_cast<std::size_t>(tick_of(when)) & bucket_mask_];
  bucket.push_back(Rec{when, id, slot});
  std::push_heap(bucket.begin(), bucket.end(), RecAfter{});
  ++recs_;
  // A strictly earlier event displaces the cached minimum (ties cannot:
  // the fresh id is the largest issued, so FIFO keeps the cache in front).
  if (cache_valid_ && when < cache_.when) {
    cache_ = Rec{when, id, slot};
    cache_bucket_ = static_cast<std::size_t>(tick_of(when)) & bucket_mask_;
  }
}

void EventQueue::rebuild_buckets(std::size_t new_count) {
  std::vector<std::vector<Rec>> fresh(new_count);
  const std::size_t mask = new_count - 1;
  for (auto& bucket : buckets_) {
    for (const Rec& r : bucket) {
      if (rec_dead(r)) {  // resize doubles as a purge of retired entries
        collect_dead(r);
        --recs_;
        continue;
      }
      fresh[static_cast<std::size_t>(tick_of(r.when)) & mask].push_back(r);
    }
  }
  for (auto& bucket : fresh) std::make_heap(bucket.begin(), bucket.end(), RecAfter{});
  buckets_ = std::move(fresh);
  bucket_mask_ = mask;
  cache_valid_ = false;
}

const EventQueue::Rec* EventQueue::peek() {
  if (cache_valid_) return &cache_;
  if (recs_ == 0) return nullptr;
  // Scan one year of buckets starting at the current instant's tick. Every
  // record satisfies when >= now_, so nothing can hide behind the start.
  const std::uint64_t start = tick_of(now_);
  const std::size_t nb = buckets_.size();
  for (std::size_t i = 0; i < nb; ++i) {
    const std::uint64_t t = start + i;
    auto& bucket = buckets_[static_cast<std::size_t>(t) & bucket_mask_];
    cleanup_top(bucket);
    if (recs_ == 0) return nullptr;
    if (!bucket.empty() && tick_of(bucket.front().when) == t) {
      cache_ = bucket.front();
      cache_bucket_ = static_cast<std::size_t>(t) & bucket_mask_;
      cache_valid_ = true;
      return &cache_;
    }
  }
  // Nothing within a year of now: fall back to the global minimum (rare —
  // an idle queue holding only far-horizon soft-state timers).
  const Rec* best = nullptr;
  std::size_t best_bucket = 0;
  for (std::size_t b = 0; b < nb; ++b) {
    cleanup_top(buckets_[b]);
    if (buckets_[b].empty()) continue;
    const Rec& top = buckets_[b].front();
    if (best == nullptr || RecAfter{}(*best, top)) {
      best = &top;
      best_bucket = b;
    }
  }
  if (best == nullptr) return nullptr;
  cache_ = *best;
  cache_bucket_ = best_bucket;
  cache_valid_ = true;
  return &cache_;
}

void EventQueue::pop_front() {
  assert(cache_valid_);
  auto& bucket = buckets_[cache_bucket_];
  std::pop_heap(bucket.begin(), bucket.end(), RecAfter{});
  bucket.pop_back();
  --recs_;
  cache_valid_ = false;
  if (recs_ < buckets_.size() / 8 && buckets_.size() > kMinBuckets) {
    rebuild_buckets(buckets_.size() / 2);
  }
}

bool EventQueue::step() {
  const Rec* top = peek();
  if (top == nullptr) return false;
  const Rec r = *top;
  pop_front();
  Slot& s = slot_at(r.slot);
  assert(r.when >= now_);
  now_ = r.when;
  // Mark fired before invoking: a callback cancelling or re-querying its
  // own id must see "already fired", and the slot is only recycled after
  // the callable has been destroyed, so reentrant schedules cannot clobber
  // the running closure even though they may acquire fresh slots.
  s.owner = 0;
  --live_count_;
  --cohorts_[s.cohort].pending;
  ++fired_;
  s.invoke(s.storage);
  s.destroy(s.storage);
  free_slots_.push_back(r.slot);
  return true;
}

void EventQueue::run_until(TimePoint until) {
  const bool budgeted = budget_events_end_ != 0 || has_wall_deadline_;
  for (;;) {
    // peek() surfaces only live events, so a cancelled event sitting at
    // the boundary cannot admit a later one past `until`.
    const Rec* top = peek();
    if (top == nullptr || top->when > until) break;
    if (budgeted) {
      const BudgetTrip trip = budget_tripped();
      if (trip != BudgetTrip::kNone) {
        budget_exceeded_ = true;
        budget_trip_ = trip;
        break;
      }
    }
    step();
  }
  if (now_ < until) now_ = until;
}

void EventQueue::set_run_budget(std::uint64_t max_events, double wall_seconds) {
  budget_exceeded_ = false;
  budget_trip_ = BudgetTrip::kNone;
  budget_events_end_ = max_events == 0 ? 0 : fired_ + max_events;
  has_wall_deadline_ = wall_seconds > 0.0;
  if (has_wall_deadline_) {
    wall_deadline_ = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(wall_seconds));
  }
}

BudgetTrip EventQueue::budget_tripped() {
  if (budget_events_end_ != 0 && fired_ >= budget_events_end_) return BudgetTrip::kEvents;
  // The wall clock is only consulted every 4096 events: a syscall per event
  // would dominate the hot loop, and watchdog precision of a few
  // milliseconds is ample for budgets measured in seconds.
  if (has_wall_deadline_ && (fired_ & 0xFFFU) == 0 &&
      std::chrono::steady_clock::now() >= wall_deadline_) {
    return BudgetTrip::kWall;
  }
  return BudgetTrip::kNone;
}

}  // namespace vgr::sim

#include "vgr/sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace vgr::sim {

EventId EventQueue::schedule_at(TimePoint when, Callback cb) {
  assert(when >= now_ && "cannot schedule into the past");
  if (when < now_) when = now_;
  const EventId id{next_id_++};
  live_.insert(id.value);
  heap_.push(Entry{when, next_seq_++, id, std::move(cb)});
  return id;
}

EventId EventQueue::schedule_in(Duration delay, Callback cb) {
  assert(delay >= Duration::zero());
  return schedule_at(now_ + delay, std::move(cb));
}

bool EventQueue::cancel(EventId id) {
  if (id.value == 0 || id.value >= next_id_) return false;
  if (!live_.contains(id.value)) return false;  // already fired
  // Lazy deletion: remember the id; the heap entry is dropped when popped.
  return cancelled_.insert(id.value).second;
}

bool EventQueue::pending(EventId id) const {
  if (id.value == 0) return false;
  if (cancelled_.contains(id.value)) return false;
  return live_.contains(id.value);
}

void EventQueue::run_until(TimePoint until) {
  for (;;) {
    // Discard cancelled entries *before* inspecting the top's timestamp —
    // otherwise a cancelled event at the boundary would admit the next
    // live event even when it lies beyond `until`.
    purge_cancelled_top();
    if (heap_.empty() || heap_.top().when > until) break;
    step();
  }
  if (now_ < until) now_ = until;
}

void EventQueue::purge_cancelled_top() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().id.value);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    live_.erase(heap_.top().id.value);
    heap_.pop();
  }
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    Entry top = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    if (auto it = cancelled_.find(top.id.value); it != cancelled_.end()) {
      cancelled_.erase(it);
      live_.erase(top.id.value);
      continue;
    }
    assert(top.when >= now_);
    now_ = top.when;
    live_.erase(top.id.value);
    ++fired_;
    top.cb();
    return true;
  }
  return false;
}

}  // namespace vgr::sim

#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace vgr::sim {

/// Simulation time is kept in integer nanoseconds so that event ordering is
/// exact and runs are bit-for-bit reproducible across platforms. `Duration`
/// is a span of simulated time; `TimePoint` is an absolute instant measured
/// from the start of the simulation.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration nanos(std::int64_t n) { return Duration{n}; }
  static constexpr Duration micros(std::int64_t u) { return Duration{u * 1000}; }
  static constexpr Duration millis(std::int64_t m) { return Duration{m * 1'000'000}; }
  static constexpr Duration seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9)};
  }
  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t count() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  [[nodiscard]] constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ns_ + b.ns_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ns_ - b.ns_}; }
  friend constexpr Duration operator*(Duration a, double k) {
    return Duration{static_cast<std::int64_t>(static_cast<double>(a.ns_) * k)};
  }
  friend constexpr Duration operator*(double k, Duration a) { return a * k; }
  friend constexpr double operator/(Duration a, Duration b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  friend constexpr auto operator<=>(Duration, Duration) = default;

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_{0};
};

class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint origin() { return TimePoint{}; }
  static constexpr TimePoint at(Duration since_origin) { return TimePoint{} + since_origin; }
  static constexpr TimePoint max() {
    TimePoint t;
    t.ns_ = std::numeric_limits<std::int64_t>::max();
    return t;
  }

  /// Nanoseconds since simulation start.
  [[nodiscard]] constexpr std::int64_t count() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  [[nodiscard]] constexpr Duration since_origin() const { return Duration::nanos(ns_); }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    TimePoint r;
    r.ns_ = t.ns_ + d.count();
    return r;
  }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    TimePoint r;
    r.ns_ = t.ns_ - d.count();
    return r;
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::nanos(a.ns_ - b.ns_);
  }
  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

 private:
  std::int64_t ns_{0};
};

/// Human-readable rendering like "12.345s", used in traces and test output.
std::string to_string(Duration d);
std::string to_string(TimePoint t);

namespace literals {
constexpr Duration operator""_ms(unsigned long long v) {
  return Duration::millis(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_us(unsigned long long v) {
  return Duration::micros(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_s(unsigned long long v) {
  return Duration::seconds(static_cast<double>(v));
}
constexpr Duration operator""_s(long double v) {
  return Duration::seconds(static_cast<double>(v));
}
}  // namespace literals

}  // namespace vgr::sim

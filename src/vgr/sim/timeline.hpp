#pragma once

#include <cstddef>
#include <vector>

#include "vgr/sim/time.hpp"

namespace vgr::sim {

/// Accumulates (success, total) counts into fixed-width time bins.
///
/// The paper reports packet reception rates over forty 5-second bins of a
/// 200-second run, and attack rates (gamma / lambda) as the average relative
/// drop between an attacker-free and an attacked timeline. This type is the
/// single place that arithmetic lives so every bench computes it the same
/// way.
class BinnedRate {
 public:
  BinnedRate(Duration bin_width, Duration horizon);

  /// Records one trial at simulated time `t`: `hits` successes out of
  /// `trials` attempts (e.g. vehicles reached out of vehicles on road).
  void record(TimePoint t, double hits, double trials);

  [[nodiscard]] std::size_t bin_count() const { return hits_.size(); }
  [[nodiscard]] Duration bin_width() const { return bin_width_; }

  /// Rate of bin `i`, or `fallback` if the bin saw no trials.
  [[nodiscard]] double rate(std::size_t i, double fallback = 0.0) const;

  /// True if bin `i` recorded at least one trial.
  [[nodiscard]] bool has_data(std::size_t i) const { return trials_[i] > 0.0; }

  /// Overall rate across all bins (total hits / total trials).
  [[nodiscard]] double overall() const;

  /// Cumulative rate of bins [0, i] inclusive — used by the "accumulated
  /// interception rate over time" figures (Fig 8 / Fig 10).
  [[nodiscard]] double cumulative(std::size_t i) const;

  /// Raw accumulators of bin `i` — the serialization surface for the sweep
  /// journal (vgr/sweep), which must round-trip a timeline exactly so a
  /// resumed sweep merges bit-identically to an uninterrupted one.
  [[nodiscard]] double bin_hits(std::size_t i) const { return hits_[i]; }
  [[nodiscard]] double bin_trials(std::size_t i) const { return trials_[i]; }

  /// Restores bin `i` from journaled raw accumulators (see bin_hits).
  void set_bin(std::size_t i, double hits, double trials) {
    hits_[i] = hits;
    trials_[i] = trials;
  }

  /// Merges another timeline with identical geometry (e.g. across runs).
  void merge(const BinnedRate& other);

  /// Average relative drop from `baseline` to `attacked`, over bins where
  /// the baseline has data and a non-zero rate. This is the paper's
  /// interception rate gamma and blockage rate lambda.
  static double average_drop(const BinnedRate& baseline, const BinnedRate& attacked);

 private:
  Duration bin_width_;
  std::vector<double> hits_;
  std::vector<double> trials_;
};

}  // namespace vgr::sim

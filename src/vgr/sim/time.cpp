#include "vgr/sim/time.hpp"

#include <cstdio>

namespace vgr::sim {

std::string to_string(Duration d) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6fs", d.to_seconds());
  return buf;
}

std::string to_string(TimePoint t) { return to_string(t.since_origin()); }

}  // namespace vgr::sim

#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "vgr/sim/time.hpp"

namespace vgr::sim {

/// Handle for a scheduled event; used to cancel timers (e.g. a CBF
/// contention timer that is stopped when a duplicate packet arrives).
struct EventId {
  std::uint64_t value{0};
  friend bool operator==(EventId, EventId) = default;
};

/// Discrete-event scheduler.
///
/// Events at equal timestamps fire in scheduling order (FIFO), which keeps
/// runs deterministic. Callbacks may schedule or cancel further events,
/// including at the current instant.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time. Starts at the origin.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `cb` at absolute time `when` (must be >= now()).
  EventId schedule_at(TimePoint when, Callback cb);

  /// Schedules `cb` after `delay` (must be >= 0).
  EventId schedule_in(Duration delay, Callback cb);

  /// Cancels a pending event. Cancelling an already-fired or already-
  /// cancelled event is a harmless no-op; returns whether it was pending.
  bool cancel(EventId id);

  /// True if the event has neither fired nor been cancelled.
  [[nodiscard]] bool pending(EventId id) const;

  /// Runs events until the queue is empty or `until` is reached. Time
  /// advances to `until` even if the queue drains earlier. Events scheduled
  /// exactly at `until` do fire.
  void run_until(TimePoint until);

  /// Runs a single event if one is pending; returns false when drained.
  bool step();

  /// Number of events that are scheduled and not cancelled.
  [[nodiscard]] std::size_t pending_count() const {
    return heap_.size() - static_cast<std::size_t>(cancelled_pending_);
  }

  /// Total number of callbacks executed so far (for stats/tests).
  [[nodiscard]] std::uint64_t fired_count() const { return fired_; }

  /// Per-run circuit breaker (the parallel harness's watchdog): run_until
  /// stops early once `max_events` further callbacks have fired or
  /// `wall_seconds` of real time have elapsed. Zero disables either bound.
  /// The event-count breaker is deterministic; the wall-clock one (checked
  /// every 4096 events) is best-effort protection against a hung run and is
  /// inherently host-dependent — opt-in only. Calling this resets
  /// budget_exceeded().
  void set_run_budget(std::uint64_t max_events, double wall_seconds);

  /// True when the last run_until stopped on the budget rather than on
  /// `until` (the run is reported as timed out by the scenario harness).
  [[nodiscard]] bool budget_exceeded() const { return budget_exceeded_; }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;  // tiebreaker: FIFO among equal timestamps
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Drops cancelled entries sitting on top of the heap.
  void purge_cancelled_top();

  [[nodiscard]] bool budget_tripped();

  /// Membership bitset over event ids. Ids are handed out densely from 1,
  /// so a flat bit vector replaces the hash sets the queue used to keep:
  /// schedule/fire/cancel become branch-free bit ops with no per-event node
  /// allocation — at ~4-5M events per dense-flood run the two hash sets
  /// were a measurable slice of the whole simulation. Memory is 1 bit per
  /// id ever issued (an 8 s, 1070-vehicle flood issues ~4.6M ids → ~0.6 MB
  /// per set), released with the queue at the end of the run.
  class IdBitset {
   public:
    void set(std::uint64_t id) {
      const std::size_t w = static_cast<std::size_t>(id >> 6U);
      if (w >= words_.size()) words_.resize(words_.size() + (words_.size() >> 1U) + w + 1);
      words_[w] |= 1ULL << (id & 63U);
    }
    void clear(std::uint64_t id) {
      const std::size_t w = static_cast<std::size_t>(id >> 6U);
      if (w < words_.size()) words_[w] &= ~(1ULL << (id & 63U));
    }
    [[nodiscard]] bool test(std::uint64_t id) const {
      const std::size_t w = static_cast<std::size_t>(id >> 6U);
      return w < words_.size() && ((words_[w] >> (id & 63U)) & 1ULL) != 0;
    }

   private:
    std::vector<std::uint64_t> words_;
  };

  TimePoint now_{};
  std::uint64_t budget_events_end_{0};  ///< fired_ value at which to stop (0 = off)
  bool has_wall_deadline_{false};
  bool budget_exceeded_{false};
  std::chrono::steady_clock::time_point wall_deadline_{};
  std::uint64_t next_seq_{0};
  std::uint64_t next_id_{1};
  std::uint64_t fired_{0};
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  IdBitset cancelled_;
  IdBitset live_;
  std::uint64_t cancelled_pending_{0};  ///< cancelled entries still in the heap
};

}  // namespace vgr::sim

#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "vgr/sim/time.hpp"

namespace vgr::sim {

class StripPlane;

/// Handle for a scheduled event; used to cancel timers (e.g. a CBF
/// contention timer that is stopped when a duplicate packet arrives).
/// `value` is the dense event number (also the FIFO tiebreaker among equal
/// timestamps); `slot` locates the callback slab slot so cancel/pending are
/// O(1) array lookups instead of bitset probes.
struct EventId {
  std::uint64_t value{0};
  std::uint32_t slot{0};
  friend bool operator==(EventId, EventId) = default;
};

/// Handle for a cancellation cohort (see EventQueue::make_cohort). Value 0
/// is the implicit default cohort that is never retired.
struct CohortId {
  std::uint32_t value{0};
  friend bool operator==(CohortId, CohortId) = default;
};

/// Which bound of the per-run budget stopped the last run_until (kNone when
/// the run reached its horizon). The event-count trip is deterministic; a
/// wall-clock trip is host-dependent, which is why sweeps report the two
/// separately (AbResult::timed_out_events / timed_out_wall).
enum class BudgetTrip : std::uint8_t { kNone, kEvents, kWall };

/// Discrete-event scheduler.
///
/// Events at equal timestamps fire in scheduling order (FIFO), which keeps
/// runs deterministic. Callbacks may schedule or cancel further events,
/// including at the current instant.
///
/// Memory plane (ROADMAP item 4): callbacks live in fixed-size slots of a
/// slab allocator (no per-schedule heap allocation as long as the callable
/// fits `kInlineCallbackBytes`), and the pending set is a bucketed calendar
/// queue — per-bucket min-heaps of 24-byte records over a power-of-two ring
/// of ~0.5 ms buckets — instead of one large binary heap of std::functions.
/// Events can be scheduled into a *cohort*; `cancel_cohort` retires every
/// pending member in O(1) by bumping the cohort's generation counter, which
/// is how CBF contention cancellation and router teardown avoid tombstoning
/// thousands of timers one by one. Determinism is unaffected: a retired
/// event is skipped exactly where it would have fired, so the relative
/// order of surviving events never changes.
///
/// Strip plane (ROADMAP item 3): a queue normally stands alone and runs
/// serially. Under space-partitioned execution a `StripPlane` owns one
/// *wheel* (a plain EventQueue used as the per-strip calendar) per spatial
/// strip plus a global wheel, and hands out lightweight *handles* — also
/// EventQueues — that forward every schedule/cancel/run call to the wheel
/// of their current home strip. Standalone queues pay for none of this
/// beyond a handful of `plane_ == nullptr` branches on predictable-not-
/// taken paths: with strips off the behaviour (including every assigned
/// EventId) is bit-identical to the pre-plane implementation.
class EventQueue {
 public:
  /// Callables up to this size (and max_align_t alignment) are stored
  /// inline in their slab slot; larger ones fall back to one boxed heap
  /// allocation. Sized for the fattest steady-state capture (the medium's
  /// per-receiver delivery closure) with headroom.
  static constexpr std::size_t kInlineCallbackBytes = 96;

  /// Source-compat alias: std::function still schedules fine (it is simply
  /// stored inline like any other callable).
  using Callback = std::function<void()>;

  EventQueue() = default;
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current simulation time. Starts at the origin. On a plane handle this
  /// is the clock of the handle's home wheel.
  [[nodiscard]] TimePoint now() const { return plane_ == nullptr ? now_ : plane_now_(); }

  /// Schedules `f` at absolute time `when` (must be >= now()).
  template <typename F>
  EventId schedule_at(TimePoint when, F&& f) {
    return schedule_at(when, CohortId{}, std::forward<F>(f));
  }

  /// Schedules `f` after `delay` (must be >= 0).
  template <typename F>
  EventId schedule_in(Duration delay, F&& f) {
    assert(delay >= Duration::zero());
    return schedule_at(now() + delay, CohortId{}, std::forward<F>(f));
  }

  /// Schedules `f` at `when` as a member of `cohort` (from make_cohort).
  template <typename F>
  EventId schedule_at(TimePoint when, CohortId cohort, F&& f) {
    using Fn = std::decay_t<F>;
    EventQueue& q = plane_ == nullptr ? *this : plane_wheel_();
    assert(when >= q.now_ && "cannot schedule into the past");
    if (when < q.now_) when = q.now_;
    const std::uint32_t slot_idx = q.acquire_slot();
    Slot& s = q.slot_at(slot_idx);
    if constexpr (sizeof(Fn) <= kInlineCallbackBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(s.storage)) Fn(std::forward<F>(f));
      s.invoke = [](void* p) { (*static_cast<Fn*>(p))(); };
      s.destroy = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
    } else {
      // Boxed fallback: one heap allocation, still a uniform slot layout.
      ::new (static_cast<void*>(s.storage)) Fn*(new Fn(std::forward<F>(f)));
      s.invoke = [](void* p) { (**static_cast<Fn**>(p))(); };
      s.destroy = [](void* p) { delete *static_cast<Fn**>(p); };
    }
    const EventId id{q.id_base_ + q.next_id_++, slot_idx};
    s.owner.store(id.value, std::memory_order_relaxed);
    s.cohort = cohort.value;
    Cohort& co = q.cohort_ref(cohort.value);
    s.gen = co.gen;
    ++co.pending;
    ++q.live_count_;
    q.insert_rec(when, id.value, slot_idx, handle_id_);
    return id;
  }

  /// Schedules `f` after `delay` as a member of `cohort`.
  template <typename F>
  EventId schedule_in(Duration delay, CohortId cohort, F&& f) {
    assert(delay >= Duration::zero());
    return schedule_at(now() + delay, cohort, std::forward<F>(f));
  }

  /// Creates a new cancellation cohort. Cohorts are a few bytes each and
  /// live as long as the queue (routers churn in the thousands per run, so
  /// recycling them buys nothing). Under a strip plane, cohort creation is
  /// restricted to the serial phase (router construction happens in spawn /
  /// reboot events on the global wheel, never inside a strip window).
  CohortId make_cohort();

  /// Retires every pending event of `cohort` in O(1) (generation bump; the
  /// calendar entries are skipped lazily where they would have fired).
  /// Returns how many events were retired. The cohort stays usable for new
  /// schedules. Note: individual EventIds of retired events flip to
  /// not-pending, but cancel() on them returns false — the cohort already
  /// cancelled them.
  std::size_t cancel_cohort(CohortId cohort);

  /// Cancels a pending event. Cancelling an already-fired or already-
  /// cancelled event is a harmless no-op; returns whether it was pending.
  bool cancel(EventId id);

  /// True if the event has neither fired nor been cancelled.
  [[nodiscard]] bool pending(EventId id) const;

  /// Runs events until the queue is empty or `until` is reached. Time
  /// advances to `until` even if the queue drains earlier. Events scheduled
  /// exactly at `until` do fire. On the global plane handle this drives the
  /// whole strip executor (windowed parallel run); see sim/strip_executor.
  void run_until(TimePoint until);

  /// Runs a single event if one is pending; returns false when drained.
  bool step();

  /// Number of events that are scheduled and not cancelled (summed across
  /// every wheel when the queue is a plane handle).
  [[nodiscard]] std::size_t pending_count() const {
    return plane_ == nullptr ? live_count_ : plane_pending_();
  }

  /// Total number of callbacks executed so far (for stats/tests; summed
  /// across every wheel when the queue is a plane handle).
  [[nodiscard]] std::uint64_t fired_count() const {
    return plane_ == nullptr ? fired_ : plane_fired_();
  }

  /// Per-run circuit breaker (the parallel harness's watchdog): run_until
  /// stops early once `max_events` further callbacks have fired or
  /// `wall_seconds` of real time have elapsed. Zero disables either bound.
  /// The event-count breaker is deterministic; the wall-clock one (checked
  /// every 4096 events) is best-effort protection against a hung run and is
  /// inherently host-dependent — opt-in only. Calling this resets
  /// budget_exceeded(). Under a strip plane the budget is kept plane-wide:
  /// each wheel counts its own fires and the executor aggregates them at
  /// every window boundary, so the events-vs-wall trip cause cannot be
  /// misattributed by one strip racing ahead of the shared counter.
  void set_run_budget(std::uint64_t max_events, double wall_seconds);

  /// True when the last run_until stopped on the budget rather than on
  /// `until` (the run is reported as timed out by the scenario harness).
  [[nodiscard]] bool budget_exceeded() const {
    return plane_ == nullptr ? budget_exceeded_ : plane_budget_exceeded_();
  }

  /// Which bound tripped when budget_exceeded() is true; kNone otherwise.
  /// Reset by set_run_budget together with budget_exceeded().
  [[nodiscard]] BudgetTrip budget_trip() const {
    return plane_ == nullptr ? budget_trip_ : plane_budget_trip_();
  }

  /// The strip plane this queue belongs to (wheel or handle), or null for
  /// an ordinary standalone queue.
  [[nodiscard]] StripPlane* plane() const { return plane_; }

  /// Home strip of a plane handle (0 = the global wheel; wheels report
  /// their own index; standalone queues report 0).
  [[nodiscard]] std::uint32_t strip() const { return strip_; }

 private:
  friend class StripPlane;

  // --- Callback slab ----------------------------------------------------
  // Fixed-size slots in stable chunks; a free list recycles them, so the
  // steady state of a run performs no heap allocation per schedule. A
  // slot's `owner` is the holder's EventId value while the slot contains a
  // live callable and 0 otherwise — that one field resolves "already
  // fired", "already cancelled" and "slot reused by a newer event" at once.
  //
  // Under a strip plane every wheel owns its own slab, and slot indices are
  // region-tagged with the wheel index in the top bits: a record migrated to
  // another wheel (vehicle crossed a strip boundary) keeps referring to its
  // origin slab, and freeing such a slot goes through the origin wheel's
  // mutex-guarded remote free list. Standalone queues always use region 0
  // and never take either branch.
  struct Slot {
    // Atomic because of exactly one cross-thread probe: a wheel holding a
    // *dead* migrated record may rec_dead()-check a foreign slot while the
    // origin wheel (which already got the slot back through the mutex-
    // synchronized remote free list) reuses it. Owner ids are unique per
    // wheel and never reused, so any relaxed-visible value other than the
    // record's own id means "dead" — every live-slot access is still
    // single-writer through the window barriers. Relaxed loads/stores
    // compile to the plain moves the serial build always had.
    std::atomic<std::uint64_t> owner{0};
    void (*invoke)(void*){nullptr};
    void (*destroy)(void*){nullptr};
    std::uint32_t cohort{0};
    std::uint32_t gen{0};
    alignas(alignof(std::max_align_t)) unsigned char storage[kInlineCallbackBytes];
  };
  static constexpr std::uint32_t kChunkSlotsLog2 = 10;  // 1024 slots / chunk
  static constexpr std::uint32_t kChunkSlots = 1U << kChunkSlotsLog2;
  static constexpr std::uint32_t kRegionShift = 24;  // 16M slots per wheel
  static constexpr std::uint32_t kRegionLocalMask = (1U << kRegionShift) - 1U;
  // Reserved capacity of a wheel's chunk-pointer table. Covering the whole
  // region up front means the vector data pointer never moves, so records
  // migrated across wheels can dereference a foreign slab without racing a
  // concurrent chunk append (the elements they read were published by an
  // earlier window barrier).
  static constexpr std::size_t kWheelChunkCapacity =
      std::size_t{1} << (kRegionShift - kChunkSlotsLog2);

  [[nodiscard]] Slot& slot_local_(std::uint32_t local) {
    return chunks_[local >> kChunkSlotsLog2][local & (kChunkSlots - 1U)];
  }
  [[nodiscard]] const Slot& slot_local_(std::uint32_t local) const {
    return chunks_[local >> kChunkSlotsLog2][local & (kChunkSlots - 1U)];
  }
  [[nodiscard]] Slot& slot_at(std::uint32_t idx) {
    if (plane_ != nullptr && (idx >> kRegionShift) != strip_) return plane_slot_(idx);
    return slot_local_(idx & kRegionLocalMask);
  }
  [[nodiscard]] const Slot& slot_at(std::uint32_t idx) const {
    if (plane_ != nullptr && (idx >> kRegionShift) != strip_) return plane_slot_(idx);
    return slot_local_(idx & kRegionLocalMask);
  }
  [[nodiscard]] bool slot_index_valid_(std::uint32_t idx) const;
  [[nodiscard]] std::uint32_t acquire_slot();
  /// Returns a slot to its owning region's free list (directly for our own
  /// region, via the owning wheel's remote free list otherwise).
  void release_slot_(std::uint32_t idx);
  void drain_remote_free_();
  void push_remote_free_(std::uint32_t idx);

  // --- Calendar queue ---------------------------------------------------
  // Power-of-two ring of buckets, each a min-heap (std::push_heap/pop_heap
  // over a contiguous vector) ordered by (when, id). Bucket width is fixed
  // at 2^19 ns ≈ 0.52 ms — the scale of airtime/contention timers — and
  // the bucket count adapts to the pending population, which also widens
  // the "year" (bucket_count × width) that one peek scan covers.
  struct Rec {
    TimePoint when;
    std::uint64_t id;
    std::uint32_t slot;
    std::uint32_t handle;  ///< scheduling plane handle (0 standalone/global);
                           ///< lets strip migration sweep one handle's records
  };
  static constexpr std::uint32_t kBucketWidthLog2 = 19;
  static constexpr std::size_t kMinBuckets = 256;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 16U;

  // Heap comparator: treating "fires later" as less puts the earliest
  // record at the front of each bucket's heap.
  struct RecAfter {
    bool operator()(const Rec& a, const Rec& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;  // FIFO among equal timestamps
    }
  };
  [[nodiscard]] static std::uint64_t tick_of(TimePoint t) {
    return static_cast<std::uint64_t>(t.count()) >> kBucketWidthLog2;
  }

  void insert_rec(TimePoint when, std::uint64_t id, std::uint32_t slot,
                  std::uint32_t handle);
  /// Earliest live record, skipping (and collecting) retired ones; null
  /// when drained. The result is cached until the queue changes shape.
  [[nodiscard]] const Rec* peek();
  /// Removes the record returned by the last peek().
  void pop_front();
  /// Pops retired records off the top of one bucket heap.
  void cleanup_top(std::vector<Rec>& bucket);
  [[nodiscard]] bool rec_dead(const Rec& r) const;
  /// Releases the slot of a retired record (destroying the callable) if the
  /// cohort retirement left it uncollected.
  void collect_dead(const Rec& r);
  void rebuild_buckets(std::size_t new_count);

  [[nodiscard]] BudgetTrip budget_tripped();

  struct Cohort {
    std::uint32_t gen{0};
    std::uint32_t pending{0};
  };

  [[nodiscard]] Cohort& cohort_ref(std::uint32_t v) {
    if (plane_ == nullptr || v == 0) {
      assert(v < cohorts_.size());
      return cohorts_[v];
    }
    return plane_cohort_(v);
  }
  [[nodiscard]] const Cohort& cohort_ref(std::uint32_t v) const {
    if (plane_ == nullptr || v == 0) {
      assert(v < cohorts_.size());
      return cohorts_[v];
    }
    return plane_cohort_(v);
  }

  // --- Strip-plane plumbing (inert for standalone queues) ---------------
  // Out-of-line so this header does not need strip_executor.hpp.
  void init_wheel_(StripPlane* plane, std::uint32_t strip);
  void init_handle_(StripPlane* plane, std::uint32_t strip, std::uint32_t handle_id);
  [[nodiscard]] EventQueue& plane_wheel_();
  [[nodiscard]] const EventQueue& plane_wheel_() const;
  [[nodiscard]] Slot& plane_slot_(std::uint32_t idx);
  [[nodiscard]] const Slot& plane_slot_(std::uint32_t idx) const;
  [[nodiscard]] bool plane_slot_valid_(std::uint32_t idx) const;
  [[nodiscard]] Cohort& plane_cohort_(std::uint32_t v);
  [[nodiscard]] const Cohort& plane_cohort_(std::uint32_t v) const;
  [[nodiscard]] TimePoint plane_now_() const;
  [[nodiscard]] std::uint64_t plane_fired_() const;
  [[nodiscard]] std::size_t plane_pending_() const;
  [[nodiscard]] bool plane_budget_exceeded_() const;
  [[nodiscard]] BudgetTrip plane_budget_trip_() const;
  CohortId plane_make_cohort_();
  void plane_remote_release_(std::uint32_t idx);
  void plane_run_until_(TimePoint until);
  void plane_set_budget_(std::uint64_t max_events, double wall_seconds);

  /// Wheel-side entry for the executor's mailbox drain: schedules an
  /// already-type-erased callback tagged with the destination handle.
  EventId schedule_posted_(TimePoint when, std::uint32_t handle_tag, Callback fn);
  /// Runs every event with when <= `bound_incl` (stopping after `max_fire`
  /// events or when `abort` is raised), then advances the clock to the
  /// bound. Returns how many events fired.
  std::uint64_t run_window_(TimePoint bound_incl, std::uint64_t max_fire,
                            const std::atomic<bool>* abort);
  [[nodiscard]] bool next_when_(TimePoint& out);
  void advance_to_(TimePoint t) {
    if (now_ < t) now_ = t;
  }

  TimePoint now_{};
  std::uint64_t budget_events_end_{0};  ///< fired_ value at which to stop (0 = off)
  bool has_wall_deadline_{false};
  bool budget_exceeded_{false};
  BudgetTrip budget_trip_{BudgetTrip::kNone};
  std::chrono::steady_clock::time_point wall_deadline_{};
  std::uint64_t next_id_{1};
  std::uint64_t fired_{0};
  std::size_t live_count_{0};

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::vector<std::uint32_t> free_slots_;
  // Relaxed atomic: single-writer (the owning wheel), but cancel/pending on
  // a migrated record validates a foreign region's high-water mark.
  std::atomic<std::uint32_t> slot_high_water_{0};

  std::vector<Cohort> cohorts_{Cohort{}};  // [0] = default, never retired

  std::vector<std::vector<Rec>> buckets_ = make_initial_buckets();
  std::size_t bucket_mask_{kMinBuckets - 1};
  std::size_t recs_{0};  ///< total calendar entries, live + retired

  bool cache_valid_{false};
  Rec cache_{};
  std::size_t cache_bucket_{0};

  StripPlane* plane_{nullptr};
  std::uint32_t strip_{0};      ///< wheels: own index; handles: current home
  std::uint32_t handle_id_{0};  ///< handles: plane registry index (0 = global)
  bool is_wheel_{false};
  std::uint32_t region_base_{0};  ///< wheels: strip_ << kRegionShift
  std::uint64_t id_base_{0};      ///< wheels: strip_ << 56 keeps ids unique plane-wide

  std::mutex remote_mutex_;
  std::vector<std::uint32_t> remote_free_;  ///< slots freed by other wheels

  static std::vector<std::vector<Rec>> make_initial_buckets() {
    return std::vector<std::vector<Rec>>(kMinBuckets);
  }
};

}  // namespace vgr::sim

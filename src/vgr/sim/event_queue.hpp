#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "vgr/sim/time.hpp"

namespace vgr::sim {

/// Handle for a scheduled event; used to cancel timers (e.g. a CBF
/// contention timer that is stopped when a duplicate packet arrives).
struct EventId {
  std::uint64_t value{0};
  friend bool operator==(EventId, EventId) = default;
};

/// Discrete-event scheduler.
///
/// Events at equal timestamps fire in scheduling order (FIFO), which keeps
/// runs deterministic. Callbacks may schedule or cancel further events,
/// including at the current instant.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time. Starts at the origin.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `cb` at absolute time `when` (must be >= now()).
  EventId schedule_at(TimePoint when, Callback cb);

  /// Schedules `cb` after `delay` (must be >= 0).
  EventId schedule_in(Duration delay, Callback cb);

  /// Cancels a pending event. Cancelling an already-fired or already-
  /// cancelled event is a harmless no-op; returns whether it was pending.
  bool cancel(EventId id);

  /// True if the event has neither fired nor been cancelled.
  [[nodiscard]] bool pending(EventId id) const;

  /// Runs events until the queue is empty or `until` is reached. Time
  /// advances to `until` even if the queue drains earlier. Events scheduled
  /// exactly at `until` do fire.
  void run_until(TimePoint until);

  /// Runs a single event if one is pending; returns false when drained.
  bool step();

  /// Number of events that are scheduled and not cancelled.
  [[nodiscard]] std::size_t pending_count() const { return heap_.size() - cancelled_.size(); }

  /// Total number of callbacks executed so far (for stats/tests).
  [[nodiscard]] std::uint64_t fired_count() const { return fired_; }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;  // tiebreaker: FIFO among equal timestamps
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Drops cancelled entries sitting on top of the heap.
  void purge_cancelled_top();

  TimePoint now_{};
  std::uint64_t next_seq_{0};
  std::uint64_t next_id_{1};
  std::uint64_t fired_{0};
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::unordered_set<std::uint64_t> live_;
};

}  // namespace vgr::sim

#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "vgr/sim/event_queue.hpp"
#include "vgr/sim/time.hpp"

namespace vgr::sim {

/// Space-partitioned conservative parallel executor (ROADMAP item 3).
///
/// The world is decomposed into `strips` spatial strips along the road
/// axis; each strip owns a *wheel* (a plain EventQueue used as that
/// strip's calendar), and a global wheel (index 0) holds everything that
/// is not strip-local: traffic ticks, workload generators, churn,
/// pseudonym rotation. Model code never touches wheels directly — it
/// schedules through *handles* (EventQueues returned by global() /
/// make_handle()) that forward to the wheel of their current home strip.
///
/// Execution alternates between a serial phase and parallel windows:
///
///   loop:
///     drain cross-strip mailboxes, apply queued re-homes, run serial
///       hooks (spatial index rebuild), check the run budget
///     G = next global-wheel event, E = min next strip-wheel event
///     if G <= E: run that one global event serially, repeat
///     else:      run every strip wheel in parallel up to
///                bound = min(E + lookahead - 1ns, G - 1ns, horizon)
///
/// `lookahead` is the minimum cross-strip interaction latency — one
/// frame's airtime plus propagation, i.e. the earliest a transmission
/// started in this window can take effect on another strip. Any event a
/// strip executes inside the window therefore schedules cross-strip work
/// strictly beyond the bound, which is the classic conservative-PDES
/// safety condition; `late_posts()` counts (and clamps) violations so
/// tests can assert the configured lookahead really is conservative.
///
/// Cross-strip work travels through per-source-wheel mailboxes that are
/// written lock-free by their owning worker and merged by the coordinator
/// in (timestamp, source strip, post sequence) total order, so the
/// schedule — and with it the entire run — is bit-identical at any worker
/// count: threads are purely a performance knob, while the strip count is
/// a model parameter (like vehicle spacing) fixed independently of them.
class StripPlane {
 public:
  struct Config {
    std::uint32_t strips{2};
    /// Worker threads for the parallel windows; 0 = VGR_THREADS / hardware
    /// concurrency. Clamped to the strip count; 1 runs the windows inline.
    std::size_t threads{0};
    /// Conservative window slack; must not exceed the minimum cross-strip
    /// delivery latency (min frame airtime + propagation delay).
    Duration lookahead{Duration::micros(50)};
  };

  explicit StripPlane(const Config& config);
  ~StripPlane();
  StripPlane(const StripPlane&) = delete;
  StripPlane& operator=(const StripPlane&) = delete;

  [[nodiscard]] std::uint32_t strips() const { return strips_; }
  [[nodiscard]] std::size_t worker_count() const { return workers_target_; }
  [[nodiscard]] Duration lookahead() const { return lookahead_; }

  /// The global handle: pre-run construction, workload generators, churn,
  /// and run_until/set_run_budget all go through it.
  [[nodiscard]] EventQueue& global() { return handles_.front(); }

  /// Creates a scheduling handle homed at `strip` (1-based). Serial phase
  /// only (handles are made at router construction / attacker attach).
  EventQueue& make_handle(std::uint32_t strip);

  /// Queues a re-home of `handle` to `strip`; its pending events migrate
  /// wholesale (ids preserved) at the next window boundary. Serial phase
  /// only (mobility ticks run on the global wheel).
  void rehome(EventQueue& handle, std::uint32_t strip);

  /// Cross-strip message: runs `fn` on `dst`'s home wheel at `when`.
  /// Callable from workers during a window (each source wheel owns its
  /// mailbox) and from the coordinator in the serial phase (mailbox 0).
  void post(const EventQueue& dst, TimePoint when, EventQueue::Callback fn);

  /// Registers a hook run by the coordinator at every serial point (loop
  /// top): spatial-index rebuilds and similar window-coherent maintenance.
  void add_serial_hook(std::function<void()> hook);

  /// Strip whose wheel the calling thread is currently executing; 0 in the
  /// serial phase. The medium compares this against a receiver's home
  /// strip to pick direct scheduling vs a mailbox post.
  [[nodiscard]] static std::uint32_t current_strip();

  /// True outside parallel windows (coordinator context).
  [[nodiscard]] bool in_serial_phase() const { return serial_phase_; }

  /// Posts that arrived below their destination wheel's clock and were
  /// clamped to it. Always 0 when `lookahead` is truly conservative; the
  /// determinism tests assert that.
  [[nodiscard]] std::uint64_t late_posts() const { return late_posts_; }

  /// Number of handle migrations actually applied (distinct handles per
  /// settlement batch). Tests use this to prove boundary crossings really
  /// exercised the migration path.
  [[nodiscard]] std::uint64_t rehomes_applied() const { return rehomes_applied_; }

  /// Drives the windowed executor; normally reached via global().run_until.
  void run_until(TimePoint until);

  /// Plane-wide run budget (see EventQueue::set_run_budget): every wheel
  /// counts its own fires, the executor aggregates at window boundaries,
  /// and the trip cause is attributed events-before-wall deterministically.
  void set_run_budget(std::uint64_t max_events, double wall_seconds);
  [[nodiscard]] bool budget_exceeded() const { return budget_exceeded_; }
  [[nodiscard]] BudgetTrip budget_trip() const { return budget_trip_; }

  /// Callbacks fired / events pending, summed over all wheels.
  [[nodiscard]] std::uint64_t fired_total() const;
  [[nodiscard]] std::size_t pending_total() const;

 private:
  friend class EventQueue;

  struct Posted {
    TimePoint when;
    std::uint32_t src;
    std::uint32_t dst_handle;
    EventQueue::Callback fn;
  };

  [[nodiscard]] EventQueue& wheel_(std::uint32_t i) { return *wheels_[i]; }
  [[nodiscard]] const EventQueue& wheel_(std::uint32_t i) const { return *wheels_[i]; }
  [[nodiscard]] EventQueue::Cohort& shared_cohort_(std::uint32_t v) {
    assert(v >= 1 && v < cohort_count_);
    return shared_cohorts_[v - 1];
  }
  [[nodiscard]] const EventQueue::Cohort& shared_cohort_(std::uint32_t v) const {
    assert(v >= 1 && v < cohort_count_);
    return shared_cohorts_[v - 1];
  }
  CohortId make_shared_cohort_();

  void drain_posts_();
  void apply_rehomes_();
  void run_serial_hooks_();
  void run_parallel_window_(TimePoint bound_incl, std::uint64_t cap);
  void run_worker_share_(std::size_t worker);
  void worker_loop_(std::size_t worker);
  void ensure_workers_();
  [[nodiscard]] std::uint64_t fired_since_budget_() const;
  [[nodiscard]] bool wall_expired_() const;

  std::uint32_t strips_;
  Duration lookahead_;
  std::size_t workers_target_{1};

  std::vector<std::unique_ptr<EventQueue>> wheels_;  ///< [0] global, [1..K] strips
  std::deque<EventQueue> handles_;                   ///< [0] = global handle
  // Cohorts live plane-wide (a handle's cohort follows it across strips);
  // created only in the serial phase, each mutated only by the thread
  // running its owner's wheel (window barriers order the hand-offs).
  std::vector<EventQueue::Cohort> shared_cohorts_;
  std::uint32_t cohort_count_{1};  ///< next CohortId value to hand out

  std::vector<std::vector<Posted>> outbox_;  ///< indexed by source wheel
  std::vector<Posted> drain_scratch_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pending_rehomes_;
  std::vector<std::function<void()>> serial_hooks_;
  std::uint64_t late_posts_{0};
  std::uint64_t rehomes_applied_{0};

  bool serial_phase_{true};

  // Plane-level budget (aggregated across wheels at window boundaries).
  std::uint64_t budget_max_events_{0};
  std::uint64_t budget_base_fired_{0};
  bool has_wall_deadline_{false};
  bool budget_exceeded_{false};
  BudgetTrip budget_trip_{BudgetTrip::kNone};
  std::chrono::steady_clock::time_point wall_deadline_{};

  // Window barrier: coordinator publishes (bound, cap) and bumps epoch_;
  // workers run their static round-robin share of strip wheels and count
  // into done_. Spin-then-yield keeps oversubscribed (1-core CI) hosts
  // making progress.
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::size_t> done_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> abort_window_{false};
  TimePoint window_bound_{};
  std::uint64_t window_cap_{0};
};

}  // namespace vgr::sim

#pragma once

#include <cstdio>
#include <string>
#include <string_view>

#include "vgr/sim/time.hpp"

namespace vgr::sim {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kOff };

/// Minimal stderr trace logger for debugging simulation runs.
///
/// Disabled (kOff) by default so benches and tests run clean; flip the level
/// (or set VGR_LOG=trace|debug|info|warn in the environment) to watch packet
/// flow. Not thread-safe; the simulator is single-threaded by design.
class Log {
 public:
  static LogLevel level();
  static void set_level(LogLevel lvl);

  /// Logs "t=<time> [tag] message" when `lvl` is enabled.
  static void write(LogLevel lvl, TimePoint t, std::string_view tag, std::string_view message);

  static bool enabled(LogLevel lvl) { return lvl >= level() && level() != LogLevel::kOff; }
};

}  // namespace vgr::sim

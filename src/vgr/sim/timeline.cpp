#include "vgr/sim/timeline.hpp"

#include <cassert>

namespace vgr::sim {

BinnedRate::BinnedRate(Duration bin_width, Duration horizon) : bin_width_{bin_width} {
  assert(bin_width.count() > 0);
  const auto bins =
      static_cast<std::size_t>((horizon.count() + bin_width.count() - 1) / bin_width.count());
  hits_.assign(bins, 0.0);
  trials_.assign(bins, 0.0);
}

void BinnedRate::record(TimePoint t, double hits, double trials) {
  auto idx = static_cast<std::size_t>(t.count() / bin_width_.count());
  if (idx >= hits_.size()) idx = hits_.size() - 1;
  hits_[idx] += hits;
  trials_[idx] += trials;
}

double BinnedRate::rate(std::size_t i, double fallback) const {
  assert(i < hits_.size());
  if (trials_[i] <= 0.0) return fallback;
  return hits_[i] / trials_[i];
}

double BinnedRate::overall() const {
  double h = 0.0, n = 0.0;
  for (std::size_t i = 0; i < hits_.size(); ++i) {
    h += hits_[i];
    n += trials_[i];
  }
  return n > 0.0 ? h / n : 0.0;
}

double BinnedRate::cumulative(std::size_t i) const {
  assert(i < hits_.size());
  double h = 0.0, n = 0.0;
  for (std::size_t k = 0; k <= i; ++k) {
    h += hits_[k];
    n += trials_[k];
  }
  return n > 0.0 ? h / n : 0.0;
}

void BinnedRate::merge(const BinnedRate& other) {
  assert(other.hits_.size() == hits_.size());
  assert(other.bin_width_ == bin_width_);
  for (std::size_t i = 0; i < hits_.size(); ++i) {
    hits_[i] += other.hits_[i];
    trials_[i] += other.trials_[i];
  }
}

double BinnedRate::average_drop(const BinnedRate& baseline, const BinnedRate& attacked) {
  assert(baseline.bin_count() == attacked.bin_count());
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < baseline.bin_count(); ++i) {
    if (!baseline.has_data(i)) continue;
    const double base = baseline.rate(i);
    if (base <= 0.0) continue;
    const double atk = attacked.has_data(i) ? attacked.rate(i) : 0.0;
    double drop = (base - atk) / base;
    if (drop < 0.0) drop = 0.0;  // attacked doing better than baseline in a bin
    sum += drop;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace vgr::sim

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vgr::sim {

/// Small work-stealing thread pool for run-level parallelism.
///
/// Each worker owns a deque: it pushes/pops its own tasks at the back (LIFO,
/// cache-friendly) and steals from other workers' fronts (FIFO, coarse
/// tasks first). External submitters round-robin across the deques. The
/// simulator itself stays single-threaded — the unit of parallelism is one
/// whole scenario run, which owns all of its state — so the pool needs no
/// shared-state discipline from its tasks beyond the usual "don't touch
/// globals".
///
/// `parallel_for` is the only entry point the experiment harness uses: it
/// blocks until every index has been processed, and the caller thread works
/// too, so a 1-thread pool degrades to a plain serial loop.
class ThreadPool {
 public:
  /// Creates `threads` workers. 0 picks `default_thread_count()`.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count (>= 1).
  [[nodiscard]] std::size_t thread_count() const { return queues_.size(); }

  /// Enqueues one task.
  void submit(std::function<void()> task);

  /// Runs `fn(i)` for every i in [0, n), distributing across the workers
  /// and the calling thread; returns when all n calls have completed.
  /// Exceptions escaping `fn` terminate (tasks must be noexcept in spirit).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// VGR_THREADS from the environment (validated), else the hardware
  /// concurrency, else 1.
  static std::size_t default_thread_count();

  /// Physical hardware concurrency, ignoring VGR_THREADS; never 0 (an
  /// unknown count reports as 1). Benches use this to flag ladder rows
  /// that oversubscribe the host.
  static std::size_t hardware_threads();

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t self);
  /// Pops a task for worker `self`: own queue back first, then steals from
  /// the front of the others. Returns an empty function when none found.
  std::function<void()> take(std::size_t self);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  std::size_t next_queue_{0};
  bool stop_{false};
};

}  // namespace vgr::sim

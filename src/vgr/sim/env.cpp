#include "vgr/sim/env.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vgr::sim {
namespace {

/// True when `s` is only whitespace from `s` to the end (strtol/strtod stop
/// at the first non-numeric char; trailing blanks are harmless).
bool only_whitespace(const char* s) {
  for (; *s != '\0'; ++s) {
    if (std::isspace(static_cast<unsigned char>(*s)) == 0) return false;
  }
  return true;
}

void warn(const char* name, const char* value) {
  std::fprintf(stderr, "vgr: ignoring %s=\"%s\" (not a number)\n", name, value);
}

}  // namespace

std::optional<long long> env_int(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(value, &end, 10);
  if (end == value || errno == ERANGE || !only_whitespace(end)) {
    warn(name, value);
    return std::nullopt;
  }
  return v;
}

std::optional<double> env_double(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(value, &end);
  if (end == value || errno == ERANGE || !only_whitespace(end)) {
    warn(name, value);
    return std::nullopt;
  }
  return v;
}

}  // namespace vgr::sim

#pragma once

#include <array>
#include <cstdint>

namespace vgr::sim {

/// Deterministic pseudo-random source (xoshiro256** seeded via SplitMix64).
///
/// The standard-library distributions are implementation-defined, so we ship
/// our own uniform/normal/exponential draws to keep simulation runs
/// bit-reproducible across compilers — a prerequisite for the paired A/B
/// (attacker-free vs attacked) experiment design.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Derive an independent child stream; used to give each node its own
  /// stream so adding a node never perturbs the draws of existing ones.
  Rng fork();

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace vgr::sim

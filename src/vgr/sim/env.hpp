#pragma once

#include <optional>

namespace vgr::sim {

/// Validated environment-variable parsing for the VGR_* knobs.
///
/// Unlike bare strtol/strtod, these reject any token that is not entirely a
/// number ("abc", "5x", "") instead of silently reading a prefix or falling
/// back to 0, and they warn on stderr naming the variable so a typo in a
/// 100-run experiment invocation is caught before the results are wasted.

/// Parses `name` as a whole-token integer. Unset -> nullopt (silent);
/// malformed -> nullopt plus a stderr warning.
std::optional<long long> env_int(const char* name);

/// Parses `name` as a whole-token double, same contract as env_int.
std::optional<double> env_double(const char* name);

}  // namespace vgr::sim

#include "vgr/sim/log.hpp"

#include <cstdlib>
#include <cstring>

namespace vgr::sim {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("VGR_LOG");
  if (env == nullptr) return LogLevel::kOff;
  if (std::strcmp(env, "trace") == 0) return LogLevel::kTrace;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  return LogLevel::kOff;
}

LogLevel& level_ref() {
  static LogLevel lvl = initial_level();
  return lvl;
}

const char* name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel Log::level() { return level_ref(); }

void Log::set_level(LogLevel lvl) { level_ref() = lvl; }

void Log::write(LogLevel lvl, TimePoint t, std::string_view tag, std::string_view message) {
  if (!enabled(lvl)) return;
  std::fprintf(stderr, "%-5s t=%10.6f [%.*s] %.*s\n", name(lvl), t.to_seconds(),
               static_cast<int>(tag.size()), tag.data(), static_cast<int>(message.size()),
               message.data());
}

}  // namespace vgr::sim

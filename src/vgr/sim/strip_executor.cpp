#include "vgr/sim/strip_executor.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "vgr/sim/thread_pool.hpp"

namespace vgr::sim {

namespace {

/// Strip whose wheel this thread is currently running (0 = serial phase /
/// coordinator). Thread-local rather than plane state: the harness runs
/// several scenarios (each with its own plane and workers) concurrently.
thread_local std::uint32_t tls_current_strip = 0;

/// Busy-wait briefly, then yield: window bodies are tens of microseconds,
/// so the barrier usually resolves within the spin budget, but on an
/// oversubscribed host (1-core CI) the yield lets the peer run at all.
void backoff(std::size_t& spins) {
  if (++spins > 64) std::this_thread::yield();
}

}  // namespace

StripPlane::StripPlane(const Config& config)
    : strips_{config.strips == 0 ? 1U : config.strips},
      lookahead_{config.lookahead.count() > 0 ? config.lookahead
                                              : Duration::micros(50)} {
  assert(strips_ < 255 && "strip index must fit the slot region / id tags");
  const std::size_t requested =
      config.threads == 0 ? ThreadPool::default_thread_count() : config.threads;
  workers_target_ = std::max<std::size_t>(1, std::min<std::size_t>(requested, strips_));
  wheels_.reserve(strips_ + 1U);
  for (std::uint32_t s = 0; s <= strips_; ++s) {
    wheels_.push_back(std::make_unique<EventQueue>());
    wheels_.back()->init_wheel_(this, s);
  }
  outbox_.resize(strips_ + 1U);
  handles_.emplace_back();
  handles_.back().init_handle_(this, 0, 0);
}

StripPlane::~StripPlane() {
  stop_.store(true, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  for (auto& t : threads_) t.join();
}

EventQueue& StripPlane::make_handle(std::uint32_t strip) {
  assert(serial_phase_ && "handles are created between windows only");
  assert(strip >= 1 && strip <= strips_);
  handles_.emplace_back();
  handles_.back().init_handle_(this, strip,
                               static_cast<std::uint32_t>(handles_.size() - 1));
  return handles_.back();
}

CohortId StripPlane::make_shared_cohort_() {
  assert(serial_phase_ && "cohorts are created between windows only");
  shared_cohorts_.push_back(EventQueue::Cohort{});
  return CohortId{cohort_count_++};
}

void StripPlane::rehome(EventQueue& handle, std::uint32_t strip) {
  assert(serial_phase_ && "re-homes are queued from global (serial) events");
  assert(handle.plane_ == this && !handle.is_wheel_ && handle.handle_id_ != 0);
  assert(strip >= 1 && strip <= strips_);
  if (handle.strip_ == strip) return;
  pending_rehomes_.emplace_back(handle.handle_id_, strip);
}

void StripPlane::post(const EventQueue& dst, TimePoint when,
                      EventQueue::Callback fn) {
  assert(dst.plane_ == this && !dst.is_wheel_);
  const std::uint32_t src = tls_current_strip;
  outbox_[src].push_back(Posted{when, src, dst.handle_id_, std::move(fn)});
}

void StripPlane::add_serial_hook(std::function<void()> hook) {
  serial_hooks_.push_back(std::move(hook));
}

std::uint32_t StripPlane::current_strip() { return tls_current_strip; }

std::uint64_t StripPlane::fired_total() const {
  std::uint64_t total = 0;
  for (const auto& w : wheels_) total += w->fired_;
  return total;
}

std::size_t StripPlane::pending_total() const {
  std::size_t total = 0;
  for (const auto& w : wheels_) total += w->live_count_;
  return total;
}

std::uint64_t StripPlane::fired_since_budget_() const {
  return fired_total() - budget_base_fired_;
}

bool StripPlane::wall_expired_() const {
  return std::chrono::steady_clock::now() >= wall_deadline_;
}

void StripPlane::set_run_budget(std::uint64_t max_events, double wall_seconds) {
  budget_exceeded_ = false;
  budget_trip_ = BudgetTrip::kNone;
  budget_max_events_ = max_events;
  budget_base_fired_ = fired_total();
  has_wall_deadline_ = wall_seconds > 0.0;
  if (has_wall_deadline_) {
    wall_deadline_ = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(wall_seconds));
  }
}

void StripPlane::drain_posts_() {
  bool any = false;
  for (const auto& box : outbox_) {
    if (!box.empty()) {
      any = true;
      break;
    }
  }
  if (!any) return;
  drain_scratch_.clear();
  for (auto& box : outbox_) {
    for (Posted& p : box) drain_scratch_.push_back(std::move(p));
    box.clear();
  }
  // (timestamp, source strip, post sequence) total order: stable_sort keeps
  // each source's in-window emission order for equal keys, so the merged
  // schedule is independent of worker count and interleaving.
  std::stable_sort(drain_scratch_.begin(), drain_scratch_.end(),
                   [](const Posted& a, const Posted& b) {
                     if (a.when != b.when) return a.when < b.when;
                     return a.src < b.src;
                   });
  for (Posted& p : drain_scratch_) {
    EventQueue& h = handles_[p.dst_handle];
    EventQueue& w = wheel_(h.strip_);
    TimePoint when = p.when;
    if (when < w.now_) {
      // Lookahead violation: count it (tests assert none) but stay
      // deterministic — the clamp depends only on merged order.
      ++late_posts_;
      when = w.now_;
    }
    w.schedule_posted_(when, p.dst_handle, std::move(p.fn));
  }
  drain_scratch_.clear();
}

void StripPlane::apply_rehomes_() {
  if (pending_rehomes_.empty()) return;
  std::unordered_map<std::uint32_t, std::uint32_t> moves;  // last target wins
  for (const auto& [h, s] : pending_rehomes_) moves[h] = s;
  pending_rehomes_.clear();
  rehomes_applied_ += moves.size();
  std::vector<char> affected(strips_ + 1U, 0);
  // vgr-lint: ordered-ok (flag writes commute across iteration orders)
  for (const auto& [h, s] : moves) affected[handles_[h].strip_] = 1;
  for (std::uint32_t w = 0; w <= strips_; ++w) {
    if (affected[w] == 0) continue;
    EventQueue& src = wheel_(w);
    for (auto& bucket : src.buckets_) {
      bool touched = false;
      for (std::size_t i = 0; i < bucket.size();) {
        const EventQueue::Rec r = bucket[i];
        const auto it = moves.find(r.handle);
        if (it == moves.end() || it->second == w) {
          ++i;
          continue;
        }
        bucket[i] = bucket.back();
        bucket.pop_back();
        --src.recs_;
        touched = true;
        if (src.rec_dead(r)) {
          src.collect_dead(r);
        } else {
          // Records move verbatim — ids (and with them FIFO tie-breaks)
          // are preserved, so migration never perturbs event order.
          EventQueue& dst = wheel_(it->second);
          dst.insert_rec(r.when, r.id, r.slot, r.handle);
          --src.live_count_;
          ++dst.live_count_;
        }
      }
      if (touched) std::make_heap(bucket.begin(), bucket.end(), EventQueue::RecAfter{});
    }
    src.cache_valid_ = false;
  }
  // vgr-lint: ordered-ok (disjoint per-handle writes commute across orders)
  for (const auto& [h, s] : moves) handles_[h].strip_ = s;
}

void StripPlane::run_serial_hooks_() {
  for (const auto& hook : serial_hooks_) hook();
}

void StripPlane::ensure_workers_() {
  if (workers_target_ <= 1 || !threads_.empty()) return;
  threads_.reserve(workers_target_ - 1);
  for (std::size_t w = 1; w < workers_target_; ++w) {
    threads_.emplace_back([this, w] { worker_loop_(w); });
  }
}

void StripPlane::worker_loop_(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    std::size_t spins = 0;
    while (epoch_.load(std::memory_order_acquire) == seen) {
      if (stop_.load(std::memory_order_relaxed)) return;
      backoff(spins);
    }
    ++seen;
    if (stop_.load(std::memory_order_relaxed)) return;
    run_worker_share_(worker);
    done_.fetch_add(1, std::memory_order_release);
  }
}

void StripPlane::run_worker_share_(std::size_t worker) {
  const std::size_t stride = threads_.size() + 1;  // workers + coordinator
  const std::atomic<bool>* abort = threads_.empty() ? nullptr : &abort_window_;
  for (std::uint32_t s = 1U + static_cast<std::uint32_t>(worker); s <= strips_;
       s += static_cast<std::uint32_t>(stride)) {
    tls_current_strip = s;
    (void)wheel_(s).run_window_(window_bound_, window_cap_, abort);
  }
  tls_current_strip = 0;
}

void StripPlane::run_parallel_window_(TimePoint bound_incl, std::uint64_t cap) {
  window_bound_ = bound_incl;
  window_cap_ = cap;
  serial_phase_ = false;
  if (threads_.empty()) {
    run_worker_share_(0);
    serial_phase_ = true;
    return;
  }
  abort_window_.store(false, std::memory_order_relaxed);
  done_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  run_worker_share_(0);
  std::size_t spins = 0;
  while (done_.load(std::memory_order_acquire) < threads_.size()) {
    if (has_wall_deadline_ && wall_expired_() &&
        !abort_window_.load(std::memory_order_relaxed)) {
      abort_window_.store(true, std::memory_order_relaxed);
    }
    backoff(spins);
  }
  serial_phase_ = true;
}

void StripPlane::run_until(TimePoint until) {
  ensure_workers_();
  for (;;) {
    // Serial point: merge mailboxes, settle migrations, refresh indexes.
    drain_posts_();
    apply_rehomes_();
    run_serial_hooks_();
    if (budget_max_events_ != 0 && fired_since_budget_() >= budget_max_events_) {
      budget_exceeded_ = true;
      budget_trip_ = BudgetTrip::kEvents;  // events before wall, like serial
      break;
    }
    if (has_wall_deadline_ && wall_expired_()) {
      budget_exceeded_ = true;
      budget_trip_ = BudgetTrip::kWall;
      break;
    }
    TimePoint g{};
    const bool has_g = wheel_(0).next_when_(g);
    TimePoint e{};
    bool has_e = false;
    for (std::uint32_t s = 1; s <= strips_; ++s) {
      TimePoint t{};
      if (wheel_(s).next_when_(t)) {
        if (!has_e || t < e) e = t;
        has_e = true;
      }
    }
    if (!has_g && !has_e) break;
    if (has_g && (!has_e || g <= e)) {
      // Global events run one at a time in the serial phase (they mutate
      // shared structure: spawn/exit, churn, workload origination) and take
      // precedence at equal timestamps.
      if (g > until) break;
      (void)wheel_(0).step();
      continue;
    }
    if (e > until) break;
    // Conservative window: nothing scheduled inside it can affect another
    // strip before e + lookahead, and the next global event still runs at
    // its exact serial position (bound stops 1 ns short of it).
    TimePoint bound = e + lookahead_ - Duration::nanos(1);
    if (bound > until) bound = until;
    if (has_g && bound > g - Duration::nanos(1)) bound = g - Duration::nanos(1);
    std::uint64_t cap = std::numeric_limits<std::uint64_t>::max();
    if (budget_max_events_ != 0) {
      // Each wheel gets the whole remaining budget: overshoot is bounded by
      // one window and, crucially, deterministic (no shared counter races).
      cap = budget_max_events_ - fired_since_budget_();
    }
    run_parallel_window_(bound, cap);
  }
  for (auto& w : wheels_) w->advance_to_(until);
}

}  // namespace vgr::sim

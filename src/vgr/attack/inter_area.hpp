#pragma once

#include <unordered_set>

#include "vgr/attack/sniffer.hpp"

namespace vgr::attack {

/// Attack #1 — inter-area interception (paper §III-B).
///
/// The attacker captures every beacon it overhears and immediately
/// rebroadcasts it at its (larger) attack range. Victims within that range
/// accept the replayed — validly signed — position vectors of vehicles that
/// are actually beyond their own radio reach, store them as neighbours, and
/// later hand Greedy-Forwarded packets to an unreachable next hop. With no
/// acknowledgement on inter-area forwarding, the packet silently vanishes.
class InterAreaInterceptor final : public Sniffer {
 public:
  struct Config {
    /// Time to capture, process and re-key a frame before replaying it.
    sim::Duration processing_delay{sim::Duration::micros(500)};
  };

  InterAreaInterceptor(sim::EventQueue& events, phy::Medium& medium, geo::Position position,
                       double attack_range_m);
  InterAreaInterceptor(sim::EventQueue& events, phy::Medium& medium, geo::Position position,
                       double attack_range_m, Config config);
  /// Moving attacker riding on external mobility.
  InterAreaInterceptor(sim::EventQueue& events, phy::Medium& medium,
                       const gn::MobilityProvider& mobility, double attack_range_m,
                       Config config);

  [[nodiscard]] std::uint64_t beacons_replayed() const { return beacons_replayed_; }

 private:
  void on_capture(const phy::Frame& frame) override;

  Config config_;
  /// One replay per (source, beacon timestamp): replaying the same beacon
  /// twice adds nothing and doubles airtime.
  std::unordered_set<std::uint64_t> replayed_;
  std::uint64_t beacons_replayed_{0};
};

}  // namespace vgr::attack

#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "vgr/gn/mobility.hpp"
#include "vgr/phy/medium.hpp"
#include "vgr/sim/event_queue.hpp"

namespace vgr::attack {

/// Passive roadside radio sniffer — the base capability of the paper's
/// outsider attacker (§III-A).
///
/// The sniffer registers on the medium in promiscuous mode, so it overhears
/// every frame within radio range, including unicast forwards. It holds *no*
/// certificate: it can decode the plaintext envelopes (beacons and
/// GeoBroadcast packets are authenticated but not encrypted) and build a map
/// of vehicle positions, but it has no signing capability whatsoever — all
/// it can ever transmit is bytes it previously captured (optionally with the
/// unauthenticated basic header rewritten).
class Sniffer {
 public:
  struct Observation {
    net::LongPositionVector pv{};
    sim::TimePoint heard_at{};
  };

  /// Stationary roadside attacker at `position` (the paper's deployment).
  Sniffer(sim::EventQueue& events, phy::Medium& medium, geo::Position position,
          double attack_range_m);

  /// Moving attacker riding on external mobility (the paper's §III-A notes
  /// the attacks conceptually extend to moving attackers; this constructor
  /// enables that study). `mobility` must outlive the sniffer.
  Sniffer(sim::EventQueue& events, phy::Medium& medium, const gn::MobilityProvider& mobility,
          double attack_range_m);

  virtual ~Sniffer();

  Sniffer(const Sniffer&) = delete;
  Sniffer& operator=(const Sniffer&) = delete;

  [[nodiscard]] geo::Position position() const {
    return external_mobility_ != nullptr ? external_mobility_->position()
                                         : static_mobility_.position();
  }
  [[nodiscard]] double attack_range() const { return medium_.tx_range(radio_); }
  void set_attack_range(double range_m) {
    medium_.set_tx_range(radio_, range_m);
    medium_.set_rx_range(radio_, range_m);
  }

  /// Vehicles observed so far (address -> freshest position vector).
  [[nodiscard]] const std::unordered_map<net::GnAddress, Observation>& observations() const {
    return observations_;
  }

  /// Estimates whether stations `a` and `b` are outside each other's
  /// coverage, assuming vehicles communicate at `vehicle_range_m` (attack
  /// step 2 of §III-B: inferred from the geometry of overheard beacons).
  [[nodiscard]] bool inferred_out_of_coverage(net::GnAddress a, net::GnAddress b,
                                              double vehicle_range_m) const;

  [[nodiscard]] std::uint64_t frames_captured() const { return frames_captured_; }
  [[nodiscard]] std::uint64_t frames_injected() const { return frames_injected_; }

 protected:
  /// Subclasses implement the active part of an attack. Default: pure
  /// passive monitoring.
  virtual void on_capture(const phy::Frame& frame);

  /// Injects a frame at full attack power, or at `range_override_m` when
  /// positive (the targeted low-power replay of the blockage variant).
  void inject(phy::Frame frame, double range_override_m = -1.0);

  sim::EventQueue& events_;

 private:
  void capture(const phy::Frame& frame);
  void attach(double attack_range_m);

  phy::Medium& medium_;
  gn::StaticMobility static_mobility_{geo::Position{}};
  const gn::MobilityProvider* external_mobility_{nullptr};
  phy::RadioId radio_{};
  net::MacAddress own_mac_{};
  std::unordered_map<net::GnAddress, Observation> observations_;
  std::uint64_t frames_captured_{0};
  std::uint64_t frames_injected_{0};
};

}  // namespace vgr::attack

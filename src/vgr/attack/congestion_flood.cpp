#include "vgr/attack/congestion_flood.hpp"

#include <algorithm>

namespace vgr::attack {

CongestionFlooder::CongestionFlooder(sim::EventQueue& events, phy::Medium& medium,
                                     geo::Position position, double attack_range_m,
                                     Config config)
    : Sniffer{events, medium, position, attack_range_m}, config_{config} {
  config_.corpus_size = std::max<std::size_t>(config_.corpus_size, 1);
  if (config_.rate_hz > 0.0) schedule_flood_tick();
}

void CongestionFlooder::on_capture(const phy::Frame& frame) {
  const bool is_beacon = frame.msg->packet().is_beacon();
  auto& corpus = (is_beacon || !config_.prefer_data) ? beacon_corpus_ : data_corpus_;
  auto& write = (is_beacon || !config_.prefer_data) ? beacon_write_ : data_write_;
  if (corpus.size() < config_.corpus_size) {
    corpus.push_back(frame);  // frame copy is refcounted: `msg` is shared
  } else {
    corpus[write] = frame;
    write = (write + 1) % config_.corpus_size;
  }
}

void CongestionFlooder::schedule_flood_tick() {
  // Strictly periodic: the deterministic replay cadence leaves bounded idle
  // gaps between transmissions, which is exactly what the CSMA backoff of
  // honest stations has to hit (see docs/robustness.md).
  events_.schedule_in(sim::Duration::seconds(1.0 / config_.rate_hz), [this] {
    flood_tick();
    schedule_flood_tick();
  });
}

void CongestionFlooder::flood_tick() {
  // Replay from the preferred corpus, round-robin; fall back to beacons
  // until the first data frame has been overheard. With nothing captured
  // yet the attacker stays silent — it has no signing capability, so there
  // is literally nothing it could put on the air.
  const std::vector<phy::Frame>& corpus =
      !data_corpus_.empty() ? data_corpus_ : beacon_corpus_;
  if (corpus.empty()) return;
  replay_cursor_ = (replay_cursor_ + 1) % corpus.size();
  ++frames_flooded_;
  inject(corpus[replay_cursor_]);
}

}  // namespace vgr::attack

#pragma once

#include <optional>

#include "vgr/attack/sniffer.hpp"
#include "vgr/security/secured_message.hpp"

namespace vgr::attack {

/// Baseline: the classic blackhole attack the paper contrasts against
/// (§VI). The attacker advertises a *forged* beacon placing itself right
/// next to the destination so Greedy Forwarding funnels packets to it,
/// which it then drops.
///
/// Against GeoNetworking this only works for an *insider* holding a valid
/// certificate: an outsider's forged beacons fail authentication at every
/// receiver. Construct with an identity to model the insider variant (for
/// comparison benches); default-outsider mode signs with a bogus key and is
/// expected to achieve nothing — which is exactly the paper's point about
/// why the replay-based attacks matter.
class BlackholeAttacker final : public Sniffer {
 public:
  struct Config {
    /// Position advertised in the forged beacons (e.g. the destination).
    geo::Position advertised_position{};
    sim::Duration beacon_interval{sim::Duration::seconds(3.0)};
  };

  BlackholeAttacker(sim::EventQueue& events, phy::Medium& medium, geo::Position position,
                    double attack_range_m, Config config,
                    std::optional<security::EnrolledIdentity> insider_identity = std::nullopt);

  /// Begins the periodic fake-beacon broadcast.
  void start();

  [[nodiscard]] std::uint64_t beacons_forged() const { return beacons_forged_; }
  /// Frames addressed to the attacker's fake identity (i.e. blackholed).
  [[nodiscard]] std::uint64_t packets_swallowed() const { return packets_swallowed_; }
  [[nodiscard]] net::GnAddress fake_address() const { return fake_address_; }

 private:
  void on_capture(const phy::Frame& frame) override;
  void send_fake_beacon();

  Config config_;
  std::optional<security::EnrolledIdentity> identity_;
  net::GnAddress fake_address_{};
  std::uint64_t beacons_forged_{0};
  std::uint64_t packets_swallowed_{0};
};

}  // namespace vgr::attack

#pragma once

#include <unordered_set>

#include "vgr/attack/sniffer.hpp"

namespace vgr::attack {

/// Attack #2 — intra-area blockage (paper §III-C).
///
/// The attacker impersonates the fastest CBF forwarder: it captures a
/// GeoBroadcast packet and rebroadcasts it before any legitimate contention
/// timer (TO >= 1 ms) can fire. Every candidate forwarder that hears the
/// replay treats it as "someone already forwarded" and discards its
/// buffered copy.
///
/// Two modes, matching the paper's Spot 1 / Spot 2 discussion:
///  * kRhlRewrite — rewrite the (integrity-unprotected) RHL to 1 and blast
///    at full attack power. First-time receivers of the replay decrement
///    RHL to 0 and never forward, so over-reach cannot re-seed the flood.
///  * kTargetedReplay — replay the packet unmodified at a reduced power so
///    only the known candidate forwarders hear it (requires favourable
///    topology; used in the road-safety showcase against R1).
class IntraAreaBlocker final : public Sniffer {
 public:
  enum class Mode { kRhlRewrite, kTargetedReplay };

  struct Config {
    Mode mode{Mode::kRhlRewrite};
    /// RHL value written into the replay in kRhlRewrite mode.
    std::uint8_t rewritten_rhl{1};
    /// TX range for kTargetedReplay (<= 0 keeps the full attack range).
    double targeted_range_m{-1.0};
    /// Capture-to-replay latency; must stay below CBF TO_MIN (1 ms).
    sim::Duration processing_delay{sim::Duration::micros(500)};
  };

  IntraAreaBlocker(sim::EventQueue& events, phy::Medium& medium, geo::Position position,
                   double attack_range_m);
  IntraAreaBlocker(sim::EventQueue& events, phy::Medium& medium, geo::Position position,
                   double attack_range_m, Config config);

  [[nodiscard]] std::uint64_t packets_replayed() const { return packets_replayed_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  void on_capture(const phy::Frame& frame) override;

  Config config_;
  /// One replay per (source, sequence number) — replaying later copies of
  /// the same flood would only hand fresh packets to new receivers.
  std::unordered_set<std::uint64_t> replayed_;
  std::uint64_t packets_replayed_{0};
};

}  // namespace vgr::attack

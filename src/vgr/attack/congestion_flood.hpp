#pragma once

#include <cstdint>
#include <vector>

#include "vgr/attack/sniffer.hpp"

namespace vgr::attack {

/// Attack #3 — congestion flood (the MAC/DCC layer's attack surface,
/// docs/robustness.md; not in the source paper).
///
/// The attacker stays inside the paper's outsider threat model: it holds no
/// certificate and can only replay bytes it previously captured. Instead of
/// targeting routing state, it replays captured frames at a fixed high rate
/// purely to occupy airtime. Every honest station in range perceives the
/// channel busy for each replay's duration, so:
///
///  * CSMA stations burn through their backoff/retry budgets trying to find
///    an idle gap (retry-exhaustion drops, queue overflow), and
///  * DCC stations measure a high channel-busy ratio and throttle
///    *themselves* — the attacker makes the victims' own congestion control
///    silence them. With DCC parametrised for graceful degradation (Toff
///    pacing instead of CW escalation, scaled retry budget) the same
///    mechanism is what lets honest goodput survive; the congestion arm of
///    bench_resilience measures exactly that DCC-off vs DCC-on contrast.
///
/// Replay preference: unicast data frames. For every station but the one
/// the copied link-layer address names, such a replay is pure airtime — the
/// radio's address filter discards it right after carrier-sense bookkeeping
/// — and the one addressed station drops it as a duplicate. Replaying
/// beacons would additionally poison location tables (that is the paper's
/// *other* attack); keeping the corpus data-first isolates the congestion
/// mechanism. Beacons are used only until the first data frame is heard.
///
/// The attacker does not run a MAC: flooding regardless of polite channel
/// access is the point (its `inject` hands frames straight to the medium).
class CongestionFlooder final : public Sniffer {
 public:
  struct Config {
    /// Replay transmissions per second (0 disables the active part —
    /// the flooder is then a passive sniffer and schedules nothing).
    double rate_hz{0.0};
    /// Captured frames retained for replay (freshest-first ring).
    std::size_t corpus_size{16};
    /// Prefer captured non-beacon frames (see class comment).
    bool prefer_data{true};
  };

  CongestionFlooder(sim::EventQueue& events, phy::Medium& medium, geo::Position position,
                    double attack_range_m, Config config);

  [[nodiscard]] std::uint64_t frames_flooded() const { return frames_flooded_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  void on_capture(const phy::Frame& frame) override;
  void schedule_flood_tick();
  void flood_tick();

  Config config_;
  /// Freshest captured frames, replayed round-robin. Two rings: data
  /// (preferred) and beacons (bootstrap fallback until data is heard).
  std::vector<phy::Frame> data_corpus_;
  std::vector<phy::Frame> beacon_corpus_;
  std::size_t data_write_{0};
  std::size_t beacon_write_{0};
  std::size_t replay_cursor_{0};
  std::uint64_t frames_flooded_{0};
};

}  // namespace vgr::attack

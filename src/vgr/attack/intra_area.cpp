#include "vgr/attack/intra_area.hpp"

namespace vgr::attack {

IntraAreaBlocker::IntraAreaBlocker(sim::EventQueue& events, phy::Medium& medium,
                                   geo::Position position, double attack_range_m)
    : IntraAreaBlocker{events, medium, position, attack_range_m, Config{}} {}

IntraAreaBlocker::IntraAreaBlocker(sim::EventQueue& events, phy::Medium& medium,
                                   geo::Position position, double attack_range_m, Config config)
    : Sniffer{events, medium, position, attack_range_m}, config_{config} {}

void IntraAreaBlocker::on_capture(const phy::Frame& frame) {
  const net::Packet& p = frame.msg->packet();
  const auto key_opt = p.duplicate_key();
  if (!key_opt || p.gbc() == nullptr) return;  // only GeoBroadcast floods

  const std::uint64_t key = key_opt->first.bits() * 0x9e3779b97f4a7c15ULL ^
                            static_cast<std::uint64_t>(key_opt->second);
  if (!replayed_.insert(key).second) return;

  phy::Frame replay = frame;
  replay.dst = net::MacAddress::broadcast();
  double range_override = -1.0;
  if (config_.mode == Mode::kRhlRewrite) {
    // The RHL lives in the basic header, outside the signature scope —
    // receivers cannot detect the rewrite (vulnerability #3). The rewrite
    // shares the captured envelope's signed-portion cache, just like an
    // honest forwarder's RHL decrement.
    replay.msg = security::share(frame.msg->with_remaining_hop_limit(config_.rewritten_rhl));
  } else {
    range_override = config_.targeted_range_m;
  }
  ++packets_replayed_;
  events_.schedule_in(config_.processing_delay, [this, replay = std::move(replay),
                                                 range_override] {
    inject(replay, range_override);
  });
}

}  // namespace vgr::attack

#include "vgr/attack/inter_area.hpp"

namespace vgr::attack {

InterAreaInterceptor::InterAreaInterceptor(sim::EventQueue& events, phy::Medium& medium,
                                           geo::Position position, double attack_range_m)
    : InterAreaInterceptor{events, medium, position, attack_range_m, Config{}} {}

InterAreaInterceptor::InterAreaInterceptor(sim::EventQueue& events, phy::Medium& medium,
                                           geo::Position position, double attack_range_m,
                                           Config config)
    : Sniffer{events, medium, position, attack_range_m}, config_{config} {}

InterAreaInterceptor::InterAreaInterceptor(sim::EventQueue& events, phy::Medium& medium,
                                           const gn::MobilityProvider& mobility,
                                           double attack_range_m, Config config)
    : Sniffer{events, medium, mobility, attack_range_m}, config_{config} {}

void InterAreaInterceptor::on_capture(const phy::Frame& frame) {
  if (!frame.msg->packet().is_beacon()) return;

  const net::LongPositionVector& pv = frame.msg->packet().source_pv();
  const std::uint64_t key =
      pv.address.bits() * 0x9e3779b97f4a7c15ULL ^ static_cast<std::uint64_t>(pv.timestamp.count());
  if (!replayed_.insert(key).second) return;

  // Replay the captured envelope byte-for-byte — the source's signature
  // stays valid, so every receiver accepts the stale neighbour.
  phy::Frame replay = frame;
  replay.dst = net::MacAddress::broadcast();
  ++beacons_replayed_;
  events_.schedule_in(config_.processing_delay,
                      [this, replay = std::move(replay)] { inject(replay); });
}

}  // namespace vgr::attack

#include "vgr/attack/blackhole.hpp"

namespace vgr::attack {

BlackholeAttacker::BlackholeAttacker(sim::EventQueue& events, phy::Medium& medium,
                                     geo::Position position, double attack_range_m,
                                     Config config,
                                     std::optional<security::EnrolledIdentity> insider_identity)
    : Sniffer{events, medium, position, attack_range_m},
      config_{config},
      identity_{std::move(insider_identity)} {
  fake_address_ = identity_
                      ? identity_->certificate.subject
                      : net::GnAddress{net::GnAddress::StationType::kPassengerCar,
                                       net::MacAddress{0x0200'B1AC'C4A7ULL}};
}

void BlackholeAttacker::start() { send_fake_beacon(); }

void BlackholeAttacker::send_fake_beacon() {
  net::Packet p;
  p.basic.remaining_hop_limit = 1;
  p.common.type = net::CommonHeader::HeaderType::kBeacon;
  p.common.max_hop_limit = 1;
  net::LongPositionVector pv;
  pv.address = fake_address_;
  pv.timestamp = events_.now();
  pv.position = config_.advertised_position;  // the lie
  p.extended = net::BeaconHeader{pv};

  security::SecuredMessage msg;
  if (identity_) {
    // Insider variant: a validly signed lie — authentication passes.
    msg = security::SecuredMessage::sign(p, security::Signer{*identity_});
  } else {
    // Outsider variant: no key, so the best it can do is a garbage tag
    // under a self-proclaimed certificate. Every verifier rejects it.
    security::Certificate forged;
    forged.serial = 0xDEAD;
    forged.subject = fake_address_;
    msg = security::SecuredMessage::from_parts(p, forged, 0xBAD0'BAD0'BAD0'BAD0ULL);
  }

  phy::Frame frame;
  frame.dst = net::MacAddress::broadcast();
  frame.msg = security::share(std::move(msg));
  ++beacons_forged_;
  inject(std::move(frame));
  events_.schedule_in(config_.beacon_interval, [this] { send_fake_beacon(); });
}

void BlackholeAttacker::on_capture(const phy::Frame& frame) {
  // Count Greedy-Forwarded packets that chose the fake identity as their
  // next hop: those are intercepted (and dropped — a blackhole).
  if (frame.dst == fake_address_.mac()) ++packets_swallowed_;
}

}  // namespace vgr::attack

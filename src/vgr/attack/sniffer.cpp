#include "vgr/attack/sniffer.hpp"

namespace vgr::attack {

Sniffer::Sniffer(sim::EventQueue& events, phy::Medium& medium, geo::Position position,
                 double attack_range_m)
    : events_{events}, medium_{medium}, static_mobility_{position} {
  attach(attack_range_m);
}

Sniffer::Sniffer(sim::EventQueue& events, phy::Medium& medium,
                 const gn::MobilityProvider& mobility, double attack_range_m)
    : events_{events}, medium_{medium}, external_mobility_{&mobility} {
  attach(attack_range_m);
}

void Sniffer::attach(double attack_range_m) {
  // The attacker's MAC is arbitrary — link-layer addresses are not
  // authenticated; a locally administered address keeps it distinct.
  own_mac_ = net::MacAddress{0x0200'4A77'ACCEULL};
  phy::Medium::NodeConfig node;
  node.mac = own_mac_;
  node.position = [this] { return position(); };
  node.tx_range_m = attack_range_m;
  // Elevated high-gain antenna: the attacker hears as far as it talks,
  // not just as far as a stock vehicle radio reaches (paper §III-A).
  node.rx_range_m = attack_range_m;
  node.promiscuous = true;  // sniff unicast forwards too
  node.home = &events_;     // strip affinity follows the sniffer's queue
  radio_ = medium_.add_node(std::move(node),
                            [this](const phy::Frame& f, phy::RadioId) { capture(f); });
}

Sniffer::~Sniffer() { medium_.remove_node(radio_); }

void Sniffer::capture(const phy::Frame& frame) {
  if (frame.src == own_mac_) return;  // never reprocess own injections
  ++frames_captured_;
  // Track every station's advertised position from the plaintext PVs.
  const net::LongPositionVector& pv = frame.msg->packet().source_pv();
  auto& obs = observations_[pv.address];
  if (obs.heard_at <= events_.now()) {
    obs.pv = pv;
    obs.heard_at = events_.now();
  }
  on_capture(frame);
}

void Sniffer::on_capture(const phy::Frame&) {}

void Sniffer::inject(phy::Frame frame, double range_override_m) {
  frame.src = own_mac_;
  ++frames_injected_;
  medium_.transmit(radio_, std::move(frame), range_override_m);
}

bool Sniffer::inferred_out_of_coverage(net::GnAddress a, net::GnAddress b,
                                       double vehicle_range_m) const {
  const auto ia = observations_.find(a);
  const auto ib = observations_.find(b);
  if (ia == observations_.end() || ib == observations_.end()) return false;
  return geo::distance(ia->second.pv.position, ib->second.pv.position) > vehicle_range_m;
}

}  // namespace vgr::attack

#include "vgr/sweep/ab_codec.hpp"

#include <algorithm>
#include <cassert>

#include "vgr/sweep/json.hpp"

namespace vgr::sweep {
namespace {

using scenario::AbResult;

void append_bin_array(std::string& out, const char* key, const sim::BinnedRate& bins,
                      bool hits) {
  out += "\"";
  out += key;
  out += "\":[";
  for (std::size_t i = 0; i < bins.bin_count(); ++i) {
    if (i > 0) out += ",";
    json_append_double(out, hits ? bins.bin_hits(i) : bins.bin_trials(i));
  }
  out += "]";
}

void append_totals(std::string& out, const char* key, const AbResult::ArmTotals& t) {
  out += "\"";
  out += key;
  out += "\":{\"mac_queue_overflow\":" + std::to_string(t.mac_queue_overflow);
  out += ",\"mac_retry_exhausted\":" + std::to_string(t.mac_retry_exhausted);
  out += ",\"mac_dcc_gated\":" + std::to_string(t.mac_dcc_gated);
  out += ",\"mac_backoff_retries\":" + std::to_string(t.mac_backoff_retries);
  out += ",\"mac_transmitted\":" + std::to_string(t.mac_transmitted);
  out += ",\"ingest_drops\":" + std::to_string(t.ingest_drops);
  out += ",\"frames_flooded\":" + std::to_string(t.frames_flooded);
  out += ",\"peak_cbr\":";
  json_append_double(out, t.peak_cbr);
  out += "}";
}

bool read_bins(const JsonValue& root, const char* key, sim::BinnedRate& bins, bool hits) {
  const JsonValue* arr = root.find(key);
  if (arr == nullptr || arr->kind != JsonValue::Kind::kArray ||
      arr->array.size() != bins.bin_count()) {
    return false;
  }
  for (std::size_t i = 0; i < arr->array.size(); ++i) {
    const double v = arr->array[i].as_double();
    if (hits) {
      bins.set_bin(i, v, bins.bin_trials(i));
    } else {
      bins.set_bin(i, bins.bin_hits(i), v);
    }
  }
  return true;
}

bool read_totals(const JsonValue& root, const char* key, AbResult::ArmTotals& t) {
  const JsonValue* obj = root.find(key);
  if (obj == nullptr || obj->kind != JsonValue::Kind::kObject) return false;
  t.mac_queue_overflow = obj->u64("mac_queue_overflow");
  t.mac_retry_exhausted = obj->u64("mac_retry_exhausted");
  t.mac_dcc_gated = obj->u64("mac_dcc_gated");
  t.mac_backoff_retries = obj->u64("mac_backoff_retries");
  t.mac_transmitted = obj->u64("mac_transmitted");
  t.ingest_drops = obj->u64("ingest_drops");
  t.frames_flooded = obj->u64("frames_flooded");
  t.peak_cbr = obj->num("peak_cbr");
  return true;
}

void accumulate(AbResult::ArmTotals& into, const AbResult::ArmTotals& from) {
  into.mac_queue_overflow += from.mac_queue_overflow;
  into.mac_retry_exhausted += from.mac_retry_exhausted;
  into.mac_dcc_gated += from.mac_dcc_gated;
  into.mac_backoff_retries += from.mac_backoff_retries;
  into.mac_transmitted += from.mac_transmitted;
  into.ingest_drops += from.ingest_drops;
  into.frames_flooded += from.frames_flooded;
  into.peak_cbr = std::max(into.peak_cbr, from.peak_cbr);
}

}  // namespace

std::string encode_ab(const AbResult& r) {
  assert(r.baseline.bin_count() == r.attacked.bin_count());
  std::string out = "{\"bin_ns\":" + std::to_string(r.baseline.bin_width().count());
  out += ",\"bins\":" + std::to_string(r.baseline.bin_count());
  out += ",";
  append_bin_array(out, "base_hits", r.baseline, true);
  out += ",";
  append_bin_array(out, "base_trials", r.baseline, false);
  out += ",";
  append_bin_array(out, "atk_hits", r.attacked, true);
  out += ",";
  append_bin_array(out, "atk_trials", r.attacked, false);
  out += ",\"attack_rate\":";
  json_append_double(out, r.attack_rate);
  out += ",\"baseline_reception\":";
  json_append_double(out, r.baseline_reception);
  out += ",\"attacked_reception\":";
  json_append_double(out, r.attacked_reception);
  out += ",\"rec_base_hits\":";
  json_append_double(out, r.reception_base_hits);
  out += ",\"rec_base_trials\":";
  json_append_double(out, r.reception_base_trials);
  out += ",\"rec_atk_hits\":";
  json_append_double(out, r.reception_atk_hits);
  out += ",\"rec_atk_trials\":";
  json_append_double(out, r.reception_atk_trials);
  out += ",\"runs\":" + std::to_string(r.runs);
  out += ",\"timed_out_runs\":" + std::to_string(r.timed_out_runs);
  out += ",\"timed_out_events\":" + std::to_string(r.timed_out_events);
  out += ",\"timed_out_wall\":" + std::to_string(r.timed_out_wall);
  out += ",";
  append_totals(out, "baseline_totals", r.baseline_totals);
  out += ",";
  append_totals(out, "attacked_totals", r.attacked_totals);
  out += "}";
  return out;
}

std::optional<AbResult> decode_ab(std::string_view payload) {
  const std::optional<JsonValue> parsed = json_parse(payload);
  if (!parsed.has_value() || parsed->kind != JsonValue::Kind::kObject) return std::nullopt;
  const JsonValue& root = *parsed;

  const auto bin_ns = static_cast<std::int64_t>(root.u64("bin_ns"));
  const std::uint64_t bins = root.u64("bins");
  if (bin_ns <= 0 || bins == 0) return std::nullopt;
  const sim::Duration bin_width = sim::Duration::nanos(bin_ns);
  const sim::Duration horizon =
      sim::Duration::nanos(bin_ns * static_cast<std::int64_t>(bins));

  AbResult r{sim::BinnedRate{bin_width, horizon}, sim::BinnedRate{bin_width, horizon}};
  if (!read_bins(root, "base_hits", r.baseline, true) ||
      !read_bins(root, "base_trials", r.baseline, false) ||
      !read_bins(root, "atk_hits", r.attacked, true) ||
      !read_bins(root, "atk_trials", r.attacked, false)) {
    return std::nullopt;
  }
  r.attack_rate = root.num("attack_rate");
  r.baseline_reception = root.num("baseline_reception");
  r.attacked_reception = root.num("attacked_reception");
  r.reception_base_hits = root.num("rec_base_hits");
  r.reception_base_trials = root.num("rec_base_trials");
  r.reception_atk_hits = root.num("rec_atk_hits");
  r.reception_atk_trials = root.num("rec_atk_trials");
  r.runs = root.u64("runs");
  r.timed_out_runs = root.u64("timed_out_runs");
  r.timed_out_events = root.u64("timed_out_events");
  r.timed_out_wall = root.u64("timed_out_wall");
  if (!read_totals(root, "baseline_totals", r.baseline_totals) ||
      !read_totals(root, "attacked_totals", r.attacked_totals)) {
    return std::nullopt;
  }
  return r;
}

std::optional<AbResult> merge_ab_payloads(const std::vector<std::string>& payloads) {
  std::optional<AbResult> merged;
  for (const std::string& payload : payloads) {
    std::optional<AbResult> shard = decode_ab(payload);
    if (!shard.has_value()) return std::nullopt;
    if (!merged.has_value()) {
      merged = std::move(shard);
      continue;
    }
    if (shard->baseline.bin_count() != merged->baseline.bin_count() ||
        shard->baseline.bin_width() != merged->baseline.bin_width()) {
      return std::nullopt;
    }
    merged->baseline.merge(shard->baseline);
    merged->attacked.merge(shard->attacked);
    accumulate(merged->baseline_totals, shard->baseline_totals);
    accumulate(merged->attacked_totals, shard->attacked_totals);
    merged->reception_base_hits += shard->reception_base_hits;
    merged->reception_base_trials += shard->reception_base_trials;
    merged->reception_atk_hits += shard->reception_atk_hits;
    merged->reception_atk_trials += shard->reception_atk_trials;
    merged->runs += shard->runs;
    merged->timed_out_runs += shard->timed_out_runs;
    merged->timed_out_events += shard->timed_out_events;
    merged->timed_out_wall += shard->timed_out_wall;
  }
  if (!merged.has_value() || payloads.size() == 1) return merged;

  // Re-derive the rates the way ab_runner does once all shards are in.
  merged->attack_rate = sim::BinnedRate::average_drop(merged->baseline, merged->attacked);
  if (merged->reception_base_trials > 0.0) {
    // Inter-area: packet-weighted run averages.
    merged->baseline_reception = merged->reception_base_hits / merged->reception_base_trials;
    merged->attacked_reception = merged->reception_atk_trials > 0.0
                                     ? merged->reception_atk_hits / merged->reception_atk_trials
                                     : 0.0;
  } else {
    // Intra-area: overall rate of the merged bins.
    merged->baseline_reception = merged->baseline.overall();
    merged->attacked_reception = merged->attacked.overall();
  }
  return merged;
}

}  // namespace vgr::sweep

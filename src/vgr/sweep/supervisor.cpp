#include "vgr/sweep/supervisor.hpp"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <exception>

#include "vgr/sim/env.hpp"

namespace vgr::sweep {
namespace {

/// Drain request flag, set (only set — never cleared, never read-modify-
/// write) by the signal handler. `volatile sig_atomic_t` is the full extent
/// of what an async handler may touch (vgr_lint rule VGR008 enforces this).
volatile std::sig_atomic_t g_drain = 0;

void drain_handler(int /*signum*/) { g_drain = 1; }

/// Deterministic retry backoff. nanosleep is async-signal-tolerant and,
/// unlike std::this_thread::sleep_for, needs no <thread> include (VGR006).
void backoff_sleep(double ms) {
  if (ms <= 0.0) return;
  timespec ts{};
  ts.tv_sec = static_cast<time_t>(ms / 1000.0);
  ts.tv_nsec = static_cast<long>((ms - static_cast<double>(ts.tv_sec) * 1000.0) * 1e6);
  nanosleep(&ts, nullptr);
}

const char* outcome_cause(const ShardOutcome& outcome) {
  if (outcome.error) return "error";
  if (outcome.timed_out_events > 0) return "events";
  if (outcome.timed_out_wall > 0) return "wall";
  return "none";
}

}  // namespace

SupervisorConfig SupervisorConfig::from_env() {
  SupervisorConfig c;
  if (const auto v = sim::env_int("VGR_SWEEP"); v.has_value()) c.enabled = *v != 0;
  if (const char* p = std::getenv("VGR_SWEEP_JOURNAL"); p != nullptr && *p != '\0') {
    c.journal_path = p;
  }
  if (const auto v = sim::env_int("VGR_SWEEP_RESUME"); v.has_value()) c.resume = *v != 0;
  if (const auto v = sim::env_int("VGR_SWEEP_RETRIES"); v.has_value() && *v >= 0) {
    c.max_retries = static_cast<std::uint64_t>(*v);
  }
  if (const auto v = sim::env_double("VGR_SWEEP_BACKOFF_MS"); v.has_value() && *v >= 0.0) {
    c.backoff_ms = *v;
  }
  if (const auto v = sim::env_int("VGR_SWEEP_MAX_EVENTS"); v.has_value() && *v >= 0) {
    c.run_max_events = static_cast<std::uint64_t>(*v);
  }
  if (const auto v = sim::env_double("VGR_SWEEP_TIMEOUT_S"); v.has_value() && *v >= 0.0) {
    c.run_wall_budget_s = *v;
  }
  if (const auto v = sim::env_int("VGR_SWEEP_SEED_CHUNK"); v.has_value() && *v >= 0) {
    c.seed_chunk = static_cast<std::uint64_t>(*v);
  }
  if (const auto v = sim::env_int("VGR_SWEEP_FAULT_AFTER"); v.has_value()) {
    c.fault_after_appends = *v;
  }
  return c;
}

Supervisor::Supervisor(SupervisorConfig config) : config_{std::move(config)} {
  if (!config_.enabled) return;
  journal_ = Journal::open(config_.journal_path);
  if (!journal_.has_value()) {
    std::fprintf(stderr, "[sweep] cannot open journal %s: %s\n",
                 config_.journal_path.c_str(), std::strerror(errno));
    return;
  }
  if (journal_->truncated_bytes() > 0) {
    std::fprintf(stderr, "[sweep] journal %s: truncated %zu torn trailing bytes\n",
                 config_.journal_path.c_str(), journal_->truncated_bytes());
  }
  if (!config_.resume && !journal_->records().empty()) {
    // Guard against silently mixing two studies into one journal: reusing
    // an existing journal is an explicit choice (VGR_SWEEP_RESUME=1 /
    // `vgr_sweep resume`), not a side effect of re-running a bench.
    std::fprintf(stderr,
                 "[sweep] journal %s already holds %zu record(s); set "
                 "VGR_SWEEP_RESUME=1 to resume or remove the journal to start over\n",
                 config_.journal_path.c_str(), journal_->records().size());
    journal_.reset();
    return;
  }
  old_sigint_ = std::signal(SIGINT, drain_handler);
  old_sigterm_ = std::signal(SIGTERM, drain_handler);
  signals_installed_ = true;
}

Supervisor::~Supervisor() {
  finish();
  if (signals_installed_) {
    std::signal(SIGINT, old_sigint_ != SIG_ERR ? old_sigint_ : SIG_DFL);
    std::signal(SIGTERM, old_sigterm_ != SIG_ERR ? old_sigterm_ : SIG_DFL);
  }
}

bool Supervisor::drain_requested() { return g_drain != 0; }

void Supervisor::request_drain() { g_drain = 1; }

void Supervisor::reset_drain() { g_drain = 0; }

std::optional<std::string> Supervisor::run_shard(const ShardSpec& spec, const ShardFn& fn) {
  ++counters_.shards;

  ShardEffort effort;
  effort.runs = spec.runs;
  effort.run_max_events = config_.run_max_events;
  effort.run_wall_budget_s = config_.run_wall_budget_s;

  if (!config_.enabled) {
    // Transparent mode: one attempt, full fidelity, results used verbatim
    // whatever their watchdog counters say (the unsupervised contract).
    const ShardOutcome outcome = fn(spec, effort);
    counters_.timed_out_events += outcome.timed_out_events;
    counters_.timed_out_wall += outcome.timed_out_wall;
    ++counters_.completed;
    return outcome.payload;
  }

  if (journal_.has_value()) {
    if (const JournalRecord* rec = journal_->find(spec.key); rec != nullptr) {
      return resume_from(*rec);
    }
  }

  if (drain_requested()) {
    // Not journaled: a resumed sweep will execute this shard from scratch.
    ++counters_.drained;
    return std::nullopt;
  }

  ShardOutcome outcome;
  std::uint64_t attempts = 0;
  double backoff = config_.backoff_ms;
  for (std::uint64_t attempt = 0; attempt <= config_.max_retries; ++attempt) {
    if (attempt > 0) {
      if (drain_requested()) {
        ++counters_.drained;
        return std::nullopt;
      }
      ++counters_.retries;
      backoff_sleep(backoff);
      backoff *= 2.0;
    }
    ++attempts;
    try {
      outcome = fn(spec, effort);
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "[sweep] shard %s attempt %llu failed: %s\n", spec.key.c_str(),
                   static_cast<unsigned long long>(attempts), ex.what());
      outcome = ShardOutcome{};
      outcome.error = true;
    }
    counters_.timed_out_events += outcome.timed_out_events;
    counters_.timed_out_wall += outcome.timed_out_wall;
    if (outcome.clean()) {
      record(spec, outcome, effort, attempts, "none");
      ++counters_.completed;
      return outcome.payload;
    }
  }

  // Retries exhausted at full fidelity: one degraded attempt with half the
  // runs and half the event budget before giving up on the shard.
  if (drain_requested()) {
    ++counters_.drained;
    return std::nullopt;
  }
  const char* full_cause = outcome_cause(outcome);
  ShardEffort degraded = effort;
  degraded.degraded = true;
  degraded.runs = effort.runs > 1 ? effort.runs / 2 : 1;
  if (effort.run_max_events > 0) {
    degraded.run_max_events = effort.run_max_events / 2 + 1;
  }
  ++counters_.degraded;
  ++attempts;
  try {
    outcome = fn(spec, degraded);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "[sweep] shard %s degraded attempt failed: %s\n",
                 spec.key.c_str(), ex.what());
    outcome = ShardOutcome{};
    outcome.error = true;
  }
  counters_.timed_out_events += outcome.timed_out_events;
  counters_.timed_out_wall += outcome.timed_out_wall;
  if (outcome.clean()) {
    record(spec, outcome, degraded, attempts, full_cause);
    ++counters_.completed;
    return outcome.payload;
  }

  const char* cause = outcome_cause(outcome);
  std::fprintf(stderr, "[sweep] quarantining shard %s after %llu attempts (cause: %s)\n",
               spec.key.c_str(), static_cast<unsigned long long>(attempts), cause);
  if (std::strcmp(cause, "events") == 0) {
    ++counters_.quarantined_events;
  } else if (std::strcmp(cause, "wall") == 0) {
    ++counters_.quarantined_wall;
  } else {
    ++counters_.quarantined_error;
  }
  JournalRecord rec;
  rec.shard = spec.key;
  rec.status = "quarantined";
  rec.fidelity = "degraded";
  rec.attempts = attempts;
  rec.cause = cause;
  rec.payload = "null";
  if (journal_.has_value()) {
    journal_->append(rec);
    maybe_fault();
  }
  return std::nullopt;
}

std::optional<std::string> Supervisor::resume_from(const JournalRecord& rec) {
  ++counters_.resumed;
  if (rec.fidelity == "degraded") ++counters_.degraded;
  if (rec.status == "quarantined") {
    // Quarantine is sticky across resumes: re-running a poisoned shard
    // would make resumed output depend on how often the sweep crashed.
    if (rec.cause == "events") {
      ++counters_.quarantined_events;
    } else if (rec.cause == "wall") {
      ++counters_.quarantined_wall;
    } else {
      ++counters_.quarantined_error;
    }
    return std::nullopt;
  }
  ++counters_.completed;
  return rec.payload;
}

void Supervisor::record(const ShardSpec& spec, const ShardOutcome& outcome,
                        const ShardEffort& effort, std::uint64_t attempts,
                        const char* cause) {
  if (!journal_.has_value()) return;
  JournalRecord rec;
  rec.shard = spec.key;
  rec.status = "done";
  rec.fidelity = effort.degraded ? "degraded" : "full";
  rec.attempts = attempts;
  rec.cause = cause;
  rec.payload = outcome.payload.empty() ? "null" : outcome.payload;
  journal_->append(rec);
  maybe_fault();
}

void Supervisor::maybe_fault() {
  if (config_.fault_after_appends < 0) return;
  ++appends_;
  if (appends_ >= static_cast<std::uint64_t>(config_.fault_after_appends)) {
    // Crash-test hook (VGR_SWEEP_FAULT_AFTER): die as hard as a power cut.
    // The journal append above already fsync'd, which is exactly what the
    // kill-and-resume test verifies.
    std::fprintf(stderr, "[sweep] fault injection: SIGKILL after %llu appends\n",
                 static_cast<unsigned long long>(appends_));
    std::fflush(stderr);
    raise(SIGKILL);
  }
}

void Supervisor::finish() {
  if (!config_.enabled || !journal_.has_value()) return;
  write_manifest();
}

void Supervisor::write_manifest() const {
  const std::string path = config_.journal_path + ".manifest";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return;
  const bool drained = counters_.drained > 0 || drain_requested();
  std::fprintf(f,
               "{\"journal\":\"%s\",\"status\":\"%s\",\"shards\":%llu,"
               "\"completed\":%llu,\"resumed\":%llu,\"retries\":%llu,"
               "\"degraded\":%llu,\"quarantined_events\":%llu,"
               "\"quarantined_wall\":%llu,\"quarantined_error\":%llu,"
               "\"drained\":%llu,\"timed_out_events\":%llu,"
               "\"timed_out_wall\":%llu}\n",
               config_.journal_path.c_str(), drained ? "drained" : "complete",
               static_cast<unsigned long long>(counters_.shards),
               static_cast<unsigned long long>(counters_.completed),
               static_cast<unsigned long long>(counters_.resumed),
               static_cast<unsigned long long>(counters_.retries),
               static_cast<unsigned long long>(counters_.degraded),
               static_cast<unsigned long long>(counters_.quarantined_events),
               static_cast<unsigned long long>(counters_.quarantined_wall),
               static_cast<unsigned long long>(counters_.quarantined_error),
               static_cast<unsigned long long>(counters_.drained),
               static_cast<unsigned long long>(counters_.timed_out_events),
               static_cast<unsigned long long>(counters_.timed_out_wall));
  std::fclose(f);
}

}  // namespace vgr::sweep

#pragma once

#include <string>
#include <vector>

#include "vgr/scenario/ab_runner.hpp"
#include "vgr/sweep/supervisor.hpp"

namespace vgr::sweep {

/// Which points of the resilience study to run. Defaults reproduce
/// bench_resilience exactly; the vgr_sweep CLI narrows them for smoke runs.
struct ResilienceSelection {
  std::vector<double> loss{0.0, 0.05, 0.1, 0.2, 0.4};    ///< drop probability
  std::vector<double> churn{0.0, 0.1, 0.25, 0.5};        ///< crashes per second
  std::vector<double> flood{0.0, 1000.0, 2500.0, 4000.0, 4500.0};  ///< Hz
};

/// The resilience study (bench_resilience's body): channel-loss, churn and
/// congestion sweeps over the inter-area experiment, every A/B pair routed
/// through `supervisor`. With the supervisor disabled this is exactly the
/// historical bench; enabled, each point's seed range is journaled shard by
/// shard so a killed study resumes where it stopped. Prints the usual sweep
/// tables, writes the JSON artifact (results sections first, `"supervisor"`
/// health block last) to `json_path`, and returns a process exit code.
int run_resilience_sweep(Supervisor& supervisor, scenario::Fidelity fidelity,
                         const ResilienceSelection& selection,
                         const std::string& json_path);

}  // namespace vgr::sweep

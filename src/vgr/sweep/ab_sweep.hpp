#pragma once

#include <cstdint>
#include <string>

#include "vgr/scenario/ab_runner.hpp"
#include "vgr/sweep/supervisor.hpp"

namespace vgr::sweep {

/// Which paired experiment a sweep point runs.
enum class Experiment : std::uint8_t { kInterArea, kIntraArea };

/// A supervised sweep point: the merged A/B result plus how much of the
/// point actually materialized. `missing` counts shards that produced no
/// payload (quarantined now or in the journal, or skipped by a drain);
/// when every shard is missing `result` is an all-zero timeline.
struct SupervisedAb {
  scenario::AbResult result;
  std::uint64_t shards{0};
  std::uint64_t missing{0};

  [[nodiscard]] bool complete() const { return missing == 0; }
};

/// Stable journal key for one seed-range shard of a labelled sweep point.
/// The label carries the human-readable point identity ("loss-0.050-plain");
/// the suffix pins the seed range and an fnv1a-64 fingerprint of the
/// execution parameters, so a journal written under one fidelity cannot be
/// silently replayed into a sweep running under another.
std::string shard_key(const std::string& label, Experiment experiment,
                      const scenario::Fidelity& fidelity, std::uint64_t first_run,
                      std::uint64_t runs);

/// Runs one sweep point, supervised. With the supervisor disabled this is
/// exactly run_inter_area_ab / run_intra_area_ab — no journal, no codec,
/// byte-identical output. Enabled, the point's seed range is cut into
/// `seed_chunk`-sized shards (0 = one shard), each shard goes through the
/// supervisor's journal/retry/degrade ladder, and the shard payloads are
/// merged back into one AbResult.
SupervisedAb run_ab_supervised(Supervisor& supervisor, Experiment experiment,
                               const std::string& label,
                               const scenario::HighwayConfig& config,
                               const scenario::Fidelity& fidelity);

}  // namespace vgr::sweep

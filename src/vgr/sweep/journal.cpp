#include "vgr/sweep/journal.hpp"

#include <unistd.h>

#include <array>
#include <cassert>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

namespace vgr::sweep {
namespace {

constexpr std::size_t kCrcPrefixLen = 18;  // {"crc":"xxxxxxxx",

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1U) : c >> 1U;
    table[n] = c;
  }
  return table;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Cursor over one journal line's fixed field layout (the encoder always
/// writes fields in the same order, so the decoder can demand it — any
/// deviation means corruption, and corruption means truncation upstream).
struct Cursor {
  std::string_view rest;
  bool ok{true};

  bool expect(std::string_view lit) {
    if (!ok || !rest.starts_with(lit)) {
      ok = false;
      return false;
    }
    rest.remove_prefix(lit.size());
    return true;
  }

  /// Reads a quoted string written by encode_record (keys and enum-ish
  /// fields contain no escapes by construction).
  std::string quoted() {
    if (!expect("\"")) return {};
    const std::size_t end = rest.find('"');
    if (end == std::string_view::npos) {
      ok = false;
      return {};
    }
    std::string out{rest.substr(0, end)};
    rest.remove_prefix(end + 1);
    return out;
  }

  std::uint64_t integer() {
    std::uint64_t v = 0;
    std::size_t digits = 0;
    while (digits < rest.size() && rest[digits] >= '0' && rest[digits] <= '9') {
      v = v * 10 + static_cast<std::uint64_t>(rest[digits] - '0');
      ++digits;
    }
    if (digits == 0) ok = false;
    rest.remove_prefix(digits);
    return v;
  }
};

/// Validates `content` line by line; fills `records` with the valid prefix
/// and returns the byte offset just past the last valid line.
std::size_t valid_prefix(std::string_view content, std::vector<JournalRecord>& records) {
  std::size_t offset = 0;
  while (offset < content.size()) {
    const std::size_t nl = content.find('\n', offset);
    if (nl == std::string_view::npos) break;  // torn final line (no newline)
    auto rec = decode_record(content.substr(offset, nl - offset));
    if (!rec.has_value()) break;  // checksum or framing failure
    records.push_back(std::move(*rec));
    offset = nl + 1;
  }
  return offset;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFU;
  for (const char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFU] ^ (c >> 8U);
  }
  return c ^ 0xFFFFFFFFU;
}

std::string encode_record(const JournalRecord& rec) {
  std::string body;
  body.reserve(rec.payload.size() + 128);
  body += "\"shard\":\"";
  body += rec.shard;
  body += "\",\"status\":\"";
  body += rec.status;
  body += "\",\"fidelity\":\"";
  body += rec.fidelity;
  body += "\",\"attempts\":";
  body += std::to_string(rec.attempts);
  body += ",\"cause\":\"";
  body += rec.cause;
  body += "\",\"payload\":";
  body += rec.payload.empty() ? "null" : rec.payload;
  body += "}";

  char crc_hex[9];
  std::snprintf(crc_hex, sizeof crc_hex, "%08x", crc32(body));
  std::string line = "{\"crc\":\"";
  line += crc_hex;
  line += "\",";
  line += body;
  line += "\n";
  return line;
}

std::optional<JournalRecord> decode_record(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  if (line.size() <= kCrcPrefixLen || !line.starts_with("{\"crc\":\"")) return std::nullopt;
  std::uint32_t stored = 0;
  for (std::size_t i = 8; i < 16; ++i) {
    const char c = line[i];
    std::uint32_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint32_t>(c - 'a') + 10;
    } else {
      return std::nullopt;
    }
    stored = (stored << 4U) | digit;
  }
  if (line.substr(16, 2) != "\",") return std::nullopt;
  const std::string_view body = line.substr(kCrcPrefixLen);
  if (crc32(body) != stored) return std::nullopt;

  Cursor cur{body};
  JournalRecord rec;
  cur.expect("\"shard\":");
  rec.shard = cur.quoted();
  cur.expect(",\"status\":");
  rec.status = cur.quoted();
  cur.expect(",\"fidelity\":");
  rec.fidelity = cur.quoted();
  cur.expect(",\"attempts\":");
  rec.attempts = cur.integer();
  cur.expect(",\"cause\":");
  rec.cause = cur.quoted();
  cur.expect(",\"payload\":");
  if (!cur.ok || cur.rest.empty() || cur.rest.back() != '}') return std::nullopt;
  rec.payload = std::string{cur.rest.substr(0, cur.rest.size() - 1)};
  return rec;
}

Journal::~Journal() { close(); }

Journal::Journal(Journal&& other) noexcept
    : path_{std::move(other.path_)},
      file_{other.file_},
      records_{std::move(other.records_)},
      truncated_bytes_{other.truncated_bytes_} {
  other.file_ = nullptr;
}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this != &other) {
    close();
    path_ = std::move(other.path_);
    file_ = other.file_;
    records_ = std::move(other.records_);
    truncated_bytes_ = other.truncated_bytes_;
    other.file_ = nullptr;
  }
  return *this;
}

void Journal::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

std::optional<Journal> Journal::open(const std::string& path) {
  Journal j;
  j.path_ = path;
  const std::string content = read_file(path);
  const std::size_t keep = valid_prefix(content, j.records_);
  if (keep < content.size()) {
    // Torn or corrupt tail: recover by truncation, never by failure.
    j.truncated_bytes_ = content.size() - keep;
    std::error_code ec;
    std::filesystem::resize_file(path, keep, ec);
    if (ec) return std::nullopt;
  }
  j.file_ = std::fopen(path.c_str(), "ab");
  if (j.file_ == nullptr) return std::nullopt;
  return j;
}

std::vector<JournalRecord> Journal::scan(const std::string& path, std::size_t* torn_bytes) {
  std::vector<JournalRecord> records;
  const std::string content = read_file(path);
  const std::size_t keep = valid_prefix(content, records);
  if (torn_bytes != nullptr) *torn_bytes = content.size() - keep;
  return records;
}

void Journal::append(const JournalRecord& rec) {
  assert(file_ != nullptr);
  assert(rec.shard.find('"') == std::string::npos &&
         rec.shard.find('\\') == std::string::npos &&
         rec.shard.find('\n') == std::string::npos && "shard keys must be plain text");
  const std::string line = encode_record(rec);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
  // Durability barrier: the record must be on disk before the supervisor
  // moves on — a SIGKILL between shards must never lose a finished one.
  fsync(fileno(file_));
  records_.push_back(rec);
}

const JournalRecord* Journal::find(std::string_view shard) const {
  for (const JournalRecord& rec : records_) {
    if (rec.shard == shard) return &rec;
  }
  return nullptr;
}

}  // namespace vgr::sweep

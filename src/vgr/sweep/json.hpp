#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vgr::sweep {

/// Minimal JSON value for the sweep layer. Scope is deliberately narrow:
/// the only JSON parsed here is JSON this repo wrote (journal payloads,
/// manifests), so the parser favours exactness over generality — number
/// tokens keep their raw text so a %.17g-printed double or a full-width
/// uint64 round-trips bit-for-bit — and object members preserve insertion
/// order (no hash containers anywhere near result data; lint rule VGR003).
struct JsonValue {
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind{Kind::kNull};
  bool boolean{false};
  std::string number;  ///< raw token text of a kNumber (exact round-trip)
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Member lookup on a kObject; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  [[nodiscard]] double as_double(double fallback = 0.0) const;
  [[nodiscard]] std::uint64_t as_u64(std::uint64_t fallback = 0) const;

  /// Convenience: member `key` as a number, or `fallback` when missing.
  [[nodiscard]] double num(std::string_view key, double fallback = 0.0) const;
  [[nodiscard]] std::uint64_t u64(std::string_view key, std::uint64_t fallback = 0) const;
  [[nodiscard]] std::string text(std::string_view key, std::string_view fallback = "") const;
};

/// Parses one JSON document; nullopt on any syntax error or trailing junk.
std::optional<JsonValue> json_parse(std::string_view src);

/// Appends `v` formatted with %.17g (shortest exact double round-trip under
/// a correctly-rounded strtod, which glibc provides).
void json_append_double(std::string& out, double v);

/// Appends a quoted, escaped JSON string literal.
void json_append_string(std::string& out, std::string_view s);

}  // namespace vgr::sweep

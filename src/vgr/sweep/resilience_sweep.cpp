#include "vgr/sweep/resilience_sweep.hpp"

#include <cstdint>
#include <cstdio>

#include "vgr/mitigation/profiles.hpp"
#include "vgr/scenario/highway.hpp"
#include "vgr/sweep/ab_sweep.hpp"

namespace vgr::sweep {
namespace {

using scenario::AbResult;
using scenario::Fidelity;
using scenario::HighwayConfig;

struct Row {
  std::string axis;      // "loss" or "churn"
  double level;          // drop probability / crashes per second
  double recv_baseline;  // attacker-free reception
  double recv_attacked;  // attacked reception
  double gamma;          // interception rate, no mitigation
  double recv_mitigated; // attacked reception, both §V defenses
  double gamma_mitigated;
  double recv_recovered;  // attacker-free reception, SCF+retx+monitor on
  double gamma_recovered; // interception rate with the recovery layer on
};

std::string point_label(const char* axis, double level) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s-%.3f", axis, level);
  return buf;
}

Row run_point(Supervisor& sup, const HighwayConfig& cfg, const Fidelity& fidelity,
              const std::string& axis, double level) {
  Row row;
  row.axis = axis;
  row.level = level;
  const std::string label = point_label(axis.c_str(), level);

  const AbResult plain =
      run_ab_supervised(sup, Experiment::kInterArea, label + "-plain", cfg, fidelity).result;
  row.recv_baseline = plain.baseline_reception;
  row.recv_attacked = plain.attacked_reception;
  row.gamma = plain.attack_rate;

  HighwayConfig mitigated = cfg;
  mitigated.mitigation = mitigation::Profile::kFull;
  const AbResult guarded =
      run_ab_supervised(sup, Experiment::kInterArea, label + "-mitigated", mitigated, fidelity)
          .result;
  row.recv_mitigated = guarded.attacked_reception;
  row.gamma_mitigated = guarded.attack_rate;

  HighwayConfig recovered = cfg;
  recovered.recovery.scf = true;
  recovered.recovery.retx = true;
  recovered.recovery.nbr_monitor = true;
  const AbResult healed =
      run_ab_supervised(sup, Experiment::kInterArea, label + "-recovered", recovered, fidelity)
          .result;
  row.recv_recovered = healed.baseline_reception;
  row.gamma_recovered = healed.attack_rate;

  const auto timed_out =
      plain.timed_out_runs + guarded.timed_out_runs + healed.timed_out_runs;
  if (timed_out > 0) {
    std::fprintf(stderr, "  [watchdog] %llu run(s) stopped on the per-run budget\n",
                 static_cast<unsigned long long>(timed_out));
  }
  return row;
}

/// One point of the congestion sweep: the same flooder rate against a
/// MAC-enabled fleet with DCC off vs on. `recv_*` are honest (attacked-arm)
/// delivery rates; the counters are summed over every attacked run.
struct CongestionRow {
  double flood_hz;
  double recv_off;  // honest delivery, CSMA only
  double recv_on;   // honest delivery, CSMA + reactive DCC
  std::uint64_t retry_off, overflow_off;
  std::uint64_t retry_on, overflow_on, gated_on;
  double cbr_off, cbr_on;  // peak channel-busy ratio seen by any station
  std::uint64_t frames_flooded;
};

CongestionRow run_congestion_point(Supervisor& sup, const HighwayConfig& base,
                                   const Fidelity& fidelity, double flood_hz) {
  CongestionRow row{};
  row.flood_hz = flood_hz;
  const std::string label = point_label("flood", flood_hz);

  HighwayConfig cfg = base;
  cfg.attack = scenario::AttackKind::kCongestionFlood;
  cfg.flood_rate_hz = flood_hz;
  cfg.mac.enabled = true;
  // CAM-rate awareness beaconing (ETSI EN 302 637-2 upper rate) and 10 Hz
  // application traffic. The GN default of one beacon per 3 s leaves the
  // channel so idle that neither CSMA contention nor DCC pacing ever
  // engages; a realistic V2X channel carries 10 Hz awareness traffic, which
  // is the load DCC is specified against — and what the flooder's airtime
  // has to squeeze out. The short queue matches 802.11p-class hardware,
  // where latency-critical safety frames are never buffered deeply.
  cfg.beacon_interval = sim::Duration::seconds(0.1);
  cfg.packet_interval = sim::Duration::seconds(0.1);
  cfg.mac.queue_limit = 2;

  cfg.dcc.enabled = false;
  const AbResult off =
      run_ab_supervised(sup, Experiment::kInterArea, label + "-dccoff", cfg, fidelity).result;
  row.recv_off = off.attacked_reception;
  row.retry_off = off.attacked_totals.mac_retry_exhausted;
  row.overflow_off = off.attacked_totals.mac_queue_overflow;
  row.cbr_off = off.attacked_totals.peak_cbr;

  cfg.dcc.enabled = true;
  const AbResult on =
      run_ab_supervised(sup, Experiment::kInterArea, label + "-dccon", cfg, fidelity).result;
  row.recv_on = on.attacked_reception;
  row.retry_on = on.attacked_totals.mac_retry_exhausted;
  row.overflow_on = on.attacked_totals.mac_queue_overflow;
  row.gated_on = on.attacked_totals.mac_dcc_gated;
  row.cbr_on = on.attacked_totals.peak_cbr;
  row.frames_flooded = on.attacked_totals.frames_flooded;
  return row;
}

void print_congestion_row(const CongestionRow& r) {
  std::printf("  flood %7.0f Hz  dcc-off: recv=%6.3f cbr=%.2f retry=%llu ovfl=%llu   "
              "dcc-on: recv=%6.3f cbr=%.2f retry=%llu ovfl=%llu gated=%llu\n",
              r.flood_hz, r.recv_off, r.cbr_off,
              static_cast<unsigned long long>(r.retry_off),
              static_cast<unsigned long long>(r.overflow_off), r.recv_on, r.cbr_on,
              static_cast<unsigned long long>(r.retry_on),
              static_cast<unsigned long long>(r.overflow_on),
              static_cast<unsigned long long>(r.gated_on));
}

void print_row(const Row& r) {
  std::printf("  %-7s %-8.3f recv_af=%6.3f recv_atk=%6.3f gamma=%6.1f%%  "
              "recv_mit=%6.3f gamma_mit=%6.1f%%  recv_rec=%6.3f gamma_rec=%6.1f%%\n",
              r.axis.c_str(), r.level, r.recv_baseline, r.recv_attacked, r.gamma * 100.0,
              r.recv_mitigated, r.gamma_mitigated * 100.0, r.recv_recovered,
              r.gamma_recovered * 100.0);
}

}  // namespace

int run_resilience_sweep(Supervisor& sup, Fidelity f, const ResilienceSelection& selection,
                         const std::string& json_path) {
  std::vector<Row> rows;

  // --- Sweep 1: channel loss ----------------------------------------------
  if (!selection.loss.empty()) {
    std::printf("\n[1] Channel-loss sweep (frame drop + link loss + corruption, GE bursts)\n");
  }
  for (const double drop : selection.loss) {
    HighwayConfig cfg;
    cfg.attack = scenario::AttackKind::kInterArea;
    cfg.faults.drop_probability = drop;
    cfg.faults.link_loss_probability = drop / 2.0;
    cfg.faults.corrupt_probability = drop / 4.0;
    if (drop >= 0.2) {
      // Upper settings add a burst component: ~5-frame bad states in which
      // everything is lost, entered roughly every hundred frames.
      cfg.faults.ge_p_good_to_bad = 0.01;
      cfg.faults.ge_p_bad_to_good = 0.2;
    }
    rows.push_back(run_point(sup, cfg, f, "loss", drop));
    print_row(rows.back());
  }

  // --- Sweep 2: node churn ------------------------------------------------
  if (!selection.churn.empty()) {
    std::printf("\n[2] Churn sweep (fleet-wide crash rate, 2 s downtime, always reboot)\n");
  }
  for (const double rate : selection.churn) {
    HighwayConfig cfg;
    cfg.attack = scenario::AttackKind::kInterArea;
    cfg.churn.crash_rate_hz = rate;
    cfg.churn.downtime_s = 2.0;
    rows.push_back(run_point(sup, cfg, f, "churn", rate));
    print_row(rows.back());
  }

  // --- Sweep 3: channel congestion ---------------------------------------
  if (!selection.flood.empty()) {
    std::printf("\n[3] Congestion sweep (replay flooder vs CSMA/CA, DCC off/on)\n");
  }
  std::vector<CongestionRow> congestion;
  for (const double hz : selection.flood) {
    HighwayConfig cfg;
    congestion.push_back(run_congestion_point(sup, cfg, f, hz));
    print_congestion_row(congestion.back());
  }

  sup.finish();

  // --- JSON artifact ------------------------------------------------------
  // Result sections first, supervisor health block strictly last: resumed
  // and uninterrupted runs of the same sweep agree byte for byte on
  // everything before the `"supervisor"` key (the kill-and-resume test's
  // comparison prefix), while the health counters legitimately differ.
  std::FILE* fjson = std::fopen(json_path.c_str(), "w");
  if (fjson == nullptr) {
    std::fprintf(stderr, "bench_resilience: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(fjson, "{\n  \"runs\": %llu,\n  \"sim_seconds\": %.1f,\n  \"points\": [\n",
               static_cast<unsigned long long>(f.runs), f.sim_seconds);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(fjson,
                 "    {\"axis\": \"%s\", \"level\": %.3f, \"recv_baseline\": %.17g, "
                 "\"recv_attacked\": %.17g, \"gamma\": %.17g, \"recv_mitigated\": %.17g, "
                 "\"gamma_mitigated\": %.17g, \"recv_recovered\": %.17g, "
                 "\"gamma_recovered\": %.17g}%s\n",
                 r.axis.c_str(), r.level, r.recv_baseline, r.recv_attacked, r.gamma,
                 r.recv_mitigated, r.gamma_mitigated, r.recv_recovered, r.gamma_recovered,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(fjson, "  ],\n  \"congestion\": [\n");
  for (std::size_t i = 0; i < congestion.size(); ++i) {
    const CongestionRow& r = congestion[i];
    std::fprintf(fjson,
                 "    {\"flood_hz\": %.0f, \"recv_dcc_off\": %.17g, \"recv_dcc_on\": %.17g, "
                 "\"peak_cbr_off\": %.17g, \"peak_cbr_on\": %.17g, "
                 "\"retry_exhausted_off\": %llu, \"queue_overflow_off\": %llu, "
                 "\"retry_exhausted_on\": %llu, \"queue_overflow_on\": %llu, "
                 "\"dcc_gated_on\": %llu, \"frames_flooded\": %llu}%s\n",
                 r.flood_hz, r.recv_off, r.recv_on, r.cbr_off, r.cbr_on,
                 static_cast<unsigned long long>(r.retry_off),
                 static_cast<unsigned long long>(r.overflow_off),
                 static_cast<unsigned long long>(r.retry_on),
                 static_cast<unsigned long long>(r.overflow_on),
                 static_cast<unsigned long long>(r.gated_on),
                 static_cast<unsigned long long>(r.frames_flooded),
                 i + 1 < congestion.size() ? "," : "");
  }
  const SweepCounters& c = sup.counters();
  std::fprintf(fjson,
               "  ],\n  \"supervisor\": {\"enabled\": %s, \"shards\": %llu, "
               "\"completed\": %llu, \"resumed\": %llu, \"retries\": %llu, "
               "\"degraded\": %llu, \"quarantined_events\": %llu, "
               "\"quarantined_wall\": %llu, \"quarantined_error\": %llu, "
               "\"drained\": %llu, \"timed_out_events\": %llu, \"timed_out_wall\": %llu}\n",
               sup.enabled() ? "true" : "false",
               static_cast<unsigned long long>(c.shards),
               static_cast<unsigned long long>(c.completed),
               static_cast<unsigned long long>(c.resumed),
               static_cast<unsigned long long>(c.retries),
               static_cast<unsigned long long>(c.degraded),
               static_cast<unsigned long long>(c.quarantined_events),
               static_cast<unsigned long long>(c.quarantined_wall),
               static_cast<unsigned long long>(c.quarantined_error),
               static_cast<unsigned long long>(c.drained),
               static_cast<unsigned long long>(c.timed_out_events),
               static_cast<unsigned long long>(c.timed_out_wall));
  std::fprintf(fjson, "}\n");
  std::fclose(fjson);
  std::printf("\nwrote %s\n", json_path.c_str());
  if (Supervisor::drain_requested() || c.drained > 0) {
    std::printf("drained: %llu shard(s) deferred; resume with VGR_SWEEP_RESUME=1 or "
                "`vgr_sweep resume`\n",
                static_cast<unsigned long long>(c.drained));
  }
  return 0;
}

}  // namespace vgr::sweep

#include "vgr/sweep/ab_sweep.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "vgr/sweep/ab_codec.hpp"

namespace vgr::sweep {
namespace {

using scenario::AbResult;
using scenario::Fidelity;
using scenario::HighwayConfig;

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

AbResult run_point(Experiment experiment, const HighwayConfig& config,
                   const Fidelity& fidelity) {
  return experiment == Experiment::kInterArea
             ? scenario::run_inter_area_ab(config, fidelity)
             : scenario::run_intra_area_ab(config, fidelity);
}

/// All-zero result with the point's bin geometry, for fully-missing points.
AbResult empty_point(const HighwayConfig& config, const Fidelity& fidelity) {
  const sim::Duration bin = sim::Duration::seconds(5.0);  // ab_runner's kBin
  sim::Duration horizon = config.sim_duration;
  if (fidelity.sim_seconds > 0.0) horizon = sim::Duration::seconds(fidelity.sim_seconds);
  return AbResult{sim::BinnedRate{bin, horizon}, sim::BinnedRate{bin, horizon}};
}

}  // namespace

std::string shard_key(const std::string& label, Experiment experiment,
                      const Fidelity& fidelity, std::uint64_t first_run,
                      std::uint64_t runs) {
  char params[160];
  std::snprintf(params, sizeof params, "exp=%d;runs=%llu;sim=%.17g;events=%llu;wall=%.17g",
                experiment == Experiment::kInterArea ? 0 : 1,
                static_cast<unsigned long long>(fidelity.runs), fidelity.sim_seconds,
                static_cast<unsigned long long>(fidelity.run_max_events),
                fidelity.run_wall_budget_s);
  char suffix[96];
  std::snprintf(suffix, sizeof suffix, "#s%llu+%llu@%016llx",
                static_cast<unsigned long long>(first_run),
                static_cast<unsigned long long>(runs),
                static_cast<unsigned long long>(fnv1a64(label + "|" + params)));
  return label + suffix;
}

SupervisedAb run_ab_supervised(Supervisor& supervisor, Experiment experiment,
                               const std::string& label, const HighwayConfig& config,
                               const Fidelity& fidelity) {
  if (!supervisor.enabled()) {
    return SupervisedAb{run_point(experiment, config, fidelity), 1, 0};
  }

  const std::uint64_t total_runs = fidelity.runs;
  std::uint64_t chunk = supervisor.config().seed_chunk;
  if (chunk == 0 || chunk > total_runs) chunk = total_runs;

  SupervisedAb out{empty_point(config, fidelity), 0, 0};
  std::vector<std::string> payloads;
  for (std::uint64_t first = 0; first < total_runs; first += chunk) {
    const std::uint64_t shard_runs = std::min(chunk, total_runs - first);
    ShardSpec spec;
    spec.first_run = fidelity.first_run + first;
    spec.runs = shard_runs;
    spec.key = shard_key(label, experiment, fidelity, spec.first_run, shard_runs);
    ++out.shards;

    auto payload = supervisor.run_shard(
        spec, [&](const ShardSpec& s, const ShardEffort& effort) {
          Fidelity f = fidelity;
          f.first_run = s.first_run;
          f.runs = effort.runs;
          if (effort.run_max_events > 0) f.run_max_events = effort.run_max_events;
          if (effort.run_wall_budget_s > 0.0) f.run_wall_budget_s = effort.run_wall_budget_s;
          const AbResult r = run_point(experiment, config, f);
          ShardOutcome outcome;
          outcome.payload = encode_ab(r);
          outcome.timed_out_events = r.timed_out_events;
          outcome.timed_out_wall = r.timed_out_wall;
          return outcome;
        });
    if (payload.has_value()) {
      payloads.push_back(std::move(*payload));
    } else {
      ++out.missing;
    }
  }

  if (!payloads.empty()) {
    if (auto merged = merge_ab_payloads(payloads); merged.has_value()) {
      out.result = std::move(*merged);
    } else {
      // A payload that decodes badly is as good as missing; keep the zeros.
      std::fprintf(stderr, "[sweep] point %s: undecodable journal payload, dropping\n",
                   label.c_str());
      out.missing = out.shards;
    }
  }
  return out;
}

}  // namespace vgr::sweep

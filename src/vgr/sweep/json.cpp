#include "vgr/sweep/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace vgr::sweep {
namespace {

struct Parser {
  std::string_view src;
  std::size_t pos{0};
  bool failed{false};

  void skip_ws() {
    while (pos < src.size()) {
      const char c = src[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  [[nodiscard]] char peek() const { return pos < src.size() ? src[pos] : '\0'; }

  bool consume(char c) {
    if (peek() != c) {
      failed = true;
      return false;
    }
    ++pos;
    return true;
  }

  bool literal(std::string_view word) {
    if (src.substr(pos, word.size()) != word) {
      failed = true;
      return false;
    }
    pos += word.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    JsonValue v;
    if (failed) return v;
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.str = parse_string();
      return v;
    }
    if (c == 't') {
      literal("true");
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (c == 'f') {
      literal("false");
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (c == 'n') {
      literal("null");
      return v;
    }
    return parse_number();
  }

  std::string parse_string() {
    std::string out;
    if (!consume('"')) return out;
    while (pos < src.size() && src[pos] != '"') {
      char c = src[pos++];
      if (c == '\\' && pos < src.size()) {
        const char e = src[pos++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case '"':
          case '\\':
          case '/': c = e; break;
          default:
            // \uXXXX and anything else: out of scope for self-written JSON.
            failed = true;
            return out;
        }
      }
      out.push_back(c);
    }
    consume('"');
    return out;
  }

  JsonValue parse_number() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const std::size_t start = pos;
    if (peek() == '-' || peek() == '+') ++pos;
    while (pos < src.size()) {
      const char c = src[pos];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '.' || c == 'e' ||
          c == 'E' || c == '-' || c == '+') {
        ++pos;
        continue;
      }
      break;
    }
    if (pos == start) failed = true;
    v.number = std::string{src.substr(start, pos - start)};
    return v;
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    consume('[');
    skip_ws();
    if (peek() == ']') {
      ++pos;
      return v;
    }
    while (!failed) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos;
        continue;
      }
      consume(']');
      break;
    }
    return v;
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    consume('{');
    skip_ws();
    if (peek() == '}') {
      ++pos;
      return v;
    }
    while (!failed) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      consume(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos;
        continue;
      }
      consume('}');
      break;
    }
    return v;
  }
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::as_double(double fallback) const {
  if (kind != Kind::kNumber || number.empty()) return fallback;
  return std::strtod(number.c_str(), nullptr);
}

std::uint64_t JsonValue::as_u64(std::uint64_t fallback) const {
  if (kind != Kind::kNumber || number.empty()) return fallback;
  return std::strtoull(number.c_str(), nullptr, 10);
}

double JsonValue::num(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr ? v->as_double(fallback) : fallback;
}

std::uint64_t JsonValue::u64(std::string_view key, std::uint64_t fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr ? v->as_u64(fallback) : fallback;
}

std::string JsonValue::text(std::string_view key, std::string_view fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->kind != Kind::kString) return std::string{fallback};
  return v->str;
}

std::optional<JsonValue> json_parse(std::string_view src) {
  Parser p{src};
  JsonValue v = p.parse_value();
  p.skip_ws();
  if (p.failed || p.pos != src.size()) return std::nullopt;
  return v;
}

void json_append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void json_append_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  out.push_back('"');
}

}  // namespace vgr::sweep

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "vgr/scenario/ab_runner.hpp"

namespace vgr::sweep {

/// Serializes a merged A/B result into one JSON object — the sweep journal
/// payload. Every accumulator is carried raw (bin hits/trials, the packet-
/// weighted reception sums, the per-arm drop totals) and doubles are
/// printed with %.17g, so decode(encode(r)) reproduces `r` bit for bit.
std::string encode_ab(const scenario::AbResult& result);

/// Inverse of encode_ab; nullopt on malformed or incomplete payloads
/// (which a journal checksum pass should already have excluded).
std::optional<scenario::AbResult> decode_ab(std::string_view payload);

/// Reassembles one sweep point from its seed-range shard payloads, in
/// shard order. A single payload is decoded verbatim (a one-chunk
/// supervised point is bit-identical to the monolithic run); multiple
/// payloads merge bins and totals, then recompute the derived rates
/// (attack_rate, receptions) the same way ab_runner does. Shards that
/// failed to decode or were quarantined must be dropped by the caller
/// first; an empty list yields nullopt.
std::optional<scenario::AbResult> merge_ab_payloads(
    const std::vector<std::string>& payloads);

}  // namespace vgr::sweep

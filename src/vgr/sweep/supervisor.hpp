#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "vgr/sweep/journal.hpp"

namespace vgr::sweep {

/// One unit of supervised work: a sweep point restricted to a seed range.
/// Runs execute with seeds `first_run+1 .. first_run+runs` (the ab_runner
/// contract), so chunking a point by seed range and merging the shard
/// results reproduces the monolithic run bit for bit.
struct ShardSpec {
  std::string key;  ///< stable identity, also the journal lookup key
  std::uint64_t first_run{0};
  std::uint64_t runs{1};
};

/// Execution budget the supervisor hands to a shard attempt. The degraded
/// rung halves `runs` (min 1) and the event budget so a shard that cannot
/// finish at full fidelity can still contribute a flagged partial result.
struct ShardEffort {
  std::uint64_t runs{1};
  std::uint64_t run_max_events{0};   ///< per-run event watchdog; 0 = off
  double run_wall_budget_s{0.0};     ///< per-run wall watchdog; 0 = off
  bool degraded{false};
};

/// What one shard attempt produced. `payload` is an opaque JSON value the
/// supervisor journals verbatim; the timeout counters drive the ladder
/// (an attempt is clean only when no run tripped a watchdog and no
/// exception escaped the shard function).
struct ShardOutcome {
  std::string payload;
  std::uint64_t timed_out_events{0};
  std::uint64_t timed_out_wall{0};
  bool error{false};

  [[nodiscard]] bool clean() const {
    return !error && timed_out_events == 0 && timed_out_wall == 0;
  }
};

/// Supervisor knobs, all environment-overridable (docs/robustness.md):
///   VGR_SWEEP             — 1 enables the supervised path (default off)
///   VGR_SWEEP_JOURNAL     — journal file path (default "sweep.journal")
///   VGR_SWEEP_RESUME      — 1 resumes: journaled shards are not re-run
///   VGR_SWEEP_RETRIES     — full-fidelity retries per shard (default 2)
///   VGR_SWEEP_BACKOFF_MS  — base retry backoff, doubled per retry (50)
///   VGR_SWEEP_MAX_EVENTS  — per-run event watchdog for shards (0 = off)
///   VGR_SWEEP_TIMEOUT_S   — per-run wall watchdog for shards (0 = off)
///   VGR_SWEEP_SEED_CHUNK  — seeds per shard (0 = one shard per point)
///   VGR_SWEEP_FAULT_AFTER — crash-test hook: raise(SIGKILL) after this
///                           many journal appends (< 0 = disabled)
/// Numeric values go through the whole-token sim::env_* parsers; malformed
/// input warns on stderr and keeps the default.
struct SupervisorConfig {
  bool enabled{false};
  std::string journal_path{"sweep.journal"};
  bool resume{false};
  std::uint64_t max_retries{2};
  double backoff_ms{50.0};
  std::uint64_t run_max_events{0};
  double run_wall_budget_s{0.0};
  std::uint64_t seed_chunk{0};
  long long fault_after_appends{-1};

  static SupervisorConfig from_env();
};

/// Sweep-level health counters, reported in the bench JSON `supervisor`
/// block so a study's output says how it was obtained, not just what.
struct SweepCounters {
  std::uint64_t shards{0};      ///< shards presented to run_shard
  std::uint64_t completed{0};   ///< shards that produced a payload
  std::uint64_t resumed{0};     ///< shards satisfied from the journal
  std::uint64_t retries{0};     ///< extra full-fidelity attempts spent
  std::uint64_t degraded{0};    ///< shards that fell to the degraded rung
  std::uint64_t quarantined_events{0};
  std::uint64_t quarantined_wall{0};
  std::uint64_t quarantined_error{0};
  std::uint64_t drained{0};     ///< shards skipped by SIGINT/SIGTERM drain
  std::uint64_t timed_out_events{0};  ///< arm watchdog trips, all attempts
  std::uint64_t timed_out_wall{0};

  [[nodiscard]] std::uint64_t quarantined() const {
    return quarantined_events + quarantined_wall + quarantined_error;
  }
};

/// Crash-resilient sweep executor: journals every finished shard (fsync'd,
/// checksummed), resumes by journal lookup, retries failing shards with
/// exponential backoff, degrades fidelity when retries are exhausted, and
/// quarantines shards that fail even degraded — all while SIGINT/SIGTERM
/// request a graceful drain instead of killing the study mid-shard.
///
/// With `config.enabled == false` the supervisor is transparent: run_shard
/// executes the shard function once, full fidelity, no journal, no signal
/// handlers — the unsupervised benches stay byte-identical.
class Supervisor {
 public:
  using ShardFn = std::function<ShardOutcome(const ShardSpec&, const ShardEffort&)>;

  explicit Supervisor(SupervisorConfig config);
  ~Supervisor();
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;
  Supervisor(Supervisor&&) = delete;
  Supervisor& operator=(Supervisor&&) = delete;

  /// False when the journal could not be opened (supervised mode only).
  [[nodiscard]] bool ok() const { return !config_.enabled || journal_.has_value(); }
  [[nodiscard]] bool enabled() const { return config_.enabled; }
  [[nodiscard]] const SupervisorConfig& config() const { return config_; }
  [[nodiscard]] const SweepCounters& counters() const { return counters_; }
  [[nodiscard]] const Journal* journal() const {
    return journal_.has_value() ? &*journal_ : nullptr;
  }
  /// True once SIGINT/SIGTERM asked for a drain (or a test forced one).
  [[nodiscard]] static bool drain_requested();
  /// Test hook: behave as if SIGINT had arrived.
  static void request_drain();
  /// Test hook: clear the process-wide drain flag (a real process never
  /// un-drains; tests need the flag back down between cases).
  static void reset_drain();

  /// Runs one shard through the ladder. Returns the payload JSON text;
  /// nullopt when the shard was quarantined (now or in the journal) or
  /// skipped because a drain was requested.
  std::optional<std::string> run_shard(const ShardSpec& spec, const ShardFn& fn);

  /// Flushes the resumable manifest (`<journal>.manifest`). Called by the
  /// destructor too; explicit calls let benches write it before reporting.
  void finish();

 private:
  std::optional<std::string> resume_from(const JournalRecord& rec);
  void record(const ShardSpec& spec, const ShardOutcome& outcome,
              const ShardEffort& effort, std::uint64_t attempts, const char* cause);
  void maybe_fault();
  void write_manifest() const;

  SupervisorConfig config_;
  std::optional<Journal> journal_;
  SweepCounters counters_;
  std::uint64_t appends_{0};
  bool signals_installed_{false};
  void (*old_sigint_)(int){nullptr};
  void (*old_sigterm_)(int){nullptr};
};

}  // namespace vgr::sweep

#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vgr::sweep {

/// One completed (or quarantined) sweep shard, as recorded in the journal.
/// `payload` is the shard's serialized result — an opaque JSON value the
/// journal neither interprets nor reorders, so a resumed sweep merges the
/// exact bytes the original run produced.
struct JournalRecord {
  std::string shard;     ///< stable shard key (see shard_key in ab_sweep.hpp)
  std::string status;    ///< "done" or "quarantined"
  std::string fidelity;  ///< "full" or "degraded" (halved runs / tighter budget)
  std::uint64_t attempts{1};  ///< executions the supervisor spent on the shard
  std::string cause;     ///< last failure cause: "none", "events", "wall", "error"
  std::string payload;   ///< JSON value text; "null" for quarantined shards
};

/// Append-only, checksummed JSONL journal of completed sweep shards.
///
/// Line format (one record per line, written atomically then fsync'd):
///
///   {"crc":"xxxxxxxx","shard":"...","status":"done","fidelity":"full",
///    "attempts":1,"cause":"none","payload":{...}}
///
/// The 8-hex `crc` is the CRC-32 (IEEE, reflected) of everything after the
/// fixed 18-byte `{"crc":"xxxxxxxx",` prefix up to and including the final
/// `}`. A crash can only tear the *final* line (appends are sequential and
/// each is flushed + fsync'd before the next begins), so recovery on reopen
/// is truncation: the file is cut at the end of the last line whose checksum
/// verifies, never rejected. `payload` is always the last field, which lets
/// the decoder lift its raw text verbatim instead of re-serializing.
class Journal {
 public:
  Journal() = default;
  ~Journal();
  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&& other) noexcept;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Opens `path` for appending, creating it if absent. Existing content is
  /// validated record by record; a torn or corrupt tail is truncated away
  /// (see truncated_bytes). Returns nullopt only when the file cannot be
  /// opened or truncated at all.
  static std::optional<Journal> open(const std::string& path);

  /// Parses `path` without modifying it (the `vgr_sweep status` view):
  /// valid-prefix records, plus the trailing byte count an open() would
  /// truncate via `torn_bytes` when non-null.
  static std::vector<JournalRecord> scan(const std::string& path,
                                         std::size_t* torn_bytes = nullptr);

  /// Appends one record and flushes it to disk (fflush + fsync) before
  /// returning, so a SIGKILL after append() can never lose the shard.
  void append(const JournalRecord& rec);

  [[nodiscard]] const std::vector<JournalRecord>& records() const { return records_; }
  [[nodiscard]] const JournalRecord* find(std::string_view shard) const;
  /// Bytes cut from the tail while recovering at open().
  [[nodiscard]] std::size_t truncated_bytes() const { return truncated_bytes_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] bool is_open() const { return file_ != nullptr; }
  void close();

 private:
  std::string path_;
  std::FILE* file_{nullptr};
  std::vector<JournalRecord> records_;
  std::size_t truncated_bytes_{0};
};

/// CRC-32 (IEEE 802.3 polynomial, reflected) — the journal line checksum.
std::uint32_t crc32(std::string_view data);

/// Serializes `rec` into one journal line, including the crc field and the
/// trailing newline.
std::string encode_record(const JournalRecord& rec);

/// Decodes one journal line (without requiring the trailing newline);
/// nullopt on malformed framing or checksum mismatch.
std::optional<JournalRecord> decode_record(std::string_view line);

}  // namespace vgr::sweep

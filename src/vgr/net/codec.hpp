#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "vgr/net/packet.hpp"

namespace vgr::net {

/// Little-endian byte writer used by the codec and by the security layer to
/// produce the exact byte string a signature covers.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void bytes(const Bytes& b);  ///< length-prefixed (u32)

  [[nodiscard]] const Bytes& data() const { return out_; }
  [[nodiscard]] Bytes take() { return std::move(out_); }

 private:
  Bytes out_;
};

/// Matching reader; every accessor returns nullopt on truncation so corrupt
/// frames decode to an error instead of UB.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& in) : in_{in} {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint16_t> u16();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  std::optional<double> f64();
  std::optional<Bytes> bytes();

  [[nodiscard]] bool exhausted() const { return pos_ == in_.size(); }

 private:
  const Bytes& in_;
  std::size_t pos_{0};
};

/// Wire codec for GeoNetworking packets.
///
/// `encode_signed_portion` serialises exactly the integrity-protected part
/// (common header + extended header + payload) — the Basic Header, and thus
/// the RHL, is deliberately excluded, mirroring the standard's security
/// envelope. `encode` prepends the Basic Header for full-frame encoding.
struct Codec {
  static Bytes encode_signed_portion(const Packet& p);
  static Bytes encode(const Packet& p);
  static std::optional<Packet> decode(const Bytes& wire);

  /// Size of the full encoding in bytes, used for airtime computation.
  static std::size_t wire_size(const Packet& p);
};

}  // namespace vgr::net

#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "vgr/net/packet.hpp"

namespace vgr::net {

/// Hard ceiling on any length-prefixed chunk on the wire. A GeoNetworking
/// frame is bounded by the access-layer MTU (~1500 B for both DSRC and
/// C-V2X); 16 KiB leaves generous headroom for every header combination
/// while guaranteeing that a hostile u32 length prefix in a 3-byte frame
/// can never request a 4 GiB allocation.
inline constexpr std::size_t kMaxChunkBytes = 16 * 1024;

/// Ceiling on the application payload carried by one packet (the GN MTU
/// minus headers, rounded up). Enforced both at decode time and at router
/// ingest so oversized payloads are counted-and-dropped, never forwarded.
inline constexpr std::size_t kMaxPayloadBytes = 2048;

/// Little-endian byte writer used by the codec and by the security layer to
/// produce the exact byte string a signature covers.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void bytes(const Bytes& b);  ///< length-prefixed (u32)

  [[nodiscard]] const Bytes& data() const { return out_; }
  [[nodiscard]] Bytes take() { return std::move(out_); }

 private:
  Bytes out_;
};

/// Matching reader; every accessor returns nullopt on truncation so corrupt
/// frames decode to an error instead of UB.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& in) : in_{in} {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint16_t> u16();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  std::optional<double> f64();
  /// Length-prefixed chunk. The length is validated against both the bytes
  /// actually remaining and `kMaxChunkBytes` *before* any allocation, so a
  /// hostile prefix cannot trigger a huge buffer or an overflowing index.
  std::optional<Bytes> bytes();

  [[nodiscard]] bool exhausted() const { return pos_ == in_.size(); }

 private:
  const Bytes& in_;
  std::size_t pos_{0};
};

/// Wire codec for GeoNetworking packets.
///
/// `encode_signed_portion` serialises exactly the integrity-protected part
/// (common header + extended header + payload) — the Basic Header, and thus
/// the RHL, is deliberately excluded, mirroring the standard's security
/// envelope. `encode` prepends the Basic Header for full-frame encoding.
struct Codec {
  static Bytes encode_signed_portion(const Packet& p);
  static Bytes encode(const Packet& p);
  static std::optional<Packet> decode(const Bytes& wire);

  /// Size of `encode_signed_portion(p)` in bytes, computed arithmetically
  /// from the header kind and payload length — no serialization, no
  /// allocation. Pinned equal to the real encoding for every header type by
  /// net_codec_test.
  static std::size_t signed_portion_size(const Packet& p);

  /// Size of the full encoding in bytes, used for airtime computation.
  /// Arithmetic for the same reason as `signed_portion_size`.
  static std::size_t wire_size(const Packet& p);
};

}  // namespace vgr::net

#include "vgr/net/address.hpp"

#include <cstdio>

namespace vgr::net {

std::string to_string(MacAddress a) {
  char buf[24];
  const std::uint64_t b = a.bits();
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x",
                static_cast<unsigned>((b >> 40) & 0xFF), static_cast<unsigned>((b >> 32) & 0xFF),
                static_cast<unsigned>((b >> 24) & 0xFF), static_cast<unsigned>((b >> 16) & 0xFF),
                static_cast<unsigned>((b >> 8) & 0xFF), static_cast<unsigned>(b & 0xFF));
  return buf;
}

std::string to_string(GnAddress a) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "gn:%u/%s", static_cast<unsigned>(a.station_type()),
                to_string(a.mac()).c_str());
  return buf;
}

}  // namespace vgr::net

#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace vgr::net {

/// 48-bit link-layer (access layer) address. The broadcast address is all
/// ones, as in IEEE 802. MAC addresses are *not* authenticated by the
/// GeoNetworking security envelope, which the attacks rely on.
class MacAddress {
 public:
  constexpr MacAddress() = default;
  constexpr explicit MacAddress(std::uint64_t bits) : bits_{bits & kMask} {}

  static constexpr MacAddress broadcast() { return MacAddress{kMask}; }

  [[nodiscard]] constexpr std::uint64_t bits() const { return bits_; }
  [[nodiscard]] constexpr bool is_broadcast() const { return bits_ == kMask; }

  friend constexpr bool operator==(MacAddress, MacAddress) = default;

 private:
  static constexpr std::uint64_t kMask = 0xFFFF'FFFF'FFFFULL;
  std::uint64_t bits_{0};
};

/// GeoNetworking address (GN_ADDR). Per ETSI EN 302 636-4-1 it embeds the
/// station type and the link-layer address; we keep the embedding so a
/// node's MAC is recoverable from any signed position vector.
class GnAddress {
 public:
  enum class StationType : std::uint8_t {
    kUnknown = 0,
    kPassengerCar = 5,
    kRoadSideUnit = 15,
  };

  constexpr GnAddress() = default;
  constexpr GnAddress(StationType type, MacAddress mac)
      : bits_{(static_cast<std::uint64_t>(type) << 48) | mac.bits()} {}

  [[nodiscard]] constexpr std::uint64_t bits() const { return bits_; }
  [[nodiscard]] constexpr StationType station_type() const {
    return static_cast<StationType>((bits_ >> 48) & 0x1F);
  }
  [[nodiscard]] constexpr MacAddress mac() const {
    return MacAddress{bits_ & 0xFFFF'FFFF'FFFFULL};
  }
  [[nodiscard]] constexpr bool is_unset() const { return bits_ == 0; }

  static constexpr GnAddress from_bits(std::uint64_t bits) {
    GnAddress a;
    a.bits_ = bits;
    return a;
  }

  friend constexpr bool operator==(GnAddress, GnAddress) = default;

 private:
  std::uint64_t bits_{0};
};

std::string to_string(MacAddress a);
std::string to_string(GnAddress a);

}  // namespace vgr::net

template <>
struct std::hash<vgr::net::MacAddress> {
  std::size_t operator()(vgr::net::MacAddress a) const noexcept {
    return std::hash<std::uint64_t>{}(a.bits());
  }
};

template <>
struct std::hash<vgr::net::GnAddress> {
  std::size_t operator()(vgr::net::GnAddress a) const noexcept {
    return std::hash<std::uint64_t>{}(a.bits());
  }
};

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "vgr/geo/area.hpp"
#include "vgr/net/address.hpp"
#include "vgr/net/position_vector.hpp"

namespace vgr::net {

using Bytes = std::vector<std::uint8_t>;
using SequenceNumber = std::uint16_t;

/// Basic Header (ETSI EN 302 636-4-1 §9.6). Crucially this header — and the
/// Remaining Hop Limit (RHL) it carries — sits *outside* the security
/// envelope, so forwarders can decrement RHL without re-signing. That design
/// choice is vulnerability #3 of the paper: an attacker may rewrite RHL on a
/// captured packet without invalidating the source's signature.
struct BasicHeader {
  std::uint8_t version{1};
  std::uint8_t remaining_hop_limit{10};
  sim::Duration lifetime{sim::Duration::seconds(60.0)};

  friend bool operator==(const BasicHeader&, const BasicHeader&) = default;
};

/// Common Header (ETSI §9.7) — integrity protected.
struct CommonHeader {
  enum class HeaderType : std::uint8_t {
    kBeacon = 1,
    kGeoUnicast = 2,
    kGeoAnycast = 3,
    kGeoBroadcast = 4,
    kTopoBroadcast = 5,
    kSingleHopBroadcast = 6,
    kLsRequest = 7,
    kLsReply = 8,
    kAck = 9,
  };

  HeaderType type{HeaderType::kBeacon};
  std::uint8_t traffic_class{0};
  std::uint8_t max_hop_limit{10};

  friend bool operator==(const CommonHeader&, const CommonHeader&) = default;
};

/// Extended header for beacons: just the sender's LPV.
struct BeaconHeader {
  LongPositionVector source_pv{};
  friend bool operator==(const BeaconHeader&, const BeaconHeader&) = default;
};

/// Extended header for GeoBroadcast: source PV, sequence number (duplicate
/// detection key together with the source address) and the destination area.
struct GbcHeader {
  SequenceNumber sequence_number{0};
  LongPositionVector source_pv{};
  geo::GeoArea area{geo::GeoArea::circle({}, 1.0)};
  friend bool operator==(const GbcHeader&, const GbcHeader&) = default;
};

/// Extended header for GeoAnycast: same shape as GBC, but the packet is
/// consumed by the *first* station inside the area instead of flooded.
struct GacHeader {
  SequenceNumber sequence_number{0};
  LongPositionVector source_pv{};
  geo::GeoArea area{geo::GeoArea::circle({}, 1.0)};
  friend bool operator==(const GacHeader&, const GacHeader&) = default;
};

/// Extended header for GeoUnicast.
struct GucHeader {
  SequenceNumber sequence_number{0};
  LongPositionVector source_pv{};
  ShortPositionVector destination{};
  friend bool operator==(const GucHeader&, const GucHeader&) = default;
};

/// Topologically-scoped broadcast (TSB, ETSI §9.8.6): n-hop flooding with
/// duplicate suppression, no geographic target.
struct TsbHeader {
  SequenceNumber sequence_number{0};
  LongPositionVector source_pv{};
  friend bool operator==(const TsbHeader&, const TsbHeader&) = default;
};

/// Single-hop broadcast (SHB, ETSI §9.8.7): the transport CAMs ride on.
/// Never forwarded; like a beacon but with a payload.
struct ShbHeader {
  LongPositionVector source_pv{};
  friend bool operator==(const ShbHeader&, const ShbHeader&) = default;
};

/// Location Service request (ETSI §10.2.2): hop-limited flood asking for
/// the position of `target`; the target answers with an LS reply.
struct LsRequestHeader {
  SequenceNumber sequence_number{0};
  LongPositionVector source_pv{};
  GnAddress target{};
  friend bool operator==(const LsRequestHeader&, const LsRequestHeader&) = default;
};

/// Location Service reply: unicast back to the requester, carrying the
/// target's own PV as the source PV.
struct LsReplyHeader {
  SequenceNumber sequence_number{0};
  LongPositionVector source_pv{};
  ShortPositionVector destination{};  ///< the original requester
  friend bool operator==(const LsReplyHeader&, const LsReplyHeader&) = default;
};

/// Link-layer-style forwarding acknowledgement (extension, not ETSI): sent
/// back to the previous hop when `RouterConfig::gf_ack` is enabled. Used to
/// quantify the ACK alternative the paper's §V-A dismisses.
struct AckHeader {
  LongPositionVector source_pv{};
  GnAddress acked_source{};             ///< source of the acknowledged packet
  SequenceNumber acked_sequence{0};     ///< its sequence number
  friend bool operator==(const AckHeader&, const AckHeader&) = default;
};

using ExtendedHeader = std::variant<BeaconHeader, GbcHeader, GucHeader, GacHeader, TsbHeader,
                                    ShbHeader, LsRequestHeader, LsReplyHeader, AckHeader>;

/// A complete GeoNetworking packet. `basic` is mutable per hop (RHL);
/// `common`, `extended` and `payload` form the signed portion.
struct Packet {
  BasicHeader basic{};
  CommonHeader common{};
  ExtendedHeader extended{BeaconHeader{}};
  Bytes payload{};

  [[nodiscard]] bool is_beacon() const {
    return std::holds_alternative<BeaconHeader>(extended);
  }
  [[nodiscard]] const BeaconHeader* beacon() const {
    return std::get_if<BeaconHeader>(&extended);
  }
  [[nodiscard]] const GbcHeader* gbc() const { return std::get_if<GbcHeader>(&extended); }
  [[nodiscard]] GbcHeader* gbc() { return std::get_if<GbcHeader>(&extended); }
  [[nodiscard]] const GucHeader* guc() const { return std::get_if<GucHeader>(&extended); }
  [[nodiscard]] GucHeader* guc() { return std::get_if<GucHeader>(&extended); }
  [[nodiscard]] const GacHeader* gac() const { return std::get_if<GacHeader>(&extended); }
  [[nodiscard]] const TsbHeader* tsb() const { return std::get_if<TsbHeader>(&extended); }
  [[nodiscard]] const ShbHeader* shb() const { return std::get_if<ShbHeader>(&extended); }
  [[nodiscard]] const LsRequestHeader* ls_request() const {
    return std::get_if<LsRequestHeader>(&extended);
  }
  [[nodiscard]] const LsReplyHeader* ls_reply() const {
    return std::get_if<LsReplyHeader>(&extended);
  }
  [[nodiscard]] const AckHeader* ack() const { return std::get_if<AckHeader>(&extended); }

  /// Source LPV regardless of packet flavour.
  [[nodiscard]] const LongPositionVector& source_pv() const;

  /// Duplicate-detection key: (source address, sequence number), defined for
  /// GBC/GUC packets only.
  [[nodiscard]] std::optional<std::pair<GnAddress, SequenceNumber>> duplicate_key() const;

  friend bool operator==(const Packet&, const Packet&) = default;
};

std::string to_string(const Packet& p);

}  // namespace vgr::net

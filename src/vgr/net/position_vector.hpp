#pragma once

#include "vgr/geo/vec2.hpp"
#include "vgr/net/address.hpp"
#include "vgr/sim/time.hpp"

namespace vgr::net {

/// Long Position Vector (LPV) — the PV carried in beacons and in the source
/// field of GeoBroadcast packets: address, timestamp, position, speed and
/// heading. All fields are inside the signed envelope.
struct LongPositionVector {
  GnAddress address{};
  sim::TimePoint timestamp{};
  geo::Position position{};
  double speed_mps{0.0};
  double heading_rad{0.0};  ///< counter-clockwise from east (+x)

  /// Dead-reckons the position to time `t` using speed and heading. This is
  /// the "estimated position vector" used by the plausibility-check
  /// mitigation; a stale PV of a fast mover extrapolates far away.
  [[nodiscard]] geo::Position position_at(sim::TimePoint t) const {
    const double dt = (t - timestamp).to_seconds();
    return position + geo::heading_vector(heading_rad) * (speed_mps * dt);
  }

  [[nodiscard]] geo::Vec2 velocity() const {
    return geo::heading_vector(heading_rad) * speed_mps;
  }

  friend bool operator==(const LongPositionVector&, const LongPositionVector&) = default;
};

/// Short Position Vector (SPV) — destination field of GeoUnicast packets.
struct ShortPositionVector {
  GnAddress address{};
  sim::TimePoint timestamp{};
  geo::Position position{};

  friend bool operator==(const ShortPositionVector&, const ShortPositionVector&) = default;
};

}  // namespace vgr::net

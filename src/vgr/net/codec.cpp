#include "vgr/net/codec.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <initializer_list>

namespace vgr::net {

void ByteWriter::u8(std::uint8_t v) { out_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::bytes(const Bytes& b) {
  u32(static_cast<std::uint32_t>(b.size()));
  out_.insert(out_.end(), b.begin(), b.end());
}

std::optional<std::uint8_t> ByteReader::u8() {
  if (pos_ + 1 > in_.size()) return std::nullopt;
  return in_[pos_++];
}

std::optional<std::uint16_t> ByteReader::u16() {
  const auto lo = u8();
  const auto hi = u8();
  if (!lo || !hi) return std::nullopt;
  return static_cast<std::uint16_t>(*lo | (*hi << 8));
}

std::optional<std::uint32_t> ByteReader::u32() {
  const auto lo = u16();
  const auto hi = u16();
  if (!lo || !hi) return std::nullopt;
  return static_cast<std::uint32_t>(*lo) | (static_cast<std::uint32_t>(*hi) << 16);
}

std::optional<std::uint64_t> ByteReader::u64() {
  const auto lo = u32();
  const auto hi = u32();
  if (!lo || !hi) return std::nullopt;
  return static_cast<std::uint64_t>(*lo) | (static_cast<std::uint64_t>(*hi) << 32);
}

std::optional<double> ByteReader::f64() {
  const auto v = u64();
  if (!v) return std::nullopt;
  return std::bit_cast<double>(*v);
}

std::optional<Bytes> ByteReader::bytes() {
  const auto n = u32();
  if (!n) return std::nullopt;
  // Validate against remaining input (subtraction, not addition, so the
  // check cannot overflow) and the wire maximum before touching memory.
  if (*n > kMaxChunkBytes) return std::nullopt;
  if (*n > in_.size() - pos_) return std::nullopt;
  Bytes out(in_.begin() + static_cast<std::ptrdiff_t>(pos_),
            in_.begin() + static_cast<std::ptrdiff_t>(pos_ + *n));
  pos_ += *n;
  return out;
}

namespace {

/// Decoded floating-point fields must be finite: a NaN/inf coordinate that
/// slipped into a LocationTable would poison every distance comparison (NaN
/// compares false with everything, so Greedy Forwarding would silently skip
/// or keep such a neighbour forever) and propagate through IDM math.
bool all_finite(std::initializer_list<double> vs) {
  for (const double v : vs) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

void write_lpv(ByteWriter& w, const LongPositionVector& pv) {
  w.u64(pv.address.bits());
  w.u64(static_cast<std::uint64_t>(pv.timestamp.count()));
  w.f64(pv.position.x);
  w.f64(pv.position.y);
  w.f64(pv.speed_mps);
  w.f64(pv.heading_rad);
}

std::optional<LongPositionVector> read_lpv(ByteReader& r) {
  LongPositionVector pv;
  const auto addr = r.u64();
  const auto ts = r.u64();
  const auto x = r.f64();
  const auto y = r.f64();
  const auto speed = r.f64();
  const auto heading = r.f64();
  if (!addr || !ts || !x || !y || !speed || !heading) return std::nullopt;
  if (!all_finite({*x, *y, *speed, *heading})) return std::nullopt;
  pv.address = GnAddress::from_bits(*addr);
  pv.timestamp = sim::TimePoint::at(sim::Duration::nanos(static_cast<std::int64_t>(*ts)));
  pv.position = {*x, *y};
  pv.speed_mps = *speed;
  pv.heading_rad = *heading;
  return pv;
}

void write_spv(ByteWriter& w, const ShortPositionVector& pv) {
  w.u64(pv.address.bits());
  w.u64(static_cast<std::uint64_t>(pv.timestamp.count()));
  w.f64(pv.position.x);
  w.f64(pv.position.y);
}

std::optional<ShortPositionVector> read_spv(ByteReader& r) {
  ShortPositionVector pv;
  const auto addr = r.u64();
  const auto ts = r.u64();
  const auto x = r.f64();
  const auto y = r.f64();
  if (!addr || !ts || !x || !y) return std::nullopt;
  if (!all_finite({*x, *y})) return std::nullopt;
  pv.address = GnAddress::from_bits(*addr);
  pv.timestamp = sim::TimePoint::at(sim::Duration::nanos(static_cast<std::int64_t>(*ts)));
  pv.position = {*x, *y};
  return pv;
}

void write_area(ByteWriter& w, const geo::GeoArea& a) {
  w.u8(static_cast<std::uint8_t>(a.shape()));
  w.f64(a.center().x);
  w.f64(a.center().y);
  w.f64(a.a());
  w.f64(a.b());
  w.f64(a.azimuth());
}

std::optional<geo::GeoArea> read_area(ByteReader& r) {
  const auto shape = r.u8();
  const auto cx = r.f64();
  const auto cy = r.f64();
  const auto a = r.f64();
  const auto b = r.f64();
  const auto az = r.f64();
  if (!shape || !cx || !cy || !a || !b || !az) return std::nullopt;
  // NaN extents sail past a `<= 0` test (NaN compares false), so finiteness
  // comes first.
  if (!all_finite({*cx, *cy, *a, *b, *az})) return std::nullopt;
  if (*a <= 0.0 || *b <= 0.0) return std::nullopt;
  switch (static_cast<geo::GeoArea::Shape>(*shape)) {
    case geo::GeoArea::Shape::kCircle:
      return geo::GeoArea::circle({*cx, *cy}, *a);
    case geo::GeoArea::Shape::kRectangle:
      return geo::GeoArea::rectangle({*cx, *cy}, *a, *b, *az);
    case geo::GeoArea::Shape::kEllipse:
      return geo::GeoArea::ellipse({*cx, *cy}, *a, *b, *az);
  }
  return std::nullopt;
}

}  // namespace

Bytes Codec::encode_signed_portion(const Packet& p) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(p.common.type));
  w.u8(p.common.traffic_class);
  w.u8(p.common.max_hop_limit);
  if (const auto* b = p.beacon()) {
    write_lpv(w, b->source_pv);
  } else if (const auto* g = p.gbc()) {
    w.u16(g->sequence_number);
    write_lpv(w, g->source_pv);
    write_area(w, g->area);
  } else if (const auto* u = p.guc()) {
    w.u16(u->sequence_number);
    write_lpv(w, u->source_pv);
    write_spv(w, u->destination);
  } else if (const auto* ga = p.gac()) {
    w.u16(ga->sequence_number);
    write_lpv(w, ga->source_pv);
    write_area(w, ga->area);
  } else if (const auto* t = p.tsb()) {
    w.u16(t->sequence_number);
    write_lpv(w, t->source_pv);
  } else if (const auto* s = p.shb()) {
    write_lpv(w, s->source_pv);
  } else if (const auto* lr = p.ls_request()) {
    w.u16(lr->sequence_number);
    write_lpv(w, lr->source_pv);
    w.u64(lr->target.bits());
  } else if (const auto* lp = p.ls_reply()) {
    w.u16(lp->sequence_number);
    write_lpv(w, lp->source_pv);
    write_spv(w, lp->destination);
  } else if (const auto* a = p.ack()) {
    write_lpv(w, a->source_pv);
    w.u64(a->acked_source.bits());
    w.u16(a->acked_sequence);
  }
  w.bytes(p.payload);
  return w.take();
}

Bytes Codec::encode(const Packet& p) {
  ByteWriter w;
  w.u8(p.basic.version);
  w.u8(p.basic.remaining_hop_limit);
  w.u64(static_cast<std::uint64_t>(p.basic.lifetime.count()));
  const Bytes rest = encode_signed_portion(p);
  w.bytes(rest);
  return w.take();
}

std::optional<Packet> Codec::decode(const Bytes& wire) {
  ByteReader outer{wire};
  Packet p;
  const auto version = outer.u8();
  const auto rhl = outer.u8();
  const auto lifetime = outer.u64();
  const auto body = outer.bytes();
  if (!version || !rhl || !lifetime || !body || !outer.exhausted()) return std::nullopt;
  p.basic.version = *version;
  p.basic.remaining_hop_limit = *rhl;
  p.basic.lifetime = sim::Duration::nanos(static_cast<std::int64_t>(*lifetime));

  ByteReader r{*body};
  const auto type = r.u8();
  const auto tclass = r.u8();
  const auto mhl = r.u8();
  if (!type || !tclass || !mhl) return std::nullopt;
  p.common.type = static_cast<CommonHeader::HeaderType>(*type);
  p.common.traffic_class = *tclass;
  p.common.max_hop_limit = *mhl;

  switch (p.common.type) {
    case CommonHeader::HeaderType::kBeacon: {
      const auto pv = read_lpv(r);
      if (!pv) return std::nullopt;
      p.extended = BeaconHeader{*pv};
      break;
    }
    case CommonHeader::HeaderType::kGeoBroadcast: {
      const auto sn = r.u16();
      const auto pv = read_lpv(r);
      const auto area = read_area(r);
      if (!sn || !pv || !area) return std::nullopt;
      p.extended = GbcHeader{*sn, *pv, *area};
      break;
    }
    case CommonHeader::HeaderType::kGeoUnicast: {
      const auto sn = r.u16();
      const auto pv = read_lpv(r);
      const auto dest = read_spv(r);
      if (!sn || !pv || !dest) return std::nullopt;
      p.extended = GucHeader{*sn, *pv, *dest};
      break;
    }
    case CommonHeader::HeaderType::kGeoAnycast: {
      const auto sn = r.u16();
      const auto pv = read_lpv(r);
      const auto area = read_area(r);
      if (!sn || !pv || !area) return std::nullopt;
      p.extended = GacHeader{*sn, *pv, *area};
      break;
    }
    case CommonHeader::HeaderType::kTopoBroadcast: {
      const auto sn = r.u16();
      const auto pv = read_lpv(r);
      if (!sn || !pv) return std::nullopt;
      p.extended = TsbHeader{*sn, *pv};
      break;
    }
    case CommonHeader::HeaderType::kSingleHopBroadcast: {
      const auto pv = read_lpv(r);
      if (!pv) return std::nullopt;
      p.extended = ShbHeader{*pv};
      break;
    }
    case CommonHeader::HeaderType::kLsRequest: {
      const auto sn = r.u16();
      const auto pv = read_lpv(r);
      const auto target = r.u64();
      if (!sn || !pv || !target) return std::nullopt;
      p.extended = LsRequestHeader{*sn, *pv, GnAddress::from_bits(*target)};
      break;
    }
    case CommonHeader::HeaderType::kLsReply: {
      const auto sn = r.u16();
      const auto pv = read_lpv(r);
      const auto dest = read_spv(r);
      if (!sn || !pv || !dest) return std::nullopt;
      p.extended = LsReplyHeader{*sn, *pv, *dest};
      break;
    }
    case CommonHeader::HeaderType::kAck: {
      const auto pv = read_lpv(r);
      const auto src = r.u64();
      const auto sn = r.u16();
      if (!pv || !src || !sn) return std::nullopt;
      p.extended = AckHeader{*pv, GnAddress::from_bits(*src), *sn};
      break;
    }
    default:
      return std::nullopt;
  }
  const auto payload = r.bytes();
  if (!payload || !r.exhausted()) return std::nullopt;
  if (payload->size() > kMaxPayloadBytes) return std::nullopt;
  p.payload = *payload;
  return p;
}

namespace {

// Fixed on-wire footprints of the composite fields written above. Each
// constant mirrors the corresponding write_* helper; net_codec_test pins the
// arithmetic against the real encoder for every header type, so a codec
// change that forgets to update these fails loudly.
constexpr std::size_t kLpvBytes = 6 * 8;   // address, timestamp, x, y, speed, heading
constexpr std::size_t kSpvBytes = 4 * 8;   // address, timestamp, x, y
constexpr std::size_t kAreaBytes = 1 + 5 * 8;  // shape tag + cx, cy, a, b, azimuth

std::size_t extended_header_size(const Packet& p) {
  if (p.beacon() != nullptr || p.shb() != nullptr) return kLpvBytes;
  if (p.gbc() != nullptr || p.gac() != nullptr) return 2 + kLpvBytes + kAreaBytes;
  if (p.guc() != nullptr || p.ls_reply() != nullptr) return 2 + kLpvBytes + kSpvBytes;
  if (p.tsb() != nullptr) return 2 + kLpvBytes;
  if (p.ls_request() != nullptr) return 2 + kLpvBytes + 8;
  if (p.ack() != nullptr) return kLpvBytes + 8 + 2;
  return 0;
}

}  // namespace

std::size_t Codec::signed_portion_size(const Packet& p) {
  // type + traffic_class + max_hop_limit, extended header, then the
  // length-prefixed payload.
  return 3 + extended_header_size(p) + 4 + p.payload.size();
}

std::size_t Codec::wire_size(const Packet& p) {
  // Basic header (version + rhl + lifetime) plus the length-prefixed signed
  // portion.
  return 1 + 1 + 8 + 4 + signed_portion_size(p);
}

}  // namespace vgr::net

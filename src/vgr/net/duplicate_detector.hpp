#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "vgr/net/address.hpp"
#include "vgr/net/packet.hpp"

namespace vgr::net {

/// Per-source duplicate packet detection keyed on (source GN address,
/// sequence number), per ETSI EN 302 636-4-1 Annex A.
///
/// The paper's intra-area attack exploits exactly what this detector *does
/// not* look at: it cannot distinguish which hop retransmitted the packet,
/// nor verify the retransmitter's position — any retransmission with a known
/// key counts as a duplicate.
///
/// For the recovery layer's bounded retransmission the detector additionally
/// remembers the link-layer sender that first delivered each key, so a
/// receiver can tell a *same-hop retransmission* (the previous hop retrying
/// because our ACK was lost) apart from a copy arriving over another path —
/// without weakening the duplicate semantics the attack relies on.
class DuplicateDetector {
 public:
  /// Keeps at most `window` sequence numbers per source (FIFO eviction).
  explicit DuplicateDetector(std::size_t window = 256) : window_{window} {}

  /// Records the packet's key; returns true if it was already known
  /// (i.e. the packet is a duplicate). Beacons never count as duplicates.
  bool check_and_record(const Packet& p) { return check_and_record(p, MacAddress{}); }

  /// Same, but also remembers `from` (the frame's link-layer source) as the
  /// hop that first delivered this key.
  bool check_and_record(const Packet& p, MacAddress from);

  /// Pure query without recording.
  [[nodiscard]] bool is_duplicate(const Packet& p) const;

  /// True when `p` is a known duplicate that was first recorded from the
  /// same link-layer sender `from` — a per-hop retransmission, which a
  /// forwarder must re-ACK rather than black-hole (docs/robustness.md).
  /// Keys recorded through the hop-less overload never match.
  [[nodiscard]] bool is_same_hop_retransmit(const Packet& p, MacAddress from) const;

  void clear() { per_source_.clear(); }
  [[nodiscard]] std::size_t source_count() const { return per_source_.size(); }

 private:
  /// One remembered key: the sequence number plus the link-layer sender of
  /// the first copy (default-constructed when the hop was not recorded).
  struct Seen {
    SequenceNumber seq;
    MacAddress first_hop;
  };
  /// Flat FIFO ring per source (arena/SoA memory plane): the steady state
  /// is one contiguous vector per source instead of a hash node plus a
  /// deque block per recorded key. Occupancy is tiny in practice (a source
  /// window fills only under a sustained per-source flood), so the linear
  /// scan is a handful of cache lines.
  struct SourceState {
    std::vector<Seen> ring;
    std::size_t next{0};  ///< overwrite cursor once the ring is full

    [[nodiscard]] const Seen* find(SequenceNumber seq) const {
      for (const Seen& s : ring) {
        if (s.seq == seq) return &s;
      }
      return nullptr;
    }
  };

  std::size_t window_;
  std::unordered_map<GnAddress, SourceState> per_source_;
};

}  // namespace vgr::net

#pragma once

#include <cstddef>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "vgr/net/address.hpp"
#include "vgr/net/packet.hpp"

namespace vgr::net {

/// Per-source duplicate packet detection keyed on (source GN address,
/// sequence number), per ETSI EN 302 636-4-1 Annex A.
///
/// The paper's intra-area attack exploits exactly what this detector *does
/// not* look at: it cannot distinguish which hop retransmitted the packet,
/// nor verify the retransmitter's position — any retransmission with a known
/// key counts as a duplicate.
class DuplicateDetector {
 public:
  /// Keeps at most `window` sequence numbers per source (FIFO eviction).
  explicit DuplicateDetector(std::size_t window = 256) : window_{window} {}

  /// Records the packet's key; returns true if it was already known
  /// (i.e. the packet is a duplicate). Beacons never count as duplicates.
  bool check_and_record(const Packet& p);

  /// Pure query without recording.
  [[nodiscard]] bool is_duplicate(const Packet& p) const;

  void clear() { per_source_.clear(); }
  [[nodiscard]] std::size_t source_count() const { return per_source_.size(); }

 private:
  struct SourceState {
    std::unordered_set<SequenceNumber> seen;
    std::deque<SequenceNumber> order;
  };

  std::size_t window_;
  std::unordered_map<GnAddress, SourceState> per_source_;
};

}  // namespace vgr::net

#include "vgr/net/duplicate_detector.hpp"

namespace vgr::net {

bool DuplicateDetector::check_and_record(const Packet& p) {
  const auto key = p.duplicate_key();
  if (!key) return false;
  auto& state = per_source_[key->first];
  if (state.seen.contains(key->second)) return true;
  state.seen.insert(key->second);
  state.order.push_back(key->second);
  if (state.order.size() > window_) {
    state.seen.erase(state.order.front());
    state.order.pop_front();
  }
  return false;
}

bool DuplicateDetector::is_duplicate(const Packet& p) const {
  const auto key = p.duplicate_key();
  if (!key) return false;
  const auto it = per_source_.find(key->first);
  if (it == per_source_.end()) return false;
  return it->second.seen.contains(key->second);
}

}  // namespace vgr::net

#include "vgr/net/duplicate_detector.hpp"

#include <algorithm>

namespace vgr::net {

bool DuplicateDetector::check_and_record(const Packet& p, MacAddress from) {
  const auto key = p.duplicate_key();
  if (!key || window_ == 0) return false;
  auto& state = per_source_[key->first];
  if (state.find(key->second) != nullptr) return true;
  if (state.ring.size() < window_) {
    if (state.ring.capacity() == 0) {
      // One right-sized block per source; small floods never regrow it.
      state.ring.reserve(std::min<std::size_t>(window_, 32));
    }
    state.ring.push_back(Seen{key->second, from});
  } else {
    // FIFO eviction: overwrite the oldest remembered key in place.
    state.ring[state.next] = Seen{key->second, from};
    state.next = (state.next + 1) % window_;
  }
  return false;
}

bool DuplicateDetector::is_duplicate(const Packet& p) const {
  const auto key = p.duplicate_key();
  if (!key) return false;
  const auto it = per_source_.find(key->first);
  if (it == per_source_.end()) return false;
  return it->second.find(key->second) != nullptr;
}

bool DuplicateDetector::is_same_hop_retransmit(const Packet& p, MacAddress from) const {
  const auto key = p.duplicate_key();
  if (!key) return false;
  const auto it = per_source_.find(key->first);
  if (it == per_source_.end()) return false;
  const Seen* seen = it->second.find(key->second);
  if (seen == nullptr) return false;
  return seen->first_hop == from && from != MacAddress{};
}

}  // namespace vgr::net

#include "vgr/net/duplicate_detector.hpp"

namespace vgr::net {

bool DuplicateDetector::check_and_record(const Packet& p, MacAddress from) {
  const auto key = p.duplicate_key();
  if (!key) return false;
  auto& state = per_source_[key->first];
  if (state.seen.contains(key->second)) return true;
  state.seen.emplace(key->second, from);
  state.order.push_back(key->second);
  if (state.order.size() > window_) {
    state.seen.erase(state.order.front());
    state.order.pop_front();
  }
  return false;
}

bool DuplicateDetector::is_duplicate(const Packet& p) const {
  const auto key = p.duplicate_key();
  if (!key) return false;
  const auto it = per_source_.find(key->first);
  if (it == per_source_.end()) return false;
  return it->second.seen.contains(key->second);
}

bool DuplicateDetector::is_same_hop_retransmit(const Packet& p, MacAddress from) const {
  const auto key = p.duplicate_key();
  if (!key) return false;
  const auto it = per_source_.find(key->first);
  if (it == per_source_.end()) return false;
  const auto seen = it->second.seen.find(key->second);
  if (seen == it->second.seen.end()) return false;
  return seen->second == from && from != MacAddress{};
}

}  // namespace vgr::net

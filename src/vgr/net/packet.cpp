#include "vgr/net/packet.hpp"

#include <cstdio>

namespace vgr::net {

const LongPositionVector& Packet::source_pv() const {
  return std::visit([](const auto& header) -> const LongPositionVector& {
    return header.source_pv;
  }, extended);
}

std::optional<std::pair<GnAddress, SequenceNumber>> Packet::duplicate_key() const {
  if (const auto* g = gbc()) return std::make_pair(g->source_pv.address, g->sequence_number);
  if (const auto* a = gac()) return std::make_pair(a->source_pv.address, a->sequence_number);
  if (const auto* u = guc()) return std::make_pair(u->source_pv.address, u->sequence_number);
  if (const auto* t = tsb()) return std::make_pair(t->source_pv.address, t->sequence_number);
  if (const auto* r = ls_request()) {
    return std::make_pair(r->source_pv.address, r->sequence_number);
  }
  if (const auto* r = ls_reply()) return std::make_pair(r->source_pv.address, r->sequence_number);
  return std::nullopt;  // beacons, SHB and ACKs are never forwarded
}

std::string to_string(const Packet& p) {
  const char* kind = "beacon";
  switch (p.common.type) {
    case CommonHeader::HeaderType::kBeacon: kind = "beacon"; break;
    case CommonHeader::HeaderType::kGeoUnicast: kind = "guc"; break;
    case CommonHeader::HeaderType::kGeoAnycast: kind = "gac"; break;
    case CommonHeader::HeaderType::kGeoBroadcast: kind = "gbc"; break;
    case CommonHeader::HeaderType::kTopoBroadcast: kind = "tsb"; break;
    case CommonHeader::HeaderType::kSingleHopBroadcast: kind = "shb"; break;
    case CommonHeader::HeaderType::kLsRequest: kind = "ls-req"; break;
    case CommonHeader::HeaderType::kLsReply: kind = "ls-rep"; break;
    case CommonHeader::HeaderType::kAck: kind = "ack"; break;
  }
  unsigned sn = 0;
  if (const auto key = p.duplicate_key(); key.has_value()) sn = key->second;
  char buf[160];
  std::snprintf(buf, sizeof buf, "%s(src=%s sn=%u rhl=%u payload=%zuB)", kind,
                to_string(p.source_pv().address).c_str(), sn,
                static_cast<unsigned>(p.basic.remaining_hop_limit), p.payload.size());
  return buf;
}

}  // namespace vgr::net

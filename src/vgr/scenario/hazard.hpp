#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "vgr/attack/inter_area.hpp"
#include "vgr/attack/intra_area.hpp"
#include "vgr/phy/medium.hpp"
#include "vgr/scenario/station.hpp"
#include "vgr/security/authority.hpp"
#include "vgr/sim/event_queue.hpp"
#include "vgr/traffic/traffic_sim.hpp"

namespace vgr::scenario {

/// Traffic-efficiency impact study (paper §IV-B, Fig 11a / Fig 12).
///
/// A hazard blocks both eastbound lanes at 3,600 m at t = 5 s. A reporter
/// station at the hazard repeatedly notifies the road entrance; once the
/// entrance gate receives the notification it stops admitting eastbound
/// vehicles. Two cases:
///  * kGreedyForwarding (Fig 12a) — the road starts empty and fills; the
///    notification travels by GF (+ store-carry-forward) across the
///    two-direction traffic; an inter-area interceptor at the road centre
///    suppresses it.
///  * kCbfFlood (Fig 12b) — the road starts pre-filled; the notification is
///    a CBF flood over the whole segment; an intra-area blocker (500 m)
///    suppresses it.
struct HazardConfig {
  enum class Case { kGreedyForwarding, kCbfFlood };

  Case mode{Case::kGreedyForwarding};
  bool attacked{false};
  phy::AccessTechnology tech{phy::AccessTechnology::kDsrc};
  double road_length_m{4000.0};
  int lanes_per_direction{2};
  double hazard_x_m{3600.0};
  sim::Duration hazard_time{sim::Duration::seconds(5.0)};
  sim::Duration sim_duration{sim::Duration::seconds(200.0)};
  sim::Duration notify_interval{sim::Duration::seconds(1.0)};
  double vehicle_range_m{-1.0};  ///< <= 0: NLoS median of `tech`
  /// <= 0 picks the paper's default per case: NLoS median (case 1) / 500 m
  /// (case 2).
  double attack_range_m{-1.0};
  /// Pre-fill spacing; < 0 picks the per-case default (empty road for
  /// case 1, 60 m for case 2).
  double prefill_spacing_m{-1.0};
  std::uint64_t seed{1};
};

struct HazardResult {
  /// (time s, eastbound vehicles on road) sampled once per second.
  std::vector<std::pair<double, double>> vehicles_over_time;
  bool entrance_notified{false};
  double notified_at_s{-1.0};
  double final_vehicle_count{0.0};
  double peak_vehicle_count{0.0};
};

/// Runs one hazard-impact simulation.
class HazardScenario {
 public:
  explicit HazardScenario(HazardConfig config);
  ~HazardScenario();

  HazardScenario(const HazardScenario&) = delete;
  HazardScenario& operator=(const HazardScenario&) = delete;

  HazardResult run();

 private:
  void spawn_station(traffic::Vehicle& v);
  void destroy_station(traffic::Vehicle& v);
  Station make_static_station(net::MacAddress mac, geo::Position pos);
  void send_notification();
  [[nodiscard]] double resolved_attack_range() const;

  HazardConfig config_;
  double vehicle_range_m_;
  sim::Rng master_rng_;
  sim::EventQueue events_;
  security::CertificateAuthority ca_;
  std::unique_ptr<phy::Medium> medium_;
  traffic::RoadSegment road_;
  std::unique_ptr<traffic::TrafficSimulation> traffic_;
  std::unordered_map<traffic::VehicleId, Station> stations_;
  Station reporter_;
  Station gate_;
  std::unique_ptr<attack::InterAreaInterceptor> interceptor_;
  std::unique_ptr<attack::IntraAreaBlocker> blocker_;
  HazardResult result_;
};

}  // namespace vgr::scenario

#include "vgr/scenario/hazard.hpp"

#include <algorithm>

#include "vgr/gn/config.hpp"

namespace vgr::scenario {
namespace {

constexpr std::uint64_t kReporterMac = 0x0200'0000'F100ULL;
constexpr std::uint64_t kGateMac = 0x0200'0000'F200ULL;

}  // namespace

HazardScenario::HazardScenario(HazardConfig config)
    : config_{config},
      vehicle_range_m_{config.vehicle_range_m > 0.0
                           ? config.vehicle_range_m
                           : phy::range_table(config.tech).nlos_median_m},
      master_rng_{config.seed},
      road_{config.road_length_m, config.lanes_per_direction, /*two_way=*/true} {
  medium_ = std::make_unique<phy::Medium>(events_, config_.tech, master_rng_.fork());
  // Positions move only on the traffic tick; rebuild the radio index once
  // per tick instead of per event (see HighwayScenario for the rationale).
  medium_->set_index_mode(phy::IndexMode::kExplicit);

  traffic::TrafficSimulation::Config tcfg;
  tcfg.entry_spacing_m = 30.0;
  if (config_.prefill_spacing_m >= 0.0) {
    tcfg.prefill_spacing_m = config_.prefill_spacing_m;
  } else {
    // Case 1 studies a filling road; case 2 an already-populated one.
    tcfg.prefill_spacing_m =
        config_.mode == HazardConfig::Case::kGreedyForwarding ? 0.0 : 60.0;
  }
  traffic_ = std::make_unique<traffic::TrafficSimulation>(road_, tcfg);
  traffic_->set_on_spawn([this](traffic::Vehicle& v) { spawn_station(v); });
  traffic_->set_on_exit([this](traffic::Vehicle& v) { destroy_station(v); });
  traffic_->set_on_tick([this] { medium_->invalidate_index(); });
}

HazardScenario::~HazardScenario() = default;

double HazardScenario::resolved_attack_range() const {
  if (config_.attack_range_m > 0.0) return config_.attack_range_m;
  return config_.mode == HazardConfig::Case::kGreedyForwarding
             ? phy::range_table(config_.tech).nlos_median_m
             : 500.0;
}

void HazardScenario::spawn_station(traffic::Vehicle& v) {
  const net::MacAddress mac{0x0200'0000'0000ULL | v.id()};
  const net::GnAddress addr{net::GnAddress::StationType::kPassengerCar, mac};
  gn::RouterConfig rc = gn::RouterConfig::for_technology(config_.tech);
  rc.cbf_dist_max_m = vehicle_range_m_;

  Station st;
  st.mobility = std::make_unique<VehicleMobility>(v, road_);
  st.router = std::make_unique<gn::Router>(events_, *medium_, security::Signer{ca_.enroll(addr)},
                                           ca_.trust_store(), *st.mobility, rc, vehicle_range_m_,
                                           master_rng_.fork());
  st.router->start();
  stations_.emplace(v.id(), std::move(st));
}

void HazardScenario::destroy_station(traffic::Vehicle& v) {
  const auto it = stations_.find(v.id());
  if (it == stations_.end()) return;
  it->second.router->shutdown();
  stations_.erase(it);
}

Station HazardScenario::make_static_station(net::MacAddress mac, geo::Position pos) {
  const net::GnAddress addr{net::GnAddress::StationType::kRoadSideUnit, mac};
  gn::RouterConfig rc = gn::RouterConfig::for_technology(config_.tech);
  rc.cbf_dist_max_m = vehicle_range_m_;
  Station st;
  st.mobility = std::make_unique<gn::StaticMobility>(pos);
  st.router = std::make_unique<gn::Router>(events_, *medium_, security::Signer{ca_.enroll(addr)},
                                           ca_.trust_store(), *st.mobility, rc, vehicle_range_m_,
                                           master_rng_.fork());
  st.router->start();
  return st;
}

void HazardScenario::send_notification() {
  // Notify the entrance: GF toward a small area at the gate (case 1) or a
  // CBF flood over the whole segment (case 2). Repeats until notified.
  if (config_.mode == HazardConfig::Case::kGreedyForwarding) {
    const geo::GeoArea gate_area = geo::GeoArea::circle({-10.0, 2.5}, 40.0);
    reporter_.router->send_geo_broadcast(gate_area, net::Bytes{0x4A});
  } else {
    const geo::GeoArea whole_road = geo::GeoArea::rectangle(
        {config_.road_length_m / 2.0, 0.0}, config_.road_length_m / 2.0 + 60.0, 60.0);
    reporter_.router->send_geo_broadcast(whole_road, net::Bytes{0x4A});
  }
  if (!result_.entrance_notified &&
      events_.now() + config_.notify_interval <= sim::TimePoint::at(config_.sim_duration)) {
    events_.schedule_in(config_.notify_interval, [this] { send_notification(); });
  }
}

HazardResult HazardScenario::run() {
  // Reporter: the heading vehicle stopped right at the hazard.
  reporter_ = make_static_station(net::MacAddress{kReporterMac},
                                  {config_.hazard_x_m - 10.0, road_.lane_center_y(
                                                                  traffic::Direction::kEastbound, 0)});
  // Gate: roadside unit at the eastbound entrance; closes entry on notice.
  gate_ = make_static_station(net::MacAddress{kGateMac}, {0.0, 2.5});
  gate_.router->set_delivery_handler([this](const gn::Router::Delivery&) {
    if (result_.entrance_notified) return;
    result_.entrance_notified = true;
    result_.notified_at_s = events_.now().to_seconds();
    traffic_->set_entry_enabled(traffic::Direction::kEastbound, false);
  });

  if (config_.attacked) {
    const geo::Position spot{config_.road_length_m / 2.0, 12.5};
    if (config_.mode == HazardConfig::Case::kGreedyForwarding) {
      interceptor_ = std::make_unique<attack::InterAreaInterceptor>(events_, *medium_, spot,
                                                                    resolved_attack_range());
    } else {
      blocker_ = std::make_unique<attack::IntraAreaBlocker>(events_, *medium_, spot,
                                                            resolved_attack_range());
    }
  }

  traffic_->prefill();
  traffic_->run_on(events_, sim::TimePoint::at(config_.sim_duration));

  // Hazard activation.
  events_.schedule_at(sim::TimePoint::at(config_.hazard_time), [this] {
    traffic_->set_hazard(traffic::Direction::kEastbound, config_.hazard_x_m);
    send_notification();
  });

  // Sample the eastbound vehicle count once per second.
  const auto sample = [this](auto&& self) -> void {
    const double t = events_.now().to_seconds();
    const double n = static_cast<double>(traffic_->count(traffic::Direction::kEastbound));
    result_.vehicles_over_time.emplace_back(t, n);
    result_.peak_vehicle_count = std::max(result_.peak_vehicle_count, n);
    result_.final_vehicle_count = n;
    if (events_.now() + sim::Duration::seconds(1.0) <= sim::TimePoint::at(config_.sim_duration)) {
      events_.schedule_in(sim::Duration::seconds(1.0), [this, self] { self(self); });
    }
  };
  sample(sample);

  events_.run_until(sim::TimePoint::at(config_.sim_duration));
  return result_;
}

}  // namespace vgr::scenario

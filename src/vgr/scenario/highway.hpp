#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "vgr/attack/congestion_flood.hpp"
#include "vgr/attack/inter_area.hpp"
#include "vgr/attack/intra_area.hpp"
#include "vgr/mitigation/profiles.hpp"
#include "vgr/phy/medium.hpp"
#include "vgr/scenario/station.hpp"
#include "vgr/scenario/vulnerability.hpp"
#include "vgr/security/authority.hpp"
#include "vgr/sim/event_queue.hpp"
#include "vgr/sim/histogram.hpp"
#include "vgr/sim/timeline.hpp"
#include "vgr/traffic/traffic_sim.hpp"

namespace vgr::scenario {

/// Which attacker (if any) is deployed in a highway run. The attack
/// *geometry* (range, position) is always configured, even in attacker-free
/// runs, because the vulnerable-packet workload of the paper is defined
/// relative to the hypothetical attacker (Fig 6) and the A/B pairing needs
/// identical workloads.
enum class AttackKind { kNone, kInterArea, kIntraArea, kCongestionFlood };

/// Node churn: stations crash at random (their radio goes silent
/// mid-protocol, losing location table, CBF/GF buffers and duplicate-
/// detector state) and optionally reboot after a fixed downtime. Crash
/// times and victims are drawn from a dedicated seeded stream, so churn
/// runs replay exactly and a disabled config (`crash_rate_hz == 0`)
/// leaves the simulation bit-identical to one without churn support.
struct ChurnConfig {
  /// Expected crashes per second across the whole fleet (Poisson process).
  double crash_rate_hz{0.0};
  /// Crash-to-reboot delay, seconds.
  double downtime_s{2.0};
  /// Probability a crashed station reboots at all (else it stays dark
  /// until it leaves the road).
  double reboot_probability{1.0};

  [[nodiscard]] bool enabled() const { return crash_rate_hz > 0.0; }
  /// Copy with `VGR_CHURN_RATE`, `VGR_CHURN_DOWNTIME_MS` and
  /// `VGR_CHURN_REBOOT_P` applied over the programmatic values.
  [[nodiscard]] ChurnConfig with_env_overrides() const;
};

/// Recovery-layer switches applied to every vehicle router
/// (docs/robustness.md): store-carry-forward buffering, bounded per-hop
/// retransmission, and the neighbour soft-state monitor. Everything
/// defaults to off; a disabled config schedules no events and draws nothing
/// from any RNG stream, so pre-recovery outputs stay bit-identical.
struct RecoveryConfig {
  bool scf{false};
  std::size_t scf_max_packets{64};
  std::size_t scf_max_bytes{64 * 1024};
  bool retx{false};
  int retx_max_attempts{3};
  double retx_backoff_ms{10.0};
  bool nbr_monitor{false};

  [[nodiscard]] bool enabled() const { return scf || retx || nbr_monitor; }
  /// Copy with `VGR_SCF`, `VGR_SCF_MAX_PKTS`, `VGR_SCF_MAX_BYTES`,
  /// `VGR_RETX`, `VGR_RETX_MAX`, `VGR_RETX_BACKOFF_MS` and
  /// `VGR_NBR_MONITOR` applied over the programmatic values.
  [[nodiscard]] RecoveryConfig with_env_overrides() const;
};

/// Full configuration of one simulation run on the paper's 4,000 m highway.
struct HighwayConfig {
  phy::AccessTechnology tech{phy::AccessTechnology::kDsrc};

  // Road & traffic (paper §IV-A defaults).
  double road_length_m{4000.0};
  int lanes_per_direction{2};
  bool two_way{false};
  double entry_spacing_m{30.0};
  double prefill_spacing_m{30.0};

  // Communications.
  double vehicle_range_m{-1.0};  ///< <= 0: NLoS median of `tech` (Table II)
  sim::Duration locte_ttl{sim::Duration::seconds(20.0)};
  sim::Duration beacon_interval{sim::Duration::seconds(3.0)};
  std::uint8_t hop_limit{10};

  // Workload.
  sim::Duration sim_duration{sim::Duration::seconds(200.0)};
  sim::Duration packet_interval{sim::Duration::seconds(1.0)};
  std::uint64_t seed{1};

  // Attacker.
  AttackKind attack{AttackKind::kNone};
  double attack_range_m{327.0};  ///< also defines vulnerability geometry when kNone
  double attacker_x_m{-1.0};     ///< < 0: road centre
  double attacker_y_m{12.5};     ///< roadside, just past the outermost lane
  attack::IntraAreaBlocker::Config blocker{};
  /// Replay rate of the congestion flooder (kCongestionFlood only).
  double flood_rate_hz{1000.0};

  // Mitigations.
  mitigation::Profile mitigation{mitigation::Profile::kNone};
  mitigation::Parameters mitigation_params{};

  // Ablation switches.
  /// Enables co-channel interference on the medium (off in the paper).
  bool interference{false};
  /// Disables the medium's spatial index (falls back to the O(N) per-frame
  /// scan). Results are identical either way; `bench_scale` uses this to
  /// measure the crossover and the determinism test to prove equivalence.
  bool spatial_index{true};
  /// > 0: every vehicle rotates to a fresh pseudonym with this period —
  /// demonstrates that unlinkable identities do not blunt either attack.
  double pseudonym_period_s{-1.0};
  /// Enables the ACK'd-forwarding extension on every router.
  bool gf_ack{false};

  // Resilience (docs/robustness.md). Both default to disabled; a disabled
  // fault/churn config draws nothing from any RNG stream, so every output
  // stays bit-identical to a build without the resilience layer.
  phy::FaultConfig faults{};
  ChurnConfig churn{};
  RecoveryConfig recovery{};
  /// MAC contention layer + reactive DCC applied to every router
  /// (docs/robustness.md). Both default off; off is free.
  phy::MacConfig mac{};
  phy::DccConfig dcc{};

  // Per-run watchdog (0 = off): a run whose event queue exceeds either
  // budget stops early and is reported as `timed_out` instead of hanging
  // the sweep. The event-count breaker is deterministic; the wall-clock one
  // is host-dependent by nature and meant for CI hang protection only.
  double run_wall_budget_s{0.0};
  std::uint64_t run_max_events{0};

  // Intra-run parallelism (docs/performance.md "Intra-run parallelism").
  // `strips == 0` — the default — runs the classic single-threaded event
  // loop and is byte-identical to every prior build. `strips >= 1` splits
  // the road into that many equal-width strips, each advanced by its own
  // event wheel under the conservative window executor. The strip count is
  // a MODEL parameter (it fixes the mailbox merge geometry and with it the
  // exact output); `strip_threads` is purely a performance knob — any
  // thread count produces byte-identical results for a given strip count.
  // Requires faults and interference off (the medium asserts).
  int strips{0};
  /// Worker threads for the strip executor; 0 = ThreadPool's default
  /// (VGR_THREADS, else hardware). Clamped to the strip count.
  std::size_t strip_threads{0};

  [[nodiscard]] double resolved_vehicle_range() const;
  [[nodiscard]] double resolved_attacker_x() const;
  [[nodiscard]] AttackGeometry attack_geometry() const;
};

/// One vulnerable packet of the inter-area experiment.
struct InterAreaPacketRecord {
  sim::TimePoint sent_at{};
  double source_x{0.0};
  traffic::Direction target{traffic::Direction::kEastbound};
  bool received{false};
  sim::TimePoint received_at{};  ///< valid when `received`
};

struct InterAreaResult {
  std::vector<InterAreaPacketRecord> packets;
  sim::Duration horizon{};
  std::uint64_t beacons_replayed{0};
  std::uint64_t auth_failures{0};
  std::uint64_t churn_crashes{0};
  std::uint64_t churn_reboots{0};
  /// MAC-plane counters aggregated over every honest station of the run
  /// (vehicles incl. crashed ones, destinations). All zero with the MAC
  /// layer off.
  phy::MacStats mac{};
  /// Highest raw CBR sample any honest station measured (MAC layer only).
  double peak_cbr{0.0};
  /// Hardened-ingest drops summed over all stations and causes.
  std::uint64_t ingest_drops{0};
  /// Congestion-flood replays (kCongestionFlood runs only).
  std::uint64_t frames_flooded{0};
  /// The run tripped the per-run watchdog and stopped before its horizon.
  bool timed_out{false};
  /// Which budget bound tripped (kNone unless `timed_out`).
  sim::BudgetTrip timed_out_cause{sim::BudgetTrip::kNone};

  [[nodiscard]] double overall_reception() const;
  [[nodiscard]] sim::BinnedRate binned(
      sim::Duration bin = sim::Duration::seconds(5.0)) const;
  /// End-to-end delivery latencies (seconds) of received packets.
  [[nodiscard]] sim::Histogram latency() const;
};

/// One CBF flood of the intra-area experiment.
struct IntraAreaFloodRecord {
  sim::TimePoint sent_at{};
  double source_x{0.0};
  bool source_fully_covered{false};
  std::uint64_t reached{0};  ///< vehicles (incl. source) that got the packet
  std::uint64_t total{0};    ///< vehicles on road at generation time
  sim::TimePoint last_reach_at{};  ///< time of the flood's final delivery
};

struct IntraAreaResult {
  std::vector<IntraAreaFloodRecord> floods;
  sim::Duration horizon{};
  std::uint64_t packets_replayed{0};
  std::uint64_t churn_crashes{0};
  std::uint64_t churn_reboots{0};
  /// MAC-plane counters aggregated over every honest station (see
  /// InterAreaResult::mac).
  phy::MacStats mac{};
  double peak_cbr{0.0};
  std::uint64_t ingest_drops{0};
  std::uint64_t frames_flooded{0};
  /// The run tripped the per-run watchdog and stopped before its horizon.
  bool timed_out{false};
  /// Which budget bound tripped (kNone unless `timed_out`).
  sim::BudgetTrip timed_out_cause{sim::BudgetTrip::kNone};

  [[nodiscard]] double overall_reception() const;
  [[nodiscard]] sim::BinnedRate binned(
      sim::Duration bin = sim::Duration::seconds(5.0)) const;
  /// Reception split by source location relative to the fully covered area
  /// (paper §IV-A): {inside, outside}.
  [[nodiscard]] std::pair<double, double> reception_by_source_location() const;
  /// Flood completion times (seconds from generation to last delivery).
  [[nodiscard]] sim::Histogram completion_latency() const;
};

/// Builds and runs the paper's highway evaluation scenario: IDM traffic on
/// the 4 km segment, a full GeoNetworking stack per vehicle, static
/// destination stations beyond both ends, and an optional roadside attacker
/// at the centre. One instance executes one run (`run_inter_area` *or*
/// `run_intra_area`).
class HighwayScenario {
 public:
  explicit HighwayScenario(HighwayConfig config);
  ~HighwayScenario();

  HighwayScenario(const HighwayScenario&) = delete;
  HighwayScenario& operator=(const HighwayScenario&) = delete;

  /// Fig 7/8/14a experiment: vulnerable packets toward the two static
  /// destinations, Greedy Forwarding between areas.
  InterAreaResult run_inter_area();

  /// Fig 9/10/14b experiment: CBF floods over the whole road segment.
  IntraAreaResult run_intra_area();

  // --- Introspection (valid after a run) -------------------------------
  [[nodiscard]] const phy::Medium& medium() const { return *medium_; }
  [[nodiscard]] const traffic::TrafficSimulation& traffic() const { return *traffic_; }
  [[nodiscard]] std::size_t stations_created() const { return stations_created_; }
  [[nodiscard]] const HighwayConfig& config() const { return config_; }

  [[nodiscard]] std::uint64_t churn_crashes() const { return churn_crashes_; }
  [[nodiscard]] std::uint64_t churn_reboots() const { return churn_reboots_; }

  /// The strip-parallel plane, or nullptr in a classic serial run (tests
  /// assert on its late-post counter; benches read its worker count).
  [[nodiscard]] const sim::StripPlane* plane() const { return plane_.get(); }

 private:
  void spawn_station(traffic::Vehicle& v);
  void destroy_station(traffic::Vehicle& v);
  /// Folds a router's MAC/ingest counters into the run totals. Stations
  /// come and go mid-run (exit, crash), so totals accumulate at teardown
  /// and the run end sweeps whoever is left.
  void harvest_station_stats(const gn::Router& router);
  /// Creates (or re-creates, on reboot) the router half of a vehicle
  /// station; `st.mobility` must already be set. Reboots draw their RNG and
  /// their randomized initial sequence number from the churn stream.
  void install_vehicle_router(traffic::VehicleId vid, Station& st, sim::Rng rng, bool rebooted);
  void schedule_churn();
  void crash_random_station();
  void reboot_station(traffic::VehicleId vid);
  void schedule_pseudonym_rotation(traffic::VehicleId id);
  gn::RouterConfig make_router_config() const;
  /// Strip index (1-based) owning road coordinate `x`; clamps off-road
  /// coordinates (destinations 20 m beyond the ends) into the edge strips.
  [[nodiscard]] std::uint32_t strip_for_x(double x) const;
  /// Queues re-homes for every station whose vehicle crossed a strip
  /// boundary since the last mobility tick (strip-parallel runs only; runs
  /// inside the global tick event, i.e. the serial phase).
  void rehome_crossed_stations();
  void schedule_inter_area_workload();
  void schedule_intra_area_workload();
  void generate_inter_area_packet();
  void generate_intra_area_flood();
  [[nodiscard]] geo::GeoArea destination_area(traffic::Direction dir) const;
  [[nodiscard]] geo::GeoArea whole_road_area() const;

  HighwayConfig config_;
  double vehicle_range_m_;
  AttackGeometry geometry_;

  sim::Rng master_rng_;
  sim::Rng workload_rng_;
  /// Dedicated churn stream, seeded independently of `master_rng_` (salted
  /// run seed) so enabling churn never perturbs the fork order that every
  /// pre-existing consumer depends on for reproducibility.
  sim::Rng churn_rng_;
  /// Strip-parallel plane; nullptr when `config.strips == 0` (classic
  /// serial run). Declared before the stations/attackers below so their
  /// destructors can still cancel events through their plane handles.
  std::unique_ptr<sim::StripPlane> plane_;
  /// The classic standalone queue, used only when no plane exists — kept as
  /// a member (not conditionally allocated) so serial construction cost and
  /// layout stay exactly as before.
  sim::EventQueue events_own_;
  /// The scenario's scheduling surface: the plane's global handle when
  /// strip-parallel, else `events_own_`. Everything the scenario itself
  /// schedules (traffic ticks, workload, churn, attacker construction) goes
  /// through here and therefore runs in the serial phase.
  sim::EventQueue& events_;
  security::CertificateAuthority ca_;
  std::unique_ptr<phy::Medium> medium_;
  traffic::RoadSegment road_;
  std::unique_ptr<traffic::TrafficSimulation> traffic_;

  std::unordered_map<traffic::VehicleId, Station> stations_;
  std::size_t stations_created_{0};
  std::uint64_t churn_crashes_{0};
  std::uint64_t churn_reboots_{0};

  // Static destination stations (inter-area mode).
  Station east_destination_;
  Station west_destination_;

  std::unique_ptr<attack::InterAreaInterceptor> interceptor_;
  std::unique_ptr<attack::IntraAreaBlocker> blocker_;
  std::unique_ptr<attack::CongestionFlooder> flooder_;

  /// Run-wide MAC/ingest totals (see harvest_station_stats).
  phy::MacStats mac_totals_{};
  double peak_cbr_{0.0};
  std::uint64_t ingest_drop_totals_{0};

  // Workload bookkeeping.
  std::uint64_t next_packet_id_{1};
  std::vector<InterAreaPacketRecord> inter_records_;
  std::unordered_map<std::uint64_t, std::size_t> inter_pending_;  // id -> record index
  struct FloodState {
    std::size_t record_index;
    /// Vehicles that have not received this flood yet, kept sorted so the
    /// delivery handler can binary-search — one vector per flood instead of
    /// a hash node per (flood, vehicle).
    std::vector<traffic::VehicleId> remaining;
  };
  std::vector<IntraAreaFloodRecord> flood_records_;
  std::unordered_map<std::uint64_t, FloodState> floods_pending_;  // id -> state
  bool intra_mode_{false};
  /// Guards the workload records above inside delivery handlers, which run
  /// on strip workers in a strip-parallel run. Engaged only when `plane_`
  /// exists — serial runs take no lock. Every guarded update is
  /// order-commutative (set removal, counter increment, max), so worker
  /// interleaving cannot change the result, only protect it.
  std::mutex delivery_mutex_;
};

}  // namespace vgr::scenario

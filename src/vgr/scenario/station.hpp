#pragma once

#include <memory>

#include "vgr/gn/mobility.hpp"
#include "vgr/gn/router.hpp"
#include "vgr/traffic/road.hpp"
#include "vgr/traffic/vehicle.hpp"

namespace vgr::scenario {

/// Adapts a traffic-model vehicle to the router's mobility interface. The
/// adapter must not outlive the vehicle it wraps; `HighwayScenario` tears
/// stations down in its exit hook before the vehicle is destroyed.
class VehicleMobility final : public gn::MobilityProvider {
 public:
  VehicleMobility(const traffic::Vehicle& vehicle, const traffic::RoadSegment& road)
      : vehicle_{&vehicle}, road_{&road} {}

  [[nodiscard]] geo::Position position() const override { return vehicle_->position(*road_); }
  [[nodiscard]] double speed_mps() const override { return vehicle_->speed(); }
  [[nodiscard]] double heading_rad() const override { return vehicle_->heading(); }

 private:
  const traffic::Vehicle* vehicle_;
  const traffic::RoadSegment* road_;
};

/// One station's communication stack: its mobility source plus its router.
/// Used for both vehicles (VehicleMobility) and roadside units
/// (StaticMobility).
struct Station {
  std::unique_ptr<gn::MobilityProvider> mobility;
  /// Strip-plane scheduling handle (non-owning; the plane owns it and it
  /// survives crash/reboot cycles) when the scenario runs strip-parallel.
  /// nullptr in classic serial runs — the router then uses the scenario's
  /// own event queue directly.
  sim::EventQueue* home{nullptr};
  std::unique_ptr<gn::Router> router;
};

}  // namespace vgr::scenario

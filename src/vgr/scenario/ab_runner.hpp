#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "vgr/scenario/highway.hpp"

namespace vgr::scenario {

/// Paired A/B experiment results: the attacker-free baseline, the attacked
/// timeline, and the paper's headline metric (gamma for inter-area
/// interception, lambda for intra-area blockage — the average relative
/// reception drop over 5 s bins).
struct AbResult {
  /// Per-arm drop/congestion totals, summed over every run of the arm
  /// (docs/robustness.md). The MAC counters are zero unless the MAC layer
  /// is enabled; ingest drops are zero on an un-faulted channel.
  struct ArmTotals {
    std::uint64_t mac_queue_overflow{0};
    std::uint64_t mac_retry_exhausted{0};
    std::uint64_t mac_dcc_gated{0};
    std::uint64_t mac_backoff_retries{0};
    std::uint64_t mac_transmitted{0};
    std::uint64_t ingest_drops{0};
    std::uint64_t frames_flooded{0};
    double peak_cbr{0.0};  ///< max over runs of the per-run peak CBR
  };

  sim::BinnedRate baseline;
  sim::BinnedRate attacked;
  double attack_rate{0.0};          ///< gamma / lambda
  double baseline_reception{0.0};   ///< overall rate, attacker-free
  double attacked_reception{0.0};   ///< overall rate, attacked
  ArmTotals baseline_totals{};
  ArmTotals attacked_totals{};
  /// Packet-weighted accumulators behind baseline_reception /
  /// attacked_reception in the inter-area experiment (the intra-area one
  /// derives receptions from the merged bins and leaves these at zero).
  /// Exposed so sweep shards (vgr/sweep) merge receptions exactly instead
  /// of re-weighting already-divided ratios.
  double reception_base_hits{0.0};
  double reception_base_trials{0.0};
  double reception_atk_hits{0.0};
  double reception_atk_trials{0.0};
  std::uint64_t runs{0};
  /// Runs (seed-paired A/B executions) where at least one arm tripped the
  /// per-run watchdog (`Fidelity::run_wall_budget_s` / `run_max_events`) and
  /// stopped before its horizon. Such runs still contribute their partial
  /// timelines; a non-zero count flags the sweep as degraded.
  std::uint64_t timed_out_runs{0};
  /// `timed_out_runs` split by cause, counted per *arm* (a run where both
  /// arms trip contributes twice here but once above): the event-budget trip
  /// is deterministic, the wall-clock one is host-dependent, and the sweep
  /// supervisor's retry/degrade ladder keys off the distinction.
  std::uint64_t timed_out_events{0};
  std::uint64_t timed_out_wall{0};
};

/// Experiment fidelity, environment-overridable so the same benches run in
/// minutes on a laptop or at full paper fidelity (100 runs x 200 s):
///   VGR_RUNS         — runs per setting (default `default_runs`)
///   VGR_SIM_SECONDS  — simulated seconds per run (default from config)
///   VGR_THREADS      — worker threads for run-level parallelism
///                      (default: all hardware threads; 1 = serial)
///   VGR_RUN_TIMEOUT_S   — per-run wall-clock watchdog, seconds (0 = off)
///   VGR_RUN_MAX_EVENTS  — per-run event-count circuit breaker (0 = off)
/// The resilience knobs (`VGR_FAULT_*`, `VGR_CHURN_*`, `VGR_SCF*`,
/// `VGR_RETX*`, `VGR_NBR_MONITOR`, `VGR_MAC_*`, `VGR_DCC_*`; see
/// docs/robustness.md) are likewise applied to every run's config, so any
/// experiment can be replayed under channel faults, node churn, with the
/// recovery layer enabled, or on a contended CSMA/CA + DCC channel.
/// Malformed values are rejected whole-token with a stderr warning rather
/// than silently parsed as a prefix or as 0.
struct Fidelity {
  std::uint64_t runs{3};
  /// Seed-range offset for sweep shards (vgr/sweep): the runs executed are
  /// seeded `first_run+1 .. first_run+runs`, so a sweep point can be cut
  /// into seed-range shards whose merged result equals the monolithic run.
  /// 0 (the default, not env-overridable) keeps historical behaviour.
  std::uint64_t first_run{0};
  double sim_seconds{-1.0};  ///< <= 0 keeps the config's duration
  /// Worker threads for independent runs; 0 = auto (VGR_THREADS or all
  /// hardware threads). Results are bit-identical for every value because
  /// runs are merged in seed order (see ab_runner.cpp).
  std::size_t threads{0};
  /// Per-run watchdog (see HighwayConfig): 0 disables either bound.
  double run_wall_budget_s{0.0};
  std::uint64_t run_max_events{0};

  static Fidelity from_env(std::uint64_t default_runs = 3);
};

/// Runs `runs` paired (attacker-free, attacked) inter-area experiments with
/// seeds 1..runs and merges the binned reception timelines. `config.attack`
/// selects the attacker for the B-arm (kNone keeps the classic kInterArea
/// interceptor); the A-arm always clears it.
AbResult run_inter_area_ab(HighwayConfig config, const Fidelity& fidelity);

/// Same pairing for the intra-area (CBF flood) experiment.
AbResult run_intra_area_ab(HighwayConfig config, const Fidelity& fidelity);

/// Single-arm helpers (used when the baseline is shared across settings).
sim::BinnedRate run_inter_area_arm(HighwayConfig config, const Fidelity& fidelity);
sim::BinnedRate run_intra_area_arm(HighwayConfig config, const Fidelity& fidelity);

}  // namespace vgr::scenario

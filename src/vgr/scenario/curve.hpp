#pragma once

#include <memory>
#include <vector>

#include "vgr/attack/intra_area.hpp"
#include "vgr/gn/router.hpp"
#include "vgr/phy/medium.hpp"
#include "vgr/scenario/station.hpp"
#include "vgr/security/authority.hpp"
#include "vgr/sim/event_queue.hpp"

namespace vgr::scenario {

/// Road-safety impact study (paper §IV-B, Fig 11b / Fig 13).
///
/// Two vehicles approach a blind curve from opposite directions; terrain
/// blocks direct radio between the two sides, so a roadside unit R1 at the
/// outer edge relays. V1 identifies a hazard in its lane, swerves into the
/// oncoming lane to pass it and broadcasts a CBF lane-change warning. In the
/// benign run R1 relays the warning and V2 brakes early; under the
/// intra-area blockage attack (targeted-replay variant aimed only at R1)
/// the relay is suppressed, the vehicles only see each other at the curve's
/// short sight line, and the late emergency braking ends in a collision.
struct CurveConfig {
  bool attacked{false};
  phy::AccessTechnology tech{phy::AccessTechnology::kDsrc};

  // Kinematics (speeds from the paper; geometry sized to the blind curve).
  double v1_start_x{-150.0};
  double v1_speed{27.0};
  double v2_start_x{120.0};
  double v2_speed{14.0};
  double approach_decel{2.0};   ///< both vehicles, entering the curve
  double v1_cruise_floor{12.0}; ///< V1 passes the hazard at this speed
  double v2_cruise_floor{8.0};
  double hazard_decel{4.0};     ///< V1 after identifying the hazard
  double warned_decel{4.0};     ///< V2 after receiving the warning
  double emergency_decel{6.0};
  double warn_time_s{2.0};      ///< V1 identifies hazard / sends warning
  /// V1 occupies the oncoming lane while x in [-zone, +zone].
  double passing_zone_m{40.0};
  double sight_distance_m{25.0};///< LoS across the curve apex
  double reaction_s{0.8};
  double tick_s{0.01};
  double sim_seconds{25.0};
  std::uint64_t seed{7};
};

struct CurveSample {
  double t{0.0};
  double v1_speed{0.0};
  double v2_speed{0.0};
  double v1_x{0.0};
  double v2_x{0.0};
};

struct CurveResult {
  std::vector<CurveSample> profile;  ///< sampled every 100 ms
  bool warning_delivered{false};
  double warning_delivered_at_s{-1.0};
  bool collision{false};
  double collision_time_s{-1.0};
  double min_gap_m{1e9};
};

/// Runs the scripted blind-curve scenario once.
CurveResult run_curve_scenario(const CurveConfig& config);

}  // namespace vgr::scenario

#include "vgr/scenario/highway.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "vgr/sim/env.hpp"
#include "vgr/sim/strip_executor.hpp"

namespace vgr::scenario {
namespace {

net::Bytes encode_packet_id(std::uint64_t id) {
  net::Bytes b(8);
  for (int i = 0; i < 8; ++i) b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(id >> (8 * i));
  return b;
}

std::uint64_t decode_packet_id(const net::Bytes& b) {
  if (b.size() < 8) return 0;
  std::uint64_t id = 0;
  for (int i = 0; i < 8; ++i) id |= static_cast<std::uint64_t>(b[static_cast<std::size_t>(i)]) << (8 * i);
  return id;
}

/// Builds the strip plane for a strip-parallel config, nullptr for the
/// classic serial run. Strip-parallel legality: the stochastic channel
/// features (faults, interference) couple receivers across strips through
/// shared RNG draws and cannot be windowed — configs asking for both get
/// the serial loop (and trip the assert in debug builds).
std::unique_ptr<sim::StripPlane> make_plane(const HighwayConfig& config) {
  if (config.strips <= 0) return nullptr;
  assert(!config.faults.enabled() && !config.interference &&
         "strips require the deterministic channel (no faults/interference)");
  if (config.faults.enabled() || config.interference) return nullptr;
  sim::StripPlane::Config pc;
  pc.strips = static_cast<std::uint32_t>(config.strips);
  pc.threads = config.strip_threads;
  // Safety condition: lookahead <= min cross-strip delivery latency (one
  // frame airtime + propagation). The 50 us default sits far below the
  // ~400 us airtime of the smallest secured beacon; the env override exists
  // for lookahead-sensitivity experiments.
  if (const auto v = sim::env_double("VGR_LOOKAHEAD_US"); v.has_value() && *v > 0.0) {
    pc.lookahead = sim::Duration::micros(*v);
  }
  return std::make_unique<sim::StripPlane>(pc);
}

}  // namespace

ChurnConfig ChurnConfig::with_env_overrides() const {
  ChurnConfig c = *this;
  if (const auto v = sim::env_double("VGR_CHURN_RATE"); v.has_value() && *v >= 0.0) {
    c.crash_rate_hz = *v;
  }
  if (const auto v = sim::env_double("VGR_CHURN_DOWNTIME_MS"); v.has_value() && *v >= 0.0) {
    c.downtime_s = *v / 1000.0;
  }
  if (const auto v = sim::env_double("VGR_CHURN_REBOOT_P");
      v.has_value() && *v >= 0.0 && *v <= 1.0) {
    c.reboot_probability = *v;
  }
  return c;
}

RecoveryConfig RecoveryConfig::with_env_overrides() const {
  RecoveryConfig r = *this;
  if (const auto v = sim::env_int("VGR_SCF"); v.has_value()) r.scf = *v != 0;
  if (const auto v = sim::env_int("VGR_SCF_MAX_PKTS"); v.has_value() && *v >= 0) {
    r.scf_max_packets = static_cast<std::size_t>(*v);
  }
  if (const auto v = sim::env_int("VGR_SCF_MAX_BYTES"); v.has_value() && *v >= 0) {
    r.scf_max_bytes = static_cast<std::size_t>(*v);
  }
  if (const auto v = sim::env_int("VGR_RETX"); v.has_value()) r.retx = *v != 0;
  if (const auto v = sim::env_int("VGR_RETX_MAX"); v.has_value() && *v > 0) {
    r.retx_max_attempts = static_cast<int>(*v);
  }
  if (const auto v = sim::env_double("VGR_RETX_BACKOFF_MS"); v.has_value() && *v > 0.0) {
    r.retx_backoff_ms = *v;
  }
  if (const auto v = sim::env_int("VGR_NBR_MONITOR"); v.has_value()) r.nbr_monitor = *v != 0;
  return r;
}

double HighwayConfig::resolved_vehicle_range() const {
  if (vehicle_range_m > 0.0) return vehicle_range_m;
  return phy::range_table(tech).nlos_median_m;
}

double HighwayConfig::resolved_attacker_x() const {
  return attacker_x_m >= 0.0 ? attacker_x_m : road_length_m / 2.0;
}

AttackGeometry HighwayConfig::attack_geometry() const {
  return AttackGeometry{resolved_attacker_x(), attack_range_m, resolved_vehicle_range()};
}

double InterAreaResult::overall_reception() const {
  if (packets.empty()) return 0.0;
  std::size_t hits = 0;
  for (const auto& r : packets) hits += r.received ? 1 : 0;
  return static_cast<double>(hits) / static_cast<double>(packets.size());
}

sim::BinnedRate InterAreaResult::binned(sim::Duration bin) const {
  sim::BinnedRate rate{bin, horizon};
  for (const auto& r : packets) rate.record(r.sent_at, r.received ? 1.0 : 0.0, 1.0);
  return rate;
}

sim::Histogram InterAreaResult::latency() const {
  sim::Histogram h;
  for (const auto& r : packets) {
    if (r.received) h.add((r.received_at - r.sent_at).to_seconds());
  }
  return h;
}

double IntraAreaResult::overall_reception() const {
  double reached = 0.0, total = 0.0;
  for (const auto& f : floods) {
    reached += static_cast<double>(f.reached);
    total += static_cast<double>(f.total);
  }
  return total > 0.0 ? reached / total : 0.0;
}

sim::BinnedRate IntraAreaResult::binned(sim::Duration bin) const {
  sim::BinnedRate rate{bin, horizon};
  for (const auto& f : floods) {
    rate.record(f.sent_at, static_cast<double>(f.reached), static_cast<double>(f.total));
  }
  return rate;
}

std::pair<double, double> IntraAreaResult::reception_by_source_location() const {
  double in_hits = 0.0, in_total = 0.0, out_hits = 0.0, out_total = 0.0;
  for (const auto& f : floods) {
    if (f.source_fully_covered) {
      in_hits += static_cast<double>(f.reached);
      in_total += static_cast<double>(f.total);
    } else {
      out_hits += static_cast<double>(f.reached);
      out_total += static_cast<double>(f.total);
    }
  }
  return {in_total > 0.0 ? in_hits / in_total : 0.0,
          out_total > 0.0 ? out_hits / out_total : 0.0};
}

sim::Histogram IntraAreaResult::completion_latency() const {
  sim::Histogram h;
  for (const auto& f : floods) {
    if (f.reached > 1) h.add((f.last_reach_at - f.sent_at).to_seconds());
  }
  return h;
}

HighwayScenario::HighwayScenario(HighwayConfig config)
    : config_{config},
      vehicle_range_m_{config.resolved_vehicle_range()},
      geometry_{config.attack_geometry()},
      master_rng_{config.seed},
      workload_rng_{master_rng_.fork()},
      // Salted independent seed, NOT a master fork: forking here would shift
      // the stream every later fork() consumer sees and silently change all
      // pre-churn results.
      churn_rng_{config.seed ^ 0xC0FF'EE00'5EED'1234ULL},
      plane_{make_plane(config)},
      events_{plane_ ? plane_->global() : events_own_},
      road_{config.road_length_m, config.lanes_per_direction, config.two_way} {
  if (plane_) {
    // Strip workers verify concurrently against the one shared trust store;
    // its LRU caches must serialize (verdicts are unaffected, see
    // TrustStore::set_concurrent).
    ca_.set_store_concurrent(true);
  }
  medium_ = std::make_unique<phy::Medium>(events_, config_.tech, master_rng_.fork());
  if (plane_) {
    // Index rebuilds are pinned to the serial point between windows.
    plane_->add_serial_hook([this] { medium_->prepare_index(); });
  }
  medium_->set_interference(config_.interference);
  medium_->set_spatial_index(config_.spatial_index);
  if (config_.faults.enabled()) {
    // The injector's stream is likewise salted and private; installing it
    // only when faults are configured keeps fault-free runs bit-identical.
    medium_->set_fault_injector(std::make_unique<phy::FaultInjector>(
        config_.faults, sim::Rng{config_.seed ^ 0xFA01'7EC7'0000'BEEFULL}));
  }
  // Vehicle positions only change on the traffic tick, so one index rebuild
  // per tick serves every frame transmitted until the next tick.
  medium_->set_index_mode(phy::IndexMode::kExplicit);
  // Frame airtime counts the link-layer envelope only when the MAC layer is
  // on: MAC-off runs keep the historical GN-only airtime bit-for-bit.
  if (config_.mac.enabled) {
    medium_->set_airtime_overhead_bytes(config_.mac.airtime_overhead_bytes);
  }

  traffic::TrafficSimulation::Config tcfg;
  tcfg.entry_spacing_m = config_.entry_spacing_m;
  tcfg.prefill_spacing_m = config_.prefill_spacing_m;
  traffic_ = std::make_unique<traffic::TrafficSimulation>(road_, tcfg);
  traffic_->set_on_spawn([this](traffic::Vehicle& v) { spawn_station(v); });
  traffic_->set_on_exit([this](traffic::Vehicle& v) { destroy_station(v); });
  traffic_->set_on_tick([this] {
    medium_->invalidate_index();
    // The tick is a global event (serial phase): boundary crossers queue
    // their migration here and the plane settles it before the next window.
    if (plane_) rehome_crossed_stations();
  });
}

HighwayScenario::~HighwayScenario() = default;

gn::RouterConfig HighwayScenario::make_router_config() const {
  gn::RouterConfig rc = gn::RouterConfig::for_technology(config_.tech);
  rc.locte_ttl = config_.locte_ttl;
  rc.beacon_interval = config_.beacon_interval;
  // Jitter scales with the interval so CAM-rate sweeps (0.1 s beacons in the
  // congestion arm) keep the same relative spread; at the 3 s default this
  // reproduces the RouterConfig default of 0.75 s exactly.
  rc.beacon_jitter = config_.beacon_interval * 0.25;
  rc.cbf_dist_max_m = vehicle_range_m_;
  rc.default_hop_limit = config_.hop_limit;
  rc.gf_ack = config_.gf_ack;
  rc.scf_enabled = config_.recovery.scf;
  rc.scf_max_packets = config_.recovery.scf_max_packets;
  rc.scf_max_bytes = config_.recovery.scf_max_bytes;
  rc.retx_enabled = config_.recovery.retx;
  rc.retx_max_attempts = config_.recovery.retx_max_attempts;
  rc.retx_backoff_base = sim::Duration::seconds(config_.recovery.retx_backoff_ms / 1000.0);
  rc.retx_backoff_jitter = rc.retx_backoff_base * 0.2;
  rc.nbr_monitor = config_.recovery.nbr_monitor;
  rc.mac = config_.mac;
  rc.dcc = config_.dcc;
  // SCF implies the CBF lifetime bound: both exist to stop per-packet state
  // outliving the packet.
  rc.cbf_lifetime_expiry = config_.recovery.scf;
  mitigation::apply(config_.mitigation, rc, config_.mitigation_params);
  return rc;
}

std::uint32_t HighwayScenario::strip_for_x(double x) const {
  assert(plane_ != nullptr);
  const auto k = static_cast<std::int64_t>(config_.strips);
  const double width = config_.road_length_m / static_cast<double>(k);
  const auto s = 1 + static_cast<std::int64_t>(std::floor(x / width));
  return static_cast<std::uint32_t>(std::clamp<std::int64_t>(s, 1, k));
}

void HighwayScenario::rehome_crossed_stations() {
  // Queueing a re-home is a disjoint per-handle operation and the plane's
  // settlement sweeps wheels independently of queueing order, so the map
  // walk cannot leak iteration order into the run.
  // vgr-lint: begin ordered-ok (disjoint per-handle re-home queueing commutes)
  for (auto& [vid, st] : stations_) {
    if (st.home == nullptr) continue;  // never true today; defensive
    const std::uint32_t target = strip_for_x(st.mobility->position().x);
    if (target != st.home->strip()) plane_->rehome(*st.home, target);
  }
  // vgr-lint: end
}

void HighwayScenario::schedule_pseudonym_rotation(traffic::VehicleId id) {
  const auto period = sim::Duration::seconds(config_.pseudonym_period_s);
  const auto jitter =
      sim::Duration::seconds(config_.pseudonym_period_s * workload_rng_.uniform());
  events_.schedule_in(period + jitter, [this, id] {
    const auto it = stations_.find(id);
    if (it == stations_.end()) return;  // vehicle exited
    if (it->second.router) {            // crashed stations skip this rotation
      const net::MacAddress alias_mac{workload_rng_.next_u64()};
      it->second.router->rotate_identity(ca_.issue_pseudonym(
          net::GnAddress{net::GnAddress::StationType::kPassengerCar, alias_mac}));
    }
    schedule_pseudonym_rotation(id);
  });
}

void HighwayScenario::install_vehicle_router(traffic::VehicleId vid, Station& st, sim::Rng rng,
                                             bool rebooted) {
  // Identity: one long-term certificate per vehicle, MAC derived from the
  // vehicle id (unique within a run). A rebooted station keeps its
  // canonical address — rebooting does not change who you are — which is
  // precisely what makes the stale duplicate-detector state at its peers
  // dangerous (see the sequence-number randomization below).
  const net::MacAddress mac{0x0200'0000'0000ULL | vid};
  const net::GnAddress addr{net::GnAddress::StationType::kPassengerCar, mac};
  // Strip-parallel runs hand the router its station's per-strip handle, so
  // every timer/buffer event it schedules lands on its own strip's wheel; a
  // reboot reuses the handle (the plane keeps tracking the vehicle's strip
  // across the downtime).
  sim::EventQueue& queue = st.home != nullptr ? *st.home : events_;
  st.router = std::make_unique<gn::Router>(queue, *medium_, security::Signer{ca_.enroll(addr)},
                                           ca_.trust_store(), *st.mobility,
                                           make_router_config(), vehicle_range_m_, rng);
  if (rebooted) {
    // TCP-ISN-style randomization: peers still hold (address, sequence)
    // entries from before the crash, so a reboot that restarts at 0 gets
    // its first packets swallowed as duplicates (black-holed) until that
    // state ages out. A random starting point turns the certain collision
    // into a small-window accident (see docs/robustness.md).
    st.router->seed_sequence_number(
        static_cast<net::SequenceNumber>(churn_rng_.uniform_int(0, 0xFFFF)));
  }
  st.router->start();

  if (intra_mode_) {
    st.router->set_delivery_handler([this, vid](const gn::Router::Delivery& d) {
      // Strip workers deliver concurrently; every update below commutes
      // (set removal keyed by vid, counter, max), so the lock only protects
      // the containers — interleaving cannot change the result.
      std::unique_lock<std::mutex> lock{delivery_mutex_, std::defer_lock};
      if (plane_) lock.lock();
      const std::uint64_t id = decode_packet_id(d.packet().payload);
      const auto it = floods_pending_.find(id);
      if (it == floods_pending_.end()) return;
      auto& remaining = it->second.remaining;
      const auto pos = std::lower_bound(remaining.begin(), remaining.end(), vid);
      if (pos != remaining.end() && *pos == vid) {
        remaining.erase(pos);
        auto& record = flood_records_[it->second.record_index];
        ++record.reached;
        // max, not assignment: serially deliveries arrive in time order so
        // this is identical, and across strips it is arrival-order-free.
        record.last_reach_at = std::max(record.last_reach_at, d.at);
      }
    });
  }
}

void HighwayScenario::spawn_station(traffic::Vehicle& v) {
  Station st;
  st.mobility = std::make_unique<VehicleMobility>(v, road_);
  // Spawns run inside global events (prefill, entry tick), so handing out a
  // plane handle here is always a serial-phase operation.
  if (plane_) st.home = &plane_->make_handle(strip_for_x(st.mobility->position().x));
  const auto [it, inserted] = stations_.emplace(v.id(), std::move(st));
  assert(inserted);
  install_vehicle_router(v.id(), it->second, master_rng_.fork(), /*rebooted=*/false);
  ++stations_created_;
  if (config_.pseudonym_period_s > 0.0) schedule_pseudonym_rotation(v.id());
}

void HighwayScenario::harvest_station_stats(const gn::Router& router) {
  const gn::RouterStats& s = router.stats();
  ingest_drop_totals_ += s.ingest_decode_failures + s.ingest_invalid_pv + s.ingest_invalid_rhl +
                         s.ingest_invalid_lifetime + s.ingest_oversized_payload;
  if (const phy::Mac* mac = router.mac_layer()) {
    mac_totals_.add(mac->stats());
    peak_cbr_ = std::max(peak_cbr_, mac->dcc().peak_cbr());
  }
}

void HighwayScenario::destroy_station(traffic::Vehicle& v) {
  const auto it = stations_.find(v.id());
  if (it == stations_.end()) return;
  if (it->second.router) {
    harvest_station_stats(*it->second.router);
    it->second.router->shutdown();
  }
  stations_.erase(it);
}

void HighwayScenario::schedule_churn() {
  if (!config_.churn.enabled()) return;
  // Poisson process: exponential inter-arrival between fleet-wide crashes.
  const double dt = -std::log(1.0 - churn_rng_.uniform()) / config_.churn.crash_rate_hz;
  events_.schedule_in(sim::Duration::seconds(dt), [this] {
    crash_random_station();
    schedule_churn();
  });
}

void HighwayScenario::crash_random_station() {
  std::vector<traffic::VehicleId> live;
  live.reserve(stations_.size());
  // vgr-lint: ordered-ok (collected ids are sorted below)
  for (const auto& [vid, st] : stations_) {
    if (st.router) live.push_back(vid);
  }
  if (live.empty()) return;
  std::sort(live.begin(), live.end());  // map order is not deterministic
  const traffic::VehicleId victim = live[static_cast<std::size_t>(
      churn_rng_.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1))];

  // A crash is an abrupt power loss: the radio falls silent mid-protocol
  // and every bit of soft state — location table, CBF/GF buffers, duplicate
  // detector, pending timers — is gone. The vehicle keeps driving.
  auto& st = stations_.at(victim);
  harvest_station_stats(*st.router);
  st.router->shutdown();
  st.router.reset();
  ++churn_crashes_;

  if (config_.churn.reboot_probability > 0.0 &&
      churn_rng_.bernoulli(config_.churn.reboot_probability)) {
    events_.schedule_in(sim::Duration::seconds(config_.churn.downtime_s),
                        [this, victim] { reboot_station(victim); });
  }
}

void HighwayScenario::reboot_station(traffic::VehicleId vid) {
  const auto it = stations_.find(vid);
  if (it == stations_.end() || it->second.router) return;  // exited while down
  // Audited mixed role: churn_rng_ deliberately interleaves
  // crash-schedule/ISN draws with per-reboot forks so a rebooted station's
  // stream depends on the full churn history before it — that coupling is the
  // point of the churn model, and the sequence is pinned by
  // scenario_churn_test; churn off = stream untouched.
  // vgr-lint: rng-stream-ok (audited interleaved churn stream, see note above)
  install_vehicle_router(vid, it->second, churn_rng_.fork(), /*rebooted=*/true);
  ++churn_reboots_;
}

geo::GeoArea HighwayScenario::destination_area(traffic::Direction dir) const {
  // Static destinations sit 20 m beyond each end of the segment (Fig 6).
  const double x = dir == traffic::Direction::kEastbound ? config_.road_length_m + 20.0 : -20.0;
  return geo::GeoArea::circle({x, road_.lane_center_y(traffic::Direction::kEastbound, 0)}, 30.0);
}

geo::GeoArea HighwayScenario::whole_road_area() const {
  return geo::GeoArea::rectangle({config_.road_length_m / 2.0, 0.0},
                                 config_.road_length_m / 2.0 + 60.0, 60.0);
}

void HighwayScenario::schedule_inter_area_workload() {
  events_.schedule_in(config_.packet_interval, [this] {
    generate_inter_area_packet();
    if (events_.now() + config_.packet_interval <= sim::TimePoint::at(config_.sim_duration)) {
      schedule_inter_area_workload();
    }
  });
}

void HighwayScenario::generate_inter_area_packet() {
  // Candidate (vehicle, direction) pairs whose packets are vulnerable by
  // the Fig-6 geometry. The same rule runs in attacker-free A-runs so both
  // arms of the A/B pair see an identical workload.
  struct Candidate {
    traffic::VehicleId id;
    double x;
    traffic::Direction dir;
  };
  std::vector<Candidate> candidates;
  // vgr-lint: ordered-ok (candidates are sorted below before the RNG pick)
  for (const auto& [vid, st] : stations_) {
    if (!st.router) continue;  // crashed station cannot originate
    const traffic::Vehicle* v = nullptr;
    v = traffic_->find(vid);
    if (v == nullptr) continue;
    if (geometry_.eastbound_vulnerable(v->x())) {
      candidates.push_back({vid, v->x(), traffic::Direction::kEastbound});
    }
    if (geometry_.westbound_vulnerable(v->x())) {
      candidates.push_back({vid, v->x(), traffic::Direction::kWestbound});
    }
  }
  if (candidates.empty()) return;
  std::sort(candidates.begin(), candidates.end(), [](const Candidate& a, const Candidate& b) {
    if (a.id != b.id) return a.id < b.id;
    return a.dir == traffic::Direction::kEastbound && b.dir == traffic::Direction::kWestbound;
  });
  const auto& pick = candidates[static_cast<std::size_t>(
      workload_rng_.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];

  const std::uint64_t id = next_packet_id_++;
  inter_pending_[id] = inter_records_.size();
  inter_records_.push_back(InterAreaPacketRecord{events_.now(), pick.x, pick.dir, false});
  stations_.at(pick.id).router->send_geo_broadcast(destination_area(pick.dir),
                                                   encode_packet_id(id), config_.hop_limit);
}

InterAreaResult HighwayScenario::run_inter_area() {
  intra_mode_ = false;

  // Destination stations 20 m beyond each end.
  auto make_destination = [this](traffic::Direction dir) {
    const geo::GeoArea area = destination_area(dir);
    const net::MacAddress mac{dir == traffic::Direction::kEastbound ? 0x0200'0000'E000ULL
                                                                    : 0x0200'0000'D000ULL};
    const net::GnAddress addr{net::GnAddress::StationType::kRoadSideUnit, mac};
    Station st;
    st.mobility = std::make_unique<gn::StaticMobility>(area.center());
    // A destination sits just past a road end, so it lives in the edge
    // strip (strip_for_x clamps) — almost all of its traffic is same-strip.
    if (plane_) st.home = &plane_->make_handle(strip_for_x(area.center().x));
    sim::EventQueue& queue = st.home != nullptr ? *st.home : events_;
    st.router = std::make_unique<gn::Router>(queue, *medium_, security::Signer{ca_.enroll(addr)},
                                             ca_.trust_store(), *st.mobility,
                                             make_router_config(), vehicle_range_m_,
                                             master_rng_.fork());
    st.router->start();
    st.router->set_delivery_handler([this, dir](const gn::Router::Delivery& d) {
      // The two destinations live on different strips, so their handlers
      // can race on the shared records; the updates commute (first receipt
      // per id wins and duplicates are filtered by the id lookup).
      std::unique_lock<std::mutex> lock{delivery_mutex_, std::defer_lock};
      if (plane_) lock.lock();
      const std::uint64_t id = decode_packet_id(d.packet().payload);
      const auto it = inter_pending_.find(id);
      if (it == inter_pending_.end()) return;
      if (inter_records_[it->second].target == dir) {
        inter_records_[it->second].received = true;
        inter_records_[it->second].received_at = d.at;
        inter_pending_.erase(it);
      }
    });
    return st;
  };
  east_destination_ = make_destination(traffic::Direction::kEastbound);
  west_destination_ = make_destination(traffic::Direction::kWestbound);

  if (config_.attack == AttackKind::kInterArea) {
    interceptor_ = std::make_unique<attack::InterAreaInterceptor>(
        events_, *medium_, geo::Position{config_.resolved_attacker_x(), config_.attacker_y_m},
        config_.attack_range_m);
  } else if (config_.attack == AttackKind::kCongestionFlood) {
    flooder_ = std::make_unique<attack::CongestionFlooder>(
        events_, *medium_, geo::Position{config_.resolved_attacker_x(), config_.attacker_y_m},
        config_.attack_range_m,
        attack::CongestionFlooder::Config{config_.flood_rate_hz, 16, true});
  }

  traffic_->prefill();
  traffic_->run_on(events_, sim::TimePoint::at(config_.sim_duration));
  schedule_inter_area_workload();
  schedule_churn();
  events_.set_run_budget(config_.run_max_events, config_.run_wall_budget_s);
  events_.run_until(sim::TimePoint::at(config_.sim_duration));

  // Sweep the survivors into the MAC/ingest totals (exited and crashed
  // stations were harvested at teardown). Sums and maxima are
  // order-independent, so the map walk cannot leak iteration order.
  // vgr-lint: begin ordered-ok (integer sums and max are order-independent)
  for (const auto& [vid, st] : stations_) {
    if (st.router) harvest_station_stats(*st.router);
  }
  // vgr-lint: end
  if (east_destination_.router) harvest_station_stats(*east_destination_.router);
  if (west_destination_.router) harvest_station_stats(*west_destination_.router);

  InterAreaResult result;
  result.packets = std::move(inter_records_);
  result.horizon = config_.sim_duration;
  if (interceptor_) result.beacons_replayed = interceptor_->beacons_replayed();
  result.churn_crashes = churn_crashes_;
  result.churn_reboots = churn_reboots_;
  result.mac = mac_totals_;
  result.peak_cbr = peak_cbr_;
  result.ingest_drops = ingest_drop_totals_;
  if (flooder_) result.frames_flooded = flooder_->frames_flooded();
  result.timed_out = events_.budget_exceeded();
  result.timed_out_cause = events_.budget_trip();
  return result;
}

void HighwayScenario::schedule_intra_area_workload() {
  events_.schedule_in(config_.packet_interval, [this] {
    generate_intra_area_flood();
    if (events_.now() + config_.packet_interval <= sim::TimePoint::at(config_.sim_duration)) {
      schedule_intra_area_workload();
    }
  });
}

void HighwayScenario::generate_intra_area_flood() {
  // Uniformly pick a source among live vehicles (ordered for determinism).
  // Crashed stations cannot originate but stay in the flood audience: the
  // flood is judged against every vehicle on the road, so churn shows up as
  // lost coverage rather than a shrunken denominator.
  std::vector<traffic::VehicleId> ids;
  std::vector<traffic::VehicleId> live;
  ids.reserve(stations_.size());
  live.reserve(stations_.size());
  // vgr-lint: ordered-ok (both collections are sorted below before use)
  for (const auto& [vid, st] : stations_) {
    ids.push_back(vid);
    if (st.router) live.push_back(vid);
  }
  if (live.empty()) return;
  std::sort(ids.begin(), ids.end());
  std::sort(live.begin(), live.end());
  const traffic::VehicleId source =
      live[static_cast<std::size_t>(workload_rng_.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1))];

  const traffic::Vehicle* v = traffic_->find(source);
  if (v == nullptr) return;

  const std::uint64_t id = next_packet_id_++;
  IntraAreaFloodRecord record;
  record.sent_at = events_.now();
  record.source_x = v->x();
  record.source_fully_covered = geometry_.in_fully_covered(v->x());
  record.reached = 1;  // the source trivially has the packet
  record.total = ids.size();

  FloodState state;
  state.record_index = flood_records_.size();
  state.remaining.reserve(ids.size());
  for (const traffic::VehicleId vid : ids) {  // `ids` is sorted, so is `remaining`
    if (vid != source) state.remaining.push_back(vid);
  }
  flood_records_.push_back(record);
  floods_pending_.emplace(id, std::move(state));

  stations_.at(source).router->send_geo_broadcast(whole_road_area(), encode_packet_id(id),
                                                  config_.hop_limit);
}

IntraAreaResult HighwayScenario::run_intra_area() {
  intra_mode_ = true;

  if (config_.attack == AttackKind::kIntraArea) {
    blocker_ = std::make_unique<attack::IntraAreaBlocker>(
        events_, *medium_, geo::Position{config_.resolved_attacker_x(), config_.attacker_y_m},
        config_.attack_range_m, config_.blocker);
  } else if (config_.attack == AttackKind::kCongestionFlood) {
    flooder_ = std::make_unique<attack::CongestionFlooder>(
        events_, *medium_, geo::Position{config_.resolved_attacker_x(), config_.attacker_y_m},
        config_.attack_range_m,
        attack::CongestionFlooder::Config{config_.flood_rate_hz, 16, true});
  }

  traffic_->prefill();
  traffic_->run_on(events_, sim::TimePoint::at(config_.sim_duration));
  schedule_intra_area_workload();
  schedule_churn();
  events_.set_run_budget(config_.run_max_events, config_.run_wall_budget_s);
  events_.run_until(sim::TimePoint::at(config_.sim_duration));

  // vgr-lint: begin ordered-ok (integer sums and max are order-independent)
  for (const auto& [vid, st] : stations_) {
    if (st.router) harvest_station_stats(*st.router);
  }
  // vgr-lint: end

  IntraAreaResult result;
  result.floods = std::move(flood_records_);
  result.horizon = config_.sim_duration;
  if (blocker_) result.packets_replayed = blocker_->packets_replayed();
  result.churn_crashes = churn_crashes_;
  result.churn_reboots = churn_reboots_;
  result.mac = mac_totals_;
  result.peak_cbr = peak_cbr_;
  result.ingest_drops = ingest_drop_totals_;
  if (flooder_) result.frames_flooded = flooder_->frames_flooded();
  result.timed_out = events_.budget_exceeded();
  result.timed_out_cause = events_.budget_trip();
  return result;
}

}  // namespace vgr::scenario

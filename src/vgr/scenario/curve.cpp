#include "vgr/scenario/curve.hpp"

#include <algorithm>
#include <cmath>

namespace vgr::scenario {
namespace {

/// Minimal kinematic actor for the scripted scenario: 1-D position with a
/// commanded deceleration and a floor speed.
struct Actor {
  double x;
  double speed;
  double direction;  // +1 east, -1 west
  double decel;
  double floor;

  void step(double dt) {
    speed = std::max(floor, speed - decel * dt);
    x += direction * speed * dt;
  }
};

class CurveMobility final : public gn::MobilityProvider {
 public:
  explicit CurveMobility(const Actor& actor, double y) : actor_{&actor}, y_{y} {}
  [[nodiscard]] geo::Position position() const override { return {actor_->x, y_}; }
  [[nodiscard]] double speed_mps() const override { return actor_->speed; }
  [[nodiscard]] double heading_rad() const override {
    return actor_->direction > 0 ? 0.0 : M_PI;
  }

 private:
  const Actor* actor_;
  double y_;
};

}  // namespace

CurveResult run_curve_scenario(const CurveConfig& config) {
  sim::Rng rng{config.seed};
  sim::EventQueue events;
  phy::Medium medium{events, config.tech, rng.fork()};
  security::CertificateAuthority ca;
  const double range = phy::range_table(config.tech).nlos_median_m;

  // Terrain: the curve blocks radio between the two sides for low antennas
  // (|y| < 20 m); R1 and the attacker sit high on the outer edge.
  medium.set_obstruction([](geo::Position a, geo::Position b) {
    const bool opposite_sides = (a.x < 0.0) != (b.x < 0.0);
    const bool both_low = std::abs(a.y) < 20.0 && std::abs(b.y) < 20.0;
    return opposite_sides && both_low;
  });

  Actor v1{config.v1_start_x, config.v1_speed, +1.0, config.approach_decel,
           config.v1_cruise_floor};
  Actor v2{config.v2_start_x, config.v2_speed, -1.0, config.approach_decel,
           config.v2_cruise_floor};

  CurveMobility v1_mob{v1, -2.5};
  CurveMobility v2_mob{v2, 2.5};
  gn::StaticMobility r1_mob{{0.0, 30.0}};

  gn::RouterConfig rc = gn::RouterConfig::for_technology(config.tech);
  rc.cbf_dist_max_m = range;

  auto make_router = [&](const gn::MobilityProvider& mob, std::uint64_t mac_bits,
                         net::GnAddress::StationType type) {
    const net::GnAddress addr{type, net::MacAddress{mac_bits}};
    return std::make_unique<gn::Router>(events, medium, security::Signer{ca.enroll(addr)},
                                        ca.trust_store(), mob, rc, range, rng.fork());
  };
  auto r_v1 = make_router(v1_mob, 0x0200'0000'0001ULL, net::GnAddress::StationType::kPassengerCar);
  auto r_v2 = make_router(v2_mob, 0x0200'0000'0002ULL, net::GnAddress::StationType::kPassengerCar);
  auto r_r1 = make_router(r1_mob, 0x0200'0000'0101ULL, net::GnAddress::StationType::kRoadSideUnit);
  r_v1->start();
  r_v2->start();
  r_r1->start();

  std::unique_ptr<attack::IntraAreaBlocker> blocker;
  if (config.attacked) {
    attack::IntraAreaBlocker::Config bc;
    bc.mode = attack::IntraAreaBlocker::Mode::kTargetedReplay;
    bc.targeted_range_m = 5.0;  // only R1, 3 m away, hears the replay
    blocker = std::make_unique<attack::IntraAreaBlocker>(events, medium,
                                                         geo::Position{3.0, 31.0}, range, bc);
  }

  CurveResult result;
  bool v2_warned = false;
  r_v2->set_delivery_handler([&](const gn::Router::Delivery&) {
    if (v2_warned) return;
    v2_warned = true;
    result.warning_delivered = true;
    result.warning_delivered_at_s = events.now().to_seconds();
    // The warned driver brakes toward a stop before the passing zone.
    v2.decel = config.warned_decel;
    v2.floor = 0.0;
  });

  bool warned_sent = false;
  bool emergency = false;
  double see_each_other_at = -1.0;
  double next_sample = 0.0;

  const double dt = config.tick_s;
  const auto until = sim::TimePoint::at(sim::Duration::seconds(config.sim_seconds));
  while (events.now() < until && !result.collision) {
    const double t = events.now().to_seconds();

    // --- Scripted driver logic ---
    if (!warned_sent && t >= config.warn_time_s) {
      warned_sent = true;
      v1.decel = config.hazard_decel;  // V1 brakes harder and swerves
      r_v1->send_geo_broadcast(geo::GeoArea::circle({0.0, 0.0}, 600.0),
                               net::Bytes{'L', 'C', 'W'});  // lane-change warning
    }
    // Sight line: once both vehicles are near the apex and within the sight
    // distance, drivers react and emergency-brake (after a reaction delay).
    const double gap = v2.x - v1.x;
    const bool head_on_course =
        v1.x >= -config.passing_zone_m && v1.x <= config.passing_zone_m;
    if (see_each_other_at < 0.0 && head_on_course && gap <= config.sight_distance_m) {
      see_each_other_at = t;
    }
    if (!emergency && see_each_other_at >= 0.0 && t >= see_each_other_at + config.reaction_s) {
      emergency = true;
      v1.decel = config.emergency_decel;
      v1.floor = 0.0;
      v2.decel = config.emergency_decel;
      v2.floor = 0.0;
    }

    // --- Collision test: V1 occupies the oncoming lane inside the passing
    // zone; a head-on happens if the bumpers meet there.
    const bool v1_in_oncoming_lane =
        v1.x >= -config.passing_zone_m && v1.x <= config.passing_zone_m;
    if (v1_in_oncoming_lane) {
      result.min_gap_m = std::min(result.min_gap_m, gap);
      if (gap <= 4.5) {
        result.collision = true;
        result.collision_time_s = t;
      }
    }

    if (t >= next_sample) {
      result.profile.push_back(CurveSample{t, v1.speed, v2.speed, v1.x, v2.x});
      next_sample += 0.1;
    }

    v1.step(dt);
    v2.step(dt);
    events.run_until(events.now() + sim::Duration::seconds(dt));
  }
  return result;
}

}  // namespace vgr::scenario

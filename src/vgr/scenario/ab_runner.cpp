#include "vgr/scenario/ab_runner.hpp"

#include <cstdlib>

namespace vgr::scenario {
namespace {

constexpr sim::Duration kBin = sim::Duration::seconds(5.0);

void apply_fidelity(HighwayConfig& config, const Fidelity& fidelity) {
  if (fidelity.sim_seconds > 0.0) {
    config.sim_duration = sim::Duration::seconds(fidelity.sim_seconds);
  }
}

}  // namespace

Fidelity Fidelity::from_env(std::uint64_t default_runs) {
  Fidelity f;
  f.runs = default_runs;
  if (const char* env = std::getenv("VGR_RUNS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) f.runs = static_cast<std::uint64_t>(v);
  }
  if (const char* env = std::getenv("VGR_SIM_SECONDS")) {
    const double v = std::strtod(env, nullptr);
    if (v > 0.0) f.sim_seconds = v;
  }
  return f;
}

AbResult run_inter_area_ab(HighwayConfig config, const Fidelity& fidelity) {
  apply_fidelity(config, fidelity);
  AbResult out{sim::BinnedRate{kBin, config.sim_duration},
               sim::BinnedRate{kBin, config.sim_duration}};
  double base_hits = 0.0, base_total = 0.0, atk_hits = 0.0, atk_total = 0.0;
  for (std::uint64_t run = 0; run < fidelity.runs; ++run) {
    HighwayConfig a = config;
    a.seed = run + 1;
    a.attack = AttackKind::kNone;
    HighwayConfig b = config;
    b.seed = run + 1;
    b.attack = AttackKind::kInterArea;

    const InterAreaResult ra = HighwayScenario{a}.run_inter_area();
    const InterAreaResult rb = HighwayScenario{b}.run_inter_area();
    out.baseline.merge(ra.binned(kBin));
    out.attacked.merge(rb.binned(kBin));
    base_hits += ra.overall_reception() * static_cast<double>(ra.packets.size());
    base_total += static_cast<double>(ra.packets.size());
    atk_hits += rb.overall_reception() * static_cast<double>(rb.packets.size());
    atk_total += static_cast<double>(rb.packets.size());
  }
  out.runs = fidelity.runs;
  out.attack_rate = sim::BinnedRate::average_drop(out.baseline, out.attacked);
  out.baseline_reception = base_total > 0.0 ? base_hits / base_total : 0.0;
  out.attacked_reception = atk_total > 0.0 ? atk_hits / atk_total : 0.0;
  return out;
}

AbResult run_intra_area_ab(HighwayConfig config, const Fidelity& fidelity) {
  apply_fidelity(config, fidelity);
  AbResult out{sim::BinnedRate{kBin, config.sim_duration},
               sim::BinnedRate{kBin, config.sim_duration}};
  for (std::uint64_t run = 0; run < fidelity.runs; ++run) {
    HighwayConfig a = config;
    a.seed = run + 1;
    a.attack = AttackKind::kNone;
    HighwayConfig b = config;
    b.seed = run + 1;
    b.attack = AttackKind::kIntraArea;

    const IntraAreaResult ra = HighwayScenario{a}.run_intra_area();
    const IntraAreaResult rb = HighwayScenario{b}.run_intra_area();
    out.baseline.merge(ra.binned(kBin));
    out.attacked.merge(rb.binned(kBin));
  }
  out.runs = fidelity.runs;
  out.attack_rate = sim::BinnedRate::average_drop(out.baseline, out.attacked);
  out.baseline_reception = out.baseline.overall();
  out.attacked_reception = out.attacked.overall();
  return out;
}

sim::BinnedRate run_inter_area_arm(HighwayConfig config, const Fidelity& fidelity) {
  apply_fidelity(config, fidelity);
  sim::BinnedRate merged{kBin, config.sim_duration};
  for (std::uint64_t run = 0; run < fidelity.runs; ++run) {
    config.seed = run + 1;
    merged.merge(HighwayScenario{config}.run_inter_area().binned(kBin));
  }
  return merged;
}

sim::BinnedRate run_intra_area_arm(HighwayConfig config, const Fidelity& fidelity) {
  apply_fidelity(config, fidelity);
  sim::BinnedRate merged{kBin, config.sim_duration};
  for (std::uint64_t run = 0; run < fidelity.runs; ++run) {
    config.seed = run + 1;
    merged.merge(HighwayScenario{config}.run_intra_area().binned(kBin));
  }
  return merged;
}

}  // namespace vgr::scenario

#include "vgr/scenario/ab_runner.hpp"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "vgr/sim/env.hpp"
#include "vgr/sim/thread_pool.hpp"

namespace vgr::scenario {
namespace {

constexpr sim::Duration kBin = sim::Duration::seconds(5.0);

void apply_fidelity(HighwayConfig& config, const Fidelity& fidelity) {
  if (fidelity.sim_seconds > 0.0) {
    config.sim_duration = sim::Duration::seconds(fidelity.sim_seconds);
  }
  // Resilience knobs (VGR_FAULT_*, VGR_CHURN_*, VGR_SCF*, VGR_RETX*,
  // VGR_NBR_MONITOR) apply to every run of every experiment binary, so any
  // existing sweep can be re-run under channel faults, node churn, or with
  // the recovery layer enabled without a rebuild. Absent variables leave the
  // programmatic config untouched and the runs bit-identical.
  config.faults = config.faults.with_env_overrides();
  config.churn = config.churn.with_env_overrides();
  config.recovery = config.recovery.with_env_overrides();
  config.mac = config.mac.with_env_overrides();
  config.dcc = config.dcc.with_env_overrides();
  config.run_wall_budget_s = fidelity.run_wall_budget_s;
  config.run_max_events = fidelity.run_max_events;
  // Intra-run strip parallelism. VGR_STRIPS is a model parameter (output
  // changes with it, deterministically); VGR_STRIP_THREADS is purely a
  // performance knob. Absent variables leave the classic serial loop.
  if (const auto v = sim::env_int("VGR_STRIPS"); v.has_value() && *v >= 0) {
    config.strips = static_cast<int>(*v);
  }
  if (const auto v = sim::env_int("VGR_STRIP_THREADS"); v.has_value() && *v > 0) {
    config.strip_threads = static_cast<std::size_t>(*v);
  }
}

/// The attacker deployed in the B-arm: the configured attack when one is
/// set, else the experiment family's classic attacker (`fallback`). Keeps
/// historical call sites (config.attack == kNone) bit-identical while
/// letting the congestion sweeps pair "no attacker" against a flooder.
AttackKind b_arm_attack(const HighwayConfig& config, AttackKind fallback) {
  return config.attack == AttackKind::kNone ? fallback : config.attack;
}

template <typename Result>
void count_timeouts(AbResult& out, const Result& baseline, const Result& attacked) {
  if (baseline.timed_out || attacked.timed_out) ++out.timed_out_runs;
  for (const sim::BudgetTrip cause : {baseline.timed_out_cause, attacked.timed_out_cause}) {
    if (cause == sim::BudgetTrip::kEvents) ++out.timed_out_events;
    if (cause == sim::BudgetTrip::kWall) ++out.timed_out_wall;
  }
}

template <typename Result>
void accumulate_totals(AbResult::ArmTotals& totals, const Result& r) {
  totals.mac_queue_overflow += r.mac.queue_overflow_drops;
  totals.mac_retry_exhausted += r.mac.retry_exhausted_drops;
  totals.mac_dcc_gated += r.mac.dcc_gated_drops;
  totals.mac_backoff_retries += r.mac.backoff_retries;
  totals.mac_transmitted += r.mac.transmitted;
  totals.ingest_drops += r.ingest_drops;
  totals.frames_flooded += r.frames_flooded;
  totals.peak_cbr = std::max(totals.peak_cbr, r.peak_cbr);
}

/// Dispatches `fidelity.runs` independent runs across a thread pool and
/// hands each per-run result to `merge` in strict seed order. Each run is a
/// self-contained `HighwayScenario` (own event queue, medium, RNG stream
/// seeded from the run index), so the only cross-thread state is the result
/// slot each run writes once. Merging in seed order keeps every floating-
/// point accumulation in the exact order of the serial loop, which is what
/// makes the output bit-identical for any VGR_THREADS.
template <typename RunResult, typename RunFn, typename MergeFn>
void for_each_run_in_order(const Fidelity& fidelity, RunFn run_fn, MergeFn merge) {
  const std::size_t runs = static_cast<std::size_t>(fidelity.runs);
  std::vector<std::optional<RunResult>> results(runs);
  sim::ThreadPool pool{fidelity.threads};
  pool.parallel_for(runs, [&](std::size_t run) { results[run].emplace(run_fn(run)); });
  for (std::size_t run = 0; run < runs; ++run) merge(*results[run]);
}

}  // namespace

Fidelity Fidelity::from_env(std::uint64_t default_runs) {
  Fidelity f;
  f.runs = default_runs;
  if (const auto v = sim::env_int("VGR_RUNS"); v.has_value() && *v > 0) {
    f.runs = static_cast<std::uint64_t>(*v);
  }
  if (const auto v = sim::env_double("VGR_SIM_SECONDS"); v.has_value() && *v > 0.0) {
    f.sim_seconds = *v;
  }
  if (const auto v = sim::env_int("VGR_THREADS"); v.has_value() && *v > 0) {
    f.threads = static_cast<std::size_t>(*v);
  }
  if (const auto v = sim::env_double("VGR_RUN_TIMEOUT_S"); v.has_value() && *v > 0.0) {
    f.run_wall_budget_s = *v;
  }
  if (const auto v = sim::env_int("VGR_RUN_MAX_EVENTS"); v.has_value() && *v > 0) {
    f.run_max_events = static_cast<std::uint64_t>(*v);
  }
  return f;
}

AbResult run_inter_area_ab(HighwayConfig config, const Fidelity& fidelity) {
  apply_fidelity(config, fidelity);
  AbResult out{sim::BinnedRate{kBin, config.sim_duration},
               sim::BinnedRate{kBin, config.sim_duration}};
  double base_hits = 0.0, base_total = 0.0, atk_hits = 0.0, atk_total = 0.0;

  struct RunResult {
    InterAreaResult baseline;
    InterAreaResult attacked;
  };
  for_each_run_in_order<RunResult>(
      fidelity,
      [&config, first = fidelity.first_run](std::size_t run) {
        HighwayConfig a = config;
        a.seed = first + run + 1;
        a.attack = AttackKind::kNone;
        HighwayConfig b = config;
        b.seed = first + run + 1;
        b.attack = b_arm_attack(config, AttackKind::kInterArea);
        return RunResult{HighwayScenario{a}.run_inter_area(),
                         HighwayScenario{b}.run_inter_area()};
      },
      [&](const RunResult& r) {
        out.baseline.merge(r.baseline.binned(kBin));
        out.attacked.merge(r.attacked.binned(kBin));
        accumulate_totals(out.baseline_totals, r.baseline);
        accumulate_totals(out.attacked_totals, r.attacked);
        count_timeouts(out, r.baseline, r.attacked);
        // vgr-lint: begin float-accum-ok (merge runs in strict seed order, so
        // the summation order below is fixed for any VGR_THREADS)
        base_hits += r.baseline.overall_reception() *
                     static_cast<double>(r.baseline.packets.size());
        base_total += static_cast<double>(r.baseline.packets.size());
        atk_hits += r.attacked.overall_reception() *
                    static_cast<double>(r.attacked.packets.size());
        atk_total += static_cast<double>(r.attacked.packets.size());
        // vgr-lint: end
      });

  out.runs = fidelity.runs;
  out.attack_rate = sim::BinnedRate::average_drop(out.baseline, out.attacked);
  out.baseline_reception = base_total > 0.0 ? base_hits / base_total : 0.0;
  out.attacked_reception = atk_total > 0.0 ? atk_hits / atk_total : 0.0;
  out.reception_base_hits = base_hits;
  out.reception_base_trials = base_total;
  out.reception_atk_hits = atk_hits;
  out.reception_atk_trials = atk_total;
  return out;
}

AbResult run_intra_area_ab(HighwayConfig config, const Fidelity& fidelity) {
  apply_fidelity(config, fidelity);
  AbResult out{sim::BinnedRate{kBin, config.sim_duration},
               sim::BinnedRate{kBin, config.sim_duration}};

  struct RunResult {
    IntraAreaResult baseline;
    IntraAreaResult attacked;
  };
  for_each_run_in_order<RunResult>(
      fidelity,
      [&config, first = fidelity.first_run](std::size_t run) {
        HighwayConfig a = config;
        a.seed = first + run + 1;
        a.attack = AttackKind::kNone;
        HighwayConfig b = config;
        b.seed = first + run + 1;
        b.attack = b_arm_attack(config, AttackKind::kIntraArea);
        return RunResult{HighwayScenario{a}.run_intra_area(),
                         HighwayScenario{b}.run_intra_area()};
      },
      [&](const RunResult& r) {
        out.baseline.merge(r.baseline.binned(kBin));
        out.attacked.merge(r.attacked.binned(kBin));
        accumulate_totals(out.baseline_totals, r.baseline);
        accumulate_totals(out.attacked_totals, r.attacked);
        count_timeouts(out, r.baseline, r.attacked);
      });

  out.runs = fidelity.runs;
  out.attack_rate = sim::BinnedRate::average_drop(out.baseline, out.attacked);
  out.baseline_reception = out.baseline.overall();
  out.attacked_reception = out.attacked.overall();
  return out;
}

sim::BinnedRate run_inter_area_arm(HighwayConfig config, const Fidelity& fidelity) {
  apply_fidelity(config, fidelity);
  sim::BinnedRate merged{kBin, config.sim_duration};
  for_each_run_in_order<sim::BinnedRate>(
      fidelity,
      [&config, first = fidelity.first_run](std::size_t run) {
        HighwayConfig c = config;
        c.seed = first + run + 1;
        return HighwayScenario{c}.run_inter_area().binned(kBin);
      },
      [&](const sim::BinnedRate& r) { merged.merge(r); });
  return merged;
}

sim::BinnedRate run_intra_area_arm(HighwayConfig config, const Fidelity& fidelity) {
  apply_fidelity(config, fidelity);
  sim::BinnedRate merged{kBin, config.sim_duration};
  for_each_run_in_order<sim::BinnedRate>(
      fidelity,
      [&config, first = fidelity.first_run](std::size_t run) {
        HighwayConfig c = config;
        c.seed = first + run + 1;
        return HighwayScenario{c}.run_intra_area().binned(kBin);
      },
      [&](const sim::BinnedRate& r) { merged.merge(r); });
  return merged;
}

}  // namespace vgr::scenario

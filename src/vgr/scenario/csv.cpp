#include "vgr/scenario/csv.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace vgr::scenario {

CsvWriter::CsvWriter(const std::string& dir, const std::string& name) {
  if (dir.empty()) return;
  const std::string path = dir + "/" + name + ".csv";
  file_ = std::fopen(path.c_str(), "w");
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  if (file_ == nullptr) return;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    std::fprintf(file_, "%s%s", i == 0 ? "" : ",", columns[i].c_str());
  }
  std::fprintf(file_, "\n");
}

void CsvWriter::row(const std::vector<double>& values) {
  if (file_ == nullptr) return;
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::fprintf(file_, "%s%.6f", i == 0 ? "" : ",", values[i]);
  }
  std::fprintf(file_, "\n");
}

void CsvWriter::write_timelines(const std::string& dir, const std::string& name,
                                const std::vector<std::string>& labels,
                                const std::vector<const sim::BinnedRate*>& series) {
  if (dir.empty() || series.empty()) return;
  assert(labels.size() == series.size());
  CsvWriter out{dir, name};
  if (!out.ok()) return;
  std::vector<std::string> columns{"t"};
  columns.insert(columns.end(), labels.begin(), labels.end());
  out.header(columns);
  const std::size_t bins = series.front()->bin_count();
  const double width = series.front()->bin_width().to_seconds();
  for (std::size_t i = 0; i < bins; ++i) {
    std::vector<double> values{(static_cast<double>(i) + 1.0) * width};
    for (const auto* s : series) values.push_back(s->rate(i));
    out.row(values);
  }
}

std::string CsvWriter::env_dir() {
  const char* env = std::getenv("VGR_CSV_DIR");
  return env != nullptr ? std::string{env} : std::string{};
}

}  // namespace vgr::scenario

#pragma once

#include <string>
#include <vector>

#include "vgr/sim/timeline.hpp"

namespace vgr::scenario {

/// Minimal CSV writer for experiment series, so figure data can be plotted
/// outside the harness. Benches write files when VGR_CSV_DIR is set.
class CsvWriter {
 public:
  /// Opens `<dir>/<name>.csv` for writing; throws nothing — a failed open
  /// turns every later call into a no-op (`ok()` reports the state).
  CsvWriter(const std::string& dir, const std::string& name);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  [[nodiscard]] bool ok() const { return file_ != nullptr; }

  void header(const std::vector<std::string>& columns);
  void row(const std::vector<double>& values);

  /// Convenience: dumps one or more aligned timelines as
  /// `t,<label0>,<label1>,...` rows (bin upper edges as t).
  static void write_timelines(const std::string& dir, const std::string& name,
                              const std::vector<std::string>& labels,
                              const std::vector<const sim::BinnedRate*>& series);

  /// Directory from VGR_CSV_DIR, or empty when export is disabled.
  static std::string env_dir();

 private:
  std::FILE* file_{nullptr};
};

}  // namespace vgr::scenario

#include "vgr/mitigation/profiles.hpp"

namespace vgr::mitigation {

void apply(Profile profile, gn::RouterConfig& config, const Parameters& params) {
  const bool gf = profile == Profile::kPlausibilityCheck || profile == Profile::kFull;
  const bool cbf = profile == Profile::kRhlDropCheck || profile == Profile::kFull;

  config.plausibility_check = gf;
  if (gf) {
    if (params.plausibility_threshold_m > 0.0) {
      config.plausibility_threshold_m = params.plausibility_threshold_m;
    }
    config.plausibility_extrapolate = params.extrapolate;
  }
  config.rhl_drop_check = cbf;
  if (cbf) config.rhl_drop_threshold = params.rhl_drop_threshold;
}

std::string to_string(Profile profile) {
  switch (profile) {
    case Profile::kNone: return "none";
    case Profile::kPlausibilityCheck: return "plausibility-check";
    case Profile::kRhlDropCheck: return "rhl-drop-check";
    case Profile::kFull: return "full";
  }
  return "?";
}

}  // namespace vgr::mitigation

#pragma once

#include <string>

#include "vgr/gn/config.hpp"

namespace vgr::mitigation {

/// Named mitigation bundles from the paper's §V, applied onto a
/// `RouterConfig`. Both defenses are standard-compatible: they change only
/// local receiver/forwarder behaviour, never the wire format.
enum class Profile {
  kNone,              ///< standard (vulnerable) GeoNetworking
  kPlausibilityCheck, ///< §V-A: GF forwards only to plausibly reachable hops
  kRhlDropCheck,      ///< §V-B: CBF ignores duplicates with a steep RHL drop
  kFull,              ///< both defenses
};

/// Tuning knobs for the two defenses.
struct Parameters {
  /// GF plausibility distance threshold; the paper uses the DSRC NLoS
  /// median (486 m). <= 0 keeps the config's existing threshold.
  double plausibility_threshold_m{-1.0};
  /// Dead-reckon neighbour PVs to "now" before the distance test.
  bool extrapolate{true};
  /// Maximum acceptable RHL drop between the buffered packet and a
  /// duplicate (paper: 3).
  std::uint8_t rhl_drop_threshold{3};
};

/// Applies `profile` (with `params`) to `config`.
void apply(Profile profile, gn::RouterConfig& config, const Parameters& params = {});

[[nodiscard]] std::string to_string(Profile profile);

}  // namespace vgr::mitigation

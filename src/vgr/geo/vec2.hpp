#pragma once

#include <cmath>
#include <compare>
#include <string>

namespace vgr::geo {

/// Planar vector / position in metres. The simulation uses a local
/// East-North plane (x grows east along the road, y grows north), which is
/// exact at the scales of the paper's scenarios (a few kilometres) and
/// avoids geodesic math in the hot path.
struct Vec2 {
  double x{0.0};
  double y{0.0};

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(Vec2 a, double k) { return {a.x * k, a.y * k}; }
  friend constexpr Vec2 operator*(double k, Vec2 a) { return {a.x * k, a.y * k}; }
  friend constexpr Vec2 operator/(Vec2 a, double k) { return {a.x / k, a.y / k}; }
  constexpr Vec2& operator+=(Vec2 o) { x += o.x; y += o.y; return *this; }
  constexpr Vec2& operator-=(Vec2 o) { x -= o.x; y -= o.y; return *this; }
  friend constexpr bool operator==(Vec2, Vec2) = default;

  [[nodiscard]] constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  [[nodiscard]] constexpr double cross(Vec2 o) const { return x * o.y - y * o.x; }
  [[nodiscard]] double norm() const { return std::hypot(x, y); }
  [[nodiscard]] constexpr double norm_sq() const { return x * x + y * y; }

  /// Unit vector in the same direction; the zero vector maps to itself.
  [[nodiscard]] Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }

  /// Rotates by `radians` counter-clockwise.
  [[nodiscard]] Vec2 rotated(double radians) const {
    const double c = std::cos(radians), s = std::sin(radians);
    return {x * c - y * s, x * s + y * c};
  }
};

using Position = Vec2;

/// Euclidean distance between two positions, in metres.
inline double distance(Position a, Position b) { return (a - b).norm(); }
inline constexpr double distance_sq(Position a, Position b) { return (a - b).norm_sq(); }

/// Unit vector for a heading given in radians measured counter-clockwise
/// from east (the +x axis).
inline Vec2 heading_vector(double radians) { return {std::cos(radians), std::sin(radians)}; }

std::string to_string(Vec2 v);

}  // namespace vgr::geo

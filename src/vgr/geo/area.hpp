#pragma once

#include <string>

#include "vgr/geo/vec2.hpp"

namespace vgr::geo {

/// Destination area of a GeoBroadcast, per ETSI EN 302 636-4-1 Annex B.
///
/// The standard defines circular, rectangular and elliptical areas through a
/// characteristic function f(x, y) that is positive inside, zero on the
/// border and negative outside; this type implements the same function so
/// containment semantics match the spec (border points count as inside).
class GeoArea {
 public:
  enum class Shape { kCircle, kRectangle, kEllipse };

  /// Circle of radius `radius_m` centred at `center`.
  static GeoArea circle(Position center, double radius_m);

  /// Axis-aligned-then-rotated rectangle: half-width `a_m` along the local
  /// x axis, half-height `b_m` along the local y axis, rotated by
  /// `azimuth_rad` counter-clockwise.
  static GeoArea rectangle(Position center, double a_m, double b_m, double azimuth_rad = 0.0);

  /// Ellipse with semi-major `a_m`, semi-minor `b_m`, rotated by
  /// `azimuth_rad` counter-clockwise.
  static GeoArea ellipse(Position center, double a_m, double b_m, double azimuth_rad = 0.0);

  [[nodiscard]] Shape shape() const { return shape_; }
  [[nodiscard]] Position center() const { return center_; }
  [[nodiscard]] double a() const { return a_; }
  [[nodiscard]] double b() const { return b_; }
  [[nodiscard]] double azimuth() const { return azimuth_; }

  /// ETSI characteristic function: > 0 inside, == 0 on border, < 0 outside.
  [[nodiscard]] double characteristic(Position p) const;

  /// True when `p` is inside or on the border.
  [[nodiscard]] bool contains(Position p) const { return characteristic(p) >= 0.0; }

  /// Euclidean distance from `p` to the area's center (the GF metric — the
  /// standard forwards toward the area center, not the nearest border).
  [[nodiscard]] double distance_to_center(Position p) const { return distance(p, center_); }

  friend bool operator==(const GeoArea&, const GeoArea&) = default;

 private:
  GeoArea(Shape shape, Position center, double a, double b, double azimuth);

  Shape shape_;
  Position center_;
  double a_;
  double b_;
  double azimuth_;
};

std::string to_string(const GeoArea& area);

}  // namespace vgr::geo

#include "vgr/geo/area.hpp"

#include <cassert>
#include <cstdio>

namespace vgr::geo {

GeoArea::GeoArea(Shape shape, Position center, double a, double b, double azimuth)
    : shape_{shape}, center_{center}, a_{a}, b_{b}, azimuth_{azimuth} {
  assert(a > 0.0 && b > 0.0);
}

GeoArea GeoArea::circle(Position center, double radius_m) {
  return GeoArea{Shape::kCircle, center, radius_m, radius_m, 0.0};
}

GeoArea GeoArea::rectangle(Position center, double a_m, double b_m, double azimuth_rad) {
  return GeoArea{Shape::kRectangle, center, a_m, b_m, azimuth_rad};
}

GeoArea GeoArea::ellipse(Position center, double a_m, double b_m, double azimuth_rad) {
  return GeoArea{Shape::kEllipse, center, a_m, b_m, azimuth_rad};
}

double GeoArea::characteristic(Position p) const {
  // Transform into the area's local frame: translate to the center, rotate
  // by -azimuth so the local x axis aligns with the long/`a` axis.
  const Vec2 local = (p - center_).rotated(-azimuth_);
  const double u = local.x / a_;
  const double v = local.y / b_;
  switch (shape_) {
    case Shape::kCircle:
    case Shape::kEllipse:
      return 1.0 - u * u - v * v;
    case Shape::kRectangle: {
      const double fx = 1.0 - u * u;
      const double fy = 1.0 - v * v;
      return fx < fy ? fx : fy;  // ETSI: min(1-(x/a)^2, 1-(y/b)^2)
    }
  }
  return -1.0;
}

std::string to_string(const GeoArea& area) {
  const char* shape = "?";
  switch (area.shape()) {
    case GeoArea::Shape::kCircle: shape = "circle"; break;
    case GeoArea::Shape::kRectangle: shape = "rect"; break;
    case GeoArea::Shape::kEllipse: shape = "ellipse"; break;
  }
  char buf[128];
  std::snprintf(buf, sizeof buf, "%s(center=(%.1f,%.1f), a=%.1f, b=%.1f, az=%.3f)", shape,
                area.center().x, area.center().y, area.a(), area.b(), area.azimuth());
  return buf;
}

}  // namespace vgr::geo

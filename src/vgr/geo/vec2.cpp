#include "vgr/geo/vec2.hpp"

#include <cstdio>

namespace vgr::geo {

std::string to_string(Vec2 v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "(%.2f, %.2f)", v.x, v.y);
  return buf;
}

}  // namespace vgr::geo

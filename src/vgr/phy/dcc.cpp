#include "vgr/phy/dcc.hpp"

#include <algorithm>

#include "vgr/sim/env.hpp"

namespace vgr::phy {

DccConfig DccConfig::with_env_overrides() const {
  DccConfig c = *this;
  if (const auto v = sim::env_int("VGR_DCC"); v.has_value()) c.enabled = *v != 0;
  if (const auto v = sim::env_double("VGR_DCC_SAMPLE_MS"); v.has_value() && *v > 0.0) {
    c.sample_interval = sim::Duration::seconds(*v / 1000.0);
  }
  if (const auto v = sim::env_int("VGR_DCC_WINDOW"); v.has_value() && *v > 0) {
    c.window_samples = std::min<std::size_t>(static_cast<std::size_t>(*v), 64);
  }
  return c;
}

Dcc::Dcc(DccConfig config) : config_{config} {
  config_.window_samples = std::clamp<std::size_t>(config_.window_samples, 1, window_.size());
}

Dcc::State Dcc::state_for(double avg) const {
  if (avg < config_.thresholds[0]) return State::kRelaxed;
  if (avg < config_.thresholds[1]) return State::kActive1;
  if (avg < config_.thresholds[2]) return State::kActive2;
  if (avg < config_.thresholds[3]) return State::kActive3;
  return State::kRestrictive;
}

void Dcc::on_sample(double cbr) {
  // The measured busy time can slightly exceed the sampling interval when a
  // frame's airtime is accounted at transmit time but extends past the
  // sample edge; clamping keeps the ladder's input a true ratio.
  const double clamped = std::clamp(cbr, 0.0, 1.0);
  ++samples_;
  peak_ = std::max(peak_, clamped);
  window_[next_] = clamped;
  next_ = (next_ + 1) % config_.window_samples;
  filled_ = std::min(filled_ + 1, config_.window_samples);
  double sum = 0.0;
  for (std::size_t i = 0; i < filled_; ++i) sum += window_[i];
  avg_ = sum / static_cast<double>(filled_);
  const State next_state = state_for(avg_);
  if (next_state != state_) {
    state_ = next_state;
    ++state_changes_;
  }
}

const char* name(Dcc::State state) {
  switch (state) {
    case Dcc::State::kRelaxed: return "relaxed";
    case Dcc::State::kActive1: return "active1";
    case Dcc::State::kActive2: return "active2";
    case Dcc::State::kActive3: return "active3";
    case Dcc::State::kRestrictive: return "restrictive";
  }
  return "?";
}

}  // namespace vgr::phy

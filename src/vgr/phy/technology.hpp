#pragma once

#include <string>

#include "vgr/sim/time.hpp"

namespace vgr::phy {

/// V2X access-layer technology, per the paper's evaluation (§IV).
enum class AccessTechnology { kDsrc, kCv2x };

/// Communication ranges measured in the Utah DOT field tests (paper
/// Table II). These are the ranges the whole evaluation is parameterised
/// on: vehicles communicate at the NLoS median (trucks block LoS between
/// sedans); the roadside attacker can raise its power up to the LoS median.
struct RangeTable {
  double los_median_m;
  double nlos_median_m;
  double nlos_worst_m;
};

[[nodiscard]] constexpr RangeTable range_table(AccessTechnology tech) {
  switch (tech) {
    case AccessTechnology::kDsrc:
      return RangeTable{1283.0, 486.0, 327.0};
    case AccessTechnology::kCv2x:
      return RangeTable{1703.0, 593.0, 359.0};
  }
  return RangeTable{0.0, 0.0, 0.0};
}

/// Channel bit rate used to convert frame sizes into airtime.
[[nodiscard]] constexpr double bitrate_bps(AccessTechnology tech) {
  switch (tech) {
    case AccessTechnology::kDsrc:
      return 6e6;  // 802.11p base rate on the 10 MHz control channel
    case AccessTechnology::kCv2x:
      return 7.2e6;  // LTE-V2X sidelink, MCS mid-range
  }
  return 6e6;
}

[[nodiscard]] constexpr const char* name(AccessTechnology tech) {
  switch (tech) {
    case AccessTechnology::kDsrc: return "DSRC";
    case AccessTechnology::kCv2x: return "C-V2X";
  }
  return "?";
}

/// Airtime of `bytes` on `tech`, rounded up to whole nanoseconds.
[[nodiscard]] sim::Duration airtime(AccessTechnology tech, std::size_t bytes);

/// Propagation delay over `distance_m` at the speed of light.
[[nodiscard]] sim::Duration propagation_delay(double distance_m);

}  // namespace vgr::phy

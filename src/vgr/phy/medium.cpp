#include "vgr/phy/medium.hpp"

#include <algorithm>
#include <cassert>

#include "vgr/sim/strip_executor.hpp"

namespace vgr::phy {

Medium::Medium(sim::EventQueue& events, AccessTechnology tech, sim::Rng rng)
    : events_{events}, plane_{events.plane()}, tech_{tech}, rng_{rng} {}

RadioId Medium::add_node(NodeConfig config, RxCallback rx) {
  assert(config.position && "node needs a position source");
  assert(rx && "node needs a receive callback");
  const RadioId id{next_id_++};
  nodes_.push_back(Node{std::move(config), std::move(rx), true, {}, {}, {}});
  ++live_nodes_;
  index_dirty_ = true;
  return id;
}

void Medium::remove_node(RadioId id) {
  // Mark dead rather than erase — ids are slot indexes, so the slot stays
  // and in-flight deliveries resolve safely via the alive check. The
  // callbacks are released now; the empty slot itself is a few dozen bytes.
  if (id.value == 0 || id.value > nodes_.size()) return;
  Node& node = node_at(id);
  if (!node.alive) return;
  node.alive = false;
  node.rx = nullptr;
  node.config.position = nullptr;
  node.inflight.clear();
  --live_nodes_;
  index_dirty_ = true;
}

void Medium::set_tx_range(RadioId id, double range_m) {
  node_at(id).config.tx_range_m = range_m;
  index_dirty_ = true;  // ranges feed the index cell size
}

void Medium::set_rx_range(RadioId id, double range_m) {
  node_at(id).config.rx_range_m = range_m;
  index_dirty_ = true;  // rx overrides widen the query radius
}

void Medium::set_mac(RadioId id, net::MacAddress mac) {
  node_at(id).config.mac = mac;
}

double Medium::tx_range(RadioId id) const {
  return node_at(id).config.tx_range_m;
}

sim::TimePoint Medium::busy_until(RadioId id) const {
  return node_at(id).busy_until;
}

sim::Duration Medium::busy_time(RadioId id) const {
  return node_at(id).busy_accum;
}

void Medium::extend_busy(Node& node, sim::TimePoint from, sim::TimePoint until) {
  // Serially every busy interval starts at the current event time, so time
  // is only ever appended monotonically: the union of all intervals grows
  // by the part of [from, until] not already covered by the previous
  // horizon. Cross-strip arrivals replay the same formula at arrival time;
  // the result is still the exact interval union unless two overlapping
  // frames arrive out of interval order, where the overlap is credited once
  // (a documented undercount, see docs/performance.md).
  if (until <= node.busy_until) return;
  node.busy_accum += until - std::max(node.busy_until, from);
  node.busy_until = until;
}

sim::TimePoint Medium::send_now_(const Node& sender_node) const {
  if (plane_ == nullptr) return events_.now();
  const std::uint32_t strip = sim::StripPlane::current_strip();
  if (strip == 0) return events_.now();  // serial phase: global wheel clock
  sim::EventQueue* home = sender_node.config.home;
  assert(home != nullptr && home->strip() == strip &&
         "a strip event may only transmit from its own node");
  return home->now();
}

bool Medium::receivable(const Node& to, geo::Position from_pos, geo::Position to_pos,
                        double range_m, double distance_m) {
  const double reach = to.config.rx_range_m > 0.0 ? to.config.rx_range_m : range_m;
  if (distance_m > reach) return false;
  if (obstruction_ && obstruction_(from_pos, to_pos)) return false;
  if (reception_model_ == ReceptionModel::kLogDistanceFading) {
    const double onset = fading_onset_ * range_m;
    if (distance_m > onset) {
      const double p = (range_m - distance_m) / (range_m - onset);
      if (!rng_.bernoulli(p)) return false;
    }
  }
  return true;
}

void Medium::transmit(RadioId sender, Frame frame, double range_override_m) {
  // Frame-level fault decisions (channel-wide loss, duplication, extra
  // delay) are drawn once per transmission, before the fan-out, in the
  // single-threaded event loop — so fault-injected runs replay exactly from
  // (seed, config) regardless of the harness's thread count.
  assert(frame.msg != nullptr && "a frame on the air carries an envelope");
  FaultInjector::FrameDecision faults;
  if (injector_ && injector_->enabled()) faults = injector_->on_frame();
  transmit_impl(sender, std::make_shared<const Frame>(std::move(frame)), range_override_m,
                faults);
}

void Medium::transmit_impl(RadioId sender, std::shared_ptr<const Frame> frame,
                           double range_override_m, const FaultInjector::FrameDecision& faults) {
  Node& sender_node = node_at(sender);
  assert(sender_node.alive && "unknown sender");
#ifndef NDEBUG
  if (plane_ != nullptr) {
    // Strip-parallel legality gates (the scenario enforces these before
    // attaching a plane): every stochastic or cross-receiver-coupled
    // channel feature stays off, so the fan-out below is pure function of
    // (sender, frame, index snapshot) and safe to run concurrently.
    assert((injector_ == nullptr || !injector_->enabled()) &&
           "fault injection is serial-only");
    assert(reception_model_ == ReceptionModel::kDisk && "fading draws are serial-only");
    assert(!interference_ && "interference bookkeeping is serial-only");
    assert(frame->msg->signed_portion_cached() &&
           "an envelope must be cache-warm before it can cross strips");
  }
#endif
  const sim::TimePoint now = send_now_(sender_node);
  const geo::Position from = sender_node.config.position();
  const double range = range_override_m > 0.0 ? range_override_m : sender_node.config.tx_range_m;

  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  // Arithmetic size — no serialization on the airtime path. The per-frame
  // wire size is exact (Codec::wire_size == encode().size()); the optional
  // overhead models the link-layer envelope around it (see
  // set_airtime_overhead_bytes).
  const sim::Duration tx_time =
      airtime(tech_, frame->msg->wire_size() + airtime_overhead_bytes_);

  // The transmitter occupies its own channel for the frame's airtime; a
  // half-duplex radio is deaf while transmitting, so under the
  // interference model its own airtime corrupts any overlapping reception.
  extend_busy(sender_node, now, now + tx_time);
  if (interference_) {
    auto& inflight = sender_node.inflight;
    const sim::TimePoint tx_end = now + tx_time;
    for (auto it = inflight.begin(); it != inflight.end();) {
      if (it->end <= now) {
        it = inflight.erase(it);
        continue;
      }
      if (it->start < tx_end) {
        if (!*it->corrupted) ++frames_collided_;
        *it->corrupted = true;
      }
      ++it;
    }
    inflight.push_back(Node::Reception{now, tx_end, std::make_shared<bool>(true)});
  }

  // Channel-wide loss (i.i.d. drop or Gilbert–Elliott burst): the frame was
  // sent — the transmitter's radio was busy for its airtime — but reaches no
  // receiver. Modelled as zero radiated energy at every receiver, so no
  // carrier sense and no interference footprint either.
  if (faults.drop) return;

  // Fault-injected duplication: a second, identical transmission airs right
  // after the original's airtime (a stale retransmission). It is a real
  // frame — it counts in frames_sent_ and contends for the channel — but is
  // exempt from further frame-level fault draws to keep the model bounded.
  // The retransmission shares the immutable frame object; nothing is copied.
  if (faults.duplicate) {
    events_.schedule_in(tx_time, [this, sender, frame, range_override_m] {
      if (!node_at(sender).alive) return;
      transmit_impl(sender, frame, range_override_m, {});
    });
  }

  // Candidate receivers. With the index on, only the nodes whose grid cells
  // a transmission of this power can reach are visited (O(k) instead of
  // O(N)); the exact per-node distance/receivable check below is unchanged,
  // so both paths select the same receivers. A node hearing by its own
  // rx-range override is reachable out to `max_rx_range_m_`, hence the
  // query radius. Visit order is ascending RadioId in both paths so event
  // scheduling (and thus the run) is independent of hash-map layout.
  ensure_index();
  // Query scratch: the member serially (zero change), a thread-local under
  // a strip plane where several workers fan out concurrently.
  static thread_local std::vector<std::uint32_t> tls_candidates;
  std::vector<std::uint32_t>& candidates = plane_ == nullptr ? candidates_ : tls_candidates;
  if (use_index_) {
    grid_.query_into(from, std::max(range, max_rx_range_m_), candidates);
  } else {
    candidates.clear();
    for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].alive) candidates.push_back(i + 1);  // slot i is id i+1
    }
  }

  const std::uint32_t src_strip = plane_ == nullptr ? 0 : sim::StripPlane::current_strip();
  for (const std::uint32_t id : candidates) {
    if (id == sender.value) continue;
    Node& node = nodes_[id - 1];
    if (!node.alive) continue;
    // Grid candidates read the rebuild-time snapshot (exact, see
    // pos_snapshot_); the reference scan path has no snapshot and asks live.
    const geo::Position to_pos = use_index_ ? pos_snapshot_[id - 1] : node.config.position();
    const double dist = geo::distance(from, to_pos);
    if (!receivable(node, from, to_pos, range, dist)) continue;
    // Carrier sense: every node in radio range perceives the channel busy
    // for the frame's airtime, regardless of link-layer addressing. A
    // receiver on another strip is owned by another worker right now, so
    // its horizon is extended by the posted closure at arrival instead.
    const sim::TimePoint heard_until = now + tx_time + propagation_delay(dist);
    sim::EventQueue* rx_home = plane_ == nullptr ? nullptr : node.config.home;
    assert((plane_ == nullptr || rx_home != nullptr) &&
           "every radio needs a home handle under a strip plane");
    const bool cross_strip = rx_home != nullptr && rx_home->strip() != src_strip;
    if (!cross_strip) extend_busy(node, now, heard_until);

    // Interference bookkeeping: any airtime overlap at this receiver
    // corrupts both frames (no capture effect). Frames addressed elsewhere
    // still radiate energy, so they participate too. The shared corruption
    // flag exists only under the interference model — with it off, nothing
    // can retroactively damage a delivery, so no per-receiver flag is
    // allocated on the common path.
    std::shared_ptr<bool> corrupted;
    if (interference_) {
      corrupted = std::make_shared<bool>(false);
      const sim::TimePoint start = now;
      auto& inflight = node.inflight;
      for (auto it = inflight.begin(); it != inflight.end();) {
        if (it->end <= start) {
          it = inflight.erase(it);  // lazily drop completed receptions
          continue;
        }
        if (it->start < heard_until && start < it->end) {
          if (!*it->corrupted) ++frames_collided_;
          if (!*corrupted) ++frames_collided_;
          *it->corrupted = true;
          *corrupted = true;
        }
        ++it;
      }
      inflight.push_back(Node::Reception{start, heard_until, corrupted});
    }

    // Link-layer address filter: radios in normal mode drop frames that are
    // neither broadcast nor addressed to them. Promiscuous sniffers see all.
    const bool deliverable = node.config.promiscuous || frame->dst.is_broadcast() ||
                             frame->dst == node.config.mac;
    if (!deliverable && !cross_strip) continue;

    if (cross_strip) {
      // One mailbox post merges carrier sense and delivery: with faults and
      // interference gated off, the arrival instant IS heard_until, so the
      // closure replays the busy interval [now, heard_until] retroactively
      // and then (if addressed here) delivers. The plane merges posts in
      // (timestamp, source strip, sequence) order, so the receiving wheel's
      // schedule is independent of worker count.
      plane_->post(*rx_home, heard_until,
                   [this, rx_id = RadioId{id}, frame_ptr = frame, sender, tx_start = now,
                    heard_until, deliverable] {
                     Node& receiver = node_at(rx_id);
                     if (!receiver.alive) return;
                     extend_busy(receiver, tx_start, heard_until);
                     if (!deliverable) return;
                     frames_delivered_.fetch_add(1, std::memory_order_relaxed);
                     receiver.rx(*frame_ptr, sender);
                   });
      continue;
    }

    // Delivery-level faults: each (frame, receiver) pair independently
    // suffers clean loss or byte corruption. Corruption reads the message's
    // cached wire image (encoded at most once per message, not per frame),
    // damages a private copy of the bytes, and ships them in `Frame::raw`
    // for the receiver to decode — the structured packet stays pristine for
    // the other receivers.
    std::shared_ptr<const Frame> deliver_ptr = frame;
    if (injector_ && injector_->enabled()) {
      if (injector_->drop_delivery()) continue;
      if (injector_->corrupt_delivery()) {
        auto damaged = std::make_shared<Frame>(*frame);
        damaged->raw = frame->msg->wire();
        injector_->corrupt_bytes(damaged->raw);
        deliver_ptr = std::move(damaged);
      }
    }

    const sim::Duration delay = tx_time + propagation_delay(dist) + faults.extra_delay;
    // Deliver via the event queue so reception ordering is global and the
    // callback runs after the frame's airtime, like a real channel. Under a
    // strip plane a same-strip delivery lands on the receiver's home wheel
    // (the one running right now) through the allocation-free template
    // path; serially the target is the medium's own queue, exactly as
    // before.
    sim::EventQueue& dstq = rx_home == nullptr ? events_ : *rx_home;
    const RadioId rx_id{id};
    dstq.schedule_at(now + delay, [this, rx_id, frame_ptr = std::move(deliver_ptr), sender,
                                   corrupted = std::move(corrupted)] {
      if (corrupted && *corrupted) return;
      const Node& receiver = node_at(rx_id);
      if (!receiver.alive) return;
      frames_delivered_.fetch_add(1, std::memory_order_relaxed);
      receiver.rx(*frame_ptr, sender);
    });
  }
}

void Medium::ensure_index() {
  if (!use_index_) return;
  if (plane_ != nullptr) {
    // Strip-parallel runs pin rebuilds to the serial phase: prepare_index
    // is registered as a plane hook, so by the time a worker transmits the
    // index is settled and this is a pure read. Movement happens on the
    // global mobility tick (also serial), hence the kExplicit requirement.
    assert(index_mode_ == IndexMode::kExplicit &&
           "strip-parallel runs require the explicit index cadence");
    assert((!index_dirty_ || sim::StripPlane::current_strip() == 0) &&
           "a worker observed a dirty index: invalidation inside a window");
    if (!index_dirty_) return;
  }
  // In kPerEvent mode any event-queue progress invalidates the snapshot:
  // positions only move inside event callbacks, so a snapshot taken within
  // the currently-running callback is exact until the next one fires.
  const bool progressed = index_built_at_ != events_.now() ||
                          index_built_fired_ != events_.fired_count();
  if (!index_dirty_ && !(index_mode_ == IndexMode::kPerEvent && progressed)) return;

  // Dead nodes keep their slot (ids are slot indexes) but are simply not
  // indexed; in-flight deliveries to them resolve via the alive check.
  index_entries_.clear();
  index_entries_.reserve(live_nodes_);
  pos_snapshot_.resize(nodes_.size());
  double max_reach = 0.0;
  max_rx_range_m_ = 0.0;
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    if (!node.alive) continue;
    const geo::Position p = node.config.position();
    index_entries_.push_back({i + 1, p});  // slot i is id i+1
    pos_snapshot_[i] = p;
    max_reach = std::max({max_reach, node.config.tx_range_m, node.config.rx_range_m});
    max_rx_range_m_ = std::max(max_rx_range_m_, node.config.rx_range_m);
  }
  grid_.rebuild(index_entries_, max_reach);
  index_dirty_ = false;
  index_built_at_ = events_.now();
  index_built_fired_ = events_.fired_count();
  ++index_rebuilds_;
}

}  // namespace vgr::phy

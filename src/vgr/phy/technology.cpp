#include "vgr/phy/technology.hpp"

#include <cmath>

namespace vgr::phy {

sim::Duration airtime(AccessTechnology tech, std::size_t bytes) {
  const double seconds = static_cast<double>(bytes) * 8.0 / bitrate_bps(tech);
  return sim::Duration::nanos(static_cast<std::int64_t>(std::ceil(seconds * 1e9)));
}

sim::Duration propagation_delay(double distance_m) {
  constexpr double kC = 299'792'458.0;
  return sim::Duration::nanos(static_cast<std::int64_t>(std::ceil(distance_m / kC * 1e9)));
}

}  // namespace vgr::phy

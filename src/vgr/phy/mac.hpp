#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "vgr/phy/dcc.hpp"
#include "vgr/phy/medium.hpp"
#include "vgr/sim/event_queue.hpp"
#include "vgr/sim/random.hpp"
#include "vgr/sim/time.hpp"

namespace vgr::phy {

/// Coarse access classes for MAC admission. Beacons are freshness-bound
/// (their PV is stale within seconds), so a closed DCC gate drops them at
/// admission; data packets are paced through the queue instead.
enum class MacAccessClass : std::uint8_t { kBeacon, kData };

/// CSMA/CA contention layer configuration. Defaults model an ITS-G5/DSRC
/// OCB channel (13 µs slots, AIFS ≈ SIFS + 2 slots, CW 15..1023, 7 retries)
/// but every value is a knob. `enabled` defaults to false and off is free:
/// the MAC is then a passthrough that queues nothing, schedules no events
/// and draws nothing from any RNG stream, so runs without the layer stay
/// bit-identical to pre-MAC builds.
struct MacConfig {
  bool enabled{false};

  /// Bounded per-node transmit queue; arrivals beyond this tail-drop.
  std::size_t queue_limit{32};

  // --- CSMA/CA timing (ITS-G5 OCB defaults).
  sim::Duration slot{sim::Duration::micros(13)};
  sim::Duration aifs{sim::Duration::micros(58)};
  /// Contention windows: a backoff draws uniformly from [0, cw] slots. The
  /// window starts at `cw_min` and doubles (2*cw+1) per failed contention
  /// up to `cw_max` — unless DCC is pacing, in which case the window stays
  /// at `cw_min` (Toff gaps replace the exponential penalty).
  int cw_min{15};
  int cw_max{1023};
  /// Failed contentions (backoff landed on a busy channel again) tolerated
  /// per frame before a retry-exhaustion drop.
  int max_retries{7};
  /// Retry-budget multiplier while DCC is active: a paced station transmits
  /// rarely, so it can afford to keep contending politely instead of
  /// dropping — this is the graceful-degradation half of the DCC story.
  int dcc_retry_scale{4};

  /// Link-layer bytes around the GN wire image counted into every frame's
  /// airtime while the MAC is enabled (802.11 MAC header 24 + QoS 2 +
  /// LLC/SNAP 8 + FCS 4 = 38). The GN packet itself is measured exactly via
  /// Codec::wire_size; this models the framing the codec never sees. Only
  /// applied with `enabled` (the scenario forwards it to
  /// Medium::set_airtime_overhead_bytes), so MAC-off runs keep the
  /// historical GN-only airtime bit-for-bit.
  std::size_t airtime_overhead_bytes{38};

  /// Reads the VGR_MAC_* environment knobs over the programmatic values:
  ///   VGR_MAC (0/1), VGR_MAC_QUEUE, VGR_MAC_SLOT_US, VGR_MAC_AIFS_US,
  ///   VGR_MAC_CW_MIN, VGR_MAC_CW_MAX, VGR_MAC_RETRY,
  ///   VGR_MAC_DCC_RETRY_SCALE, VGR_MAC_OVERHEAD_BYTES.
  [[nodiscard]] MacConfig with_env_overrides() const;
};

/// Per-cause MAC counters (all drops are mutually exclusive per frame).
struct MacStats {
  std::uint64_t enqueued{0};             ///< frames offered by the router
  std::uint64_t transmitted{0};          ///< frames that made it onto the air
  std::uint64_t queue_overflow_drops{0}; ///< tail-dropped at admission
  std::uint64_t retry_exhausted_drops{0};///< out of contention attempts
  std::uint64_t dcc_gated_drops{0};      ///< beacons shed while the gate was closed
  std::uint64_t backoff_retries{0};      ///< backoffs that landed on a busy channel
  std::uint64_t cbr_samples{0};

  /// Accumulates `other` into this (scenario-level aggregation).
  void add(const MacStats& other) {
    enqueued += other.enqueued;
    transmitted += other.transmitted;
    queue_overflow_drops += other.queue_overflow_drops;
    retry_exhausted_drops += other.retry_exhausted_drops;
    dcc_gated_drops += other.dcc_gated_drops;
    backoff_retries += other.backoff_retries;
    cbr_samples += other.cbr_samples;
  }
};

/// CSMA/CA channel access with a bounded transmit queue and reactive DCC,
/// sitting between `gn::Router` and `phy::Medium`.
///
/// Model: one frame contends at a time (the queue head). A sense that finds
/// the channel busy schedules a re-sense at `busy_until + AIFS + backoff`
/// where backoff is a uniform draw of [0, cw] slots from the MAC's private
/// deterministic stream; a backoff that lands on a busy channel again counts
/// one failed contention (the slotted countdown-freeze of real 802.11p is
/// collapsed into the re-draw — the retry/starvation behaviour under load is
/// what the reproduction needs, not slot-exact timing). Frames out of
/// attempts are dropped with a per-cause counter. With DCC enabled the MAC
/// additionally samples the channel busy ratio from `Medium::busy_time` and
/// enforces the state ladder's Toff gap between its own transmissions.
///
/// Everything runs inside the single-threaded event loop and all randomness
/// comes from the constructor-supplied stream, so MAC-enabled runs replay
/// bit-identically from (seed, config) at any harness thread count.
///
/// Fault-injection ordering contract: the channel `FaultInjector` draws its
/// frame-level decisions inside `Medium::transmit`, which the MAC calls at
/// *dequeue* time — injected delay and duplication therefore apply after MAC
/// queueing and contention, never to frames still waiting in the queue.
/// This is the documented composition order, pinned by phy_mac_test.
class Mac {
 public:
  /// `cohort` hosts every MAC-scheduled event, so the owning router's
  /// shutdown retires them together with its own timers.
  Mac(sim::EventQueue& events, Medium& medium, RadioId radio, sim::CohortId cohort,
      MacConfig config, DccConfig dcc_config, sim::Rng rng);

  Mac(const Mac&) = delete;
  Mac& operator=(const Mac&) = delete;

  /// Offers a frame for transmission. Disabled MAC: synchronous passthrough
  /// to `Medium::transmit`. Enabled: DCC admission (beacons only), bounded
  /// queue, then CSMA service. `range_override_m` rides along untouched.
  void enqueue(Frame frame, MacAccessClass access_class, double range_override_m = -1.0);

  [[nodiscard]] bool enabled() const { return config_.enabled; }
  [[nodiscard]] const MacStats& stats() const { return stats_; }
  [[nodiscard]] const Dcc& dcc() const { return dcc_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] const MacConfig& config() const { return config_; }
  /// Earliest instant DCC allows the next transmission (== now when open).
  [[nodiscard]] sim::TimePoint gate_open_at() const { return next_tx_allowed_; }

 private:
  struct Pending {
    Frame frame;
    double range_override_m;
  };

  /// One contention step for the queue head: wait out the DCC gate, sense
  /// the carrier, transmit or back off.
  void sense();
  void schedule_sense(sim::TimePoint at);
  void transmit_head();
  /// Drops the head for retry exhaustion and restarts service on the next.
  void drop_head();
  void reset_contention();
  void schedule_cbr_sample();
  [[nodiscard]] int retry_budget() const {
    return dcc_.enabled() ? config_.max_retries * config_.dcc_retry_scale
                          : config_.max_retries;
  }

  sim::EventQueue& events_;
  Medium& medium_;
  RadioId radio_;
  sim::CohortId cohort_;
  MacConfig config_;
  sim::Rng rng_;
  Dcc dcc_;
  std::deque<Pending> queue_;
  /// True while a sense event for the queue head is pending (or running).
  bool serving_{false};
  /// Contention state of the current head.
  int cw_;
  int attempts_{0};
  bool backed_off_{false};
  /// DCC pacing gate; transmissions wait until this instant.
  sim::TimePoint next_tx_allowed_{};
  /// `Medium::busy_time` reading at the previous CBR sample.
  sim::Duration busy_seen_{};
  MacStats stats_;
};

}  // namespace vgr::phy

#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "vgr/geo/vec2.hpp"
#include "vgr/net/address.hpp"
#include "vgr/phy/fault_injector.hpp"
#include "vgr/phy/spatial_grid.hpp"
#include "vgr/phy/technology.hpp"
#include "vgr/security/secured_message.hpp"
#include "vgr/sim/event_queue.hpp"
#include "vgr/sim/random.hpp"

namespace vgr::phy {

/// One over-the-air transmission unit: link-layer header plus the secured
/// GeoNetworking envelope. The MAC source/destination are plaintext and
/// unauthenticated.
///
/// The envelope rides as a shared immutable pointer: the sender wraps its
/// message once and every co-receiver of the transmission, every buffered
/// copy (CBF contention, SCF carry, pending retransmission) and every
/// later hop whose rewrite only touches the basic header aliases the same
/// object — and with it the message's signed-portion and wire caches. A
/// frame on the air always carries a non-null `msg`.
struct Frame {
  net::MacAddress src{};
  net::MacAddress dst{net::MacAddress::broadcast()};
  security::SecuredMessagePtr msg{};
  /// When non-empty, this receiver's copy arrived byte-corrupted: `raw` is
  /// the damaged wire image of `msg.packet` and MUST be decoded instead of
  /// trusting the structured packet (the router's ingest path does this,
  /// counting undecodable frames). Empty on the clean fast path, so no
  /// per-delivery encode/decode cost is paid without fault injection.
  net::Bytes raw{};
};

/// Identifies a node registered on the medium.
struct RadioId {
  std::uint32_t value{0};
  friend bool operator==(RadioId, RadioId) = default;
};

/// Reception model for the shared channel.
///
/// * kDisk — a frame is received by every node within the sender's
///   configured transmission range. This matches the paper's simulator and
///   keeps the reproduction deterministic.
/// * kLogDistanceFading — disk reception degraded by distance-dependent
///   loss (success probability falls from 1 at `fading_onset_fraction` of
///   the range to 0 at the range edge), for ablation studies.
enum class ReceptionModel { kDisk, kLogDistanceFading };

/// Rebuild cadence of the medium's spatial index (see Medium::set_index_mode).
///
/// * kPerEvent — the index is rebuilt lazily whenever the event queue has
///   progressed since the last build (positions can only change inside event
///   callbacks, so within one callback the snapshot is always exact). Safe
///   for any driver, including tests that poke the medium directly.
/// * kExplicit — the index is rebuilt only when `invalidate_index()` is
///   called or the node set changes. Scenario drivers whose node positions
///   move exclusively on a mobility tick (e.g. the highway's 100 ms IDM
///   tick) use this to amortise one O(N) rebuild over every frame sent
///   between ticks, which is where the O(N^2) -> O(N*k) win comes from.
enum class IndexMode { kPerEvent, kExplicit };

/// The shared broadcast radio channel.
///
/// Reception is sender-range based: each transmitter owns a TX power setting
/// expressed directly as a range in metres (the paper's attacker "changes
/// its transmission power to control its communication range"). Unicast
/// frames still propagate to *every* node in range — radio is a broadcast
/// medium — so a promiscuous sniffer overhears unicast traffic; normal
/// radios drop frames addressed elsewhere before the GN layer sees them.
class Medium {
 public:
  using RxCallback = std::function<void(const Frame&, RadioId sender)>;
  using PositionFn = std::function<geo::Position()>;
  /// Returns true when the direct path a->b is blocked (terrain, curve).
  using ObstructionFn = std::function<bool(geo::Position, geo::Position)>;

  Medium(sim::EventQueue& events, AccessTechnology tech, sim::Rng rng = sim::Rng{0x51CEu});

  struct NodeConfig {
    net::MacAddress mac{};
    PositionFn position{};
    double tx_range_m{0.0};
    /// Receive range override: when positive, this node hears exactly the
    /// frames whose sender is within this distance — no more, no less —
    /// replacing the default sender-power rule. 0 (default) models a stock
    /// vehicle radio (reception bounded by the sender's range). The
    /// roadside attacker sets this to its attack range: in the paper's
    /// model the attacker's tunable communication range governs both what
    /// it can reach and what it can overhear (§III-A, §IV-A).
    double rx_range_m{0.0};
    bool promiscuous{false};
    /// Strip-plane scheduling handle of the node's owner (router/sniffer).
    /// nullptr — the default — means the node has no strip affinity and the
    /// medium schedules every delivery on its own queue, exactly as before
    /// strips existed. Under a StripPlane the owner sets this to its own
    /// handle so same-strip deliveries stay on the owner's wheel and
    /// cross-strip ones route through the plane's mailboxes.
    sim::EventQueue* home{nullptr};
  };

  /// Registers a node; `rx` fires for every frame the node receives.
  RadioId add_node(NodeConfig config, RxCallback rx);
  void remove_node(RadioId id);

  /// Adjusts a node's transmission power (as an effective range).
  void set_tx_range(RadioId id, double range_m);
  [[nodiscard]] double tx_range(RadioId id) const;

  /// Adjusts a node's receive-sensitivity range (see NodeConfig::rx_range_m).
  void set_rx_range(RadioId id, double range_m);

  /// Rebinds a node's link-layer address (pseudonym rotation: the station
  /// changes its MAC together with its GN address so rotations stay
  /// unlinkable at every layer).
  void set_mac(RadioId id, net::MacAddress mac);

  /// Enables co-channel interference: two frames whose airtime overlaps at
  /// a receiver destroy each other there (no capture effect). Off by
  /// default — the paper's simulator ignores interference — and available
  /// for ablation studies.
  void set_interference(bool on) { interference_ = on; }
  [[nodiscard]] std::uint64_t frames_collided() const {
    return frames_collided_.load(std::memory_order_relaxed);
  }

  /// Installs an obstruction predicate (empty = free space everywhere).
  void set_obstruction(ObstructionFn fn) { obstruction_ = std::move(fn); }

  /// Installs the channel fault injector (nullptr removes it). A disabled
  /// injector is inert: it draws nothing from its RNG stream and the run is
  /// bit-identical to one without any injector installed.
  void set_fault_injector(std::unique_ptr<FaultInjector> injector) {
    injector_ = std::move(injector);
  }
  [[nodiscard]] FaultInjector* fault_injector() { return injector_.get(); }
  [[nodiscard]] const FaultInjector* fault_injector() const { return injector_.get(); }

  void set_reception_model(ReceptionModel model) { reception_model_ = model; }
  /// For kLogDistanceFading: fraction of the range where loss begins.
  void set_fading_onset_fraction(double f) { fading_onset_ = f; }

  /// Link-layer bytes added to every frame's encoded GN wire size when
  /// converting it to airtime (MAC header + LLC/SNAP + FCS; the GN packet
  /// itself is already measured exactly via Codec::wire_size). 0 — the
  /// default — keeps the historical GN-only airtime, so runs without the
  /// MAC layer stay byte-identical; the MAC config carries the knob
  /// (MacConfig::airtime_overhead_bytes) and the scenario applies it only
  /// when the MAC is enabled.
  void set_airtime_overhead_bytes(std::size_t bytes) { airtime_overhead_bytes_ = bytes; }
  [[nodiscard]] std::size_t airtime_overhead_bytes() const { return airtime_overhead_bytes_; }

  /// Transmits `frame` from `sender` using the sender's configured range;
  /// `range_override_m`, when positive, applies to this frame only (the
  /// blockage-attack variant uses this for its low-power targeted replay).
  void transmit(RadioId sender, Frame frame, double range_override_m = -1.0);

  /// Carrier sense: the instant until which `id` perceives the channel as
  /// busy (any overheard transmission's airtime, including frames addressed
  /// elsewhere). Routers defer CBF rebroadcasts while busy, like CSMA/CA.
  [[nodiscard]] sim::TimePoint busy_until(RadioId id) const;

  /// Cumulative channel-busy time perceived by `id` (exact union of every
  /// overheard airtime interval — intervals always begin at the current
  /// event time, so the union needs no interval set, just the clamp against
  /// the previous `busy_until`). The MAC layer differentiates this between
  /// samples to measure the channel busy ratio feeding DCC.
  [[nodiscard]] sim::Duration busy_time(RadioId id) const;

  // --- Spatial index ----------------------------------------------------

  /// Disables/enables the spatial index; off falls back to the O(N) scan
  /// over every node per frame (reference path, used by `bench_scale` to
  /// measure the crossover). Receiver visit order is ascending RadioId in
  /// both paths, so delivery results are identical either way.
  void set_spatial_index(bool on) { use_index_ = on; }
  [[nodiscard]] bool spatial_index_enabled() const { return use_index_; }

  /// Selects the index rebuild cadence (see IndexMode). Callers choosing
  /// kExplicit take on the obligation to call `invalidate_index()` after
  /// every batch of position updates.
  void set_index_mode(IndexMode mode) { index_mode_ = mode; }

  /// Marks the index stale; the next transmit rebuilds it (and purges nodes
  /// removed since the last build).
  void invalidate_index() { index_dirty_ = true; }

  /// Number of index rebuilds so far (perf introspection).
  [[nodiscard]] std::uint64_t index_rebuilds() const { return index_rebuilds_; }

  /// Serial-phase index refresh point for strip-parallel runs: registered
  /// as a StripPlane serial hook so a dirty index is always rebuilt between
  /// windows — workers only ever read a settled index (and assert so).
  void prepare_index() { ensure_index(); }

  [[nodiscard]] AccessTechnology technology() const { return tech_; }
  [[nodiscard]] std::size_t node_count() const { return live_nodes_; }
  [[nodiscard]] std::uint64_t frames_sent() const {
    return frames_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t frames_delivered() const {
    return frames_delivered_.load(std::memory_order_relaxed);
  }

 private:
  struct Node {
    NodeConfig config;
    RxCallback rx;
    bool alive{true};
    sim::TimePoint busy_until{};
    /// Cumulative perceived busy time (see Medium::busy_time).
    sim::Duration busy_accum{};
    /// In-flight receptions at this node (interference bookkeeping).
    struct Reception {
      sim::TimePoint start;
      sim::TimePoint end;
      std::shared_ptr<bool> corrupted;
    };
    std::vector<Reception> inflight;
  };

  [[nodiscard]] bool receivable(const Node& to, geo::Position from_pos, geo::Position to_pos,
                                double range_m, double distance_m);

  /// Extends `node`'s carrier-sense horizon to `until`, crediting the time
  /// in [from, until] not already covered by the previous horizon to its
  /// busy-time accumulator. Serial callers pass the current event time as
  /// `from` (intervals begin at the send instant); the cross-strip delivery
  /// path replays the same interval retroactively at arrival time.
  void extend_busy(Node& node, sim::TimePoint from, sim::TimePoint until);

  /// Transmit body shared by the public entry point and fault-injected
  /// duplicates; `faults` carries the frame-level decisions already drawn.
  /// Takes the frame as an immutable shared pointer: the public `transmit`
  /// wraps it exactly once, and from there the same object is captured by
  /// the duplication branch and every per-receiver delivery event — no
  /// further frame copies anywhere on the clean path.
  void transmit_impl(RadioId sender, std::shared_ptr<const Frame> frame,
                     double range_override_m, const FaultInjector::FrameDecision& faults);

  /// Rebuilds the spatial index if it may be stale (dead nodes are left
  /// out of the index). No-op while the index is current.
  void ensure_index();

  /// Resolves the simulation clock for a transmission issued by
  /// `sender_node`'s owner: serially this is `events_.now()`; under a strip
  /// plane it is the clock of the wheel the calling event is running on
  /// (the owner's home wheel, or the global wheel in the serial phase).
  [[nodiscard]] sim::TimePoint send_now_(const Node& sender_node) const;

  sim::EventQueue& events_;
  /// Non-null when `events_` belongs to a StripPlane: deliveries then route
  /// per-receiver to home wheels (same strip) or mailboxes (cross strip).
  sim::StripPlane* plane_{nullptr};
  AccessTechnology tech_;
  sim::Rng rng_;
  ReceptionModel reception_model_{ReceptionModel::kDisk};
  double fading_onset_{0.8};
  ObstructionFn obstruction_{};
  std::unique_ptr<FaultInjector> injector_{};
  /// Node slot for RadioId `v` is nodes_[v - 1]: ids are issued
  /// sequentially from 1 and never reused, so the table is a flat vector —
  /// every per-candidate lookup on the delivery fan-out is one indexed
  /// load, not a hash probe. Removed nodes keep their (emptied) slot with
  /// alive=false; in-flight deliveries to them resolve via the alive check.
  [[nodiscard]] Node& node_at(RadioId id) {
    assert(id.value >= 1 && id.value <= nodes_.size());
    return nodes_[id.value - 1];
  }
  [[nodiscard]] const Node& node_at(RadioId id) const {
    assert(id.value >= 1 && id.value <= nodes_.size());
    return nodes_[id.value - 1];
  }

  std::uint32_t next_id_{1};
  std::vector<Node> nodes_;
  std::size_t live_nodes_{0};
  bool interference_{false};
  std::size_t airtime_overhead_bytes_{0};
  /// Relaxed atomics: under a strip plane deliveries (and forwards they
  /// trigger) run on worker threads concurrently. Totals are sums, so the
  /// counts stay deterministic; serially the relaxed ops compile to plain
  /// increments on x86.
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> frames_delivered_{0};
  std::atomic<std::uint64_t> frames_collided_{0};

  // Spatial index state.
  SpatialGrid grid_;
  bool use_index_{true};
  IndexMode index_mode_{IndexMode::kPerEvent};
  bool index_dirty_{true};
  sim::TimePoint index_built_at_{};
  std::uint64_t index_built_fired_{~0ULL};
  /// Largest receive-range override among indexed nodes; a transmit must
  /// query at least this far because such a node hears by *its* range even
  /// when the sender's power would not reach it.
  double max_rx_range_m_{0.0};
  std::uint64_t index_rebuilds_{0};
  std::vector<std::uint32_t> candidates_;  ///< query scratch (hot path)
  std::vector<SpatialGrid::Entry> index_entries_;  ///< rebuild scratch (hot path)
  /// Node positions captured at the last index rebuild, slot-indexed like
  /// nodes_. With the index on, the delivery fan-out reads these instead of
  /// invoking every candidate's position callback: the rebuild cadence
  /// already guarantees the snapshot is exact (kPerEvent rebuilds on any
  /// event progress; kExplicit callers invalidate after every movement
  /// batch), so the values are identical — this only removes ~2 indirect
  /// std::function calls per candidate. Dead slots hold stale values and
  /// are never queried (the grid excludes dead nodes).
  std::vector<geo::Position> pos_snapshot_;
};

}  // namespace vgr::phy

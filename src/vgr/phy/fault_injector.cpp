#include "vgr/phy/fault_injector.hpp"

#include "vgr/sim/env.hpp"

namespace vgr::phy {

FaultConfig FaultConfig::with_env_overrides() const {
  FaultConfig c = *this;
  const auto prob = [](const char* name, double& field) {
    if (const auto v = sim::env_double(name); v.has_value() && *v >= 0.0 && *v <= 1.0) {
      field = *v;
    }
  };
  prob("VGR_FAULT_DROP", c.drop_probability);
  prob("VGR_FAULT_LINK_LOSS", c.link_loss_probability);
  prob("VGR_FAULT_CORRUPT", c.corrupt_probability);
  prob("VGR_FAULT_DUP", c.duplicate_probability);
  prob("VGR_FAULT_GE_P_GB", c.ge_p_good_to_bad);
  prob("VGR_FAULT_GE_P_BG", c.ge_p_bad_to_good);
  prob("VGR_FAULT_GE_LOSS_GOOD", c.ge_loss_good);
  prob("VGR_FAULT_GE_LOSS_BAD", c.ge_loss_bad);
  if (const auto v = sim::env_double("VGR_FAULT_DELAY_MS"); v.has_value() && *v >= 0.0) {
    c.max_extra_delay_s = *v / 1000.0;
  }
  return c;
}

FaultInjector::FrameDecision FaultInjector::on_frame() {
  FrameDecision d;
  if (!enabled_) return d;

  // Gilbert–Elliott: advance the chain first (the state transition is part
  // of the channel's evolution whether or not this frame survives), then
  // sample the state's loss probability.
  bool burst_loss = false;
  if (config_.ge_p_good_to_bad > 0.0) {
    const double p_flip = ge_bad_ ? config_.ge_p_bad_to_good : config_.ge_p_good_to_bad;
    if (rng_.bernoulli(p_flip)) ge_bad_ = !ge_bad_;
    const double loss = ge_bad_ ? config_.ge_loss_bad : config_.ge_loss_good;
    if (loss > 0.0 && rng_.bernoulli(loss)) {
      burst_loss = ge_bad_;
      d.drop = true;
    }
  }
  if (!d.drop && config_.drop_probability > 0.0 && rng_.bernoulli(config_.drop_probability)) {
    d.drop = true;
  }
  if (d.drop) {
    ++stats_.frames_dropped;
    if (burst_loss) ++stats_.frames_dropped_burst;
    return d;
  }

  if (config_.duplicate_probability > 0.0 && rng_.bernoulli(config_.duplicate_probability)) {
    d.duplicate = true;
    ++stats_.frames_duplicated;
  }
  if (config_.max_extra_delay_s > 0.0) {
    const double extra = rng_.uniform(0.0, config_.max_extra_delay_s);
    if (extra > 0.0) {
      d.extra_delay = sim::Duration::seconds(extra);
      ++stats_.frames_delayed;
    }
  }
  return d;
}

bool FaultInjector::drop_delivery() {
  if (config_.link_loss_probability <= 0.0) return false;
  if (!rng_.bernoulli(config_.link_loss_probability)) return false;
  ++stats_.deliveries_dropped;
  return true;
}

bool FaultInjector::corrupt_delivery() {
  if (config_.corrupt_probability <= 0.0) return false;
  return rng_.bernoulli(config_.corrupt_probability);
}

void FaultInjector::corrupt_bytes(net::Bytes& wire) {
  ++stats_.deliveries_corrupted;
  if (wire.empty()) return;
  const std::int64_t flips = rng_.uniform_int(1, 4);
  for (std::int64_t i = 0; i < flips; ++i) {
    const auto bit = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(wire.size()) * 8 - 1));
    wire[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
}

}  // namespace vgr::phy

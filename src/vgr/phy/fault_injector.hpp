#pragma once

#include <cstdint>

#include "vgr/net/packet.hpp"
#include "vgr/sim/random.hpp"
#include "vgr/sim/time.hpp"

namespace vgr::phy {

/// Configuration of the deterministic channel fault model. All probabilities
/// are per-event Bernoulli parameters in [0, 1]; every field defaults to
/// "off" so a default-constructed config is a perfect channel and the
/// injector draws nothing from its RNG stream (which is what keeps
/// fault-free runs bit-identical to runs without an injector installed).
///
/// Two loss granularities are modelled:
///  * frame-level — the transmission is lost channel-wide (nobody receives
///    it): the i.i.d. `drop_probability` plus a two-state Gilbert–Elliott
///    chain for bursty outages (DCC throttling, jamming, deep fades);
///  * delivery-level — each (frame, receiver) pair fails independently:
///    `link_loss_probability` for clean loss and `corrupt_probability` for
///    byte-level corruption that the receiver's decoder must survive.
struct FaultConfig {
  /// i.i.d. probability that a transmitted frame is lost channel-wide.
  double drop_probability{0.0};

  /// Gilbert–Elliott burst model, advanced one step per transmitted frame.
  /// The chain is active when `ge_p_good_to_bad > 0`; while in the bad
  /// state frames are lost with `ge_loss_bad` (default: total outage).
  double ge_p_good_to_bad{0.0};
  double ge_p_bad_to_good{0.1};
  double ge_loss_good{0.0};
  double ge_loss_bad{1.0};

  /// i.i.d. probability that one receiver misses an otherwise-sent frame.
  double link_loss_probability{0.0};

  /// i.i.d. probability that one receiver gets a byte-corrupted copy (the
  /// wire image is re-encoded, bit-flipped and delivered as `Frame::raw`).
  double corrupt_probability{0.0};

  /// Probability that a frame is transmitted twice (stale retransmission /
  /// echo); the duplicate airs after the original's airtime.
  double duplicate_probability{0.0};

  /// Upper bound of a uniform extra delivery delay per frame. Frames
  /// delayed past later traffic arrive out of order at their receivers.
  double max_extra_delay_s{0.0};

  [[nodiscard]] bool enabled() const {
    return drop_probability > 0.0 || ge_p_good_to_bad > 0.0 ||
           link_loss_probability > 0.0 || corrupt_probability > 0.0 ||
           duplicate_probability > 0.0 || max_extra_delay_s > 0.0;
  }

  /// Reads the VGR_FAULT_* environment knobs (whole-token parsed like every
  /// other VGR_* variable; malformed values warn and are ignored):
  ///   VGR_FAULT_DROP, VGR_FAULT_LINK_LOSS, VGR_FAULT_CORRUPT,
  ///   VGR_FAULT_DUP, VGR_FAULT_DELAY_MS, VGR_FAULT_GE_P_GB,
  ///   VGR_FAULT_GE_P_BG, VGR_FAULT_GE_LOSS_GOOD, VGR_FAULT_GE_LOSS_BAD.
  /// Fields without a corresponding variable keep this config's values.
  [[nodiscard]] FaultConfig with_env_overrides() const;
};

/// Counters for every fault the injector has applied.
struct FaultStats {
  std::uint64_t frames_dropped{0};       ///< channel-wide losses (all causes)
  std::uint64_t frames_dropped_burst{0}; ///< subset lost while GE state = bad
  std::uint64_t deliveries_dropped{0};   ///< per-receiver clean losses
  std::uint64_t deliveries_corrupted{0}; ///< per-receiver corrupted copies
  std::uint64_t frames_duplicated{0};
  std::uint64_t frames_delayed{0};
};

/// Deterministic fault source hooked into `Medium::transmit`.
///
/// The injector owns a private seeded `sim::Rng` stream, separate from the
/// medium's: the fault draws consume nothing from any other stream, so (1)
/// installing a *disabled* injector changes no run, and (2) a fault-injected
/// run is reproducible from (seed, config) alone — independent of thread
/// count, because all draws happen inside the single-threaded event loop in
/// frame order.
class FaultInjector {
 public:
  FaultInjector(FaultConfig config, sim::Rng rng)
      : config_{config}, rng_{rng}, enabled_{config.enabled()} {}

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] const FaultConfig& config() const { return config_; }
  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  [[nodiscard]] bool burst_state_bad() const { return ge_bad_; }

  /// Frame-level faults, drawn once per transmitted frame.
  struct FrameDecision {
    bool drop{false};
    bool duplicate{false};
    sim::Duration extra_delay{};
  };
  FrameDecision on_frame();

  /// Per-(frame, receiver) clean loss.
  bool drop_delivery();

  /// Per-(frame, receiver) corruption decision.
  bool corrupt_delivery();

  /// Flips 1–4 random bits of `wire` in place (counts one corruption).
  void corrupt_bytes(net::Bytes& wire);

 private:
  FaultConfig config_;
  sim::Rng rng_;
  bool enabled_;
  bool ge_bad_{false};
  FaultStats stats_{};
};

}  // namespace vgr::phy

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "vgr/sim/time.hpp"

namespace vgr::phy {

/// Reactive Decentralized Congestion Control (ETSI TS 102 687 style).
///
/// The access layer measures the channel busy ratio (CBR) over a sliding
/// window and maps it onto a small state ladder; each state prescribes a
/// minimum gap (Toff) between this station's transmissions. Under overload
/// every honest station sheds load proportionally — beacons are dropped at
/// admission while the gate is closed, data is paced — instead of escalating
/// its contention window until the retry budget collapses.
///
/// Defaults follow the reactive parametrisation of TS 102 687 (CBR bands
/// 0.30/0.40/0.50/0.62, Toff 60..460 ms). Everything defaults off, and off
/// is free: no samples are taken, no state is advanced, no gate is applied,
/// so runs without DCC stay bit-identical to builds without this layer.
struct DccConfig {
  bool enabled{false};

  /// CBR sampling cadence and sliding-window length (state decisions use
  /// the window average, which is what keeps one attacker burst from
  /// flapping the ladder every 100 ms).
  sim::Duration sample_interval{sim::Duration::millis(100)};
  std::size_t window_samples{10};

  /// CBR band upper edges: below `thresholds[0]` the station is Relaxed,
  /// above `thresholds[3]` it is Restrictive.
  std::array<double, 4> thresholds{0.30, 0.40, 0.50, 0.62};

  /// Minimum inter-transmission gap per state
  /// (Relaxed, Active1, Active2, Active3, Restrictive).
  std::array<sim::Duration, 5> toff{
      sim::Duration::millis(60), sim::Duration::millis(100), sim::Duration::millis(180),
      sim::Duration::millis(260), sim::Duration::millis(460)};

  /// Reads the VGR_DCC_* environment knobs over the programmatic values:
  ///   VGR_DCC (0/1), VGR_DCC_SAMPLE_MS, VGR_DCC_WINDOW.
  /// Parsing is whole-token like every other VGR_* variable.
  [[nodiscard]] DccConfig with_env_overrides() const;
};

/// Per-node reactive DCC state machine. Pure and deterministic: it consumes
/// CBR samples pushed by the MAC's sampling event and exposes the current
/// state's Toff; it owns no RNG and schedules no events itself.
class Dcc {
 public:
  enum class State : std::uint8_t { kRelaxed, kActive1, kActive2, kActive3, kRestrictive };

  explicit Dcc(DccConfig config);

  /// Feeds one CBR sample (clamped to [0, 1]) into the sliding window and
  /// recomputes the state from the window average.
  void on_sample(double cbr);

  [[nodiscard]] bool enabled() const { return config_.enabled; }
  [[nodiscard]] State state() const { return state_; }
  /// Minimum gap between transmissions in the current state.
  [[nodiscard]] sim::Duration toff() const {
    return config_.toff[static_cast<std::size_t>(state_)];
  }
  /// Window-averaged CBR the current state was derived from.
  [[nodiscard]] double cbr() const { return avg_; }
  /// Highest raw (unsmoothed) sample seen so far — the bench sweeps report
  /// this to show how hard the attacker actually loaded the channel.
  [[nodiscard]] double peak_cbr() const { return peak_; }
  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  [[nodiscard]] std::uint64_t state_changes() const { return state_changes_; }
  [[nodiscard]] const DccConfig& config() const { return config_; }

 private:
  [[nodiscard]] State state_for(double avg) const;

  DccConfig config_;
  /// Fixed-capacity ring of the last `window_samples` samples.
  std::array<double, 64> window_{};
  std::size_t next_{0};
  std::size_t filled_{0};
  double avg_{0.0};
  double peak_{0.0};
  State state_{State::kRelaxed};
  std::uint64_t samples_{0};
  std::uint64_t state_changes_{0};
};

const char* name(Dcc::State state);

}  // namespace vgr::phy

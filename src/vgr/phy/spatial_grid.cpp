#include "vgr/phy/spatial_grid.hpp"

#include <algorithm>
#include <cmath>

namespace vgr::phy {
namespace {

constexpr double kMinCellSize = 1.0;

std::int32_t cell_coord(double v, double cell_size) {
  return static_cast<std::int32_t>(std::floor(v / cell_size));
}

}  // namespace

SpatialGrid::CellKey SpatialGrid::key_for(geo::Position p) const {
  const auto cx = static_cast<std::uint64_t>(static_cast<std::uint32_t>(cell_coord(p.x, cell_size_m_)));
  const auto cy = static_cast<std::uint64_t>(static_cast<std::uint32_t>(cell_coord(p.y, cell_size_m_)));
  return (cx << 32) | cy;
}

void SpatialGrid::rebuild(const std::vector<Entry>& entries, double cell_size_m) {
  cell_size_m_ = std::max(cell_size_m, kMinCellSize);
  entries_ = entries;  // copy-assign reuses the previous capacity

  // Group entries by cell via one sort of a reused (key, index) scratch
  // array, then lay the groups out in CSR form. Steady-state rebuilds are
  // allocation-free; the sort keys include the entry index, so the layout
  // is fully determined by the input order.
  scratch_.clear();
  scratch_.reserve(entries_.size());
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    scratch_.push_back(KeyedIdx{key_for(entries_[i].pos), i});
  }
  std::sort(scratch_.begin(), scratch_.end(), [](const KeyedIdx& a, const KeyedIdx& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.idx < b.idx;
  });

  cell_keys_.clear();
  cell_start_.clear();
  cell_idx_.clear();
  cell_idx_.reserve(scratch_.size());
  for (const KeyedIdx& ki : scratch_) {
    if (cell_keys_.empty() || cell_keys_.back() != ki.key) {
      cell_keys_.push_back(ki.key);
      cell_start_.push_back(static_cast<std::uint32_t>(cell_idx_.size()));
    }
    cell_idx_.push_back(ki.idx);
  }
  cell_start_.push_back(static_cast<std::uint32_t>(cell_idx_.size()));
}

std::vector<std::uint32_t> SpatialGrid::query(geo::Position center, double radius_m) const {
  std::vector<std::uint32_t> out;
  query_into(center, radius_m, out);
  return out;
}

void SpatialGrid::query_into(geo::Position center, double radius_m,
                             std::vector<std::uint32_t>& out) const {
  out.clear();
  if (radius_m < 0.0 || entries_.empty()) return;
  const std::int32_t x_lo = cell_coord(center.x - radius_m, cell_size_m_);
  const std::int32_t x_hi = cell_coord(center.x + radius_m, cell_size_m_);
  const std::int32_t y_lo = cell_coord(center.y - radius_m, cell_size_m_);
  const std::int32_t y_hi = cell_coord(center.y + radius_m, cell_size_m_);
  for (std::int32_t cx = x_lo; cx <= x_hi; ++cx) {
    for (std::int32_t cy = y_lo; cy <= y_hi; ++cy) {
      const CellKey key = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
                          static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
      const auto it = std::lower_bound(cell_keys_.begin(), cell_keys_.end(), key);
      if (it == cell_keys_.end() || *it != key) continue;
      const auto cell = static_cast<std::size_t>(it - cell_keys_.begin());
      for (std::uint32_t r = cell_start_[cell]; r < cell_start_[cell + 1]; ++r) {
        const Entry& e = entries_[cell_idx_[r]];
        if (geo::distance(center, e.pos) <= radius_m) out.push_back(e.id);
      }
    }
  }
  std::sort(out.begin(), out.end());
}

std::vector<std::uint32_t> SpatialGrid::query_brute_force(geo::Position center,
                                                          double radius_m) const {
  std::vector<std::uint32_t> out;
  if (radius_m < 0.0) return out;
  for (const Entry& e : entries_) {
    if (geo::distance(center, e.pos) <= radius_m) out.push_back(e.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace vgr::phy

#pragma once

#include <cstdint>
#include <vector>

#include "vgr/geo/vec2.hpp"

namespace vgr::phy {

/// Uniform spatial hash over node positions, used by `Medium::transmit` to
/// prune the per-frame receiver scan from all N nodes down to the nodes in
/// the cells a transmission can actually reach.
///
/// Design: cells are squares of `cell_size_m` (the medium rebuilds with cell
/// size = the largest radio range seen, so a query visits at most the 3x3
/// neighbourhood around the sender in the common case). The grid is a
/// snapshot: it holds positions as of `rebuild()`, and the owner decides the
/// rebuild cadence (the medium rebuilds lazily when positions may have
/// changed — see Medium's index modes). `query` filters candidates by exact
/// distance against the *snapshot* positions, so its result is precisely the
/// brute-force "all ids within radius of center" set over the same snapshot.
class SpatialGrid {
 public:
  struct Entry {
    std::uint32_t id;
    geo::Position pos;
  };

  /// Clears and re-inserts every entry. `cell_size_m` is clamped below to
  /// 1 m so a degenerate range cannot explode the cell count.
  void rebuild(const std::vector<Entry>& entries, double cell_size_m);

  /// Ids whose snapshot position lies within `radius_m` of `center`
  /// (inclusive), in ascending id order so downstream iteration is
  /// deterministic regardless of hash layout.
  [[nodiscard]] std::vector<std::uint32_t> query(geo::Position center, double radius_m) const;

  /// Allocation-free variant for the transmit hot path: clears `out` and
  /// fills it with the same result as `query`.
  void query_into(geo::Position center, double radius_m, std::vector<std::uint32_t>& out) const;

  /// Brute-force reference implementation of `query` over the same
  /// snapshot; used by tests and the `bench_scale` crossover sweep.
  [[nodiscard]] std::vector<std::uint32_t> query_brute_force(geo::Position center,
                                                             double radius_m) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] double cell_size() const { return cell_size_m_; }
  [[nodiscard]] std::size_t cell_count() const { return cell_keys_.size(); }

 private:
  using CellKey = std::uint64_t;
  [[nodiscard]] CellKey key_for(geo::Position p) const;

  double cell_size_m_{1.0};
  std::vector<Entry> entries_;

  // Occupied-cell directory in CSR form (arena/SoA memory plane): a sorted
  // key array plus offsets into one shared index array, rebuilt by sorting
  // a reused scratch buffer. Unlike the previous key -> vector hash map,
  // rebuilding in the steady state touches no allocator at all — the medium
  // rebuilds per event under its kPerEvent index mode, so this is a hot
  // path, not setup.
  std::vector<CellKey> cell_keys_;         ///< sorted, unique occupied cells
  std::vector<std::uint32_t> cell_start_;  ///< size cell_keys_.size() + 1
  std::vector<std::uint32_t> cell_idx_;    ///< entry indices grouped by cell

  struct KeyedIdx {
    CellKey key;
    std::uint32_t idx;
  };
  std::vector<KeyedIdx> scratch_;  ///< rebuild workspace, reused across calls
};

}  // namespace vgr::phy

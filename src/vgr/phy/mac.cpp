#include "vgr/phy/mac.hpp"

#include <algorithm>
#include <utility>

#include "vgr/sim/env.hpp"

namespace vgr::phy {

MacConfig MacConfig::with_env_overrides() const {
  MacConfig c = *this;
  if (const auto v = sim::env_int("VGR_MAC"); v.has_value()) c.enabled = *v != 0;
  if (const auto v = sim::env_int("VGR_MAC_QUEUE"); v.has_value() && *v > 0) {
    c.queue_limit = static_cast<std::size_t>(*v);
  }
  if (const auto v = sim::env_double("VGR_MAC_SLOT_US"); v.has_value() && *v > 0.0) {
    c.slot = sim::Duration::seconds(*v / 1e6);
  }
  if (const auto v = sim::env_double("VGR_MAC_AIFS_US"); v.has_value() && *v >= 0.0) {
    c.aifs = sim::Duration::seconds(*v / 1e6);
  }
  if (const auto v = sim::env_int("VGR_MAC_CW_MIN"); v.has_value() && *v >= 0) {
    c.cw_min = static_cast<int>(*v);
  }
  if (const auto v = sim::env_int("VGR_MAC_CW_MAX"); v.has_value() && *v >= 0) {
    c.cw_max = static_cast<int>(*v);
  }
  if (const auto v = sim::env_int("VGR_MAC_RETRY"); v.has_value() && *v >= 0) {
    c.max_retries = static_cast<int>(*v);
  }
  if (const auto v = sim::env_int("VGR_MAC_DCC_RETRY_SCALE"); v.has_value() && *v > 0) {
    c.dcc_retry_scale = static_cast<int>(*v);
  }
  if (const auto v = sim::env_int("VGR_MAC_OVERHEAD_BYTES"); v.has_value() && *v >= 0) {
    c.airtime_overhead_bytes = static_cast<std::size_t>(*v);
  }
  return c;
}

Mac::Mac(sim::EventQueue& events, Medium& medium, RadioId radio, sim::CohortId cohort,
         MacConfig config, DccConfig dcc_config, sim::Rng rng)
    : events_{events},
      medium_{medium},
      radio_{radio},
      cohort_{cohort},
      config_{config},
      rng_{rng},
      dcc_{dcc_config},
      cw_{config.cw_min} {
  config_.cw_max = std::max(config_.cw_max, config_.cw_min);
  // CBR is sampled whenever the MAC is on — the DCC-off arms of the
  // congestion sweeps still report how loaded the channel was. The sampler
  // only reads the medium's busy-time accumulator; it cannot perturb any
  // transmission, so enabling it is observation, not behaviour.
  if (config_.enabled) schedule_cbr_sample();
}

void Mac::enqueue(Frame frame, MacAccessClass access_class, double range_override_m) {
  if (!config_.enabled) {
    // Passthrough: identical to the pre-MAC router-to-medium handoff.
    medium_.transmit(radio_, std::move(frame), range_override_m);
    return;
  }
  ++stats_.enqueued;
  // DCC admission: a beacon arriving while the pacing gate is closed is
  // shed immediately — by the time the gate opens its position vector would
  // be stale, and shedding beacons first is exactly how DCC trades
  // awareness freshness for data goodput under overload.
  if (access_class == MacAccessClass::kBeacon && dcc_.enabled() &&
      events_.now() < next_tx_allowed_) {
    ++stats_.dcc_gated_drops;
    return;
  }
  if (queue_.size() >= config_.queue_limit) {
    ++stats_.queue_overflow_drops;
    return;
  }
  queue_.push_back(Pending{std::move(frame), range_override_m});
  if (!serving_) {
    serving_ = true;
    sense();
  }
}

void Mac::schedule_sense(sim::TimePoint at) {
  events_.schedule_at(at, cohort_, [this] { sense(); });
}

void Mac::sense() {
  if (queue_.empty()) {
    serving_ = false;
    return;
  }
  const sim::TimePoint now = events_.now();
  if (dcc_.enabled() && now < next_tx_allowed_) {
    schedule_sense(next_tx_allowed_);
    return;
  }
  const sim::TimePoint busy = medium_.busy_until(radio_);
  if (busy <= now) {
    transmit_head();
    return;
  }
  // Channel busy. If this head already sat out a backoff, its draw landed
  // on another station's airtime: one failed contention.
  if (backed_off_) {
    ++attempts_;
    ++stats_.backoff_retries;
    if (attempts_ > retry_budget()) {
      drop_head();
      return;
    }
    // Exponential escalation only without DCC: a paced station keeps its
    // window at cw_min and lets the Toff gap do the load shedding.
    if (!dcc_.enabled()) cw_ = std::min(cw_ * 2 + 1, config_.cw_max);
  }
  backed_off_ = true;
  const auto slots = rng_.uniform_int(0, cw_);
  schedule_sense(busy + config_.aifs + config_.slot * static_cast<double>(slots));
}

void Mac::transmit_head() {
  Pending head = std::move(queue_.front());
  queue_.pop_front();
  reset_contention();
  ++stats_.transmitted;
  if (dcc_.enabled()) next_tx_allowed_ = events_.now() + dcc_.toff();
  // Frame-level fault decisions (drop/duplicate/extra delay) are drawn
  // inside this call — i.e. after queueing and contention, per the
  // documented fault-ordering contract in mac.hpp.
  medium_.transmit(radio_, std::move(head.frame), head.range_override_m);
  if (queue_.empty()) {
    serving_ = false;
    return;
  }
  // Our own airtime keeps the channel busy; the next head contends for the
  // idle instant after it like everyone else.
  schedule_sense(events_.now());
}

void Mac::drop_head() {
  queue_.pop_front();
  reset_contention();
  ++stats_.retry_exhausted_drops;
  if (queue_.empty()) {
    serving_ = false;
    return;
  }
  sense();
}

void Mac::reset_contention() {
  cw_ = config_.cw_min;
  attempts_ = 0;
  backed_off_ = false;
}

void Mac::schedule_cbr_sample() {
  events_.schedule_in(dcc_.config().sample_interval, cohort_, [this] {
    const sim::Duration busy = medium_.busy_time(radio_);
    const double cbr = (busy - busy_seen_) / dcc_.config().sample_interval;
    busy_seen_ = busy;
    dcc_.on_sample(cbr);
    ++stats_.cbr_samples;
    schedule_cbr_sample();
  });
}

}  // namespace vgr::phy

#include "vgr/traffic/traffic_sim.hpp"

#include <algorithm>
#include <array>
#include <cassert>

namespace vgr::traffic {

TrafficSimulation::TrafficSimulation(RoadSegment road, Config config)
    : road_{road}, config_{config} {}

Vehicle& TrafficSimulation::add_vehicle(Direction dir, int lane, double x, double speed_mps) {
  assert(lane >= 0 && lane < road_.lanes_per_direction());
  const VehicleId id = next_id_++;
  auto [it, ok] = by_id_.emplace(
      id, std::make_unique<Vehicle>(id, dir, lane, x, speed_mps, config_.vehicle_length_m));
  assert(ok);
  Vehicle& v = *it->second;
  if (on_spawn_) on_spawn_(v);
  return v;
}

void TrafficSimulation::prefill() {
  if (config_.prefill_spacing_m <= 0.0) return;
  const std::array<Direction, 2> dirs{Direction::kEastbound, Direction::kWestbound};
  for (const Direction dir : dirs) {
    if (dir == Direction::kWestbound && !road_.two_way()) continue;
    for (int lane = 0; lane < road_.lanes_per_direction(); ++lane) {
      for (double progress = 0.0; progress <= road_.length();
           progress += config_.prefill_spacing_m) {
        const double x = dir == Direction::kEastbound ? progress : road_.length() - progress;
        add_vehicle(dir, lane, x, config_.idm.desired_velocity_mps);
      }
    }
  }
}

std::vector<Vehicle*> TrafficSimulation::vehicles() {
  std::vector<Vehicle*> out;
  out.reserve(by_id_.size());
  for (auto& [id, v] : by_id_) out.push_back(v.get());
  return out;
}

std::vector<const Vehicle*> TrafficSimulation::vehicles() const {
  std::vector<const Vehicle*> out;
  out.reserve(by_id_.size());
  for (const auto& [id, v] : by_id_) out.push_back(v.get());
  return out;
}

Vehicle* TrafficSimulation::find(VehicleId id) {
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second.get();
}

std::size_t TrafficSimulation::count(Direction dir) const {
  std::size_t n = 0;
  for (const auto& [id, v] : by_id_) {
    if (v->direction() == dir) ++n;
  }
  return n;
}

void TrafficSimulation::step_direction(Direction dir, double dt) {
  // Per lane: order by progress (closest to exit first) and apply IDM with
  // the vehicle ahead (or the hazard) as leader.
  for (int lane = 0; lane < road_.lanes_per_direction(); ++lane) {
    std::vector<Vehicle*>& column = column_scratch_;
    column.clear();
    for (auto& [id, v] : by_id_) {
      if (v->direction() == dir && v->lane() == lane) column.push_back(v.get());
    }
    std::sort(column.begin(), column.end(), [this](const Vehicle* a, const Vehicle* b) {
      return a->progress(road_) > b->progress(road_);
    });

    const std::optional<double> hazard_x = hazard_[index(dir)];
    double leader_progress = 0.0;
    double leader_speed = 0.0;
    double leader_length = 0.0;
    bool have_leader = false;

    for (Vehicle* v : column) {
      std::optional<Leader> leader;
      if (have_leader) {
        const double gap = leader_progress - leader_length - v->progress(road_);
        leader = Leader{gap, leader_speed};
        if (gap < 0.0) ++collisions_;
      }
      // A hazard acts as a standing zero-length obstacle; use whichever
      // constraint (hazard or leading vehicle) is nearer.
      if (hazard_x) {
        const double hazard_progress =
            dir == Direction::kEastbound ? *hazard_x : road_.length() - *hazard_x;
        const double hazard_gap = hazard_progress - v->progress(road_);
        if (hazard_gap >= 0.0 && (!leader || hazard_gap < leader->gap_m)) {
          leader = Leader{hazard_gap, 0.0};
        }
      }
      const double a = v->forced_acceleration().value_or(
          idm_acceleration(config_.idm, v->speed(), leader));
      v->advance(a, dt);

      leader_progress = v->progress(road_);
      leader_speed = v->speed();
      leader_length = v->length();
      have_leader = true;
    }
  }
}

void TrafficSimulation::try_entries() {
  const std::array<Direction, 2> dirs{Direction::kEastbound, Direction::kWestbound};
  for (const Direction dir : dirs) {
    if (dir == Direction::kWestbound && !road_.two_way()) continue;
    if (!entry_enabled_[index(dir)]) continue;
    for (int lane = 0; lane < road_.lanes_per_direction(); ++lane) {
      // Entry rule (paper §IV-A): enter at entry speed once the vehicle
      // ahead has cleared `entry_spacing_m` past the entrance.
      double min_progress = road_.length() + 1.0;
      for (const auto& [id, v] : by_id_) {
        if (v->direction() == dir && v->lane() == lane) {
          min_progress = std::min(min_progress, v->progress(road_));
        }
      }
      if (min_progress > config_.entry_spacing_m) {
        add_vehicle(dir, lane, road_.entrance_x(dir), config_.entry_speed_mps);
      }
    }
  }
}

void TrafficSimulation::remove_exited() {
  for (auto it = by_id_.begin(); it != by_id_.end();) {
    Vehicle& v = *it->second;
    if (road_.past_exit(v.direction(), v.x())) {
      if (on_exit_) on_exit_(v);
      it = by_id_.erase(it);
    } else {
      ++it;
    }
  }
}

TrafficSimulation::LaneNeighbors TrafficSimulation::neighbors_in_lane(Direction dir, int lane,
                                                                      double progress,
                                                                      const Vehicle* self) {
  LaneNeighbors out;
  double leader_gap = 1e18, follower_gap = 1e18;
  for (auto& [id, v] : by_id_) {
    if (v.get() == self || v->direction() != dir || v->lane() != lane) continue;
    const double p = v->progress(road_);
    if (p >= progress && p - progress < leader_gap) {
      leader_gap = p - progress;
      out.leader = v.get();
    } else if (p < progress && progress - p < follower_gap) {
      follower_gap = progress - p;
      out.follower = v.get();
    }
  }
  return out;
}

void TrafficSimulation::consider_lane_changes(Direction dir) {
  for (auto& [id, vptr] : by_id_) {
    Vehicle& v = *vptr;
    if (v.direction() != dir || v.forced_acceleration().has_value()) continue;
    const double progress = v.progress(road_);

    const auto current = neighbors_in_lane(dir, v.lane(), progress, &v);
    std::optional<Leader> cur_leader;
    if (current.leader != nullptr) {
      cur_leader = Leader{current.leader->progress(road_) - current.leader->length() - progress,
                          current.leader->speed()};
    }
    const double a_current = idm_acceleration(config_.idm, v.speed(), cur_leader);

    for (const int target : {v.lane() - 1, v.lane() + 1}) {
      if (target < 0 || target >= road_.lanes_per_direction()) continue;
      const auto next = neighbors_in_lane(dir, target, progress, &v);

      // Safety: the prospective follower must not be forced into harsh
      // braking, and the slot itself must physically fit.
      if (next.follower != nullptr) {
        const double rear_gap =
            progress - v.length() - next.follower->progress(road_);
        if (rear_gap < 1.0) continue;
        const double rear_accel = idm_acceleration(config_.idm, next.follower->speed(),
                                                   Leader{rear_gap, v.speed()});
        if (rear_accel < -config_.lc_safe_decel_mps2) continue;
      }
      std::optional<Leader> new_leader;
      if (next.leader != nullptr) {
        const double front_gap =
            next.leader->progress(road_) - next.leader->length() - progress;
        if (front_gap < 1.0) continue;
        new_leader = Leader{front_gap, next.leader->speed()};
      }

      // Incentive: enough acceleration gain in the target lane.
      const double a_target = idm_acceleration(config_.idm, v.speed(), new_leader);
      if (a_target - a_current < config_.lc_incentive_threshold_mps2) continue;

      v.set_lane(target);
      ++lane_changes_;
      break;
    }
  }
}

void TrafficSimulation::tick() {
  const double dt = config_.tick_seconds;
  step_direction(Direction::kEastbound, dt);
  if (road_.two_way()) step_direction(Direction::kWestbound, dt);
  if (config_.lane_changing && road_.lanes_per_direction() > 1) {
    const auto interval =
        static_cast<std::uint64_t>(config_.lc_check_interval_s / config_.tick_seconds);
    if (interval == 0 || ticks_ % interval == 0) {
      consider_lane_changes(Direction::kEastbound);
      if (road_.two_way()) consider_lane_changes(Direction::kWestbound);
    }
  }
  remove_exited();
  try_entries();
  ++ticks_;
  if (on_tick_) on_tick_();
}

void TrafficSimulation::run_on(sim::EventQueue& events, sim::TimePoint until) {
  const auto dt = sim::Duration::seconds(config_.tick_seconds);
  // Self-rescheduling tick chain; stops once the next tick would pass
  // `until`. A copyable functor sidesteps lambda self-capture.
  struct Chain {
    TrafficSimulation* sim;
    sim::EventQueue* events;
    sim::TimePoint until;
    sim::Duration dt;
    void operator()() const {
      sim->tick();
      const auto next = events->now() + dt;
      if (next <= until) events->schedule_at(next, Chain{*this});
    }
  };
  events.schedule_in(dt, Chain{this, &events, until, dt});
}

}  // namespace vgr::traffic

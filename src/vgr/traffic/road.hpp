#pragma once

#include <cassert>
#include <cmath>

#include "vgr/geo/vec2.hpp"

namespace vgr::traffic {

/// Travel direction on the road. Eastbound traffic moves toward +x,
/// westbound toward -x (the paper's 4,000 m segment runs along x).
enum class Direction { kEastbound, kWestbound };

[[nodiscard]] constexpr double direction_sign(Direction d) {
  return d == Direction::kEastbound ? 1.0 : -1.0;
}

/// Heading in radians (counter-clockwise from east) for a direction.
[[nodiscard]] inline double direction_heading(Direction d) {
  return d == Direction::kEastbound ? 0.0 : M_PI;
}

/// Straight multi-lane road segment (paper §IV-A: 4,000 m, two 5 m lanes
/// per direction, one- or two-way).
///
/// Geometry: the segment spans x in [0, length]; eastbound lanes sit at
/// positive y (2.5 m, 7.5 m), westbound lanes mirror at negative y.
/// Eastbound vehicles enter at x=0; westbound at x=length.
class RoadSegment {
 public:
  RoadSegment(double length_m, int lanes_per_direction, bool two_way,
              double lane_width_m = 5.0)
      : length_m_{length_m},
        lanes_per_direction_{lanes_per_direction},
        two_way_{two_way},
        lane_width_m_{lane_width_m} {
    assert(length_m > 0.0 && lanes_per_direction > 0);
  }

  [[nodiscard]] double length() const { return length_m_; }
  [[nodiscard]] int lanes_per_direction() const { return lanes_per_direction_; }
  [[nodiscard]] bool two_way() const { return two_way_; }
  [[nodiscard]] double lane_width() const { return lane_width_m_; }

  /// Lateral offset of the lane centre. Lane 0 is the rightmost lane of its
  /// direction (closest to the median).
  [[nodiscard]] double lane_center_y(Direction dir, int lane) const {
    assert(lane >= 0 && lane < lanes_per_direction_);
    const double offset = (static_cast<double>(lane) + 0.5) * lane_width_m_;
    return dir == Direction::kEastbound ? offset : -offset;
  }

  /// Entrance x coordinate for a direction.
  [[nodiscard]] double entrance_x(Direction dir) const {
    return dir == Direction::kEastbound ? 0.0 : length_m_;
  }

  /// Exit x coordinate for a direction.
  [[nodiscard]] double exit_x(Direction dir) const {
    return dir == Direction::kEastbound ? length_m_ : 0.0;
  }

  /// Whether `x` lies past the exit for the given direction.
  [[nodiscard]] bool past_exit(Direction dir, double x) const {
    return dir == Direction::kEastbound ? x > length_m_ : x < 0.0;
  }

  /// Full position for a vehicle at longitudinal coordinate `x`.
  [[nodiscard]] geo::Position position_of(Direction dir, int lane, double x) const {
    return {x, lane_center_y(dir, lane)};
  }

 private:
  double length_m_;
  int lanes_per_direction_;
  bool two_way_;
  double lane_width_m_;
};

}  // namespace vgr::traffic

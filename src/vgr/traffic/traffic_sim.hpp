#pragma once

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "vgr/sim/event_queue.hpp"
#include "vgr/traffic/idm.hpp"
#include "vgr/traffic/road.hpp"
#include "vgr/traffic/vehicle.hpp"

namespace vgr::traffic {

/// Microscopic traffic simulation on one road segment: IDM car-following
/// per lane, max-flow entries at the entrances (paper rule: a new vehicle
/// enters at 30 m/s once the vehicle ahead is more than the configured
/// spacing from the entrance), exits at the segment ends, and hazard events
/// that block lanes.
class TrafficSimulation {
 public:
  struct Config {
    IdmParameters idm{};
    double entry_speed_mps{30.0};
    /// Entry gate: minimum clear distance ahead of the entrance. The
    /// paper's default traffic uses 30 m; the density sweeps raise it.
    double entry_spacing_m{30.0};
    double vehicle_length_m{4.5};
    /// Pre-fill spacing at t=0 (vehicle front to next vehicle front);
    /// <= 0 starts with an empty road.
    double prefill_spacing_m{30.0};
    double tick_seconds{0.1};

    /// MOBIL-style discretionary lane changes: a vehicle moves to an
    /// adjacent same-direction lane when it gains at least
    /// `lc_incentive_threshold_mps2` of IDM acceleration and the new
    /// follower is not forced to brake harder than `lc_safe_decel_mps2`.
    /// Off by default (the paper's evaluation keeps lanes fixed).
    bool lane_changing{false};
    double lc_incentive_threshold_mps2{0.2};
    double lc_safe_decel_mps2{4.0};
    double lc_check_interval_s{1.0};
  };

  TrafficSimulation(RoadSegment road, Config config);

  /// Pre-fills every lane at the configured spacing and desired speed.
  void prefill();

  /// Advances all vehicles by one tick: IDM accelerations (or forced
  /// overrides), entries, exits, hazard interactions.
  void tick();

  /// Schedules ticks on `events` every `config.tick_seconds` until `until`.
  void run_on(sim::EventQueue& events, sim::TimePoint until);

  // --- Hazards and flow control ---------------------------------------

  /// Blocks all lanes of `dir` at coordinate `x`: vehicles behind it see a
  /// standing obstacle and queue (paper Fig 11a: hazard at 3,600 m).
  void set_hazard(Direction dir, std::optional<double> x) { hazard_[index(dir)] = x; }
  [[nodiscard]] std::optional<double> hazard(Direction dir) const {
    return hazard_[index(dir)];
  }

  /// Opens/closes the entrance for a direction (a notified entrance stops
  /// admitting vehicles into the blocked segment).
  void set_entry_enabled(Direction dir, bool enabled) { entry_enabled_[index(dir)] = enabled; }
  [[nodiscard]] bool entry_enabled(Direction dir) const { return entry_enabled_[index(dir)]; }

  // --- Introspection ----------------------------------------------------

  [[nodiscard]] const RoadSegment& road() const { return road_; }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Live vehicles, in no particular order. Pointers remain stable until
  /// the vehicle exits.
  [[nodiscard]] std::vector<Vehicle*> vehicles();
  [[nodiscard]] std::vector<const Vehicle*> vehicles() const;
  [[nodiscard]] std::size_t vehicle_count() const { return by_id_.size(); }
  [[nodiscard]] Vehicle* find(VehicleId id);

  [[nodiscard]] std::size_t count(Direction dir) const;

  /// Total ticks executed.
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

  /// Collisions detected so far (bumper overlap within a lane).
  [[nodiscard]] std::uint64_t collisions() const { return collisions_; }

  /// Lane changes performed so far.
  [[nodiscard]] std::uint64_t lane_changes() const { return lane_changes_; }

  // --- Lifecycle hooks ---------------------------------------------------

  using VehicleHook = std::function<void(Vehicle&)>;
  /// Invoked right after a vehicle is added (pre-fill or entry).
  void set_on_spawn(VehicleHook hook) { on_spawn_ = std::move(hook); }
  /// Invoked right before a vehicle is removed at its exit.
  void set_on_exit(VehicleHook hook) { on_exit_ = std::move(hook); }
  /// Invoked at the end of every tick(), after all vehicles have moved.
  /// Scenarios use this to invalidate position-derived caches (e.g. the
  /// radio medium's spatial index) exactly once per movement batch.
  void set_on_tick(std::function<void()> hook) { on_tick_ = std::move(hook); }

  /// Manually adds a vehicle (scripted scenarios); returns it.
  Vehicle& add_vehicle(Direction dir, int lane, double x, double speed_mps);

 private:
  static std::size_t index(Direction d) { return d == Direction::kEastbound ? 0 : 1; }

  void step_direction(Direction dir, double dt);
  void try_entries();
  void remove_exited();
  void consider_lane_changes(Direction dir);

  /// Nearest leader/follower of a hypothetical vehicle at `progress` in
  /// `lane` (excluding `self`); either pointer may be null.
  struct LaneNeighbors {
    Vehicle* leader{nullptr};
    Vehicle* follower{nullptr};
  };
  LaneNeighbors neighbors_in_lane(Direction dir, int lane, double progress,
                                  const Vehicle* self);

  RoadSegment road_;
  Config config_;
  VehicleId next_id_{1};
  std::map<VehicleId, std::unique_ptr<Vehicle>> by_id_;
  std::array<std::optional<double>, 2> hazard_{};
  std::array<bool, 2> entry_enabled_{true, true};
  VehicleHook on_spawn_;
  VehicleHook on_exit_;
  std::function<void()> on_tick_;
  std::uint64_t ticks_{0};
  std::uint64_t collisions_{0};
  std::uint64_t lane_changes_{0};
  std::vector<Vehicle*> column_scratch_;  ///< step_direction workspace, reused per tick
};

}  // namespace vgr::traffic

#pragma once

#include <optional>

namespace vgr::traffic {

/// Intelligent Driver Model parameters (paper Table I).
struct IdmParameters {
  double desired_velocity_mps{30.0};
  double safe_time_headway_s{1.5};
  double max_acceleration_mps2{1.0};
  double comfortable_deceleration_mps2{3.0};
  double acceleration_exponent{4.0};
  double minimum_distance_m{2.0};
};

/// State of the leading vehicle as seen by the follower.
struct Leader {
  double gap_m;        ///< bumper-to-bumper distance (>= 0 when not colliding)
  double speed_mps;    ///< leader's speed
};

/// IDM car-following acceleration (Treiber et al.):
///
///   a = a_max * [ 1 - (v/v0)^delta - (s*/s)^2 ]
///   s* = s0 + v*T + v*(v - v_lead) / (2*sqrt(a_max*b))
///
/// `leader == nullopt` models a free road. The returned acceleration may be
/// strongly negative when the gap is small; the caller clamps speed at zero.
[[nodiscard]] double idm_acceleration(const IdmParameters& p, double speed_mps,
                                      std::optional<Leader> leader);

}  // namespace vgr::traffic

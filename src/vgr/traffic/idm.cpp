#include "vgr/traffic/idm.hpp"

#include <algorithm>
#include <cmath>

namespace vgr::traffic {

double idm_acceleration(const IdmParameters& p, double speed_mps, std::optional<Leader> leader) {
  const double v0 = std::max(p.desired_velocity_mps, 0.1);
  double a = 1.0 - std::pow(speed_mps / v0, p.acceleration_exponent);
  if (leader) {
    const double dv = speed_mps - leader->speed_mps;
    const double s_star =
        p.minimum_distance_m + speed_mps * p.safe_time_headway_s +
        speed_mps * dv / (2.0 * std::sqrt(p.max_acceleration_mps2 *
                                          p.comfortable_deceleration_mps2));
    const double s = std::max(leader->gap_m, 0.1);
    const double ratio = std::max(s_star, 0.0) / s;
    a -= ratio * ratio;
  }
  return p.max_acceleration_mps2 * a;
}

}  // namespace vgr::traffic

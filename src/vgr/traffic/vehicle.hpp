#pragma once

#include <cstdint>
#include <optional>

#include "vgr/geo/vec2.hpp"
#include "vgr/traffic/road.hpp"

namespace vgr::traffic {

using VehicleId = std::uint32_t;

/// One vehicle's kinematic state on a road segment. Longitudinal position
/// `x` is the global road coordinate; speed is non-negative along the
/// vehicle's travel direction.
class Vehicle {
 public:
  Vehicle(VehicleId id, Direction dir, int lane, double x, double speed_mps,
          double length_m = 4.5)
      : id_{id}, direction_{dir}, lane_{lane}, x_{x}, speed_{speed_mps}, length_{length_m} {}

  [[nodiscard]] VehicleId id() const { return id_; }
  [[nodiscard]] Direction direction() const { return direction_; }
  [[nodiscard]] int lane() const { return lane_; }
  [[nodiscard]] double x() const { return x_; }
  [[nodiscard]] double speed() const { return speed_; }
  [[nodiscard]] double length() const { return length_; }
  [[nodiscard]] double acceleration() const { return accel_; }

  /// Distance already travelled toward the exit, measured from the
  /// direction's entrance.
  [[nodiscard]] double progress(const RoadSegment& road) const {
    return direction_ == Direction::kEastbound ? x_ : road.length() - x_;
  }

  [[nodiscard]] geo::Position position(const RoadSegment& road) const {
    return road.position_of(direction_, lane_, x_);
  }

  [[nodiscard]] double heading() const { return direction_heading(direction_); }

  /// Overrides the IDM controller with a fixed acceleration (used by the
  /// scripted road-safety scenario); nullopt returns control to IDM.
  void set_forced_acceleration(std::optional<double> a) { forced_accel_ = a; }
  [[nodiscard]] std::optional<double> forced_acceleration() const { return forced_accel_; }

  /// Ballistic update over `dt` with acceleration `a`; speed clamps at 0.
  void advance(double a, double dt) {
    accel_ = a;
    double v1 = speed_ + a * dt;
    if (v1 < 0.0) v1 = 0.0;
    const double avg = 0.5 * (speed_ + v1);
    x_ += direction_sign(direction_) * avg * dt;
    speed_ = v1;
  }

  void set_lane(int lane) { lane_ = lane; }
  void set_speed(double v) { speed_ = v < 0.0 ? 0.0 : v; }

 private:
  VehicleId id_;
  Direction direction_;
  int lane_;
  double x_;
  double speed_;
  double length_;
  double accel_{0.0};
  std::optional<double> forced_accel_{};
};

}  // namespace vgr::traffic

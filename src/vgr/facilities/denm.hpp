#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "vgr/gn/router.hpp"

namespace vgr::facilities {

/// Environmental event categories (ETSI EN 302 637-3 cause codes, reduced).
enum class DenmCause : std::uint8_t {
  kStationaryVehicle = 94,
  kAccident = 2,
  kRoadworks = 3,
  kHazardousLocation = 9,
  kTrafficCondition = 1,
};

/// Decoded Decentralized Environmental Notification Message.
struct DenmData {
  net::GnAddress originator{};
  std::uint32_t event_id{0};  ///< unique per originator
  DenmCause cause{DenmCause::kHazardousLocation};
  geo::Position event_position{};
  bool cancellation{false};

  [[nodiscard]] net::Bytes encode() const;
  static std::optional<DenmData> decode(const net::Bytes& payload);
};

/// DEN service: event-triggered warnings geobroadcast into a relevance
/// area, repeated until the event's validity expires or it is cancelled
/// (ETSI EN 302 637-3, reduced). Receivers deduplicate per (originator,
/// event id), surface new events and cancellations upward, and ignore
/// repetitions.
class DenmService {
 public:
  struct Config {
    sim::Duration repetition_interval{sim::Duration::seconds(1.0)};
    std::uint8_t hop_limit{10};
  };

  /// `handler(denm, is_new, at)` — `is_new` is false for a cancellation.
  using DenmHandler = std::function<void(const DenmData&, sim::TimePoint)>;

  DenmService(sim::EventQueue& events, gn::Router& router);
  DenmService(sim::EventQueue& events, gn::Router& router, Config config);
  ~DenmService();

  DenmService(const DenmService&) = delete;
  DenmService& operator=(const DenmService&) = delete;

  void set_event_handler(DenmHandler handler) { on_event_ = std::move(handler); }
  void set_cancel_handler(DenmHandler handler) { on_cancel_ = std::move(handler); }

  /// Raises an event: broadcasts immediately and repeats every
  /// `repetition_interval` until `validity` elapses or `cancel` is called.
  /// Returns the event id.
  std::uint32_t trigger(DenmCause cause, geo::Position event_position,
                        const geo::GeoArea& relevance_area, sim::Duration validity);

  /// Cancels an active event: stops repetition and broadcasts a
  /// cancellation so receivers can clear the warning.
  void cancel(std::uint32_t event_id);

  [[nodiscard]] std::size_t active_events() const { return active_.size(); }
  [[nodiscard]] std::uint64_t denms_sent() const { return denms_sent_; }
  [[nodiscard]] std::uint64_t events_received() const { return events_received_; }

 private:
  struct ActiveEvent {
    DenmData data{};
    geo::GeoArea area{geo::GeoArea::circle({}, 1.0)};
    sim::TimePoint expires{};
    sim::EventId timer{};
  };

  void broadcast(const DenmData& data, const geo::GeoArea& area);
  void repeat(std::uint32_t event_id);
  void on_delivery(const gn::Router::Delivery& delivery);

  sim::EventQueue& events_;
  gn::Router& router_;
  Config config_;
  DenmHandler on_event_;
  DenmHandler on_cancel_;
  std::shared_ptr<bool> alive_;

  std::uint32_t next_event_id_{1};
  std::unordered_map<std::uint32_t, ActiveEvent> active_;
  /// (originator bits, event id) pairs already surfaced to the handler.
  struct SeenKeyHash {
    std::size_t operator()(const std::pair<std::uint64_t, std::uint32_t>& k) const noexcept {
      return std::hash<std::uint64_t>{}(k.first * 0x9e3779b97f4a7c15ULL + k.second);
    }
  };
  std::unordered_map<std::pair<std::uint64_t, std::uint32_t>, bool, SeenKeyHash> seen_;
  std::uint64_t denms_sent_{0};
  std::uint64_t events_received_{0};
};

}  // namespace vgr::facilities

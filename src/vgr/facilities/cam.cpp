#include "vgr/facilities/cam.hpp"

#include <cmath>

#include "vgr/net/codec.hpp"

namespace vgr::facilities {
namespace {

constexpr std::uint8_t kCamMagic[3] = {'C', 'A', 'M'};

double heading_difference(double a, double b) {
  double d = std::fmod(std::abs(a - b), 2.0 * M_PI);
  return d > M_PI ? 2.0 * M_PI - d : d;
}

}  // namespace

net::Bytes CamData::encode() const {
  net::ByteWriter w;
  w.u8(kCamMagic[0]);
  w.u8(kCamMagic[1]);
  w.u8(kCamMagic[2]);
  w.u32(generation);
  w.f64(vehicle_length_m);
  w.f64(vehicle_width_m);
  return w.take();
}

std::optional<CamData> CamData::decode(const net::Bytes& payload,
                                       const net::LongPositionVector& pv) {
  net::ByteReader r{payload};
  const auto m0 = r.u8();
  const auto m1 = r.u8();
  const auto m2 = r.u8();
  if (!m0 || !m1 || !m2 || *m0 != kCamMagic[0] || *m1 != kCamMagic[1] || *m2 != kCamMagic[2]) {
    return std::nullopt;
  }
  const auto generation = r.u32();
  const auto length = r.f64();
  const auto width = r.f64();
  if (!generation || !length || !width || !r.exhausted()) return std::nullopt;
  CamData cam;
  cam.station = pv.address;
  cam.position = pv.position;
  cam.speed_mps = pv.speed_mps;
  cam.heading_rad = pv.heading_rad;
  cam.vehicle_length_m = *length;
  cam.vehicle_width_m = *width;
  cam.generation = *generation;
  return cam;
}

CamService::CamService(sim::EventQueue& events, gn::Router& router)
    : CamService{events, router, Config{}} {}

CamService::CamService(sim::EventQueue& events, gn::Router& router, Config config)
    : events_{events}, router_{router}, config_{config} {
  // The listener may outlive this service inside the router; the shared
  // liveness flag turns post-destruction deliveries into no-ops.
  alive_ = std::make_shared<bool>(true);
  router_.add_delivery_listener([this, alive = alive_](const gn::Router::Delivery& d) {
    if (*alive) on_delivery(d);
  });
  timer_ = events_.schedule_in(config_.check_interval, [this] { tick(); });
}

CamService::~CamService() {
  stop();
  *alive_ = false;
}

void CamService::stop() {
  running_ = false;
  events_.cancel(timer_);
}

void CamService::tick() {
  if (!running_ || !router_.running()) return;
  const auto now = events_.now();
  const net::LongPositionVector pv = router_.self_pv();

  bool trigger = !sent_any_;
  if (sent_any_) {
    const bool min_elapsed = now - last_sent_ >= config_.min_interval;
    if (min_elapsed) {
      const bool moved =
          geo::distance(pv.position, last_pv_.position) >= config_.position_threshold_m;
      const bool accelerated =
          std::abs(pv.speed_mps - last_pv_.speed_mps) >= config_.speed_threshold_mps;
      const bool turned = heading_difference(pv.heading_rad, last_pv_.heading_rad) >=
                          config_.heading_threshold_rad;
      const bool overdue = now - last_sent_ >= config_.max_interval;
      trigger = moved || accelerated || turned || overdue;
    }
  }
  if (trigger) generate();
  timer_ = events_.schedule_in(config_.check_interval, [this] { tick(); });
}

void CamService::generate() {
  CamData cam;
  cam.vehicle_length_m = config_.vehicle_length_m;
  cam.vehicle_width_m = config_.vehicle_width_m;
  cam.generation = ++generation_;
  router_.send_single_hop_broadcast(cam.encode());
  last_sent_ = events_.now();
  last_pv_ = router_.self_pv();
  sent_any_ = true;
}

bool CamService::on_delivery(const gn::Router::Delivery& delivery) {
  if (delivery.packet().common.type != net::CommonHeader::HeaderType::kSingleHopBroadcast) {
    return false;
  }
  const auto cam = CamData::decode(delivery.packet().payload, delivery.packet().source_pv());
  if (!cam) return false;
  ++cams_received_;
  if (handler_) handler_(*cam, delivery.at);
  return true;
}

}  // namespace vgr::facilities
